// Tests for the host page cache: hit/miss accounting, LRU eviction,
// read-ahead window planning, dirty-page writeback, and pollution tracking.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hostmem/page_cache.h"

namespace pipette {
namespace {

std::vector<std::uint8_t> page_of(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(PageCache, MissThenHit) {
  PageCache pc(16 * kBlockSize);
  EXPECT_EQ(pc.lookup({1, 0}), nullptr);
  pc.insert({1, 0}, page_of(0xAA).data(), /*demand=*/true);
  CachedPage* p = pc.lookup({1, 0});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->data[0], 0xAA);
  EXPECT_EQ(pc.stats().lookups.hits(), 1u);
  EXPECT_EQ(pc.stats().lookups.misses(), 1u);
}

TEST(PageCache, CapacityEvictsLru) {
  PageCache pc(2 * kBlockSize);
  pc.insert({1, 0}, page_of(1).data(), true);
  pc.insert({1, 1}, page_of(2).data(), true);
  ASSERT_NE(pc.lookup({1, 0}), nullptr);       // promote page 0
  pc.insert({1, 2}, page_of(3).data(), true);  // evicts page 1
  EXPECT_TRUE(pc.contains({1, 0}));
  EXPECT_FALSE(pc.contains({1, 1}));
  EXPECT_EQ(pc.stats().evictions, 1u);
}

TEST(PageCache, ContainsDoesNotCountAsDemand) {
  PageCache pc(4 * kBlockSize);
  pc.insert({1, 0}, page_of(1).data(), true);
  EXPECT_TRUE(pc.contains({1, 0}));
  EXPECT_EQ(pc.stats().lookups.accesses(), 0u);
}

TEST(PageCache, PollutionTracking) {
  PageCache pc(2 * kBlockSize);
  pc.insert({1, 0}, page_of(1).data(), /*demand=*/false);  // read-ahead fill
  pc.insert({1, 1}, page_of(2).data(), false);
  EXPECT_EQ(pc.stats().readahead_pages, 2u);
  pc.insert({1, 2}, page_of(3).data(), true);  // evicts the RA page 0
  EXPECT_EQ(pc.stats().evicted_never_used, 1u);
}

TEST(PageCache, ReadaheadPagePromotedByDemandHitIsNotPollution) {
  PageCache pc(2 * kBlockSize);
  pc.insert({1, 0}, page_of(1).data(), false);
  ASSERT_NE(pc.lookup({1, 0}), nullptr);  // demand touches it
  pc.insert({1, 1}, page_of(2).data(), true);
  pc.insert({1, 2}, page_of(3).data(), true);  // evicts page 0
  EXPECT_EQ(pc.stats().evicted_never_used, 0u);
}

TEST(PageCache, InvalidateRemovesPage) {
  PageCache pc(4 * kBlockSize);
  pc.insert({2, 7}, page_of(9).data(), true);
  EXPECT_TRUE(pc.invalidate({2, 7}));
  EXPECT_FALSE(pc.contains({2, 7}));
  EXPECT_FALSE(pc.invalidate({2, 7}));
}

TEST(PageCache, DirtyEvictionTriggersWriteback) {
  PageCache pc(1 * kBlockSize);
  std::vector<std::pair<PageKey, std::uint8_t>> written;
  pc.set_writeback([&](const PageKey& k, const std::uint8_t* d) {
    written.emplace_back(k, d[0]);
  });
  pc.insert({1, 0}, page_of(0x42).data(), true);
  pc.mark_dirty({1, 0});
  pc.insert({1, 1}, page_of(0x43).data(), true);  // evicts dirty page 0
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0].first, (PageKey{1, 0}));
  EXPECT_EQ(written[0].second, 0x42);
}

TEST(PageCache, FlushWritesAllDirtyPages) {
  PageCache pc(8 * kBlockSize);
  pc.insert({1, 0}, page_of(1).data(), true);
  pc.insert({1, 1}, page_of(2).data(), true);
  pc.mark_dirty({1, 0});
  pc.mark_dirty({1, 1});
  int flushed = 0;
  pc.flush([&](const PageKey&, const std::uint8_t*) { ++flushed; });
  EXPECT_EQ(flushed, 2);
  // Second flush: nothing dirty anymore.
  flushed = 0;
  pc.flush([&](const PageKey&, const std::uint8_t*) { ++flushed; });
  EXPECT_EQ(flushed, 0);
}

TEST(PageCache, DirtyInvalidateWritesBack) {
  PageCache pc(4 * kBlockSize);
  int writebacks = 0;
  pc.set_writeback(
      [&](const PageKey&, const std::uint8_t*) { ++writebacks; });
  pc.insert({3, 1}, page_of(5).data(), true);
  pc.mark_dirty({3, 1});
  pc.invalidate({3, 1});
  EXPECT_EQ(writebacks, 1);
}

TEST(PageCache, SetCapacityShrinkEvicts) {
  PageCache pc(4 * kBlockSize);
  for (std::uint64_t i = 0; i < 4; ++i)
    pc.insert({1, i}, page_of(static_cast<std::uint8_t>(i)).data(), true);
  pc.set_capacity_pages(2);
  EXPECT_EQ(pc.resident_pages(), 2u);
  EXPECT_EQ(pc.stats().evictions, 2u);
  EXPECT_FALSE(pc.contains({1, 0}));
  EXPECT_TRUE(pc.contains({1, 3}));
}

// --- Read-ahead planning ---

TEST(Readahead, RandomMissGetsInitialWindow) {
  ReadaheadConfig ra{4, 32, true};
  PageCache pc(64 * kBlockSize, ra);
  // 1-page demand at a random spot: window 4 => 3 extra pages.
  EXPECT_EQ(pc.plan_readahead({1, 100}, 1), 3u);
  // Another random spot: still the initial window.
  EXPECT_EQ(pc.plan_readahead({1, 5000}, 1), 3u);
}

TEST(Readahead, SequentialStreamDoublesWindow) {
  ReadaheadConfig ra{4, 32, true};
  PageCache pc(64 * kBlockSize, ra);
  EXPECT_EQ(pc.plan_readahead({1, 10}, 1), 3u);   // window 4, next=14
  EXPECT_EQ(pc.plan_readahead({1, 14}, 1), 7u);   // window 8, next=22
  EXPECT_EQ(pc.plan_readahead({1, 22}, 1), 15u);  // window 16
  EXPECT_EQ(pc.plan_readahead({1, 38}, 1), 31u);  // window 32 (cap)
  EXPECT_EQ(pc.plan_readahead({1, 70}, 1), 31u);  // stays at cap
}

TEST(Readahead, RandomJumpResetsWindow) {
  ReadaheadConfig ra{4, 32, true};
  PageCache pc(64 * kBlockSize, ra);
  pc.plan_readahead({1, 10}, 1);
  pc.plan_readahead({1, 14}, 1);  // ramped to 8
  EXPECT_EQ(pc.plan_readahead({1, 999}, 1), 3u);  // reset to initial
}

TEST(Readahead, DisabledReturnsZero) {
  ReadaheadConfig ra{4, 32, false};
  PageCache pc(64 * kBlockSize, ra);
  EXPECT_EQ(pc.plan_readahead({1, 10}, 1), 0u);
}

TEST(Readahead, LargeDemandSwallowsWindow) {
  ReadaheadConfig ra{4, 32, true};
  PageCache pc(64 * kBlockSize, ra);
  // Demand spans 6 pages > initial window: no extra pages.
  EXPECT_EQ(pc.plan_readahead({1, 10}, 6), 0u);
}

TEST(Readahead, StreamsArePerFile) {
  ReadaheadConfig ra{4, 32, true};
  PageCache pc(64 * kBlockSize, ra);
  pc.plan_readahead({1, 10}, 1);
  // Same page index on another file is not a continuation.
  EXPECT_EQ(pc.plan_readahead({2, 14}, 1), 3u);
  // File 1's stream is still intact.
  EXPECT_EQ(pc.plan_readahead({1, 14}, 1), 7u);
}

}  // namespace
}  // namespace pipette
