// Integration tests: full machines under real workloads, cross-path data
// equivalence, experiment-runner metrics, and the qualitative relationships
// the paper's evaluation rests on (at reduced scale so they run in CI).
#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

// Scaled-down machine: 8 MiB file class, small caches, same proportions
// as the calibrated default (page cache ~ 5/8 file, FGRC ~ page cache,
// device buffer covers the file). Request counts are scaled so the draw
// count per distinct object matches the paper's 2.5M-requests regime —
// otherwise the adaptive threshold (correctly) refuses to cache data that
// is never re-read inside the window.
MachineConfig mini_machine(PathKind kind) {
  MachineConfig c = default_machine(kind);
  c.ssd.geometry.blocks_per_plane = 64;  // 8x8x2x64x256 pages = 8 GiB
  c.ssd.read_buffer_bytes = 32 * kMiB;
  c.ssd.hmb.data_bytes = 5 * kMiB;
  c.page_cache_bytes = 5 * kMiB;
  c.pipette.fgrc.slab.slab_size = 256 * kKiB;
  return c;
}

SyntheticConfig mini_synth(char which, Distribution dist) {
  SyntheticConfig c = table1_workload(which, dist);
  c.file_size = 8 * kMiB;
  return c;
}

RunConfig quick_run() { return {30'000, 30'000}; }

TEST(Integration, AllPathsReturnIdenticalData) {
  // Drive the same request stream through every path; the user-visible
  // bytes must agree byte-for-byte across systems.
  SyntheticConfig wc = mini_synth('C', Distribution::kZipf);
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<int> fds;
  for (PathKind kind : kAllPaths) {
    SyntheticWorkload w(wc);
    machines.push_back(
        std::make_unique<Machine>(mini_machine(kind), w.files()));
    fds.push_back(machines.back()->vfs().open(
        "synthetic.dat", machines.back()->open_flags(false)));
  }
  SyntheticWorkload w(wc);
  std::vector<std::uint8_t> ref(4096), got(4096);
  for (int i = 0; i < 400; ++i) {
    const Request r = w.next();
    machines[0]->vfs().pread(fds[0], r.offset, {ref.data(), r.len});
    for (std::size_t m = 1; m < machines.size(); ++m) {
      machines[m]->vfs().pread(fds[m], r.offset, {got.data(), r.len});
      for (std::uint32_t b = 0; b < r.len; ++b)
        ASSERT_EQ(got[b], ref[b]) << "machine " << m << " request " << i;
    }
  }
}

TEST(Integration, RunExperimentProducesSaneMetrics) {
  SyntheticWorkload w(mini_synth('E', Distribution::kUniform));
  const RunResult r =
      run_experiment(mini_machine(PathKind::kPipette), w, quick_run());
  EXPECT_EQ(r.requests, quick_run().requests);
  EXPECT_EQ(r.bytes_requested, quick_run().requests * 128u);
  EXPECT_GT(r.elapsed, 0u);
  EXPECT_GT(r.requests_per_sec(), 0.0);
  EXPECT_GT(r.mean_latency_us, 0.0);
  EXPECT_GT(r.fgrc_hit_ratio, 0.0);
  EXPECT_GT(r.fgrc_bytes, 0u);
}

TEST(Integration, PipetteBeatsBlockOnPureSmallReads) {
  // The headline claim at reduced scale: workload E, uniform.
  SyntheticWorkload wb(mini_synth('E', Distribution::kUniform));
  const RunResult block =
      run_experiment(mini_machine(PathKind::kBlockIo), wb, quick_run());
  SyntheticWorkload wp(mini_synth('E', Distribution::kUniform));
  const RunResult pipette =
      run_experiment(mini_machine(PathKind::kPipette), wp, quick_run());
  EXPECT_GT(normalized_throughput(pipette, block), 2.0);
  EXPECT_LT(pipette.traffic_bytes, block.traffic_bytes / 4);
}

TEST(Integration, PipetteMatchesBlockOnPureLargeReads) {
  // Workload A: the fine-grained framework must not hurt the block path.
  SyntheticWorkload wb(mini_synth('A', Distribution::kUniform));
  const RunResult block =
      run_experiment(mini_machine(PathKind::kBlockIo), wb, quick_run());
  SyntheticWorkload wp(mini_synth('A', Distribution::kUniform));
  const RunResult pipette =
      run_experiment(mini_machine(PathKind::kPipette), wp, quick_run());
  const double norm = normalized_throughput(pipette, block);
  EXPECT_GT(norm, 0.9);
  EXPECT_LT(norm, 1.1);
  EXPECT_NEAR(static_cast<double>(pipette.traffic_bytes),
              static_cast<double>(block.traffic_bytes),
              static_cast<double>(block.traffic_bytes) * 0.05);
}

TEST(Integration, NoCachePathsTransferExactlyRequestedBytes) {
  for (PathKind kind : {PathKind::kTwoBMmio, PathKind::kTwoBDma,
                        PathKind::kPipetteNoCache}) {
    SyntheticWorkload w(mini_synth('D', Distribution::kUniform));
    const RunConfig rc{5'000, 0};
    const RunResult r = run_experiment(mini_machine(kind), w, rc);
    EXPECT_EQ(r.traffic_bytes, r.bytes_requested) << to_string(kind);
  }
}

TEST(Integration, BlockTrafficIndependentOfMix) {
  // Table 2's block I/O row: location distribution, not size mix,
  // determines the pages read.
  SyntheticWorkload wa(mini_synth('A', Distribution::kUniform));
  SyntheticWorkload we(mini_synth('E', Distribution::kUniform));
  const RunResult a =
      run_experiment(mini_machine(PathKind::kBlockIo), wa, quick_run());
  const RunResult e =
      run_experiment(mini_machine(PathKind::kBlockIo), we, quick_run());
  const double ratio = static_cast<double>(a.traffic_bytes) /
                       static_cast<double>(e.traffic_bytes);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(Integration, ZipfShrinksEveryonesTraffic) {
  SyntheticWorkload wu(mini_synth('E', Distribution::kUniform));
  SyntheticWorkload wz(mini_synth('E', Distribution::kZipf));
  const RunResult uniform =
      run_experiment(mini_machine(PathKind::kBlockIo), wu, quick_run());
  const RunResult zipf =
      run_experiment(mini_machine(PathKind::kBlockIo), wz, quick_run());
  EXPECT_LT(zipf.traffic_bytes, uniform.traffic_bytes);
}

TEST(Integration, PipetteHitRatioBeatsPageCacheOnRecsys) {
  // Table 4's relationship, scaled down.
  RecsysConfig rc;
  rc.total_bytes = 24 * kMiB;
  RecsysWorkload wb(rc);
  const RunResult block =
      run_experiment(mini_machine(PathKind::kBlockIo), wb, quick_run());
  RecsysWorkload wp(rc);
  const RunResult pipette =
      run_experiment(mini_machine(PathKind::kPipette), wp, quick_run());
  EXPECT_GT(pipette.fgrc_hit_ratio, block.page_cache_hit_ratio);
  EXPECT_LT(pipette.fgrc_bytes, block.page_cache_bytes);
  EXPECT_GT(normalized_throughput(pipette, block), 1.0);
}

TEST(Integration, LinkbenchRunsWithWritesOnAllPaths) {
  LinkBenchConfig lc;
  lc.node_count = 1 << 16;
  for (PathKind kind : kAllPaths) {
    LinkBenchWorkload w(lc);
    const RunConfig rc{5'000, 2'000};
    const RunResult r = run_experiment(mini_machine(kind), w, rc);
    EXPECT_GT(r.requests_per_sec(), 0.0) << to_string(kind);
  }
}

TEST(Integration, MmioDegradesWithLargeReads) {
  // Fig. 6's 2B-SSD MMIO behaviour: worst at workload A.
  SyntheticWorkload wa(mini_synth('A', Distribution::kUniform));
  const RunResult block =
      run_experiment(mini_machine(PathKind::kBlockIo), wa, quick_run());
  SyntheticWorkload wm(mini_synth('A', Distribution::kUniform));
  const RunResult mmio =
      run_experiment(mini_machine(PathKind::kTwoBMmio), wm, quick_run());
  EXPECT_LT(normalized_throughput(mmio, block), 0.7);
}

TEST(Integration, DeterministicAcrossRuns) {
  SyntheticWorkload w1(mini_synth('C', Distribution::kUniform));
  SyntheticWorkload w2(mini_synth('C', Distribution::kUniform));
  const RunConfig rc{5'000, 1'000};
  const RunResult a =
      run_experiment(mini_machine(PathKind::kPipette), w1, rc);
  const RunResult b =
      run_experiment(mini_machine(PathKind::kPipette), w2, rc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.traffic_bytes, b.traffic_bytes);
}

}  // namespace
}  // namespace pipette
