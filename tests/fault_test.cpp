// Tests for the deterministic fault-injection framework: zero-rate plans
// are bit-identical to fault-free runs, nonzero rates reproduce exactly,
// NAND terminal failures and HMB faults surface as failed/degraded reads,
// the timeout guard unsticks lost completions, cold restart drops host
// caches, and the fleet's shard-outage policies stay deterministic at any
// job count.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "fleet/fleet.h"
#include "nand/nand.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

// Small synthetic cells (8 MiB file) keep every run in unit-test territory.
SyntheticConfig small_synth(char wl, std::uint64_t seed = 42) {
  SyntheticConfig sc = table1_workload(wl, Distribution::kUniform, seed);
  sc.file_size = 8 * kMiB;
  return sc;
}

SeededWorkloadFactory synth_factory(char wl) {
  return [wl](std::uint64_t seed) -> std::unique_ptr<Workload> {
    return std::make_unique<SyntheticWorkload>(small_synth(wl, seed));
  };
}

RunResult run_cell(const MachineConfig& config, const RunConfig& rc) {
  SyntheticWorkload w(small_synth('C'));
  return run_experiment(config, w, rc);
}

// --- Zero-rate identity -------------------------------------------------

// A zero-rate plan draws no randomness and schedules no extra events, so
// the injector seed cannot matter: runs with wildly different fault seeds
// are bit-identical on every path kind. (The checked-in golden fixture pins
// the same property against pre-fault-framework history.)
TEST(FaultPlan, ZeroRateSeedIsInert) {
  const RunConfig rc{400, 200};
  for (PathKind kind : kAllPaths) {
    MachineConfig base = default_machine(kind);
    MachineConfig reseeded = base;
    reseeded.ssd.faults.seed = 0xdecafbadull;
    EXPECT_EQ(run_cell(base, rc).Deterministic(),
              run_cell(reseeded, rc).Deterministic())
        << to_string(kind);
  }
}

// --- Device-fault behaviour, single machine -----------------------------

MachineConfig faulty_machine(PathKind kind, double rate) {
  MachineConfig m = default_machine(kind);
  m.ssd.faults.nand.read_error_rate = rate;
  m.ssd.faults.hmb.dma_fault_rate = rate;
  m.ssd.faults.hmb.drop_rate = rate / 10;
  return m;
}

TEST(DeviceFaults, NonzeroRatesReproduceBitForBit) {
  const RunConfig rc{500, 250};
  const MachineConfig m = faulty_machine(PathKind::kPipette, 1e-2);
  EXPECT_EQ(run_cell(m, rc).Deterministic(), run_cell(m, rc).Deterministic());
}

TEST(DeviceFaults, NandRetriesAndTerminalFailuresSurface) {
  MachineConfig m = default_machine(PathKind::kBlockIo);
  m.ssd.faults.nand.read_error_rate = 0.5;  // terminal failure: 1/16 reads
  const RunResult r = run_cell(m, {600, 300});
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.failed_reads, 0u);
  EXPECT_LT(r.availability(), 1.0);
  EXPECT_GT(r.availability(), 0.5);
  // Failed reads are not counted as served.
  EXPECT_EQ(r.measured_reads + r.failed_reads, 600u);
}

TEST(DeviceFaults, HmbFaultDegradesPipetteToBlockPath) {
  MachineConfig m = default_machine(PathKind::kPipette);
  m.ssd.faults.hmb.dma_fault_rate = 1.0;  // every FG_READ aborts in the HMB
  Machine machine(m, SyntheticWorkload(small_synth('C')).files());
  SyntheticWorkload w(small_synth('C'));
  const RunResult r = run_experiment_on(machine, w, {400, 200});
  // Every device-reaching fine read degrades; none fail outright, so the
  // path still serves 100% of requests.
  EXPECT_GT(r.degraded_reads, 0u);
  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_EQ(r.measured_reads, 400u);
  EXPECT_EQ(r.availability(), 1.0);
  EXPECT_GT(machine.pipette_path()->pipette_stats().hmb_fault_fallbacks, 0u);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());
}

TEST(DeviceFaults, DegradedReadReturnsTheWrittenBytes) {
  MachineConfig m = default_machine(PathKind::kPipette);
  m.ssd.faults.hmb.dma_fault_rate = 1.0;
  const std::vector<FileSpec> files{{"f", 1 * kMiB, 0, 0}};
  Machine machine(m, files);
  const int fd = machine.vfs().open("f", machine.open_flags(true));

  std::vector<std::uint8_t> wrote(64);
  for (std::size_t i = 0; i < wrote.size(); ++i)
    wrote[i] = static_cast<std::uint8_t>(0xA0 + i);
  machine.vfs().pwrite(fd, 4096 + 128, {wrote.data(), wrote.size()});
  // Flush + drop host caches so the read must go to the device and take the
  // (always-faulting) fine-grained path before degrading to block I/O.
  machine.cold_restart();

  std::vector<std::uint8_t> got(wrote.size(), 0);
  machine.vfs().pread(fd, 4096 + 128, {got.data(), got.size()});
  EXPECT_EQ(std::memcmp(got.data(), wrote.data(), wrote.size()), 0);
  EXPECT_GT(machine.pipette_path()->pipette_stats().hmb_fault_fallbacks, 0u);
}

TEST(DeviceFaults, TimeoutGuardUnsticksLostCompletions) {
  MachineConfig m = default_machine(PathKind::kPipette);
  m.ssd.faults.hmb.drop_rate = 1.0;  // every FG_READ completion is lost
  Machine machine(m, SyntheticWorkload(small_synth('E')).files());
  SyntheticWorkload w(small_synth('E'));  // all-small: everything goes fine
  // The test completing at all proves the guard: without it the first
  // dropped completion would spin run_until_condition forever.
  const RunResult r = run_experiment_on(machine, w, {50, 20});
  EXPECT_GT(machine.pipette_path()->pipette_stats().lost_completions, 0u);
  EXPECT_GT(r.failed_reads, 0u);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());
  // Each lost completion charges the full guard window of simulated time.
  EXPECT_GE(r.elapsed, m.ssd.faults.hmb.timeout);
}

TEST(DeviceFaults, PoisonedFillsKeepFgrcConsistent) {
  MachineConfig m = default_machine(PathKind::kPipette);
  m.ssd.faults.nand.read_error_rate = 0.5;
  Machine machine(m, SyntheticWorkload(small_synth('C')).files());
  SyntheticWorkload w(small_synth('C'));
  (void)run_experiment_on(machine, w, {600, 300});
  EXPECT_GT(machine.pipette_path()->fgrc().stats().aborted_fills, 0u);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());
}

TEST(DeviceFaults, FaultPathsStayAllocationFree) {
  MachineConfig m = faulty_machine(PathKind::kPipette, 5e-2);
  Machine machine(m, SyntheticWorkload(small_synth('C')).files());
  SyntheticWorkload w(small_synth('C'));
  const std::uint64_t heap0 = inline_function_heap_allocations();
  (void)run_experiment_on(machine, w, {400, 200});
  EXPECT_EQ(inline_function_heap_allocations() - heap0, 0u)
      << "a fault-path closure outgrew the InlineFunction inline buffer";
}

// --- Wear-correlated media errors ---------------------------------------

// NandArray level: erases on one die raise that die's per-pass read error
// probability; an untouched die with a zero flat rate draws nothing at all.
TEST(WearFaults, ErasedDieRetriesMoreThanPristineDie) {
  NandGeometry g;
  g.channels = 4;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 16;
  Simulator sim;
  NandFaultPlan plan;
  plan.wear_error_per_erase = 2e-3;  // 40 erases -> 8% per sensing pass
  NandArray nand(sim, g, NandTiming{}, plan);

  for (int i = 0; i < 40; ++i) nand.note_erase(0);
  EXPECT_EQ(nand.erase_count(0), 40u);
  EXPECT_EQ(nand.erase_count(1), 0u);

  // Equal read traffic on the worn die ({ch0, way0}) and a pristine one
  // ({ch0, way1}): only the worn die's wear term can fire.
  for (std::uint64_t i = 0; i < 400; ++i) {
    nand.read_page({0, 0, i % 64}, [] {});
    nand.read_page({0, 1, i % 64}, [] {});
  }
  sim.run_all();
  EXPECT_EQ(nand.reads_on_die(0), 400u);
  EXPECT_EQ(nand.reads_on_die(1), 400u);
  EXPECT_GT(nand.retries_on_die(0), 0u);
  EXPECT_EQ(nand.retries_on_die(1), 0u);
  EXPECT_GT(nand.retries_on_die(0), nand.retries_on_die(1));
}

// A GC-heavy machine whose FTL erases feed the wear model: retries appear
// under a nonzero wear rate and reproduce bit for bit; the zero-rate twin
// is wear-free however the burst knobs and the injector seed are set.
MachineConfig wear_machine(double wear_rate) {
  MachineConfig m = default_machine(PathKind::kPipette);
  // Tiny drive at 50% utilisation so a short write-heavy run reaches GC:
  // 4ch x 2way x 1pl x 8blk x 16pg = 1024 pages (4 MiB).
  m.ssd.geometry.channels = 4;
  m.ssd.geometry.ways_per_channel = 2;
  m.ssd.geometry.planes_per_die = 1;
  m.ssd.geometry.blocks_per_plane = 8;
  m.ssd.geometry.pages_per_block = 16;
  m.ssd.lba_count = 512;
  m.ssd.read_buffer_bytes = 2 * kMiB;
  m.page_cache_bytes = 256 * 1024;  // reads must reach the device
  m.pipette.fine_writes = true;
  m.mapping_unit = 512;
  m.ssd.faults.nand.wear_error_per_erase = wear_rate;
  return m;
}

RunResult run_wear_cell(const MachineConfig& m, const RunConfig& rc) {
  SyntheticConfig sc;
  sc.file_size = (512 - 64) * 4096;  // the FS reserves 64 metadata LBAs
  sc.small_ratio = 1.0;
  sc.small_size = 512;
  sc.write_ratio = 0.5;
  sc.seed = 42;
  SyntheticWorkload w(sc);
  return run_experiment(m, w, rc);
}

TEST(WearFaults, GcErasesInjectRetriesAndReproduce) {
  const RunConfig rc{3000, 3000};
  const MachineConfig worn = wear_machine(2e-2);
  const RunResult r = run_wear_cell(worn, rc);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.Deterministic(), run_wear_cell(worn, rc).Deterministic());

  // Same machine, wear disabled: the identical run with zero retries.
  const RunResult clean = run_wear_cell(wear_machine(0.0), rc);
  EXPECT_EQ(clean.retries, 0u);
}

TEST(WearFaults, ZeroWearRateSeedAndBurstKnobsAreInert) {
  const RunConfig rc{1500, 1500};
  const MachineConfig base = wear_machine(0.0);
  MachineConfig tweaked = base;
  tweaked.ssd.faults.seed = 0xdecafbadull;
  tweaked.ssd.faults.nand.wear_burst_boost = 99.0;
  tweaked.ssd.faults.nand.wear_burst_reads = 1u << 20;
  EXPECT_EQ(run_wear_cell(base, rc).Deterministic(),
            run_wear_cell(tweaked, rc).Deterministic());
}

// --- Cold restart -------------------------------------------------------

TEST(ColdRestart, DropsHostCachesAndKeepsServing) {
  Machine machine(default_machine(PathKind::kPipette),
                  SyntheticWorkload(small_synth('C')).files());
  SyntheticWorkload w(small_synth('C'));
  (void)run_experiment_on(machine, w, {300, 300});
  EXPECT_GT(machine.pipette_path()->fgrc().memory_bytes(), 0u);
  EXPECT_GT(machine.page_cache()->resident_bytes(), 0u);

  machine.cold_restart();
  EXPECT_EQ(machine.pipette_path()->fgrc().memory_bytes(), 0u);
  EXPECT_EQ(machine.page_cache()->resident_bytes(), 0u);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());

  const RunResult after = run_experiment_on(machine, w, {300, 0});
  EXPECT_EQ(after.measured_reads, 300u);
  EXPECT_EQ(after.failed_reads, 0u);
}

// --- Fleet outages ------------------------------------------------------

FleetConfig faulty_fleet(std::size_t shards, PathKind kind) {
  FleetConfig fleet;
  fleet.shards = shards;
  fleet.machine = default_machine(kind);
  return fleet;
}

// Synthetic workloads are all-read, so measured down-shard requests map
// 1:1 onto rejected reads under fail-fast and onto replayed (or failed)
// reads under retry-backoff — which the assertions below exploit.

TEST(FleetFaults, FailFastRejectsExactlyTheDownWindow) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kBlockIo);
  fleet.faults.outages = {{/*shard=*/1, /*fail_at=*/500, /*recover_at=*/800}};
  fleet.faults.policy = DownShardPolicy::kFailFast;
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const RunConfig rc{900, 400};  // measured master indices [400, 1300)
  const FleetResult serial = runner.run(rc, /*jobs=*/1);

  EXPECT_GT(serial.down_requests, 0u);
  EXPECT_EQ(serial.failed_reads, serial.down_requests);
  EXPECT_EQ(serial.measured_reads + serial.failed_reads, rc.requests);
  EXPECT_LT(serial.availability(), 1.0);
  EXPECT_EQ(serial.shard_results[1].down_requests, serial.down_requests);
  EXPECT_EQ(serial.shard_results[0].down_requests, 0u);

  const FleetResult parallel = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(serial, parallel));
}

TEST(FleetFaults, RetryBackoffReplaysEverythingAfterRecovery) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kPipette);
  fleet.faults.outages = {{/*shard=*/1, /*fail_at=*/500, /*recover_at=*/800}};
  fleet.faults.policy = DownShardPolicy::kRetryBackoff;
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const RunConfig rc{900, 400};
  const FleetResult serial = runner.run(rc, /*jobs=*/1);

  // Recovery lands mid-run: every deferred request is replayed against the
  // cold-restarted shard, each charged its client's full backoff ladder.
  EXPECT_GT(serial.down_requests, 0u);
  EXPECT_EQ(serial.failed_reads, 0u);
  EXPECT_EQ(serial.measured_reads, rc.requests);
  EXPECT_EQ(serial.availability(), 1.0);
  EXPECT_EQ(serial.retries,
            serial.down_requests * fleet.faults.retry_attempts);

  const FleetResult parallel = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(serial, parallel));
}

TEST(FleetFaults, RetryBackoffFailsDeferralsWhenRecoveryNeverComes) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kBlockIo);
  // Down from mid-measurement to far beyond the stream's end.
  fleet.faults.outages = {{1, 700, 1u << 20}};
  fleet.faults.policy = DownShardPolicy::kRetryBackoff;
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const FleetResult r = runner.run({900, 400}, /*jobs=*/1);
  EXPECT_GT(r.down_requests, 0u);
  EXPECT_EQ(r.failed_reads, r.down_requests);
  EXPECT_EQ(r.retries, r.down_requests * fleet.faults.retry_attempts);
  EXPECT_LT(r.availability(), 1.0);
}

TEST(FleetFaults, RerouteServesTheFullStreamElsewhere) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kBlockIo);
  fleet.faults.outages = {{1, 500, 800}};
  fleet.faults.policy = DownShardPolicy::kReroute;
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const RunConfig rc{900, 400};
  const FleetResult rerouted = runner.run(rc, /*jobs=*/1);

  EXPECT_GT(rerouted.down_requests, 0u);
  EXPECT_EQ(rerouted.failed_reads, 0u);
  EXPECT_EQ(rerouted.measured_reads, rc.requests);
  EXPECT_EQ(rerouted.availability(), 1.0);

  // Same master stream, so the fleet-wide request count is untouched; the
  // failover targets absorb what the down shard would have served.
  FleetConfig healthy = faulty_fleet(3, PathKind::kBlockIo);
  const FleetResult baseline =
      FleetRunner(healthy, synth_factory('C'), 42).run(rc, /*jobs=*/1);
  EXPECT_EQ(rerouted.requests, baseline.requests);
  EXPECT_LT(rerouted.shard_results[1].requests,
            baseline.shard_results[1].requests);

  const FleetResult parallel = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(rerouted, parallel));
}

TEST(FleetFaults, DeviceFaultsAreDeterministicAcrossJobCounts) {
  FleetConfig fleet = faulty_fleet(4, PathKind::kPipette);
  fleet.machine = faulty_machine(PathKind::kPipette, 1e-2);
  fleet.faults.outages = {{2, 600, 900}};
  fleet.faults.policy = DownShardPolicy::kRetryBackoff;
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const FleetResult serial = runner.run({1200, 600}, /*jobs=*/1);
  const FleetResult parallel = runner.run({1200, 600}, /*jobs=*/4);
  EXPECT_TRUE(deterministic_equal(serial, parallel));
  // Each shard's device splits the fault seed, so error traces differ.
  EXPECT_GT(serial.retries, 0u);
}

TEST(FleetFaults, ZeroRequestRunMergesClean) {
  FleetRunner runner(faulty_fleet(3, PathKind::kBlockIo), synth_factory('C'),
                     42);
  const FleetResult r = runner.run({0, 0}, /*jobs=*/1);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.availability(), 1.0);
  EXPECT_EQ(r.load_imbalance, 0.0);
  EXPECT_EQ(r.min_shard_requests, 0u);
  EXPECT_EQ(r.mean_latency_us, 0.0);
}

// --- effective_shard() -------------------------------------------------

// The pre-pass and every shard's stream filter call effective_shard() and
// must agree bit-for-bit; these pin its routing table directly.
TEST(EffectiveShard, RingOrderSkipsDownShardsUnderReroute) {
  FleetFaultPlan faults;
  faults.policy = DownShardPolicy::kReroute;
  faults.outages = {{/*shard=*/1, /*fail_at=*/100, /*recover_at=*/200},
                    {/*shard=*/2, /*fail_at=*/100, /*recover_at=*/200}};
  // Outside the window: everyone serves their own keys.
  EXPECT_EQ(effective_shard(faults, 5, 1, 99), 1u);
  EXPECT_EQ(effective_shard(faults, 5, 1, 200), 1u);
  // Inside: shard 1's traffic skips the also-down shard 2 and lands on 3.
  EXPECT_EQ(effective_shard(faults, 5, 1, 100), 3u);
  EXPECT_EQ(effective_shard(faults, 5, 2, 150), 3u);
  // Up shards keep their own traffic regardless of the window.
  EXPECT_EQ(effective_shard(faults, 5, 0, 150), 0u);
  EXPECT_EQ(effective_shard(faults, 5, 4, 150), 4u);
}

TEST(EffectiveShard, WrapsTheRingAndHandlesWholeFleetDown) {
  FleetFaultPlan faults;
  faults.policy = DownShardPolicy::kReroute;
  faults.outages = {{/*shard=*/2, /*fail_at=*/0, /*recover_at=*/100},
                    {/*shard=*/0, /*fail_at=*/0, /*recover_at=*/100}};
  // Shard 2's ring walk wraps past the down shard 0 to reach shard 1.
  EXPECT_EQ(effective_shard(faults, 3, 2, 50), 1u);
  // Whole fleet down: the owner keeps the request (the runner's fail-fast
  // guard then rejects it rather than silently serving it).
  faults.outages.push_back({/*shard=*/1, /*fail_at=*/0, /*recover_at=*/100});
  EXPECT_EQ(effective_shard(faults, 3, 2, 50), 2u);
}

TEST(EffectiveShard, NonRerouteMakesItTheIdentity) {
  for (DownShardPolicy policy :
       {DownShardPolicy::kFailFast, DownShardPolicy::kRetryBackoff}) {
    FleetFaultPlan faults;
    faults.policy = policy;
    faults.outages = {{/*shard=*/1, /*fail_at=*/0, /*recover_at=*/100}};
    EXPECT_EQ(effective_shard(faults, 4, 1, 50), 1u)
        << to_string(policy);
  }
}

// --- Every-shard-down windows ------------------------------------------

// A window where every shard is down must surface as failed reads and a
// merge that stays finite — never a div-by-zero, never a silently served
// request.
TEST(FleetFaults, AllShardsDownWindowFailsFastAndMergesClean) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kBlockIo);
  fleet.faults.policy = DownShardPolicy::kFailFast;
  for (std::size_t s = 0; s < 3; ++s)
    fleet.faults.outages.push_back({s, 600, 900});
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const RunConfig rc{900, 400};
  const FleetResult serial = runner.run(rc, /*jobs=*/1);

  EXPECT_GT(serial.failed_reads, 0u);
  EXPECT_EQ(serial.failed_reads, serial.down_requests);
  EXPECT_EQ(serial.measured_reads + serial.failed_reads, rc.requests);
  EXPECT_LT(serial.availability(), 1.0);
  EXPECT_GT(serial.p99_latency_us, 0.0);  // served reads still have stats
  const FleetResult parallel = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(serial, parallel));
}

// Reroute with nowhere to go: effective_shard() returns the owner, and the
// runner's guard rejects the request fail-fast instead of letting the down
// shard serve it into a healthy-looking histogram.
TEST(FleetFaults, RerouteWithNowhereToGoFailsInsteadOfServing) {
  FleetConfig fleet = faulty_fleet(3, PathKind::kBlockIo);
  fleet.faults.policy = DownShardPolicy::kReroute;
  for (std::size_t s = 0; s < 3; ++s)
    fleet.faults.outages.push_back({s, 600, 900});
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const RunConfig rc{900, 400};
  const FleetResult r = runner.run(rc, /*jobs=*/1);

  EXPECT_GT(r.failed_reads, 0u);
  EXPECT_LT(r.availability(), 1.0);
  EXPECT_EQ(r.measured_reads + r.failed_reads, rc.requests);
  const FleetResult parallel = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(r, parallel));
}

// The degenerate extreme: the whole fleet is down for the whole stream.
// Zero reads served, availability 0, every percentile readout 0 — and no
// crash anywhere in the merge.
TEST(FleetFaults, WholeFleetDownWholeRunMergesToZeros) {
  FleetConfig fleet = faulty_fleet(2, PathKind::kBlockIo);
  fleet.faults.policy = DownShardPolicy::kFailFast;
  fleet.faults.outages = {{0, 0, 1u << 20}, {1, 0, 1u << 20}};
  FleetRunner runner(fleet, synth_factory('C'), 42);
  const FleetResult r = runner.run({600, 300}, /*jobs=*/1);

  EXPECT_EQ(r.measured_reads, 0u);
  EXPECT_EQ(r.failed_reads, 600u);
  EXPECT_EQ(r.availability(), 0.0);
  EXPECT_EQ(r.latency.count(), 0u);
  EXPECT_EQ(r.mean_latency_us, 0.0);
  EXPECT_EQ(r.p50_latency_us, 0.0);
  EXPECT_EQ(r.p99_latency_us, 0.0);
  EXPECT_EQ(r.p999_latency_us, 0.0);
}

// Reroute composed with a range partitioner and a non-divisor shard count:
// the hot low-key slice belongs to shard 0; while it is down the ring
// sends its traffic to shard 1, and the pre-pass (which sizes phases by
// effective_shard()) agrees with the filters at any job count.
TEST(FleetFaults, RerouteWithRangePartitionerAndNonDivisorShards) {
  FleetConfig fleet = faulty_fleet(5, PathKind::kBlockIo);
  fleet.partition = PartitionScheme::kRange;
  fleet.faults.policy = DownShardPolicy::kReroute;
  fleet.faults.outages = {{/*shard=*/0, /*fail_at=*/500, /*recover_at=*/900}};
  auto zipf_factory = [](std::uint64_t seed) -> std::unique_ptr<Workload> {
    SyntheticConfig sc = table1_workload('C', Distribution::kZipf, seed);
    sc.file_size = 8 * kMiB;
    return std::make_unique<SyntheticWorkload>(sc);
  };
  FleetRunner runner(fleet, zipf_factory, 42);
  const RunConfig rc{900, 400};
  const FleetResult r = runner.run(rc, /*jobs=*/1);

  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_EQ(r.measured_reads, rc.requests);
  EXPECT_GT(r.down_requests, 0u);
  // The ring neighbour absorbed the zipf head during the window.
  FleetConfig healthy = fleet;
  healthy.faults.outages.clear();
  const FleetResult base = FleetRunner(healthy, zipf_factory, 42).run(rc, 1);
  EXPECT_GT(r.shard_results[1].requests, base.shard_results[1].requests);
  EXPECT_LT(r.shard_results[0].requests, base.shard_results[0].requests);
  const FleetResult parallel = runner.run(rc, /*jobs=*/4);
  EXPECT_TRUE(deterministic_equal(r, parallel));
}

}  // namespace
}  // namespace pipette
