// Tests for the replica/rebalancing layer: degenerate-config identity with
// the legacy fleet, jobs-1 == jobs-N under failover, policy semantics
// (primary-only cliff, warm-standby failover, quorum first-k-of-R), shadow
// reads, catch-up writes + the stale-read == 0 invariant, and live
// resharding with dual-read cutover.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/replica.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

constexpr std::uint64_t kSeed = 42;

SeededWorkloadFactory synth_factory(char wl, Distribution dist,
                                    double write_ratio = 0.0) {
  return [wl, dist, write_ratio](std::uint64_t seed)
             -> std::unique_ptr<Workload> {
    SyntheticConfig sc = table1_workload(wl, dist, seed);
    sc.file_size = 8 * kMiB;
    sc.write_ratio = write_ratio;
    return std::make_unique<SyntheticWorkload>(sc);
  };
}

FleetConfig replica_fleet(std::size_t groups, std::size_t replicas,
                          ReadPolicy policy,
                          PathKind kind = PathKind::kPipette) {
  FleetConfig fleet;
  fleet.shards = groups;
  fleet.machine = default_machine(kind);
  fleet.replication.replicas = replicas;
  fleet.replication.read_policy = policy;
  return fleet;
}

std::uint64_t metric(const FleetResult& r, const char* name) {
  return r.metrics.value(name);
}

// R=1 kFailover with no faults routes through the replica machinery but
// must reproduce the legacy single-copy fleet exactly: same per-machine
// simulations, same composed aggregates. (The fully degenerate config —
// R=1 kPrimaryOnly — takes the legacy code path itself and is pinned by the
// golden fleet fixture; this test pins the replica path against it.)
TEST(Replica, DegenerateReplicaPathMatchesLegacyFleet) {
  const RunConfig rc{1200, 600};
  FleetConfig legacy_cfg = replica_fleet(3, 1, ReadPolicy::kPrimaryOnly);
  FleetRunner legacy(legacy_cfg, synth_factory('C', Distribution::kZipf, 0.2),
                     kSeed);
  FleetConfig repl_cfg = replica_fleet(3, 1, ReadPolicy::kFailover);
  FleetRunner replicated(repl_cfg,
                         synth_factory('C', Distribution::kZipf, 0.2), kSeed);

  const FleetResult a = legacy.run(rc, /*jobs=*/1);
  const FleetResult b = replicated.run(rc, /*jobs=*/1);

  ASSERT_EQ(a.shard_results.size(), b.shard_results.size());
  for (std::size_t s = 0; s < a.shard_results.size(); ++s) {
    EXPECT_EQ(a.shard_results[s].Deterministic(),
              b.shard_results[s].Deterministic())
        << "machine " << s;
  }
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.measured_reads, b.measured_reads);
  EXPECT_EQ(a.bytes_requested, b.bytes_requested);
  EXPECT_EQ(a.traffic_bytes, b.traffic_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_reads, b.failed_reads);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.down_requests, b.down_requests);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.p50_latency_us, b.p50_latency_us);
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_EQ(a.p999_latency_us, b.p999_latency_us);
  EXPECT_EQ(a.max_shard_requests, b.max_shard_requests);
  EXPECT_EQ(a.min_shard_requests, b.min_shard_requests);
  EXPECT_EQ(a.mean_shard_requests, b.mean_shard_requests);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
  EXPECT_EQ(a.hottest_shard, b.hottest_shard);
  EXPECT_EQ(metric(b, "fleet.replica_stale_reads"), 0u);
}

// The headline failover property: losing the primary of a group mid-run
// with R=2 kFailover keeps every read served (availability == 1, zero
// failed reads), the standby absorbing the window with per-read detection
// latency + one client retry each.
TEST(Replica, PrimaryOutageFailsOverWithoutFailedReads) {
  FleetConfig fleet = replica_fleet(3, 2, ReadPolicy::kFailover);
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/900, /*recover_at=*/1500, /*replica=*/0}};
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf), kSeed);
  const FleetResult r = runner.run({1200, 600}, /*jobs=*/1);

  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_DOUBLE_EQ(r.availability(), 1.0);
  EXPECT_EQ(r.measured_reads, 1200u);
  EXPECT_GT(r.down_requests, 0u);
  EXPECT_GT(metric(r, "fleet.replica_failover_reads"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_failover_reads"), r.down_requests);
  // One client retry per failover serve (plus any NAND retry passes).
  EXPECT_GE(r.retries, metric(r, "fleet.replica_failover_reads"));
  EXPECT_EQ(metric(r, "fleet.replica_unserved_reads"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_stale_reads"), 0u);
  // The standby (machine 1) actually served client traffic in the window.
  EXPECT_GT(r.shard_results[1].requests, 0u);
}

// Same outage under kPrimaryOnly: the standby never serves, so the window
// is the R=1-style availability cliff — exactly what bench/fleet_failover
// contrasts against kFailover/kQuorum.
TEST(Replica, PrimaryOnlyShowsTheAvailabilityCliff) {
  FleetConfig fleet = replica_fleet(3, 2, ReadPolicy::kPrimaryOnly);
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/900, /*recover_at=*/1500, /*replica=*/0}};
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf), kSeed);
  const FleetResult r = runner.run({1200, 600}, /*jobs=*/1);

  EXPECT_GT(r.failed_reads, 0u);
  EXPECT_LT(r.availability(), 1.0);
  EXPECT_EQ(r.failed_reads, metric(r, "fleet.replica_unserved_reads"));
  EXPECT_EQ(r.failed_reads, r.down_requests);
  // With no shadow reads and a read-only stream the standby serves nothing.
  EXPECT_EQ(r.shard_results[1].requests, 0u);
  EXPECT_EQ(metric(r, "fleet.replica_failover_reads"), 0u);
}

// Quorum fan-out: every up replica serves every read of its group; the
// client completes on the k-th fastest. Losing one of three replicas keeps
// quorum (k=2) with no shortfall and no detection penalty.
TEST(Replica, QuorumToleratesReplicaLossWithoutDetectionPenalty) {
  FleetConfig fleet = replica_fleet(2, 3, ReadPolicy::kQuorum);
  fleet.replication.quorum_k = 2;
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/900, /*recover_at=*/1500, /*replica=*/0}};
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf), kSeed);
  const FleetResult r = runner.run({1200, 600}, /*jobs=*/1);

  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_DOUBLE_EQ(r.availability(), 1.0);
  EXPECT_EQ(metric(r, "fleet.replica_quorum_reads"), 1200u);
  EXPECT_EQ(metric(r, "fleet.replica_quorum_shortfall"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_failover_penalty_ns"), 0u);
  // Fan-out: 3 legs per read normally, 2 for group-0 reads in the window.
  const std::uint64_t fanout = metric(r, "fleet.replica_quorum_fanout");
  EXPECT_LT(fanout, 3 * 1200u);
  EXPECT_EQ(3 * 1200u - fanout, r.down_requests);
}

// jobs-1 == jobs-N under failover, quorum and shadow reads: the router is a
// pure function of (config, seed), so the worker count can never leak into
// results. This is the replica-world acceptance determinism gate.
TEST(Replica, JobsOneEqualsJobsFourUnderFailoverAndQuorum) {
  for (ReadPolicy policy : {ReadPolicy::kFailover, ReadPolicy::kQuorum}) {
    FleetConfig fleet = replica_fleet(3, 2, policy);
    fleet.replication.quorum_k = 2;
    fleet.replication.shadow_read_fraction = 0.25;
    fleet.faults.outages = {
        {/*shard=*/1, /*fail_at=*/800, /*recover_at=*/1400, /*replica=*/0}};
    FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf, 0.1),
                       kSeed);
    const FleetResult serial = runner.run({1200, 600}, /*jobs=*/1);
    const FleetResult parallel = runner.run({1200, 600}, /*jobs=*/4);
    EXPECT_TRUE(deterministic_equal(serial, parallel))
        << "policy " << to_string(policy);
  }
}

// Shadow reads are invisible to clients: turning them on warms the standby
// (it now serves device traffic) without changing a single client-visible
// bit — same composed latency histogram, same aggregates.
TEST(Replica, ShadowReadsWarmStandbysWithoutTouchingClients) {
  const RunConfig rc{1200, 600};
  FleetConfig off = replica_fleet(2, 2, ReadPolicy::kFailover);
  FleetConfig on = off;
  on.replication.shadow_read_fraction = 0.5;
  const auto factory = synth_factory('C', Distribution::kZipf);
  const FleetResult a = FleetRunner(off, factory, kSeed).run(rc, 1);
  const FleetResult b = FleetRunner(on, factory, kSeed).run(rc, 1);

  EXPECT_GT(metric(b, "fleet.replica_shadow_reads"), 0u);
  EXPECT_GT(b.shard_results[1].requests, 0u);  // the standby worked
  EXPECT_EQ(a.shard_results[1].requests, 0u);
  EXPECT_EQ(a.latency, b.latency);  // client distribution bit-identical
  EXPECT_EQ(a.measured_reads, b.measured_reads);
  EXPECT_EQ(a.makespan, b.makespan);
}

// A standby that dies misses the writes replicated to its group; at
// recovery the router replays them (catch-up writes) right after the cold
// restart, and no client read ever lands on the stale copy: the stale-read
// counter stays zero by construction, and lost writes stay zero because
// recovery happens inside the run.
TEST(Replica, CatchupWritesReplayMissedWritesAndStaleStaysZero) {
  FleetConfig fleet = replica_fleet(2, 2, ReadPolicy::kFailover);
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/700, /*recover_at=*/1200, /*replica=*/1}};
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf, 0.3),
                     kSeed);
  const FleetResult r = runner.run({1200, 600}, /*jobs=*/1);

  EXPECT_GT(metric(r, "fleet.replica_catchup_writes"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_lost_writes"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_stale_reads"), 0u);
  // The primary never died: clients saw full availability throughout.
  EXPECT_EQ(r.failed_reads, 0u);
  EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

// If recovery never arrives, the buffered writes are lost — counted, not
// silently dropped.
TEST(Replica, WritesMissedForeverAreCountedAsLost) {
  FleetConfig fleet = replica_fleet(2, 2, ReadPolicy::kFailover);
  fleet.faults.outages = {{/*shard=*/0, /*fail_at=*/700,
                           /*recover_at=*/1'000'000, /*replica=*/1}};
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf, 0.3),
                     kSeed);
  const FleetResult r = runner.run({1200, 600}, /*jobs=*/1);

  EXPECT_GT(metric(r, "fleet.replica_lost_writes"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_catchup_writes"), 0u);
  EXPECT_EQ(metric(r, "fleet.replica_stale_reads"), 0u);
}

// Live resharding: the zipf-hot head range migrates mid-measurement. The
// old owner serves every dual read (no availability dip), the target warms
// through kWarmRead traffic, and after the watermark the range cuts over
// and the target serves it — deterministically at any jobs count.
TEST(Replica, MigrationCutsOverDeterministicallyWithoutAvailabilityDip) {
  FleetConfig fleet = replica_fleet(3, 1, ReadPolicy::kFailover);
  fleet.partition = PartitionScheme::kRange;
  MigrationPlan& mig = fleet.replication.migration;
  mig.target = 2;
  mig.key_lo = 0;
  mig.key_hi = 1 * kMiB;  // the zipf head: hottest slice of the keyspace
  mig.start_at = 900;     // mid-measured
  mig.warm_reads = 100;
  FleetRunner runner(fleet, synth_factory('C', Distribution::kZipf, 0.1),
                     kSeed);
  const FleetResult serial = runner.run({1200, 600}, /*jobs=*/1);
  const FleetResult parallel = runner.run({1200, 600}, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(serial, parallel));

  EXPECT_EQ(metric(serial, "fleet.migration_cut_over"), 1u);
  EXPECT_GE(metric(serial, "fleet.migration_dual_reads"), 100u);
  EXPECT_GT(metric(serial, "fleet.migration_warm_reads"), 0u);
  EXPECT_GT(metric(serial, "fleet.migration_cutover_index"), 900u);
  EXPECT_GT(metric(serial, "fleet.migration_migrated_reads"), 0u);
  EXPECT_GT(metric(serial, "fleet.migration_dual_writes"), 0u);
  EXPECT_EQ(metric(serial, "fleet.replica_stale_reads"), 0u);
  EXPECT_EQ(serial.failed_reads, 0u);
  EXPECT_DOUBLE_EQ(serial.availability(), 1.0);
  EXPECT_EQ(serial.measured_reads, metric(serial, "fleet.replica_client_reads"));
}

// Every copy of a group down in one window: reads in the window are
// unserved and counted (fail-fast), or rerouted cross-group when the fleet
// policy says so — never silently served by a dead machine.
TEST(Replica, WholeGroupDownWindowFailsCleanlyOrReroutes) {
  FleetConfig fleet = replica_fleet(2, 2, ReadPolicy::kFailover);
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/900, /*recover_at=*/1300, /*replica=*/0},
      {/*shard=*/0, /*fail_at=*/900, /*recover_at=*/1300, /*replica=*/1}};
  FleetRunner fail_fast(fleet, synth_factory('C', Distribution::kZipf),
                        kSeed);
  const FleetResult a = fail_fast.run({1200, 600}, /*jobs=*/1);
  EXPECT_GT(a.failed_reads, 0u);
  EXPECT_LT(a.availability(), 1.0);
  EXPECT_EQ(a.failed_reads, a.metrics.value("fleet.replica_unserved_reads"));
  EXPECT_GT(a.p99_latency_us, 0.0);  // merge still total, nothing divided by 0

  fleet.faults.policy = DownShardPolicy::kReroute;
  FleetRunner reroute(fleet, synth_factory('C', Distribution::kZipf), kSeed);
  const FleetResult b = reroute.run({1200, 600}, /*jobs=*/1);
  EXPECT_EQ(b.failed_reads, 0u);
  EXPECT_DOUBLE_EQ(b.availability(), 1.0);
  EXPECT_GT(b.metrics.value("fleet.replica_failover_reads"), 0u);
}

}  // namespace
}  // namespace pipette
