// Tests for the speculative readahead prefetcher and the LMB interconnect
// backend: the detector's in-place insertion-merge (fuzzed against a
// re-sort reference, and allocation-free once warm), the stream classifier
// verdicts, speculative placement via plan_speculative, the Info-ring's
// out-of-order release, the end-to-end latency win on structured streams,
// clean degradation under HMB faults, and the bit-identity tripwires that
// pin prefetch-off + kHmb runs to pre-prefetcher history.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "pipette/detector.h"
#include "pipette/fgrc.h"
#include "sim/experiment.h"
#include "workload/pattern.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

// --- Detector: in-place insertion-merge -------------------------------

// Reference coalescer: append, re-sort, merge touching ranges — the
// O(n log n)-per-access behaviour the hot path replaced. The fuzz below
// pins the in-place version to it.
std::vector<PageAccessRange> reference_merge(
    std::vector<PageAccessRange> ranges, std::uint32_t offset,
    std::uint32_t len) {
  ranges.push_back({offset, len});
  std::sort(ranges.begin(), ranges.end(),
            [](const PageAccessRange& a, const PageAccessRange& b) {
              return a.offset < b.offset;
            });
  std::vector<PageAccessRange> merged;
  for (const PageAccessRange& r : ranges) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().len >= r.offset) {
      const std::uint32_t end =
          std::max(merged.back().offset + merged.back().len, r.offset + r.len);
      merged.back().len = end - merged.back().offset;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

TEST(DetectorMerge, FuzzAgainstReSortReference) {
  Rng rng(0x5eed);
  FineGrainedAccessDetector det;
  std::vector<PageAccessRange> ref;
  for (int i = 0; i < 20'000; ++i) {
    const auto offset = static_cast<std::uint32_t>(rng.next_below(4096 - 1));
    const auto len = static_cast<std::uint32_t>(
        1 + rng.next_below(std::min<std::uint64_t>(256, 4096 - offset)));
    ref = reference_merge(std::move(ref), offset, len);
    const std::size_t n = det.record(7, 3, offset, len);
    ASSERT_EQ(n, ref.size()) << "at access " << i;
  }
  const std::vector<PageAccessRange>& got = det.ranges(7, 3);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, ref[i].offset);
    EXPECT_EQ(got[i].len, ref[i].len);
  }
  // Exit invariant: sorted, disjoint, no two adjacent.
  for (std::size_t i = 1; i < got.size(); ++i)
    EXPECT_GT(got[i].offset, got[i - 1].offset + got[i - 1].len);
}

TEST(DetectorMerge, SteadyStateIsAllocationFree) {
  FineGrainedAccessDetector det;
  // Deterministic script over a handful of pages; two passes. The second
  // replays offsets the per-page vectors have already grown to hold, so it
  // must not add a single allocation event.
  auto replay = [&det] {
    std::uint64_t x = 0x243f6a8885a308d3ull;
    for (int i = 0; i < 50'000; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t page = (x >> 33) % 64;
      const auto offset = static_cast<std::uint32_t>(((x >> 13) % 31) * 128);
      const auto len = static_cast<std::uint32_t>(64 + (x % 3) * 64);
      det.record(1, page, offset, len);
    }
  };
  replay();
  const std::uint64_t warm = det.allocation_events();
  replay();
  EXPECT_EQ(det.allocation_events(), warm)
      << "a warm detector re-recording a seen pattern allocated — did a "
         "per-access re-sort or scratch vector sneak back into record()?";
}

// --- Stream classifier --------------------------------------------------

TEST(StreamClassifier, LabelsSequentialStridedClusteredRandom) {
  FineGrainedAccessDetector det;
  // Sequential: stride equals the access length.
  StreamPrediction p;
  for (std::uint64_t k = 0; k < 4; ++k) p = det.observe(1, k * 64, 64);
  EXPECT_EQ(p.cls, StreamClass::kSequential);
  EXPECT_EQ(p.stride, 64);
  EXPECT_GE(p.confidence, 2u);

  // Strided: constant stride larger than the length.
  for (std::uint64_t k = 0; k < 4; ++k) p = det.observe(2, k * 4096 + 512, 128);
  EXPECT_EQ(p.cls, StreamClass::kStrided);
  EXPECT_EQ(p.stride, 4096);

  // Clustered-hot: dense recency window, no constant stride. Deltas are
  // pairwise distinct so the stride run never reaches 2.
  const std::uint64_t hot[] = {0,    1000, 300,  2100, 700,  1500,
                               100,  2500, 900,  1800, 400,  2300};
  for (std::uint64_t off : hot) p = det.observe(3, off, 128);
  EXPECT_EQ(p.cls, StreamClass::kClusteredHot);
  EXPECT_GE(p.confidence, 6u);

  // Random: far-apart offsets with distinct deltas stay unclassified.
  const std::uint64_t cold[] = {0,          40 * kMiB, 3 * kMiB,  90 * kMiB,
                                17 * kMiB,  66 * kMiB, 9 * kMiB,  120 * kMiB,
                                50 * kMiB,  5 * kMiB,  77 * kMiB, 30 * kMiB};
  for (std::uint64_t off : cold) p = det.observe(4, off, 128);
  EXPECT_EQ(p.cls, StreamClass::kRandom);

  const auto& counts = det.stream_class_counts();
  EXPECT_GT(counts[static_cast<std::size_t>(StreamClass::kSequential)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(StreamClass::kStrided)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(StreamClass::kClusteredHot)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(StreamClass::kRandom)], 0u);
}

// --- Speculative placement (plan_speculative) ---------------------------

struct SpecFgrcFixture : ::testing::Test {
  static Hmb::Layout layout() {
    Hmb::Layout l;
    l.info_slots = 64;
    l.tempbuf_bytes = 8 * 1024;
    l.data_bytes = 64 * 1024;
    return l;
  }
  static FgrcConfig config() {
    FgrcConfig c;
    c.slab.slab_size = 8 * 1024;
    c.slab.class_sizes = {64, 128, 256, 512, 1024};
    c.slab.max_external_bytes = 64 * 1024;
    return c;
  }
  Hmb hmb{layout()};
  FineGrainedReadCache fgrc{hmb, config(), nullptr};
};

TEST_F(SpecFgrcFixture, HighConfidencePromotesLowConfidenceStagesUpperHalf) {
  fgrc.enable_speculative_staging();
  const HmbAddr tb = hmb.tempbuf_offset();
  const HmbAddr half = static_cast<HmbAddr>(hmb.tempbuf().size()) / 2;

  // Confidence at/above the adaptive threshold (initially 2): promoted.
  const FgKey hot{1, 4096, 128};
  const MissPlan p1 = fgrc.plan_speculative(hot, 4);
  EXPECT_TRUE(p1.promoted);
  EXPECT_TRUE(fgrc.contains(hot));
  EXPECT_TRUE(fgrc.index_consistent());

  // Below the threshold: staged through the *speculative* (upper) TempBuf
  // half, never a cache reservation.
  const FgKey cold{1, 9000, 128};
  const MissPlan p2 = fgrc.plan_speculative(cold, 1);
  EXPECT_FALSE(p2.promoted);
  EXPECT_FALSE(fgrc.contains(cold));
  EXPECT_GE(p2.dest, tb + half);
  EXPECT_LT(p2.dest, tb + 2 * half);

  // Demand staging stays confined to the lower half once split.
  const HmbAddr demand = fgrc.tempbuf_addr(256);
  EXPECT_GE(demand, tb);
  EXPECT_LT(demand + 256, tb + half + 1);

  // Speculation must not touch demand lookup statistics or the ghost
  // tracker: a later demand miss on `cold` behaves like a first access.
  EXPECT_EQ(fgrc.stats().lookups.accesses(), 0u);
  const MissPlan p3 = fgrc.plan_miss(cold);
  EXPECT_FALSE(p3.promoted) << "plan_speculative leaked a ghost reference";
}

TEST_F(SpecFgrcFixture, AbortFillEvictsSpeculativePromotion) {
  fgrc.enable_speculative_staging();
  const FgKey key{2, 128, 64};
  const MissPlan plan = fgrc.plan_speculative(key, 4);
  ASSERT_TRUE(plan.promoted);
  ASSERT_TRUE(fgrc.contains(key));
  fgrc.abort_fill(key, plan);
  EXPECT_FALSE(fgrc.contains(key));
  EXPECT_TRUE(fgrc.index_consistent());
  EXPECT_EQ(fgrc.stats().aborted_fills, 1u);
}

// --- Info-ring out-of-order release -------------------------------------

TEST(InfoAreaRelease, OutOfOrderRetirementAdvancesPastDigestedPrefix) {
  InfoArea ring(4);
  const std::uint64_t a = ring.push({0, 0, 0, 64});
  const std::uint64_t b = ring.push({64, 1, 0, 64});
  const std::uint64_t c = ring.push({128, 2, 0, 64});
  ASSERT_EQ(a, 0u);
  ASSERT_EQ(ring.in_flight(), 3u);

  // Retiring the middle record leaves the head pinned by the oldest.
  ring.release(b);
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.in_flight(), 3u);

  // Retiring the oldest advances past the whole digested prefix {a, b}.
  ring.release(a);
  EXPECT_EQ(ring.head(), 2u);
  EXPECT_EQ(ring.in_flight(), 1u);

  ring.release(c);
  EXPECT_TRUE(ring.empty());

  // The freed slots are immediately reusable (slot = index % capacity).
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t idx = ring.push({0, 0, 0, 1});
    ring.consume();
    EXPECT_EQ(ring.head(), idx + 1);
  }
}

// --- End-to-end: structured streams win, accounting stays sane ----------

StridedConfig small_strided(std::uint64_t seed = 42) {
  StridedConfig c;
  c.file_size = 16 * kMiB;
  c.run_length = 64;
  c.seed = seed;
  return c;
}

MachineConfig pipette_machine(bool prefetch,
                              InterconnectKind ic = InterconnectKind::kHmb) {
  MachineConfig m = default_machine(PathKind::kPipette);
  m.prefetch.enabled = prefetch;
  m.interconnect = ic;
  return m;
}

TEST(PrefetchEndToEnd, StridedStreamGetsFasterAndClaimsFills) {
  const RunConfig rc{6'000, 3'000};
  StridedWorkload off_w(small_strided());
  const RunResult off = run_experiment(pipette_machine(false), off_w, rc);

  StridedWorkload on_w(small_strided());
  Machine machine(pipette_machine(true), on_w.files());
  const RunResult on = run_experiment_on(machine, on_w, rc);

  EXPECT_LT(on.mean_latency_us, off.mean_latency_us);
  EXPECT_GT(on.metrics.value("prefetch.issued"), 0u);
  EXPECT_GT(on.metrics.value("prefetch.hits"), 0u);
  EXPECT_GT(on.metrics.value("detector.stream_strided"), 0u);

  const Prefetcher* pf = machine.pipette_path()->prefetcher();
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->stats().issued, on.metrics.value("prefetch.issued"));
  EXPECT_LE(pf->outstanding(), pf->config().max_outstanding);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());

  // Prefetch-off machines must not even construct the prefetcher.
  Machine plain(pipette_machine(false), off_w.files());
  EXPECT_EQ(plain.pipette_path()->prefetcher(), nullptr);
}

TEST(PrefetchEndToEnd, PrefetchRunsAreDeterministic) {
  const RunConfig rc{2'000, 1'000};
  StridedWorkload a(small_strided());
  StridedWorkload b(small_strided());
  EXPECT_EQ(run_experiment(pipette_machine(true), a, rc).Deterministic(),
            run_experiment(pipette_machine(true), b, rc).Deterministic());
}

// --- Interconnect backend -----------------------------------------------

TEST(Interconnect, LmbHasDistinctTimingAndReclaimsHostDram) {
  const RunConfig rc{3'000, 1'500};
  StridedWorkload hw(small_strided());
  Machine hmb_machine(pipette_machine(false), hw.files());
  const RunResult hmb = run_experiment_on(hmb_machine, hw, rc);
  StridedWorkload lw(small_strided());
  Machine lmb_machine(pipette_machine(false, InterconnectKind::kLmb),
                      lw.files());
  const RunResult lmb = run_experiment_on(lmb_machine, lw, rc);

  EXPECT_NE(hmb.mean_latency_us, lmb.mean_latency_us);
  EXPECT_GT(lmb.metrics.value("lmb.dma_transfers"), 0u);
  EXPECT_EQ(hmb.metrics.value("lmb.dma_transfers"), 0u);
  // The linked buffer stops stealing host DRAM: its data-area budget is
  // returned to the page cache's capacity.
  EXPECT_GT(lmb_machine.page_cache()->capacity_pages(),
            hmb_machine.page_cache()->capacity_pages());
}

TEST(Interconnect, LmbWorksOnEveryPipetteKind) {
  const RunConfig rc{500, 250};
  for (PathKind kind : kAllPaths) {
    MachineConfig m = default_machine(kind);
    m.interconnect = InterconnectKind::kLmb;
    SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 42);
    sc.file_size = 8 * kMiB;
    SyntheticWorkload w(sc);
    const RunResult r = run_experiment(m, w, rc);
    EXPECT_EQ(r.measured_reads + r.failed_reads, 500u) << to_string(kind);
    EXPECT_EQ(r.availability(), 1.0) << to_string(kind);
  }
}

// --- Fault interplay ----------------------------------------------------

TEST(PrefetchFaults, SpeculativeFillsDegradeCleanlyUnderHmbFaults) {
  MachineConfig m = pipette_machine(true);
  m.ssd.faults.hmb.dma_fault_rate = 0.2;
  m.ssd.faults.hmb.drop_rate = 0.02;
  const RunConfig rc{4'000, 2'000};

  StridedWorkload w(small_strided());
  Machine machine(m, w.files());
  const RunResult r = run_experiment_on(machine, w, rc);

  // The run finishing at all proves no stuck ticketed wait; availability
  // accounting must be unchanged by speculation: every request is still
  // either served or charged as a failed read (lost completions fail after
  // the timeout guard; plain DMA faults degrade to the block path).
  EXPECT_EQ(r.measured_reads + r.failed_reads, 4'000u);
  EXPECT_GT(r.degraded_reads, 0u);
  EXPECT_GT(r.availability(), 0.99);

  const Prefetcher* pf = machine.pipette_path()->prefetcher();
  ASSERT_NE(pf, nullptr);
  EXPECT_GT(pf->stats().issued, 0u);
  // At a 20% DMA fault rate some speculative fills must have faulted (and
  // their promoted reservations been evicted, not left poisoned).
  EXPECT_GT(pf->stats().faulted, 0u);
  EXPECT_LE(pf->outstanding(), pf->config().max_outstanding);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());
}

TEST(PrefetchFaults, FaultyPrefetchRunsReproduceBitForBit) {
  MachineConfig m = pipette_machine(true);
  m.ssd.faults.hmb.dma_fault_rate = 0.1;
  m.ssd.faults.hmb.drop_rate = 0.05;
  const RunConfig rc{1'500, 750};
  StridedWorkload a(small_strided());
  StridedWorkload b(small_strided());
  EXPECT_EQ(run_experiment(m, a, rc).Deterministic(),
            run_experiment(m, b, rc).Deterministic());
}

TEST(PrefetchFaults, ColdRestartDropsSpeculativeState) {
  StridedWorkload w(small_strided());
  Machine machine(pipette_machine(true), w.files());
  run_experiment_on(machine, w, {2'000, 1'000});
  const Prefetcher* pf = machine.pipette_path()->prefetcher();
  ASSERT_NE(pf, nullptr);
  machine.cold_restart();
  EXPECT_EQ(pf->outstanding(), 0u);
  EXPECT_EQ(pf->unclaimed(), 0u);
  EXPECT_TRUE(machine.pipette_path()->fgrc().index_consistent());
}

// --- Bit-identity tripwires ---------------------------------------------

// The golden fixture pins default-config runs to pre-prefetcher history;
// this pins the *explicit* prefetch-off + kHmb spelling to the default
// config, closing the loop: flags at their defaults change nothing.
TEST(PrefetchOffIdentity, ExplicitHmbPrefetchOffMatchesDefaults) {
  const RunConfig rc{800, 400};
  for (PathKind kind : kAllPaths) {
    SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 42);
    sc.file_size = 8 * kMiB;
    SyntheticWorkload dw(sc);
    const RunResult base = run_experiment(default_machine(kind), dw, rc);

    MachineConfig explicit_cfg = default_machine(kind);
    explicit_cfg.interconnect = InterconnectKind::kHmb;
    explicit_cfg.prefetch.enabled = false;
    SyntheticWorkload ew(sc);
    const RunResult spelled = run_experiment(explicit_cfg, ew, rc);
    EXPECT_EQ(base.Deterministic(), spelled.Deterministic()) << to_string(kind);
  }
}

}  // namespace
}  // namespace pipette
