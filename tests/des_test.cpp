// Tests for the discrete-event simulation core: ordering, determinism,
// clock semantics, condition-driven execution, the pooled event queue, and
// the allocation-free steady state of the hot loop.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "des/event_queue.h"
#include "des/simulator.h"

// Counting global allocator: every replaceable operator new in this binary
// bumps the counter, so tests can assert a region performed zero heap
// allocations. (The default operator new[] forwards here; our code never
// over-aligns beyond __STDCPP_DEFAULT_NEW_ALIGNMENT__.)
static std::atomic<std::uint64_t> g_operator_new_calls{0};

void* operator new(std::size_t size) {
  g_operator_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_operator_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pipette {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakInSubmissionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(10, [&] { ++fired; });
  });
  sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, AdvanceMovesClockWithoutRunning) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5, [&] { ran = true; });
  sim.advance(100);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_FALSE(ran);  // advance() skips; run_* executes
  sim.run_all();
  EXPECT_TRUE(ran);
  // The overdue event runs at the current clock, which never goes backward.
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilInclusiveOfBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(15, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilConditionStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) sim.schedule(static_cast<SimDuration>(i) * 10,
                                            [&] { ++fired; });
  EXPECT_TRUE(sim.run_until_condition([&] { return fired == 3; }));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.pending_events(), 2u);
}

TEST(Simulator, RunUntilConditionFalseWhenQueueDrains) {
  Simulator sim;
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.run_until_condition([] { return false; }));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.advance(50);
  SimTime when = 0;
  sim.schedule_at(70, [&] { when = sim.now(); });
  sim.run_all();
  EXPECT_EQ(when, 70u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// --- EventQueue ---

// Randomized stress: run ~100k events with duplicate-heavy timestamps
// through the 4-ary pooled queue and a reference std::priority_queue model
// side by side, interleaving push and pop bursts. Execution order must be
// identical — this is the determinism contract every experiment rests on.
TEST(EventQueue, MatchesReferencePriorityQueueUnderStress) {
  struct RefEvent {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {  // max-heap comparator -> (when, seq) ascending pops
    bool operator()(const RefEvent& a, const RefEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  EventQueue queue;
  std::priority_queue<RefEvent, std::vector<RefEvent>, Later> ref;
  Rng rng(2024);
  std::vector<std::uint64_t> got, want;
  constexpr std::uint64_t kEvents = 100'000;
  got.reserve(kEvents);
  want.reserve(kEvents);

  std::uint64_t seq = 0;
  std::uint64_t id = 0;
  SimTime now = 0;
  while (id < kEvents || !queue.empty()) {
    if (id < kEvents) {
      const std::uint64_t burst = 1 + rng.next_below(8);
      for (std::uint64_t i = 0; i < burst && id < kEvents; ++i) {
        // next_below(16) makes duplicate timestamps the common case.
        const SimTime when = now + rng.next_below(16);
        const std::uint64_t this_id = id++;
        queue.push(when, seq, [&got, this_id] { got.push_back(this_id); });
        ref.push({when, seq, this_id});
        ++seq;
      }
    }
    ASSERT_EQ(queue.size(), ref.size());
    const std::uint64_t pops = 1 + rng.next_below(8);
    for (std::uint64_t i = 0; i < pops && !queue.empty(); ++i) {
      SimTime when = 0;
      EventQueue::Callback cb;
      queue.pop_min(when, cb);
      ASSERT_EQ(when, ref.top().when);
      want.push_back(ref.top().id);
      ref.pop();
      if (when > now) now = when;
      cb();
    }
  }
  EXPECT_TRUE(ref.empty());
  ASSERT_EQ(got.size(), kEvents);
  EXPECT_EQ(got, want);
}

TEST(EventQueue, MinWhenTracksEarliestEvent) {
  EventQueue queue;
  queue.push(30, 0, [] {});
  queue.push(10, 1, [] {});
  queue.push(20, 2, [] {});
  EXPECT_EQ(queue.min_when(), 10u);
  SimTime when = 0;
  EventQueue::Callback cb;
  queue.pop_min(when, cb);
  EXPECT_EQ(when, 10u);
  EXPECT_EQ(queue.min_when(), 20u);
  EXPECT_EQ(queue.size(), 2u);
}

// --- Allocation behaviour of the hot loop ---

// Once the pools are warm, scheduling and running events with captures that
// fit the small-buffer limit must not touch the heap at all: neither the
// global allocator nor the InlineFunction fallback path.
TEST(Simulator, SteadyStateSchedulingIsAllocationFree) {
  Simulator sim;
  std::uint64_t sink = 0;

  // Warm the queue to a high-water mark above what the measured phase uses.
  constexpr int kWarmPending = 512;
  for (int i = 0; i < kWarmPending; ++i) {
    sim.schedule(1 + static_cast<SimDuration>(i % 7),
                 [&sink, i] { sink += static_cast<std::uint64_t>(i); });
  }
  sim.run_all();

  const std::uint64_t news_before =
      g_operator_new_calls.load(std::memory_order_relaxed);
  const std::uint64_t heap_before = inline_function_heap_allocations();

  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      // 24-byte capture: comfortably inside the 48-byte SBO.
      const std::uint64_t a = static_cast<std::uint64_t>(i);
      const std::uint64_t b = a * 3;
      sim.schedule(1 + static_cast<SimDuration>(i % 7),
                   [&sink, a, b] { sink += a + b; });
    }
    sim.run_all();
  }

  const std::uint64_t news_delta =
      g_operator_new_calls.load(std::memory_order_relaxed) - news_before;
  const std::uint64_t heap_delta =
      inline_function_heap_allocations() - heap_before;
  EXPECT_EQ(news_delta, 0u);
  EXPECT_EQ(heap_delta, 0u);
  EXPECT_EQ(sim.events_executed(),
            static_cast<std::uint64_t>(kWarmPending) + 100u * 256u);
  EXPECT_NE(sink, 0u);
}

// Captures over the SBO limit fall back to exactly one heap allocation
// (moves transfer the pointer; they do not reallocate) and still run.
TEST(Simulator, OversizedCapturesFallBackToHeapExactlyOnce) {
  Simulator sim;
  std::array<std::uint8_t, 128> big{};
  big[0] = 7;
  big[127] = 9;
  int sum = 0;
  const std::uint64_t heap_before = inline_function_heap_allocations();
  sim.schedule(5, [big, &sum] { sum = big[0] + big[127]; });
  EXPECT_EQ(inline_function_heap_allocations() - heap_before, 1u);
  sim.run_all();
  EXPECT_EQ(sum, 16);
}

}  // namespace
}  // namespace pipette
