// Tests for the discrete-event simulation core: ordering, determinism,
// clock semantics, and condition-driven execution.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.h"

namespace pipette {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakInSubmissionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(10, [&] { ++fired; });
  });
  sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, AdvanceMovesClockWithoutRunning) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5, [&] { ran = true; });
  sim.advance(100);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_FALSE(ran);  // advance() skips; run_* executes
  sim.run_all();
  EXPECT_TRUE(ran);
  // The overdue event runs at the current clock, which never goes backward.
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilInclusiveOfBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(15, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilConditionStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) sim.schedule(static_cast<SimDuration>(i) * 10,
                                            [&] { ++fired; });
  EXPECT_TRUE(sim.run_until_condition([&] { return fired == 3; }));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.pending_events(), 2u);
}

TEST(Simulator, RunUntilConditionFalseWhenQueueDrains) {
  Simulator sim;
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.run_until_condition([] { return false; }));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.advance(50);
  SimTime when = 0;
  sim.schedule_at(70, [&] { when = sim.now(); });
  sim.run_all();
  EXPECT_EQ(when, 70u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace pipette
