// Tests for the fleet layer: determinism (repeated runs, serial vs
// parallel), 1-shard equivalence with run_experiment, sub-stream filtering,
// histogram-merge percentiles, partitioning behaviour under skew, and
// per-shard machine overrides.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/shard_workload.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

// A small synthetic cell: 8 MiB file keeps runtimes in sim_test territory.
SeededWorkloadFactory synth_factory(char wl, Distribution dist) {
  return [wl, dist](std::uint64_t seed) -> std::unique_ptr<Workload> {
    SyntheticConfig sc = table1_workload(wl, dist, seed);
    sc.file_size = 8 * kMiB;
    return std::make_unique<SyntheticWorkload>(sc);
  };
}

FleetConfig small_fleet(std::size_t shards, PathKind kind) {
  FleetConfig fleet;
  fleet.shards = shards;
  fleet.machine = default_machine(kind);
  return fleet;
}

// Same seed => bit-identical FleetResult across repeated runs.
TEST(Fleet, RepeatedRunsAreBitIdentical) {
  FleetRunner runner(small_fleet(4, PathKind::kPipette),
                     synth_factory('C', Distribution::kUniform), 42);
  const FleetResult a = runner.run({1200, 600}, /*jobs=*/1);
  const FleetResult b = runner.run({1200, 600}, /*jobs=*/1);
  EXPECT_TRUE(deterministic_equal(a, b));
}

// The acceptance cell: a 4-shard fleet run with intra-fleet parallelism is
// bit-identical to the serial run, shard by shard and in every aggregate.
TEST(Fleet, JobsOneEqualsJobsFour) {
  FleetRunner runner(small_fleet(4, PathKind::kPipette),
                     synth_factory('C', Distribution::kUniform), 42);
  const FleetResult serial = runner.run({1600, 800}, /*jobs=*/1);
  const FleetResult parallel = runner.run({1600, 800}, /*jobs=*/4);
  ASSERT_EQ(serial.shard_results.size(), parallel.shard_results.size());
  for (std::size_t s = 0; s < serial.shard_results.size(); ++s) {
    EXPECT_EQ(serial.shard_results[s].Deterministic(),
              parallel.shard_results[s].Deterministic())
        << "shard " << s;
  }
  EXPECT_EQ(serial.Deterministic(), parallel.Deterministic());
  EXPECT_TRUE(deterministic_equal(serial, parallel));
}

// Non-divisor worker count: 5 shards pinned onto 3 workers gives uneven
// slices ({0,3}, {1,4}, {2}), each worker reusing one RunArena across its
// slice — still bit-identical to the serial run.
TEST(Fleet, NonDivisorWorkerCountIsDeterministic) {
  FleetRunner runner(small_fleet(5, PathKind::kPipette),
                     synth_factory('C', Distribution::kZipf), 42);
  const FleetResult serial = runner.run({1500, 700}, /*jobs=*/1);
  const FleetResult three = runner.run({1500, 700}, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(serial, three));
}

// A 1-shard fleet IS the single-machine experiment: every deterministic
// RunResult field matches run_experiment on the same config and workload,
// and the fleet aggregates collapse onto that one shard.
TEST(Fleet, OneShardFleetMatchesRunExperiment) {
  const RunConfig rc{2000, 1000};
  SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload w(sc);
  const RunResult direct =
      run_experiment(default_machine(PathKind::kPipette), w, rc);

  FleetRunner runner(small_fleet(1, PathKind::kPipette),
                     synth_factory('C', Distribution::kUniform), 42);
  const FleetResult fleet = runner.run(rc, /*jobs=*/1);

  ASSERT_EQ(fleet.shard_results.size(), 1u);
  EXPECT_EQ(direct.Deterministic(), fleet.shard_results[0].Deterministic());
  EXPECT_EQ(fleet.requests, direct.requests);
  EXPECT_EQ(fleet.measured_reads, direct.measured_reads);
  EXPECT_EQ(fleet.bytes_requested, direct.bytes_requested);
  EXPECT_EQ(fleet.traffic_bytes, direct.traffic_bytes);
  EXPECT_EQ(fleet.events_executed, direct.events_executed);
  EXPECT_EQ(fleet.makespan, direct.elapsed);
  EXPECT_EQ(fleet.latency, direct.read_latency);
  EXPECT_EQ(fleet.p50_latency_us, direct.p50_latency_us);
  EXPECT_EQ(fleet.p99_latency_us, direct.p99_latency_us);
  EXPECT_EQ(fleet.load_imbalance, 1.0);
}

// Partitioning changes who serves a request, never which requests exist:
// fleet-wide totals over the measured phase are invariant in the shard
// count.
TEST(Fleet, ShardCountPreservesFleetTotals) {
  const RunConfig rc{1500, 700};
  std::vector<FleetResult> results;
  for (std::size_t shards : {1u, 3u}) {
    FleetRunner runner(small_fleet(shards, PathKind::kBlockIo),
                       synth_factory('C', Distribution::kUniform), 42);
    results.push_back(runner.run(rc, /*jobs=*/1));
  }
  EXPECT_EQ(results[0].requests, rc.requests);
  EXPECT_EQ(results[1].requests, rc.requests);
  EXPECT_EQ(results[0].measured_reads, results[1].measured_reads);
  EXPECT_EQ(results[0].bytes_requested, results[1].bytes_requested);
  EXPECT_EQ(results[1].latency.count(), results[0].latency.count());
}

// The sub-stream contract, checked against a by-hand filter of the master
// stream: shard s's workload yields exactly the master requests whose key
// maps to s, in master order.
TEST(ShardWorkloadTest, FiltersTheMasterStreamInOrder) {
  constexpr std::size_t kShards = 3;
  constexpr int kDraws = 4000;
  SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 7);
  sc.file_size = 4 * kMiB;

  SyntheticWorkload master(sc);
  const Partitioner part(PartitionScheme::kHash, kShards, master.files());
  std::vector<std::vector<Request>> expected(kShards);
  for (int i = 0; i < kDraws; ++i) {
    const Request req = master.next();
    expected[part.shard_of(req)].push_back(req);
  }

  for (std::size_t s = 0; s < kShards; ++s) {
    ShardWorkload sub(std::make_unique<SyntheticWorkload>(sc), part, s);
    for (std::size_t i = 0; i < expected[s].size(); ++i) {
      const Request got = sub.next();
      const Request& want = expected[s][i];
      ASSERT_EQ(got.file_index, want.file_index) << "shard " << s;
      ASSERT_EQ(got.offset, want.offset) << "shard " << s << " draw " << i;
      ASSERT_EQ(got.len, want.len);
      ASSERT_EQ(got.is_write, want.is_write);
    }
    EXPECT_LE(sub.master_consumed(), static_cast<std::uint64_t>(kDraws));
  }
}

// Histogram merge returns true percentiles of the union: merging per-shard
// histograms equals the histogram of the concatenated samples, bucket for
// bucket — so p50/p99 of a fleet are the percentiles of all requests, not
// an average of per-shard percentile readouts.
TEST(FleetHistogramMerge, EqualsHistogramOfConcatenatedSamples) {
  const std::vector<std::vector<SimDuration>> per_shard = {
      {100, 250, 250, 900, 1200, 88000},
      {90, 95, 260, 270, 300, 310, 150000, 151000},
      {40 * 1000, 41 * 1000, 42 * 1000, 43 * 1000},
  };

  LatencyHistogram merged;
  LatencyHistogram concatenated;
  for (const auto& samples : per_shard) {
    LatencyHistogram shard;
    for (SimDuration d : samples) {
      shard.record(d);
      concatenated.record(d);
    }
    merged.merge(shard);
  }

  EXPECT_EQ(merged, concatenated);
  for (double p : {50.0, 90.0, 99.0, 100.0})
    EXPECT_EQ(merged.percentile(p), concatenated.percentile(p)) << "p" << p;
  EXPECT_EQ(merged.count(), 18u);
  // The merged p99 lives in the hot shard's tail, far above every other
  // shard's p99 — the failure mode percentile-averaging would hide.
  EXPECT_GE(merged.percentile(99), 150000u * 95 / 100);
}

// The paper's zipf construction clusters the hot head at the start of the
// file, so range partitioning concentrates load on shard 0 while hash
// partitioning spreads it.
TEST(Fleet, RangePartitioningConcentratesZipfHead) {
  const RunConfig rc{2000, 1000};
  FleetConfig hash_fleet = small_fleet(4, PathKind::kBlockIo);
  FleetConfig range_fleet = hash_fleet;
  range_fleet.partition = PartitionScheme::kRange;

  const auto factory = synth_factory('E', Distribution::kZipf);
  const FleetResult hashed =
      FleetRunner(hash_fleet, factory, 42).run(rc, /*jobs=*/1);
  const FleetResult ranged =
      FleetRunner(range_fleet, factory, 42).run(rc, /*jobs=*/1);

  EXPECT_GT(ranged.load_imbalance, hashed.load_imbalance);
  EXPECT_EQ(ranged.hottest_shard, 0u);
  EXPECT_GT(ranged.max_shard_requests, rc.requests / 2);  // hot head
}

// Heterogeneous fleets: per-shard MachineConfig overrides are honoured.
TEST(Fleet, PerShardMachineOverrides) {
  FleetConfig fleet = small_fleet(3, PathKind::kPipette);
  fleet.shard_machines = {default_machine(PathKind::kPipette),
                          default_machine(PathKind::kBlockIo),
                          default_machine(PathKind::kPipette)};
  FleetRunner runner(fleet, synth_factory('E', Distribution::kZipf), 42);
  const FleetResult r = runner.run({2000, 1000}, /*jobs=*/1);
  ASSERT_EQ(r.shard_results.size(), 3u);
  EXPECT_EQ(r.shard_results[0].path_name, "Pipette");
  EXPECT_EQ(r.shard_results[1].path_name, "Block I/O");
  EXPECT_EQ(r.shard_results[2].path_name, "Pipette");
  EXPECT_GT(r.shard_results[0].fgrc_hit_ratio, 0.0);
  EXPECT_EQ(r.shard_results[1].fgrc_hit_ratio, 0.0);
}

// kIndependent mode: every replica runs the full request count on its own
// split-seeded stream — streams differ across shards but the whole fleet
// result is still a pure function of the fleet seed.
TEST(Fleet, IndependentModeRunsDistinctFullStreams) {
  FleetConfig fleet = small_fleet(3, PathKind::kBlockIo);
  fleet.substream = SubstreamMode::kIndependent;
  FleetRunner runner(fleet, synth_factory('C', Distribution::kUniform), 42);
  const RunConfig rc{1000, 400};
  const FleetResult a = runner.run(rc, /*jobs=*/1);
  for (const RunResult& shard : a.shard_results)
    EXPECT_EQ(shard.requests, rc.requests);
  EXPECT_EQ(a.requests, rc.requests * 3);
  // Workload 'C' mixes request sizes at random, so distinct streams draw
  // distinct byte totals.
  EXPECT_NE(a.shard_results[0].bytes_requested,
            a.shard_results[1].bytes_requested);
  const FleetResult b = runner.run(rc, /*jobs=*/3);
  EXPECT_TRUE(deterministic_equal(a, b));
}

}  // namespace
}  // namespace pipette
