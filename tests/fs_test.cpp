// Tests for the file system: extent trees, allocation (contiguous and
// fragmented), LBA extraction, and the VFS open-file table.
#include <gtest/gtest.h>

#include <vector>

#include "fs/vfs.h"

namespace pipette {
namespace {

// --- ExtentTree ---

TEST(ExtentTree, SingleExtentMapping) {
  ExtentTree t;
  t.append({0, 1000, 16});
  EXPECT_EQ(t.map_block(0), 1000u);
  EXPECT_EQ(t.map_block(15), 1015u);
  EXPECT_EQ(t.blocks(), 16u);
}

TEST(ExtentTree, MultipleExtents) {
  ExtentTree t;
  t.append({0, 1000, 4});
  t.append({4, 2000, 4});
  t.append({8, 500, 8});
  EXPECT_EQ(t.map_block(3), 1003u);
  EXPECT_EQ(t.map_block(4), 2000u);
  EXPECT_EQ(t.map_block(7), 2003u);
  EXPECT_EQ(t.map_block(15), 507u);
}

TEST(ExtentTreeDeathTest, GapAndOutOfOrderRejected) {
  ExtentTree t;
  t.append({0, 1000, 4});
  EXPECT_DEATH(t.append({2, 3000, 4}), "logical order");
  ExtentTree gap;
  gap.append({0, 1000, 2});
  gap.append({10, 2000, 2});  // legal: gap in coverage
  EXPECT_DEATH(gap.map_block(5), "gap");
}

TEST(ExtentTree, ExtractWithinOneBlock) {
  ExtentTree t;
  t.append({0, 100, 4});
  std::vector<LbaRange> out;
  t.extract(1000, 128, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lba, 100u);
  EXPECT_EQ(out[0].offset, 1000u);
  EXPECT_EQ(out[0].len, 128u);
}

TEST(ExtentTree, ExtractSpanningBlocks) {
  ExtentTree t;
  t.append({0, 100, 2});
  t.append({2, 999, 2});
  std::vector<LbaRange> out;
  // 300 bytes starting 100 bytes before the end of block 1: spans into the
  // second extent's first block.
  t.extract(2 * kBlockSize - 100, 300, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].lba, 101u);
  EXPECT_EQ(out[0].offset, kBlockSize - 100);
  EXPECT_EQ(out[0].len, 100u);
  EXPECT_EQ(out[1].lba, 999u);
  EXPECT_EQ(out[1].offset, 0u);
  EXPECT_EQ(out[1].len, 200u);
}

TEST(ExtentTree, ExtractExactlyOneBlock) {
  ExtentTree t;
  t.append({0, 50, 4});
  std::vector<LbaRange> out;
  t.extract(kBlockSize, kBlockSize, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lba, 51u);
  EXPECT_EQ(out[0].offset, 0u);
  EXPECT_EQ(out[0].len, kBlockSize);
}

// --- FileSystem ---

TEST(FileSystem, CreateContiguousFile) {
  FileSystem fs(10000);
  const FileId id = fs.create("a", 100 * kBlockSize);
  const Inode& node = fs.inode(id);
  EXPECT_EQ(node.size, 100u * kBlockSize);
  EXPECT_EQ(node.extents.extent_count(), 1u);
  EXPECT_EQ(fs.allocated_blocks(), 100u);
}

TEST(FileSystem, PartialLastBlockRoundsUp) {
  FileSystem fs(10000);
  const FileId id = fs.create("a", kBlockSize + 1);
  EXPECT_EQ(fs.inode(id).extents.blocks(), 2u);
}

TEST(FileSystem, FragmentedAllocation) {
  FileSystem fs(10000);
  const FileId id = fs.create("frag", 64 * kBlockSize,
                              /*max_extent_blocks=*/16, /*gap_blocks=*/4);
  const Inode& node = fs.inode(id);
  EXPECT_EQ(node.extents.extent_count(), 4u);
  // Extents are discontiguous on disk.
  const auto& e = node.extents.extents();
  EXPECT_EQ(e[1].start_lba, e[0].start_lba + 16 + 4);
}

TEST(FileSystem, FilesDoNotOverlap) {
  FileSystem fs(10000);
  const FileId a = fs.create("a", 10 * kBlockSize);
  const FileId b = fs.create("b", 10 * kBlockSize);
  const Lba last_a = fs.inode(a).extents.map_block(9);
  const Lba first_b = fs.inode(b).extents.map_block(0);
  EXPECT_LT(last_a, first_b);
}

TEST(FileSystem, FindByName) {
  FileSystem fs(1000);
  const FileId id = fs.create("x", kBlockSize);
  EXPECT_EQ(fs.find("x"), id);
  EXPECT_EQ(fs.find("nope"), kInvalidFileId);
}

TEST(FileSystem, ReservedBlocksNotAllocated) {
  FileSystem fs(1000, 64);
  const FileId id = fs.create("a", kBlockSize);
  EXPECT_GE(fs.inode(id).extents.map_block(0), 64u);
}

TEST(FileSystem, ExtractLbasHonoursExtents) {
  FileSystem fs(10000);
  const FileId id =
      fs.create("frag", 8 * kBlockSize, /*max_extent_blocks=*/2,
                /*gap_blocks=*/1);
  std::vector<LbaRange> out;
  fs.extract_lbas(id, 0, 8 * kBlockSize, out);
  ASSERT_EQ(out.size(), 8u);
  // Blocks 0-1 contiguous, then a jump.
  EXPECT_EQ(out[1].lba, out[0].lba + 1);
  EXPECT_EQ(out[2].lba, out[1].lba + 2);  // gap of 1
}

TEST(FileSystemDeathTest, ReadPastLastBlockAsserts) {
  FileSystem fs(1000);
  const FileId id = fs.create("a", 100);  // occupies one whole block
  std::vector<LbaRange> out;
  // Within the tail block is fine (page-granular callers do this)...
  fs.extract_lbas(id, 50, 100, out);
  EXPECT_EQ(out.size(), 1u);
  // ...but beyond the block-rounded size is a bug.
  EXPECT_DEATH(fs.extract_lbas(id, 4000, 200, out), "past end");
}

// --- Vfs ---

struct NullBackend : IoBackend {
  SimDuration read(FileId, int, std::uint64_t,
                   std::span<std::uint8_t>) override {
    ++reads;
    return 1;
  }
  SimDuration write(FileId, int, std::uint64_t,
                    std::span<const std::uint8_t>) override {
    ++writes;
    return 1;
  }
  int reads = 0;
  int writes = 0;
};

TEST(Vfs, OpenReadCloseLifecycle) {
  FileSystem fs(1000);
  fs.create("f", 10 * kBlockSize);
  NullBackend backend;
  Vfs vfs(fs, backend);
  const int fd = vfs.open("f", kOpenRead | kOpenFineGrained);
  EXPECT_EQ(vfs.flags_of(fd) & kOpenFineGrained, kOpenFineGrained);
  EXPECT_EQ(vfs.size_of(fd), 10u * kBlockSize);
  std::vector<std::uint8_t> buf(128);
  EXPECT_EQ(vfs.pread(fd, 0, {buf.data(), buf.size()}), 1u);
  EXPECT_EQ(backend.reads, 1);
  vfs.close(fd);
}

TEST(Vfs, FdSlotsAreReused) {
  FileSystem fs(1000);
  fs.create("f", kBlockSize);
  NullBackend backend;
  Vfs vfs(fs, backend);
  const int a = vfs.open("f", kOpenRead);
  vfs.close(a);
  const int b = vfs.open("f", kOpenRead);
  EXPECT_EQ(a, b);
}

TEST(VfsDeathTest, WriteOnReadOnlyFdAsserts) {
  FileSystem fs(1000);
  fs.create("f", kBlockSize);
  NullBackend backend;
  Vfs vfs(fs, backend);
  const int fd = vfs.open("f", kOpenRead);
  std::vector<std::uint8_t> buf(16);
  EXPECT_DEATH(vfs.pwrite(fd, 0, {buf.data(), buf.size()}), "read-only");
}

TEST(VfsDeathTest, UseAfterCloseAsserts) {
  FileSystem fs(1000);
  fs.create("f", kBlockSize);
  NullBackend backend;
  Vfs vfs(fs, backend);
  const int fd = vfs.open("f", kOpenRead);
  vfs.close(fd);
  std::vector<std::uint8_t> buf(16);
  EXPECT_DEATH(vfs.pread(fd, 0, {buf.data(), buf.size()}), "closed fd");
}

TEST(Vfs, WritableFdWrites) {
  FileSystem fs(1000);
  fs.create("f", kBlockSize);
  NullBackend backend;
  Vfs vfs(fs, backend);
  const int fd = vfs.open("f", kOpenWrite);
  std::vector<std::uint8_t> buf(16, 1);
  EXPECT_EQ(vfs.pwrite(fd, 0, {buf.data(), buf.size()}), 1u);
  EXPECT_EQ(backend.writes, 1);
}

}  // namespace
}  // namespace pipette
