// Tests for the NAND flash array model: timing composition, die/channel
// parallelism, cell-type latencies, and fault injection.
#include <gtest/gtest.h>

#include <vector>

#include "nand/nand.h"

namespace pipette {
namespace {

NandGeometry small_geometry() {
  NandGeometry g;
  g.channels = 4;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 16;
  return g;
}

TEST(NandGeometry, DerivedQuantities) {
  NandGeometry g = small_geometry();
  EXPECT_EQ(g.dies(), 8u);
  EXPECT_EQ(g.pages_per_die(), 64u);
  EXPECT_EQ(g.total_pages(), 512u);
  EXPECT_EQ(g.capacity_bytes(), 512u * 4096u);
}

TEST(NandTiming, CellTypeSelectsLatency) {
  NandTiming t;
  t.cell = CellType::kSlc;
  EXPECT_EQ(t.t_read(), t.t_read_slc);
  t.cell = CellType::kMlc;
  EXPECT_EQ(t.t_read(), t.t_read_mlc);
  t.cell = CellType::kTlc;
  EXPECT_EQ(t.t_read(), t.t_read_tlc);
  EXPECT_STREQ(to_string(CellType::kTlc), "TLC");
}

TEST(NandArray, SinglePageReadLatency) {
  Simulator sim;
  NandTiming t;
  t.cell = CellType::kTlc;
  NandArray nand(sim, small_geometry(), t);
  SimTime done_at = 0;
  nand.read_page({0, 0, 0}, [&] { done_at = sim.now(); });
  sim.run_all();
  const SimDuration xfer =
      static_cast<SimDuration>(t.channel_ns_per_byte * 4096);
  EXPECT_EQ(done_at, t.command_overhead + t.t_read_tlc + xfer);
  EXPECT_EQ(nand.stats().page_reads, 1u);
  EXPECT_EQ(nand.stats().bytes_transferred, 4096u);
}

TEST(NandArray, ReadsOnDifferentChannelsRunInParallel) {
  Simulator sim;
  NandTiming t;
  NandArray nand(sim, small_geometry(), t);
  std::vector<SimTime> done(2);
  nand.read_page({0, 0, 0}, [&] { done[0] = sim.now(); });
  nand.read_page({1, 0, 0}, [&] { done[1] = sim.now(); });
  sim.run_all();
  // Full overlap: both complete at the single-read latency.
  EXPECT_EQ(done[0], done[1]);
}

TEST(NandArray, ReadsOnSameDieSerialise) {
  Simulator sim;
  NandTiming t;
  NandArray nand(sim, small_geometry(), t);
  std::vector<SimTime> done(2);
  nand.read_page({0, 0, 0}, [&] { done[0] = sim.now(); });
  nand.read_page({0, 0, 1}, [&] { done[1] = sim.now(); });
  sim.run_all();
  EXPECT_GE(done[1], done[0] + t.t_read());  // second waits for the die
}

TEST(NandArray, SameChannelDifferentWaysShareOnlyTheBus) {
  Simulator sim;
  NandTiming t;
  NandArray nand(sim, small_geometry(), t);
  std::vector<SimTime> done(2);
  nand.read_page({0, 0, 0}, [&] { done[0] = sim.now(); });
  nand.read_page({0, 1, 0}, [&] { done[1] = sim.now(); });
  sim.run_all();
  const SimDuration xfer =
      static_cast<SimDuration>(t.channel_ns_per_byte * 4096);
  // Sensing overlaps; the second page's bus transfer queues behind the
  // first: exactly one extra transfer time.
  EXPECT_EQ(done[1], done[0] + xfer);
}

TEST(NandArray, PartialTransferShortensBusTime) {
  Simulator sim;
  NandTiming t;
  NandArray nand(sim, small_geometry(), t);
  SimTime full = 0, partial = 0;
  nand.read_page({0, 0, 0}, [&] { full = sim.now(); });
  sim.run_all();
  Simulator sim2;
  NandArray nand2(sim2, small_geometry(), t);
  nand2.read_page({0, 0, 0}, [&] { partial = sim2.now(); }, 512);
  sim2.run_all();
  EXPECT_LT(partial, full);
}

TEST(NandArray, ProgramUsesProgramTime) {
  Simulator sim;
  NandTiming t;
  t.cell = CellType::kTlc;
  NandArray nand(sim, small_geometry(), t);
  SimTime done_at = 0;
  nand.program_page({2, 1, 5}, [&] { done_at = sim.now(); });
  sim.run_all();
  const SimDuration xfer =
      static_cast<SimDuration>(t.channel_ns_per_byte * 4096);
  EXPECT_EQ(done_at, t.command_overhead + xfer + t.t_prog_tlc);
  EXPECT_EQ(nand.stats().page_programs, 1u);
}

TEST(NandArray, CertainFaultRetriesThenFailsTerminally) {
  Simulator sim;
  NandTiming t;
  NandFaultPlan faults;
  faults.read_error_rate = 1.0;  // every sensing pass fails
  faults.max_attempts = 2;
  faults.backoff_base = 7 * kUs;
  NandArray nand(sim, small_geometry(), t, faults);
  SimTime done_at = 0;
  const NandReadOutcome outcome =
      nand.read_page({0, 0, 0}, [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.attempts, 2u);
  // Two sensing passes separated by the first backoff step; a terminal
  // failure never crosses the channel, so no transfer time and no bytes.
  EXPECT_EQ(done_at, t.command_overhead + 2 * t.t_read() + faults.backoff_base);
  EXPECT_EQ(nand.stats().read_retries, 1u);
  EXPECT_EQ(nand.stats().read_failures, 1u);
  EXPECT_EQ(nand.stats().bytes_transferred, 0u);
}

TEST(NandArray, BackoffGrowsExponentially) {
  Simulator sim;
  NandTiming t;
  NandFaultPlan faults;
  faults.read_error_rate = 1.0;
  faults.max_attempts = 4;
  faults.backoff_base = 10 * kUs;
  NandArray nand(sim, small_geometry(), t, faults);
  SimTime done_at = 0;
  const NandReadOutcome outcome =
      nand.read_page({0, 0, 0}, [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.attempts, 4u);
  // Backoff ladder 1x, 2x, 4x base between the four sensing passes.
  EXPECT_EQ(done_at,
            t.command_overhead + 4 * t.t_read() + 7 * faults.backoff_base);
  EXPECT_EQ(nand.stats().read_retries, 3u);
}

TEST(NandArray, NoFaultsByDefault) {
  Simulator sim;
  NandArray nand(sim, small_geometry(), NandTiming{});
  for (int i = 0; i < 50; ++i)
    nand.read_page({0, 0, static_cast<std::uint64_t>(i)}, [] {});
  sim.run_all();
  EXPECT_EQ(nand.stats().read_retries, 0u);
  EXPECT_EQ(nand.stats().read_failures, 0u);
}

TEST(NandArray, SlcFasterThanTlc) {
  NandTiming slc;
  slc.cell = CellType::kSlc;
  NandTiming tlc;
  tlc.cell = CellType::kTlc;
  Simulator s1, s2;
  NandArray a(s1, small_geometry(), slc), b(s2, small_geometry(), tlc);
  SimTime ta = 0, tb = 0;
  a.read_page({0, 0, 0}, [&] { ta = s1.now(); });
  b.read_page({0, 0, 0}, [&] { tb = s2.now(); });
  s1.run_all();
  s2.run_all();
  EXPECT_LT(ta, tb);
}

TEST(NandArray, DieFreeAtTracksBusyness) {
  Simulator sim;
  NandTiming t;
  NandArray nand(sim, small_geometry(), t);
  EXPECT_EQ(nand.die_free_at({0, 0, 0}), 0u);
  nand.read_page({0, 0, 0}, [] {});
  EXPECT_GT(nand.die_free_at({0, 0, 0}), 0u);
  EXPECT_EQ(nand.die_free_at({1, 0, 0}), 0u);  // other die untouched
}

}  // namespace
}  // namespace pipette
