// Tests for the event-queue backends behind EventQueueInterface: the 4-ary
// heap (EventQueue) and the hierarchical timing wheel (WheelQueue).
//
// The load-bearing property is the determinism contract: both backends
// drain in exactly (when, seq) ascending order, so a machine configured
// with either produces bit-identical results. The differential fuzz here is
// the first line of defence; the golden-trace test pins the same property
// end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "des/event_queue.h"
#include "des/simulator.h"
#include "des/wheel_queue.h"
#include "fleet/fleet.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

using Callback = EventQueueInterface::Callback;

/// Past the wheel's L1 horizon (2^24 ns of L1 blocks), so a push with this
/// delta must spill to the overflow heap.
constexpr SimDuration kBeyondHorizon = 20'000'000;

std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 33;
}

// ---------------------------------------------------------------------------
// Differential fuzz: heap and wheel must agree on every drained event.

// Replays one seeded push/pop script against both backends. Pops record
// (when, seq) and invoke the callback, which appends its payload id — so
// key order *and* payload routing are compared. Pushes only ever use
// when >= the last popped timestamp (the Simulator's schedule-in-the-future
// contract, which the wheel's cursor design relies on).
void run_differential_script(std::uint64_t seed, bool use_pop_run) {
  EventQueue heap;
  WheelQueue wheel;
  std::vector<std::uint64_t> heap_log, wheel_log;
  std::vector<std::pair<SimTime, std::uint64_t>> heap_keys, wheel_keys;

  // Deltas are duplicate-heavy (0 repeated) with occasional far-future
  // jumps that exercise the wheel's L1 level and overflow spill/refill.
  static constexpr SimDuration kDeltas[] = {
      0, 0, 0, 1, 2, 480, 480, 3'200, 4'096, 65'000, 99'999,
      kBeyondHorizon, 2 * kBeyondHorizon};
  constexpr std::size_t kNumDeltas = sizeof kDeltas / sizeof kDeltas[0];

  std::uint64_t rng = seed;
  std::uint64_t next_seq = 0;
  std::uint64_t next_id = 0;
  SimTime now = 0;
  std::vector<Callback> run_scratch;

  for (int round = 0; round < 400; ++round) {
    const std::uint64_t pushes = lcg(rng) % 8;
    for (std::uint64_t p = 0; p < pushes; ++p) {
      const SimTime when = now + kDeltas[lcg(rng) % kNumDeltas];
      const std::uint64_t seq = next_seq++;
      const std::uint64_t id = next_id++;
      heap.push(when, seq, [&heap_log, id] { heap_log.push_back(id); });
      wheel.push(when, seq, [&wheel_log, id] { wheel_log.push_back(id); });
    }
    const std::uint64_t pops = lcg(rng) % 6;
    for (std::uint64_t q = 0; q < pops && !heap.empty(); ++q) {
      ASSERT_FALSE(wheel.empty());
      SimTime hw = 0, ww = 0;
      if (use_pop_run) {
        run_scratch.clear();
        const std::size_t hk = heap.pop_run(hw, run_scratch);
        for (Callback& cb : run_scratch) cb();
        run_scratch.clear();
        const std::size_t wk = wheel.pop_run(ww, run_scratch);
        for (Callback& cb : run_scratch) cb();
        ASSERT_EQ(hk, wk);
        heap_keys.emplace_back(hw, hk);
        wheel_keys.emplace_back(ww, wk);
      } else {
        std::uint64_t hs = 0, ws = 0;
        Callback cb;
        heap.pop_min(hw, hs, cb);
        cb();
        wheel.pop_min(ww, ws, cb);
        cb();
        ASSERT_EQ(hs, ws);
        heap_keys.emplace_back(hw, hs);
        wheel_keys.emplace_back(ww, ws);
      }
      ASSERT_EQ(hw, ww);
      now = hw;
    }
    ASSERT_EQ(heap.size(), wheel.size());
    ASSERT_EQ(heap.peak_size(), wheel.peak_size());
  }
  // Drain the rest one event at a time.
  while (!heap.empty()) {
    ASSERT_FALSE(wheel.empty());
    ASSERT_EQ(heap.min_when(), wheel.min_when());
    SimTime hw = 0, ww = 0;
    std::uint64_t hs = 0, ws = 0;
    Callback cb;
    heap.pop_min(hw, hs, cb);
    cb();
    wheel.pop_min(ww, ws, cb);
    cb();
    EXPECT_EQ(hw, ww);
    EXPECT_EQ(hs, ws);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(heap_log, wheel_log);
  EXPECT_EQ(heap_keys, wheel_keys);
}

TEST(QueueDifferential, PopMinStreamsDrainIdentically) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull})
    run_differential_script(seed, /*use_pop_run=*/false);
}

TEST(QueueDifferential, PopRunStreamsDrainIdentically) {
  for (std::uint64_t seed : {2ull, 99ull, 424242ull})
    run_differential_script(seed, /*use_pop_run=*/true);
}

// Pushes issued from inside executing callbacks (the normal DES regime) via
// two full Simulators: a seeded self-propagating script must execute in an
// identical (id, now) sequence on both backends.
TEST(QueueDifferential, CallbackPushesMatchAcrossSimulators) {
  struct Script {
    Simulator* sim;
    std::vector<std::pair<std::uint64_t, SimTime>>* trace;
    std::uint64_t rng;
    std::uint64_t next_id = 0;
    std::uint64_t budget = 4000;

    void spawn() {
      static constexpr SimDuration kDeltas[] = {0, 0, 1, 480, 3'200,
                                                65'000, kBeyondHorizon};
      const std::uint64_t id = next_id++;
      const SimDuration d = kDeltas[lcg(rng) % 7];
      sim->schedule(d, [this, id] {
        trace->emplace_back(id, sim->now());
        const std::uint64_t kids = lcg(rng) % 3;
        for (std::uint64_t k = 0; k < kids && budget > 0; ++k) {
          --budget;
          spawn();
        }
      });
    }
  };
  std::vector<std::pair<std::uint64_t, SimTime>> traces[2];
  const QueueKind kinds[2] = {QueueKind::kHeap, QueueKind::kWheel};
  for (int v = 0; v < 2; ++v) {
    Simulator sim(kinds[v]);
    Script s{&sim, &traces[v], /*rng=*/0xfeedface};
    for (int i = 0; i < 32; ++i) s.spawn();
    sim.run_all();
  }
  EXPECT_EQ(traces[0], traces[1]);
}

// ---------------------------------------------------------------------------
// WheelQueue unit behaviour.

TEST(WheelQueueTest, DrainsMixedLevelsInOrder) {
  WheelQueue q;
  // L0 (same 4096 ns block), L1 (later block, same 2^24 window), overflow.
  q.push(10, 0, [] {});
  q.push(5'000, 1, [] {});
  q.push(kBeyondHorizon + 7, 2, [] {});
  q.push(10, 3, [] {});
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.overflow_pushes(), 1u);
  EXPECT_EQ(q.min_when(), 10u);

  SimTime when = 0;
  std::uint64_t seq = 0;
  Callback cb;
  q.pop_min(when, seq, cb);
  EXPECT_EQ(when, 10u);
  EXPECT_EQ(seq, 0u);
  q.pop_min(when, seq, cb);
  EXPECT_EQ(when, 10u);
  EXPECT_EQ(seq, 3u);
  EXPECT_EQ(q.min_when(), 5'000u);
  q.pop_min(when, seq, cb);
  EXPECT_EQ(when, 5'000u);
  // The overflow event is refilled into the wheel once its window arrives.
  EXPECT_EQ(q.min_when(), kBeyondHorizon + 7);
  q.pop_min(when, seq, cb);
  EXPECT_EQ(when, kBeyondHorizon + 7);
  EXPECT_EQ(seq, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(WheelQueueTest, PopRunExtractsWholeTimestampInSeqOrder) {
  WheelQueue q;
  std::vector<int> order;
  // Interleave two timestamps; seq order within when=100 is 0, 2, 4.
  q.push(100, 0, [&order] { order.push_back(0); });
  q.push(200, 1, [&order] { order.push_back(1); });
  q.push(100, 2, [&order] { order.push_back(2); });
  q.push(300, 3, [&order] { order.push_back(3); });
  q.push(100, 4, [&order] { order.push_back(4); });

  SimTime when = 0;
  std::vector<Callback> run;
  EXPECT_EQ(q.pop_run(when, run), 3u);
  EXPECT_EQ(when, 100u);
  for (Callback& cb : run) cb();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.min_when(), 200u);
}

TEST(WheelQueueTest, TrimKeepsPendingEventsAndPeak) {
  WheelQueue q;
  for (std::uint64_t i = 0; i < 64; ++i) q.push(i * 3, i, [] {});
  SimTime when = 0;
  std::uint64_t seq = 0;
  Callback cb;
  for (int i = 0; i < 60; ++i) q.pop_min(when, seq, cb);
  q.trim();
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.peak_size(), 64u);
  for (int i = 60; i < 64; ++i) {
    q.pop_min(when, seq, cb);
    EXPECT_EQ(seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(q.empty());
  q.trim();  // empty trim releases everything and stays usable
  q.push(1, 99, [] {});
  EXPECT_EQ(q.min_when(), 1u);
}

// ---------------------------------------------------------------------------
// EventQueue batch extraction: both the repeated-pop path (short runs) and
// the compact+reheapify path (long runs) must yield ascending seq.

TEST(EventQueueBatch, ShortAndLongRunsDrainInSeqOrder) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  std::uint64_t seq = 0;
  // A long run at t=50 (200 events: the batch path) buried among 500
  // later survivors, then a short run at t=60 (the repeated-pop path).
  std::vector<std::pair<SimTime, std::uint64_t>> pushes;
  for (int i = 0; i < 200; ++i) pushes.emplace_back(50, seq++);
  for (int i = 0; i < 500; ++i) pushes.emplace_back(1000 + i, seq++);
  for (int i = 0; i < 2; ++i) pushes.emplace_back(60, seq++);
  // Shuffle deterministically so heap layout is nontrivial.
  std::uint64_t rng = 7;
  for (std::size_t i = pushes.size(); i > 1; --i)
    std::swap(pushes[i - 1], pushes[lcg(rng) % i]);
  for (const auto& [when, s] : pushes)
    q.push(when, s, [&order, s = s] { order.push_back(s); });

  SimTime when = 0;
  std::vector<Callback> run;
  ASSERT_EQ(q.pop_run(when, run), 200u);
  EXPECT_EQ(when, 50u);
  run.clear();
  ASSERT_EQ(q.pop_run(when, run), 2u);
  EXPECT_EQ(when, 60u);
  run.clear();
  // Everything left drains in strict (when, seq) order.
  SimTime prev = 0;
  std::uint64_t prev_seq = 0;
  while (!q.empty()) {
    std::uint64_t s = 0;
    Callback cb;
    q.pop_min(when, s, cb);
    EXPECT_TRUE(when > prev || (when == prev && s > prev_seq));
    prev = when;
    prev_seq = s;
  }
}

TEST(SimulatorBatch, ConditionStopsMidRunAndResumesInOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.schedule_at(200, [&order] { order.push_back(99); });
  // Stop after the 2nd event of the 5-event run: the remaining 3 stay
  // buffered and still count as pending.
  EXPECT_TRUE(sim.run_until_condition([&order] { return order.size() == 2; }));
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 99}));
}

// ---------------------------------------------------------------------------
// End-to-end parity: a machine configured with the wheel is bit-identical
// to the heap machine — all five systems, traced and untraced, and a
// 4-shard fleet (which also pins des.slab_peak equality via the metrics).

RunResult run_small_cell(PathKind kind, QueueKind queue, bool traced) {
  SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload w(sc);
  MachineConfig mc = default_machine(kind);
  mc.queue = queue;
  mc.trace.enabled = traced;
  return run_experiment(mc, w, {1500, 700});
}

TEST(QueueParity, AllSystemsBitIdenticalHeapVsWheel) {
  for (PathKind kind : kAllPaths) {
    for (bool traced : {false, true}) {
      const RunResult heap = run_small_cell(kind, QueueKind::kHeap, traced);
      const RunResult wheel = run_small_cell(kind, QueueKind::kWheel, traced);
      EXPECT_EQ(heap.Deterministic(), wheel.Deterministic())
          << "kind=" << static_cast<int>(kind) << " traced=" << traced;
      EXPECT_GT(wheel.events_executed, 0u);
    }
  }
}

TEST(QueueParity, FourShardFleetBitIdenticalHeapVsWheel) {
  auto factory = [](std::uint64_t seed) -> std::unique_ptr<Workload> {
    SyntheticConfig sc = table1_workload('C', Distribution::kZipf, seed);
    sc.file_size = 8 * kMiB;
    return std::make_unique<SyntheticWorkload>(sc);
  };
  FleetResult results[2];
  const QueueKind kinds[2] = {QueueKind::kHeap, QueueKind::kWheel};
  for (int v = 0; v < 2; ++v) {
    FleetConfig fleet;
    fleet.shards = 4;
    fleet.machine = default_machine(PathKind::kPipette);
    fleet.machine.queue = kinds[v];
    results[v] = FleetRunner(fleet, factory, 42).run({1600, 800}, /*jobs=*/2);
  }
  EXPECT_TRUE(deterministic_equal(results[0], results[1]));
}

}  // namespace
}  // namespace pipette
