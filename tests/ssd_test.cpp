// Tests for the SSD substrate: disk content overlay, FTL mapping, PCIe cost
// model, HMB/Info Area ring, CMB, and the controller's four command flows
// including the device-side Fine-Grained Read Engine.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "des/simulator.h"
#include "ssd/controller.h"

namespace pipette {
namespace {

// --- DiskContent ---

TEST(DiskContent, PristineReadsMatchPattern) {
  DiskContent d(7);
  std::vector<std::uint8_t> buf(64);
  d.read(5, 100, {buf.data(), buf.size()});
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf[i], d.pristine_byte(5, 100 + static_cast<std::uint32_t>(i)));
}

TEST(DiskContent, DifferentLbasDiffer) {
  DiskContent d;
  std::vector<std::uint8_t> a(32), b(32);
  d.read(1, 0, {a.data(), a.size()});
  d.read(2, 0, {b.data(), b.size()});
  EXPECT_NE(a, b);
}

TEST(DiskContent, WriteOverlayAndReadBack) {
  DiskContent d;
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  d.write(9, 1000, {data.data(), data.size()});
  std::vector<std::uint8_t> out(7);
  d.read(9, 999, {out.data(), out.size()});
  EXPECT_EQ(out[0], d.pristine_byte(9, 999));  // before the write: pristine
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i) + 1], data[static_cast<size_t>(i)]);
  EXPECT_EQ(out[6], d.pristine_byte(9, 1005));  // after the write: pristine
  EXPECT_EQ(d.dirty_blocks(), 1u);
}

TEST(DiskContent, PartialWritePreservesRestOfBlock) {
  DiskContent d;
  std::vector<std::uint8_t> data(16, 0xAB);
  d.write(3, 0, {data.data(), data.size()});
  std::vector<std::uint8_t> out(32);
  d.read(3, 0, {out.data(), out.size()});
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 0xAB);
  for (int i = 16; i < 32; ++i)
    EXPECT_EQ(out[static_cast<size_t>(i)],
              d.pristine_byte(3, static_cast<std::uint32_t>(i)));
}

// --- FTL ---

NandGeometry ftl_geometry() {
  NandGeometry g;
  g.channels = 4;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  return g;  // 1024 pages
}

TEST(Ftl, InitialMappingStripesAcrossChannels) {
  Ftl ftl(ftl_geometry(), 256);
  for (Lba lba = 0; lba < 8; ++lba) {
    const PhysPageAddr a = ftl.lookup(lba);
    EXPECT_EQ(a.channel, lba % 4);
    EXPECT_EQ(a.way, (lba / 4) % 2);
    EXPECT_EQ(a.page, lba / 8);
  }
}

TEST(Ftl, MappingIsInjective) {
  Ftl ftl(ftl_geometry(), 512);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (Lba lba = 0; lba < 512; ++lba) {
    const PhysPageAddr a = ftl.lookup(lba);
    EXPECT_TRUE(seen.insert({a.channel, a.way, a.page}).second) << lba;
  }
}

TEST(Ftl, UpdateRemapsAndInvalidates) {
  Ftl ftl(ftl_geometry(), 256);
  const PhysPageAddr before = ftl.lookup(10);
  const PhysPageAddr after = ftl.update(10);
  EXPECT_FALSE(before == after);
  EXPECT_TRUE(ftl.lookup(10) == after);
  EXPECT_EQ(ftl.stats().invalidated_pages, 1u);
}

TEST(Ftl, UpdatesSpreadAcrossDies) {
  Ftl ftl(ftl_geometry(), 256);
  std::set<std::pair<std::uint32_t, std::uint32_t>> dies;
  for (int i = 0; i < 8; ++i) {
    const PhysPageAddr a = ftl.update(static_cast<Lba>(i));
    dies.insert({a.channel, a.way});
  }
  EXPECT_EQ(dies.size(), 8u);  // 8 writes -> all 8 dies
}

TEST(Ftl, UpdatedPagesStayInjective) {
  Ftl ftl(ftl_geometry(), 256);
  for (int round = 0; round < 3; ++round)
    for (Lba lba = 0; lba < 16; ++lba) ftl.update(lba);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (Lba lba = 0; lba < 256; ++lba) {
    const PhysPageAddr a = ftl.lookup(lba);
    EXPECT_TRUE(seen.insert({a.channel, a.way, a.page}).second) << lba;
  }
}

TEST(Ftl, GcReclaimsInvalidatedBlocks) {
  Ftl ftl(ftl_geometry(), 256);
  // Hammer a small set of LBAs until GC must run.
  for (int round = 0; round < 200 && ftl.stats().gc_collections == 0;
       ++round) {
    for (Lba lba = 0; lba < 32; ++lba) ftl.update(lba);
  }
  EXPECT_GT(ftl.stats().gc_collections, 0u);
  EXPECT_GT(ftl.stats().blocks_erased, 0u);
  // No die ever runs dry.
  const auto dies = ftl_geometry().dies();
  for (std::uint32_t d = 0; d < dies; ++d)
    EXPECT_GE(ftl.free_blocks(d) + 1, 1u);
  // The mapping survives GC: still injective, lookups still resolve.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (Lba lba = 0; lba < 256; ++lba) {
    const PhysPageAddr a = ftl.lookup(lba);
    EXPECT_TRUE(seen.insert({a.channel, a.way, a.page}).second) << lba;
  }
}

TEST(Ftl, GcMovesAreReportedOnce) {
  Ftl ftl(ftl_geometry(), 256);
  std::uint64_t total_moves = 0;
  for (int round = 0; round < 400; ++round) {
    for (Lba lba = 0; lba < 16; ++lba) ftl.update(lba);
    total_moves += ftl.take_gc_moves().size();
    EXPECT_TRUE(ftl.take_gc_moves().empty());  // drained
  }
  EXPECT_EQ(total_moves, ftl.stats().gc_relocated_pages);
}

TEST(Ftl, WriteAmplificationAtLeastOne) {
  Ftl ftl(ftl_geometry(), 256);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
  for (int round = 0; round < 400; ++round)
    for (Lba lba = 0; lba < 16; ++lba) ftl.update(lba);
  EXPECT_GE(ftl.stats().write_amplification(), 1.0);
  // Overwriting a tiny working set leaves mostly-invalid victims, so GC
  // should stay cheap: amplification well under 2.
  EXPECT_LT(ftl.stats().write_amplification(), 2.0);
}

TEST(Ftl, SustainedRandomWritesSurvive) {
  Ftl ftl(ftl_geometry(), 256);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) ftl.update(rng.next_below(256));
  // Content correctness proxy: every lookup decodes to a valid address.
  for (Lba lba = 0; lba < 256; ++lba) {
    const PhysPageAddr a = ftl.lookup(lba);
    EXPECT_LT(a.channel, ftl_geometry().channels);
    EXPECT_LT(a.way, ftl_geometry().ways_per_channel);
    EXPECT_LT(a.page, ftl_geometry().pages_per_die());
  }
  EXPECT_GT(ftl.stats().gc_collections, 0u);
}

// --- PCIe ---

TEST(Pcie, MmioCostLinearInTransactions) {
  Simulator sim;
  PcieTiming t;
  PcieLink link(sim, t);
  EXPECT_EQ(link.mmio_read_cost(8), t.mmio_read_per_tx);
  EXPECT_EQ(link.mmio_read_cost(1), t.mmio_read_per_tx);
  EXPECT_EQ(link.mmio_read_cost(16), 2 * t.mmio_read_per_tx);
  EXPECT_EQ(link.mmio_read_cost(4096), 512 * t.mmio_read_per_tx);
}

TEST(Pcie, DmaCostHasOverheadPlusBytes) {
  Simulator sim;
  PcieTiming t;
  PcieLink link(sim, t);
  EXPECT_EQ(link.dma_cost(0), t.dma_overhead);
  EXPECT_GT(link.dma_cost(4096), link.dma_cost(128));
}

TEST(Pcie, DmaTransfersSerialiseOnLink) {
  Simulator sim;
  PcieTiming t;
  PcieLink link(sim, t);
  std::vector<SimTime> done(2);
  link.dma(4096, [&] { done[0] = sim.now(); });
  link.dma(4096, [&] { done[1] = sim.now(); });
  sim.run_all();
  EXPECT_EQ(done[0], link.dma_cost(4096));
  EXPECT_EQ(done[1], 2 * link.dma_cost(4096));
  EXPECT_EQ(link.dma_bytes(), 8192u);
}

// --- InfoArea / Hmb ---

TEST(InfoArea, PushConsumeRoundTrip) {
  InfoArea ring(4);
  EXPECT_TRUE(ring.empty());
  const auto idx = ring.push({100, 5, 64, 128});
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(ring.in_flight(), 1u);
  const InfoRecord& rec = ring.at(idx);
  EXPECT_EQ(rec.dest, 100u);
  EXPECT_EQ(rec.lba, 5u);
  ring.consume();
  EXPECT_TRUE(ring.empty());
}

TEST(InfoArea, WrapsAroundCapacity) {
  InfoArea ring(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto idx = ring.push({i, i, 1, 1});
    EXPECT_EQ(ring.at(idx).dest, i);
    ring.consume();
  }
  EXPECT_EQ(ring.head(), 10u);
  EXPECT_EQ(ring.tail(), 10u);
}

TEST(InfoArea, FullDetection) {
  InfoArea ring(2);
  ring.push({});
  EXPECT_FALSE(ring.full());
  ring.push({});
  EXPECT_TRUE(ring.full());
  ring.consume();
  EXPECT_FALSE(ring.full());
}

TEST(InfoAreaDeathTest, OverflowAsserts) {
  InfoArea ring(1);
  ring.push({});
  EXPECT_DEATH(ring.push({}), "overflow");
}

TEST(Hmb, LayoutPartitionsDoNotOverlap) {
  Hmb::Layout layout;
  layout.info_slots = 8;
  layout.tempbuf_bytes = 1024;
  layout.data_bytes = 4096;
  Hmb hmb(layout);
  EXPECT_EQ(hmb.tempbuf_offset(), 8 * sizeof(InfoRecord));
  EXPECT_EQ(hmb.data_offset(), hmb.tempbuf_offset() + 1024);
  EXPECT_EQ(hmb.size(), hmb.data_offset() + 4096);
  EXPECT_EQ(hmb.tempbuf().size(), 1024u);
  EXPECT_EQ(hmb.data_area().size(), 4096u);
}

TEST(Hmb, DmaWriteThenRead) {
  Hmb hmb({8, 256, 1024});
  std::vector<std::uint8_t> in{9, 8, 7};
  hmb.dma_write(hmb.data_offset() + 10, {in.data(), in.size()});
  std::vector<std::uint8_t> out(3);
  hmb.read(hmb.data_offset() + 10, {out.data(), out.size()});
  EXPECT_EQ(in, out);
}

// --- Cmb ---

TEST(Cmb, SlotsRecycleRoundRobin) {
  Cmb cmb(3);
  EXPECT_EQ(cmb.claim_slot(), 0u);
  EXPECT_EQ(cmb.claim_slot(), 1u);
  EXPECT_EQ(cmb.claim_slot(), 2u);
  EXPECT_EQ(cmb.claim_slot(), 0u);
}

TEST(Cmb, FillAndReadBack) {
  Cmb cmb(2);
  std::vector<std::uint8_t> page(kBlockSize, 0x5A);
  cmb.fill(1, {page.data(), page.size()});
  auto view = cmb.slot(1);
  EXPECT_EQ(view[0], 0x5A);
  EXPECT_EQ(view[kBlockSize - 1], 0x5A);
}

// --- Controller ---

ControllerConfig test_config() {
  ControllerConfig c;
  c.geometry.channels = 4;
  c.geometry.ways_per_channel = 2;
  c.geometry.planes_per_die = 1;
  c.geometry.blocks_per_plane = 16;
  c.geometry.pages_per_block = 64;  // 8192 pages = 32 MiB
  c.lba_count = 4096;
  c.read_buffer_bytes = 64 * kBlockSize;
  c.block_reads_use_buffer = true;  // exercise the buffer from block reads
  c.hmb.info_slots = 64;
  c.hmb.tempbuf_bytes = 8192;
  c.hmb.data_bytes = 1 * kMiB;
  return c;
}

struct ControllerFixture : ::testing::Test {
  Simulator sim;
  ControllerConfig config = test_config();
  SsdController ctrl{sim, config};

  CommandResult run(Command cmd) {
    CommandResult result;
    bool done = false;
    ctrl.submit(std::move(cmd), [&](const CommandResult& r) {
      result = r;
      done = true;
    });
    EXPECT_TRUE(sim.run_until_condition([&] { return done; }));
    return result;
  }
};

TEST_F(ControllerFixture, BlockReadReturnsCorrectBytes) {
  std::vector<std::uint8_t> buf(2 * kBlockSize);
  Command cmd;
  cmd.op = Opcode::kRead;
  cmd.lba = 10;
  cmd.nlb = 2;
  cmd.host_dest = {buf.data(), buf.size()};
  const CommandResult r = run(std::move(cmd));
  EXPECT_GT(r.completed_at, 0u);
  for (std::uint32_t i = 0; i < 2 * kBlockSize; ++i) {
    const Lba lba = 10 + i / kBlockSize;
    ASSERT_EQ(buf[i], ctrl.content().pristine_byte(lba, i % kBlockSize));
  }
  EXPECT_EQ(ctrl.stats().bytes_to_host, 2u * kBlockSize);
}

TEST_F(ControllerFixture, BlockReadHitsReadBufferSecondTime) {
  std::vector<std::uint8_t> buf(kBlockSize);
  for (int i = 0; i < 2; ++i) {
    Command cmd;
    cmd.op = Opcode::kRead;
    cmd.lba = 5;
    cmd.host_dest = {buf.data(), buf.size()};
    run(std::move(cmd));
  }
  EXPECT_EQ(ctrl.stats().read_buffer.hits(), 1u);
  EXPECT_EQ(ctrl.stats().read_buffer.misses(), 1u);
  EXPECT_EQ(ctrl.nand().stats().page_reads, 1u);
}

TEST_F(ControllerFixture, ReadBufferHitIsFaster) {
  std::vector<std::uint8_t> buf(kBlockSize);
  Command a;
  a.op = Opcode::kRead;
  a.lba = 7;
  a.host_dest = {buf.data(), buf.size()};
  const SimTime t0 = sim.now();
  run(std::move(a));
  const SimDuration miss_latency = sim.now() - t0;
  Command b;
  b.op = Opcode::kRead;
  b.lba = 7;
  b.host_dest = {buf.data(), buf.size()};
  const SimTime t1 = sim.now();
  run(std::move(b));
  const SimDuration hit_latency = sim.now() - t1;
  EXPECT_LT(hit_latency * 5, miss_latency);  // no tR on the hit
}

TEST_F(ControllerFixture, MultiPageReadUsesChannelParallelism) {
  // 4 consecutive LBAs stripe across the 4 channels: total time should be
  // far below 4 sequential page reads.
  std::vector<std::uint8_t> buf(4 * kBlockSize);
  Command cmd;
  cmd.op = Opcode::kRead;
  cmd.lba = 0;
  cmd.nlb = 4;
  cmd.host_dest = {buf.data(), buf.size()};
  const SimTime t0 = sim.now();
  run(std::move(cmd));
  const SimDuration elapsed = sim.now() - t0;
  const SimDuration t_read = config.nand_timing.t_read();
  EXPECT_LT(elapsed, 2 * t_read);
  EXPECT_EQ(ctrl.nand().stats().page_reads, 4u);
}

TEST_F(ControllerFixture, WriteThenReadSeesNewData) {
  Command w;
  w.op = Opcode::kWrite;
  w.lba = 3;
  w.nlb = 1;
  w.write_data.assign(kBlockSize, 0xEE);
  run(std::move(w));
  EXPECT_EQ(ctrl.stats().block_writes, 1u);

  std::vector<std::uint8_t> buf(kBlockSize);
  Command r;
  r.op = Opcode::kRead;
  r.lba = 3;
  r.host_dest = {buf.data(), buf.size()};
  run(std::move(r));
  for (auto b : buf) ASSERT_EQ(b, 0xEE);
}

TEST_F(ControllerFixture, FgReadLandsBytesAtHmbDestinations) {
  // Two ranges in different pages, landing at distinct HMB offsets.
  auto& info = ctrl.hmb().info();
  const HmbAddr d0 = ctrl.hmb().data_offset();
  const HmbAddr d1 = d0 + 128;
  Command cmd;
  cmd.op = Opcode::kFgRead;
  cmd.ranges = {
      {20, 100, 128, info.push({d0, 20, 100, 128})},
      {21, 512, 64, info.push({d1, 21, 512, 64})},
  };
  run(std::move(cmd));

  std::vector<std::uint8_t> out(128);
  ctrl.hmb().read(d0, {out.data(), out.size()});
  for (std::uint32_t i = 0; i < 128; ++i)
    ASSERT_EQ(out[i], ctrl.content().pristine_byte(20, 100 + i));
  out.resize(64);
  ctrl.hmb().read(d1, {out.data(), out.size()});
  for (std::uint32_t i = 0; i < 64; ++i)
    ASSERT_EQ(out[i], ctrl.content().pristine_byte(21, 512 + i));

  // The engine consumed both Info Area records.
  EXPECT_TRUE(info.empty());
  EXPECT_EQ(ctrl.stats().fg_ranges, 2u);
  EXPECT_EQ(ctrl.stats().bytes_to_host, 128u + 64u);
}

TEST_F(ControllerFixture, FgReadLoadsEachDistinctPageOnce) {
  auto& info = ctrl.hmb().info();
  const HmbAddr base = ctrl.hmb().data_offset();
  Command cmd;
  cmd.op = Opcode::kFgRead;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const std::uint32_t off = i * 128;
    cmd.ranges.push_back(
        {30, off, 128, info.push({base + i * 128, 30, off, 128})});
  }
  run(std::move(cmd));
  EXPECT_EQ(ctrl.nand().stats().page_reads, 1u);  // one page, four ranges
  EXPECT_EQ(ctrl.stats().bytes_to_host, 512u);
}

TEST_F(ControllerFixture, FgReadTrafficIsOnlyDemandedBytes) {
  auto& info = ctrl.hmb().info();
  Command cmd;
  cmd.op = Opcode::kFgRead;
  cmd.ranges = {{40, 0, 8, info.push({ctrl.hmb().data_offset(), 40, 0, 8})}};
  run(std::move(cmd));
  EXPECT_EQ(ctrl.stats().bytes_to_host, 8u);
}

TEST_F(ControllerFixture, ReadToCmbThenMmioPull) {
  Command cmd;
  cmd.op = Opcode::kReadToCmb;
  cmd.lba = 50;
  const CommandResult r = run(std::move(cmd));
  std::vector<std::uint8_t> out(96);
  const SimDuration cost =
      ctrl.read_from_cmb(r.cmb_slot, 200, {out.data(), out.size()}, false);
  EXPECT_EQ(cost, ctrl.pcie().mmio_read_cost(96));
  for (std::uint32_t i = 0; i < 96; ++i)
    ASSERT_EQ(out[i], ctrl.content().pristine_byte(50, 200 + i));
}

TEST_F(ControllerFixture, CmbDmaPullPaysMappingCost) {
  Command cmd;
  cmd.op = Opcode::kReadToCmb;
  cmd.lba = 51;
  const CommandResult r = run(std::move(cmd));
  std::vector<std::uint8_t> out(128);
  const SimDuration dma_cost =
      ctrl.read_from_cmb(r.cmb_slot, 0, {out.data(), out.size()}, true);
  EXPECT_GE(dma_cost, config.pcie.dma_map_cost);
}

TEST_F(ControllerFixture, FgWritePatchesOnlyDemandedBytes) {
  Command cmd;
  cmd.op = Opcode::kFgWrite;
  cmd.write_data.assign(64, 0xCD);
  cmd.ranges = {{70, 100, 64, 0}};
  run(std::move(cmd));
  EXPECT_EQ(ctrl.stats().fg_writes, 1u);
  EXPECT_EQ(ctrl.stats().bytes_from_host, 64u);
  std::vector<std::uint8_t> out(kBlockSize);
  ctrl.content().read(70, 0, {out.data(), out.size()});
  for (std::uint32_t i = 0; i < kBlockSize; ++i) {
    if (i >= 100 && i < 164) {
      ASSERT_EQ(out[i], 0xCD);
    } else {
      ASSERT_EQ(out[i], ctrl.content().pristine_byte(70, i)) << i;
    }
  }
}

TEST_F(ControllerFixture, FgWriteSpanningTwoPages) {
  Command cmd;
  cmd.op = Opcode::kFgWrite;
  cmd.write_data.assign(200, 0xEF);
  cmd.ranges = {{80, kBlockSize - 100, 100, 0}, {81, 0, 100, 0}};
  run(std::move(cmd));
  std::vector<std::uint8_t> tail(100), head(100);
  ctrl.content().read(80, kBlockSize - 100, {tail.data(), tail.size()});
  ctrl.content().read(81, 0, {head.data(), head.size()});
  for (auto b : tail) ASSERT_EQ(b, 0xEF);
  for (auto b : head) ASSERT_EQ(b, 0xEF);
  // Two pages were remapped and programmed.
  EXPECT_EQ(ctrl.ftl().stats().writes_mapped, 2u);
  EXPECT_EQ(ctrl.nand().stats().page_programs, 2u);
}

TEST_F(ControllerFixture, FgWriteThenFgReadRoundTrip) {
  Command w;
  w.op = Opcode::kFgWrite;
  w.write_data.assign(32, 0x42);
  w.ranges = {{90, 500, 32, 0}};
  run(std::move(w));

  auto& info = ctrl.hmb().info();
  Command r;
  r.op = Opcode::kFgRead;
  r.ranges = {{90, 500, 32, info.push({ctrl.hmb().data_offset(), 90, 500, 32})}};
  run(std::move(r));
  std::vector<std::uint8_t> out(32);
  ctrl.hmb().read(ctrl.hmb().data_offset(), {out.data(), out.size()});
  for (auto b : out) ASSERT_EQ(b, 0x42);
}

TEST_F(ControllerFixture, ConcurrentCommandsAllComplete) {
  // Sixteen block reads in flight at once: all complete, data correct,
  // and the array's parallelism keeps total time well under serial.
  constexpr int kN = 16;
  std::vector<std::vector<std::uint8_t>> bufs(kN);
  int completed = 0;
  for (int i = 0; i < kN; ++i) {
    bufs[static_cast<size_t>(i)].resize(kBlockSize);
    Command cmd;
    cmd.op = Opcode::kRead;
    cmd.lba = static_cast<Lba>(i * 37 % 512);
    cmd.host_dest = {bufs[static_cast<size_t>(i)].data(), kBlockSize};
    ctrl.submit(std::move(cmd),
                [&completed](const CommandResult&) { ++completed; });
  }
  sim.run_all();
  EXPECT_EQ(completed, kN);
  const SimDuration serial = kN * config.nand_timing.t_read();
  EXPECT_LT(sim.now(), serial);
  for (int i = 0; i < kN; ++i) {
    const Lba lba = static_cast<Lba>(i * 37 % 512);
    for (std::uint32_t b = 0; b < kBlockSize; ++b)
      ASSERT_EQ(bufs[static_cast<size_t>(i)][b],
                ctrl.content().pristine_byte(lba, b));
  }
}

TEST_F(ControllerFixture, InterleavedReadsAndWritesStayCoherent) {
  // Writes and reads of the same LBA issued back-to-back (the read
  // submitted after the write) must observe the write's data.
  Command w;
  w.op = Opcode::kWrite;
  w.lba = 100;
  w.write_data.assign(kBlockSize, 0xA1);
  bool w_done = false;
  ctrl.submit(std::move(w), [&](const CommandResult&) { w_done = true; });
  std::vector<std::uint8_t> buf(kBlockSize);
  Command r;
  r.op = Opcode::kRead;
  r.lba = 100;
  r.host_dest = {buf.data(), buf.size()};
  bool r_done = false;
  ctrl.submit(std::move(r), [&](const CommandResult&) { r_done = true; });
  sim.run_all();
  EXPECT_TRUE(w_done && r_done);
  for (auto b : buf) ASSERT_EQ(b, 0xA1);
}

TEST_F(ControllerFixture, FgReadsFromManyPagesUseParallelDies) {
  // 8 ranges on 8 different, channel-striped pages: the sensing overlaps.
  auto& info = ctrl.hmb().info();
  Command cmd;
  cmd.op = Opcode::kFgRead;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Lba lba = i;  // striped across the 4 channels x 2 ways
    cmd.ranges.push_back(
        {lba, 0, 64,
         info.push({ctrl.hmb().data_offset() + i * 64, lba, 0, 64})});
  }
  const SimTime t0 = sim.now();
  run(std::move(cmd));
  EXPECT_LT(sim.now() - t0, 2 * config.nand_timing.t_read());
  EXPECT_EQ(ctrl.nand().stats().page_reads, 8u);
}

TEST_F(ControllerFixture, StatsAccumulateAcrossCommandMix) {
  std::vector<std::uint8_t> buf(kBlockSize);
  Command r;
  r.op = Opcode::kRead;
  r.lba = 1;
  r.host_dest = {buf.data(), buf.size()};
  run(std::move(r));
  Command w;
  w.op = Opcode::kWrite;
  w.lba = 1;
  w.write_data.assign(kBlockSize, 1);
  run(std::move(w));
  Command c;
  c.op = Opcode::kReadToCmb;
  c.lba = 2;
  run(std::move(c));
  EXPECT_EQ(ctrl.stats().commands, 3u);
  EXPECT_EQ(ctrl.stats().block_reads, 1u);
  EXPECT_EQ(ctrl.stats().block_writes, 1u);
  EXPECT_EQ(ctrl.stats().cmb_reads, 1u);
}

TEST_F(ControllerFixture, WriteInvalidatesDeviceReadBuffer) {
  std::vector<std::uint8_t> buf(kBlockSize);
  Command r1;
  r1.op = Opcode::kRead;
  r1.lba = 60;
  r1.host_dest = {buf.data(), buf.size()};
  run(std::move(r1));  // stages page 60
  Command w;
  w.op = Opcode::kWrite;
  w.lba = 60;
  w.write_data.assign(kBlockSize, 0x11);
  run(std::move(w));
  Command r2;
  r2.op = Opcode::kRead;
  r2.lba = 60;
  r2.host_dest = {buf.data(), buf.size()};
  run(std::move(r2));
  for (auto b : buf) ASSERT_EQ(b, 0x11);
  // Second read re-staged from NAND (buffer was invalidated).
  EXPECT_EQ(ctrl.stats().read_buffer.misses(), 2u);
}

}  // namespace
}  // namespace pipette
