// Golden-trace regression tripwire: one fixed experiment cell per path kind
// (Table 1 'C', uniform, 20k measured requests over a 32 MiB file), with
// every deterministic RunResult field pinned to a checked-in JSON fixture.
//
// Any change to simulator behaviour — event ordering, timing constants,
// cache policy, RNG consumption — shows up here as a one-line diff long
// before a human would notice it in a benchmark table. Future PRs run this
// as their seed-parity gate: an intentional behaviour change regenerates
// the fixture (and says so in review); an unintentional one fails loudly.
//
// Regenerate with:
//   PIPETTE_UPDATE_GOLDEN=1 ./tests/golden_test
// which rewrites tests/golden/golden_trace.json in the source tree.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

#ifndef GOLDEN_TRACE_PATH
#error "GOLDEN_TRACE_PATH must point at the checked-in fixture"
#endif

namespace pipette {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kFileMiB = 32;
constexpr std::uint64_t kWarmup = 5'000;
constexpr std::uint64_t kRequests = 20'000;

// %.17g round-trips every double exactly, so string equality on the
// rendered fixture is bit-equality on the values.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// `write_ratio` 0 renders the historic read-only matrix; nonzero renders
// the write-mix matrix (run at an explicit page-sized mapping unit, pinning
// that MU = 4096 spelled out stays the same device as the page-granular
// default — see golden_mu_trace.json).
std::string render_golden(const char* workload_name, double write_ratio,
                          std::uint32_t mapping_unit) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"workload\": \"" << workload_name << "\",\n";
  out << "  \"file_mib\": " << kFileMiB << ",\n";
  out << "  \"seed\": " << kSeed << ",\n";
  out << "  \"warmup\": " << kWarmup << ",\n";
  out << "  \"requests\": " << kRequests << ",\n";
  out << "  \"cells\": [\n";
  bool first = true;
  for (PathKind kind : kAllPaths) {
    SyntheticConfig sc = table1_workload('C', Distribution::kUniform, kSeed);
    sc.file_size = kFileMiB * kMiB;
    sc.write_ratio = write_ratio;
    SyntheticWorkload workload(sc);
    MachineConfig machine = default_machine(kind);
    machine.mapping_unit = mapping_unit;
    const RunResult r = run_experiment(machine, workload, {kRequests, kWarmup});
    if (!first) out << ",\n";
    first = false;
    out << "    {\n";
    out << "      \"path\": \"" << r.path_name << "\",\n";
    out << "      \"requests\": " << fmt(r.requests) << ",\n";
    out << "      \"measured_reads\": " << fmt(r.measured_reads) << ",\n";
    out << "      \"bytes_requested\": " << fmt(r.bytes_requested) << ",\n";
    out << "      \"elapsed_ns\": " << fmt(r.elapsed) << ",\n";
    out << "      \"traffic_bytes\": " << fmt(r.traffic_bytes) << ",\n";
    out << "      \"mean_latency_us\": " << fmt(r.mean_latency_us) << ",\n";
    out << "      \"p50_latency_us\": " << fmt(r.p50_latency_us) << ",\n";
    out << "      \"p99_latency_us\": " << fmt(r.p99_latency_us) << ",\n";
    out << "      \"page_cache_hit_ratio\": " << fmt(r.page_cache_hit_ratio)
        << ",\n";
    out << "      \"fgrc_hit_ratio\": " << fmt(r.fgrc_hit_ratio) << ",\n";
    out << "      \"page_cache_bytes\": " << fmt(r.page_cache_bytes) << ",\n";
    out << "      \"fgrc_bytes\": " << fmt(r.fgrc_bytes) << ",\n";
    out << "      \"events_executed\": " << fmt(r.events_executed) << "\n";
    out << "    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

// Fleet-layer tripwire: four small fleets (plain, and one per outage
// policy) with every deterministic FleetResult aggregate pinned. These are
// exactly the configurations the replica/migration layer must leave
// untouched: replication left at its R=1 / kPrimaryOnly / no-migration
// default takes the legacy code path, and this fixture is what "bit-identical
// to the pre-replica fleet" means.
std::string render_golden_fleet() {
  constexpr std::uint64_t kFleetWarmup = 600;
  constexpr std::uint64_t kFleetRequests = 1'200;

  struct Cell {
    const char* name;
    std::size_t shards;
    PartitionScheme partition;
    PathKind kind;
    FleetFaultPlan faults;
  };
  FleetFaultPlan fail_fast;
  fail_fast.outages = {{/*shard=*/1, /*fail_at=*/800, /*recover_at=*/1200}};
  fail_fast.policy = DownShardPolicy::kFailFast;
  FleetFaultPlan retry;
  retry.outages = {{/*shard=*/2, /*fail_at=*/700, /*recover_at=*/1000}};
  retry.policy = DownShardPolicy::kRetryBackoff;
  FleetFaultPlan reroute;
  reroute.outages = {{/*shard=*/0, /*fail_at=*/800, /*recover_at=*/1300}};
  reroute.policy = DownShardPolicy::kReroute;
  const Cell cells[] = {
      {"hash-pipette-4", 4, PartitionScheme::kHash, PathKind::kPipette, {}},
      {"range-blockio-3-failfast", 3, PartitionScheme::kRange,
       PathKind::kBlockIo, fail_fast},
      {"hash-pipette-4-retry", 4, PartitionScheme::kHash, PathKind::kPipette,
       retry},
      {"hash-blockio-3-reroute", 3, PartitionScheme::kHash, PathKind::kBlockIo,
       reroute},
  };

  std::ostringstream out;
  out << "{\n";
  out << "  \"workload\": \"table1-C-zipf-8mib\",\n";
  out << "  \"seed\": " << kSeed << ",\n";
  out << "  \"warmup\": " << kFleetWarmup << ",\n";
  out << "  \"requests\": " << kFleetRequests << ",\n";
  out << "  \"cells\": [\n";
  bool first = true;
  for (const Cell& cell : cells) {
    FleetConfig fleet;
    fleet.shards = cell.shards;
    fleet.partition = cell.partition;
    fleet.machine = default_machine(cell.kind);
    fleet.faults = cell.faults;
    FleetRunner runner(
        fleet,
        [](std::uint64_t seed) -> std::unique_ptr<Workload> {
          SyntheticConfig sc = table1_workload('C', Distribution::kZipf, seed);
          sc.file_size = 8 * kMiB;
          return std::make_unique<SyntheticWorkload>(sc);
        },
        kSeed);
    const FleetResult r = runner.run({kFleetRequests, kFleetWarmup},
                                     /*jobs=*/1);
    if (!first) out << ",\n";
    first = false;
    out << "    {\n";
    out << "      \"cell\": \"" << cell.name << "\",\n";
    out << "      \"requests\": " << fmt(r.requests) << ",\n";
    out << "      \"measured_reads\": " << fmt(r.measured_reads) << ",\n";
    out << "      \"bytes_requested\": " << fmt(r.bytes_requested) << ",\n";
    out << "      \"traffic_bytes\": " << fmt(r.traffic_bytes) << ",\n";
    out << "      \"events_executed\": " << fmt(r.events_executed) << ",\n";
    out << "      \"retries\": " << fmt(r.retries) << ",\n";
    out << "      \"failed_reads\": " << fmt(r.failed_reads) << ",\n";
    out << "      \"degraded_reads\": " << fmt(r.degraded_reads) << ",\n";
    out << "      \"down_requests\": " << fmt(r.down_requests) << ",\n";
    out << "      \"makespan_ns\": " << fmt(r.makespan) << ",\n";
    out << "      \"mean_latency_us\": " << fmt(r.mean_latency_us) << ",\n";
    out << "      \"p50_latency_us\": " << fmt(r.p50_latency_us) << ",\n";
    out << "      \"p99_latency_us\": " << fmt(r.p99_latency_us) << ",\n";
    out << "      \"p999_latency_us\": "
        << fmt(to_us(r.latency.percentile(99.9))) << ",\n";
    out << "      \"availability\": " << fmt(r.availability()) << ",\n";
    out << "      \"max_shard_requests\": " << fmt(r.max_shard_requests)
        << ",\n";
    out << "      \"min_shard_requests\": " << fmt(r.min_shard_requests)
        << ",\n";
    out << "      \"mean_shard_requests\": " << fmt(r.mean_shard_requests)
        << ",\n";
    out << "      \"load_imbalance\": " << fmt(r.load_imbalance) << ",\n";
    out << "      \"hottest_shard\": " << fmt(r.hottest_shard) << ",\n";
    out << "      \"hottest_shard_fgrc_hit_ratio\": "
        << fmt(r.hottest_shard_fgrc_hit_ratio) << ",\n";
    out << "      \"shards\": [\n";
    for (std::size_t s = 0; s < r.shard_results.size(); ++s) {
      const RunResult& sr = r.shard_results[s];
      out << "        \"" << fmt(sr.requests) << ":" << fmt(sr.measured_reads)
          << ":" << fmt(sr.elapsed) << ":" << fmt(sr.events_executed) << ":"
          << fmt(sr.failed_reads) << ":" << fmt(sr.retries) << "\""
          << (s + 1 < r.shard_results.size() ? ",\n" : "\n");
    }
    out << "      ]\n";
    out << "    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void check_against_fixture(const std::string& actual, const char* path) {
  if (std::getenv("PIPETTE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(static_cast<bool>(out));
    GTEST_SKIP() << "golden trace regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << "; regenerate with PIPETTE_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  // Line-by-line so a drifted field reads as `"elapsed_ns": old vs new`,
  // not as an opaque whole-file mismatch.
  const std::vector<std::string> want = lines_of(expected);
  const std::vector<std::string> got = lines_of(actual);
  ASSERT_EQ(want.size(), got.size())
      << "fixture shape changed; regenerate with PIPETTE_UPDATE_GOLDEN=1 "
         "if intentional";
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i])
        << "golden trace drift at " << path << ":" << (i + 1)
        << " — if this change is intentional, regenerate with "
           "PIPETTE_UPDATE_GOLDEN=1 and call it out in review";
  }
}

TEST(GoldenTrace, MatchesCheckedInFixture) {
  check_against_fixture(render_golden("table1-C-uniform", 0.0, 0),
                        GOLDEN_TRACE_PATH);
}

// Write-mix twin at an explicitly spelled page-sized mapping unit: pins the
// merged-write allocator, GC, and MU accounting on the write path against
// drift. (That `mapping_unit = 4096` equals the page-granular default is
// separately pinned by tests/ftl_test.cpp's differential sweep, so this
// fixture pins both spellings at once.)
TEST(GoldenTrace, WriteMixAtExplicitPageMuMatchesFixture) {
  check_against_fixture(
      render_golden("table1-C-uniform-wr20", 0.2, 4096),
      GOLDEN_MU_TRACE_PATH);
}

// Fleet fixture: pins the legacy (replica-free) fleet path — partitioned
// routing, all three outage policies, merge aggregates — so the replica /
// migration layer's "degenerate config changes nothing" claim is checked
// against bits on disk, not against a same-binary rerun.
TEST(GoldenTrace, FleetMatchesCheckedInFixture) {
  check_against_fixture(render_golden_fleet(), GOLDEN_FLEET_TRACE_PATH);
}

}  // namespace
}  // namespace pipette
