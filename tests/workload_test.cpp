// Tests for the workload generators: Table 1 mixes, distribution shapes,
// bounds, determinism, and the real-application generators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/units.h"
#include "ssd/types.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"
#include "workload/search.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

TEST(Synthetic, Table1Ratios) {
  EXPECT_DOUBLE_EQ(table1_workload('A', Distribution::kUniform).small_ratio,
                   0.0);
  EXPECT_DOUBLE_EQ(table1_workload('B', Distribution::kUniform).small_ratio,
                   0.1);
  EXPECT_DOUBLE_EQ(table1_workload('C', Distribution::kUniform).small_ratio,
                   0.5);
  EXPECT_DOUBLE_EQ(table1_workload('D', Distribution::kUniform).small_ratio,
                   0.9);
  EXPECT_DOUBLE_EQ(table1_workload('E', Distribution::kUniform).small_ratio,
                   1.0);
}

TEST(Synthetic, MixMatchesRatio) {
  SyntheticConfig c = table1_workload('D', Distribution::kUniform);
  c.file_size = 16 * kMiB;
  SyntheticWorkload w(c);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) small += (w.next().len == 128);
  EXPECT_NEAR(static_cast<double>(small) / n, 0.9, 0.02);
}

TEST(Synthetic, RequestsStayInBounds) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipf}) {
    SyntheticConfig c = table1_workload('C', d);
    c.file_size = 8 * kMiB;
    SyntheticWorkload w(c);
    for (int i = 0; i < 20000; ++i) {
      const Request r = w.next();
      EXPECT_LE(r.offset + r.len, c.file_size);
      EXPECT_FALSE(r.is_write);
    }
  }
}

TEST(Synthetic, SmallReadsAreSlotAligned) {
  SyntheticConfig c = table1_workload('E', Distribution::kUniform);
  c.file_size = 8 * kMiB;
  SyntheticWorkload w(c);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(w.next().offset % 128, 0u);
}

TEST(Synthetic, LargeReadsArePageAligned) {
  SyntheticConfig c = table1_workload('A', Distribution::kUniform);
  c.file_size = 8 * kMiB;
  SyntheticWorkload w(c);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(w.next().offset % 4096, 0u);
}

TEST(Synthetic, ZipfHeadIsClusteredAtFileStart) {
  SyntheticConfig c = table1_workload('E', Distribution::kZipf);
  c.file_size = 64 * kMiB;
  SyntheticWorkload w(c);
  std::uint64_t in_first_mib = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) in_first_mib += (w.next().offset < kMiB);
  // Far beyond the uniform expectation of 1/64.
  EXPECT_GT(in_first_mib, static_cast<std::uint64_t>(n) / 8);
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticConfig c = table1_workload('C', Distribution::kZipf, 123);
  c.file_size = 8 * kMiB;
  SyntheticWorkload a(c), b(c);
  for (int i = 0; i < 1000; ++i) {
    const Request ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.offset, rb.offset);
    EXPECT_EQ(ra.len, rb.len);
  }
}

TEST(SizeSweep, OffsetsAlignedBoundedNeverPageAligned) {
  SizeSweepWorkload w(4 * kMiB, 1024);
  for (int i = 0; i < 5000; ++i) {
    const Request r = w.next();
    EXPECT_EQ(r.offset % 8, 0u);
    EXPECT_NE(r.offset % kBlockSize, 0u);  // always fine-grained routed
    EXPECT_LE(r.offset + r.len, 4 * kMiB);
    EXPECT_EQ(r.len, 1024u);
  }
}

TEST(SizeSweep, SlotOffsetsAreStableAcrossSizes) {
  // The access population must be identical for every request size so the
  // Fig. 8 sweep varies only the size.
  SizeSweepWorkload a(4 * kMiB, 8), b(4 * kMiB, 4096);
  for (std::uint64_t s = 0; s < 4 * kMiB / kBlockSize - 1; ++s)
    EXPECT_EQ(a.slot_offset(s), b.slot_offset(s));
}

TEST(SizeSweep, MaxSizeReadStaysInFile) {
  SizeSweepWorkload w(4 * kMiB, 4096);
  for (int i = 0; i < 5000; ++i) {
    const Request r = w.next();
    EXPECT_LE(r.offset + r.len, 4 * kMiB);
  }
}

// --- Recsys ---

TEST(Recsys, AllLookupsAreVectorSized) {
  RecsysConfig c;
  c.total_bytes = 32 * kMiB;
  RecsysWorkload w(c);
  for (int i = 0; i < 5000; ++i) {
    const Request r = w.next();
    EXPECT_EQ(r.len, 128u);
    EXPECT_EQ(r.offset % 128, 0u);
    EXPECT_LE(r.offset + r.len, w.files()[0].size);
    EXPECT_FALSE(r.is_write);
  }
}

TEST(Recsys, AccessesAreSkewed) {
  RecsysConfig c;
  c.total_bytes = 32 * kMiB;
  RecsysWorkload w(c);
  std::map<std::uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[w.next().offset];
  // Top 1% of distinct vectors should carry a large share of accesses.
  std::vector<int> freq;
  for (auto& [off, cnt] : counts) freq.push_back(cnt);
  std::sort(freq.rbegin(), freq.rend());
  std::uint64_t head = 0, total = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    total += static_cast<std::uint64_t>(freq[i]);
    if (i < freq.size() / 100 + 1) head += static_cast<std::uint64_t>(freq[i]);
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.15);
}

TEST(Recsys, HotVectorsAreScattered) {
  RecsysConfig c;
  c.total_bytes = 32 * kMiB;
  RecsysWorkload w(c);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[w.next().offset];
  // The 20 hottest offsets must not all sit in the first table.
  std::vector<std::pair<int, std::uint64_t>> by_freq;
  for (auto& [off, cnt] : counts) by_freq.emplace_back(cnt, off);
  std::sort(by_freq.rbegin(), by_freq.rend());
  const std::uint64_t file_size = w.files()[0].size;
  int in_first_quarter = 0;
  for (int i = 0; i < 20; ++i)
    in_first_quarter += (by_freq[static_cast<size_t>(i)].second < file_size / 4);
  EXPECT_LT(in_first_quarter, 15);
}

// --- Search ---

TEST(Search, RequestsStayInTermSlots) {
  SearchConfig c;
  c.terms = 1 << 14;
  SearchWorkload w(c);
  for (int i = 0; i < 20000; ++i) {
    const Request r = w.next();
    EXPECT_EQ(r.offset % c.slot_bytes, 0u);  // slot-aligned
    EXPECT_GE(r.len, c.min_posting);
    EXPECT_LE(r.len, c.slot_bytes);
    EXPECT_LE(r.offset + r.len, w.files()[0].size);
    EXPECT_FALSE(r.is_write);
  }
}

TEST(Search, PostingLengthStablePerTerm) {
  SearchConfig c;
  c.terms = 1 << 14;
  SearchWorkload w(c);
  for (std::uint64_t term = 0; term < 100; ++term)
    EXPECT_EQ(w.posting_bytes(term), w.posting_bytes(term));
}

TEST(Search, PostingLengthsAreLogSpread) {
  SearchConfig c;
  c.terms = 1 << 16;
  SearchWorkload w(c);
  int small = 0, large = 0;
  for (std::uint64_t term = 0; term < 10000; ++term) {
    const std::uint32_t len = w.posting_bytes(term);
    small += len < 64;
    large += len > 256;
  }
  EXPECT_GT(small, 1000);  // both ends of the range are populated
  EXPECT_GT(large, 1000);
}

TEST(Search, TermPopularityIsSkewed) {
  SearchConfig c;
  c.terms = 1 << 16;
  SearchWorkload w(c);
  std::map<std::uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[w.next().offset];
  std::vector<int> freq;
  for (auto& [off, cnt] : counts) freq.push_back(cnt);
  std::sort(freq.rbegin(), freq.rend());
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < freq.size() / 100 + 1; ++i)
    head += static_cast<std::uint64_t>(freq[i]);
  EXPECT_GT(static_cast<double>(head) / n, 0.1);
}

// --- LinkBench ---

TEST(LinkBench, RequestsRespectFileBounds) {
  LinkBenchConfig c;
  c.node_count = 1 << 16;
  LinkBenchWorkload w(c);
  for (int i = 0; i < 20000; ++i) {
    const Request r = w.next();
    ASSERT_LT(r.file_index, 2u);
    ASSERT_LE(r.offset + r.len, w.files()[r.file_index].size)
        << "op=" << static_cast<int>(w.last_op());
    ASSERT_GT(r.len, 0u);
  }
}

TEST(LinkBench, OpMixRoughlyMatchesDefaults) {
  LinkBenchConfig c;
  c.node_count = 1 << 16;
  LinkBenchWorkload w(c);
  std::map<GraphOp, int> ops;
  const int n = 100000;
  int writes = 0;
  for (int i = 0; i < n; ++i) {
    const Request r = w.next();
    ++ops[w.last_op()];
    writes += r.is_write;
  }
  // GET_LINKS_LIST dominates at ~52% of the reduced mix.
  EXPECT_NEAR(static_cast<double>(ops[GraphOp::kGetLinkList]) / n, 0.525,
              0.03);
  // Writes land near the LinkBench default ~28% (of the reduced mix).
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.285, 0.03);
}

TEST(LinkBench, ReadOnlyModeHasNoWrites) {
  LinkBenchConfig c;
  c.node_count = 1 << 16;
  c.read_only = true;
  LinkBenchWorkload w(c);
  for (int i = 0; i < 20000; ++i) EXPECT_FALSE(w.next().is_write);
}

TEST(LinkBench, NodeReadsAreSmall) {
  LinkBenchConfig c;
  c.node_count = 1 << 16;
  LinkBenchWorkload w(c);
  for (int i = 0; i < 20000; ++i) {
    const Request r = w.next();
    if (w.last_op() == GraphOp::kGetNode) {
      EXPECT_EQ(r.len, 88u);
      EXPECT_EQ(r.file_index, 0u);
    }
  }
}

TEST(LinkBench, DegreeIsStablePerNode) {
  LinkBenchConfig c;
  c.node_count = 1 << 12;
  LinkBenchWorkload w(c);
  // Collect GET_LINKS_LIST lengths per node segment; each node must always
  // produce the same list length.
  std::map<std::uint64_t, std::uint32_t> degree;
  for (int i = 0; i < 50000; ++i) {
    const Request r = w.next();
    if (w.last_op() != GraphOp::kGetLinkList) continue;
    auto [it, fresh] = degree.emplace(r.offset, r.len);
    if (!fresh) EXPECT_EQ(it->second, r.len);
  }
}

}  // namespace
}  // namespace pipette
