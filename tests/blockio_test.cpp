// Tests for the generic block layer: request merging and closed-loop
// dispatch to the device.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "blockio/block_layer.h"
#include "common/rng.h"

namespace pipette {
namespace {

TEST(Merge, EmptyAndSingle) {
  EXPECT_TRUE(BlockLayer::merge({}).empty());
  const auto runs = BlockLayer::merge({7});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(Lba{7}, 1u));
}

TEST(Merge, ContiguousRunsCoalesce) {
  const auto runs = BlockLayer::merge({5, 3, 4, 10, 11, 20});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_pair(Lba{3}, 3u));
  EXPECT_EQ(runs[1], std::make_pair(Lba{10}, 2u));
  EXPECT_EQ(runs[2], std::make_pair(Lba{20}, 1u));
}

TEST(Merge, DuplicatesCollapse) {
  const auto runs = BlockLayer::merge({4, 4, 5, 5, 6});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(Lba{4}, 3u));
}

ControllerConfig small_config() {
  ControllerConfig c;
  c.geometry.channels = 4;
  c.geometry.ways_per_channel = 2;
  c.geometry.planes_per_die = 1;
  c.geometry.blocks_per_plane = 16;
  c.geometry.pages_per_block = 64;
  c.lba_count = 4096;
  return c;
}

struct BlockLayerFixture : ::testing::Test {
  Simulator sim;
  SsdController ctrl{sim, small_config()};
  BlockLayer layer{sim, ctrl, HostTiming{}};
};

TEST_F(BlockLayerFixture, ReadPagesDeliversCorrectBytes) {
  std::map<Lba, std::vector<std::uint8_t>> got;
  layer.read_pages({10, 11, 42}, [&](Lba lba, const std::uint8_t* data) {
    got[lba].assign(data, data + kBlockSize);
  });
  ASSERT_EQ(got.size(), 3u);
  for (const auto& [lba, bytes] : got) {
    for (std::uint32_t i = 0; i < kBlockSize; ++i)
      ASSERT_EQ(bytes[i], ctrl.content().pristine_byte(lba, i)) << lba;
  }
}

TEST_F(BlockLayerFixture, MergingReducesCommandCount) {
  layer.read_pages({1, 2, 3, 4}, [](Lba, const std::uint8_t*) {});
  EXPECT_EQ(layer.stats().page_requests, 4u);
  EXPECT_EQ(layer.stats().merged_requests, 1u);
  EXPECT_EQ(ctrl.stats().commands, 1u);
}

TEST_F(BlockLayerFixture, DiscontiguousPagesIssueSeparateCommands) {
  layer.read_pages({1, 100, 200}, [](Lba, const std::uint8_t*) {});
  EXPECT_EQ(layer.stats().merged_requests, 3u);
  EXPECT_EQ(ctrl.stats().commands, 3u);
}

TEST_F(BlockLayerFixture, ClockAdvancesAcrossRead) {
  const SimTime t0 = sim.now();
  layer.read_pages({5}, [](Lba, const std::uint8_t*) {});
  EXPECT_GT(sim.now(), t0);
}

TEST_F(BlockLayerFixture, ConcurrentRunsOverlapOnDevice) {
  // Two discontiguous single-page runs on different channels should take
  // far less than twice a single run.
  const SimTime t0 = sim.now();
  layer.read_pages({0}, [](Lba, const std::uint8_t*) {});
  const SimDuration one = sim.now() - t0;
  const SimTime t1 = sim.now();
  layer.read_pages({101, 202}, [](Lba, const std::uint8_t*) {});
  const SimDuration two = sim.now() - t1;
  EXPECT_LT(two, one + one / 2);
}

TEST_F(BlockLayerFixture, WritePagePersists) {
  std::vector<std::uint8_t> data(kBlockSize, 0x77);
  layer.write_page(9, data.data());
  std::vector<std::uint8_t> out(16);
  ctrl.content().read(9, 0, {out.data(), out.size()});
  for (auto b : out) EXPECT_EQ(b, 0x77);
}

TEST(MergeProperty, CoversExactlyTheInputSet) {
  // Random LBA multisets: the merged runs must cover exactly the distinct
  // input LBAs, without overlap, in ascending order.
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Lba> lbas;
    const std::size_t n = 1 + rng.next_below(64);
    for (std::size_t i = 0; i < n; ++i) lbas.push_back(rng.next_below(96));
    std::set<Lba> expected(lbas.begin(), lbas.end());

    std::set<Lba> covered;
    Lba prev_end = 0;
    bool first = true;
    for (const auto& [start, count] : BlockLayer::merge(lbas)) {
      ASSERT_GT(count, 0u);
      if (!first) ASSERT_GT(start, prev_end);  // ascending, non-adjacent
      first = false;
      prev_end = start + count - 1;
      for (std::uint32_t i = 0; i < count; ++i) {
        ASSERT_TRUE(covered.insert(start + i).second);
      }
    }
    ASSERT_EQ(covered, expected) << "trial " << trial;
  }
}

TEST_F(BlockLayerFixture, AsyncReadDeliversLater) {
  bool delivered = false;
  layer.read_pages_async({7}, [&](Lba, const std::uint8_t*) {
    delivered = true;
  });
  EXPECT_FALSE(delivered);  // returns before the device completes
  sim.run_all();
  EXPECT_TRUE(delivered);
}

TEST_F(BlockLayerFixture, AsyncReadDataIsCorrect) {
  std::vector<std::uint8_t> got;
  layer.read_pages_async({11}, [&](Lba, const std::uint8_t* data) {
    got.assign(data, data + kBlockSize);
  });
  sim.run_all();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBlockSize));
  for (std::uint32_t i = 0; i < kBlockSize; ++i)
    ASSERT_EQ(got[i], ctrl.content().pristine_byte(11, i));
}

TEST_F(BlockLayerFixture, TrafficCountsWholePages) {
  layer.read_pages({1, 2}, [](Lba, const std::uint8_t*) {});
  EXPECT_EQ(ctrl.stats().bytes_to_host, 2u * kBlockSize);
}

}  // namespace
}  // namespace pipette
