// Unit and property tests for src/common: RNG, zipf sampling, statistics,
// pattern bytes, LRU map, and the table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"
#include "common/inline_function.h"
#include "common/json.h"
#include "common/lru.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/zipf.h"

namespace pipette {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.05);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Mix64, IsStatelessAndStable) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

// --- Zipf ---

// The empirical head mass of zipf(alpha) must match the analytic mass.
class ZipfShape : public ::testing::TestWithParam<double> {};

TEST_P(ZipfShape, HeadMassMatchesAnalytic) {
  const double alpha = GetParam();
  const std::uint64_t n = 10000;
  ZipfGenerator z(n, alpha);
  Rng rng(17);
  const int draws = 200000;
  std::uint64_t head = 0;  // draws landing in the top 100 ranks
  for (int i = 0; i < draws; ++i) head += (z.sample(rng) < 100);

  double mass_head = 0, mass_all = 0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double p = std::pow(static_cast<double>(k), -alpha);
    mass_all += p;
    if (k <= 100) mass_head += p;
  }
  const double expected = mass_head / mass_all;
  EXPECT_NEAR(static_cast<double>(head) / draws, expected, 0.015)
      << "alpha=" << alpha;
}

TEST_P(ZipfShape, SamplesInRange) {
  const double alpha = GetParam();
  ZipfGenerator z(1000, alpha);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(z.sample(rng), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfShape,
                         ::testing::Values(0.5, 0.8, 0.99, 1.0, 1.2));

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfGenerator z(1000, 0.8);
  Rng rng(23);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  // Rank 0 strictly dominates rank 100.
  EXPECT_GT(counts[0], counts.count(100) ? counts[100] * 2 : 0);
}

TEST(Zipf, SingleElementPopulation) {
  ZipfGenerator z(1, 0.8);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ScatteredZipf, PermutationIsBijective) {
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1000ULL, 4097ULL}) {
    ScatteredZipf z(n, 0.8, 99);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto p = z.permute(i);
      EXPECT_LT(p, n);
      EXPECT_TRUE(seen.insert(p).second) << "collision at rank " << i;
    }
  }
}

TEST(ScatteredZipf, HotKeysAreScattered) {
  // The 10 hottest ranks should not map to 10 adjacent keys.
  ScatteredZipf z(100000, 0.8, 7);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t r = 0; r < 10; ++r) keys.push_back(z.permute(r));
  std::sort(keys.begin(), keys.end());
  EXPECT_GT(keys.back() - keys.front(), 1000u);
}

// --- Stats ---

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RatioCounter, Basics) {
  RatioCounter r;
  EXPECT_EQ(r.ratio(), 0.0);
  r.record(true);
  r.record(false);
  r.record(true);
  r.record(true);
  EXPECT_EQ(r.hits(), 3u);
  EXPECT_EQ(r.misses(), 1u);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.75);
  r.reset();
  EXPECT_EQ(r.accesses(), 0u);
}

TEST(LatencyHistogram, ExactSmallValues) {
  LatencyHistogram h;
  h.record(3);
  h.record(3);
  h.record(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_NEAR(h.mean_ns(), 11.0 / 3.0, 1e-9);
  EXPECT_EQ(h.percentile(50), 3u);
}

TEST(LatencyHistogram, PercentileWithinBucketError) {
  LatencyHistogram h;
  for (SimDuration v = 1; v <= 100000; ++v) h.record(v);
  // Log-bucketed: <= ~6.25% relative value error at this resolution.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99000.0, 99000.0 * 0.07);
  EXPECT_EQ(h.max(), 100000u);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(10);
  b.record(1000);
  b.record(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 2000u);
}

TEST(LatencyHistogram, ZeroAndHugeValues) {
  LatencyHistogram h;
  h.record(0);
  h.record(3600ull * kSec);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_GE(h.percentile(100), 3000ull * kSec);
}

TEST(LatencyHistogram, SubtractionRemovesAPrefixSnapshot) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  const LatencyHistogram snapshot = h;  // warmup boundary
  for (int i = 0; i < 10; ++i) h.record(100'000);
  LatencyHistogram measured = h.diff(snapshot);
  EXPECT_EQ(measured.count(), 10u);
  // total_ns subtraction is exact, so the mean is exactly the later values'.
  EXPECT_DOUBLE_EQ(measured.mean_ns(), 100'000.0);
  // Percentiles describe only the post-snapshot values (within bucket
  // error); the full histogram's p50 would sit at the 100ns warmup spike.
  EXPECT_NEAR(static_cast<double>(measured.percentile(50)), 100'000.0,
              100'000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(measured.percentile(1)), 100'000.0,
              100'000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 100.0, 100.0 * 0.07);
  // min/max are representative bucket values after subtraction.
  EXPECT_NEAR(static_cast<double>(measured.min()), 100'000.0,
              100'000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(measured.max()), 100'000.0,
              100'000.0 * 0.07);
}

TEST(LatencyHistogram, SubtractionInPlaceAndEdgeCases) {
  LatencyHistogram h;
  h.record(5);
  h.record(7);
  const LatencyHistogram all = h;
  h -= LatencyHistogram{};  // subtracting empty is a no-op
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 5u);  // sub-bucket range: values exact
  EXPECT_EQ(h.max(), 7u);
  h -= all;  // subtracting everything empties it
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile(99), 0u);
}

// --- ThreadPool ---

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&ran] { ++ran; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&ran] { ++ran; });
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives a throwing task.
  auto after = pool.submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(ThreadPool, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

// --- Pattern bytes ---

TEST(PatternBytes, DeterministicAndKeyed) {
  EXPECT_EQ(pattern_byte(1, 0), pattern_byte(1, 0));
  int diff = 0;
  for (int i = 0; i < 64; ++i)
    diff += pattern_byte(1, i) != pattern_byte(2, i);
  EXPECT_GT(diff, 48);  // different keys give mostly different bytes
}

TEST(PatternBytes, FillMatchesByteAtEveryAlignment) {
  for (std::uint64_t start : {0ULL, 1ULL, 3ULL, 7ULL, 8ULL, 13ULL}) {
    std::vector<std::uint8_t> buf(67);
    fill_pattern({buf.data(), buf.size()}, 9, start);
    for (std::size_t i = 0; i < buf.size(); ++i)
      ASSERT_EQ(buf[i], pattern_byte(9, start + i)) << start << "+" << i;
  }
}

TEST(PatternBytes, CheckPatternDetectsCorruption) {
  std::vector<std::uint8_t> buf(64);
  fill_pattern({buf.data(), buf.size()}, 4, 100);
  EXPECT_TRUE(check_pattern({buf.data(), buf.size()}, 4, 100));
  buf[17] ^= 0xff;
  EXPECT_FALSE(check_pattern({buf.data(), buf.size()}, 4, 100));
}

// --- LruMap ---

TEST(LruMap, InsertFindEvictOrder) {
  LruMap<int, int> m(2);
  EXPECT_FALSE(m.insert(1, 10).has_value());
  EXPECT_FALSE(m.insert(2, 20).has_value());
  ASSERT_NE(m.find(1), nullptr);  // promotes 1; LRU is now 2
  auto evicted = m.insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
  EXPECT_EQ(evicted->second, 20);
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_NE(m.find(1), nullptr);
}

TEST(LruMap, InsertExistingOverwritesWithoutEviction) {
  LruMap<int, int> m(2);
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_FALSE(m.insert(1, 11).has_value());
  EXPECT_EQ(*m.find(1), 11);
  EXPECT_EQ(m.size(), 2u);
}

TEST(LruMap, PeekDoesNotPromote) {
  LruMap<int, int> m(2);
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_EQ(*m.peek(1), 10);  // no promotion: 1 stays LRU
  auto evicted = m.insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
}

TEST(LruMap, EraseAndLruAccessor) {
  LruMap<int, int> m(3);
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_EQ(m.lru()->first, 1);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.lru()->first, 2);
}

TEST(LruMap, SetCapacityEvictsInOrder) {
  LruMap<int, int> m(4);
  for (int i = 1; i <= 4; ++i) m.insert(i, i);
  std::vector<int> evicted;
  m.set_capacity(2, [&](int k, int) { evicted.push_back(k); });
  EXPECT_EQ(evicted, (std::vector<int>{1, 2}));
  EXPECT_EQ(m.size(), 2u);
}

// --- Table ---

TEST(Table, TextAlignmentAndCsv) {
  Table t({"Workload", "A", "B"});
  t.add_row({"Block I/O", "1.0", "1.0"});
  t.add_row({"Pipette", Table::fmt(31.25, 1), Table::fmt_times(1.5)});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("Workload"), std::string::npos);
  EXPECT_NE(text.find("31.2"), std::string::npos);
  EXPECT_NE(text.find("1.50x"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("Pipette,31.2,1.50x"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"name", "value"});
  t.add_row({"a,b", "say \"hi\""});
  EXPECT_NE(t.to_csv().find("\"a,b\",\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(LatencyHistogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  Rng rng(21);
  for (int i = 0; i < 50000; ++i) h.record(rng.next_below(1u << 20));
  SimDuration prev = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const SimDuration v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_LE(h.percentile(100), h.max());
}

TEST(LatencyHistogram, SingleValueAllPercentilesEqual) {
  LatencyHistogram h;
  h.record(12345);
  const SimDuration p50 = h.percentile(50);
  EXPECT_EQ(h.percentile(1), p50);
  EXPECT_EQ(h.percentile(99), p50);
  // Log-bucketed: within one sub-bucket (~6.25%) of the true value.
  EXPECT_NEAR(static_cast<double>(p50), 12345.0, 12345.0 * 0.07);
}

TEST(Zipf, LowerAlphaIsFlatter) {
  const std::uint64_t n = 100000;
  Rng r1(5), r2(5);
  ZipfGenerator flat(n, 0.5), steep(n, 1.2);
  std::uint64_t flat_head = 0, steep_head = 0;
  for (int i = 0; i < 50000; ++i) {
    flat_head += flat.sample(r1) < 100;
    steep_head += steep.sample(r2) < 100;
  }
  EXPECT_LT(flat_head * 2, steep_head);
}

TEST(BenchArgs, ParsesAllFlags) {
  const char* argv[] = {"prog",   "--requests", "12345",  "--seed", "9",
                        "--quick", "--csv",     "/tmp/x.csv", "--jobs", "8",
                        "--json", "/tmp/x.json"};
  const BenchArgs args =
      BenchArgs::parse(12, const_cast<char**>(argv));
  EXPECT_EQ(args.requests, 12345u);
  EXPECT_EQ(args.seed, 9u);
  EXPECT_TRUE(args.quick);
  EXPECT_EQ(args.csv_path, "/tmp/x.csv");
  EXPECT_EQ(args.jobs, 8u);
  EXPECT_EQ(args.json_path, "/tmp/x.json");
}

TEST(BenchArgs, DefaultsWhenBare) {
  const char* argv[] = {"prog"};
  const BenchArgs args = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_EQ(args.requests, 0u);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_FALSE(args.quick);
  EXPECT_TRUE(args.csv_path.empty());
  EXPECT_TRUE(args.json_path.empty());
  EXPECT_EQ(args.jobs, 0u);  // 0 = hardware concurrency
}

// --- InlineFunction ---

TEST(InlineFunction, InvokesWithArgumentsAndResult) {
  InlineFunction<int(int, int)> f = [](int a, int b) { return a + b; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(2, 3), 5);
}

TEST(InlineFunction, DefaultAndNullptrAreEmpty) {
  InlineFunction<void()> a;
  InlineFunction<void()> b = nullptr;
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(InlineFunction, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  InlineFunction<void()> f = [&calls] { ++calls; };
  InlineFunction<void()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(calls, 1);
  f = std::move(g);  // move-assignment works both ways
  EXPECT_FALSE(static_cast<bool>(g));
  f();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, CapturesUpToLimitStayInline) {
  struct Small {
    std::uint64_t a[6];  // exactly 48 bytes
    void operator()() const {}
  };
  struct Big {
    std::uint64_t a[7];  // 56 bytes: over the limit
    void operator()() const {}
  };
  EXPECT_TRUE((InlineFunction<void()>::stores_inline<Small>()));
  EXPECT_FALSE((InlineFunction<void()>::stores_inline<Big>()));

  const std::uint64_t before = inline_function_heap_allocations();
  InlineFunction<void()> small = Small{};
  EXPECT_EQ(inline_function_heap_allocations() - before, 0u);
  InlineFunction<void()> big = Big{};
  EXPECT_EQ(inline_function_heap_allocations() - before, 1u);
  small();
  big();
}

TEST(InlineFunction, HeapTargetSurvivesMovesWithoutReallocating) {
  struct Big {
    std::uint64_t payload[16];
    int* out;
    void operator()() const { *out = static_cast<int>(payload[15]); }
  };
  int result = 0;
  Big b{};
  b.payload[15] = 77;
  b.out = &result;
  const std::uint64_t before = inline_function_heap_allocations();
  InlineFunction<void()> f = b;
  InlineFunction<void()> g = std::move(f);
  InlineFunction<void()> h;
  h = std::move(g);
  EXPECT_EQ(inline_function_heap_allocations() - before, 1u);
  h();
  EXPECT_EQ(result, 77);
}

TEST(InlineFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<int()> f = [token] { return *token; };
    token.reset();
    EXPECT_FALSE(watch.expired());  // the closure keeps it alive
    EXPECT_EQ(f(), 5);
  }
  EXPECT_TRUE(watch.expired());  // destroying f released the capture
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_text().find("only"), std::string::npos);
}

TEST(OnlineStats, VarianceUndefinedBelowTwoSamples) {
  OnlineStats s;
  EXPECT_EQ(s.variance(), 0.0);  // n = 0
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);  // n = 1: sample variance needs n >= 2
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);  // identical samples: defined, and zero
}

TEST(LatencyHistogram, DiffOfIdenticalSnapshotsIsEmpty) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.record(rng.next_below(1u << 16));
  const LatencyHistogram d = h.diff(h);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.mean_ns(), 0.0);
  EXPECT_EQ(d.percentile(99), 0);
  EXPECT_EQ(d, LatencyHistogram{});
}

TEST(LatencyHistogram, MergeOfEmptyIsIdentity) {
  LatencyHistogram h, empty;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) h.record(rng.next_below(1u << 16));
  const LatencyHistogram before = h;
  h.merge(empty);
  EXPECT_EQ(h, before);
  empty.merge(before);
  EXPECT_EQ(empty, before);
}

TEST(LatencyHistogram, PercentileMonotonicityProperty) {
  // Property: for random samples and random percentile pairs p <= q,
  // percentile(p) <= percentile(q); and every readout lies in [min, max].
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    LatencyHistogram h;
    const int n = 1 + static_cast<int>(rng.next_below(2000));
    for (int i = 0; i < n; ++i) h.record(rng.next_below(1ull << 40));
    for (int trial = 0; trial < 50; ++trial) {
      double p = rng.next_double() * 100.0;
      double q = rng.next_double() * 100.0;
      if (p > q) std::swap(p, q);
      EXPECT_LE(h.percentile(p), h.percentile(q));
    }
    // Extremes are representative bucket midpoints: within the log-bucket
    // value error (<7%) of the true recorded extremes.
    EXPECT_GE(static_cast<double>(h.percentile(0)),
              static_cast<double>(h.min()) * 0.93 - 1.0);
    EXPECT_LE(static_cast<double>(h.percentile(100)),
              static_cast<double>(h.max()) * 1.07 + 1.0);
  }
}

TEST(LatencyHistogram, SummaryIncludesCountAndTailPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000 * (i + 1));
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=100"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
  EXPECT_NE(s.find("p999="), std::string::npos) << s;
  EXPECT_NE(s.find("max="), std::string::npos) << s;
}

TEST(JsonWriter, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "pipette");
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.5, 3);
  w.kv("on", true);
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.begin_object();
  w.kv("nested", -7);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"pipette\",\"count\":42,\"ratio\":0.500,\"on\":true,"
            "\"list\":[1,2,{\"nested\":-7}]}");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t\x01"),
            "a\\\"b\\\\c\\n\\t\\u0001");
  JsonWriter w;
  w.begin_object();
  w.kv("k\"ey", "va\\lue\n");
  w.end_object();
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriter, NonFiniteDoublesRenderAsZero) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""), 3);
  w.value(std::numeric_limits<double>::infinity(), 3);
  w.end_array();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_EQ(w.str().find("nan"), std::string::npos);
  EXPECT_EQ(w.str().find("inf"), std::string::npos);
}

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("  {\"a\": [1, 2.5, -3e2, true, false, null]} "));
  EXPECT_TRUE(json_valid("\"just a string\""));
  EXPECT_TRUE(json_valid("-0.5"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":1} trailing"));
  EXPECT_FALSE(json_valid("{'single': 1}"));
  EXPECT_FALSE(json_valid("{\"a\":01}"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("nul"));
}

}  // namespace
}  // namespace pipette
