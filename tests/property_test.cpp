// Property-based tests: randomised operation sequences checked against
// reference models.
//
//  * Consistency fuzz — every path kind serves a random interleaving of
//    reads and writes; every read's bytes are compared against a shadow
//    copy of the file. This exercises page-cache writeback, FGRC write
//    invalidation, TempBuf staging, CMB staging and the block route in
//    arbitrary orders.
//  * Slab-store stress — random allocate/free/evict/touch/migrate
//    sequences under several geometries; checks address disjointness,
//    bookkeeping, and data survival across migration.
//  * Path-equivalence sweep — all five systems return identical bytes for
//    every request size.
//  * Fleet partitioners — hash and range cover every shard, map each key to
//    exactly one shard, and (range) respect key ordering.
//  * Splittable RNG — sub-streams are deterministic and pairwise disjoint
//    over a 10k-draw window.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "fleet/partition.h"
#include "sim/machine.h"

namespace pipette {
namespace {

MachineConfig fuzz_machine(PathKind kind) {
  MachineConfig c;
  c.kind = kind;
  c.ssd.geometry.channels = 4;
  c.ssd.geometry.ways_per_channel = 2;
  c.ssd.geometry.planes_per_die = 1;
  c.ssd.geometry.blocks_per_plane = 32;
  c.ssd.geometry.pages_per_block = 64;
  c.ssd.read_buffer_bytes = 1 * kMiB;  // small: heavy replacement
  c.ssd.hmb.info_slots = 128;
  c.ssd.hmb.tempbuf_bytes = 8 * kKiB;
  c.ssd.hmb.data_bytes = 512 * kKiB;   // small FGRC: pressure paths run
  c.page_cache_bytes = 256 * kKiB;     // small page cache: evictions
  c.pipette.fgrc.slab.slab_size = 32 * kKiB;
  c.pipette.fgrc.slab.max_external_bytes = 128 * kKiB;
  c.pipette.fgrc.adaptive.initial_threshold = 1;
  c.pipette.fgrc.adaptive.enabled = true;
  c.pipette.fgrc.adaptive.adjust_period = 256;
  c.pipette.fgrc.reassign.enabled = true;
  c.pipette.fgrc.reassign.epoch_accesses = 512;
  return c;
}

class ConsistencyFuzz : public ::testing::TestWithParam<PathKind> {};

TEST_P(ConsistencyFuzz, RandomReadsAndWritesMatchShadowModel) {
  constexpr std::uint64_t kFileSize = 2 * kMiB;
  Machine m(fuzz_machine(GetParam()), {{{"fuzz.bin", kFileSize}}});
  const int fd = m.vfs().open("fuzz.bin", m.open_flags(true));
  const FileId file = m.vfs().file_of(fd);

  // Shadow model: the file's logical bytes.
  std::vector<std::uint8_t> shadow(kFileSize);
  {
    std::vector<LbaRange> ranges;
    m.fs().extract_lbas(file, 0, kFileSize, ranges);
    std::uint64_t pos = 0;
    for (const LbaRange& r : ranges) {
      m.ssd().content().read(r.lba, r.offset,
                             {shadow.data() + pos, r.len});
      pos += r.len;
    }
  }

  Rng rng(0xF0 + static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint8_t> buf(16 * 1024);
  for (int op = 0; op < 3000; ++op) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        1 + rng.next_below(op % 7 == 0 ? 12288 : 512));
    const std::uint64_t offset = rng.next_below(kFileSize - len + 1);
    if (rng.next_bool(0.25)) {
      // Write a recognisable pattern derived from (op, offset).
      for (std::uint32_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(mix64(
            (static_cast<std::uint64_t>(op) << 32) ^ (offset + i)));
      m.vfs().pwrite(fd, offset, {buf.data(), len});
      std::memcpy(shadow.data() + offset, buf.data(), len);
    } else {
      m.vfs().pread(fd, offset, {buf.data(), len});
      for (std::uint32_t i = 0; i < len; ++i)
        ASSERT_EQ(buf[i], shadow[offset + i])
            << to_string(GetParam()) << " op=" << op << " offset=" << offset
            << "+" << i << " len=" << len;
    }
  }
}

// The same fuzz with the fine-grained write extension enabled: exercises
// device-side RMW, in-place FGRC updates, clean-page invalidation and the
// dirty-page fallback interleaved with every read route.
TEST(ConsistencyFuzzFineWrites, RandomOpsMatchShadowModel) {
  constexpr std::uint64_t kFileSize = 2 * kMiB;
  MachineConfig config = fuzz_machine(PathKind::kPipette);
  config.pipette.fine_writes = true;
  Machine m(config, {{{"fuzz.bin", kFileSize}}});
  const int fd = m.vfs().open("fuzz.bin", m.open_flags(true));
  const FileId file = m.vfs().file_of(fd);

  std::vector<std::uint8_t> shadow(kFileSize);
  {
    std::vector<LbaRange> ranges;
    m.fs().extract_lbas(file, 0, kFileSize, ranges);
    std::uint64_t pos = 0;
    for (const LbaRange& r : ranges) {
      m.ssd().content().read(r.lba, r.offset, {shadow.data() + pos, r.len});
      pos += r.len;
    }
  }

  Rng rng(0xBEEF);
  std::vector<std::uint8_t> buf(16 * 1024);
  for (int op = 0; op < 4000; ++op) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        1 + rng.next_below(op % 9 == 0 ? 8192 : 400));
    const std::uint64_t offset = rng.next_below(kFileSize - len + 1);
    if (rng.next_bool(0.4)) {
      for (std::uint32_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(mix64(
            (static_cast<std::uint64_t>(op) << 32) ^ (offset + i)));
      m.vfs().pwrite(fd, offset, {buf.data(), len});
      std::memcpy(shadow.data() + offset, buf.data(), len);
    } else {
      m.vfs().pread(fd, offset, {buf.data(), len});
      for (std::uint32_t i = 0; i < len; ++i)
        ASSERT_EQ(buf[i], shadow[offset + i])
            << "op=" << op << " offset=" << offset << "+" << i;
    }
  }
  // Both write routes must actually have been exercised.
  EXPECT_GT(m.pipette_path()->pipette_stats().fine_writes, 100u);
  EXPECT_GT(m.pipette_path()->pipette_stats().block_writes, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, ConsistencyFuzz,
    ::testing::Values(PathKind::kBlockIo, PathKind::kTwoBMmio,
                      PathKind::kTwoBDma, PathKind::kPipetteNoCache,
                      PathKind::kPipette),
    [](const ::testing::TestParamInfo<PathKind>& info) {
      switch (info.param) {
        case PathKind::kBlockIo:
          return "BlockIo";
        case PathKind::kTwoBMmio:
          return "TwoBMmio";
        case PathKind::kTwoBDma:
          return "TwoBDma";
        case PathKind::kPipetteNoCache:
          return "PipetteNoCache";
        case PathKind::kPipette:
          return "Pipette";
      }
      return "Unknown";
    });

// --- Slab-store stress ---

struct SlabGeometry {
  std::uint64_t slab_size;
  std::vector<std::uint32_t> class_sizes;
};

class SlabStress : public ::testing::TestWithParam<SlabGeometry> {};

TEST_P(SlabStress, RandomOpsPreserveInvariants) {
  Hmb hmb({64, 4096, 256 * 1024});
  SlabConfig cfg;
  cfg.slab_size = GetParam().slab_size;
  cfg.class_sizes = GetParam().class_sizes;
  cfg.max_external_bytes = 128 * 1024;
  SlabStore store(hmb, cfg);

  Rng rng(77);
  std::map<std::uint64_t, ItemLoc> live;  // key.offset -> loc
  std::uint64_t next_offset = 0;
  std::uint64_t expected_live = 0;

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.5) {
      // Allocate a random size.
      const std::uint32_t len = static_cast<std::uint32_t>(
          1 + rng.next_below(cfg.class_sizes.back()));
      const FgKey key{1, next_offset, len};
      next_offset += cfg.class_sizes.back();
      if (auto loc = store.allocate(key)) {
        live.emplace(key.offset, *loc);
        ++expected_live;
        // Address sanity: resident items land inside the Data Area, on an
        // item-size boundary.
        const HmbAddr addr = store.hmb_addr(*loc);
        ASSERT_GE(addr, hmb.data_offset());
        ASSERT_LE(addr + len, hmb.data_offset() + hmb.data_area().size());
      }
    } else if (dice < 0.75 && !live.empty()) {
      // Free a pseudo-random live item.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      store.free_item(it->second);
      live.erase(it);
      --expected_live;
    } else if (dice < 0.9 && !live.empty()) {
      // Touch one.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      store.touch(it->second);
      ASSERT_EQ(store.key(it->second).offset, it->first);
    } else if (dice < 0.97) {
      // Evict from a random class; drop it from our model if it evicted.
      const std::uint32_t cls = static_cast<std::uint32_t>(
          rng.next_below(store.classes()));
      if (auto evicted = store.evict_lru(cls)) {
        ASSERT_EQ(live.erase(evicted->first.offset), 1u);
        --expected_live;
      }
    } else {
      // Migrate a slab out.
      store.externalize_slab(static_cast<std::uint32_t>(
                                 rng.next_below(store.classes())),
                             rng);
    }
    ASSERT_EQ(store.stats().live_items, expected_live);
  }

  // Every tracked item is still addressable and carries its key.
  for (const auto& [offset, loc] : live) {
    ASSERT_EQ(store.key(loc).offset, offset);
    ASSERT_EQ(store.data(loc).size(), store.key(loc).len);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SlabStress,
    ::testing::Values(SlabGeometry{8 * 1024, {64, 128, 256, 512}},
                      SlabGeometry{16 * 1024, {64, 96, 144, 216, 328, 496}},
                      SlabGeometry{32 * 1024, {128, 1024, 4096}},
                      SlabGeometry{4 * 1024, {64}}));

// --- Path-equivalence sweep over request sizes ---

class SizeEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SizeEquivalence, AllPathsAgreeAtThisSize) {
  const std::uint32_t size = GetParam();
  constexpr std::uint64_t kFileSize = 2 * kMiB;

  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<int> fds;
  for (PathKind kind : kAllPaths) {
    machines.push_back(std::make_unique<Machine>(
        fuzz_machine(kind),
        std::vector<FileSpec>{{"eq.bin", kFileSize}}));
    fds.push_back(machines.back()->vfs().open(
        "eq.bin", machines.back()->open_flags(false)));
  }
  Rng rng(size);
  std::vector<std::uint8_t> ref(size), got(size);
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t offset = rng.next_below(kFileSize - size + 1);
    machines[0]->vfs().pread(fds[0], offset, {ref.data(), size});
    for (std::size_t mi = 1; mi < machines.size(); ++mi) {
      machines[mi]->vfs().pread(fds[mi], offset, {got.data(), size});
      ASSERT_EQ(std::memcmp(ref.data(), got.data(), size), 0)
          << "size=" << size << " machine=" << mi << " offset=" << offset;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeEquivalence,
                         ::testing::Values(1u, 8u, 100u, 128u, 1000u, 4096u,
                                           5000u, 16384u));

// --- Fleet partitioner properties ---

class PartitionProperty : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(PartitionProperty, CoversAllShardsAndMapsEachKeyToExactlyOne) {
  constexpr std::uint64_t kKeyspace = 1ull << 30;
  const std::vector<FileSpec> files{{"k.bin", kKeyspace}};
  Rng rng(0xA11 + static_cast<std::uint64_t>(GetParam()));
  for (std::size_t shards = 1; shards <= 64; ++shards) {
    const Partitioner part(GetParam(), shards, files);
    // Two independently constructed partitioners must agree on every key:
    // a key belongs to exactly one shard, as a pure function of the scheme.
    const Partitioner twin(GetParam(), shards, files);
    std::vector<bool> hit(shards, false);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng.next_below(kKeyspace);
      const std::size_t s = part.shard_of_key(key);
      ASSERT_LT(s, shards);
      ASSERT_EQ(s, twin.shard_of_key(key));
      ASSERT_EQ(s, part.shard_of_key(key));  // stable across calls
      hit[s] = true;
    }
    for (std::size_t s = 0; s < shards; ++s)
      ASSERT_TRUE(hit[s]) << to_string(GetParam()) << " shards=" << shards
                          << " never routed a key to shard " << s;
  }
}

TEST_P(PartitionProperty, MultiFileKeysAreFileBasePlusOffset) {
  const std::vector<FileSpec> files{{"a", 1000}, {"b", 2000}, {"c", 500}};
  const Partitioner part(GetParam(), 4, files);
  EXPECT_EQ(part.keyspace(), 3500u);
  EXPECT_EQ(part.key_of({0, 999, 1, false}), 999u);
  EXPECT_EQ(part.key_of({1, 5, 1, false}), 1005u);
  EXPECT_EQ(part.key_of({2, 0, 1, false}), 3000u);
}

TEST(PartitionPropertyRange, ShardIsMonotoneInKey) {
  constexpr std::uint64_t kKeyspace = 1ull << 40;  // exercises 128-bit math
  const std::vector<FileSpec> files{{"k.bin", kKeyspace}};
  const Partitioner part(PartitionScheme::kRange, 7, files);
  Rng rng(99);
  std::uint64_t prev_key = 0;
  std::size_t prev_shard = part.shard_of_key(0);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = prev_key + 1 + rng.next_below(kKeyspace / 5001);
    if (key >= kKeyspace) break;
    const std::size_t s = part.shard_of_key(key);
    ASSERT_GE(s, prev_shard) << "range shards must follow key order";
    prev_key = key;
    prev_shard = s;
  }
  EXPECT_EQ(part.shard_of_key(kKeyspace - 1), 6u);
}

// --- Splittable RNG sub-streams ---

TEST(SplitRngProperty, SubStreamsAreDeterministicAndPairwiseDisjoint) {
  constexpr int kStreams = 8;
  constexpr int kWindow = 10'000;
  for (std::uint64_t parent_seed : {1ull, 42ull, 0xDEADBEEFull}) {
    Rng parent(parent_seed);
    // All draws across the parent and every sub-stream's 10k-draw window
    // must be distinct: overlapping prefixes would mean two shards replay
    // correlated workloads.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve((kStreams + 1) * kWindow);
    for (int i = 0; i < kWindow; ++i)
      ASSERT_TRUE(seen.insert(parent.next()).second);
    for (int s = 0; s < kStreams; ++s) {
      Rng child = parent.split(static_cast<std::uint64_t>(s));
      Rng replay = parent.split(static_cast<std::uint64_t>(s));
      for (int i = 0; i < kWindow; ++i) {
        const std::uint64_t draw = child.next();
        ASSERT_EQ(draw, replay.next()) << "split is not deterministic";
        ASSERT_TRUE(seen.insert(draw).second)
            << "seed " << parent_seed << " stream " << s << " draw " << i
            << " overlaps another sub-stream";
      }
    }
  }
  // split() derives children from the seed, not the draw position: a parent
  // that has already drawn yields the same children as a fresh one.
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) drained.next();
  EXPECT_EQ(Rng(42).split(3).next(), drained.split(3).next());
}

INSTANTIATE_TEST_SUITE_P(Schemes, PartitionProperty,
                         ::testing::Values(PartitionScheme::kHash,
                                           PartitionScheme::kRange),
                         [](const ::testing::TestParamInfo<PartitionScheme>&
                                info) {
                           return info.param == PartitionScheme::kHash
                                      ? "Hash"
                                      : "Range";
                         });

// --- Info Area stress ---

TEST(InfoAreaProperty, RandomPushConsumeNeverLosesRecords) {
  InfoArea ring(16);
  Rng rng(5);
  std::uint64_t pushed = 0, consumed = 0;
  for (int i = 0; i < 100000; ++i) {
    if (!ring.full() && (ring.empty() || rng.next_bool(0.5))) {
      const auto idx = ring.push({pushed, pushed, 1, 1});
      ASSERT_EQ(idx, pushed);
      ++pushed;
    } else {
      ASSERT_EQ(ring.at(consumed).dest, consumed);
      ring.consume();
      ++consumed;
    }
    ASSERT_EQ(ring.in_flight(), pushed - consumed);
  }
}

}  // namespace
}  // namespace pipette
