// Model-checking tests: core data structures driven with random operation
// sequences against simple, obviously-correct reference models.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "common/lru.h"
#include "common/rng.h"
#include "hostmem/page_cache.h"
#include "ssd/ftl.h"

namespace pipette {
namespace {

// --- LruMap vs a reference made of std::list + std::map ---

class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  int* find(int key) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == key) {
        order_.splice(order_.begin(), order_, it);
        return &order_.front().second;
      }
    }
    return nullptr;
  }

  std::optional<std::pair<int, int>> insert(int key, int value) {
    if (int* v = find(key)) {
      *v = value;
      return std::nullopt;
    }
    order_.emplace_front(key, value);
    if (order_.size() <= capacity_) return std::nullopt;
    auto victim = order_.back();
    order_.pop_back();
    return victim;
  }

  bool erase(int key) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == key) {
        order_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::size_t size() const { return order_.size(); }
  std::optional<std::pair<int, int>> lru() const {
    if (order_.empty()) return std::nullopt;
    return order_.back();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<int, int>> order_;
};

class LruModelCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruModelCheck, RandomOpsMatchReference) {
  const std::size_t capacity = GetParam();
  LruMap<int, int> dut(capacity);
  ReferenceLru ref(capacity);
  Rng rng(capacity * 7919 + 3);

  for (int op = 0; op < 30000; ++op) {
    const int key = static_cast<int>(rng.next_below(capacity * 3 + 5));
    const double dice = rng.next_double();
    if (dice < 0.45) {
      const int value = op;
      const auto ev_dut = dut.insert(key, value);
      const auto ev_ref = ref.insert(key, value);
      ASSERT_EQ(ev_dut.has_value(), ev_ref.has_value());
      if (ev_dut) {
        ASSERT_EQ(ev_dut->first, ev_ref->first);
        ASSERT_EQ(ev_dut->second, ev_ref->second);
      }
    } else if (dice < 0.8) {
      int* d = dut.find(key);
      int* r = ref.find(key);
      ASSERT_EQ(d != nullptr, r != nullptr);
      if (d) ASSERT_EQ(*d, *r);
    } else if (dice < 0.95) {
      ASSERT_EQ(dut.erase(key), ref.erase(key));
    } else {
      const auto* d = dut.lru();
      const auto r = ref.lru();
      ASSERT_EQ(d != nullptr, r.has_value());
      if (d) {
        ASSERT_EQ(d->first, r->first);
        ASSERT_EQ(d->second, r->second);
      }
    }
    ASSERT_EQ(dut.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruModelCheck,
                         ::testing::Values(1, 2, 7, 64));

// --- PageCache content model ---

TEST(PageCacheModelCheck, ResidentPagesAlwaysHoldLatestBytes) {
  PageCache cache(8 * kBlockSize);
  std::map<std::uint64_t, std::uint8_t> model;  // page -> expected marker
  std::vector<std::uint8_t> page(kBlockSize);
  Rng rng(11);

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t p = rng.next_below(32);
    const PageKey key{1, p};
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const auto marker = static_cast<std::uint8_t>(op & 0xff);
      std::fill(page.begin(), page.end(), marker);
      cache.insert(key, page.data(), rng.next_bool(0.5));
      model[p] = marker;
    } else if (dice < 0.9) {
      if (const CachedPage* cp = cache.lookup(key)) {
        ASSERT_TRUE(model.count(p));
        ASSERT_EQ(cp->data[0], model[p]) << "page " << p;
        ASSERT_EQ(cp->data[kBlockSize - 1], model[p]);
      }
    } else {
      cache.invalidate(key);
      // The model keeps the marker: a re-inserted page must match the
      // *latest* insert, which invalidate does not change.
    }
    ASSERT_LE(cache.resident_pages(), 8u);
  }
}

// --- FTL conservation invariants under GC ---

TEST(FtlModelCheck, ValidPageCountEqualsLbaCountAlways) {
  NandGeometry g;
  g.channels = 2;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;  // 512 pages
  const std::uint64_t lbas = 256;
  Ftl ftl(g, lbas);
  Rng rng(5);

  auto check_bijection = [&]() {
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
    for (Lba lba = 0; lba < lbas; ++lba) {
      const PhysPageAddr a = ftl.lookup(lba);
      ASSERT_TRUE(seen.insert({a.channel, a.way, a.page}).second)
          << "two LBAs share a physical page";
    }
  };

  for (int burst = 0; burst < 60; ++burst) {
    for (int i = 0; i < 300; ++i) ftl.update(rng.next_below(lbas));
    ftl.take_gc_moves();
    check_bijection();
  }
  EXPECT_GT(ftl.stats().gc_collections, 0u);
  EXPECT_GE(ftl.stats().write_amplification(), 1.0);
}

TEST(FtlModelCheck, GcMovesReferenceLivePagesOnly) {
  NandGeometry g;
  g.channels = 2;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  Ftl ftl(g, 256);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    ftl.update(rng.next_below(256));
    for (const GcMove& mv : ftl.take_gc_moves()) {
      // Every destination must now be the mapping of some LBA.
      bool found = false;
      for (Lba lba = 0; lba < 256 && !found; ++lba)
        found = ftl.lookup(lba) == mv.to;
      ASSERT_TRUE(found) << "GC moved a page nobody maps";
    }
  }
}

}  // namespace
}  // namespace pipette
