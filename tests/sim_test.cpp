// Tests for the sim layer: machine assembly/shaping, calibration defaults,
// the experiment runner's accounting, and CSV output plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "workload/search.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

TEST(MachineConfigDefaults, SyntheticCalibration) {
  const MachineConfig c = default_machine(PathKind::kPipette);
  // The paper's device architecture (Fig. 5).
  EXPECT_EQ(c.ssd.geometry.channels, 8u);
  EXPECT_EQ(c.ssd.geometry.ways_per_channel, 8u);
  EXPECT_EQ(c.ssd.nand_timing.cell, CellType::kTlc);
  // Equal host-cache budgets for a fair synthetic comparison.
  EXPECT_EQ(c.page_cache_bytes, c.ssd.hmb.data_bytes);
  // Block interface does not data-cache in controller DRAM.
  EXPECT_FALSE(c.ssd.block_reads_use_buffer);
}

TEST(MachineConfigDefaults, RealAppRegime) {
  const MachineConfig c = realapp_machine(PathKind::kPipette);
  // Staging region far below the ~1 GiB datasets; FGRC half the page cache.
  EXPECT_LT(c.ssd.read_buffer_bytes, 128ull * kMiB + 1);
  EXPECT_LT(c.ssd.hmb.data_bytes, c.page_cache_bytes);
}

TEST(Machine, ShapingShrinksHmbForNonPipetteKinds) {
  std::vector<FileSpec> files{{"f", 8 * kMiB}};
  Machine block(default_machine(PathKind::kBlockIo), files);
  Machine pipette(default_machine(PathKind::kPipette), files);
  EXPECT_LT(block.ssd().hmb().data_area().size(),
            pipette.ssd().hmb().data_area().size());
}

TEST(Machine, TypedAccessorsMatchKind) {
  std::vector<FileSpec> files{{"f", 8 * kMiB}};
  Machine m(default_machine(PathKind::kTwoBDma), files);
  EXPECT_EQ(m.block_path(), nullptr);
  EXPECT_EQ(m.pipette_path(), nullptr);
  ASSERT_NE(m.twob_path(), nullptr);
  EXPECT_EQ(m.twob_path()->mode(), TwoBMode::kDma);
  EXPECT_EQ(m.page_cache(), nullptr);  // 2B-SSD has no host cache
}

TEST(Machine, OpenFlagsAddFineGrainedOnlyForPipette) {
  std::vector<FileSpec> files{{"f", 8 * kMiB}};
  Machine block(default_machine(PathKind::kBlockIo), files);
  Machine pipette(default_machine(PathKind::kPipette), files);
  EXPECT_EQ(block.open_flags(false) & kOpenFineGrained, 0);
  EXPECT_EQ(pipette.open_flags(false) & kOpenFineGrained, kOpenFineGrained);
  EXPECT_EQ(pipette.open_flags(true) & kOpenWrite, kOpenWrite);
}

TEST(Machine, FilesAreCreatedWithSizes) {
  std::vector<FileSpec> files{{"a", 3 * kMiB}, {"b", kMiB, 4}};
  Machine m(default_machine(PathKind::kBlockIo), files);
  EXPECT_EQ(m.fs().inode(m.fs().find("a")).size, 3 * kMiB);
  // Fragmented creation honours the extent cap.
  EXPECT_GT(m.fs().inode(m.fs().find("b")).extents.extent_count(), 1u);
}

TEST(RunResult, DerivedRates) {
  RunResult r;
  r.requests = 1000;
  r.bytes_requested = 1000 * 1024;
  r.elapsed = 1 * kSec / 2;  // 0.5 s
  EXPECT_DOUBLE_EQ(r.requests_per_sec(), 2000.0);
  EXPECT_NEAR(r.throughput_mib_s(), 2000.0 * 1024 / (1024 * 1024), 1e-9);
}

TEST(RunExperiment, WarmupExcludedFromMetrics) {
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload w(sc);
  MachineConfig mc = default_machine(PathKind::kBlockIo);
  mc.ssd.geometry.blocks_per_plane = 64;
  const RunResult r = run_experiment(mc, w, {2000, 3000});
  EXPECT_EQ(r.requests, 2000u);
  EXPECT_EQ(r.bytes_requested, 2000u * 128u);
}

TEST(RunExperiment, SearchWorkloadRunsOnPipette) {
  SearchConfig sc;
  sc.terms = 1 << 14;
  SearchWorkload w(sc);
  MachineConfig mc = default_machine(PathKind::kPipette);
  const RunResult r = run_experiment(mc, w, {3000, 3000});
  EXPECT_GT(r.fgrc_hit_ratio, 0.0);
  EXPECT_GT(r.traffic_bytes, 0u);
  EXPECT_LT(r.traffic_bytes, r.requests * 4096);  // far below page-granular
}

TEST(RunExperiment, ReportsMeasuredReads) {
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload w(sc);
  const RunResult r =
      run_experiment(default_machine(PathKind::kBlockIo), w, {1500, 500});
  // Workload E is all reads, so the measured phase is exactly them.
  EXPECT_EQ(r.measured_reads, 1500u);
}

TEST(RunExperiment, PercentilesDescribeTheMeasuredPhaseOnly) {
  // Determinism makes the two runs replay the identical request stream, so
  // the {1000 measured, 2000 warmup} histogram is exactly a subset of the
  // {3000 measured, 0 warmup} one. With bucket-wise subtraction the warm
  // phase's percentiles cannot be dragged up by the cold-start warmup
  // requests the old full-run approximation mixed in.
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform);
  sc.file_size = 512 * 1024;  // small file: the warm phase is hit-heavy
  MachineConfig mc = default_machine(PathKind::kPipette);
  SyntheticWorkload cold(sc);
  const RunResult all = run_experiment(mc, cold, {3000, 0});
  SyntheticWorkload warm(sc);
  const RunResult measured = run_experiment(mc, warm, {1000, 2000});
  EXPECT_GT(measured.p50_latency_us, 0.0);
  EXPECT_LE(measured.p50_latency_us, all.p50_latency_us);
  EXPECT_LE(measured.p99_latency_us, all.p99_latency_us);
  // The warm phase is dominated by FGRC hits; a distribution containing the
  // all-miss cold start must sit strictly above it on average. The mean is
  // computed from exact totals (not buckets), so the inequality is strict.
  EXPECT_LT(measured.mean_latency_us, all.mean_latency_us);
}

// The tentpole guarantee: the parallel runner is bit-identical to the
// serial one on every deterministic field (host_seconds excepted — it is
// wall-clock, and RunResult::Deterministic() excludes it by construction).
TEST(RunExperimentsParallel, MatchesSerialFieldByField) {
  std::vector<ExperimentCell> cells;
  for (PathKind kind : {PathKind::kBlockIo, PathKind::kPipette}) {
    for (char wl : {'C', 'E'}) {
      SyntheticConfig sc = table1_workload(wl, Distribution::kUniform, 42);
      sc.file_size = 8 * kMiB;
      cells.push_back({default_machine(kind),
                       [sc]() -> std::unique_ptr<Workload> {
                         return std::make_unique<SyntheticWorkload>(sc);
                       },
                       RunConfig{1200, 600}});
    }
  }
  const auto serial = run_experiments_parallel(cells, /*jobs=*/1);
  const auto parallel = run_experiments_parallel(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].Deterministic(), parallel[i].Deterministic())
        << "cell " << i;
  }
}

// Golden equivalence across the two entry points: a fig6-style cell run
// directly through run_experiment must match the same MachineConfig
// round-tripped through an ExperimentCell and the parallel runner, on every
// deterministic RunResult field (host_seconds is wall-clock and excluded
// from Deterministic()). This pins the DES core's event ordering: any
// divergence in schedule order shows up as a different
// elapsed/latency/events_executed long before a human would notice it in a
// table.
TEST(RunExperimentsParallel, GoldenEquivalentToDirectRunExperiment) {
  SyntheticConfig sc = table1_workload('C', Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  const MachineConfig mc = default_machine(PathKind::kPipette);
  const RunConfig rc{2000, 1000};

  SyntheticWorkload w(sc);
  const RunResult direct = run_experiment(mc, w, rc);

  std::vector<ExperimentCell> cells;
  cells.push_back({mc,
                   [sc]() -> std::unique_ptr<Workload> {
                     return std::make_unique<SyntheticWorkload>(sc);
                   },
                   rc});
  const auto via_runner = run_experiments_parallel(cells, /*jobs=*/1);
  ASSERT_EQ(via_runner.size(), 1u);
  const RunResult& r = via_runner[0];

  EXPECT_EQ(direct.Deterministic(), r.Deterministic());
  EXPECT_GT(direct.events_executed, rc.requests);  // many events per request
}

TEST(RunExperimentsParallel, ReportsCompletionPerCell) {
  std::vector<ExperimentCell> cells;
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform);
  sc.file_size = 8 * kMiB;
  for (int i = 0; i < 3; ++i) {
    cells.push_back({default_machine(PathKind::kBlockIo),
                     [sc]() -> std::unique_ptr<Workload> {
                       return std::make_unique<SyntheticWorkload>(sc);
                     },
                     RunConfig{200, 100}});
  }
  std::vector<std::size_t> done;
  const auto results = run_experiments_parallel(
      cells, /*jobs=*/2,
      [&done](std::size_t i, const RunResult& r) {
        EXPECT_GT(r.host_seconds, 0.0);
        done.push_back(i);
      });
  EXPECT_EQ(results.size(), 3u);
  std::sort(done.begin(), done.end());
  EXPECT_EQ(done, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NormalizedThroughput, RelativeToBaseline) {
  RunResult a, b;
  a.requests = b.requests = 100;
  a.elapsed = 1 * kSec;
  b.elapsed = 2 * kSec;
  EXPECT_DOUBLE_EQ(normalized_throughput(a, a), 1.0);
  EXPECT_DOUBLE_EQ(normalized_throughput(a, b), 2.0);
}

TEST(TableCsv, WriteCsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/pipette_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x,y");
  EXPECT_EQ(row, "1,2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pipette
