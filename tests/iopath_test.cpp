// Tests for the read-path implementations: every path must return
// byte-identical data; timing and traffic must reflect each design's
// mechanisms (read-ahead, MMIO transactions, per-access DMA mapping, FGRC
// hits, write invalidation).
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace pipette {
namespace {

MachineConfig tiny_machine(PathKind kind) {
  MachineConfig c;
  c.kind = kind;
  c.ssd.geometry.channels = 4;
  c.ssd.geometry.ways_per_channel = 2;
  c.ssd.geometry.planes_per_die = 1;
  c.ssd.geometry.blocks_per_plane = 32;
  c.ssd.geometry.pages_per_block = 64;  // 16K pages = 64 MiB
  c.ssd.read_buffer_bytes = 8 * kMiB;
  c.ssd.hmb.info_slots = 256;
  c.ssd.hmb.tempbuf_bytes = 16 * kKiB;
  c.ssd.hmb.data_bytes = 4 * kMiB;
  c.page_cache_bytes = 2 * kMiB;
  c.pipette.fgrc.slab.slab_size = 64 * kKiB;
  c.pipette.fgrc.slab.max_external_bytes = 1 * kMiB;
  c.pipette.fgrc.adaptive.initial_threshold = 1;
  c.pipette.fgrc.adaptive.enabled = false;
  return c;
}

std::vector<FileSpec> one_file(std::uint64_t size = 8 * kMiB) {
  return {{"data.bin", size}};
}

/// Expected pristine content of `file` at byte `offset` on `machine`.
std::uint8_t expected_byte(Machine& m, FileId file, std::uint64_t offset) {
  std::vector<LbaRange> ranges;
  m.fs().extract_lbas(file, offset, 1, ranges);
  return m.ssd().content().pristine_byte(ranges[0].lba, ranges[0].offset);
}

class AllPaths : public ::testing::TestWithParam<PathKind> {};

TEST_P(AllPaths, ReadsReturnCorrectBytesAtManyOffsets) {
  const auto files = one_file();
  Machine m(tiny_machine(GetParam()), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  const FileId file = m.vfs().file_of(fd);

  const struct {
    std::uint64_t offset;
    std::uint32_t len;
  } cases[] = {
      {0, 1},           {0, 128},        {100, 128},     {4095, 2},
      {4000, 200},      {8192, 4096},    {12345, 1000},  {65536, 8192},
      {7 * kMiB, 4096}, {1000000, 3000}, {4096, kBlockSize},
  };
  for (const auto& c : cases) {
    std::vector<std::uint8_t> buf(c.len, 0);
    m.vfs().pread(fd, c.offset, {buf.data(), buf.size()});
    for (std::uint32_t i = 0; i < c.len; ++i)
      ASSERT_EQ(buf[i], expected_byte(m, file, c.offset + i))
          << to_string(GetParam()) << " offset=" << c.offset << "+" << i;
  }
}

TEST_P(AllPaths, RereadsAreStable) {
  const auto files = one_file();
  Machine m(tiny_machine(GetParam()), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> first(256), second(256);
  m.vfs().pread(fd, 5000, {first.data(), first.size()});
  m.vfs().pread(fd, 5000, {second.data(), second.size()});
  EXPECT_EQ(first, second);
}

TEST_P(AllPaths, WriteThenReadSeesNewData) {
  const auto files = one_file();
  Machine m(tiny_machine(GetParam()), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> data(300, 0xAB);
  m.vfs().pwrite(fd, 10000, {data.data(), data.size()});
  std::vector<std::uint8_t> buf(300);
  m.vfs().pread(fd, 10000, {buf.data(), buf.size()});
  for (auto b : buf) ASSERT_EQ(b, 0xAB) << to_string(GetParam());
}

TEST_P(AllPaths, LatencyIsPositiveAndRecorded) {
  const auto files = one_file();
  Machine m(tiny_machine(GetParam()), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(128);
  const SimDuration lat = m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  EXPECT_GT(lat, 0u);
  EXPECT_EQ(m.path().stats().reads, 1u);
  EXPECT_EQ(m.path().stats().read_latency.count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, AllPaths,
    ::testing::Values(PathKind::kBlockIo, PathKind::kTwoBMmio,
                      PathKind::kTwoBDma, PathKind::kPipetteNoCache,
                      PathKind::kPipette),
    [](const ::testing::TestParamInfo<PathKind>& info) {
      switch (info.param) {
        case PathKind::kBlockIo:
          return "BlockIo";
        case PathKind::kTwoBMmio:
          return "TwoBMmio";
        case PathKind::kTwoBDma:
          return "TwoBDma";
        case PathKind::kPipetteNoCache:
          return "PipetteNoCache";
        case PathKind::kPipette:
          return "Pipette";
      }
      return "Unknown";
    });

// --- Block I/O specifics ---

TEST(BlockIo, SecondReadOfSamePageHitsCache) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kBlockIo), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(128);
  const SimDuration miss = m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  const SimDuration hit = m.vfs().pread(fd, 64, {buf.data(), buf.size()});
  EXPECT_LT(hit * 10, miss);
  EXPECT_EQ(m.page_cache()->stats().lookups.hits(), 1u);
}

TEST(BlockIo, SequentialReadsTriggerReadahead) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kBlockIo), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  // Walk pages sequentially; after the ramp, reads ahead mean later pages
  // are already resident.
  for (int p = 0; p < 16; ++p)
    m.vfs().pread(fd, static_cast<std::uint64_t>(p) * kBlockSize,
                  {buf.data(), buf.size()});
  EXPECT_GT(m.page_cache()->stats().readahead_pages, 0u);
  EXPECT_GT(m.page_cache()->stats().lookups.hits(), 0u);
}

TEST(BlockIo, RandomSmallReadsMoveWholePages) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kBlockIo), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  // 128 B requested, at least 4 KiB moved: read amplification.
  EXPECT_GE(m.io_traffic_bytes(), static_cast<std::uint64_t>(kBlockSize));
}

TEST(BlockIo, TrafficIsBoundedByFetchedPages) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kBlockIo), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  const std::uint64_t t = m.io_traffic_bytes();
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});  // full cache hit
  EXPECT_EQ(m.io_traffic_bytes(), t);
}

// --- 2B-SSD specifics ---

TEST(TwoBSsd, TrafficEqualsRequestedBytes) {
  const auto files = one_file();
  for (PathKind kind : {PathKind::kTwoBMmio, PathKind::kTwoBDma}) {
    Machine m(tiny_machine(kind), files);
    const int fd = m.vfs().open("data.bin", m.open_flags(false));
    std::vector<std::uint8_t> buf(333);
    m.vfs().pread(fd, 1000, {buf.data(), buf.size()});
    m.vfs().pread(fd, 200000, {buf.data(), buf.size()});
    EXPECT_EQ(m.io_traffic_bytes(), 666u) << to_string(kind);
  }
}

TEST(TwoBSsd, MmioLatencyGrowsLinearlyWithSize) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kTwoBMmio), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  // Warm the device staging buffer so tR drops out of the comparison.
  std::vector<std::uint8_t> big(4096);
  m.vfs().pread(fd, 0, {big.data(), big.size()});
  std::vector<std::uint8_t> small(64);
  const SimDuration lat_small =
      m.vfs().pread(fd, 0, {small.data(), small.size()});
  const SimDuration lat_big = m.vfs().pread(fd, 0, {big.data(), big.size()});
  // 4096/64 = 64x the transactions; allow fixed costs to dilute it.
  EXPECT_GT(lat_big, lat_small * 10);
}

TEST(TwoBSsd, DmaPaysMappingButNotPerByteTransactions) {
  const auto files = one_file();
  Machine mm(tiny_machine(PathKind::kTwoBMmio), files);
  Machine md(tiny_machine(PathKind::kTwoBDma), files);
  const int fdm = mm.vfs().open("data.bin", mm.open_flags(false));
  const int fdd = md.vfs().open("data.bin", md.open_flags(false));
  std::vector<std::uint8_t> buf(4096);
  // Warm both staging buffers.
  mm.vfs().pread(fdm, 0, {buf.data(), buf.size()});
  md.vfs().pread(fdd, 0, {buf.data(), buf.size()});
  const SimDuration mmio = mm.vfs().pread(fdm, 0, {buf.data(), buf.size()});
  const SimDuration dma = md.vfs().pread(fdd, 0, {buf.data(), buf.size()});
  EXPECT_LT(dma, mmio);  // at 4 KiB, per-access mapping beats 512 round trips
  std::vector<std::uint8_t> tiny(8);
  const SimDuration mmio8 = mm.vfs().pread(fdm, 64, {tiny.data(), tiny.size()});
  const SimDuration dma8 = md.vfs().pread(fdd, 64, {tiny.data(), tiny.size()});
  EXPECT_LT(mmio8, dma8);  // at 8 B, one round trip beats the mapping cost
}

// --- Pipette specifics ---

TEST(Pipette, FgrcHitServesWithoutDeviceTraffic) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 6400, {buf.data(), buf.size()});  // miss: promoted
  const std::uint64_t traffic = m.io_traffic_bytes();
  const SimDuration hit = m.vfs().pread(fd, 6400, {buf.data(), buf.size()});
  EXPECT_EQ(m.io_traffic_bytes(), traffic);  // served from host DRAM
  EXPECT_LT(hit, 3 * kUs);
  EXPECT_EQ(m.pipette_path()->fgrc().stats().lookups.hits(), 1u);
}

TEST(Pipette, FineMissMovesOnlyDemandedBytes) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(96);
  m.vfs().pread(fd, 512, {buf.data(), buf.size()});
  EXPECT_EQ(m.io_traffic_bytes(), 96u);
}

TEST(Pipette, LargeAlignedReadsTakeBlockRoute) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  m.vfs().pread(fd, 2 * kBlockSize, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().block_reads, 1u);
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_reads, 0u);
}

TEST(Pipette, WithoutFlagFallsBackToBlockRoute) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", kOpenRead);  // no O_FINE_GRAINED
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_reads, 0u);
}

TEST(Pipette, CrossPageFineReadWorks) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  const FileId file = m.vfs().file_of(fd);
  std::vector<std::uint8_t> buf(512);
  const std::uint64_t offset = kBlockSize - 256;  // spans two pages
  m.vfs().pread(fd, offset, {buf.data(), buf.size()});
  for (std::uint32_t i = 0; i < 512; ++i)
    ASSERT_EQ(buf[i], expected_byte(m, file, offset + i));
  // Second read hits the single cached item.
  m.vfs().pread(fd, offset, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->fgrc().stats().lookups.hits(), 1u);
}

TEST(Pipette, WriteInvalidatesCachedItem) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 3200, {buf.data(), buf.size()});  // cached
  std::vector<std::uint8_t> data(128, 0x77);
  m.vfs().pwrite(fd, 3200, {data.data(), data.size()});
  EXPECT_EQ(m.pipette_path()->fgrc().stats().invalidations, 1u);
  m.vfs().pread(fd, 3200, {buf.data(), buf.size()});
  for (auto b : buf) ASSERT_EQ(b, 0x77);
}

TEST(Pipette, StaleCacheNeverServedAfterOverlappingWrite) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> buf(256);
  m.vfs().pread(fd, 5000, {buf.data(), buf.size()});  // cache [5000,5256)
  std::vector<std::uint8_t> data(64, 0xEE);
  m.vfs().pwrite(fd, 5100, {data.data(), data.size()});  // overlap middle
  m.vfs().pread(fd, 5000, {buf.data(), buf.size()});
  for (int i = 100; i < 164; ++i) ASSERT_EQ(buf[static_cast<size_t>(i)], 0xEE);
}

TEST(Pipette, NoCacheVariantNeverPromotes) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipetteNoCache), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(128);
  for (int i = 0; i < 5; ++i) m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->fgrc().stats().promotions, 0u);
  // Every read goes to the device: traffic = 5 x 128.
  EXPECT_EQ(m.io_traffic_bytes(), 5u * 128u);
}

TEST(Pipette, NoCacheRoutesLargeReadsFineToo) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipetteNoCache), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_reads, 1u);
  EXPECT_EQ(m.io_traffic_bytes(), static_cast<std::uint64_t>(kBlockSize));
}

TEST(Pipette, DetectorTracksDemandedRanges) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  const FileId file = m.vfs().file_of(fd);
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  m.vfs().pread(fd, 2048, {buf.data(), buf.size()});
  const auto& det = m.pipette_path()->detector();
  EXPECT_EQ(det.ranges(file, 0).size(), 2u);
  EXPECT_DOUBLE_EQ(det.demanded_fraction(file, 0), 256.0 / kBlockSize);
}

// --- Fine-grained write extension ---

MachineConfig fine_write_machine() {
  MachineConfig c = tiny_machine(PathKind::kPipette);
  c.pipette.fine_writes = true;
  return c;
}

TEST(PipetteFineWrite, SmallWriteTakesByteAndReadsBack) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> data(96, 0x21);
  m.vfs().pwrite(fd, 7000, {data.data(), data.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_writes, 1u);
  EXPECT_EQ(m.ssd().stats().fg_writes, 1u);
  std::vector<std::uint8_t> buf(96);
  m.vfs().pread(fd, 7000, {buf.data(), buf.size()});
  for (auto b : buf) ASSERT_EQ(b, 0x21);
}

TEST(PipetteFineWrite, MovesOnlyNewBytesToDevice) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> data(64, 0x33);
  m.vfs().pwrite(fd, 512, {data.data(), data.size()});
  EXPECT_EQ(m.ssd().stats().bytes_from_host, 64u);
}

TEST(PipetteFineWrite, ExactMatchUpdatesCacheInPlace) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> buf(128);
  m.vfs().pread(fd, 6400, {buf.data(), buf.size()});  // promote item
  std::vector<std::uint8_t> data(128, 0x44);
  m.vfs().pwrite(fd, 6400, {data.data(), data.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fgrc_inplace_updates, 1u);
  // Next read is a warm FGRC hit with the NEW bytes.
  const auto hits0 = m.pipette_path()->fgrc().stats().lookups.hits();
  m.vfs().pread(fd, 6400, {buf.data(), buf.size()});
  EXPECT_EQ(m.pipette_path()->fgrc().stats().lookups.hits(), hits0 + 1);
  for (auto b : buf) ASSERT_EQ(b, 0x44);
}

TEST(PipetteFineWrite, OverlappingNonExactItemIsInvalidated) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> buf(256);
  m.vfs().pread(fd, 6000, {buf.data(), buf.size()});  // item [6000,6256)
  std::vector<std::uint8_t> data(32, 0x55);
  m.vfs().pwrite(fd, 6100, {data.data(), data.size()});  // inside the item
  m.vfs().pread(fd, 6000, {buf.data(), buf.size()});
  for (int i = 100; i < 132; ++i) ASSERT_EQ(buf[static_cast<size_t>(i)], 0x55);
}

TEST(PipetteFineWrite, DirtyPageCachePageFallsBackToBlockWrite) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  // A large write dirties the page via the block route.
  std::vector<std::uint8_t> big(2 * kBlockSize, 0x66);
  m.vfs().pwrite(fd, 0, {big.data(), big.size()});
  // A small write to the dirty page must merge through the page cache.
  std::vector<std::uint8_t> small(64, 0x77);
  m.vfs().pwrite(fd, 100, {small.data(), small.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_writes, 0u);
  std::vector<std::uint8_t> buf(256);
  m.vfs().pread(fd, 0, {buf.data(), buf.size()});
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t want = (i >= 100 && i < 164) ? 0x77 : 0x66;
    ASSERT_EQ(buf[static_cast<size_t>(i)], want) << i;
  }
}

TEST(PipetteFineWrite, CleanResidentPageIsInvalidatedNotStale) {
  const auto files = one_file();
  Machine m(fine_write_machine(), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  // A block-routed read makes the page resident (clean).
  std::vector<std::uint8_t> page(kBlockSize);
  m.vfs().pread(fd, 3 * kBlockSize, {page.data(), page.size()});
  // Fine write to that page.
  std::vector<std::uint8_t> data(64, 0x88);
  m.vfs().pwrite(fd, 3 * kBlockSize + 10, {data.data(), data.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_writes, 1u);
  // A block-routed read must not serve the stale cached page.
  m.vfs().pread(fd, 3 * kBlockSize, {page.data(), page.size()});
  for (int i = 10; i < 74; ++i) ASSERT_EQ(page[static_cast<size_t>(i)], 0x88);
}

TEST(PipetteFineWrite, DisabledByDefault) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  std::vector<std::uint8_t> data(64, 0x99);
  m.vfs().pwrite(fd, 0, {data.data(), data.size()});
  EXPECT_EQ(m.pipette_path()->pipette_stats().fine_writes, 0u);
  EXPECT_EQ(m.ssd().stats().fg_writes, 0u);
}

// --- Async read-ahead ---

TEST(AsyncReadahead, InFlightPageIsAwaitedNotReRead) {
  const auto files = one_file();
  MachineConfig c = tiny_machine(PathKind::kBlockIo);
  c.readahead = ReadaheadConfig{4, 32, true};
  Machine m(c, files);
  const int fd = m.vfs().open("data.bin", m.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  // Sequential reads: the follow-up pages ride the read-ahead.
  for (int p = 0; p < 24; ++p)
    m.vfs().pread(fd, static_cast<std::uint64_t>(p) * kBlockSize,
                  {buf.data(), buf.size()});
  // Device page reads must stay close to 24 + the read-ahead tail — well
  // below 2x, which duplicate fetches of in-flight pages would cause.
  EXPECT_LE(m.ssd().nand().stats().page_reads, 60u);
  // And the bytes are still correct.
  const FileId file = m.vfs().file_of(fd);
  m.vfs().pread(fd, 5 * kBlockSize, {buf.data(), buf.size()});
  for (std::uint32_t i = 0; i < kBlockSize; ++i)
    ASSERT_EQ(buf[i], expected_byte(m, file, 5 * kBlockSize + i));
}

TEST(AsyncReadahead, SequentialFasterThanRandom) {
  const auto files = one_file();
  MachineConfig c = tiny_machine(PathKind::kBlockIo);
  c.readahead = ReadaheadConfig{4, 32, true};
  c.page_cache_bytes = 4 * kMiB;
  Machine seqm(c, files);
  Machine rndm(c, files);
  const int fs_ = seqm.vfs().open("data.bin", seqm.open_flags(false));
  const int fr = rndm.vfs().open("data.bin", rndm.open_flags(false));
  std::vector<std::uint8_t> buf(kBlockSize);
  SimDuration seq_total = 0, rnd_total = 0;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    seq_total += seqm.vfs().pread(
        fs_, static_cast<std::uint64_t>(i) * kBlockSize,
        {buf.data(), buf.size()});
    rnd_total += rndm.vfs().pread(
        fr, rng.next_below(8 * kMiB / kBlockSize) * kBlockSize,
        {buf.data(), buf.size()});
  }
  EXPECT_LT(seq_total * 2, rnd_total);  // read-ahead pays off
}

TEST(Pipette, PageCacheResidencyServesFineReads) {
  const auto files = one_file();
  Machine m(tiny_machine(PathKind::kPipette), files);
  const int fd = m.vfs().open("data.bin", m.open_flags(true));
  // A write makes the page resident (and dirty) in the page cache.
  std::vector<std::uint8_t> data(128, 0x31);
  m.vfs().pwrite(fd, 0, {data.data(), data.size()});
  std::vector<std::uint8_t> buf(64);
  m.vfs().pread(fd, 32, {buf.data(), buf.size()});
  for (auto b : buf) ASSERT_EQ(b, 0x31);
  EXPECT_EQ(m.pipette_path()->pipette_stats().page_cache_served_fine, 1u);
}

}  // namespace
}  // namespace pipette
