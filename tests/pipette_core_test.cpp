// Tests for Pipette's core machinery: the slab store (allocation classes,
// LRU eviction, cleanup arrays, slab migration), the adaptive caching
// threshold, the ghost reference tracker, the detector/dispatcher, and the
// FGRC facade (promotion, TempBuf, invalidation, dynamic allocation,
// reassignment).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bytes.h"
#include "fs/vfs.h"
#include "pipette/detector.h"
#include "pipette/fgrc.h"

namespace pipette {
namespace {

Hmb::Layout small_layout(std::uint64_t data_bytes = 64 * 1024) {
  Hmb::Layout l;
  l.info_slots = 64;
  l.tempbuf_bytes = 8 * 1024;
  l.data_bytes = data_bytes;
  return l;
}

SlabConfig small_slabs() {
  SlabConfig c;
  c.slab_size = 8 * 1024;
  c.class_sizes = {64, 128, 256, 512, 1024};
  c.max_external_bytes = 64 * 1024;
  return c;
}

// --- SlabStore ---

struct SlabStoreFixture : ::testing::Test {
  Hmb hmb{small_layout()};  // 64 KiB data area = 8 slabs of 8 KiB
  SlabStore store{hmb, small_slabs()};
};

TEST_F(SlabStoreFixture, ClassSelection) {
  EXPECT_EQ(store.class_for(1), 0u);
  EXPECT_EQ(store.class_for(64), 0u);
  EXPECT_EQ(store.class_for(65), 1u);
  EXPECT_EQ(store.class_for(128), 1u);
  EXPECT_EQ(store.class_for(1024), 4u);
}

TEST_F(SlabStoreFixture, AllocateAssignsDistinctAddresses) {
  std::set<HmbAddr> addrs;
  for (int i = 0; i < 100; ++i) {
    auto loc = store.allocate({1, static_cast<std::uint64_t>(i) * 64, 64});
    ASSERT_TRUE(loc.has_value());
    EXPECT_TRUE(addrs.insert(store.hmb_addr(*loc)).second);
  }
  EXPECT_EQ(store.stats().live_items, 100u);
}

TEST_F(SlabStoreFixture, AddressesAreItemAligned) {
  auto a = store.allocate({1, 0, 100});  // class 128
  auto b = store.allocate({1, 200, 100});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(store.hmb_addr(*b) - store.hmb_addr(*a), 128u);
}

TEST_F(SlabStoreFixture, DataViewSeesHmbBytes) {
  auto loc = store.allocate({1, 0, 64});
  ASSERT_TRUE(loc);
  std::vector<std::uint8_t> payload(64, 0x3C);
  hmb.dma_write(store.hmb_addr(*loc), {payload.data(), payload.size()});
  auto view = store.data(*loc);
  ASSERT_EQ(view.size(), 64u);
  for (auto b : view) EXPECT_EQ(b, 0x3C);
}

TEST_F(SlabStoreFixture, ExhaustionReturnsNullopt) {
  // 8 slabs x 128 items of 64B = 1024 items max for class 0.
  std::uint64_t allocated = 0;
  while (store.allocate({1, allocated * 64, 64})) ++allocated;
  EXPECT_EQ(allocated, 8u * (8192 / 64));
  EXPECT_EQ(store.free_slabs(), 0u);
}

TEST_F(SlabStoreFixture, EvictLruRecyclesInOrder) {
  auto a = store.allocate({1, 0, 64});
  auto b = store.allocate({1, 64, 64});
  ASSERT_TRUE(a && b);
  store.touch(*a);  // b is now LRU
  auto evicted = store.evict_lru(0);
  ASSERT_TRUE(evicted);
  EXPECT_EQ(evicted->first.offset, 64u);
  // The recycled slot is reused by the next allocation (cleanup array).
  auto c = store.allocate({1, 128, 64});
  ASSERT_TRUE(c);
  EXPECT_EQ(store.hmb_addr(*c), store.hmb_addr(*b));
}

TEST_F(SlabStoreFixture, EvictEmptyClassReturnsNullopt) {
  EXPECT_FALSE(store.evict_lru(3).has_value());
}

TEST_F(SlabStoreFixture, FreeItemAllowsReuse) {
  auto a = store.allocate({1, 0, 256});
  ASSERT_TRUE(a);
  const HmbAddr addr = store.hmb_addr(*a);
  store.free_item(*a);
  EXPECT_EQ(store.stats().live_items, 0u);
  auto b = store.allocate({1, 512, 256});
  ASSERT_TRUE(b);
  EXPECT_EQ(store.hmb_addr(*b), addr);
}

TEST_F(SlabStoreFixture, ExternalizeFreesSlabAndKeepsData) {
  // Fill two slabs of class 0.
  std::vector<ItemLoc> locs;
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i) {
    auto loc = store.allocate({1, i * 64, 64});
    ASSERT_TRUE(loc);
    std::vector<std::uint8_t> payload(64,
                                      static_cast<std::uint8_t>(i & 0xff));
    hmb.dma_write(store.hmb_addr(*loc), {payload.data(), payload.size()});
    locs.push_back(*loc);
  }
  const std::uint32_t free_before = store.free_slabs();
  Rng rng(1);
  ASSERT_TRUE(store.externalize_slab(/*requesting_cls=*/1, rng));
  EXPECT_EQ(store.free_slabs(), free_before + 1);
  EXPECT_EQ(store.stats().migrations, 1u);
  EXPECT_GT(store.stats().external_bytes, 0u);
  // Every item still returns its bytes (resident or externalised).
  for (std::size_t i = 0; i < locs.size(); ++i) {
    auto view = store.data(locs[i]);
    ASSERT_EQ(view.size(), 64u);
    EXPECT_EQ(view[0], static_cast<std::uint8_t>(i & 0xff));
  }
}

TEST_F(SlabStoreFixture, ExternalizeNeedsASecondSlab) {
  // Only one slab in class 0: not eligible for random migration.
  ASSERT_TRUE(store.allocate({1, 0, 64}));
  Rng rng(1);
  EXPECT_FALSE(store.externalize_slab(/*requesting_cls=*/1, rng));
}

TEST_F(SlabStoreFixture, ExternalBudgetCapsMigration) {
  SlabConfig cfg = small_slabs();
  cfg.max_external_bytes = 0;
  Hmb hmb2{small_layout()};
  SlabStore capped{hmb2, cfg};
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i)
    ASSERT_TRUE(capped.allocate({1, i * 64, 64}));
  Rng rng(1);
  EXPECT_FALSE(capped.externalize_slab(1, rng));
}

TEST_F(SlabStoreFixture, ExternalizedItemsAreNotDmaDestinations) {
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i)
    ASSERT_TRUE(store.allocate({1, i * 64, 64}));
  Rng rng(1);
  ASSERT_TRUE(store.externalize_slab(1, rng));
  // Some item is now external; hmb_addr on it must assert.
  bool found_external = false;
  for (std::uint64_t i = 0; i < 2 * (8192 / 64) && !found_external; ++i) {
    // Reconstruct locs: slabs 0 and 1, slots sequential.
    ItemLoc loc{static_cast<std::uint32_t>(i / (8192 / 64)),
                static_cast<std::uint32_t>(i % (8192 / 64))};
    if (!store.resident(loc)) {
      found_external = true;
      EXPECT_DEATH(store.hmb_addr(loc), "not DMA destinations");
    }
  }
  EXPECT_TRUE(found_external);
}

TEST_F(SlabStoreFixture, FullyDeadExternalSlabReleasesMemory) {
  std::vector<ItemLoc> locs;
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i) {
    auto loc = store.allocate({1, i * 64, 64});
    ASSERT_TRUE(loc);
    locs.push_back(*loc);
  }
  Rng rng(1);
  ASSERT_TRUE(store.externalize_slab(1, rng));
  const std::uint64_t ext_before = store.stats().external_bytes;
  ASSERT_GT(ext_before, 0u);
  for (ItemLoc loc : locs) {
    if (!store.resident(loc)) store.free_item(loc);
  }
  EXPECT_EQ(store.stats().external_bytes, 0u);
}

// --- AdaptiveThreshold ---

AdaptiveConfig fast_adaptive() {
  AdaptiveConfig c;
  c.initial_threshold = 2;
  c.min_threshold = 1;
  c.max_threshold = 4;
  c.adjust_period = 10;
  return c;
}

TEST(AdaptiveThreshold, RisesUnderLowReuse) {
  AdaptiveThreshold a(fast_adaptive());
  for (int i = 0; i < 10; ++i) a.on_access(false);
  EXPECT_EQ(a.threshold(), 3u);
  for (int i = 0; i < 10; ++i) a.on_access(false);
  EXPECT_EQ(a.threshold(), 4u);
  for (int i = 0; i < 10; ++i) a.on_access(false);
  EXPECT_EQ(a.threshold(), 4u);  // clamped at max
}

TEST(AdaptiveThreshold, FallsUnderHighReuse) {
  AdaptiveThreshold a(fast_adaptive());
  for (int i = 0; i < 10; ++i) a.on_access(true);
  EXPECT_EQ(a.threshold(), 1u);
  for (int i = 0; i < 10; ++i) a.on_access(true);
  EXPECT_EQ(a.threshold(), 1u);  // clamped at min
}

TEST(AdaptiveThreshold, StableInTheMidBand) {
  AdaptiveConfig c = fast_adaptive();
  c.min_ratio = 0.2;
  c.max_ratio = 0.6;
  AdaptiveThreshold a(c);
  // 40% reuse: between the bounds -> no change.
  for (int i = 0; i < 10; ++i) a.on_access(i % 5 < 2);
  EXPECT_EQ(a.threshold(), 2u);
}

TEST(AdaptiveThreshold, DisabledStaysFixed) {
  AdaptiveConfig c = fast_adaptive();
  c.enabled = false;
  AdaptiveThreshold a(c);
  for (int i = 0; i < 100; ++i) a.on_access(false);
  EXPECT_EQ(a.threshold(), 2u);
}

TEST(AdaptiveThreshold, CountsAccessesAndReuses) {
  AdaptiveThreshold a(fast_adaptive());
  a.on_access(true);
  a.on_access(false);
  a.on_access(true);
  EXPECT_EQ(a.accesses(), 3u);
  EXPECT_EQ(a.reuses(), 2u);
}

TEST(ReferenceTracker, CountsAndForgets) {
  ReferenceTracker t(100);
  const FgKey k{1, 0, 64};
  EXPECT_FALSE(t.seen(k));
  EXPECT_EQ(t.record(k), 1u);
  EXPECT_TRUE(t.seen(k));
  EXPECT_EQ(t.record(k), 2u);
  t.forget(k);
  EXPECT_FALSE(t.seen(k));
  EXPECT_EQ(t.record(k), 1u);
}

TEST(ReferenceTracker, BoundedByCapacity) {
  ReferenceTracker t(4);
  for (std::uint64_t i = 0; i < 100; ++i) t.record({1, i, 64});
  EXPECT_LE(t.tracked(), 4u);
  EXPECT_TRUE(t.seen({1, 99, 64}));
  EXPECT_FALSE(t.seen({1, 0, 64}));  // aged out
}

// --- Detector / Dispatcher ---

TEST(Detector, PermissionRequiresFlag) {
  EXPECT_TRUE(FineGrainedAccessDetector::permitted(kOpenFineGrained));
  EXPECT_TRUE(
      FineGrainedAccessDetector::permitted(kOpenRead | kOpenFineGrained));
  EXPECT_FALSE(FineGrainedAccessDetector::permitted(kOpenRead));
}

TEST(Detector, RecordsAndCoalescesRanges) {
  FineGrainedAccessDetector d;
  EXPECT_EQ(d.record(1, 0, 0, 128), 1u);
  EXPECT_EQ(d.record(1, 0, 256, 128), 2u);
  EXPECT_EQ(d.record(1, 0, 128, 128), 1u);  // bridges the gap
  EXPECT_EQ(d.ranges(1, 0).size(), 1u);
  EXPECT_EQ(d.ranges(1, 0)[0].len, 384u);
  EXPECT_EQ(d.fine_accesses(), 3u);
}

TEST(Detector, DemandedFraction) {
  FineGrainedAccessDetector d;
  d.record(1, 5, 0, 1024);
  EXPECT_DOUBLE_EQ(d.demanded_fraction(1, 5), 0.25);
  EXPECT_DOUBLE_EQ(d.demanded_fraction(1, 6), 0.0);
}

TEST(Dispatcher, RoutesBySizeFlagAndAlignment) {
  DispatchConfig cfg;
  const int fg = kOpenRead | kOpenFineGrained;
  EXPECT_EQ(dispatch_read(cfg, fg, 0, 128), Route::kFine);
  EXPECT_EQ(dispatch_read(cfg, kOpenRead, 0, 128), Route::kBlock);  // no flag
  EXPECT_EQ(dispatch_read(cfg, fg, 0, kBlockSize), Route::kBlock);  // aligned
  EXPECT_EQ(dispatch_read(cfg, fg, 100, kBlockSize), Route::kFine);
  EXPECT_EQ(dispatch_read(cfg, fg, 0, 2 * kBlockSize), Route::kBlock);
}

// --- FineGrainedReadCache facade ---

FgrcConfig facade_config() {
  FgrcConfig c;
  c.slab = small_slabs();
  c.adaptive = AdaptiveConfig{};
  c.adaptive.initial_threshold = 1;  // promote immediately by default
  c.adaptive.min_threshold = 1;
  c.adaptive.enabled = false;
  c.reassign.enabled = false;
  return c;
}

struct FgrcFixture : ::testing::Test {
  Hmb hmb{small_layout()};
  RatioCounter page_cache_hits;
  FineGrainedReadCache cache{hmb, facade_config(), &page_cache_hits};

  // Simulate the device filling the planned destination.
  void fill(const MissPlan& plan, std::uint8_t value, std::uint32_t len) {
    std::vector<std::uint8_t> payload(len, value);
    hmb.dma_write(plan.dest, {payload.data(), payload.size()});
  }
};

TEST_F(FgrcFixture, MissPromoteHitRoundTrip) {
  const FgKey k{1, 1000, 128};
  EXPECT_FALSE(cache.lookup(k).has_value());
  const MissPlan plan = cache.plan_miss(k);
  EXPECT_TRUE(plan.promoted);
  fill(plan, 0x5D, k.len);
  auto hit = cache.lookup(k);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 128u);
  EXPECT_EQ((*hit)[0], 0x5D);
  EXPECT_EQ(cache.stats().lookups.hits(), 1u);
  EXPECT_EQ(cache.stats().promotions, 1u);
}

TEST_F(FgrcFixture, ThresholdTwoStagesThroughTempBuf) {
  FgrcConfig cfg = facade_config();
  cfg.adaptive.initial_threshold = 2;
  cfg.adaptive.min_threshold = 2;
  cfg.adaptive.max_threshold = 2;
  FineGrainedReadCache c2(hmb, cfg, &page_cache_hits);
  const FgKey k{1, 0, 64};
  c2.lookup(k);
  const MissPlan p1 = c2.plan_miss(k);
  EXPECT_FALSE(p1.promoted);  // first access: below threshold -> TempBuf
  EXPECT_GE(p1.dest, hmb.tempbuf_offset());
  EXPECT_LT(p1.dest, hmb.data_offset());
  c2.lookup(k);
  const MissPlan p2 = c2.plan_miss(k);
  EXPECT_TRUE(p2.promoted);  // second access reaches the threshold
  EXPECT_EQ(c2.stats().tempbuf_fills, 1u);
}

TEST_F(FgrcFixture, DistinctKeysDistinctItems) {
  const MissPlan a = cache.plan_miss({1, 0, 64});
  const MissPlan b = cache.plan_miss({1, 64, 64});
  const MissPlan c = cache.plan_miss({2, 0, 64});
  EXPECT_NE(a.dest, b.dest);
  EXPECT_NE(b.dest, c.dest);
}

TEST_F(FgrcFixture, InvalidateRangeDeletesOverlaps) {
  const FgKey a{1, 1000, 128};  // [1000, 1128)
  const FgKey b{1, 2000, 128};  // [2000, 2128)
  fill(cache.plan_miss(a), 1, 128);
  fill(cache.plan_miss(b), 2, 128);
  // Write [1100, 1200): overlaps a only.
  EXPECT_EQ(cache.invalidate_range(1, 1100, 100), 1u);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_TRUE(cache.lookup(b).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST_F(FgrcFixture, InvalidateExactAndContaining) {
  const FgKey a{1, 500, 64};
  fill(cache.plan_miss(a), 1, 64);
  EXPECT_EQ(cache.invalidate_range(1, 500, 64), 1u);  // exact
  const FgKey b{1, 600, 64};
  fill(cache.plan_miss(b), 1, 64);
  EXPECT_EQ(cache.invalidate_range(1, 0, 4096), 1u);  // containing
}

TEST_F(FgrcFixture, InvalidateOtherFileIsNoop) {
  const FgKey a{1, 0, 64};
  fill(cache.plan_miss(a), 1, 64);
  EXPECT_EQ(cache.invalidate_range(2, 0, 4096), 0u);
  EXPECT_TRUE(cache.lookup(a).has_value());
}

TEST_F(FgrcFixture, PressureEvictsWhenPageCacheDominates) {
  // Page cache hit ratio 1.0 > FGRC ratio -> solution 1 (evict LRU).
  for (int i = 0; i < 10; ++i) page_cache_hits.record(true);
  std::uint64_t filled = 0;
  while (true) {
    const FgKey k{1, filled * 64, 64};
    cache.lookup(k);
    const MissPlan plan = cache.plan_miss(k);
    ASSERT_TRUE(plan.promoted);
    ++filled;
    if (cache.stats().pressure_evictions > 0) break;
    ASSERT_LT(filled, 100000u);
  }
  EXPECT_EQ(cache.stats().pressure_migrations, 0u);
  // The earliest key was the LRU victim.
  EXPECT_FALSE(cache.lookup({1, 0, 64}).has_value());
}

TEST_F(FgrcFixture, PressureMigratesWhenFgrcDominates) {
  // FGRC hit ratio >= page cache ratio (both 0 at first) -> solution 2.
  // Fill class 0 completely, plus two slabs' worth of 128B items so
  // another class is eligible for migration (needs > 1 slab).
  for (std::uint64_t i = 0; i < 2 * (8192 / 128); ++i)
    cache.plan_miss({9, i * 128, 128});
  std::uint64_t filled = 0;
  while (cache.stats().pressure_migrations == 0 &&
         cache.stats().pressure_evictions == 0) {
    const FgKey k{1, filled * 64, 64};
    cache.plan_miss(k);
    ++filled;
    ASSERT_LT(filled, 100000u);
  }
  EXPECT_GT(cache.stats().pressure_migrations, 0u);
  EXPECT_EQ(cache.stats().pressure_evictions, 0u);
}

TEST_F(FgrcFixture, TempbufWrapsAround) {
  FgrcConfig cfg = facade_config();
  cfg.adaptive.initial_threshold = 8;  // never promote
  cfg.adaptive.min_threshold = 8;
  cfg.adaptive.max_threshold = 8;
  FineGrainedReadCache c2(hmb, cfg, &page_cache_hits);
  HmbAddr first = 0;
  // 96 fills of 1 KiB through an 8 KiB TempBuf: exactly 12 wraps, so the
  // next fill lands back at the start.
  for (int i = 0; i < 96; ++i) {
    const FgKey k{1, static_cast<std::uint64_t>(i) * 1024, 1024};
    c2.lookup(k);
    const MissPlan p = c2.plan_miss(k);
    ASSERT_FALSE(p.promoted);
    ASSERT_GE(p.dest, hmb.tempbuf_offset());
    ASSERT_LE(p.dest + 1024, hmb.data_offset());
    if (i == 0) first = p.dest;
  }
  const FgKey k{1, 999999, 1024};
  c2.lookup(k);
  EXPECT_EQ(c2.plan_miss(k).dest, first);
}

TEST_F(FgrcFixture, ReassignmentReturnsStagnantSlabs) {
  FgrcConfig cfg = facade_config();
  cfg.reassign.enabled = true;
  cfg.reassign.epoch_accesses = 64;
  FineGrainedReadCache c2(hmb, cfg, &page_cache_hits);
  // Occupy two slabs of class 1 (128B items), then hammer class 0 so
  // class 1 stagnates while memory is exhausted.
  for (std::uint64_t i = 0; i < 2 * (8192 / 128); ++i)
    c2.plan_miss({7, i * 128, 128});
  std::uint64_t i = 0;
  while (c2.stats().reassigned_slabs == 0 && i < 50000) {
    const FgKey k{1, i * 64, 64};
    c2.lookup(k);
    c2.plan_miss(k);
    ++i;
  }
  EXPECT_GT(c2.stats().reassigned_slabs, 0u);
}

TEST_F(SlabStoreFixture, ExternalizeSlabOfTargetsTheGivenClass) {
  // Two slabs of class 0, one of class 2.
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i)
    ASSERT_TRUE(store.allocate({1, i * 64, 64}));
  ASSERT_TRUE(store.allocate({2, 0, 256}));
  const std::uint32_t free_before = store.free_slabs();
  ASSERT_TRUE(store.externalize_slab_of(0));
  EXPECT_EQ(store.free_slabs(), free_before + 1);
  EXPECT_EQ(store.class_stats(0).slabs, 1u);  // class 0 lost one
  EXPECT_EQ(store.class_stats(2).slabs, 1u);  // class 2 untouched
}

TEST_F(SlabStoreFixture, ExternalizeSlabOfEmptyClassFails) {
  EXPECT_FALSE(store.externalize_slab_of(1));
}

TEST_F(SlabStoreFixture, MutableDataWritesShowInData) {
  auto loc = store.allocate({1, 0, 64});
  ASSERT_TRUE(loc);
  auto span = store.mutable_data(*loc);
  ASSERT_EQ(span.size(), 64u);
  span[0] = 0xAB;
  span[63] = 0xCD;
  EXPECT_EQ(store.data(*loc)[0], 0xAB);
  EXPECT_EQ(store.data(*loc)[63], 0xCD);
}

TEST_F(SlabStoreFixture, MutableDataWorksAfterExternalization) {
  std::vector<ItemLoc> locs;
  for (std::uint64_t i = 0; i < 2 * (8192 / 64); ++i) {
    auto loc = store.allocate({1, i * 64, 64});
    ASSERT_TRUE(loc);
    locs.push_back(*loc);
  }
  Rng rng(1);
  ASSERT_TRUE(store.externalize_slab(3, rng));
  ItemLoc external{};
  bool found = false;
  for (ItemLoc loc : locs) {
    if (!store.resident(loc)) {
      external = loc;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  store.mutable_data(external)[5] = 0x77;
  EXPECT_EQ(store.data(external)[5], 0x77);
}

TEST_F(FgrcFixture, UpdateInPlaceRewritesAndPromotes) {
  const FgKey k{1, 256, 64};
  fill(cache.plan_miss(k), 0x10, 64);
  std::vector<std::uint8_t> fresh(64, 0x20);
  EXPECT_TRUE(cache.update_in_place(k, {fresh.data(), fresh.size()}));
  auto hit = cache.lookup(k);
  ASSERT_TRUE(hit);
  EXPECT_EQ((*hit)[0], 0x20);
}

TEST_F(FgrcFixture, UpdateInPlaceFalseForAbsentOrMismatchedKey) {
  std::vector<std::uint8_t> data(64, 1);
  EXPECT_FALSE(cache.update_in_place({1, 0, 64}, {data.data(), data.size()}));
  fill(cache.plan_miss({1, 0, 64}), 2, 64);
  // Same offset, different length: not an exact match.
  std::vector<std::uint8_t> d32(32, 3);
  EXPECT_FALSE(cache.update_in_place({1, 0, 32}, {d32.data(), d32.size()}));
}

TEST_F(FgrcFixture, InvalidateRangeKeepParameterSpares) {
  const FgKey keep{1, 100, 64};
  const FgKey other{1, 120, 64};  // overlaps [100,164)
  fill(cache.plan_miss(keep), 1, 64);
  fill(cache.plan_miss(other), 2, 64);
  EXPECT_EQ(cache.invalidate_range(1, 100, 64, &keep), 1u);
  EXPECT_TRUE(cache.lookup(keep).has_value());
  EXPECT_FALSE(cache.lookup(other).has_value());
}

TEST_F(FgrcFixture, ExactIndexStaysConsistentAcrossPromoteEvictInvalidate) {
  // Drive every mutation path — promotion, LRU eviction under pressure,
  // slab migration, range invalidation, in-place update — and verify after
  // each phase that the exact-match hash index and the offset-ordered
  // per-file multimaps describe the same set of live items.
  ASSERT_TRUE(cache.index_consistent());

  // Promotions across two files until the store hits pressure (evictions
  // and/or slab migrations both exercise index removal/stability).
  for (std::uint64_t i = 0; i < 1500; ++i) {
    const FgKey k{static_cast<FileId>(1 + (i % 2)), (i / 2) * 96, 96};
    if (!cache.lookup(k).has_value()) cache.plan_miss(k);
    if (i % 97 == 0) {
      ASSERT_TRUE(cache.index_consistent()) << "i=" << i;
    }
  }
  EXPECT_GT(cache.stats().pressure_evictions +
                cache.stats().pressure_migrations,
            0u);
  ASSERT_TRUE(cache.index_consistent());

  // Evicted keys must miss through the exact index, survivors must hit.
  std::uint32_t hits = 0, misses = 0;
  for (std::uint64_t i = 0; i < 1500; i += 7) {
    const FgKey k{static_cast<FileId>(1 + (i % 2)), (i / 2) * 96, 96};
    if (cache.lookup(k).has_value()) {
      ++hits;
    } else {
      ++misses;
      cache.plan_miss(k);  // may re-promote; index must keep up
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
  ASSERT_TRUE(cache.index_consistent());

  // Range invalidation (with and without a kept key) and in-place update.
  const FgKey keep{1, 0, 96};
  if (!cache.lookup(keep).has_value()) cache.plan_miss(keep);
  std::vector<std::uint8_t> fresh(96, 0x42);
  EXPECT_TRUE(cache.update_in_place(keep, {fresh.data(), fresh.size()}));
  cache.invalidate_range(1, 0, 4096, &keep);
  ASSERT_TRUE(cache.index_consistent());
  EXPECT_TRUE(cache.lookup(keep).has_value());
  cache.invalidate_range(1, 0, 1 << 20);
  cache.invalidate_range(2, 0, 1 << 20);
  ASSERT_TRUE(cache.index_consistent());
  EXPECT_FALSE(cache.lookup(keep).has_value());
}

TEST_F(FgrcFixture, ReassignmentKeepsIndexConsistent) {
  FgrcConfig cfg = facade_config();
  cfg.reassign.enabled = true;
  cfg.reassign.epoch_accesses = 64;
  FineGrainedReadCache c2(hmb, cfg, &page_cache_hits);
  for (std::uint64_t i = 0; i < 2 * (8192 / 128); ++i)
    c2.plan_miss({7, i * 128, 128});
  std::uint64_t i = 0;
  while (c2.stats().reassigned_slabs == 0 && i < 50000) {
    const FgKey k{1, i * 64, 64};
    c2.lookup(k);
    c2.plan_miss(k);
    ++i;
  }
  ASSERT_GT(c2.stats().reassigned_slabs, 0u);
  // Migrated (externalised) items keep their ItemLocs; hits still work.
  EXPECT_TRUE(c2.index_consistent());
  EXPECT_TRUE(c2.lookup({7, 0, 128}).has_value());
}

TEST_F(FgrcFixture, MemoryUsageTracksSlabs) {
  EXPECT_EQ(cache.memory_bytes(), 0u);
  cache.plan_miss({1, 0, 64});
  EXPECT_EQ(cache.memory_bytes(), small_slabs().slab_size);
}

}  // namespace
}  // namespace pipette
