// Public-API surface tests: the flows the examples and external users rely
// on, kept deliberately close to the README/quickstart code so API breaks
// surface here first.
#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"
#include "workload/search.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

TEST(ApiSurface, QuickstartFlow) {
  // Mirrors examples/quickstart.cpp.
  MachineConfig config = default_machine(PathKind::kPipette);
  config.ssd.geometry.blocks_per_plane = 64;
  const std::vector<FileSpec> files = {{"objects.db", 32ull * kMiB}};
  Machine machine(config, files);
  const int fd =
      machine.vfs().open("objects.db", kOpenRead | kOpenFineGrained);
  std::vector<std::uint8_t> vec(128);
  const SimDuration first =
      machine.vfs().pread(fd, 4096 * 10 + 256, {vec.data(), vec.size()});
  machine.vfs().pread(fd, 4096 * 10 + 256, {vec.data(), vec.size()});
  const SimDuration third =
      machine.vfs().pread(fd, 4096 * 10 + 256, {vec.data(), vec.size()});
  EXPECT_GT(first, 10 * kUs);  // cold: flash
  EXPECT_LT(third, 3 * kUs);   // warm: FGRC
  machine.vfs().close(fd);
}

TEST(ApiSurface, EveryWorkloadDrivesEveryPathBriefly) {
  MachineConfig base = default_machine(PathKind::kPipette);
  base.ssd.geometry.blocks_per_plane = 64;

  auto drive = [&](Workload& w, PathKind kind) {
    MachineConfig config = base;
    config.kind = kind;
    Machine machine(config, w.files());
    std::vector<int> fds;
    for (const FileSpec& f : w.files())
      fds.push_back(machine.vfs().open(f.name, machine.open_flags(true)));
    std::vector<std::uint8_t> buf(64 * 1024);
    for (int i = 0; i < 200; ++i) {
      const Request r = w.next();
      ASSERT_LE(r.len, buf.size());
      if (r.is_write) {
        machine.vfs().pwrite(fds[r.file_index], r.offset,
                             {buf.data(), r.len});
      } else {
        machine.vfs().pread(fds[r.file_index], r.offset,
                            {buf.data(), r.len});
      }
    }
    EXPECT_GT(machine.sim().now(), 0u);
  };

  for (PathKind kind : kAllPaths) {
    SyntheticConfig sc = table1_workload('C', Distribution::kZipf);
    sc.file_size = 16 * kMiB;
    SyntheticWorkload synth(sc);
    drive(synth, kind);

    RecsysConfig rc;
    rc.total_bytes = 16 * kMiB;
    RecsysWorkload recsys(rc);
    drive(recsys, kind);

    LinkBenchConfig lc;
    lc.node_count = 1 << 14;
    LinkBenchWorkload graph(lc);
    drive(graph, kind);

    SearchConfig sec;
    sec.terms = 1 << 14;
    SearchWorkload search(sec);
    drive(search, kind);
  }
}

TEST(ApiSurface, RunExperimentOverCustomMachine) {
  // Mirrors the bench harness: custom machine config + run_experiment.
  MachineConfig config = default_machine(PathKind::kPipette);
  config.ssd.geometry.blocks_per_plane = 64;
  config.page_cache_bytes = 8 * kMiB;
  config.ssd.hmb.data_bytes = 8 * kMiB;
  SyntheticConfig sc = table1_workload('E', Distribution::kZipf);
  sc.file_size = 16 * kMiB;
  SyntheticWorkload w(sc);
  const RunResult r = run_experiment(config, w, {5000, 5000});
  EXPECT_EQ(r.path_name, "Pipette");
  EXPECT_GT(r.requests_per_sec(), 0.0);
  EXPECT_GT(r.fgrc_hit_ratio, 0.0);
}

TEST(ApiSurface, FineWriteOptInFlow) {
  // Mirrors examples/social_graph.cpp with the extension enabled.
  MachineConfig config = default_machine(PathKind::kPipette);
  config.ssd.geometry.blocks_per_plane = 64;
  config.pipette.fine_writes = true;
  Machine machine(config, {{{"db", 16ull * kMiB}}});
  const int fd = machine.vfs().open("db", machine.open_flags(true));
  std::vector<std::uint8_t> rec(88, 0x42);
  machine.vfs().pwrite(fd, 1280, {rec.data(), rec.size()});
  std::vector<std::uint8_t> out(88);
  machine.vfs().pread(fd, 1280, {out.data(), out.size()});
  EXPECT_EQ(out, rec);
  EXPECT_EQ(machine.pipette_path()->pipette_stats().fine_writes, 1u);
}

}  // namespace
}  // namespace pipette
