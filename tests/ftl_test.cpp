// Test wall for the sub-page FTL (ssd/ftl.h): a randomized property/fuzz
// suite over the mapping-unit invariants, a hand-computed pinned scenario
// for the merged-write arithmetic, and machine-level differential tests
// that sweep the mapping unit and require read-only streams to stay
// bit-identical across it.
//
// The invariants checked after every fuzz batch:
//  * the logical->physical MU map is injective and in range;
//  * per-block valid-MU accounting equals the count recomputed from the map
//    (so GC relocated exactly the live MUs, never an invalid one);
//  * total valid MUs are conserved at lba_count * slots_per_page;
//  * per-die erase counters are monotone and sum to stats().blocks_erased,
//    with max/min wear stats matching the true spread;
//  * every sealed PageProgram carries a full page of MU slots, GC page-buffer
//    reads move only whole live MUs (their bytes sum to exactly the MUs GC
//    relocated), classic GcMoves appear only at MU = page, and the sealed
//    host + GC programs + moves add up to stats().pages_programmed.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

// 4ch x 2way x 1pl x 8blk x 16pg = 1024 pages over 8 dies; lba_count 640
// leaves 3 free blocks per die, so the kGcLowWater = 2 threshold is one
// block pop away and GC runs constantly under the fuzz.
NandGeometry fuzz_geometry() {
  NandGeometry g;
  g.channels = 4;
  g.ways_per_channel = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  return g;
}

// Cumulative drain bookkeeping threaded through the fuzz: the per-batch
// drains are checked individually and against the FtlStats totals at the
// end.
struct DrainTotals {
  std::uint64_t host_programs = 0;
  std::uint64_t gc_page_programs = 0;
  std::uint64_t gc_moves = 0;
  std::uint64_t gc_read_bytes = 0;
  std::vector<std::uint64_t> erases_per_die;
};

void check_addr(const NandGeometry& g, const PhysPageAddr& a) {
  ASSERT_LT(a.channel, g.channels);
  ASSERT_LT(a.way, g.ways_per_channel);
  ASSERT_LT(a.page, g.pages_per_die());
}

void drain_and_check(Ftl& ftl, const NandGeometry& g, DrainTotals& totals) {
  const std::uint32_t spp = ftl.slots_per_page();
  const std::uint32_t mu = ftl.mapping_unit();

  std::vector<PageProgram> programs;
  ftl.drain_host_programs(programs);
  for (const PageProgram& p : programs) {
    check_addr(g, p.addr);
    EXPECT_EQ(p.mus, spp);  // merged writes seal only full pages
  }
  totals.host_programs += programs.size();

  ftl.drain_gc_page_programs(programs);
  if (spp == 1) {
    EXPECT_TRUE(programs.empty());
  }
  for (const PageProgram& p : programs) {
    check_addr(g, p.addr);
    EXPECT_EQ(p.mus, spp);
  }
  totals.gc_page_programs += programs.size();

  std::vector<MuPageRead> reads;
  ftl.drain_gc_page_reads(reads);
  if (spp == 1) {
    EXPECT_TRUE(reads.empty());
  }
  for (const MuPageRead& r : reads) {
    check_addr(g, r.addr);
    EXPECT_GE(r.bytes, mu);
    EXPECT_LE(r.bytes, g.page_size);
    EXPECT_EQ(r.bytes % mu, 0u);  // the page buffer moves whole MUs
    totals.gc_read_bytes += r.bytes;
  }

  const std::vector<GcMove> moves = ftl.take_gc_moves();
  if (spp > 1) {
    EXPECT_TRUE(moves.empty());  // classic moves: MU = page only
  }
  for (const GcMove& m : moves) {
    check_addr(g, m.from);
    check_addr(g, m.to);
  }
  totals.gc_moves += moves.size();

  std::vector<std::uint32_t> erased;
  ftl.drain_erased_dies(erased);
  for (std::uint32_t die : erased) {
    ASSERT_LT(die, g.dies());
    ++totals.erases_per_die[die];
  }
  EXPECT_FALSE(ftl.has_pending_gc_work());
}

void check_invariants(const Ftl& ftl, const NandGeometry& g,
                      std::vector<std::uint64_t>& prev_erases) {
  const std::uint32_t spp = ftl.slots_per_page();
  const std::uint64_t lbas = ftl.lba_count();
  const std::uint64_t total_mus = g.total_pages() * spp;

  // Injectivity + map/block cross-check: every logical MU maps to a unique
  // in-range linear MU, and counting mapped MUs per block reproduces the
  // FTL's own valid-MU accounting exactly.
  std::set<std::uint64_t> seen;
  std::vector<std::uint32_t> per_block(ftl.block_count(), 0);
  for (Lba lba = 0; lba < lbas; ++lba) {
    for (std::uint32_t s = 0; s < spp; ++s) {
      const std::uint64_t linear = ftl.mu_linear(lba, s);
      ASSERT_LT(linear, total_mus);
      ASSERT_TRUE(seen.insert(linear).second) << "lba " << lba << " slot " << s;
      ++per_block[ftl.block_of_linear_mu(linear)];
    }
  }
  std::uint64_t valid_sum = 0;
  for (std::uint64_t b = 0; b < ftl.block_count(); ++b) {
    EXPECT_EQ(per_block[b], ftl.block_valid_mus(b)) << "block " << b;
    valid_sum += ftl.block_valid_mus(b);
  }
  EXPECT_EQ(valid_sum, lbas * spp);  // conservation

  // Wear accounting: monotone per-die counters, total == blocks_erased,
  // max/min stats match the true spread.
  std::uint64_t erase_sum = 0, erase_max = 0, erase_min = ~0ull;
  for (std::uint32_t d = 0; d < ftl.dies(); ++d) {
    const std::uint64_t e = ftl.erase_count(d);
    EXPECT_GE(e, prev_erases[d]) << "die " << d;
    prev_erases[d] = e;
    erase_sum += e;
    erase_max = std::max(erase_max, e);
    erase_min = std::min(erase_min, e);
  }
  EXPECT_EQ(erase_sum, ftl.stats().blocks_erased);
  EXPECT_EQ(erase_max, ftl.stats().max_die_erases);
  EXPECT_EQ(erase_min, ftl.stats().min_die_erases);

  // MU-counting write amplification identity.
  const FtlStats& st = ftl.stats();
  if (st.mus_written > 0) {
    EXPECT_DOUBLE_EQ(st.write_amplification(),
                     static_cast<double>(st.mus_written + st.gc_relocated_mus) /
                         static_cast<double>(st.mus_written));
    EXPECT_GE(st.write_amplification(), 1.0);
  }

  // lookup / lookup_pages agree with the raw map on a sample of LBAs.
  std::vector<MuPageRead> pages;
  for (Lba lba = 0; lba < lbas; lba += 97) {
    std::set<std::uint64_t> distinct;
    for (std::uint32_t s = 0; s < spp; ++s)
      distinct.insert(ftl.mu_linear(lba, s) / spp);
    ftl.lookup_pages(lba, pages);
    EXPECT_EQ(pages.size(), distinct.size());
    std::uint64_t bytes = 0;
    for (const MuPageRead& r : pages) bytes += r.bytes;
    EXPECT_EQ(bytes, g.page_size);  // the LBA's MUs always sum to one page
    EXPECT_TRUE(ftl.lookup(lba) == pages.front().addr);
  }
}

class FtlFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FtlFuzz, RandomizedWritesPreserveInvariants) {
  const std::uint32_t mu = GetParam();
  const NandGeometry g = fuzz_geometry();
  const std::uint64_t lbas = 640;
  Ftl ftl(g, lbas, mu);
  const std::uint32_t spp = ftl.slots_per_page();
  ASSERT_EQ(spp, g.page_size / mu);

  Rng rng(0x5eed1000 + mu);
  DrainTotals totals;
  totals.erases_per_die.assign(g.dies(), 0);
  std::vector<std::uint64_t> prev_erases(g.dies(), 0);
  const std::uint32_t full_mask = spp >= 32 ? ~0u : ((1u << spp) - 1u);

  for (int op = 0; op < 6000; ++op) {
    const Lba lba = rng.next_below(lbas);
    if (spp > 1 && rng.next_bool(0.5)) {
      // Partial write: any non-empty slot subset.
      const std::uint32_t mask =
          1u + static_cast<std::uint32_t>(rng.next_below(full_mask));
      ftl.write_slots(lba, mask);
    } else {
      ftl.update(lba);
    }
    if ((op + 1) % 500 == 0) {
      drain_and_check(ftl, g, totals);
      check_invariants(ftl, g, prev_erases);
    }
  }
  drain_and_check(ftl, g, totals);
  check_invariants(ftl, g, prev_erases);

  // The fuzz must actually have exercised GC and relocation.
  const FtlStats& st = ftl.stats();
  EXPECT_GT(st.gc_collections, 0u);
  EXPECT_GT(st.gc_relocated_mus, 0u);
  EXPECT_GT(st.blocks_erased, 0u);
  EXPECT_GT(st.write_amplification(), 1.0);

  // Cumulative drain totals against the stats counters: every erase was
  // surfaced on the right die, every sealed page was surfaced exactly once,
  // and the GC page buffer read exactly the MUs GC re-packed.
  std::uint64_t drained_erases = 0;
  for (std::uint32_t d = 0; d < g.dies(); ++d) {
    EXPECT_EQ(totals.erases_per_die[d], ftl.erase_count(d)) << "die " << d;
    drained_erases += totals.erases_per_die[d];
  }
  EXPECT_EQ(drained_erases, st.blocks_erased);
  if (spp > 1) {
    EXPECT_EQ(totals.gc_read_bytes / mu, st.gc_relocated_mus);
    EXPECT_EQ(totals.gc_moves, 0u);
  } else {
    EXPECT_EQ(totals.gc_moves, st.gc_relocated_mus);
    EXPECT_EQ(totals.gc_read_bytes, 0u);
  }
  // Sealed-page conservation: host seals + merged GC seals + classic moves
  // (each a sealed single-MU page) == pages_programmed.
  EXPECT_EQ(totals.host_programs + totals.gc_page_programs + totals.gc_moves,
            st.pages_programmed);
}

INSTANTIATE_TEST_SUITE_P(MappingUnits, FtlFuzz,
                         ::testing::Values(512u, 1024u, 2048u, 4096u));

// --- Hand-computed merged-write arithmetic ------------------------------
//
// One die (1ch x 1way), 8 blocks x 2 pages, MU = 2048 (2 slots/page,
// 4 MUs/block), 4 LBAs striped onto pages 0..3 (blocks 0 and 1). Three
// writes, fully traced by hand:
//
//  1. write_slots(0, 0b01): kills lba0/slot0 (page 0 keeps slot1 alive);
//     the fresh MU opens active block 2 at page 4 slot 0. Nothing seals.
//  2. write_slots(1, 0b01): kills lba1/slot0 (page 1 keeps slot1 alive);
//     the fresh MU lands in page 4 slot 1 — a merged page holding MUs of
//     TWO different LBAs — and seals it: the first program.
//  3. update(0): kills lba0's two MUs. Slot 0 died in page 4 (slot 1 there
//     is lba1's, still live); slot 1 died in page 0, whose last live MU it
//     was — the first whole-page invalidation. Both fresh MUs fill page 5
//     and seal it: the second program.
//
// Net: 3 host writes, 4 MUs written, but only 2 pages programmed — the
// pinned counters below are exactly what a page-counting (rather than
// MU-counting) write_amplification would get wrong.
TEST(FtlPinned, ThreeWriteMergedProgramArithmetic) {
  NandGeometry g;
  g.channels = 1;
  g.ways_per_channel = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 2;
  Ftl ftl(g, 4, 2048);
  ASSERT_EQ(ftl.slots_per_page(), 2u);

  ftl.write_slots(0, 0b01);
  ftl.write_slots(1, 0b01);
  ftl.update(0);

  const FtlStats& st = ftl.stats();
  EXPECT_EQ(st.writes_mapped, 3u);
  EXPECT_EQ(st.mus_written, 4u);
  EXPECT_EQ(st.invalidated_mus, 4u);
  EXPECT_EQ(st.invalidated_pages, 1u);  // page 0, at write 3
  EXPECT_EQ(st.pages_programmed, 2u);   // pages 4 and 5
  EXPECT_EQ(st.gc_collections, 0u);
  EXPECT_EQ(st.gc_relocated_mus, 0u);
  EXPECT_EQ(st.blocks_erased, 0u);
  EXPECT_DOUBLE_EQ(st.write_amplification(), 1.0);

  // The two sealed programs, in seal order, each carrying both slots.
  std::vector<PageProgram> programs;
  ftl.drain_host_programs(programs);
  ASSERT_EQ(programs.size(), 2u);
  EXPECT_TRUE((programs[0].addr == PhysPageAddr{0, 0, 4}));
  EXPECT_EQ(programs[0].mus, 2u);
  EXPECT_TRUE((programs[1].addr == PhysPageAddr{0, 0, 5}));
  EXPECT_EQ(programs[1].mus, 2u);

  // lba0 was rewritten whole: both MUs in page 5, one full-page read.
  std::vector<MuPageRead> pages;
  ftl.lookup_pages(0, pages);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_TRUE((pages[0].addr == PhysPageAddr{0, 0, 5}));
  EXPECT_EQ(pages[0].bytes, 4096u);

  // lba1 is split: slot 0 in merged page 4, slot 1 still in page 1.
  ftl.lookup_pages(1, pages);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_TRUE((pages[0].addr == PhysPageAddr{0, 0, 4}));
  EXPECT_EQ(pages[0].bytes, 2048u);
  EXPECT_TRUE((pages[1].addr == PhysPageAddr{0, 0, 1}));
  EXPECT_EQ(pages[1].bytes, 2048u);
}

// Driving the same device on to its first relocation keeps WA exactly on
// the MU-counting identity — and strictly above the page-programs ratio a
// page-counting implementation would report.
TEST(FtlPinned, WriteAmplificationCountsMusNotPages) {
  NandGeometry g;
  g.channels = 1;
  g.ways_per_channel = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 2;
  Ftl ftl(g, 4, 2048);

  Rng rng(7);
  while (ftl.stats().gc_relocated_mus == 0)
    ftl.write_slots(rng.next_below(4), 1u + rng.next_below(3));
  const FtlStats& st = ftl.stats();
  EXPECT_GT(st.write_amplification(), 1.0);
  EXPECT_DOUBLE_EQ(st.write_amplification(),
                   static_cast<double>(st.mus_written + st.gc_relocated_mus) /
                       static_cast<double>(st.mus_written));
  // Merged partial writes mean several MUs per sealed page: counting pages
  // would undercount host work and inflate the ratio.
  EXPECT_LT(st.pages_programmed, st.mus_written + st.gc_relocated_mus);
}

// --- Differential mapping-unit sweep (machine level) --------------------

SyntheticConfig small_synth(char wl, double write_ratio = 0.0) {
  SyntheticConfig sc = table1_workload(wl, Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  sc.write_ratio = write_ratio;
  return sc;
}

RunResult run_mu(PathKind kind, std::uint32_t mu, double write_ratio,
                 const RunConfig& rc) {
  MachineConfig m = default_machine(kind);
  m.mapping_unit = mu;
  SyntheticWorkload w(small_synth('C', write_ratio));
  return run_experiment(m, w, rc);
}

// Read-only streams never scatter an LBA's MUs, so every sub-page mapping
// resolves to the same single-page reads as the page-granular device: the
// whole Deterministic() tuple must match bit for bit at every MU.
TEST(DifferentialMu, ReadOnlyStreamsIdenticalAcrossMappingUnits) {
  const RunConfig rc{400, 200};
  for (PathKind kind : {PathKind::kPipette, PathKind::kBlockIo}) {
    const RunResult base = run_mu(kind, 4096, 0.0, rc);
    for (std::uint32_t mu : {512u, 1024u, 2048u}) {
      EXPECT_EQ(run_mu(kind, mu, 0.0, rc).Deterministic(), base.Deterministic())
          << to_string(kind) << " mu=" << mu;
    }
  }
}

// MU = page spelled explicitly must be the same device as the default
// page-granular mapping — including under a write mix, where the merged
// allocator and GC actually run.
TEST(DifferentialMu, ExplicitPageMuMatchesDefaultUnderWrites) {
  const RunConfig rc{400, 200};
  for (PathKind kind : {PathKind::kPipette, PathKind::kBlockIo}) {
    EXPECT_EQ(run_mu(kind, 4096, 0.3, rc).Deterministic(),
              run_mu(kind, 0, 0.3, rc).Deterministic())
        << to_string(kind);
  }
}

// Sub-page write mixes are themselves deterministic and fully served.
TEST(DifferentialMu, SubPageWriteMixReproducesBitForBit) {
  const RunConfig rc{400, 200};
  const RunResult a = run_mu(PathKind::kPipette, 512, 0.3, rc);
  const RunResult b = run_mu(PathKind::kPipette, 512, 0.3, rc);
  EXPECT_EQ(a.Deterministic(), b.Deterministic());
  EXPECT_EQ(a.failed_reads, 0u);
  // ~30% of the measured requests are writes, so only the read share lands
  // in measured_reads; all of it must be served.
  EXPECT_GT(a.measured_reads, 0u);
  EXPECT_LT(a.measured_reads, rc.requests);
}

// Written bytes survive a cold restart and come back through the sub-page
// read path intact, at every mapping unit.
TEST(DifferentialMu, SubPageReadsReturnWrittenPayload) {
  for (std::uint32_t mu : {512u, 1024u, 2048u}) {
    MachineConfig m = default_machine(PathKind::kPipette);
    m.mapping_unit = mu;
    const std::vector<FileSpec> files{{"f", 1 * kMiB, 0, 0}};
    Machine machine(m, files);
    const int fd = machine.vfs().open("f", machine.open_flags(true));

    std::vector<std::uint8_t> wrote(300);
    for (std::size_t i = 0; i < wrote.size(); ++i)
      wrote[i] = static_cast<std::uint8_t>(0x11 * mu + i);
    machine.vfs().pwrite(fd, 2 * 4096 + 700, {wrote.data(), wrote.size()});
    machine.cold_restart();  // drop host caches: the read must hit the device

    std::vector<std::uint8_t> got(wrote.size(), 0);
    machine.vfs().pread(fd, 2 * 4096 + 700, {got.data(), got.size()});
    EXPECT_EQ(std::memcmp(got.data(), wrote.data(), wrote.size()), 0)
        << "mu=" << mu;
  }
}

}  // namespace
}  // namespace pipette
