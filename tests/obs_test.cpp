// Observability layer tests: the tracer must observe without perturbing
// (tracing on/off is bit-identical, at any fleet job count), exports must
// parse, and the metrics registry must merge deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "obs/chrome_trace.h"
#include "obs/timeline.h"
#include "obs/util.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace pipette {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr RunConfig kRun{/*requests=*/8'000, /*warmup=*/2'000};

// False in a -DPIPETTE_TRACE=OFF build: the span macros compile to nothing,
// so tests asserting that spans were *recorded* skip (the determinism
// assertions still run — an untraceable build trivially satisfies them).
constexpr bool kTraceCompiled = PIPETTE_TRACE_ENABLED != 0;

SyntheticWorkload make_workload() {
  SyntheticConfig sc = table1_workload('C', Distribution::kUniform, kSeed);
  sc.file_size = 32 * kMiB;
  return SyntheticWorkload(sc);
}

RunResult run_cell(PathKind kind, bool traced,
                   const RunConfig& run = kRun) {
  MachineConfig config = default_machine(kind);
  config.trace.enabled = traced;
  SyntheticWorkload workload = make_workload();
  return run_experiment(config, workload, run);
}

// The tentpole guarantee: the tracer only reads timestamps the simulation
// already computed, so enabling it changes no deterministic field — same
// events, same RNG draws, same latencies, same metrics registry.
TEST(Tracing, OnOffBitIdentical) {
  for (PathKind kind : kAllPaths) {
    const RunResult off = run_cell(kind, /*traced=*/false);
    const RunResult on = run_cell(kind, /*traced=*/true);
    EXPECT_EQ(off.Deterministic(), on.Deterministic())
        << "tracing perturbed " << to_string(kind);

    // The traced run actually observed something...
    if (kTraceCompiled) {
      std::uint64_t spans = 0;
      for (const LatencyHistogram& h : on.stage_latency) spans += h.count();
      EXPECT_GT(spans, 0u) << to_string(kind);
      EXPECT_FALSE(on.trace_spans.empty()) << to_string(kind);
    }
    // ...and the untraced one paid nothing for not observing.
    EXPECT_TRUE(off.stage_latency.empty());
    EXPECT_TRUE(off.trace_spans.empty());
  }
}

TEST(Tracing, EveryRequestTraced) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  const RunResult r = run_cell(PathKind::kPipette, /*traced=*/true);
  // host_submit opens every read and write, warmup included.
  const auto submit = static_cast<std::size_t>(Stage::kHostSubmit);
  ASSERT_LT(submit, r.stage_latency.size());
  EXPECT_EQ(r.stage_latency[submit].count(), kRun.requests);
}

TEST(Tracing, RespectsMaxSpans) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  MachineConfig config = default_machine(PathKind::kBlockIo);
  config.trace.enabled = true;
  config.trace.max_spans = 64;
  SyntheticWorkload workload = make_workload();
  const RunResult r = run_experiment(config, workload, kRun);
  EXPECT_LE(r.trace_spans.size(), 64u);
  // Histograms keep counting past the span cap.
  std::uint64_t spans = 0;
  for (const LatencyHistogram& h : r.stage_latency) spans += h.count();
  EXPECT_GT(spans, 64u);
}

TEST(Fleet, TracedFleetDeterministicAcrossJobs) {
  auto run_fleet = [](bool traced, unsigned jobs) {
    FleetConfig fleet;
    fleet.shards = 4;
    fleet.machine = default_machine(PathKind::kPipette);
    fleet.machine.trace.enabled = traced;
    FleetRunner runner(
        fleet,
        [](std::uint64_t s) -> std::unique_ptr<Workload> {
          SyntheticConfig sc = table1_workload('C', Distribution::kUniform, s);
          sc.file_size = 32 * kMiB;
          return std::make_unique<SyntheticWorkload>(sc);
        },
        kSeed);
    return runner.run(kRun, jobs);
  };
  const FleetResult off = run_fleet(false, 1);
  const FleetResult on_serial = run_fleet(true, 1);
  const FleetResult on_parallel = run_fleet(true, 4);
  EXPECT_TRUE(deterministic_equal(off, on_serial));
  EXPECT_TRUE(deterministic_equal(on_serial, on_parallel));

  // Cross-shard decomposition merged bucket-wise: stage counts are the sums
  // of the per-shard counts.
  if (!kTraceCompiled) return;
  ASSERT_FALSE(on_serial.stage_latency.empty());
  const auto submit = static_cast<std::size_t>(Stage::kHostSubmit);
  std::uint64_t per_shard = 0;
  for (const RunResult& r : on_serial.shard_results)
    per_shard += r.stage_latency[submit].count();
  EXPECT_EQ(on_serial.stage_latency[submit].count(), per_shard);
  EXPECT_TRUE(off.stage_latency.empty());
}

TEST(ChromeTrace, ExportsValidJson) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  RunResult r = run_cell(PathKind::kPipette, /*traced=*/true);
  ASSERT_FALSE(r.trace_spans.empty());
  std::vector<ShardTrace> shards;
  shards.push_back({"Pipette", std::move(r.trace_spans)});
  const std::string doc = chrome_trace_json(shards);
  EXPECT_TRUE(json_valid(doc)) << doc.substr(0, 200);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  // Every stage that emitted a span has a named track.
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("host/fgrc_lookup"), std::string::npos);
}

TEST(ChromeTrace, EmptyInputIsValid) {
  EXPECT_TRUE(json_valid(chrome_trace_json({})));
}

TEST(Timeline, SamplesMeasuredPhase) {
  MachineConfig config = default_machine(PathKind::kPipette);
  RunConfig run = kRun;
  run.timeline.interval = 100'000;  // 0.1 ms sim time
  SyntheticWorkload workload = make_workload();
  const RunResult r = run_experiment(config, workload, run);
  ASSERT_FALSE(r.timeline.empty());
  EXPECT_LE(r.timeline.size(), run.timeline.max_samples);
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_GT(r.timeline[i].t, r.timeline[i - 1].t);
    EXPECT_GE(r.timeline[i].reads, r.timeline[i - 1].reads);
    EXPECT_GE(r.timeline[i].traffic_bytes, r.timeline[i - 1].traffic_bytes);
  }
  EXPECT_LE(r.timeline.back().reads, r.measured_reads);

  // Sampling, like tracing, must not perturb the simulation.
  const RunResult plain = run_cell(PathKind::kPipette, /*traced=*/false);
  EXPECT_EQ(plain.Deterministic(), r.Deterministic());
  EXPECT_TRUE(plain.timeline.empty());
}

TEST(Metrics, RegistryBasics) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.value("nope"), 0u);
  m.set("a.gauge", 7);
  m.add("a.counter", 3);
  m.add("a.counter", 4);
  EXPECT_EQ(m.value("a.gauge"), 7u);
  EXPECT_EQ(m.value("a.counter"), 7u);
  EXPECT_TRUE(m.contains("a.gauge"));
  EXPECT_FALSE(m.contains("a"));

  MetricsRegistry other;
  other.set("a.counter", 10);
  other.set("b.only", 1);
  m.merge_add(other);
  EXPECT_EQ(m.value("a.counter"), 17u);
  EXPECT_EQ(m.value("b.only"), 1u);
  EXPECT_EQ(m.size(), 3u);

  // std::map iteration order = deterministic export order.
  std::string prev;
  for (const auto& [k, v] : m.values()) {
    EXPECT_LT(prev, k);
    prev = k;
  }
}

// The merge rule satellites: plain counters sum across shards, but any
// metric named `*_peak` / `*.peak` is a high-water gauge and must take the
// max — summing peaks across shards would fabricate a depth no shard saw.
TEST(Metrics, PeakGaugesMaxMergeOthersSum) {
  MetricsRegistry mine;
  mine.set("queue.nand_die.depth_peak", 7);
  mine.set("ring.peak", 2);
  mine.set("reads.count", 3);
  MetricsRegistry theirs;
  theirs.set("queue.nand_die.depth_peak", 5);
  theirs.set("ring.peak", 9);
  theirs.set("reads.count", 4);
  theirs.set("peak.reads", 11);  // "peak" not a suffix: still a counter
  mine.merge_add(theirs);
  EXPECT_EQ(mine.value("queue.nand_die.depth_peak"), 7u);  // max, not 12
  EXPECT_EQ(mine.value("ring.peak"), 9u);
  EXPECT_EQ(mine.value("reads.count"), 7u);  // sum
  mine.merge_add(theirs);
  EXPECT_EQ(mine.value("peak.reads"), 22u);  // summed twice
  EXPECT_EQ(mine.value("ring.peak"), 9u);    // max is idempotent
}

TEST(Timeline, SamplerEdgeCases) {
  // interval = 0 disables sampling outright.
  TimelineSampler off({/*interval=*/0, /*max_samples=*/4}, /*start=*/100);
  EXPECT_FALSE(off.due(1'000'000'000));

  TimelineConfig cfg;
  cfg.interval = 10;
  cfg.max_samples = 3;
  TimelineSampler s(cfg, /*start=*/5);
  EXPECT_FALSE(s.due(5));
  EXPECT_FALSE(s.due(14));
  // A poll that straddles many intervals yields ONE sample (decimation,
  // not catch-up), and the next deadline is rebased on the poll time.
  EXPECT_TRUE(s.due(95));
  s.record(95, {});
  EXPECT_FALSE(s.due(95));
  EXPECT_FALSE(s.due(104));
  EXPECT_TRUE(s.due(105));
  s.record(105, {});
  s.record(130, {});
  // max_samples reached: the sampler stops being due, it never resizes.
  EXPECT_FALSE(s.due(1'000'000));
  const std::vector<TimeSample> samples = s.take();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].t, 90u);  // t is relative to the start time
  EXPECT_EQ(samples[1].t, 100u);
}

TEST(Utilization, MetricsExportedWithExactQueueIdentity) {
  const RunResult r = run_cell(PathKind::kPipette, /*traced=*/false);
  EXPECT_GT(r.metrics.value("util.sim_time_ns"), 0u);
  EXPECT_GT(r.metrics.value("util.nand_die.busy_ns"), 0u);
  EXPECT_GT(r.metrics.value("util.nand_die.ops"), 0u);
  EXPECT_GT(r.metrics.value("util.pcie_link.busy_ns"), 0u);
  // The Fubini/Little's cross-check holds exactly on the integer sim
  // clock: time in system (busy + wait) == the queue-depth integral.
  for (const char* res : {"nand_die", "nand_channel", "pcie_link"}) {
    const std::string n(res);
    EXPECT_EQ(r.metrics.value("util." + n + ".busy_ns") +
                  r.metrics.value("queue." + n + ".wait_ns"),
              r.metrics.value("queue." + n + ".depth_integral_ns"))
        << n;
  }
  // Occupancy accounts (ring levels) export no wait leg...
  EXPECT_TRUE(r.metrics.contains("util.info_ring.busy_ns"));
  EXPECT_FALSE(r.metrics.contains("queue.info_ring.wait_ns"));
  // ...and gated accounts stay absent: HMB build has no LMB link, no
  // prefetcher was configured.
  EXPECT_FALSE(r.metrics.contains("util.lmb_link.busy_ns"));
  EXPECT_FALSE(r.metrics.contains("util.prefetch_outstanding.busy_ns"));
}

TEST(Utilization, BottleneckReportRanksServiceResourcesFirst) {
  MetricsRegistry m;
  m.set("util.sim_time_ns", 1'000);
  // An occupancy account busier than every service account: non-empty 90%
  // of the time must still not out-rank a die that is serving 50%.
  m.set("util.ring.busy_ns", 900);
  m.set("util.ring.units", 1);
  m.set("queue.ring.depth_integral_ns", 900);
  m.set("queue.ring.depth_peak", 4);
  m.set("util.die.busy_ns", 500);
  m.set("util.die.units", 4);
  m.set("util.die.ops", 10);
  m.set("queue.die.wait_ns", 100);
  m.set("queue.die.depth_integral_ns", 600);
  m.set("queue.die.depth_peak", 3);
  m.set("util.link.busy_ns", 200);
  m.set("util.link.units", 1);
  m.set("util.link.ops", 4);
  m.set("queue.link.wait_ns", 0);
  m.set("queue.link.depth_integral_ns", 200);
  m.set("queue.link.depth_peak", 1);
  const BottleneckReport report = BottleneckReport::from_metrics(m);
  ASSERT_EQ(report.resources().size(), 3u);
  EXPECT_EQ(report.top(), "die");
  EXPECT_EQ(report.resources()[0].name, "die");
  EXPECT_EQ(report.resources()[1].name, "link");
  EXPECT_EQ(report.resources()[2].name, "ring");
  EXPECT_FALSE(report.resources()[2].has_waits);
  EXPECT_DOUBLE_EQ(report.resources()[0].busy_share(report.elapsed_ns()),
                   0.5);
  EXPECT_DOUBLE_EQ(report.max_littles_residual(), 0.0);  // 500+100 == 600
  EXPECT_FALSE(report.to_table().to_text().empty());
}

TEST(Fleet, UtilizationMetricsMergeAcrossJobs) {
  auto run_fleet = [](unsigned jobs) {
    FleetConfig fleet;
    fleet.shards = 4;
    fleet.machine = default_machine(PathKind::kPipette);
    FleetRunner runner(
        fleet,
        [](std::uint64_t s) -> std::unique_ptr<Workload> {
          SyntheticConfig sc = table1_workload('C', Distribution::kUniform, s);
          sc.file_size = 32 * kMiB;
          return std::make_unique<SyntheticWorkload>(sc);
        },
        kSeed);
    return runner.run(kRun, jobs);
  };
  const FleetResult serial = run_fleet(1);
  const FleetResult parallel = run_fleet(4);
  EXPECT_TRUE(deterministic_equal(serial, parallel));

  // Cumulative util legs sum across shards; peak depths take the max.
  std::uint64_t sim_time = 0, busy = 0, peak = 0;
  for (const RunResult& r : serial.shard_results) {
    sim_time += r.metrics.value("util.sim_time_ns");
    busy += r.metrics.value("util.nand_die.busy_ns");
    peak = std::max(peak, r.metrics.value("queue.nand_die.depth_peak"));
  }
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(serial.metrics.value("util.sim_time_ns"), sim_time);
  EXPECT_EQ(serial.metrics.value("util.nand_die.busy_ns"), busy);
  EXPECT_EQ(serial.metrics.value("queue.nand_die.depth_peak"), peak);

  // The merged registry still parses into a ranked report.
  const BottleneckReport report =
      BottleneckReport::from_metrics(serial.metrics);
  EXPECT_FALSE(report.top().empty());
}

TEST(Metrics, CollectedIntoRunResult) {
  const RunResult r = run_cell(PathKind::kPipette, /*traced=*/false);
  EXPECT_EQ(r.metrics.value("sim.events_executed"), r.events_executed);
  EXPECT_GT(r.metrics.value("ssd.commands"), 0u);
  EXPECT_GT(r.metrics.value("nand.page_reads"), 0u);
  EXPECT_GT(r.metrics.value("fgrc.promotions"), 0u);
  EXPECT_GT(r.metrics.value("hmb.info_peak_in_flight"), 0u);
  // Zero-rate fault plans draw nothing.
  EXPECT_EQ(r.metrics.value("faults.nand_fired"), 0u);
  // Per-class slab metrics exist for at least one item size.
  bool has_class = false;
  for (const auto& [k, v] : r.metrics.values())
    has_class = has_class || k.rfind("fgrc.class.", 0) == 0;
  EXPECT_TRUE(has_class);

  const RunResult block = run_cell(PathKind::kBlockIo, /*traced=*/false);
  EXPECT_GT(block.metrics.value("page_cache.fills"), 0u);
  EXPECT_FALSE(block.metrics.contains("fgrc.promotions"));
}

}  // namespace
}  // namespace pipette
