// Ablation A6: the device staging buffer (controller DRAM) — the modelling
// decision DESIGN.md §4b calls out. Sweeps the buffer size for the
// fine-grained paths and toggles whether block reads may use it, showing
// the two regimes: staging covers the working set (synthetic experiments,
// byte paths at microseconds) vs staging dwarfed by the dataset (real-app
// experiments, byte-path misses pay NAND tR).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {500'000, 500'000};
  print_header("Ablation A6 — device staging buffer (workload E, uniform)",
               scale);

  Table t({"read_buffer", "block uses it", "Pipette w/o cache us",
           "Block I/O us", "ratio"});
  for (std::uint64_t buffer_mib : {16ull, 64ull, 512ull}) {
    for (bool block_uses : {false, true}) {
      auto make_machine = [&](PathKind kind) {
        MachineConfig config = default_machine_for(args, kind);
        config.ssd.read_buffer_bytes = buffer_mib * kMiB;
        config.ssd.block_reads_use_buffer = block_uses;
        return config;
      };
      SyntheticWorkload wn(
          table1_workload('E', Distribution::kUniform, args.seed));
      const RunResult nocache = run_experiment(
          make_machine(PathKind::kPipetteNoCache), wn, scale.run());
      SyntheticWorkload wb(
          table1_workload('E', Distribution::kUniform, args.seed));
      const RunResult block =
          run_experiment(make_machine(PathKind::kBlockIo), wb, scale.run());
      t.add_row({std::to_string(buffer_mib) + " MiB",
                 block_uses ? "yes" : "no",
                 Table::fmt(nocache.mean_latency_us, 2),
                 Table::fmt(block.mean_latency_us, 2),
                 Table::fmt_times(block.mean_latency_us /
                                  nocache.mean_latency_us)});
      std::fprintf(stderr, "  buffer=%lluMiB block_uses=%d done\n",
                   static_cast<unsigned long long>(buffer_mib), block_uses);
    }
  }
  emit(t, args);
  return 0;
}
