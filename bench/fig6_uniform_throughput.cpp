// Reproduces Fig. 6: normalized throughput of the synthetic workloads A..E
// (Table 1) under the uniform random distribution, for all five systems.
//
// Paper's reading: Pipette's advantage grows with the small-read share —
// comparable to block I/O at A, a large multiple at E (the paper reports
// 31.2x on its hardware); the no-cache byte paths improve moderately; and
// 2B-SSD MMIO *degrades* as large reads grow because each 8-byte non-posted
// transaction is a full PCIe round trip.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Scale scale = Scale::from_args(args);
  print_header("Fig. 6 — normalized throughput, synthetic, uniform", scale);

  const auto matrix =
      run_synthetic_matrix(Distribution::kUniform, scale, args);
  emit(throughput_table(matrix), args);
  write_json_summary(args, "fig6_uniform_throughput", matrix);

  std::printf(
      "\nPaper reference (Fig. 6): Pipette ~1.0x at A rising to 31.2x at E;"
      "\nno-cache paths a small multiple at E; MMIO below 1x at A.\n");
  return 0;
}
