// Ablation A5 (extension): the fine-grained write path (CoinPurse-style)
// against buffered block writes, under the LinkBench mix with writes.
// Measures write latency, read throughput (warm cache preserved by
// in-place updates vs invalidation), and both directions of device traffic.
#include "bench_common.h"
#include "workload/linkbench.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 2'000'000};
  print_header("Ablation A5 — fine-grained writes vs block writes", scale);

  Table t({"Variant", "ops/s", "mean write us", "FGRC hit %",
           "dev reads MiB", "dev writes MiB", "in-place updates"});
  for (bool fine_writes : {false, true}) {
    LinkBenchConfig lc;
    lc.seed = args.seed;
    LinkBenchWorkload w(lc);
    MachineConfig config = realapp_machine_for(args, PathKind::kPipette);
    config.pipette.fine_writes = fine_writes;
    Machine machine(config, w.files());
    std::vector<int> fds;
    for (const FileSpec& f : w.files())
      fds.push_back(machine.vfs().open(f.name, machine.open_flags(true)));

    std::vector<std::uint8_t> buf(8192, 0x5A);
    auto issue = [&](const Request& rq) -> SimDuration {
      if (rq.is_write)
        return machine.vfs().pwrite(fds[rq.file_index], rq.offset,
                                    {buf.data(), rq.len});
      return machine.vfs().pread(fds[rq.file_index], rq.offset,
                                 {buf.data(), rq.len});
    };
    for (std::uint64_t i = 0; i < scale.warmup; ++i) issue(w.next());

    const SimTime t0 = machine.sim().now();
    const std::uint64_t reads0 = machine.ssd().stats().bytes_to_host;
    const std::uint64_t writes0 = machine.ssd().stats().bytes_from_host;
    const auto h0 = machine.pipette_path()->fgrc().stats().lookups;
    SimDuration write_time = 0;
    std::uint64_t writes = 0;
    for (std::uint64_t i = 0; i < scale.requests; ++i) {
      const Request rq = w.next();
      const SimDuration lat = issue(rq);
      if (rq.is_write) {
        write_time += lat;
        ++writes;
      }
    }
    const double elapsed_s =
        static_cast<double>(machine.sim().now() - t0) / 1e9;
    const auto& h1 = machine.pipette_path()->fgrc().stats().lookups;
    t.add_row(
        {fine_writes ? "fine writes (extension)" : "block writes (paper)",
         Table::fmt(static_cast<double>(scale.requests) / elapsed_s, 0),
         Table::fmt(to_us(write_time) / static_cast<double>(writes), 2),
         Table::fmt(100.0 * static_cast<double>(h1.hits() - h0.hits()) /
                        static_cast<double>(h1.accesses() - h0.accesses()),
                    1),
         Table::fmt(to_mib(machine.ssd().stats().bytes_to_host - reads0), 1),
         Table::fmt(to_mib(machine.ssd().stats().bytes_from_host - writes0),
                    1),
         std::to_string(
             machine.pipette_path()->pipette_stats().fgrc_inplace_updates)});
    std::fprintf(stderr, "  fine_writes=%d done\n", fine_writes);
  }
  emit(t, args);
  return 0;
}
