// Reproduces Table 3: I/O traffic (MB) of the synthetic workloads A..E
// under the zipfian distribution (alpha = 0.8).
//
// Paper's reading: block I/O's traffic collapses relative to the uniform
// case (748.3 vs 2973.6 MB — reuse plus read-ahead now pay off); the
// no-cache paths are unchanged (they always move exactly the requested
// bytes); Pipette is the lowest everywhere (33.3 MB at E).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Scale scale = Scale::from_args(args);
  print_header("Table 3 — I/O traffic (MiB), synthetic, zipf(0.8)", scale);

  const auto matrix =
      run_synthetic_matrix(Distribution::kZipf, scale, args);
  emit(traffic_table(matrix), args);
  write_json_summary(args, "table3_zipf_traffic", matrix);

  std::printf(
      "\nPaper reference (Table 3, 2.5M requests, MB):\n"
      "Block I/O           748.3  748.3  748.3  748.3  748.3\n"
      "2B-SSD/w-o cache   9765.6 8819.6 5035.4 1251.2  305.2\n"
      "Pipette             748.3  684.2  399.9  107.0   33.3\n");
  return 0;
}
