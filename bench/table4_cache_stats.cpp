// Reproduces Table 4: page cache (block I/O run) vs fine-grained read cache
// (Pipette run) — hit ratio and memory usage — on both real applications.
//
// Paper's reading: the FGRC reaches a far higher hit ratio (93.5% / 89.1%
// vs 64.5% / 66.5%) while using an order of magnitude less memory (91 MB vs
// 2382 MB; 70 MB vs 1112 MB), because it stores only the demanded bytes.
#include "bench_common.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 4'000'000};
  print_header("Table 4 — page cache vs fine-grained read cache", scale);

  Table t({"App", "System", "Hit ratio (%)", "Memory usage (MiB)"});
  for (int app = 0; app < 2; ++app) {
    const char* app_name = app == 0 ? "Recommender System" : "Social Graph";
    for (PathKind kind : {PathKind::kBlockIo, PathKind::kPipette}) {
      std::unique_ptr<Workload> workload;
      if (app == 0) {
        RecsysConfig rc;
        rc.seed = args.seed;
        workload = std::make_unique<RecsysWorkload>(rc);
      } else {
        LinkBenchConfig lc;
        lc.seed = args.seed;
        lc.read_only = true;  // same run shape as Fig. 9
        workload = std::make_unique<LinkBenchWorkload>(lc);
      }
      const RunResult r =
          run_experiment(realapp_machine_for(args, kind), *workload, scale.run());
      const bool pipette = kind == PathKind::kPipette;
      const double hit =
          pipette ? r.fgrc_hit_ratio : r.page_cache_hit_ratio;
      const std::uint64_t mem =
          pipette ? r.fgrc_bytes : r.page_cache_bytes;
      t.add_row({app_name, short_name(kind), Table::fmt(hit * 100.0, 2),
                 Table::fmt(to_mib(mem), 0)});
      std::fprintf(stderr, "  %-20s %-10s hit=%.2f%%\n", app_name,
                   short_name(kind), hit * 100.0);
    }
  }
  emit(t, args);

  std::printf(
      "\nPaper reference (Table 4):\n"
      "RecSys:   Block I/O 64.50%% / 2382 MB   Pipette 93.50%% / 91 MB\n"
      "SocGraph: Block I/O 66.50%% / 1112 MB   Pipette 89.09%% / 70 MB\n");
  return 0;
}
