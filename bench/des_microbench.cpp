// Microbenchmark of the discrete-event core: raw events/sec through the
// Simulator for each event-queue backend, plus the host cost of one fixed
// fig6-style experiment cell.
//
// Measurements, all written to BENCH_des.json (override with --json) so the
// DES hot-loop's throughput is tracked across PRs:
//  1. "uniform_ticks": lanes of self-rescheduling tick events with co-prime
//     periods — the pure schedule/pop/dispatch loop with realistic queue
//     occupancy and small captures that must stay inside the callback's
//     inline buffer (the bench asserts zero heap fallbacks).
//  2. "clustered": lanes sharing a handful of fixed latency-like periods
//     (a few hundred ns .. tens of us), the shape the SSD model actually
//     produces — many events land on identical timestamps, exercising the
//     batch run-drain and the wheel's slot locality.
//  Both run once per --queue backend (default: both), so the JSON carries a
//  direct heap-vs-wheel comparison on the same workload.
//  3. "cell": one Pipette / workload-E / uniform cell at a fixed request
//     count — the end-to-end host_seconds and events_executed the paper
//     benches actually pay per matrix cell.
//
// Before any timing, a differential selfcheck replays one pseudo-random
// event script (zero deltas, clustered deltas, far-future deltas that spill
// past the wheel horizon, pushes from inside callbacks) through a heap
// Simulator and a wheel Simulator and requires the executed (id, when)
// sequences to be identical. A mismatch — or any InlineFunction heap
// fallback — makes the bench exit nonzero, which the perf_smoke ctest turns
// into a failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/inline_function.h"
#include "pipette/detector.h"

namespace {

using namespace pipette;

// One lane of the raw microbench: an event that re-arms itself until its
// budget runs out. Capturing [this] keeps the closure at pointer size.
struct Ticker {
  Simulator* sim;
  std::uint64_t remaining = 0;
  SimDuration period = 0;

  void arm() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule(period, [this] { arm(); });
  }
};

struct RawResult {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t heap_fallbacks = 0;
  std::uint64_t overflow_pushes = 0;
  std::size_t peak_queue_size = 0;
};

// The two raw workload shapes. `clustered` uses a handful of shared
// latency-like periods, so each timestamp hosts a run of ~16 events — the
// regime the batch drain and the wheel are built for.
constexpr SimDuration kClusteredPeriods[] = {480, 3'200, 20'000, 65'000};

RawResult measure_raw(QueueKind queue, bool clustered,
                      std::uint64_t total_events) {
  constexpr std::uint32_t kLanes = 64;
  Simulator sim(queue);
  std::vector<Ticker> lanes(kLanes);
  for (std::uint32_t i = 0; i < kLanes; ++i) {
    lanes[i].sim = &sim;
    lanes[i].remaining = total_events / kLanes;
    // Uniform: co-prime-ish periods give the queue a realistic mix of
    // orderings (with duplicate timestamps sprinkled in).
    lanes[i].period = clustered ? kClusteredPeriods[i % 4] : 1 + (i % 7);
  }
  const std::uint64_t heap0 = inline_function_heap_allocations();
  const auto t0 = std::chrono::steady_clock::now();
  for (Ticker& lane : lanes) lane.arm();
  sim.run_all();
  RawResult r;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.events = sim.events_executed();
  r.events_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.events) / r.seconds : 0.0;
  r.heap_fallbacks = inline_function_heap_allocations() - heap0;
  r.overflow_pushes = sim.queue_overflow_pushes();
  r.peak_queue_size = sim.queue_peak_size();
  return r;
}

// Differential order check: one deterministic pseudo-random script of
// self-propagating events, replayed on both backends. Each executed event
// appends (id, now) to its trace; callbacks push 0..2 children with deltas
// spanning zero (same-timestamp runs), small clustered values, and
// far-future jumps beyond the wheel's 2^24 ns horizon (overflow spill and
// refill). The drain order contract says the traces must match exactly.
struct ScriptState {
  Simulator* sim;
  std::vector<std::pair<std::uint64_t, SimTime>>* trace;
  std::uint64_t rng;
  std::uint64_t next_id = 0;
  std::uint64_t budget = 0;

  std::uint64_t rand() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  }

  void spawn() {
    const std::uint64_t id = next_id++;
    static constexpr SimDuration kDeltas[] = {0,      0,         1,
                                              480,    3'200,     65'000,
                                              99'999, 20'000'000, 40'000'000};
    const SimDuration delta = kDeltas[rand() % (sizeof kDeltas /
                                                sizeof kDeltas[0])];
    sim->schedule(delta, [this, id] {
      trace->emplace_back(id, sim->now());
      if (budget == 0) return;
      const std::uint64_t kids = rand() % 3;
      for (std::uint64_t k = 0; k < kids && budget > 0; ++k) {
        --budget;
        spawn();
      }
    });
  }
};

bool selfcheck_order(std::uint64_t events) {
  std::vector<std::pair<std::uint64_t, SimTime>> traces[2];
  const QueueKind kinds[2] = {QueueKind::kHeap, QueueKind::kWheel};
  for (int v = 0; v < 2; ++v) {
    Simulator sim(kinds[v]);
    ScriptState s{&sim, &traces[v], /*rng=*/0x9e3779b97f4a7c15ull, 0, events};
    for (int seedlings = 0; seedlings < 64 && s.budget > 0; ++seedlings) {
      --s.budget;
      s.spawn();
    }
    sim.run_all();
  }
  if (traces[0] == traces[1]) return true;
  std::fprintf(stderr,
               "pipette: heap/wheel drain order DIVERGED (%zu vs %zu events",
               traces[0].size(), traces[1].size());
  const std::size_t n = std::min(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < n; ++i) {
    if (traces[0][i] == traces[1][i]) continue;
    std::fprintf(stderr,
                 "; first mismatch at %zu: heap id=%llu t=%llu, wheel "
                 "id=%llu t=%llu",
                 i, static_cast<unsigned long long>(traces[0][i].first),
                 static_cast<unsigned long long>(traces[0][i].second),
                 static_cast<unsigned long long>(traces[1][i].first),
                 static_cast<unsigned long long>(traces[1][i].second));
    break;
  }
  std::fprintf(stderr, ")\n");
  return false;
}

// Detector hot path: record() folds each demanded range into the per-page
// list with an in-place insertion-merge, so replaying a pattern the
// detector has already absorbed must not grow any vector or insert any
// page. The same deterministic script runs twice over one detector; the
// second (steady-state) pass is timed and must add zero allocation events
// — that's the tripwire for anyone reintroducing a per-access re-sort or
// scratch vector.
struct DetectorResult {
  std::uint64_t records = 0;           // record() calls per pass
  double warm_seconds = 0.0;           // steady-state pass host time
  double records_per_sec = 0.0;
  std::uint64_t steady_allocation_events = 0;  // must be 0
};

DetectorResult measure_detector(std::uint64_t records) {
  FineGrainedAccessDetector det;
  constexpr std::uint64_t kPages = 512;
  DetectorResult r;
  r.records = records;
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t rng = 0x243f6a8885a308d3ull;  // same script both passes
    auto next = [&rng] {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return rng >> 33;
    };
    const std::uint64_t before = det.allocation_events();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < records; ++i) {
      const std::uint64_t page = next() % kPages;
      const std::uint32_t offset =
          static_cast<std::uint32_t>(next() % 31) * 128;
      const std::uint32_t len = 64 + static_cast<std::uint32_t>(next() % 3) * 64;
      det.record(/*file=*/1, page, offset, len);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (pass == 1) {
      r.warm_seconds = seconds;
      r.records_per_sec =
          seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
      r.steady_allocation_events = det.allocation_events() - before;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  std::uint64_t raw_events = 2'000'000;
  if (args.quick) raw_events = 200'000;
  if (args.requests != 0) raw_events = args.requests;

  std::vector<QueueKind> kinds;
  if (args.queue == "heap")
    kinds = {QueueKind::kHeap};
  else if (args.queue == "wheel")
    kinds = {QueueKind::kWheel};
  else
    kinds = {QueueKind::kHeap, QueueKind::kWheel};

  std::printf("=== DES microbench — event core throughput ===\n");

  const bool order_ok = selfcheck_order(std::min<std::uint64_t>(
      raw_events, 200'000));
  std::printf("order selfcheck: %s (heap vs wheel, randomized script)\n",
              order_ok ? "ok" : "FAILED");

  struct Variant {
    QueueKind queue;
    const char* workload;
    RawResult result;
  };
  std::vector<Variant> variants;
  std::uint64_t total_fallbacks = 0;
  for (QueueKind kind : kinds) {
    for (bool clustered : {false, true}) {
      const char* workload = clustered ? "clustered" : "uniform_ticks";
      RawResult r = measure_raw(kind, clustered, raw_events);
      total_fallbacks += r.heap_fallbacks;
      std::printf(
          "%-14s : %-13s %llu events in %.3fs -> %.0f events/sec "
          "(peak queue %zu, %llu overflow, %llu heap-fallback cbs)\n",
          to_string(kind), workload,
          static_cast<unsigned long long>(r.events), r.seconds,
          r.events_per_sec, r.peak_queue_size,
          static_cast<unsigned long long>(r.overflow_pushes),
          static_cast<unsigned long long>(r.heap_fallbacks));
      variants.push_back({kind, workload, r});
    }
  }
  if (kinds.size() == 2) {
    for (const char* workload : {"uniform_ticks", "clustered"}) {
      double heap_rate = 0.0, wheel_rate = 0.0;
      for (const Variant& v : variants) {
        if (std::string_view(v.workload) != workload) continue;
        (v.queue == QueueKind::kHeap ? heap_rate : wheel_rate) =
            v.result.events_per_sec;
      }
      if (heap_rate > 0.0)
        std::printf("speedup        : %-13s wheel/heap = %.2fx\n", workload,
                    wheel_rate / heap_rate);
    }
  }
  if (total_fallbacks != 0) {
    std::fprintf(stderr,
                 "pipette: WARNING — raw loop callbacks fell back to the "
                 "heap; the SBO regressed\n");
  }

  const DetectorResult det = measure_detector(
      std::min<std::uint64_t>(raw_events, 1'000'000));
  const bool detector_ok = det.steady_allocation_events == 0;
  std::printf(
      "detector       : %llu warm record()s in %.3fs -> %.0f records/sec "
      "(%llu steady-state allocation events%s)\n",
      static_cast<unsigned long long>(det.records), det.warm_seconds,
      det.records_per_sec,
      static_cast<unsigned long long>(det.steady_allocation_events),
      detector_ok ? "" : " — REGRESSION");

  // Fixed cell (never rescaled by --quick/--requests: the point is a number
  // comparable across PRs). Honors --queue wheel; heap otherwise.
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload workload(sc);
  const RunConfig run{20'000, 10'000};
  const RunResult cell = run_experiment(
      default_machine_for(args, PathKind::kPipette), workload, run);
  const double cell_events_per_sec =
      cell.host_seconds > 0.0
          ? static_cast<double>(cell.events_executed) / cell.host_seconds
          : 0.0;
  std::printf(
      "fixed cell     : Pipette/E/uniform (%s), %llu+%llu requests -> "
      "%.3fs host, %llu events (%.0f events/sec)\n",
      to_string(queue_kind_of(args)),
      static_cast<unsigned long long>(run.requests),
      static_cast<unsigned long long>(run.warmup), cell.host_seconds,
      static_cast<unsigned long long>(cell.events_executed),
      cell_events_per_sec);

  const std::string json_path =
      args.json_path.empty() ? "BENCH_des.json" : args.json_path;
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "des_microbench");
  w.kv("raw_events", raw_events);
  w.kv("order_selfcheck_ok", order_ok);
  w.key("variants");
  w.begin_array();
  for (const Variant& v : variants) {
    w.begin_object();
    w.kv("queue", to_string(v.queue));
    w.kv("workload", v.workload);
    w.kv("events", v.result.events);
    w.kv("host_seconds", v.result.seconds, 6);
    w.kv("events_per_sec", v.result.events_per_sec, 0);
    w.kv("overflow_pushes", v.result.overflow_pushes);
    w.kv("peak_queue_size", v.result.peak_queue_size);
    w.kv("heap_fallback_callbacks", v.result.heap_fallbacks);
    w.end_object();
  }
  w.end_array();
  w.key("detector");
  w.begin_object();
  w.kv("records", det.records);
  w.kv("warm_seconds", det.warm_seconds, 6);
  w.kv("records_per_sec", det.records_per_sec, 0);
  w.kv("steady_allocation_events", det.steady_allocation_events);
  w.end_object();
  w.key("cell");
  w.begin_object();
  w.kv("system", "Pipette");
  w.kv("workload", "E");
  w.kv("queue", to_string(queue_kind_of(args)));
  w.kv("requests", run.requests);
  w.kv("warmup", run.warmup);
  w.kv("host_seconds", cell.host_seconds, 6);
  w.kv("events_executed", cell.events_executed);
  w.kv("events_per_sec", cell_events_per_sec, 0);
  json_metrics(w, "metrics", cell.metrics);
  w.end_object();
  w.end_object();
  if (!w.write_file(json_path)) return 1;
  std::printf("summary        : %s\n", json_path.c_str());
  return (total_fallbacks == 0 && order_ok && detector_ok) ? 0 : 1;
}
