// Microbenchmark of the discrete-event core: raw events/sec through the
// Simulator, plus the host cost of one fixed fig6-style experiment cell.
//
// Two measurements, both written to BENCH_des.json (override with --json)
// so the DES hot-loop's throughput is tracked across PRs:
//  1. "raw": a lane of self-rescheduling tick events per concurrent timer —
//     the pure schedule/pop/dispatch loop with a realistic (non-trivial)
//     heap occupancy and small captures that must stay inside the
//     callback's inline buffer (the bench asserts zero heap fallbacks).
//  2. "cell": one Pipette / workload-E / uniform cell at a fixed request
//     count — the end-to-end host_seconds and events_executed the paper
//     benches actually pay per matrix cell.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/inline_function.h"

namespace {

using namespace pipette;

// One lane of the raw microbench: an event that re-arms itself until its
// budget runs out. Capturing [this] keeps the closure at pointer size.
struct Ticker {
  Simulator* sim;
  std::uint64_t remaining = 0;
  SimDuration period = 0;

  void arm() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule(period, [this] { arm(); });
  }
};

double measure_raw_events_per_sec(std::uint64_t total_events,
                                  std::uint64_t* heap_fallbacks,
                                  double* seconds_out) {
  constexpr std::uint32_t kLanes = 64;
  Simulator sim;
  std::vector<Ticker> lanes(kLanes);
  for (std::uint32_t i = 0; i < kLanes; ++i) {
    lanes[i].sim = &sim;
    lanes[i].remaining = total_events / kLanes;
    // Co-prime-ish periods give the queue a realistic mix of orderings
    // (plenty of duplicate timestamps included).
    lanes[i].period = 1 + (i % 7);
  }
  const std::uint64_t heap0 = inline_function_heap_allocations();
  const auto t0 = std::chrono::steady_clock::now();
  for (Ticker& lane : lanes) lane.arm();
  sim.run_all();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *heap_fallbacks = inline_function_heap_allocations() - heap0;
  *seconds_out = seconds;
  return seconds > 0.0
             ? static_cast<double>(sim.events_executed()) / seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);

  std::uint64_t raw_events = 2'000'000;
  if (args.quick) raw_events = 200'000;
  if (args.requests != 0) raw_events = args.requests;

  std::printf("=== DES microbench — event core throughput ===\n");

  std::uint64_t heap_fallbacks = 0;
  double raw_seconds = 0.0;
  const double events_per_sec =
      measure_raw_events_per_sec(raw_events, &heap_fallbacks, &raw_seconds);
  std::printf(
      "raw event loop : %llu events in %.3fs -> %.0f events/sec "
      "(%llu heap-fallback callbacks)\n",
      static_cast<unsigned long long>(raw_events), raw_seconds,
      events_per_sec, static_cast<unsigned long long>(heap_fallbacks));
  if (heap_fallbacks != 0) {
    std::fprintf(stderr,
                 "pipette: WARNING — raw loop callbacks fell back to the "
                 "heap; the SBO regressed\n");
  }

  // Fixed cell (never rescaled by --quick/--requests: the point is a number
  // comparable across PRs).
  SyntheticConfig sc = table1_workload('E', Distribution::kUniform, 42);
  sc.file_size = 8 * kMiB;
  SyntheticWorkload workload(sc);
  const RunConfig run{20'000, 10'000};
  const RunResult cell =
      run_experiment(default_machine(PathKind::kPipette), workload, run);
  const double cell_events_per_sec =
      cell.host_seconds > 0.0
          ? static_cast<double>(cell.events_executed) / cell.host_seconds
          : 0.0;
  std::printf(
      "fixed cell     : Pipette/E/uniform, %llu+%llu requests -> %.3fs "
      "host, %llu events (%.0f events/sec)\n",
      static_cast<unsigned long long>(run.requests),
      static_cast<unsigned long long>(run.warmup), cell.host_seconds,
      static_cast<unsigned long long>(cell.events_executed),
      cell_events_per_sec);

  const std::string json_path =
      args.json_path.empty() ? "BENCH_des.json" : args.json_path;
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "des_microbench");
  w.kv("raw_events", raw_events);
  w.kv("raw_host_seconds", raw_seconds, 6);
  w.kv("raw_events_per_sec", events_per_sec, 0);
  w.kv("raw_heap_fallback_callbacks", heap_fallbacks);
  w.key("cell");
  w.begin_object();
  w.kv("system", "Pipette");
  w.kv("workload", "E");
  w.kv("requests", run.requests);
  w.kv("warmup", run.warmup);
  w.kv("host_seconds", cell.host_seconds, 6);
  w.kv("events_executed", cell.events_executed);
  w.kv("events_per_sec", cell_events_per_sec, 0);
  json_metrics(w, "metrics", cell.metrics);
  w.end_object();
  w.end_object();
  if (!w.write_file(json_path)) return 1;
  std::printf("summary        : %s\n", json_path.c_str());
  return heap_fallbacks == 0 ? 0 : 1;
}
