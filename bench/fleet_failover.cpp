// Fleet failover: what replica groups buy when a primary dies mid-run.
//
// A 4-group zipf fleet (Table 1 'C', hash partitioner) loses the primary of
// group 0 for the middle half of the measured window. The matrix contrasts:
//
//  * R=1 baseline   — no faults; the pre-replica fleet, for reference tails.
//  * R=1 cliff      — the same outage with nobody to fail over to: the
//    window's reads are unserved and availability falls off a cliff
//    (~ group share x window share below 1).
//  * R=2 failover   — a warm standby (25% shadow reads) absorbs the window:
//    availability recovers to 1.0 at the price of a per-read detection
//    penalty + client retry, visible as a bounded p999 bump.
//  * R=3 quorum k=2 — every read fans out to all up copies and completes on
//    the 2nd-fastest: the outage costs no detection latency at all, tails
//    stay flat through the window.
//  * R=2 reshard    — failover config plus a live migration of the zipf
//    head to another group mid-measurement: dual reads warm the target
//    until the watermark, then the range cuts over. The timeline sampler
//    on the target's primary shows the warm/dual write traffic arriving.
//
// What to look for: the cliff cell's availability column vs everything
// else, and p999 staying within a small multiple of the baseline for R>=2
// while R=1 simply drops the reads. fleet.replica_stale_reads is asserted 0
// in every cell — a recovering copy is never read before catch-up.
//
// --selfcheck asserts those acceptance properties (R>=2 availability >=
// 99.9%, bounded p999, the R=1 cliff, migration cutover, zero stale reads,
// jobs-1 == jobs-N determinism) and exits nonzero on violation. --json
// writes the BENCH_fleet.json-style summary.
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct FailoverCell {
  const char* name;
  std::size_t replicas;
  ReadPolicy policy;
  bool outage;
  bool migrate;
  FleetResult result;
};

constexpr std::size_t kGroups = 4;

void write_failover_json(const BenchArgs& args, const Scale& scale,
                         const std::vector<FailoverCell>& cells) {
  if (args.json_path.empty()) return;
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "fleet_failover");
  w.kv("jobs", args.jobs);
  w.kv("groups", kGroups);
  w.kv("requests", scale.requests);
  w.key("cells");
  w.begin_array();
  for (const FailoverCell& c : cells) {
    w.begin_object();
    w.kv("cell", c.name);
    w.kv("replicas", c.replicas);
    w.kv("policy", to_string(c.policy));
    w.kv("outage", c.outage);
    w.kv("availability", c.result.availability(), 6);
    w.kv("failed_reads", c.result.failed_reads);
    w.kv("p50_us", c.result.p50_latency_us, 6);
    w.kv("p99_us", c.result.p99_latency_us, 6);
    w.kv("p999_us", c.result.p999_latency_us, 6);
    w.kv("machines", c.result.shard_results.size());
    w.kv("host_seconds", c.result.host_seconds, 6);
    w.kv("events_executed", c.result.events_executed);
    json_metrics(w, "metrics", c.result.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn&) {
        if (std::strcmp(flag, "--selfcheck") == 0) {
          selfcheck = true;
          return true;
        }
        return false;
      },
      "  --selfcheck  assert the failover acceptance properties (R>=2\n"
      "               availability >= 99.9%, bounded p999 vs the R=1\n"
      "               cliff, migration cutover, zero stale reads,\n"
      "               jobs-1 == jobs-N) and exit nonzero on violation\n");
  // Replica cells multiply device work by R, so the default scale is
  // lighter than the single-machine benches'; --quick and --requests
  // rescale as usual.
  Scale scale = Scale::from_args(args);
  if (!args.quick && args.requests == 0) scale = {200'000, 100'000};
  print_header("Fleet failover — Table 1 'C' zipf, replica groups", scale);
  std::printf("(groups: %zu, hash partitioner; outage: group 0 primary down "
              "for the middle half of the measured window)\n\n",
              kGroups);

  // The outage window, on the master-stream clock: the middle half of the
  // measured phase.
  const std::uint64_t fail_at = scale.warmup + scale.requests / 4;
  const std::uint64_t recover_at = scale.warmup + 3 * scale.requests / 4;

  auto make_runner = [&](std::size_t replicas, ReadPolicy policy, bool outage,
                         bool migrate) {
    FleetConfig fleet;
    fleet.shards = kGroups;
    fleet.machine = default_machine_for(args, PathKind::kPipette);
    fleet.replication.replicas = replicas;
    fleet.replication.read_policy = policy;
    if (policy == ReadPolicy::kQuorum) fleet.replication.quorum_k = 2;
    if (replicas > 1 && policy == ReadPolicy::kFailover)
      fleet.replication.shadow_read_fraction = 0.25;
    if (outage) fleet.faults.outages = {{/*shard=*/0, fail_at, recover_at,
                                         /*replica=*/0}};
    if (migrate) {
      // Move the zipf head (the hottest 1/16th of the keyspace) off its
      // hash-assigned groups onto group 3, starting mid-measurement.
      MigrationPlan& mig = fleet.replication.migration;
      mig.target = 3;
      mig.key_lo = 0;
      mig.key_hi = 4 * kMiB;
      mig.start_at = scale.warmup + scale.requests / 4;
      mig.warm_reads = 256;
    }
    return FleetRunner(
        fleet,
        [](std::uint64_t s) -> std::unique_ptr<Workload> {
          return std::make_unique<SyntheticWorkload>(
              table1_workload('C', Distribution::kZipf, s));
        },
        args.seed);
  };

  std::vector<FailoverCell> cells = {
      {"R=1 baseline", 1, ReadPolicy::kPrimaryOnly, false, false, {}},
      {"R=1 cliff", 1, ReadPolicy::kPrimaryOnly, true, false, {}},
      {"R=2 failover", 2, ReadPolicy::kFailover, true, false, {}},
      {"R=3 quorum k=2", 3, ReadPolicy::kQuorum, true, false, {}},
      {"R=2 reshard", 2, ReadPolicy::kFailover, true, true, {}},
  };
  RunConfig rc = scale.run();
  for (FailoverCell& c : cells) {
    RunConfig cell_rc = rc;
    if (c.migrate) cell_rc.timeline.interval = 20 * kMs;
    FleetRunner runner = make_runner(c.replicas, c.policy, c.outage,
                                     c.migrate);
    c.result = runner.run(cell_rc, args.jobs);
    std::fprintf(stderr,
                 "  %-16s done (avail %.4f, p999 %.2f us, %.1fs host)\n",
                 c.name, c.result.availability(), c.result.p999_latency_us,
                 c.result.host_seconds);
  }

  Table t({"Cell", "Machines", "Avail", "p50 us", "p99 us", "p999 us",
           "Failover", "Unserved", "Stale"});
  for (const FailoverCell& c : cells) {
    const FleetResult& r = c.result;
    t.add_row({c.name, std::to_string(r.shard_results.size()),
               Table::fmt(r.availability(), 4),
               Table::fmt(r.p50_latency_us, 2), Table::fmt(r.p99_latency_us, 2),
               Table::fmt(r.p999_latency_us, 2),
               std::to_string(r.metrics.value("fleet.replica_failover_reads")),
               // == fleet.replica_unserved_reads on the replica path; the
               // legacy R=1 cells report the same thing as failed reads.
               std::to_string(r.failed_reads),
               std::to_string(r.metrics.value("fleet.replica_stale_reads"))});
  }
  emit(t, args);

  // Migration visibility: the target group's primary sees the warm/dual
  // traffic arrive in its sim-time series (reads and — via dual writes —
  // writes both climb after the migration starts).
  {
    const FleetResult& reshard = cells[4].result;
    const std::size_t target_primary = 3 * cells[4].replicas;  // group 3
    const auto& timeline = reshard.shard_results[target_primary].timeline;
    std::printf("\n-- R=2 reshard: migration target (group 3 primary) "
                "timeline --\n");
    std::printf("cutover at master index %llu (dual reads %llu, warm reads "
                "%llu, dual writes %llu)\n",
                static_cast<unsigned long long>(
                    reshard.metrics.value("fleet.migration_cutover_index")),
                static_cast<unsigned long long>(
                    reshard.metrics.value("fleet.migration_dual_reads")),
                static_cast<unsigned long long>(
                    reshard.metrics.value("fleet.migration_warm_reads")),
                static_cast<unsigned long long>(
                    reshard.metrics.value("fleet.migration_dual_writes")));
    if (!timeline.empty()) {
      const TimeSample& last = timeline.back();
      std::printf("%zu samples; final: %llu reads, %llu writes on the "
                  "target\n",
                  timeline.size(),
                  static_cast<unsigned long long>(last.reads),
                  static_cast<unsigned long long>(last.writes));
    }
  }

  write_failover_json(args, scale, cells);

  if (selfcheck) {
    bool ok = true;
    auto fail = [&](const char* msg) {
      std::fprintf(stderr, "pipette: selfcheck: %s\n", msg);
      ok = false;
    };
    const FleetResult& baseline = cells[0].result;
    const FleetResult& cliff = cells[1].result;
    const FleetResult& failover = cells[2].result;
    const FleetResult& quorum = cells[3].result;
    const FleetResult& reshard = cells[4].result;

    // (a) R=1 really is a cliff: the outage window's reads are lost.
    if (cliff.availability() >= 0.999) fail("R=1 outage shows no cliff");
    if (cliff.failed_reads == 0) fail("R=1 outage dropped no reads");
    // (b) R=2 failover holds the availability target.
    if (failover.availability() < 0.999)
      fail("R=2 failover availability below 99.9%");
    if (failover.failed_reads != 0) fail("R=2 failover failed reads");
    if (failover.metrics.value("fleet.replica_failover_reads") == 0)
      fail("R=2 failover cell never failed over");
    // (c) The failover tail is bounded: p999 within a small multiple of
    // the healthy baseline (the cliff, by contrast, *drops* its window).
    if (baseline.p999_latency_us > 0.0 &&
        failover.p999_latency_us > 20.0 * baseline.p999_latency_us)
      fail("R=2 failover p999 unbounded vs baseline");
    // (d) Quorum sails through the outage without detection penalty.
    if (quorum.availability() != 1.0) fail("R=3 quorum availability < 1");
    if (quorum.metrics.value("fleet.replica_quorum_shortfall") != 0)
      fail("R=3 quorum fell below k");
    if (quorum.metrics.value("fleet.replica_failover_penalty_ns") != 0)
      fail("R=3 quorum paid detection latency");
    // (e) The migration cut over and never served a stale read.
    if (reshard.metrics.value("fleet.migration_cut_over") != 1)
      fail("reshard cell never cut over");
    if (reshard.metrics.value("fleet.migration_migrated_reads") == 0)
      fail("reshard cell served nothing post-cutover");
    // (f) The stale-read invariant holds in every cell.
    for (const FailoverCell& c : cells) {
      if (c.result.metrics.value("fleet.replica_stale_reads") != 0)
        fail("stale reads observed");
    }
    // (g) Worker count never leaks into results.
    {
      RunConfig check_rc = rc;
      check_rc.timeline.interval = 20 * kMs;
      FleetRunner runner = make_runner(2, ReadPolicy::kFailover, true, true);
      const FleetResult serial = runner.run(check_rc, /*jobs=*/1);
      const FleetResult parallel = runner.run(check_rc, /*jobs=*/0);
      if (!deterministic_equal(serial, parallel))
        fail("jobs-1 != jobs-N under failover + migration");
      if (!deterministic_equal(serial, reshard))
        fail("reshard cell not reproducible");
    }
    if (!ok) return 1;
    std::printf("\nselfcheck: all failover acceptance properties hold\n");
  }
  return 0;
}
