// Fault sweep: the five systems under increasing device fault rates.
//
// Each column injects a per-sensing-pass NAND read error rate r, an HMB DMA
// fault rate r on the fine-grained engine, and a lost-completion rate r/10,
// over the mixed synthetic workload (Table 1 'C', uniform offsets).
//
// What to look for:
//  * Availability: the block path loses exactly the terminal-ECC-failure
//    fraction; Pipette additionally rides out every HMB fault by degrading
//    to the block route, so its availability matches block I/O while its
//    degraded-read column grows with r.
//  * Mean latency: retry backoff and degraded (double-trip) reads thicken
//    the tail well before availability visibly moves — the usual fleet
//    early-warning signal.
//  * The zero-rate column is the control: it must match the fault-free
//    benches bit for bit (the golden-trace test pins the same property).
//
// The whole matrix also asserts the allocation-free hot path: if any
// fault-path callback outgrows its InlineFunction inline buffer the bench
// exits nonzero, which `ctest` (fault_smoke) turns into a failure.
#include <cinttypes>
#include <vector>

#include "bench_common.h"
#include "common/inline_function.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

constexpr double kRates[] = {0.0, 1e-4, 1e-3, 1e-2};

struct FaultCell {
  double rate;
  PathKind kind;
  RunResult result;
};

MachineConfig faulty_machine(const BenchArgs& args, PathKind kind,
                             double rate) {
  MachineConfig m = default_machine_for(args, kind);
  m.ssd.faults.nand.read_error_rate = rate;
  m.ssd.faults.hmb.dma_fault_rate = rate;
  m.ssd.faults.hmb.drop_rate = rate / 10.0;
  return m;
}

void write_fault_json(const BenchArgs& args,
                      const std::vector<FaultCell>& cells) {
  if (args.json_path.empty()) return;
  double total_seconds = 0.0;
  std::uint64_t total_events = 0;
  for (const FaultCell& c : cells) {
    total_seconds += c.result.host_seconds;
    total_events += c.result.events_executed;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "fault_sweep");
  w.kv("jobs", args.jobs);
  w.kv("total_host_seconds", total_seconds, 6);
  w.kv("total_events_executed", total_events);
  w.kv("events_per_sec",
       total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds
                           : 0.0,
       0);
  w.key("cells");
  w.begin_array();
  for (const FaultCell& c : cells) {
    w.begin_object();
    w.kv("rate", c.rate, 10);
    w.kv("system", short_name(c.kind));
    w.kv("availability", c.result.availability(), 6);
    w.kv("retries", c.result.retries);
    w.kv("failed_reads", c.result.failed_reads);
    w.kv("degraded_reads", c.result.degraded_reads);
    w.kv("mean_latency_us", c.result.mean_latency_us, 6);
    w.kv("p99_latency_us", c.result.p99_latency_us, 6);
    w.kv("host_seconds", c.result.host_seconds, 6);
    w.kv("events_executed", c.result.events_executed);
    json_metrics(w, "metrics", c.result.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

std::string rate_label(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "r=%g", rate);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Scale scale = Scale::from_args(args);
  print_header("Fault sweep — Table 1 'C', device fault rates", scale);
  std::printf(
      "(per cell: NAND read-error rate r, HMB DMA-fault rate r, "
      "completion-drop rate r/10)\n\n");

  const std::uint64_t heap0 = inline_function_heap_allocations();

  std::vector<ExperimentCell> cells;
  std::vector<FaultCell> labels;
  for (double rate : kRates) {
    for (PathKind kind : kAllPaths) {
      const std::uint64_t seed = args.seed;
      cells.push_back({faulty_machine(args, kind, rate),
                       [seed]() -> std::unique_ptr<Workload> {
                         return std::make_unique<SyntheticWorkload>(
                             table1_workload('C', Distribution::kUniform,
                                             seed));
                       },
                       scale.run()});
      labels.push_back({rate, kind, {}});
    }
  }

  const std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs,
      [&labels](std::size_t i, const RunResult& r) {
        std::fprintf(stderr,
                     "  [%s] %-18s done (avail %.4f, %" PRIu64
                     " retries, %" PRIu64 " failed, %" PRIu64
                     " degraded, %.1fs host)\n",
                     rate_label(labels[i].rate).c_str(),
                     short_name(labels[i].kind), r.availability(), r.retries,
                     r.failed_reads, r.degraded_reads, r.host_seconds);
      });
  for (std::size_t i = 0; i < results.size(); ++i)
    labels[i].result = results[i];

  std::vector<std::string> headers{"System"};
  for (double rate : kRates) headers.push_back(rate_label(rate));

  Table avail(headers);
  Table latency(headers);
  Table degraded(headers);
  for (PathKind kind : kAllPaths) {
    std::vector<std::string> avail_row{short_name(kind)};
    std::vector<std::string> lat_row{short_name(kind)};
    std::vector<std::string> deg_row{short_name(kind)};
    for (const FaultCell& c : labels) {
      if (c.kind != kind) continue;
      avail_row.push_back(Table::fmt(c.result.availability() * 100.0, 4));
      lat_row.push_back(Table::fmt(c.result.mean_latency_us, 2));
      deg_row.push_back(std::to_string(c.result.degraded_reads));
    }
    avail.add_row(std::move(avail_row));
    latency.add_row(std::move(lat_row));
    degraded.add_row(std::move(deg_row));
  }

  std::printf("-- availability (%% of measured reads served) --\n");
  emit(avail, args);
  std::printf("\n-- mean read latency (us) --\n");
  std::fputs(latency.to_text().c_str(), stdout);
  std::printf("\n-- degraded reads (served via block-path fallback) --\n");
  std::fputs(degraded.to_text().c_str(), stdout);

  write_fault_json(args, labels);

  const std::uint64_t heap_delta =
      inline_function_heap_allocations() - heap0;
  if (heap_delta != 0) {
    std::fprintf(stderr,
                 "fault_sweep: %" PRIu64
                 " InlineFunction heap fallbacks — a fault-path callback "
                 "outgrew its inline buffer\n",
                 heap_delta);
    return 1;
  }
  return 0;
}
