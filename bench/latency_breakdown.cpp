// Latency decomposition: where a read's time goes, per stage, for all five
// systems over the mixed synthetic workload (Table 1 'C', uniform offsets).
//
// Each system runs with the request tracer enabled, which populates one
// latency histogram per pipeline stage (submit, page cache, FGRC lookup,
// queue, FTL, NAND sense/retry, bus, PCIe/HMB DMA, host copy, ...) without
// perturbing the simulation — tracing on/off is bit-identical, a property
// obs_test pins against the golden trace.
//
// What to look for:
//  * Block I/O pays nand_sense + pcie_dma on every miss and amortises them
//    through the page cache; its host_copy stage is page-sized.
//  * 2B-SSD eliminates the queue/FTL block stack but pays host_copy (MMIO
//    pulls) per request.
//  * Pipette's hit path is host-only (fgrc_lookup + host_copy); its miss
//    path shows the Info-ring handoff plus hmb_dma instead of pcie_dma.
//
// Extra flags on top of the common set:
//   --trace PATH    write a Chrome-trace JSON (chrome://tracing, Perfetto)
//                   with one process per system and one track per stage.
//   --selfcheck     re-read every JSON artefact written and fail unless it
//                   parses (used by the trace_smoke ctest).
// --json adds per-stage histograms, the component metrics registry and the
// sim-time series of each system to the machine-readable summary.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/chrome_trace.h"
#include "obs/util.h"
#include "workload/pattern.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

/// The five paper systems on Table 1 'C', plus a prefetch-enabled Pipette
/// cell on a strided stream — the workload where the spec_fill stage (the
/// speculative Info-ring batching work) actually shows up in the table.
struct SystemSpec {
  const char* label;
  PathKind kind;
  bool prefetch;
  bool strided;  // strided pattern workload instead of Table 1 'C'
};

constexpr SystemSpec kSystems[] = {
    {"2B-SSD MMIO", PathKind::kTwoBMmio, false, false},
    {"2B-SSD DMA", PathKind::kTwoBDma, false, false},
    {"Pipette w/o cache", PathKind::kPipetteNoCache, false, false},
    {"Pipette", PathKind::kPipette, false, false},
    {"Block I/O", PathKind::kBlockIo, false, false},
    {"Pipette+prefetch", PathKind::kPipette, true, true},
};

struct SystemRun {
  const char* label;
  RunResult result;
};

/// Sim-time between timeline samples: fine enough that even the smoke run's
/// short measured phase yields a handful of samples.
constexpr SimDuration kTimelineInterval = 500'000;  // 0.5 ms

double stage_total_ms(const LatencyHistogram& h) {
  return h.mean_ns() * static_cast<double>(h.count()) / 1e6;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool selfcheck_json_file(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "pipette: selfcheck cannot read %s\n", path.c_str());
    return false;
  }
  if (!json_valid(text)) {
    std::fprintf(stderr, "pipette: selfcheck: %s is not valid JSON\n",
                 path.c_str());
    return false;
  }
  return true;
}

void write_breakdown_json(const BenchArgs& args,
                          const std::vector<SystemRun>& runs) {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "latency_breakdown");
  w.kv("jobs", args.jobs);
  w.key("systems");
  w.begin_array();
  for (const SystemRun& run : runs) {
    const RunResult& r = run.result;
    w.begin_object();
    w.kv("system", run.label);
    w.kv("requests", r.requests);
    w.kv("mean_latency_us", r.mean_latency_us, 6);
    w.kv("p99_latency_us", r.p99_latency_us, 6);
    w.kv("host_seconds", r.host_seconds, 6);
    w.kv("events_executed", r.events_executed);
    w.key("stages");
    w.begin_array();
    for (std::size_t s = 0; s < r.stage_latency.size(); ++s) {
      const LatencyHistogram& h = r.stage_latency[s];
      if (h.count() == 0) continue;
      const Stage stage = static_cast<Stage>(s);
      w.begin_object();
      w.kv("stage", stage_name(stage));
      w.kv("track", stage_track(stage));
      w.kv("count", h.count());
      w.kv("total_ms", stage_total_ms(h), 3);
      w.kv("mean_us", h.mean_ns() / 1e3, 3);
      w.kv("p50_us", to_us(h.percentile(50)), 3);
      w.kv("p99_us", to_us(h.percentile(99)), 3);
      w.kv("p999_us", to_us(h.percentile(99.9)), 3);
      w.end_object();
    }
    w.end_array();
    w.key("timeline");
    w.begin_array();
    for (const TimeSample& sample : r.timeline) {
      w.begin_object();
      w.kv("t_ms", static_cast<double>(sample.t) / 1e6, 3);
      w.kv("reads", sample.reads);
      w.kv("traffic_bytes", sample.traffic_bytes);
      w.kv("page_cache_hit_ratio", sample.page_cache_hit_ratio, 6);
      w.kv("fgrc_hit_ratio", sample.fgrc_hit_ratio, 6);
      w.kv("fgrc_bytes", sample.fgrc_bytes);
      w.kv("gc_moves", sample.gc_moves);
      w.kv("read_retries", sample.read_retries);
      w.kv("degraded_reads", sample.degraded_reads);
      w.kv("nand_busy_ns", sample.nand_busy_ns);
      w.kv("interconnect_busy_ns", sample.interconnect_busy_ns);
      w.kv("gc_busy_ns", sample.gc_busy_ns);
      w.kv("info_ring_depth", sample.info_ring_depth);
      w.kv("nand_queue_depth", sample.nand_queue_depth);
      w.end_object();
    }
    w.end_array();
    json_metrics(w, "metrics", r.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool selfcheck = false;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn& value) {
        if (std::strcmp(flag, "--trace") == 0) {
          trace_path = value();
          return true;
        }
        if (std::strcmp(flag, "--selfcheck") == 0) {
          selfcheck = true;
          return true;
        }
        return false;
      },
      "  --trace PATH write a Chrome trace of the Pipette cell\n"
      "  --selfcheck  assert traced == untraced determinism\n");
  const Scale scale = Scale::from_args(args);
  print_header("Latency breakdown — Table 1 'C', per-stage decomposition",
               scale);

  std::vector<ExperimentCell> cells;
  for (const SystemSpec& spec : kSystems) {
    MachineConfig config = default_machine_for(args, spec.kind);
    config.trace.enabled = true;
    if (spec.prefetch) config.prefetch.enabled = true;
    RunConfig run = scale.run();
    run.timeline.interval = kTimelineInterval;
    const std::uint64_t seed = args.seed;
    const bool strided = spec.strided;
    cells.push_back({config,
                     [seed, strided]() -> std::unique_ptr<Workload> {
                       if (strided) {
                         StridedConfig c;
                         c.seed = seed;
                         return std::make_unique<StridedWorkload>(c);
                       }
                       return std::make_unique<SyntheticWorkload>(
                           table1_workload('C', Distribution::kUniform, seed));
                     },
                     run});
  }
  std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs, [](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  %-18s done (%s, %.1fs host)\n",
                     kSystems[i].label, r.read_latency.summary().c_str(),
                     r.host_seconds);
      });

  std::vector<SystemRun> runs;
  for (std::size_t i = 0; i < results.size(); ++i)
    runs.push_back({kSystems[i].label, std::move(results[i])});

  // Decomposition table: rows = stages (in pipeline order), columns = the
  // five systems, cells = total stage time per 1k requests (us) — totals,
  // not means, so rarely-hit stages don't read as dominant.
  {
    std::vector<std::string> headers{"Stage (us/1k reqs)"};
    for (const SystemRun& run : runs) headers.push_back(run.label);
    Table t(headers);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      bool any = false;
      for (const SystemRun& run : runs)
        any = any || (s < run.result.stage_latency.size() &&
                      run.result.stage_latency[s].count() > 0);
      if (!any) continue;
      std::vector<std::string> row{stage_name(static_cast<Stage>(s))};
      for (const SystemRun& run : runs) {
        const double us_per_1k =
            s < run.result.stage_latency.size() && run.result.requests > 0
                ? stage_total_ms(run.result.stage_latency[s]) * 1e6 /
                      static_cast<double>(run.result.requests)
                : 0.0;
        row.push_back(Table::fmt(us_per_1k, 1));
      }
      t.add_row(std::move(row));
    }
    std::vector<std::string> total_row{"end-to-end mean (us)"};
    for (const SystemRun& run : runs)
      total_row.push_back(Table::fmt(run.result.mean_latency_us, 2));
    t.add_row(std::move(total_row));
    emit(t, args);
  }

  std::printf("\nper-system read latency:\n");
  for (const SystemRun& run : runs)
    std::printf("  %-18s %s\n", run.label,
                run.result.read_latency.summary().c_str());

  // Where each system's time actually went: the top-ranked resource of the
  // utilization accounts (full per-resource table in bottleneck_report).
  std::printf("\nbottleneck attribution (busy-time share of elapsed):\n");
  for (const SystemRun& run : runs) {
    const BottleneckReport report =
        BottleneckReport::from_metrics(run.result.metrics);
    if (report.resources().empty()) continue;
    const ResourceReport& top = report.resources().front();
    std::printf("  %-18s %-14s share=%.3f  resid=%.4f%%\n", run.label,
                top.name.c_str(), top.busy_share(report.elapsed_ns()),
                report.max_littles_residual() * 100.0);
  }

  if (!args.json_path.empty()) write_breakdown_json(args, runs);
  if (!trace_path.empty()) {
    std::vector<ShardTrace> shards;
    for (SystemRun& run : runs)
      shards.push_back({run.label, std::move(run.result.trace_spans),
                        std::move(run.result.timeline)});
    if (!write_chrome_trace(trace_path, shards)) return 1;
    std::printf("chrome trace   : %s\n", trace_path.c_str());
  }

  if (selfcheck) {
    bool ok = true;
    // In a -DPIPETTE_TRACE=OFF build the span macros compile to nothing, so
    // only the JSON artefacts can be checked.
    if (PIPETTE_TRACE_ENABLED) {
      for (const SystemRun& run : runs) {
        std::uint64_t spans = 0;
        for (const LatencyHistogram& h : run.result.stage_latency)
          spans += h.count();
        if (spans == 0) {
          std::fprintf(stderr, "pipette: selfcheck: %s recorded no spans\n",
                       run.label);
          ok = false;
        }
      }
    }
    if (!args.json_path.empty()) ok = selfcheck_json_file(args.json_path) && ok;
    if (!trace_path.empty()) ok = selfcheck_json_file(trace_path) && ok;
    if (!ok) return 1;
    std::printf("selfcheck      : ok\n");
  }
  return 0;
}
