// Ablation A2: the adaptive reassignment strategy (§3.2.3) under a phase
// change. Phase 1 fills the cache with one object size; phase 2 switches to
// another size. With reassignment on, the maintenance pass notices the old
// class's eviction counts stagnating and migrates its slabs back to the
// free pool for the new class; with it off, the old class squats on the
// memory and the new class can only recycle its own items.
#include "bench_common.h"

namespace {

using namespace pipette;
using namespace pipette::bench;

// Two-phase workload: zipf-popular reads of `size_a` objects, then of
// `size_b` objects from a disjoint file region.
class PhaseChangeWorkload final : public Workload {
 public:
  PhaseChangeWorkload(std::uint64_t phase_requests, std::uint32_t size_a,
                      std::uint32_t size_b, std::uint64_t seed)
      : phase_requests_(phase_requests),
        size_a_(size_a),
        size_b_(size_b),
        rng_(seed),
        zipf_(64 * 1024, 0.8) {
    files_.push_back({"phase.dat", 512ull * kMiB});
  }

  const std::vector<FileSpec>& files() const override { return files_; }

  Request next() override {
    const bool phase_b = issued_++ >= phase_requests_;
    const std::uint32_t size = phase_b ? size_b_ : size_a_;
    const std::uint64_t base = phase_b ? files_[0].size / 2 : 0;
    const std::uint64_t slot = zipf_.sample(rng_);
    return {0, base + slot * size, size, false};
  }

  std::string name() const override { return "phase-change"; }

 private:
  std::uint64_t phase_requests_;
  std::uint32_t size_a_, size_b_;
  std::uint64_t issued_ = 0;
  std::vector<FileSpec> files_;
  Rng rng_;
  ZipfGenerator zipf_;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 0};
  print_header("Ablation A2 — slab reassignment under a phase change",
               scale);

  Table t({"Variant", "phase-2 FGRC hit %", "phase-2 thpt (req/s)",
           "reassigned slabs"});
  for (bool reassign : {true, false}) {
    MachineConfig config = default_machine_for(args, PathKind::kPipette);
    config.ssd.hmb.data_bytes = 24ull * kMiB;  // tight: phases must share
    config.pipette.fgrc.reassign.enabled = reassign;
    config.pipette.fgrc.reassign.epoch_accesses = 8 * 1024;
    // Isolate the reassignment effect from the pressure-migration path.
    config.pipette.fgrc.policy = PressurePolicy::kAlwaysEvict;

    PhaseChangeWorkload w(scale.requests / 2, 120, 1000, args.seed);
    Machine machine(config, w.files());
    const int fd =
        machine.vfs().open(w.files()[0].name, machine.open_flags(false));
    std::vector<std::uint8_t> buf(4096);
    // Phase 1.
    for (std::uint64_t i = 0; i < scale.requests / 2; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    // Phase 2, measured.
    const auto& fgrc = machine.pipette_path()->fgrc();
    const auto h0 = fgrc.stats().lookups;
    const SimTime t0 = machine.sim().now();
    for (std::uint64_t i = 0; i < scale.requests / 2; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    const auto& h1 = fgrc.stats().lookups;
    const double hit = static_cast<double>(h1.hits() - h0.hits()) /
                       static_cast<double>(h1.accesses() - h0.accesses());
    const double elapsed_s =
        static_cast<double>(machine.sim().now() - t0) / 1e9;
    t.add_row({reassign ? "reassignment on (paper)" : "reassignment off",
               Table::fmt(hit * 100.0, 1),
               Table::fmt(static_cast<double>(scale.requests / 2) / elapsed_s,
                          0),
               std::to_string(fgrc.stats().reassigned_slabs)});
    std::fprintf(stderr, "  reassign=%d done\n", reassign);
  }
  emit(t, args);
  return 0;
}
