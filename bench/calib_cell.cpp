// Calibration utility: run one (system, workload, distribution) cell at a
// chosen scale and print every metric the experiment runner collects.
// Usage: calib_cell <A..E> <uniform|zipf> <block|mmio|dma|nocache|pipette>
//        [--requests N] [--seed S]
#include <cstring>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  // With no arguments (e.g. a blanket `for b in bench/*; do $b; done`),
  // probe the headline cell at smoke scale.
  const char* default_args[] = {argv[0], "E", "uniform", "pipette",
                                "--quick"};
  if (argc < 4) {
    argc = 5;
    argv = const_cast<char**>(default_args);
    std::puts("(no arguments: defaulting to `E uniform pipette --quick`;"
              " see --help)");
  }
  const char wl = argv[1][0];
  const Distribution dist = std::strcmp(argv[2], "zipf") == 0
                                ? Distribution::kZipf
                                : Distribution::kUniform;
  PathKind kind = PathKind::kBlockIo;
  if (std::strcmp(argv[3], "mmio") == 0) kind = PathKind::kTwoBMmio;
  if (std::strcmp(argv[3], "dma") == 0) kind = PathKind::kTwoBDma;
  if (std::strcmp(argv[3], "nocache") == 0) kind = PathKind::kPipetteNoCache;
  if (std::strcmp(argv[3], "pipette") == 0) kind = PathKind::kPipette;

  const BenchArgs args = BenchArgs::parse(argc - 3, argv + 3);
  const Scale scale = Scale::from_args(args);

  SyntheticWorkload workload(table1_workload(wl, dist, args.seed));
  const RunResult r =
      run_experiment(default_machine_for(args, kind), workload, scale.run());

  std::printf("%s, workload %c, %s\n", short_name(kind), wl, argv[2]);
  std::printf("  mean latency   : %.2f us (p50 %.2f, p99 %.2f)\n",
              r.mean_latency_us, r.p50_latency_us, r.p99_latency_us);
  std::printf("  requests/sec   : %.0f\n", r.requests_per_sec());
  std::printf("  traffic        : %.1f MiB\n", to_mib(r.traffic_bytes));
  std::printf("  page cache hit : %.2f%% (%.1f MiB resident)\n",
              r.page_cache_hit_ratio * 100.0, to_mib(r.page_cache_bytes));
  std::printf("  FGRC hit       : %.2f%% (%.1f MiB used)\n",
              r.fgrc_hit_ratio * 100.0, to_mib(r.fgrc_bytes));
  return 0;
}
