// Fleet scaling: the synthetic mixed workload (Table 1 'C') served by a
// fleet of 1..N sharded machines, for all five systems under both offset
// distributions.
//
// What to look for:
//  * Fleet throughput grows near-linearly with shard count under the hash
//    partitioner and a uniform distribution (no interference between
//    machines; the fleet makespan is set by the most-loaded shard).
//  * Under zipf the merged p99 and the load-imbalance column show the cost
//    of skew: the hottest shard serves disproportionate traffic, and with
//    --partition range the spatially clustered zipf head lands on one
//    shard, dragging the whole fleet's tail with it.
//
// Extra flags on top of the common set: --shards N (default: sweep 1,2,4,8)
// and --partition hash|range. --json writes a BENCH_fleet.json-style
// summary (per-cell host_seconds and events_executed) for perf tracking.
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct FleetCell {
  Distribution dist;
  std::size_t shards;
  PathKind kind;
  FleetResult result;
};

const char* dist_name(Distribution d) {
  return d == Distribution::kUniform ? "uniform" : "zipf";
}

void write_fleet_json(const BenchArgs& args, PartitionScheme partition,
                      const std::vector<FleetCell>& cells) {
  if (args.json_path.empty()) return;
  double total_seconds = 0.0;
  std::uint64_t total_events = 0;
  for (const FleetCell& c : cells) {
    total_seconds += c.result.host_seconds;
    total_events += c.result.events_executed;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "fleet_scaling");
  w.kv("jobs", args.jobs);
  w.kv("partition", to_string(partition));
  w.kv("total_host_seconds", total_seconds, 6);
  w.kv("total_events_executed", total_events);
  w.kv("events_per_sec",
       total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds
                           : 0.0,
       0);
  w.key("cells");
  w.begin_array();
  for (const FleetCell& c : cells) {
    w.begin_object();
    w.kv("dist", dist_name(c.dist));
    w.kv("shards", c.shards);
    w.kv("system", short_name(c.kind));
    w.kv("fleet_rps", c.result.requests_per_sec(), 0);
    w.kv("p99_us", c.result.p99_latency_us, 6);
    w.kv("load_imbalance", c.result.load_imbalance, 6);
    w.kv("host_seconds", c.result.host_seconds, 6);
    w.kv("events_executed", c.result.events_executed);
    json_metrics(w, "metrics", c.result.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the fleet-specific flags, hand the rest to the common parser.
  std::size_t shards_flag = 0;  // 0 = sweep
  PartitionScheme partition = PartitionScheme::kHash;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_flag = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--partition") == 0 && i + 1 < argc) {
      ++i;
      partition = std::strcmp(argv[i], "range") == 0
                      ? PartitionScheme::kRange
                      : PartitionScheme::kHash;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      BenchArgs::parse(static_cast<int>(rest.size()), rest.data());
  const Scale scale = Scale::from_args(args);
  print_header("Fleet scaling — Table 1 'C', sharded fleet", scale);
  std::printf("(partitioner: %s; requests are fleet-wide totals)\n\n",
              to_string(partition));

  const std::vector<std::size_t> shard_counts =
      shards_flag != 0 ? std::vector<std::size_t>{shards_flag}
                       : std::vector<std::size_t>{1, 2, 4, 8};

  std::vector<FleetCell> cells;
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (std::size_t shards : shard_counts) {
      for (PathKind kind : kAllPaths) {
        FleetConfig fleet;
        fleet.shards = shards;
        fleet.partition = partition;
        fleet.machine = default_machine(kind);
        const std::uint64_t seed = args.seed;
        FleetRunner runner(
            fleet,
            [dist](std::uint64_t s) -> std::unique_ptr<Workload> {
              return std::make_unique<SyntheticWorkload>(
                  table1_workload('C', dist, s));
            },
            seed);
        cells.push_back(
            {dist, shards, kind, runner.run(scale.run(), args.jobs)});
        const FleetResult& r = cells.back().result;
        std::fprintf(stderr,
                     "  [%s] %-18s x%zu done (%.2f Mreq/s fleet, p99 %.2f "
                     "us, imb %.2f, %.1fs host)\n",
                     dist_name(dist), short_name(kind), shards,
                     r.requests_per_sec() / 1e6, r.p99_latency_us,
                     r.load_imbalance, r.host_seconds);
      }
    }
  }

  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    std::vector<std::string> headers{"System"};
    for (std::size_t shards : shard_counts)
      headers.push_back("x" + std::to_string(shards));
    std::printf("-- %s: fleet throughput (Mreq/s) --\n", dist_name(dist));
    Table rps(headers);
    Table p99(headers);
    Table imb(headers);
    for (PathKind kind : kAllPaths) {
      std::vector<std::string> rps_row{short_name(kind)};
      std::vector<std::string> p99_row{short_name(kind)};
      std::vector<std::string> imb_row{short_name(kind)};
      for (const FleetCell& c : cells) {
        if (c.dist != dist || c.kind != kind) continue;
        rps_row.push_back(Table::fmt(c.result.requests_per_sec() / 1e6, 2));
        p99_row.push_back(Table::fmt(c.result.p99_latency_us, 2));
        imb_row.push_back(Table::fmt(c.result.load_imbalance, 2));
      }
      rps.add_row(std::move(rps_row));
      p99.add_row(std::move(p99_row));
      imb.add_row(std::move(imb_row));
    }
    std::fputs(rps.to_text().c_str(), stdout);
    std::printf("\n-- %s: merged cross-shard p99 (us) --\n", dist_name(dist));
    std::fputs(p99.to_text().c_str(), stdout);
    std::printf("\n-- %s: load imbalance (max/mean shard requests) --\n",
                dist_name(dist));
    std::fputs(imb.to_text().c_str(), stdout);
    std::printf("\n");
    if (!args.csv_path.empty() && dist == Distribution::kUniform)
      rps.write_csv(args.csv_path);
  }

  write_fleet_json(args, partition, cells);
  return 0;
}
