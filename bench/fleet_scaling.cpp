// Fleet scaling: the synthetic mixed workload (Table 1 'C') served by a
// fleet of 1..N sharded machines, for all five systems under both offset
// distributions — plus a cores × shards sweep of host-side throughput.
//
// What to look for:
//  * Fleet throughput grows near-linearly with shard count under the hash
//    partitioner and a uniform distribution (no interference between
//    machines; the fleet makespan is set by the most-loaded shard).
//  * Under zipf the merged p99 and the load-imbalance column show the cost
//    of skew: the hottest shard serves disproportionate traffic, and with
//    --partition range the spatially clustered zipf head lands on one
//    shard, dragging the whole fleet's tail with it.
//  * The cores sweep measures *host* scaling: shard→worker pinning hands
//    each worker a fixed ascending slice of shards and one reusable
//    RunArena, so host events/sec should grow with cores until
//    cores == shards. Every combo is asserted bit-identical to its jobs-1
//    run — parallelism and pinning are never allowed to change results.
//
// Extra flags on top of the common set: --shards N (default: sweep 1,2,4,8),
// --partition hash|range, and --no-cores-sweep to skip the cores × shards
// section. --json writes the BENCH_fleet.json summary (per-cell host_seconds
// and events_executed, plus the cores_sweep section) for perf tracking.
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "fleet/fleet.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct FleetCell {
  Distribution dist;
  std::size_t shards;
  PathKind kind;
  FleetResult result;
};

struct CoresCell {
  unsigned cores;
  std::size_t shards;
  FleetResult result;
  bool matches_jobs1 = false;
};

const char* dist_name(Distribution d) {
  return d == Distribution::kUniform ? "uniform" : "zipf";
}

double host_events_per_sec(const FleetResult& r) {
  return r.host_seconds > 0.0
             ? static_cast<double>(r.events_executed) / r.host_seconds
             : 0.0;
}

void write_fleet_json(const BenchArgs& args, PartitionScheme partition,
                      const std::vector<FleetCell>& cells,
                      const std::vector<CoresCell>& cores_cells) {
  if (args.json_path.empty()) return;
  double total_seconds = 0.0;
  std::uint64_t total_events = 0;
  for (const FleetCell& c : cells) {
    total_seconds += c.result.host_seconds;
    total_events += c.result.events_executed;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "fleet_scaling");
  w.kv("jobs", args.jobs);
  w.kv("queue", to_string(queue_kind_of(args)));
  w.kv("partition", to_string(partition));
  w.kv("total_host_seconds", total_seconds, 6);
  w.kv("total_events_executed", total_events);
  w.kv("events_per_sec",
       total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds
                           : 0.0,
       0);
  w.key("cells");
  w.begin_array();
  for (const FleetCell& c : cells) {
    w.begin_object();
    w.kv("dist", dist_name(c.dist));
    w.kv("shards", c.shards);
    w.kv("system", short_name(c.kind));
    w.kv("fleet_rps", c.result.requests_per_sec(), 0);
    w.kv("p99_us", c.result.p99_latency_us, 6);
    w.kv("load_imbalance", c.result.load_imbalance, 6);
    w.kv("host_seconds", c.result.host_seconds, 6);
    w.kv("events_executed", c.result.events_executed);
    json_metrics(w, "metrics", c.result.metrics);
    w.end_object();
  }
  w.end_array();
  // Host-throughput scaling with worker threads (shard→worker pinning on;
  // every combo verified bit-identical to its jobs-1 run before landing
  // here).
  w.key("cores_sweep");
  w.begin_array();
  for (const CoresCell& c : cores_cells) {
    w.begin_object();
    w.kv("cores", c.cores);
    w.kv("shards", c.shards);
    w.kv("host_seconds", c.result.host_seconds, 6);
    w.kv("events_executed", c.result.events_executed);
    w.kv("host_events_per_sec", host_events_per_sec(c.result), 0);
    w.kv("fleet_rps", c.result.requests_per_sec(), 0);
    w.kv("matches_jobs1", c.matches_jobs1);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards_flag = 0;  // 0 = sweep
  PartitionScheme partition = PartitionScheme::kHash;
  bool cores_sweep = true;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn& value) {
        if (std::strcmp(flag, "--shards") == 0) {
          shards_flag = std::strtoull(value(), nullptr, 10);
          return true;
        }
        if (std::strcmp(flag, "--partition") == 0) {
          partition = std::strcmp(value(), "range") == 0
                          ? PartitionScheme::kRange
                          : PartitionScheme::kHash;
          return true;
        }
        if (std::strcmp(flag, "--no-cores-sweep") == 0) {
          cores_sweep = false;
          return true;
        }
        return false;
      },
      "  --shards N        fixed shard count (default: sweep 1,2,4,8)\n"
      "  --partition P     hash | range\n"
      "  --no-cores-sweep  skip the cores x shards host-scaling sweep\n");
  const Scale scale = Scale::from_args(args);
  print_header("Fleet scaling — Table 1 'C', sharded fleet", scale);
  std::printf("(partitioner: %s; requests are fleet-wide totals)\n\n",
              to_string(partition));

  const std::vector<std::size_t> shard_counts =
      shards_flag != 0 ? std::vector<std::size_t>{shards_flag}
                       : std::vector<std::size_t>{1, 2, 4, 8};

  auto make_runner = [&](Distribution dist, std::size_t shards, PathKind kind) {
    FleetConfig fleet;
    fleet.shards = shards;
    fleet.partition = partition;
    fleet.machine = default_machine_for(args, kind);
    return FleetRunner(
        fleet,
        [dist](std::uint64_t s) -> std::unique_ptr<Workload> {
          return std::make_unique<SyntheticWorkload>(
              table1_workload('C', dist, s));
        },
        args.seed);
  };

  std::vector<FleetCell> cells;
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (std::size_t shards : shard_counts) {
      for (PathKind kind : kAllPaths) {
        FleetRunner runner = make_runner(dist, shards, kind);
        cells.push_back(
            {dist, shards, kind, runner.run(scale.run(), args.jobs)});
        const FleetResult& r = cells.back().result;
        std::fprintf(stderr,
                     "  [%s] %-18s x%zu done (%.2f Mreq/s fleet, p99 %.2f "
                     "us, imb %.2f, %.1fs host)\n",
                     dist_name(dist), short_name(kind), shards,
                     r.requests_per_sec() / 1e6, r.p99_latency_us,
                     r.load_imbalance, r.host_seconds);
      }
    }
  }

  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    std::vector<std::string> headers{"System"};
    for (std::size_t shards : shard_counts)
      headers.push_back("x" + std::to_string(shards));
    std::printf("-- %s: fleet throughput (Mreq/s) --\n", dist_name(dist));
    Table rps(headers);
    Table p99(headers);
    Table imb(headers);
    for (PathKind kind : kAllPaths) {
      std::vector<std::string> rps_row{short_name(kind)};
      std::vector<std::string> p99_row{short_name(kind)};
      std::vector<std::string> imb_row{short_name(kind)};
      for (const FleetCell& c : cells) {
        if (c.dist != dist || c.kind != kind) continue;
        rps_row.push_back(Table::fmt(c.result.requests_per_sec() / 1e6, 2));
        p99_row.push_back(Table::fmt(c.result.p99_latency_us, 2));
        imb_row.push_back(Table::fmt(c.result.load_imbalance, 2));
      }
      rps.add_row(std::move(rps_row));
      p99.add_row(std::move(p99_row));
      imb.add_row(std::move(imb_row));
    }
    std::fputs(rps.to_text().c_str(), stdout);
    std::printf("\n-- %s: merged cross-shard p99 (us) --\n", dist_name(dist));
    std::fputs(p99.to_text().c_str(), stdout);
    std::printf("\n-- %s: load imbalance (max/mean shard requests) --\n",
                dist_name(dist));
    std::fputs(imb.to_text().c_str(), stdout);
    std::printf("\n");
    if (!args.csv_path.empty() && dist == Distribution::kUniform)
      rps.write_csv(args.csv_path);
  }

  // Cores × shards: host scaling of one system (Pipette, uniform — the
  // hottest host path) as worker threads grow, shards fixed per column.
  // Each combo is re-run at jobs=1 first and must be bit-identical.
  std::vector<CoresCell> cores_cells;
  if (cores_sweep) {
    // Worker counts are thread counts, not physical cores: sweeping past
    // hardware concurrency still validates pinning + determinism and shows
    // the (flat or negative) oversubscription regime on small hosts.
    const std::vector<unsigned> core_counts{1, 2, 4, 8};
    const unsigned hw = ThreadPool::default_threads();
    std::printf("(hardware concurrency: %u)\n", hw);
    std::printf("-- cores x shards: host Mevents/s (Pipette, uniform; "
                "pinned workers) --\n");
    std::vector<std::string> headers{"Cores"};
    for (std::size_t shards : shard_counts)
      headers.push_back("x" + std::to_string(shards));
    Table t(headers);
    bool all_match = true;
    for (unsigned cores : core_counts) {
      std::vector<std::string> row{std::to_string(cores)};
      for (std::size_t shards : shard_counts) {
        FleetRunner runner =
            make_runner(Distribution::kUniform, shards, PathKind::kPipette);
        const FleetResult baseline = runner.run(scale.run(), /*jobs=*/1);
        const FleetResult r = cores == 1 ? baseline
                                         : runner.run(scale.run(), cores);
        CoresCell cell{cores, shards, r, deterministic_equal(baseline, r)};
        all_match = all_match && cell.matches_jobs1;
        std::fprintf(stderr,
                     "  [cores] %u core(s) x%zu shards: %.2f Mev/s host%s\n",
                     cores, shards, host_events_per_sec(r) / 1e6,
                     cell.matches_jobs1 ? "" : "  ** MISMATCH vs jobs=1 **");
        row.push_back(Table::fmt(host_events_per_sec(r) / 1e6, 2));
        cores_cells.push_back(std::move(cell));
      }
      t.add_row(std::move(row));
    }
    std::fputs(t.to_text().c_str(), stdout);
    std::printf("\n");
    if (!all_match) {
      std::fprintf(stderr,
                   "pipette: cores sweep diverged from jobs-1 results\n");
      return 1;
    }
  }

  write_fleet_json(args, partition, cells, cores_cells);
  return 0;
}
