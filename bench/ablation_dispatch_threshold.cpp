// Ablation A4: the Read Dispatcher's size threshold (§3.1.2 routes "mainly
// based on the data size"). The search workload's posting lists span
// 16 B .. 512 B, so lowering the threshold pushes progressively more reads
// onto the block interface — showing what the byte path is worth per size
// class.
#include "bench_common.h"
#include "workload/search.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 1'000'000};
  print_header("Ablation A4 — dispatcher fine-path size threshold", scale);

  Table t({"fine_max_len", "thpt (req/s)", "traffic MiB", "fine reads %"});
  for (std::uint32_t fine_max : {32u, 64u, 128u, 512u, 4096u}) {
    MachineConfig config = default_machine_for(args, PathKind::kPipette);
    config.pipette.dispatch.fine_max_len = fine_max;
    SearchConfig sc;
    sc.seed = args.seed;
    SearchWorkload w(sc);
    Machine machine(config, w.files());
    const int fd =
        machine.vfs().open(w.files()[0].name, machine.open_flags(false));
    std::vector<std::uint8_t> buf(8192);
    for (std::uint64_t i = 0; i < scale.warmup; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    const SimTime t0 = machine.sim().now();
    const std::uint64_t traffic0 = machine.io_traffic_bytes();
    for (std::uint64_t i = 0; i < scale.requests; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    const double elapsed_s =
        static_cast<double>(machine.sim().now() - t0) / 1e9;
    const auto& ps = machine.pipette_path()->pipette_stats();
    t.add_row(
        {std::to_string(fine_max),
         Table::fmt(static_cast<double>(scale.requests) / elapsed_s, 0),
         Table::fmt(to_mib(machine.io_traffic_bytes() - traffic0), 1),
         Table::fmt(100.0 * static_cast<double>(ps.fine_reads) /
                        static_cast<double>(ps.fine_reads + ps.block_reads),
                    1)});
    std::fprintf(stderr, "  fine_max=%u done\n", fine_max);
  }
  emit(t, args);
  return 0;
}
