// Reproduces Fig. 1 (motivation): normalized I/O traffic and throughput of
// 2B-SSD against block I/O on the two fine-grained-read-dominated
// applications, showing the dilemma Pipette resolves — the byte interface
// slashes traffic but *loses* throughput because it cannot exploit
// host-DRAM locality.
#include "bench_common.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {500'000, 4'000'000};
  print_header("Fig. 1 — motivation: 2B-SSD vs block I/O", scale);

  Table t({"App", "System", "Norm. I/O traffic", "Norm. throughput"});
  for (int app = 0; app < 2; ++app) {
    const char* app_name = app == 0 ? "Recommender System" : "Social Graph";
    std::map<PathKind, RunResult> results;
    for (PathKind kind :
         {PathKind::kBlockIo, PathKind::kTwoBMmio, PathKind::kTwoBDma}) {
      std::unique_ptr<Workload> workload;
      if (app == 0) {
        RecsysConfig rc;
        rc.seed = args.seed;
        workload = std::make_unique<RecsysWorkload>(rc);
      } else {
        LinkBenchConfig lc;
        lc.seed = args.seed;
        lc.read_only = true;  // the motivation study measures reads
        workload = std::make_unique<LinkBenchWorkload>(lc);
      }
      results[kind] =
          run_experiment(realapp_machine_for(args, kind), *workload, scale.run());
      std::fprintf(stderr, "  %-20s %-12s done\n", app_name,
                   short_name(kind));
    }
    const RunResult& base = results[PathKind::kBlockIo];
    for (PathKind kind :
         {PathKind::kBlockIo, PathKind::kTwoBMmio, PathKind::kTwoBDma}) {
      const RunResult& r = results[kind];
      t.add_row({app_name, short_name(kind),
                 Table::fmt(static_cast<double>(r.traffic_bytes) /
                                static_cast<double>(base.traffic_bytes),
                            3),
                 Table::fmt(normalized_throughput(r, base), 3)});
    }
  }
  emit(t, args);

  std::printf(
      "\nPaper reference (Fig. 1): 2B-SSD's I/O traffic is a small fraction\n"
      "of block I/O's, yet its throughput is *lower* — reduced read\n"
      "amplification does not pay without a fine-grained host cache.\n");
  return 0;
}
