// M1: google-benchmark microbenchmarks of Pipette's hot components — the
// real-time costs of the host-side data structures (these are actual
// nanoseconds, not simulated time).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/lru.h"
#include "common/zipf.h"
#include "hostmem/page_cache.h"
#include "pipette/adaptive.h"
#include "pipette/fgrc.h"

namespace pipette {
namespace {

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 0.8);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_ScatteredZipfSample(benchmark::State& state) {
  ScatteredZipf zipf(static_cast<std::uint64_t>(state.range(0)), 0.8, 11);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ScatteredZipfSample)->Arg(1 << 20);

void BM_LruMapFindHit(benchmark::State& state) {
  LruMap<std::uint64_t, std::uint64_t> map(
      static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i)
    map.insert(static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.find(rng.next_below(static_cast<std::uint64_t>(state.range(0)))));
  }
}
BENCHMARK(BM_LruMapFindHit)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SlabAllocateFree(benchmark::State& state) {
  Hmb hmb({64, 4096, 16ull * 1024 * 1024});
  SlabConfig cfg;
  cfg.slab_size = 256 * 1024;
  SlabStore store(hmb, cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto loc = store.allocate({1, i++ * 128, 128});
    benchmark::DoNotOptimize(loc);
    if (loc) store.free_item(*loc);
  }
}
BENCHMARK(BM_SlabAllocateFree);

void BM_FgrcLookupHit(benchmark::State& state) {
  Hmb hmb({64, 4096, 64ull * 1024 * 1024});
  FgrcConfig cfg;
  cfg.adaptive.initial_threshold = 1;
  cfg.adaptive.enabled = false;
  cfg.reassign.enabled = false;
  FineGrainedReadCache cache(hmb, cfg, nullptr);
  const std::uint64_t n = 100'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    cache.lookup({1, i * 128, 128});
    cache.plan_miss({1, i * 128, 128});
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({1, rng.next_below(n) * 128, 128}));
  }
}
BENCHMARK(BM_FgrcLookupHit);

void BM_FgrcInvalidateRange(benchmark::State& state) {
  Hmb hmb({64, 4096, 64ull * 1024 * 1024});
  FgrcConfig cfg;
  cfg.adaptive.initial_threshold = 1;
  cfg.adaptive.enabled = false;
  cfg.reassign.enabled = false;
  FineGrainedReadCache cache(hmb, cfg, nullptr);
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cache.lookup({1, i * 128, 128});
    cache.plan_miss({1, i * 128, 128});
    state.ResumeTiming();
    benchmark::DoNotOptimize(cache.invalidate_range(1, i * 128, 128));
    ++i;
  }
}
BENCHMARK(BM_FgrcInvalidateRange);

void BM_PageCacheLookup(benchmark::State& state) {
  PageCache cache(64ull * 1024 * 1024);
  std::vector<std::uint8_t> page(kBlockSize, 1);
  const std::uint64_t pages = 10'000;
  for (std::uint64_t p = 0; p < pages; ++p)
    cache.insert({1, p}, page.data(), true);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({1, rng.next_below(pages)}));
  }
}
BENCHMARK(BM_PageCacheLookup);

void BM_AdaptiveOnAccess(benchmark::State& state) {
  AdaptiveThreshold adaptive{AdaptiveConfig{}};
  bool flip = false;
  for (auto _ : state) {
    adaptive.on_access(flip = !flip);
  }
  benchmark::DoNotOptimize(adaptive.threshold());
}
BENCHMARK(BM_AdaptiveOnAccess);

}  // namespace
}  // namespace pipette

BENCHMARK_MAIN();
