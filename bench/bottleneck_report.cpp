// Bottleneck attribution report (extension): three cells engineered so a
// different resource tops the utilization ranking in each, demonstrating
// that the busy/queueing accounts (obs/util.h) attribute time where it
// actually goes as the workload shifts the constraint:
//
//  * die-bound   — Block I/O, uniform page-aligned 4 KiB reads over a file
//                  far larger than the page cache. Nearly every read pays
//                  the NAND sense (~65 us TLC) while the PCIe transfer is
//                  ~2 us, so nand_die dominates elapsed time.
//  * link-bound  — Pipette + prefetch on the CXL-linked buffer (LMB), a
//                  strided byte stream over a file small enough to stay
//                  resident in the device read buffer but a fine-grained
//                  cache too small to hold the stream host-side: after the
//                  first pass NAND is idle and every demanded byte crosses
//                  the dedicated link, so lmb_link tops the ranking.
//  * gc-bound    — the gc_wear drive at 85% logical occupancy under a 50%
//                  write mix of sub-page (MU=512) rewrites: write
//                  amplification ~3 makes the GC-attributed NAND time
//                  (relocation reads + re-pack programs) the largest
//                  account, ahead of the host's own die time.
//
// Each cell prints the full BottleneckReport table (busy share, per-unit
// utilization, mean depth/wait, Little's-law residual). The residual is a
// self-test of the accounting itself: busy+wait and the depth integral are
// the same quantity computed through independent code paths, so a nonzero
// residual means broken bookkeeping, not an interesting model effect.
//
// Extra flags on top of the common set:
//   --selfcheck   assert the expected top-ranked resource per cell and a
//                 Little's-law residual < 5% everywhere (bottleneck_smoke).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/util.h"
#include "workload/pattern.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

/// Uniform page-aligned 4 KiB reads: the block path's worst cache case.
class UniformPageWorkload : public Workload {
 public:
  UniformPageWorkload(std::uint64_t file_size, std::uint64_t seed)
      : rng_(seed), pages_(file_size / kBlockSize) {
    files_.push_back({"pages.dat", file_size});
  }

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override {
    return {0, rng_.next_below(pages_) * kBlockSize,
            static_cast<std::uint32_t>(kBlockSize), false};
  }
  std::string name() const override { return "uniform-4k"; }

 private:
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t pages_;
};

/// gc_wear_sweep's write mix: 512 B uniform reads plus 512 B rewrites of
/// Zipf(0.9)-popular slots, ranks hashed onto the slot space so hot slots
/// scatter across pages and blocks (see that bench for why this shape
/// exercises sub-page GC).
class ZipfSlotWorkload : public Workload {
 public:
  ZipfSlotWorkload(std::uint64_t file_size, double write_ratio,
                   std::uint64_t seed)
      : rng_(seed), seed_(seed), write_ratio_(write_ratio) {
    files_.push_back({"gc.dat", file_size});
    slots_ = file_size / 512;
  }

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override {
    if (write_ratio_ > 0.0 && rng_.next_bool(write_ratio_)) {
      if (!zipf_) zipf_ = std::make_unique<ZipfGenerator>(slots_, 0.9);
      const std::uint64_t slot = mix64(seed_ ^ zipf_->sample(rng_)) % slots_;
      return {0, slot * 512, 512, true};
    }
    return {0, rng_.next_below(slots_) * 512, 512, false};
  }
  std::string name() const override { return "gc-zipf-slot"; }

 private:
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t seed_;
  double write_ratio_;
  std::uint64_t slots_ = 0;
  std::unique_ptr<ZipfGenerator> zipf_;
};

struct CellSpec {
  const char* label;
  const char* expected_top;  // --selfcheck: the resource that must rank #1
};

constexpr CellSpec kCells[] = {
    {"die-bound (uniform 4K, Block I/O)", "nand_die"},
    {"link-bound (strided, Pipette+prefetch, LMB)", "lmb_link"},
    {"gc-bound (50% sub-page writes, MU=512)", "gc"},
};

constexpr std::uint64_t kDieFileBytes = 64ull * kMiB;

// Die-bound: big file, small page cache — misses dominate and each miss
// senses NAND (block reads bypass the device DRAM buffer by default).
MachineConfig die_machine(const BenchArgs& args) {
  MachineConfig c = default_machine_for(args, PathKind::kBlockIo);
  c.page_cache_bytes = 4 * kMiB;
  return c;
}

// Link-bound: the whole 256 KiB stream stays in the device read buffer, so
// after the warm-up pass reads cost no NAND — but the fine-grained cache
// (64 KiB data area) cannot hold it host-side, so every demanded byte (and
// every speculative fill) crosses the dedicated LMB link each wrap.
MachineConfig link_machine(const BenchArgs& args) {
  MachineConfig c = default_machine_for(args, PathKind::kPipette);
  c.interconnect = InterconnectKind::kLmb;
  c.prefetch.enabled = true;
  c.page_cache_bytes = 1 * kMiB;
  c.ssd.hmb.data_bytes = 64 * kKiB;
  c.pipette.fgrc.slab.slab_size = 32 * kKiB;
  c.pipette.fgrc.slab.max_external_bytes = 1 * kMiB;
  return c;
}

StridedConfig link_workload(std::uint64_t seed) {
  StridedConfig c;
  c.file_size = 256 * kKiB;
  c.stride = 512;
  c.read_size = 256;
  c.sub_offset = 64;  // keep offset+len inside the 512 B stride slot
  c.run_length = 256;
  c.seed = seed;
  return c;
}

// GC-bound: the gc_wear_sweep drive pushed to 85% logical occupancy so
// greedy GC drags live sibling MUs on nearly every collection (WA ~3).
MachineConfig gc_machine(const BenchArgs& args) {
  MachineConfig c = default_machine_for(args, PathKind::kPipette);
  c.ssd.geometry.channels = 4;
  c.ssd.geometry.ways_per_channel = 2;
  c.ssd.geometry.planes_per_die = 1;
  c.ssd.geometry.blocks_per_plane = 16;
  c.ssd.geometry.pages_per_block = 32;
  c.ssd.lba_count = c.ssd.geometry.total_pages() * 85 / 100;
  c.ssd.read_buffer_bytes = 2 * kMiB;
  c.page_cache_bytes = 1 * kMiB;
  c.ssd.hmb.data_bytes = 1 * kMiB;
  c.pipette.fine_writes = true;
  c.mapping_unit = 512;
  return c;
}

void write_report_json(const BenchArgs& args,
                       const std::vector<RunResult>& results) {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "bottleneck_report");
  w.kv("jobs", args.jobs);
  w.kv("queue", to_string(queue_kind_of(args)));
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const BottleneckReport report = BottleneckReport::from_metrics(r.metrics);
    w.begin_object();
    w.kv("cell", kCells[i].label);
    w.kv("requests", r.requests);
    w.kv("mean_latency_us", r.mean_latency_us, 6);
    w.kv("p99_latency_us", r.p99_latency_us, 6);
    w.kv("elapsed_ns", report.elapsed_ns());
    w.kv("top_resource", report.top());
    w.kv("max_littles_residual", report.max_littles_residual(), 6);
    w.key("resources");
    w.begin_array();
    for (const ResourceReport& res : report.resources()) {
      w.begin_object();
      w.kv("name", res.name);
      w.kv("units", res.units);
      w.kv("ops", res.ops);
      w.kv("busy_ns", res.busy_ns);
      w.kv("busy_share", res.busy_share(report.elapsed_ns()), 6);
      w.kv("wait_ns", res.wait_ns);
      w.kv("depth_integral_ns", res.depth_integral_ns);
      w.kv("depth_peak", res.depth_peak);
      w.kv("mean_depth", res.mean_depth(report.elapsed_ns()), 6);
      if (res.has_waits)
        w.kv("littles_residual", res.littles_residual(), 9);
      w.end_object();
    }
    w.end_array();
    json_metrics(w, "metrics", r.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn&) {
        if (std::strcmp(flag, "--selfcheck") == 0) {
          selfcheck = true;
          return true;
        }
        return false;
      },
      "  --selfcheck  assert the expected top resource per cell and a\n"
      "               Little's-law residual < 5% everywhere\n");
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {200'000, 100'000};
  print_header("Bottleneck attribution — the constraint shifts with the "
               "workload",
               scale);

  const std::uint64_t seed = args.seed;
  std::vector<ExperimentCell> cells;
  cells.push_back({die_machine(args),
                   [seed]() -> std::unique_ptr<Workload> {
                     return std::make_unique<UniformPageWorkload>(
                         kDieFileBytes, seed);
                   },
                   scale.run()});
  cells.push_back({link_machine(args),
                   [seed]() -> std::unique_ptr<Workload> {
                     return std::make_unique<StridedWorkload>(
                         link_workload(seed));
                   },
                   scale.run()});
  {
    // Same spp request scaling as gc_wear_sweep: MU=512 writes consume
    // free space 8x slower than page-sized ones, so the cell runs 8x the
    // base requests to reach GC steady state.
    const MachineConfig gc = gc_machine(args);
    const std::uint64_t file_size =
        (gc.ssd.lba_count - 64) * kBlockSize;
    RunConfig run = scale.run();
    const std::uint64_t spp = kBlockSize / 512;
    run.requests *= spp;
    run.warmup *= spp;
    cells.push_back({gc,
                     [file_size, seed]() -> std::unique_ptr<Workload> {
                       return std::make_unique<ZipfSlotWorkload>(
                           file_size, /*write_ratio=*/0.5, seed);
                     },
                     run});
  }

  std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs, [](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  %-44s done (%s, %.1fs host)\n",
                     kCells[i].label, r.read_latency.summary().c_str(),
                     r.host_seconds);
      });

  for (std::size_t i = 0; i < results.size(); ++i) {
    const BottleneckReport report =
        BottleneckReport::from_metrics(results[i].metrics);
    std::printf("\n-- %s --\n", kCells[i].label);
    std::fputs(report.to_table().to_text().c_str(), stdout);
    std::printf("top: %s   littles residual: %.4f%%\n",
                report.top().c_str(),
                report.max_littles_residual() * 100.0);
  }

  if (!args.json_path.empty()) write_report_json(args, results);

  if (selfcheck) {
    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const BottleneckReport report =
          BottleneckReport::from_metrics(results[i].metrics);
      if (report.top() != kCells[i].expected_top) {
        std::fprintf(stderr,
                     "pipette: selfcheck: cell '%s' top resource is '%s', "
                     "expected '%s'\n",
                     kCells[i].label, report.top().c_str(),
                     kCells[i].expected_top);
        ok = false;
      }
      if (report.max_littles_residual() >= 0.05) {
        std::fprintf(stderr,
                     "pipette: selfcheck: cell '%s' Little's-law residual "
                     "%.4f%% >= 5%% — the busy/wait and depth-integral "
                     "accounts disagree\n",
                     kCells[i].label,
                     report.max_littles_residual() * 100.0);
        ok = false;
      }
      if (report.elapsed_ns() == 0 || report.resources().empty()) {
        std::fprintf(stderr,
                     "pipette: selfcheck: cell '%s' exported no utilization "
                     "accounts\n",
                     kCells[i].label);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("\nselfcheck      : ok\n");
  }
  return 0;
}
