// GC x wear sweep (extension): sub-page FTL mapping units under a
// write-heavy fine-grained mix.
//
// Runs the Pipette path (fine writes on) over the MU {4096, 2048, 1024,
// 512} x write-ratio {0.05, 0.2, 0.5} matrix on a small drive at 50%
// utilisation, so garbage collection runs inside the bench budget.
//
// Every write is a 512 B rewrite of a Zipf(0.9)-popular slot whose rank is
// hashed onto the file, scattering the hot slots across pages and blocks.
// Each cell also runs spp x the base request count, so every cell programs
// the same page volume (see the per-cell scaling below). This is the shape
// that isolates the mapping-unit trade:
//
//  * At MU = page a 512 B write is a device read-modify-write that
//    replaces — and so fully invalidates — the old page. Hot pages churn
//    whole, victim blocks decay toward empty, and greedy GC stays cheap.
//  * At sub-page MUs the write invalidates only its own MU. The skewed
//    mix leaves every hot MU's page carrying cooler sibling MUs that die
//    far more slowly, so steady-state victim liveness is higher and GC
//    must drag the stranded siblings along. write_amplification
//    (programmed MUs per host MU, see FtlStats) therefore rises as the
//    mapping unit shrinks — the cost the sweep quantifies against the
//    fine-read benefit of small units.
//
// Two shapes that would NOT show this, and that the hashing avoids:
// a uniform all-slots mix (every sibling then dies at the same rate, and
// greedy-GC amplification under uniform unit writes is a function of
// over-provisioning alone, flat in MU) and an unhashed Zipf mix (rank ==
// slot clusters the hot MUs into a few pure-hot blocks that greedy GC
// collects cheaply, while MU=page pays the full RMW space inflation).
//
// One extra cell re-runs the most write-heavy MU=512 cell with the
// erase-correlated read-error model enabled, reporting per-die erase
// spread and the retries the wear window injects.
//
// Extra flags on top of the common set:
//   --selfcheck   assert the acceptance properties (GC ran on the
//                 write-heavy column, write_amplification strictly
//                 increases as the MU shrinks there, the wear cell
//                 retries and zero-wear cells do not) and exit nonzero
//                 on violation (used by the gc_smoke ctest).
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "common/bytes.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct CellSpec {
  std::uint32_t mu;
  double write_ratio;
  bool wear;
};

/// The sweep's mix: reads are 512 B uniform over every slot of the file;
/// writes are 512 B rewrites of Zipf(0.9)-popular slots, each rank hashed
/// (stably, per seed) onto the slot space so the popular slots scatter
/// across pages and blocks — see the file comment for why this shape
/// isolates the mapping-unit effect.
class ZipfSlotWorkload : public Workload {
 public:
  ZipfSlotWorkload(std::uint64_t file_size, double write_ratio,
                   std::uint64_t seed)
      : rng_(seed), seed_(seed), write_ratio_(write_ratio) {
    files_.push_back({"gc.dat", file_size});
    slots_ = file_size / 512;
  }

  const std::vector<FileSpec>& files() const override { return files_; }

  Request next() override {
    const bool is_write =
        write_ratio_ > 0.0 && rng_.next_bool(write_ratio_);
    if (is_write) {
      if (!zipf_) zipf_ = std::make_unique<ZipfGenerator>(slots_, 0.9);
      const std::uint64_t rank = zipf_->sample(rng_);
      const std::uint64_t slot = mix64(seed_ ^ rank) % slots_;
      return {0, slot * 512, 512, true};
    }
    return {0, rng_.next_below(slots_) * 512, 512, false};
  }

  std::string name() const override { return "gc-zipf-slot"; }

 private:
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t seed_;
  double write_ratio_;
  std::uint64_t slots_ = 0;
  std::unique_ptr<ZipfGenerator> zipf_;
};

// Small drive: 8 dies x 16 blocks x 32 pages (16 MiB) at 50% utilisation.
// The moderate utilisation keeps the page-churn baseline WA low so the
// cold-sibling pinning at sub-page MUs stands out, and the tiny geometry
// brings GC onset inside the smoke budget even at MU=512, where sub-page
// writes consume free space 8x slower than at MU=page. Host caches are
// sized well below the 8 MiB file so reads keep hitting the device and
// buffered full-page evictions flush promptly.
MachineConfig gc_machine(const BenchArgs& args, const CellSpec& spec) {
  MachineConfig c = default_machine_for(args, PathKind::kPipette);
  c.ssd.geometry.channels = 4;
  c.ssd.geometry.ways_per_channel = 2;
  c.ssd.geometry.planes_per_die = 1;
  c.ssd.geometry.blocks_per_plane = 16;
  c.ssd.geometry.pages_per_block = 32;
  c.ssd.lba_count = c.ssd.geometry.total_pages() / 2;
  c.ssd.read_buffer_bytes = 2 * kMiB;
  c.page_cache_bytes = 1 * kMiB;  // small host caches: reads hit the device
  c.ssd.hmb.data_bytes = 1 * kMiB;
  c.pipette.fine_writes = true;
  c.mapping_unit = spec.mu;  // per-cell; the sweep overrides --mu
  if (spec.wear) {
    // Erase-correlated read errors: retry probability grows with the die's
    // erase count and bursts right after each erase (see faults.h).
    c.ssd.faults.nand.wear_error_per_erase = 1e-4;
  }
  return c;
}

double wa_of(const RunResult& r) {
  return static_cast<double>(r.metrics.value("ftl.write_amp_x1000")) / 1000.0;
}

void write_gc_json(const BenchArgs& args, const std::vector<CellSpec>& specs,
                   const std::vector<RunResult>& results) {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "gc_wear_sweep");
  w.kv("jobs", args.jobs);
  w.kv("queue", to_string(queue_kind_of(args)));
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    w.begin_object();
    w.kv("mapping_unit", specs[i].mu);
    w.kv("write_ratio", specs[i].write_ratio, 2);
    w.kv("wear", specs[i].wear);
    w.kv("requests", r.requests);
    w.kv("p50_latency_us", r.p50_latency_us, 6);
    w.kv("p99_latency_us", r.p99_latency_us, 6);
    w.kv("mean_latency_us", r.mean_latency_us, 6);
    w.kv("write_amplification", wa_of(r), 3);
    w.kv("retries", r.retries);
    w.kv("host_seconds", r.host_seconds, 6);
    w.kv("events_executed", r.events_executed);
    json_metrics(w, "metrics", r.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn&) {
        if (std::strcmp(flag, "--selfcheck") == 0) {
          selfcheck = true;
          return true;
        }
        return false;
      },
      "  --selfcheck  assert GC ran, WA grows as the MU shrinks on the\n"
      "               write-heavy column, and only the wear cell retries\n");
  Scale scale = Scale::from_args(args);
  // Per-cell requests are further scaled by spp (see below), so the base
  // scale stays modest; --requests raises it for deeper steady state.
  if (args.requests == 0 && !args.quick) scale = {50'000, 25'000};
  print_header("GC x wear sweep — FTL mapping unit under fine writes", scale);

  constexpr std::uint32_t kMus[] = {4096, 2048, 1024, 512};
  constexpr double kWriteRatios[] = {0.05, 0.2, 0.5};
  constexpr double kHeavy = 0.5;
  std::vector<CellSpec> specs;
  for (std::uint32_t mu : kMus)
    for (double wr : kWriteRatios) specs.push_back({mu, wr, false});
  specs.push_back({512, kHeavy, true});  // wear-model demonstration cell

  // The file covers the whole allocatable LBA space (lba_count minus the
  // file system's 64 reserved metadata LBAs), so every block is
  // overwrite-hot and no cold region distorts victim selection.
  const ControllerConfig probe = gc_machine(args, specs[0]).ssd;
  const std::uint64_t file_size = (probe.lba_count - 64) * kBlockSize;

  std::vector<ExperimentCell> cells;
  for (const CellSpec& spec : specs) {
    const double wr = spec.write_ratio;
    const std::uint64_t seed = args.seed;
    // Equal device work per cell, not equal requests: a 512 B write
    // consumes a full page at MU=page (read-modify-write) but only
    // 1/spp of a page at sub-page MUs, so at a fixed request count the
    // small-MU cells would still be inside the GC warm-up transient
    // while MU=page is deep in steady state. Scaling requests by spp
    // programs the same page volume everywhere, and the WA column then
    // compares steady-state victim liveness directly.
    RunConfig run = scale.run();
    const std::uint64_t spp = kBlockSize / spec.mu;
    run.requests *= spp;
    run.warmup *= spp;
    cells.push_back({gc_machine(args, spec),
                     [file_size, wr, seed]() -> std::unique_ptr<Workload> {
                       return std::make_unique<ZipfSlotWorkload>(file_size, wr,
                                                                 seed);
                     },
                     run});
  }
  const std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs,
      [&specs](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  mu=%-4u wr=%.2f wear=%-3s done (%s, %.1fs host)\n",
                     specs[i].mu, specs[i].write_ratio,
                     specs[i].wear ? "on" : "off",
                     r.read_latency.summary().c_str(), r.host_seconds);
      });

  Table t({"MU", "write%", "wear", "p50 us", "p99 us", "WA", "GC runs",
           "reloc MUs", "erases", "die spread", "retries"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    const std::uint64_t max_e = r.metrics.value("ftl.wear_max_die_erases");
    const std::uint64_t min_e = r.metrics.value("ftl.wear_min_die_erases");
    t.add_row({std::to_string(specs[i].mu),
               Table::fmt(specs[i].write_ratio * 100.0, 0),
               specs[i].wear ? "on" : "off", Table::fmt(r.p50_latency_us, 2),
               Table::fmt(r.p99_latency_us, 2), Table::fmt(wa_of(r), 3),
               std::to_string(r.metrics.value("ftl.gc_collections")),
               std::to_string(r.metrics.value("ftl.gc_relocated_mus")),
               std::to_string(r.metrics.value("ftl.wear_blocks_erased")),
               std::to_string(max_e - min_e), std::to_string(r.retries)});
  }
  emit(t, args);
  if (!args.json_path.empty()) write_gc_json(args, specs, results);

  if (selfcheck) {
    bool ok = true;
    auto cell = [&](std::uint32_t mu, double wr, bool wear) -> const RunResult& {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].mu == mu && specs[i].write_ratio == wr &&
            specs[i].wear == wear)
          return results[i];
      }
      PIPETTE_ASSERT_MSG(false, "cell missing from matrix");
      return results[0];
    };
    // (a) The write-heavy column actually collected garbage at every MU.
    for (std::uint32_t mu : kMus) {
      if (cell(mu, kHeavy, false).metrics.value("ftl.gc_collections") == 0) {
        std::fprintf(stderr,
                     "pipette: selfcheck: no GC at mu=%u on the write-heavy "
                     "column\n",
                     mu);
        ok = false;
      }
    }
    // (b) Write amplification strictly increases as the MU shrinks there.
    for (std::size_t i = 1; i < std::size(kMus); ++i) {
      const std::uint64_t coarse = cell(kMus[i - 1], kHeavy, false)
                                       .metrics.value("ftl.write_amp_x1000");
      const std::uint64_t fine =
          cell(kMus[i], kHeavy, false).metrics.value("ftl.write_amp_x1000");
      if (fine <= coarse) {
        std::fprintf(stderr,
                     "pipette: selfcheck: WA not strictly increasing as MU "
                     "shrinks (mu=%u WA=%.3f vs mu=%u WA=%.3f)\n",
                     kMus[i], fine / 1000.0, kMus[i - 1], coarse / 1000.0);
        ok = false;
      }
    }
    // (c) Only the wear cell injects retries.
    const RunResult& wear = cell(512, kHeavy, true);
    if (wear.retries == 0) {
      std::fprintf(stderr,
                   "pipette: selfcheck: wear cell produced no retries "
                   "(erases max=%llu)\n",
                   static_cast<unsigned long long>(
                       wear.metrics.value("ftl.wear_max_die_erases")));
      ok = false;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!specs[i].wear && results[i].retries != 0) {
        std::fprintf(stderr,
                     "pipette: selfcheck: zero-wear cell mu=%u wr=%.2f "
                     "retried %llu times\n",
                     specs[i].mu, specs[i].write_ratio,
                     static_cast<unsigned long long>(results[i].retries));
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("selfcheck      : ok\n");
  }
  return 0;
}
