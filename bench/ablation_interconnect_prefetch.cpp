// Ablation A8: speculative readahead x interconnect backend.
//
// Runs the Pipette path over the interconnect {hmb, lmb} x prefetch
// {off, on} x workload {strided, clustered, uniform} matrix:
//
//  * strided — fixed-stride runs; the stride classifier locks on after two
//    accesses and the prefetcher should convert most of each run's misses
//    into FGRC hits (or device-buffer-warm re-reads).
//  * clustered — zipf-hot 64 KiB neighbourhoods visited in long bursts;
//    the cluster classifier speculates the surrounding record grid and
//    page-stride probes warm the neighbourhood's pages.
//  * uniform — Table 1 'E' (uniform random 128 B): the classifier must stay
//    quiet; the wasted-prefetch ratio bounds the cost of mis-speculation.
//
// The LMB rows show the CXL-linked-buffer trade: fills pay a slightly
// slower per-byte link, host reads of served bytes pay far-memory loads
// instead of DRAM copies, and the reclaimed host DRAM grows the page cache.
//
// Extra flags on top of the common set:
//   --selfcheck   assert the acceptance properties (prefetch wins on
//                 strided/clustered p50+p99, wasted ratio stays low on
//                 uniform, LMB has a distinct latency profile) and exit
//                 nonzero on violation (used by the prefetch_smoke ctest).
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/pattern.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct CellSpec {
  const char* workload;  // "strided" | "clustered" | "uniform"
  InterconnectKind interconnect;
  bool prefetch;
};

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        std::uint64_t seed) {
  if (name == "strided") {
    StridedConfig c;
    c.seed = seed;
    return std::make_unique<StridedWorkload>(c);
  }
  if (name == "clustered") {
    ClusteredConfig c;
    c.seed = seed;
    return std::make_unique<ClusteredHotWorkload>(c);
  }
  return std::make_unique<SyntheticWorkload>(
      table1_workload('E', Distribution::kUniform, seed));
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

void write_prefetch_json(const BenchArgs& args,
                         const std::vector<CellSpec>& specs,
                         const std::vector<RunResult>& results) {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "ablation_interconnect_prefetch");
  w.kv("jobs", args.jobs);
  w.kv("queue", to_string(queue_kind_of(args)));
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    w.begin_object();
    w.kv("workload", specs[i].workload);
    w.kv("interconnect", to_string(specs[i].interconnect));
    w.kv("prefetch", specs[i].prefetch);
    w.kv("requests", r.requests);
    w.kv("mean_latency_us", r.mean_latency_us, 6);
    w.kv("p50_latency_us", r.p50_latency_us, 6);
    w.kv("p99_latency_us", r.p99_latency_us, 6);
    w.kv("fgrc_hit_ratio", r.fgrc_hit_ratio, 6);
    w.kv("host_seconds", r.host_seconds, 6);
    w.kv("events_executed", r.events_executed);
    json_metrics(w, "metrics", r.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&](const char* flag, const BenchArgs::ValueFn&) {
        if (std::strcmp(flag, "--selfcheck") == 0) {
          selfcheck = true;
          return true;
        }
        return false;
      },
      "  --selfcheck  assert prefetch wins on structured streams, stays\n"
      "               harmless on uniform, and LMB differs from HMB\n");
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {500'000, 250'000};
  print_header(
      "Ablation A8 — interconnect x prefetch x workload (Pipette path)",
      scale);

  std::vector<CellSpec> specs;
  for (const char* wl : {"strided", "clustered", "uniform"}) {
    for (InterconnectKind ic : {InterconnectKind::kHmb, InterconnectKind::kLmb})
      for (bool pf : {false, true}) specs.push_back({wl, ic, pf});
  }

  std::vector<ExperimentCell> cells;
  for (const CellSpec& spec : specs) {
    MachineConfig config = default_machine_for(args, PathKind::kPipette);
    config.interconnect = spec.interconnect;
    config.prefetch.enabled = spec.prefetch;
    const std::string wl = spec.workload;
    const std::uint64_t seed = args.seed;
    cells.push_back({std::move(config),
                     [wl, seed] { return make_workload(wl, seed); },
                     scale.run()});
  }
  const std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs,
      [&specs](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  %-9s %s prefetch=%-3s done (%s, %.1fs host)\n",
                     specs[i].workload, to_string(specs[i].interconnect),
                     specs[i].prefetch ? "on" : "off",
                     r.read_latency.summary().c_str(), r.host_seconds);
      });

  Table t({"workload", "link", "prefetch", "p50 us", "p99 us", "mean us",
           "fgrc hit%", "pf issued", "pf hit%", "pf wasted%"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    const std::uint64_t issued = r.metrics.value("prefetch.issued");
    t.add_row({specs[i].workload, to_string(specs[i].interconnect),
               specs[i].prefetch ? "on" : "off",
               Table::fmt(r.p50_latency_us, 2), Table::fmt(r.p99_latency_us, 2),
               Table::fmt(r.mean_latency_us, 2),
               Table::fmt(r.fgrc_hit_ratio * 100.0, 1),
               std::to_string(issued),
               Table::fmt(ratio(r.metrics.value("prefetch.hits"), issued) *
                              100.0,
                          1),
               Table::fmt(ratio(r.metrics.value("prefetch.wasted"), issued) *
                              100.0,
                          1)});
  }
  emit(t, args);
  if (!args.json_path.empty()) write_prefetch_json(args, specs, results);

  if (selfcheck) {
    bool ok = true;
    auto cell = [&](const char* wl, InterconnectKind ic,
                    bool pf) -> const RunResult& {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (std::strcmp(specs[i].workload, wl) == 0 &&
            specs[i].interconnect == ic && specs[i].prefetch == pf)
          return results[i];
      }
      PIPETTE_ASSERT_MSG(false, "cell missing from matrix");
      return results[0];
    };
    for (InterconnectKind ic :
         {InterconnectKind::kHmb, InterconnectKind::kLmb}) {
      for (const char* wl : {"strided", "clustered"}) {
        const RunResult& off = cell(wl, ic, false);
        const RunResult& on = cell(wl, ic, true);
        if (!(on.p50_latency_us < off.p50_latency_us &&
              on.p99_latency_us < off.p99_latency_us)) {
          std::fprintf(stderr,
                       "pipette: selfcheck: prefetch did not win on %s/%s "
                       "(p50 %.2f vs %.2f, p99 %.2f vs %.2f)\n",
                       wl, to_string(ic), on.p50_latency_us,
                       off.p50_latency_us, on.p99_latency_us,
                       off.p99_latency_us);
          ok = false;
        }
      }
      const RunResult& uni = cell("uniform", ic, true);
      const std::uint64_t issued = uni.metrics.value("prefetch.issued");
      const double wasted =
          ratio(uni.metrics.value("prefetch.wasted"), issued);
      if (wasted > 0.20) {
        std::fprintf(stderr,
                     "pipette: selfcheck: uniform wasted-prefetch ratio %.3f "
                     "exceeds 0.20 (%s, issued=%llu)\n",
                     wasted, to_string(ic),
                     static_cast<unsigned long long>(issued));
        ok = false;
      }
    }
    // The LMB must be a genuinely different timing model, not an alias.
    const RunResult& hmb = cell("strided", InterconnectKind::kHmb, false);
    const RunResult& lmb = cell("strided", InterconnectKind::kLmb, false);
    if (hmb.mean_latency_us == lmb.mean_latency_us ||
        lmb.metrics.value("lmb.dma_transfers") == 0) {
      std::fprintf(stderr,
                   "pipette: selfcheck: LMB profile indistinguishable from "
                   "HMB (mean %.3f vs %.3f, lmb transfers %llu)\n",
                   hmb.mean_latency_us, lmb.mean_latency_us,
                   static_cast<unsigned long long>(
                       lmb.metrics.value("lmb.dma_transfers")));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("selfcheck      : ok\n");
  }
  return 0;
}
