// Reproduces Fig. 9: real-world applications — (a) normalized throughput
// and (b) I/O traffic — for the recommendation system (DLRM-style 128 B
// embedding lookups) and the social graph (LinkBench default mix).
//
// Paper's reading: Pipette outperforms block I/O by ~1.3x on both apps
// (31.6% and 33.5%); the no-cache byte paths land *below* block I/O (no
// locality support); Pipette's traffic is an order of magnitude below both
// the no-cache paths and block I/O.
#include "bench_common.h"
#include "workload/linkbench.h"
#include "workload/recsys.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 4'000'000};
  print_header("Fig. 9 — real-world applications", scale);

  auto make_workload = [&](int app) -> std::unique_ptr<Workload> {
    if (app == 0) {
      RecsysConfig rc;
      rc.seed = args.seed;
      return std::make_unique<RecsysWorkload>(rc);
    }
    LinkBenchConfig lc;
    lc.seed = args.seed;
    // The figure reports read throughput/traffic; writes would charge the
    // block paths read-modify-write fetches that the paper's metric
    // excludes.
    lc.read_only = true;
    return std::make_unique<LinkBenchWorkload>(lc);
  };
  const char* app_names[] = {"Recommender System", "Social Graph"};

  Table t({"System", "RecSys norm. thpt", "RecSys traffic MiB",
           "SocGraph norm. thpt", "SocGraph traffic MiB"});
  std::map<PathKind, RunResult> results[2];
  for (int app = 0; app < 2; ++app) {
    for (PathKind kind : kAllPaths) {
      auto workload = make_workload(app);
      results[app][kind] =
          run_experiment(realapp_machine_for(args, kind), *workload, scale.run());
      std::fprintf(stderr, "  %-20s %-18s done (%.2f us mean)\n",
                   app_names[app], short_name(kind),
                   results[app][kind].mean_latency_us);
    }
  }
  for (PathKind kind : kAllPaths) {
    std::vector<std::string> row{short_name(kind)};
    for (int app = 0; app < 2; ++app) {
      row.push_back(Table::fmt(
          normalized_throughput(results[app][kind],
                                results[app][PathKind::kBlockIo]),
          2));
      row.push_back(Table::fmt(to_mib(results[app][kind].traffic_bytes), 1));
    }
    t.add_row(std::move(row));
  }
  emit(t, args);

  std::printf(
      "\nPaper reference (Fig. 9): Pipette ~1.3x block I/O on both apps;\n"
      "no-cache paths below block I/O; Pipette traffic an order of\n"
      "magnitude below every alternative.\n");
  return 0;
}
