// Ablation A3: the dynamic allocation strategy (§3.2.4) — choosing between
// LRU eviction and slab migration by comparing page-cache and FGRC hit
// ratios — against the two fixed policies. Uses the search workload (its
// posting lists span several slab classes, so migration has donor classes)
// under a tight FGRC, with a block-routed large-read sidecar stream that
// keeps the page-cache hit counter meaningful.
#include "bench_common.h"
#include "workload/search.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 1'000'000};
  print_header("Ablation A3 — dynamic allocation vs fixed pressure policy",
               scale);

  struct Variant {
    const char* name;
    PressurePolicy policy;
  };
  const Variant variants[] = {
      {"dynamic (paper)", PressurePolicy::kDynamic},
      {"always evict", PressurePolicy::kAlwaysEvict},
      {"always migrate", PressurePolicy::kAlwaysMigrate},
  };

  Table t({"Variant", "thpt (req/s)", "FGRC hit %", "evictions",
           "migrations", "FGRC MiB"});
  for (const Variant& v : variants) {
    MachineConfig config = default_machine_for(args, PathKind::kPipette);
    config.ssd.hmb.data_bytes = 16ull * kMiB;  // tight: pressure runs
    config.pipette.fgrc.slab.max_external_bytes = 8ull * kMiB;
    config.pipette.fgrc.policy = v.policy;

    SearchConfig sc;
    sc.seed = args.seed;
    sc.terms = 1 << 19;
    SearchWorkload w(sc);
    Machine machine(config, w.files());
    const int fd =
        machine.vfs().open(w.files()[0].name, machine.open_flags(false));
    std::vector<std::uint8_t> buf(8192);
    Rng sidecar(args.seed + 1);
    auto issue = [&](std::uint64_t i) {
      // 1-in-16 requests is a page-aligned 4 KiB read (block route), so
      // the page cache sees traffic and its hit ratio is defined.
      if (i % 16 == 15) {
        const std::uint64_t page =
            sidecar.next_below(w.files()[0].size / kBlockSize);
        machine.vfs().pread(fd, page * kBlockSize, {buf.data(), kBlockSize});
        return;
      }
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    };
    for (std::uint64_t i = 0; i < scale.warmup; ++i) issue(i);
    const SimTime t0 = machine.sim().now();
    const auto& fgrc = machine.pipette_path()->fgrc();
    const auto h0 = fgrc.stats().lookups;
    for (std::uint64_t i = 0; i < scale.requests; ++i) issue(i);
    const double elapsed_s =
        static_cast<double>(machine.sim().now() - t0) / 1e9;
    const auto& h1 = fgrc.stats().lookups;
    t.add_row(
        {v.name,
         Table::fmt(static_cast<double>(scale.requests) / elapsed_s, 0),
         Table::fmt(100.0 * static_cast<double>(h1.hits() - h0.hits()) /
                        static_cast<double>(h1.accesses() - h0.accesses()),
                    1),
         std::to_string(fgrc.stats().pressure_evictions),
         std::to_string(fgrc.stats().pressure_migrations),
         Table::fmt(to_mib(fgrc.memory_bytes()), 1)});
    std::fprintf(stderr, "  %-16s done\n", v.name);
  }
  emit(t, args);
  return 0;
}
