// Reproduces Table 2: I/O traffic (MB) of the synthetic workloads A..E
// under the uniform random distribution.
//
// Paper's reading: block I/O moves the same data regardless of the size mix
// (location, not size, decides which pages are read); the no-cache byte
// paths move exactly the requested bytes (9765.6 MB at A down to 305.2 MB
// at E for 2.5M requests); Pipette tracks block I/O at A and drops ~4x
// below the no-cache paths at E thanks to the fine-grained read cache.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Scale scale = Scale::from_args(args);
  print_header("Table 2 — I/O traffic (MiB), synthetic, uniform", scale);

  const auto matrix =
      run_synthetic_matrix(Distribution::kUniform, scale, args);
  emit(traffic_table(matrix), args);
  write_json_summary(args, "table2_uniform_traffic", matrix);

  std::printf(
      "\nPaper reference (Table 2, 2.5M requests, MB):\n"
      "Block I/O          2973.6 2973.6 2973.6 2973.6 2973.6\n"
      "2B-SSD/w-o cache   9765.6 8819.6 5035.4 1251.2  305.2\n"
      "Pipette            2973.6 2678.4 1479.7  313.5   79.8\n");
  return 0;
}
