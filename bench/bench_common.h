// Shared helpers for the experiment benches: run matrices over the five
// systems, and table rendering with the paper's reference numbers alongside.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace pipette::bench {

/// Paper-scale request counts (§4.2 performs 2.5M reads); --quick and
/// --requests rescale.
struct Scale {
  std::uint64_t requests = 2'500'000;
  std::uint64_t warmup = 1'000'000;

  static Scale from_args(const BenchArgs& args) {
    Scale s;
    if (args.quick) s = {100'000, 50'000};
    if (args.requests != 0) {
      s.requests = args.requests;
      s.warmup = args.requests / 2;
    }
    return s;
  }
  RunConfig run() const { return {requests, warmup}; }
};

/// --queue as a QueueKind for single-backend benches ("" and "both" mean
/// the default heap; only comparative benches interpret "both" themselves).
inline QueueKind queue_kind_of(const BenchArgs& args) {
  return args.queue == "wheel" ? QueueKind::kWheel : QueueKind::kHeap;
}

/// Apply the fine-path flags (--interconnect, --prefetch, --mu) to a
/// machine config. A no-op when none of the flags was given, so default
/// runs stay bit-identical to history.
inline void apply_fine_path_flags(const BenchArgs& args,
                                  MachineConfig& config) {
  if (args.interconnect == "lmb") config.interconnect = InterconnectKind::kLmb;
  if (args.prefetch) config.prefetch.enabled = true;  // Pipette kinds only;
                                                      // shaped() gates it
  if (args.mapping_unit != 0) config.mapping_unit = args.mapping_unit;
}

/// default_machine / realapp_machine with the --queue backend and the
/// fine-path flags applied — what every bench that builds configs by hand
/// should call, so the common flags work uniformly across the suite.
inline MachineConfig default_machine_for(const BenchArgs& args,
                                         PathKind kind) {
  MachineConfig config = default_machine(kind);
  config.queue = queue_kind_of(args);
  apply_fine_path_flags(args, config);
  return config;
}

inline MachineConfig realapp_machine_for(const BenchArgs& args,
                                         PathKind kind) {
  MachineConfig config = realapp_machine(kind);
  config.queue = queue_kind_of(args);
  apply_fine_path_flags(args, config);
  return config;
}

inline const char* short_name(PathKind kind) {
  switch (kind) {
    case PathKind::kBlockIo:
      return "Block I/O";
    case PathKind::kTwoBMmio:
      return "2B-SSD MMIO";
    case PathKind::kTwoBDma:
      return "2B-SSD DMA";
    case PathKind::kPipetteNoCache:
      return "Pipette w/o cache";
    case PathKind::kPipette:
      return "Pipette";
  }
  return "?";
}

/// Results of one workload column across all five systems.
using Column = std::map<PathKind, RunResult>;

/// Run the five systems over the Table 1 synthetic workloads of one
/// distribution, fanning the 25 independent cells over `args.jobs` threads
/// (0 = hardware concurrency, 1 = serial). Each cell constructs its own
/// deterministically seeded workload, so the matrix is bit-identical at any
/// job count — and at any --queue backend, which is applied to every cell's
/// machine here. `make_machine` lets ablations tweak configs per kind.
/// Prints an end-of-matrix summary of host wall-clock vs per-cell CPU time.
inline std::map<char, Column> run_synthetic_matrix(
    Distribution dist, const Scale& scale, const BenchArgs& args,
    const std::function<MachineConfig(PathKind)>& make_machine =
        [](PathKind k) { return default_machine(k); }) {
  const std::uint64_t seed = args.seed;
  const unsigned jobs = args.jobs;
  const QueueKind queue = queue_kind_of(args);
  std::vector<ExperimentCell> cells;
  std::vector<std::pair<char, PathKind>> labels;
  for (char wl : {'A', 'B', 'C', 'D', 'E'}) {
    for (PathKind kind : kAllPaths) {
      MachineConfig config = make_machine(kind);
      config.queue = queue;
      apply_fine_path_flags(args, config);
      cells.push_back({std::move(config),
                       [wl, dist, seed]() -> std::unique_ptr<Workload> {
                         return std::make_unique<SyntheticWorkload>(
                             table1_workload(wl, dist, seed));
                       },
                       scale.run()});
      labels.emplace_back(wl, kind);
    }
  }

  const auto wall0 = std::chrono::steady_clock::now();
  const std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), jobs,
      [&labels](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  [%c] %-18s done (%s, %.1fs host)\n",
                     labels[i].first, short_name(labels[i].second),
                     r.read_latency.summary().c_str(), r.host_seconds);
      });
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();

  std::map<char, Column> out;
  double cell_seconds = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    out[labels[i].first][labels[i].second] = results[i];
    cell_seconds += results[i].host_seconds;
  }
  std::fprintf(stderr,
               "  [host] %zu cells in %.1fs wall (%.1fs of cell time, "
               "jobs=%u -> %.1fx)\n",
               results.size(), wall, cell_seconds,
               jobs == 0 ? ThreadPool::default_threads() : jobs,
               wall > 0.0 ? cell_seconds / wall : 0.0);
  return out;
}

/// Render a normalized-throughput table (rows = systems, columns = A..E).
inline Table throughput_table(const std::map<char, Column>& matrix) {
  Table t({"System", "A", "B", "C", "D", "E"});
  for (PathKind kind : kAllPaths) {
    std::vector<std::string> row{short_name(kind)};
    for (const auto& [wl, column] : matrix) {
      const double norm = normalized_throughput(
          column.at(kind), column.at(PathKind::kBlockIo));
      row.push_back(Table::fmt(norm, 2));
    }
    t.add_row(std::move(row));
  }
  return t;
}

/// Render an I/O-traffic table in MiB (the paper's "MB").
inline Table traffic_table(const std::map<char, Column>& matrix) {
  Table t({"System", "A", "B", "C", "D", "E"});
  for (PathKind kind : kAllPaths) {
    std::vector<std::string> row{short_name(kind)};
    for (const auto& [wl, column] : matrix) {
      row.push_back(Table::fmt(to_mib(column.at(kind).traffic_bytes), 1));
    }
    t.add_row(std::move(row));
  }
  return t;
}

inline void emit(const Table& t, const BenchArgs& args) {
  std::fputs(t.to_text().c_str(), stdout);
  if (!args.csv_path.empty()) t.write_csv(args.csv_path);
}

/// Emit a MetricsRegistry as one flat JSON object under `key`.
inline void json_metrics(JsonWriter& w, std::string_view key,
                         const MetricsRegistry& metrics) {
  w.key(key);
  w.begin_object();
  for (const auto& [name, v] : metrics.values()) w.kv(name, v);
  w.end_object();
}

/// Machine-readable run summary (--json): per-cell host_seconds,
/// events_executed and the component metrics registry, so the DES core's
/// throughput is tracked across PRs (see EXPERIMENTS.md "Host-cost
/// tracking").
inline void write_json_summary(const BenchArgs& args, const char* bench,
                               const std::map<char, Column>& matrix) {
  if (args.json_path.empty()) return;
  double total_seconds = 0.0;
  std::uint64_t total_events = 0;
  for (const auto& [wl, column] : matrix) {
    for (const auto& [kind, r] : column) {
      total_seconds += r.host_seconds;
      total_events += r.events_executed;
    }
  }
  JsonWriter w;
  w.begin_object();
  w.kv("bench", bench);
  w.kv("jobs", args.jobs);
  w.kv("queue", to_string(queue_kind_of(args)));
  w.kv("total_host_seconds", total_seconds, 6);
  w.kv("total_events_executed", total_events);
  w.kv("events_per_sec",
       total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds
                           : 0.0,
       0);
  w.key("cells");
  w.begin_array();
  for (const auto& [wl, column] : matrix) {
    for (const auto& [kind, r] : column) {
      w.begin_object();
      w.kv("workload", std::string(1, wl));
      w.kv("system", short_name(kind));
      w.kv("host_seconds", r.host_seconds, 6);
      w.kv("events_executed", r.events_executed);
      w.kv("mean_latency_us", r.mean_latency_us, 6);
      json_metrics(w, "metrics", r.metrics);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.write_file(args.json_path);
}

inline void print_header(const char* title, const Scale& scale) {
  std::printf("=== %s ===\n", title);
  std::printf("(requests per run: %llu measured after %llu warmup)\n\n",
              static_cast<unsigned long long>(scale.requests),
              static_cast<unsigned long long>(scale.warmup));
}

}  // namespace pipette::bench
