// Ablation A1: the adaptive caching mechanism (§3.2.2) against fixed
// promotion thresholds.
//
// The adaptive threshold should track the best fixed threshold on both a
// high-reuse (zipf) and a low-reuse (uniform) workload, where any single
// fixed threshold loses on one of them: threshold 1 pollutes the cache
// under scans, large thresholds starve it under reuse.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 1'000'000};
  print_header("Ablation A1 — adaptive caching vs fixed thresholds", scale);

  struct Variant {
    const char* name;
    bool adaptive;
    std::uint32_t threshold;
  };
  const Variant variants[] = {
      {"adaptive (paper)", true, 2}, {"fixed t=1", false, 1},
      {"fixed t=2", false, 2},       {"fixed t=4", false, 4},
      {"fixed t=8", false, 8},
  };

  Table t({"Variant", "uniform E thpt (req/s)", "uniform E FGRC hit %",
           "zipf E thpt (req/s)", "zipf E FGRC hit %"});
  for (const Variant& v : variants) {
    auto make_machine = [&](PathKind kind) {
      MachineConfig config = default_machine(kind);
      config.pipette.fgrc.adaptive.enabled = v.adaptive;
      config.pipette.fgrc.adaptive.initial_threshold = v.threshold;
      config.pipette.fgrc.adaptive.min_threshold = 1;
      config.pipette.fgrc.adaptive.max_threshold =
          std::max<std::uint32_t>(v.threshold, 4);
      return config;
    };
    std::vector<std::string> row{v.name};
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
      SyntheticWorkload w(table1_workload('E', dist, args.seed));
      const RunResult r = run_experiment(make_machine(PathKind::kPipette), w,
                                         scale.run());
      row.push_back(Table::fmt(r.requests_per_sec(), 0));
      row.push_back(Table::fmt(r.fgrc_hit_ratio * 100.0, 1));
      std::fprintf(stderr, "  %-18s %-7s done\n", v.name,
                   dist == Distribution::kUniform ? "uniform" : "zipf");
    }
    t.add_row(std::move(row));
  }
  emit(t, args);
  return 0;
}
