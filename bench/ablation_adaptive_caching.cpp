// Ablation A1: the adaptive caching mechanism (§3.2.2) against fixed
// promotion thresholds.
//
// The adaptive threshold should track the best fixed threshold on both a
// high-reuse (zipf) and a low-reuse (uniform) workload, where any single
// fixed threshold loses on one of them: threshold 1 pollutes the cache
// under scans, large thresholds starve it under reuse.
#include <iterator>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 1'000'000};
  print_header("Ablation A1 — adaptive caching vs fixed thresholds", scale);

  struct Variant {
    const char* name;
    bool adaptive;
    std::uint32_t threshold;
  };
  const Variant variants[] = {
      {"adaptive (paper)", true, 2}, {"fixed t=1", false, 1},
      {"fixed t=2", false, 2},       {"fixed t=4", false, 4},
      {"fixed t=8", false, 8},
  };

  // One independent cell per (variant, distribution): fan them across
  // --jobs threads; results are bit-identical to the serial loop.
  std::vector<ExperimentCell> cells;
  for (const Variant& v : variants) {
    MachineConfig config = default_machine_for(args, PathKind::kPipette);
    config.pipette.fgrc.adaptive.enabled = v.adaptive;
    config.pipette.fgrc.adaptive.initial_threshold = v.threshold;
    config.pipette.fgrc.adaptive.min_threshold = 1;
    config.pipette.fgrc.adaptive.max_threshold =
        std::max<std::uint32_t>(v.threshold, 4);
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
      const std::uint64_t seed = args.seed;
      cells.push_back({config,
                       [dist, seed]() -> std::unique_ptr<Workload> {
                         return std::make_unique<SyntheticWorkload>(
                             table1_workload('E', dist, seed));
                       },
                       scale.run()});
    }
  }
  const std::vector<RunResult> results = run_experiments_parallel(
      std::move(cells), args.jobs, [&](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  %-18s %-7s done (%.1fs host)\n",
                     variants[i / 2].name, i % 2 == 0 ? "uniform" : "zipf",
                     r.host_seconds);
      });

  Table t({"Variant", "uniform E thpt (req/s)", "uniform E FGRC hit %",
           "zipf E thpt (req/s)", "zipf E FGRC hit %"});
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    const RunResult& uni = results[2 * v];
    const RunResult& zipf = results[2 * v + 1];
    t.add_row({variants[v].name, Table::fmt(uni.requests_per_sec(), 0),
               Table::fmt(uni.fgrc_hit_ratio * 100.0, 1),
               Table::fmt(zipf.requests_per_sec(), 0),
               Table::fmt(zipf.fgrc_hit_ratio * 100.0, 1)});
  }
  emit(t, args);
  return 0;
}
