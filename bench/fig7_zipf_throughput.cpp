// Reproduces Fig. 7: normalized throughput of the synthetic workloads A..E
// under the zipfian distribution (alpha = 0.8, hot head clustered at the
// start of the file).
//
// Paper's reading: zipfian locality lets the page cache and read-ahead do
// their job, so every gap compresses — Pipette's gain shrinks to 1.1-1.4x
// (it "has a smaller optimization space"), and block I/O is no longer the
// universal loser.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Scale scale = Scale::from_args(args);
  print_header("Fig. 7 — normalized throughput, synthetic, zipf(0.8)", scale);

  const auto matrix =
      run_synthetic_matrix(Distribution::kZipf, scale, args);
  emit(throughput_table(matrix), args);
  write_json_summary(args, "fig7_zipf_throughput", matrix);

  std::printf(
      "\nPaper reference (Fig. 7): Pipette 1.1x..1.4x across A..E; spreads\n"
      "far smaller than the uniform case (Fig. 6).\n");
  return 0;
}
