// Reproduces Fig. 8: average read latency of workload E (pure fine-grained
// reads, uniform distribution) for request sizes 8 B .. 4 KiB, all systems.
//
// Paper's reading: every curve is flat except 2B-SSD MMIO, whose latency
// grows linearly with size (8-byte non-posted transactions); ordering
// Pipette (~2us) < Pipette w/o cache < 2B-SSD DMA (per-access mapping) <
// block I/O (~33.8x Pipette); MMIO crosses w/o-cache around 32 B and DMA
// around 1 KiB.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {600'000, 400'000};
  print_header("Fig. 8 — mean read latency (us) vs request size, uniform",
               scale);

  const std::uint32_t sizes[] = {8,   16,  32,   64,   128,
                                 256, 512, 1024, 2048, 4096};
  const std::uint64_t file_size = 256ull * kMiB;

  std::vector<std::string> headers{"System"};
  for (std::uint32_t s : sizes) headers.push_back(std::to_string(s) + "B");
  Table t(headers);

  for (PathKind kind : kAllPaths) {
    std::vector<std::string> row{short_name(kind)};
    for (std::uint32_t size : sizes) {
      SizeSweepWorkload workload(file_size, size, args.seed);
      const RunResult r =
          run_experiment(default_machine_for(args, kind), workload, scale.run());
      row.push_back(Table::fmt(r.mean_latency_us, 2));
      std::fprintf(stderr, "  %-18s %4uB: %.2f us\n", short_name(kind), size,
                   r.mean_latency_us);
    }
    t.add_row(std::move(row));
  }
  emit(t, args);

  std::printf(
      "\nPaper reference (Fig. 8): flat curves except MMIO (linear in "
      "size);\nPipette ~2us; block I/O 33.8x Pipette; MMIO crosses "
      "w/o-cache near 32B\nand DMA near 1KiB.\n");
  return 0;
}
