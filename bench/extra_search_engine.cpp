// Extension experiment: a third fine-grained-read application — WiSER-style
// search-engine posting-list fetches (the paper's introduction names search
// engines among the motivating workloads but evaluates only the first two).
// All five systems, throughput + traffic, same methodology as Fig. 9.
#include "bench_common.h"
#include "workload/search.h"

int main(int argc, char** argv) {
  using namespace pipette;
  using namespace pipette::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {1'000'000, 4'000'000};
  print_header("Extension — search-engine posting-list reads", scale);

  Table t({"System", "norm. throughput", "traffic MiB", "mean us"});
  std::map<PathKind, RunResult> results;
  for (PathKind kind : kAllPaths) {
    SearchConfig sc;
    sc.seed = args.seed;
    SearchWorkload w(sc);
    results[kind] = run_experiment(realapp_machine_for(args, kind), w, scale.run());
    std::fprintf(stderr, "  %-18s done (%.2f us)\n", short_name(kind),
                 results[kind].mean_latency_us);
  }
  for (PathKind kind : kAllPaths) {
    t.add_row({short_name(kind),
               Table::fmt(normalized_throughput(
                              results[kind], results[PathKind::kBlockIo]),
                          2),
               Table::fmt(to_mib(results[kind].traffic_bytes), 1),
               Table::fmt(results[kind].mean_latency_us, 2)});
  }
  emit(t, args);
  std::printf(
      "\nExpected shape (by analogy with Fig. 9): Pipette above block I/O\n"
      "with an order of magnitude less traffic; no-cache byte paths below\n"
      "block I/O.\n");
  return 0;
}
