// Ablation A7: on-disk fragmentation. Shorter extents defeat the generic
// block layer's request merging (sequential scans split into many
// commands), while Pipette's fine-grained path — which resolves byte
// ranges through the LBA Extractor page by page — is insensitive to it.
#include "bench_common.h"

namespace {

using namespace pipette;
using namespace pipette::bench;

// Sequential 64 KiB scan over a possibly fragmented file.
class ScanWorkload final : public Workload {
 public:
  explicit ScanWorkload(std::uint64_t max_extent_blocks) {
    // A 3-block hole between extents makes the fragmentation physical —
    // adjacent extents would otherwise still merge at the block layer.
    files_.push_back({"scan.dat", 512ull * kMiB, max_extent_blocks,
                      max_extent_blocks == 0 ? 0ull : 3ull});
  }
  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override {
    const std::uint64_t offset = pos_;
    pos_ = (pos_ + kChunk) % (files_[0].size - kChunk);
    return {0, offset, kChunk, false};
  }
  std::string name() const override { return "scan"; }

 private:
  static constexpr std::uint32_t kChunk = 64 * 1024;
  std::vector<FileSpec> files_;
  std::uint64_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Scale scale = Scale::from_args(args);
  if (args.requests == 0 && !args.quick) scale = {20'000, 2'000};
  print_header("Ablation A7 — extent fragmentation vs block-layer merging",
               scale);

  Table t({"max extent", "scan MiB/s", "merged cmds per 16-page read"});
  for (std::uint64_t max_extent : {0ull, 16ull, 4ull, 1ull}) {
    ScanWorkload w(max_extent);
    MachineConfig config = default_machine_for(args, PathKind::kBlockIo);
    config.page_cache_bytes = 8 * kMiB;  // scan never fits: always fetch
    Machine machine(config, w.files());
    const int fd =
        machine.vfs().open(w.files()[0].name, machine.open_flags(false));
    std::vector<std::uint8_t> buf(64 * 1024);
    for (std::uint64_t i = 0; i < scale.warmup; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    const SimTime t0 = machine.sim().now();
    const auto& bl = machine.block_path()->block_layer();
    const std::uint64_t pages0 = bl.stats().page_requests;
    const std::uint64_t cmds0 = bl.stats().merged_requests;
    for (std::uint64_t i = 0; i < scale.requests; ++i) {
      const Request rq = w.next();
      machine.vfs().pread(fd, rq.offset, {buf.data(), rq.len});
    }
    const double secs = static_cast<double>(machine.sim().now() - t0) / 1e9;
    const double mib_s = static_cast<double>(scale.requests) * 64.0 / 1024.0 /
                         secs;
    const double cmds_per_16 =
        16.0 * static_cast<double>(bl.stats().merged_requests - cmds0) /
        static_cast<double>(bl.stats().page_requests - pages0);
    t.add_row({max_extent == 0 ? "contiguous" : std::to_string(max_extent) +
                                                    " blocks",
               Table::fmt(mib_s, 1), Table::fmt(cmds_per_16, 2)});
    std::fprintf(stderr, "  max_extent=%llu done\n",
                 static_cast<unsigned long long>(max_extent));
  }
  emit(t, args);
  return 0;
}
