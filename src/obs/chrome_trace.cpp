#include "obs/chrome_trace.h"

#include <cstdio>
#include <string>

#include "common/json.h"

namespace pipette {

namespace {

void metadata_event(JsonWriter& w, const char* name, std::size_t pid,
                    std::size_t tid, bool thread_scope,
                    const std::string& value) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", "M");
  w.kv("pid", pid);
  if (thread_scope) w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

// One "ph":"C" counter event: Perfetto plots each args key as a series on
// a track named `name` under process `pid`.
template <typename Emit>
void counter_event(JsonWriter& w, const char* name, std::size_t pid,
                   SimTime ts, Emit&& emit_args) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", "C");
  w.kv("ts", static_cast<double>(ts) / 1e3, 3);
  w.kv("pid", pid);
  w.key("args");
  w.begin_object();
  emit_args(w);
  w.end_object();
  w.end_object();
}

// Counter tracks from the sim-time series. Cumulative fields (ops, busy
// ns) are differenced between consecutive samples so each point is the
// rate/utilization over its interval; depth fields are plotted as-is.
void counter_events(JsonWriter& w, std::size_t pid,
                    const std::vector<TimeSample>& timeline) {
  TimeSample prev;  // zero: the series starts at measurement start
  for (const TimeSample& s : timeline) {
    const double dt_s = static_cast<double>(s.t - prev.t) / 1e9;
    if (dt_s <= 0.0) continue;
    const double dt_ns = static_cast<double>(s.t - prev.t);
    counter_event(w, "throughput_ops_s", pid, s.t, [&](JsonWriter& a) {
      a.kv("reads", static_cast<double>(s.reads - prev.reads) / dt_s, 1);
      a.kv("writes", static_cast<double>(s.writes - prev.writes) / dt_s, 1);
    });
    counter_event(w, "hit_ratio_pct", pid, s.t, [&](JsonWriter& a) {
      a.kv("page_cache", s.page_cache_hit_ratio * 100.0, 2);
      a.kv("fgrc", s.fgrc_hit_ratio * 100.0, 2);
    });
    counter_event(w, "utilization_pct", pid, s.t, [&](JsonWriter& a) {
      a.kv("nand",
           100.0 * static_cast<double>(s.nand_busy_ns - prev.nand_busy_ns) /
               dt_ns,
           2);
      a.kv("interconnect",
           100.0 *
               static_cast<double>(s.interconnect_busy_ns -
                                   prev.interconnect_busy_ns) /
               dt_ns,
           2);
      a.kv("gc",
           100.0 * static_cast<double>(s.gc_busy_ns - prev.gc_busy_ns) /
               dt_ns,
           2);
    });
    counter_event(w, "queue_depth", pid, s.t, [&](JsonWriter& a) {
      a.kv("info_ring", static_cast<std::uint64_t>(s.info_ring_depth));
      a.kv("nand", static_cast<std::uint64_t>(s.nand_queue_depth));
    });
    counter_event(w, "gc_fault_activity", pid, s.t, [&](JsonWriter& a) {
      a.kv("gc_moves", s.gc_moves - prev.gc_moves);
      a.kv("read_retries", s.read_retries - prev.read_retries);
      a.kv("degraded_reads", s.degraded_reads - prev.degraded_reads);
    });
    prev = s;
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<ShardTrace>& shards) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t pid = 0; pid < shards.size(); ++pid) {
    metadata_event(w, "process_name", pid, 0, /*thread_scope=*/false,
                   shards[pid].label);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const Stage stage = static_cast<Stage>(s);
      metadata_event(w, "thread_name", pid, s, /*thread_scope=*/true,
                     std::string(stage_track(stage)) + "/" +
                         stage_name(stage));
    }
    for (const TraceSpan& span : shards[pid].spans) {
      w.begin_object();
      w.kv("name", stage_name(span.stage));
      w.kv("cat", stage_track(span.stage));
      w.kv("ph", "X");
      // Trace-event timestamps are microseconds; keep ns resolution with
      // three decimals.
      w.kv("ts", static_cast<double>(span.begin) / 1e3, 3);
      w.kv("dur", static_cast<double>(span.end - span.begin) / 1e3, 3);
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::size_t>(span.stage));
      w.key("args");
      w.begin_object();
      w.kv("request", span.request);
      w.end_object();
      w.end_object();
    }
    counter_events(w, pid, shards[pid].timeline);
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<ShardTrace>& shards) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pipette: cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::string doc = chrome_trace_json(shards);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace pipette
