#include "obs/chrome_trace.h"

#include <cstdio>
#include <string>

#include "common/json.h"

namespace pipette {

namespace {

void metadata_event(JsonWriter& w, const char* name, std::size_t pid,
                    std::size_t tid, bool thread_scope,
                    const std::string& value) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", "M");
  w.kv("pid", pid);
  if (thread_scope) w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const std::vector<ShardTrace>& shards) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t pid = 0; pid < shards.size(); ++pid) {
    metadata_event(w, "process_name", pid, 0, /*thread_scope=*/false,
                   shards[pid].label);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const Stage stage = static_cast<Stage>(s);
      metadata_event(w, "thread_name", pid, s, /*thread_scope=*/true,
                     std::string(stage_track(stage)) + "/" +
                         stage_name(stage));
    }
    for (const TraceSpan& span : shards[pid].spans) {
      w.begin_object();
      w.kv("name", stage_name(span.stage));
      w.kv("cat", stage_track(span.stage));
      w.kv("ph", "X");
      // Trace-event timestamps are microseconds; keep ns resolution with
      // three decimals.
      w.kv("ts", static_cast<double>(span.begin) / 1e3, 3);
      w.kv("dur", static_cast<double>(span.end - span.begin) / 1e3, 3);
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::size_t>(span.stage));
      w.key("args");
      w.begin_object();
      w.kv("request", span.request);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<ShardTrace>& shards) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pipette: cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::string doc = chrome_trace_json(shards);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace pipette
