// Request-scoped tracing: per-stage span timestamps for every read.
//
// Design rules (DESIGN.md §5b):
//  * The tracer is PASSIVE. It only reads sim.now() and timestamps the
//    instrumented code already computed; it never advances time, never
//    schedules events, never draws randomness. Tracing on/off therefore
//    yields bit-identical simulations — the golden trace and obs_test pin
//    this.
//  * Disabled cost is near zero. With PIPETTE_TRACE_ENABLED=0 the macros
//    and TraceScope compile away entirely; with it on (the default) but no
//    tracer installed, each site is a single pointer test.
//  * Stages are attributed to the *current* request (the last
//    PIPETTE_TRACE_REQUEST). The request model is closed-loop — one
//    outstanding read per machine — so device-side spans land on the right
//    request; the only exception is asynchronous read-ahead, whose NAND/DMA
//    work is charged to the request that happens to be in flight when it
//    completes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "des/simulator.h"

#ifndef PIPETTE_TRACE_ENABLED
#define PIPETTE_TRACE_ENABLED 1
#endif

namespace pipette {

/// Pipeline stage taxonomy. Order is presentation order in the
/// decomposition table: host-side stages first, then queue/firmware, then
/// media, then transfer, then completion.
enum class Stage : std::uint8_t {
  kHostSubmit = 0,  // syscall + VFS dispatch on the host CPU
  kPageCache,       // host page-cache probe + readahead bookkeeping
  kDetector,        // Pipette fine-grained-read detector check
  kFgrcLookup,      // FGRC index probe (hit copy cost charged to kHostCopy)
  kFgrcFill,        // FGRC promotion fill: HMB read + slab insert
  kExtentLookup,    // filesystem extent mapping
  kInfoRing,        // Info-ring slot enqueue (instant; occupancy in args)
  kSpecFill,        // speculative prefetch issue + fill bookkeeping
  kQueue,           // NVMe submission: doorbell to firmware pickup
  kFtl,             // firmware command parse + FTL lookup
  kNandSense,       // first NAND sensing pass (tR)
  kNandRetry,       // additional sensing passes + backoff on read retry
  kNandBus,         // NAND channel transfer die -> controller buffer
  kPcieDma,         // PCIe DMA device -> host (block data / CMB pull)
  kHmbDma,          // PCIe DMA into the host memory buffer (fine-grained)
  kLmbDma,          // CXL DMA into the linked memory buffer (fine-grained)
  kHostCopy,        // host-side copy-out to the user buffer
  kComplete,        // completion doorbell + interrupt path
  kStageCount,
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kStageCount);

/// Short stable identifier, e.g. "nand_sense". Used in tables and JSON.
const char* stage_name(Stage s);

/// Lane grouping for Chrome-trace tid rows: "host", "firmware", "media",
/// "transfer". Keeps Perfetto views readable with 16 stages.
const char* stage_track(Stage s);

struct TraceConfig {
  bool enabled = false;
  /// Span-window bound for Chrome-trace export. Aggregation (stage
  /// histograms) is unaffected; spans past the cap are counted as dropped.
  std::uint32_t max_spans = 65536;
};

/// One timestamped stage interval, attributed to a request ordinal.
struct TraceSpan {
  SimTime begin = 0;
  SimTime end = 0;
  std::uint64_t request = 0;
  Stage stage = Stage::kHostSubmit;

  bool operator==(const TraceSpan&) const = default;
};

/// Collects spans and per-stage latency histograms for one Machine.
/// Installed on the Simulator so device-layer code (nand, pcie,
/// controller) can reach it without plumbing a pointer through every
/// constructor.
class Tracer {
 public:
  explicit Tracer(const TraceConfig& config) : config_(config) {
    stage_latency_.resize(kStageCount);
  }

  /// Marks the start of a new request; subsequent spans attribute to it.
  void begin_request() { ++current_request_; }

  std::uint64_t current_request() const { return current_request_; }

  /// Records [begin, end] for `stage` on the current request. Zero-length
  /// spans are kept in the histogram (a real stage that cost 0 ns) but
  /// skipped in the span window to keep exports dense.
  void span(Stage stage, SimTime begin, SimTime end) {
    const auto idx = static_cast<std::size_t>(stage);
    stage_latency_[idx].record(end - begin);
    if (begin == end) return;
    if (spans_.size() < config_.max_spans) {
      spans_.push_back({begin, end, current_request_, stage});
    } else {
      ++spans_dropped_;
    }
  }

  const std::vector<LatencyHistogram>& stage_latency() const {
    return stage_latency_;
  }

  /// Moves the bounded span window out (tracer keeps aggregating after).
  std::vector<TraceSpan> take_spans() { return std::move(spans_); }

  std::uint64_t spans_dropped() const { return spans_dropped_; }

 private:
  TraceConfig config_;
  std::vector<LatencyHistogram> stage_latency_;
  std::vector<TraceSpan> spans_;
  std::uint64_t current_request_ = 0;
  std::uint64_t spans_dropped_ = 0;
};

/// Bucket-wise merge of per-stage histogram vectors (fleet shard merge).
/// Either side may be empty (tracing disabled on that shard).
void merge_stage_latency(std::vector<LatencyHistogram>& into,
                         const std::vector<LatencyHistogram>& from);

#if PIPETTE_TRACE_ENABLED

/// Records [begin_ns, end_ns] for `stage` if a tracer is installed.
#define PIPETTE_TRACE_SPAN(sim, stage, begin_ns, end_ns)         \
  do {                                                           \
    if (::pipette::Tracer* pipette_tracer_ = (sim).tracer())     \
      pipette_tracer_->span((stage), (begin_ns), (end_ns));      \
  } while (0)

/// Marks the start of a new request on the installed tracer.
#define PIPETTE_TRACE_REQUEST(sim)                               \
  do {                                                           \
    if (::pipette::Tracer* pipette_tracer_ = (sim).tracer())     \
      pipette_tracer_->begin_request();                          \
  } while (0)

/// RAII span over a host-side code region that advances sim time inline
/// (advance() calls between construction and destruction).
class TraceScope {
 public:
  TraceScope(Simulator& sim, Stage stage)
      : sim_(sim), tracer_(sim.tracer()), stage_(stage), begin_(sim.now()) {}
  ~TraceScope() {
    if (tracer_ != nullptr) tracer_->span(stage_, begin_, sim_.now());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Simulator& sim_;
  Tracer* tracer_;
  Stage stage_;
  SimTime begin_;
};

#else  // !PIPETTE_TRACE_ENABLED

#define PIPETTE_TRACE_SPAN(sim, stage, begin_ns, end_ns) \
  do {                                                   \
    (void)(sim);                                         \
  } while (0)
#define PIPETTE_TRACE_REQUEST(sim) \
  do {                             \
    (void)(sim);                   \
  } while (0)

class TraceScope {
 public:
  TraceScope(Simulator& sim, Stage stage) {
    (void)sim;
    (void)stage;
  }
};

#endif  // PIPETTE_TRACE_ENABLED

}  // namespace pipette
