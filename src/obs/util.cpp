#include "obs/util.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

namespace pipette {

void export_usage(MetricsRegistry& out, const std::string& name,
                  ResourceUsage& usage, std::uint64_t units, SimTime now) {
  out.set("util." + name + ".busy_ns", usage.busy_ns());
  out.set("util." + name + ".ops", usage.ops());
  out.set("util." + name + ".units", units);
  out.set("queue." + name + ".wait_ns", usage.wait_ns());
  out.set("queue." + name + ".depth_integral_ns",
          usage.depth_integral_ns(now));
  out.set("queue." + name + ".depth_peak", usage.depth_peak(now));
}

void export_occupancy(MetricsRegistry& out, const std::string& name,
                      OccupancyIntegrator& occ, std::uint64_t units,
                      SimTime now) {
  occ.advance(now);
  out.set("util." + name + ".busy_ns", occ.busy_ns());
  out.set("util." + name + ".units", units);
  out.set("queue." + name + ".depth_integral_ns", occ.integral_ns());
  out.set("queue." + name + ".depth_peak", occ.peak());
}

double ResourceReport::littles_residual() const {
  if (!has_waits || depth_integral_ns == 0) return 0.0;
  const double integral = static_cast<double>(depth_integral_ns);
  const double in_system = static_cast<double>(busy_ns + wait_ns);
  return std::fabs(integral - in_system) / integral;
}

BottleneckReport BottleneckReport::from_metrics(
    const MetricsRegistry& metrics) {
  BottleneckReport report;
  report.elapsed_ns_ = metrics.value("util.sim_time_ns");
  constexpr const char* kPrefix = "util.";
  constexpr const char* kSuffix = ".busy_ns";
  for (const auto& [key, busy] : metrics.values()) {
    if (key.rfind(kPrefix, 0) != 0) continue;
    if (key.size() <= std::string(kPrefix).size() + std::string(kSuffix).size())
      continue;
    if (key.compare(key.size() - 8, 8, kSuffix) != 0) continue;
    const std::string name =
        key.substr(5, key.size() - 5 - 8);  // util.<name>.busy_ns
    ResourceReport r;
    r.name = name;
    r.busy_ns = busy;
    r.units = std::max<std::uint64_t>(1, metrics.value("util." + name +
                                                       ".units"));
    r.ops = metrics.value("util." + name + ".ops");
    r.has_waits = metrics.contains("queue." + name + ".wait_ns");
    r.wait_ns = metrics.value("queue." + name + ".wait_ns");
    r.depth_integral_ns = metrics.value("queue." + name +
                                        ".depth_integral_ns");
    r.depth_peak = metrics.value("queue." + name + ".depth_peak");
    report.resources_.push_back(std::move(r));
  }
  // Service resources (with wait accounting) rank first: their busy time is
  // consumed capacity. Occupancy accounts (info ring, buffers, budgets)
  // follow unranked — a ring that is merely non-empty 90% of the time is
  // pipelining fine, not a constraint, so comparing its nonzero-level time
  // against a die's service time would misattribute the bottleneck.
  std::sort(report.resources_.begin(), report.resources_.end(),
            [](const ResourceReport& a, const ResourceReport& b) {
              if (a.has_waits != b.has_waits) return a.has_waits;
              if (a.busy_ns != b.busy_ns) return a.busy_ns > b.busy_ns;
              return a.name < b.name;
            });
  return report;
}

std::string BottleneckReport::top() const {
  for (const ResourceReport& r : resources_) {
    if (r.has_waits && r.busy_ns > 0) return r.name;
  }
  return "";
}

double BottleneckReport::max_littles_residual() const {
  double worst = 0.0;
  for (const ResourceReport& r : resources_) {
    worst = std::max(worst, r.littles_residual());
  }
  return worst;
}

Table BottleneckReport::to_table() const {
  Table t({"resource", "busy share", "util/unit%", "mean depth", "mean wait us",
           "peak depth", "littles resid%"});
  for (const ResourceReport& r : resources_) {
    const double share = r.busy_share(elapsed_ns_);
    t.add_row({r.name, Table::fmt(share, 3),
               Table::fmt(share / static_cast<double>(r.units) * 100.0, 2),
               Table::fmt(r.mean_depth(elapsed_ns_), 3),
               r.has_waits ? Table::fmt(r.mean_wait_us(), 2) : "-",
               std::to_string(r.depth_peak),
               r.has_waits ? Table::fmt(r.littles_residual() * 100.0, 3)
                           : "-"});
  }
  return t;
}

}  // namespace pipette
