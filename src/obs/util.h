// Utilization & queueing observability: per-resource busy accounting,
// time-weighted queue-depth integrals, and bottleneck attribution.
//
// Every contended resource in the simulator already expresses contention as
// a busy-until horizon: an operation submitted at `arrival` computes
// `start = max(arrival, busy_until)` and `end = start + service` at
// scheduling time, so (arrival, start, end) is known the instant the op is
// issued — possibly entirely in the sim's future. This layer records those
// already-computed triples and nothing else. The contract is the tracer's
// (DESIGN §5b): strictly passive — no events scheduled, no sim time
// advanced, no RNG drawn — so an instrumented run is bit-identical to an
// uninstrumented one, a property the golden trace fixtures pin.
//
// Two accounting identities make the numbers trustworthy:
//
//  * busy_ns   = sum(end - start)         (service time)
//    wait_ns   = sum(start - arrival)     (queueing time)
//  * depth_integral_ns = time-integral of "operations in system", computed
//    independently by sweeping the (arrival, +1)/(end, -1) edge events in
//    time order.
//
// By Fubini, depth_integral_ns == busy_ns + wait_ns exactly — the same
// quantity computed through two different code paths. BottleneckReport
// surfaces the relative difference as a Little's-law residual (L = λW with
// λ = ops/T and W = (busy+wait)/ops gives λW·T = busy+wait ≈ ∫depth): a
// nonzero residual means the accounting itself is broken, so the check is
// a self-test, not a model validation.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace pipette {

class Table;

/// Busy/wait/depth accounting for one serialised resource (or a pool of
/// identical units accounted together, e.g. all NAND dies). record() is
/// called at op submission with the already-computed horizon times; the
/// depth sweep drains lazily up to the recording sim time and fully at
/// collection, so recording is O(log in-flight) with no event-queue access.
class ResourceUsage {
 public:
  /// Account one operation: queued at `arrival`, service [start, end).
  /// `now` is the current sim time (drain limit: edge events later than
  /// `now` may belong to ops not yet submitted, so they stay pending).
  /// Requires arrival >= any previous `now` and arrival <= start <= end.
  void record(SimTime now, SimTime arrival, SimTime start, SimTime end) {
    ++ops_;
    busy_ns_ += end - start;
    wait_ns_ += start - arrival;
    pending_.emplace(arrival, +1);
    pending_.emplace(end, -1);
    drain(now);
  }

  std::uint64_t ops() const { return ops_; }
  std::uint64_t busy_ns() const { return busy_ns_; }
  std::uint64_t wait_ns() const { return wait_ns_; }

  /// Independent depth integral, advanced to `now` (drains pending edges).
  std::uint64_t depth_integral_ns(SimTime now) {
    drain(now);
    return depth_integral_ns_;
  }
  /// Highest concurrent op count observed up to `now`.
  std::uint32_t depth_peak(SimTime now) {
    drain(now);
    return peak_;
  }
  /// Ops in system (queued or in service) at `now`.
  std::uint32_t depth(SimTime now) {
    drain(now);
    return static_cast<std::uint32_t>(level_);
  }

 private:
  /// Sweep edge events with time <= now in (time, delta) order. The delta
  /// tie-break (-1 before +1) keeps back-to-back ops from counting depth 2
  /// at the shared instant, and makes the sweep order deterministic.
  /// Draining past `now` would be wrong: an op submitted later can still
  /// carry an arrival earlier than already-pending future edges.
  void drain(SimTime now) {
    while (!pending_.empty() && pending_.top().first <= now) {
      const auto [t, delta] = pending_.top();
      pending_.pop();
      advance_to(t);
      level_ += delta;
      if (level_ > static_cast<std::int64_t>(peak_))
        peak_ = static_cast<std::uint32_t>(level_);
    }
    advance_to(now);
  }

  void advance_to(SimTime t) {
    if (t <= swept_to_) return;
    depth_integral_ns_ +=
        static_cast<std::uint64_t>(level_) * (t - swept_to_);
    swept_to_ = t;
  }

  using Edge = std::pair<SimTime, std::int8_t>;
  std::uint64_t ops_ = 0;
  std::uint64_t busy_ns_ = 0;
  std::uint64_t wait_ns_ = 0;
  std::uint64_t depth_integral_ns_ = 0;
  std::int64_t level_ = 0;
  std::uint32_t peak_ = 0;
  SimTime swept_to_ = 0;
  std::priority_queue<Edge, std::vector<Edge>, std::greater<Edge>> pending_;
};

/// Time-weighted occupancy accounting for a level that changes at known
/// instants (Info-ring in-flight records, GC page-buffer reads, the
/// prefetcher's outstanding budget). update() is called right after the
/// level changes; busy time is the time spent at a nonzero level.
class OccupancyIntegrator {
 public:
  void update(SimTime now, std::uint64_t level) {
    advance(now);
    level_ = level;
    if (level > peak_) peak_ = level;
  }

  /// Extend the integral to `now` without changing the level.
  void advance(SimTime now) {
    if (now > last_) {
      integral_ns_ += level_ * (now - last_);
      if (level_ > 0) busy_ns_ += now - last_;
      last_ = now;
    }
  }

  std::uint64_t level() const { return level_; }
  std::uint64_t peak() const { return peak_; }
  std::uint64_t integral_ns() const { return integral_ns_; }
  std::uint64_t busy_ns() const { return busy_ns_; }

 private:
  std::uint64_t level_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t integral_ns_ = 0;
  std::uint64_t busy_ns_ = 0;  // time at nonzero occupancy
  SimTime last_ = 0;
};

/// Export one ResourceUsage under util.<name>.* / queue.<name>.* metric
/// names. The depth peak deliberately ends in "_peak" so the fleet merge
/// takes the max across shards instead of summing (MetricsRegistry rule).
void export_usage(MetricsRegistry& out, const std::string& name,
                  ResourceUsage& usage, std::uint64_t units, SimTime now);

/// Export one OccupancyIntegrator the same way (busy_ns = nonzero time).
void export_occupancy(MetricsRegistry& out, const std::string& name,
                      OccupancyIntegrator& occ, std::uint64_t units,
                      SimTime now);

/// One ranked row of the bottleneck report, reconstructed from util.* and
/// queue.* registry entries (so it works identically on a RunResult and on
/// a fleet's merged registry, where busy and elapsed both sum per shard).
struct ResourceReport {
  std::string name;
  std::uint64_t units = 1;
  std::uint64_t ops = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t depth_integral_ns = 0;
  std::uint64_t depth_peak = 0;
  bool has_waits = false;  // occupancy-only resources have no wait account

  /// Total busy time over elapsed — the ranking key. Exceeds 1.0 when a
  /// pool's units are busy concurrently; per-unit utilization is
  /// busy_share / units.
  double busy_share(std::uint64_t elapsed_ns) const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(busy_ns) /
                     static_cast<double>(elapsed_ns);
  }
  double mean_depth(std::uint64_t elapsed_ns) const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(depth_integral_ns) /
                     static_cast<double>(elapsed_ns);
  }
  double mean_wait_us() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(wait_ns) /
                          static_cast<double>(ops) / 1e3;
  }
  /// |∫depth - (busy + wait)| / ∫depth — zero when the two independent
  /// accounts agree (see the file comment). Only defined for resources
  /// with wait accounting.
  double littles_residual() const;
};

/// Ranks every instrumented resource by busy-time share and cross-checks
/// the queueing accounts. Built from a metrics registry, so it applies to
/// single runs and merged fleet registries alike.
class BottleneckReport {
 public:
  static BottleneckReport from_metrics(const MetricsRegistry& metrics);

  /// Rows sorted service resources first (those with wait accounting),
  /// then by descending busy share, ties broken by name. Occupancy-only
  /// accounts trail the ranking: their busy time is time-at-nonzero-level,
  /// which is not comparable to consumed service capacity.
  const std::vector<ResourceReport>& resources() const { return resources_; }
  /// The top-ranked service resource name (has_waits and busy), or ""
  /// when no service resource did any work.
  std::string top() const;
  std::uint64_t elapsed_ns() const { return elapsed_ns_; }
  /// Worst Little's-law residual across resources with wait accounting.
  double max_littles_residual() const;

  /// Rendered via the common Table: resource, busy share, per-unit
  /// utilization, mean depth, mean wait, peak depth, residual.
  Table to_table() const;

 private:
  std::vector<ResourceReport> resources_;
  std::uint64_t elapsed_ns_ = 0;
};

}  // namespace pipette
