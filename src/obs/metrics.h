// Named counter/gauge registry snapshotted into RunResult.
//
// Names are dotted paths ("fgrc.promotions", "nand.read_retries"). The
// backing store is an ordered map so iteration — and therefore every JSON
// export and equality check — is deterministic. Values are unsigned 64-bit;
// ratios and rates are derived at presentation time from their numerator
// and denominator counters rather than stored as floats.
//
// Collection is always-on (Machine::collect_metrics runs whether or not
// tracing is enabled), so metrics participate in RunResult::Deterministic()
// and the fleet determinism contract.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pipette {

class MetricsRegistry {
 public:
  void set(const std::string& name, std::uint64_t v) { values_[name] = v; }
  void add(const std::string& name, std::uint64_t v) { values_[name] += v; }

  /// 0 for unknown names — absent and zero are intentionally the same.
  std::uint64_t value(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  bool contains(const std::string& name) const {
    return values_.count(name) != 0;
  }

  const std::map<std::string, std::uint64_t>& values() const {
    return values_;
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// True for names the fleet merge must treat as high-water gauges:
  /// summing a peak across shards would report a depth no shard ever saw.
  /// The convention is part of the metric-naming contract (obs_test pins
  /// it): peaks end in "_peak" or ".peak".
  static bool is_peak(std::string_view name) {
    return name.ends_with("_peak") || name.ends_with(".peak");
  }

  /// Key-wise cross-shard merge: counters sum; high-water gauges (see
  /// is_peak) take the max. Per-shard values stay available in the shard
  /// results.
  void merge_add(const MetricsRegistry& other) {
    for (const auto& [name, v] : other.values_) {
      std::uint64_t& mine = values_[name];
      mine = is_peak(name) ? std::max(mine, v) : mine + v;
    }
  }

  bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace pipette
