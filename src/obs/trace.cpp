#include "obs/trace.h"

#include "common/assert.h"

namespace pipette {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kHostSubmit: return "host_submit";
    case Stage::kPageCache: return "page_cache";
    case Stage::kDetector: return "detector";
    case Stage::kFgrcLookup: return "fgrc_lookup";
    case Stage::kFgrcFill: return "fgrc_fill";
    case Stage::kExtentLookup: return "extent_lookup";
    case Stage::kInfoRing: return "info_ring";
    case Stage::kSpecFill: return "spec_fill";
    case Stage::kQueue: return "queue";
    case Stage::kFtl: return "ftl";
    case Stage::kNandSense: return "nand_sense";
    case Stage::kNandRetry: return "nand_retry";
    case Stage::kNandBus: return "nand_bus";
    case Stage::kPcieDma: return "pcie_dma";
    case Stage::kHmbDma: return "hmb_dma";
    case Stage::kLmbDma: return "lmb_dma";
    case Stage::kHostCopy: return "host_copy";
    case Stage::kComplete: return "complete";
    case Stage::kStageCount: break;
  }
  PIPETTE_ASSERT_MSG(false, "invalid stage");
  return "?";
}

const char* stage_track(Stage s) {
  switch (s) {
    case Stage::kHostSubmit:
    case Stage::kPageCache:
    case Stage::kDetector:
    case Stage::kFgrcLookup:
    case Stage::kFgrcFill:
    case Stage::kExtentLookup:
    case Stage::kInfoRing:
    case Stage::kSpecFill:
    case Stage::kHostCopy:
      return "host";
    case Stage::kQueue:
    case Stage::kFtl:
    case Stage::kComplete:
      return "firmware";
    case Stage::kNandSense:
    case Stage::kNandRetry:
    case Stage::kNandBus:
      return "media";
    case Stage::kPcieDma:
    case Stage::kHmbDma:
    case Stage::kLmbDma:
      return "transfer";
    case Stage::kStageCount:
      break;
  }
  PIPETTE_ASSERT_MSG(false, "invalid stage");
  return "?";
}

void merge_stage_latency(std::vector<LatencyHistogram>& into,
                         const std::vector<LatencyHistogram>& from) {
  if (from.empty()) return;
  if (into.empty()) {
    into = from;
    return;
  }
  PIPETTE_ASSERT(into.size() == from.size());
  for (std::size_t i = 0; i < into.size(); ++i) into[i].merge(from[i]);
}

}  // namespace pipette
