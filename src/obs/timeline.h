// Sim-time series sampling: periodic snapshots of throughput and cache
// state over the measured phase of a run.
//
// The sampler is polled from the experiment loop between requests (host
// side), so it can never perturb the simulation: no events, no RNG, no
// advance(). Samples are taken at most once per poll even when the request
// that just completed straddled several intervals — the series is a
// bounded, evenly-spaced-ish decimation, not an exact integral.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"

namespace pipette {

struct TimelineConfig {
  /// Sampling interval in sim ns; 0 disables the sampler.
  SimDuration interval = 0;
  /// Hard cap on stored samples (long runs stop sampling, not resize).
  std::uint32_t max_samples = 4096;
};

/// One snapshot. Counters are cumulative over the measured phase (deltas
/// against the measurement start), so rates between consecutive samples
/// are simple differences.
struct TimeSample {
  SimDuration t = 0;  // sim time since measurement start
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;  // replicated/dual writes show up here
  std::uint64_t traffic_bytes = 0;
  double page_cache_hit_ratio = 0.0;
  double fgrc_hit_ratio = 0.0;
  std::uint64_t fgrc_bytes = 0;

  // GC and fault activity (cumulative, like the counters above).
  std::uint64_t gc_moves = 0;       // victim pages GC relocated
  std::uint64_t read_retries = 0;   // NAND read-retry passes
  std::uint64_t degraded_reads = 0; // reads served degraded after faults

  // Utilization & queueing (obs/util.h accounts). Busy counters are
  // cumulative ns; depths are instantaneous levels at the sample instant.
  std::uint64_t nand_busy_ns = 0;          // die sensing + programming
  std::uint64_t interconnect_busy_ns = 0;  // PCIe DMA + LMB link
  std::uint64_t gc_busy_ns = 0;            // GC-attributed NAND time
  std::uint32_t info_ring_depth = 0;
  std::uint32_t nand_queue_depth = 0;

  bool operator==(const TimeSample&) const = default;
};

class TimelineSampler {
 public:
  TimelineSampler(const TimelineConfig& config, SimTime start)
      : config_(config), start_(start), next_(start + config.interval) {}

  /// True when a sample is owed at sim time `now`.
  bool due(SimTime now) const {
    return config_.interval > 0 && samples_.size() < config_.max_samples &&
           now >= next_;
  }

  void record(SimTime now, TimeSample sample) {
    sample.t = now - start_;
    samples_.push_back(sample);
    next_ = now + config_.interval;
  }

  std::vector<TimeSample> take() { return std::move(samples_); }

 private:
  TimelineConfig config_;
  SimTime start_;
  SimTime next_;
  std::vector<TimeSample> samples_;
};

}  // namespace pipette
