// Chrome trace-event JSON export (the format Perfetto and chrome://tracing
// load). Each shard/system becomes a process row (pid), each stage lane a
// thread row (tid), each TraceSpan a complete ("ph":"X") event with µs
// timestamps. See EXPERIMENTS.md for how to load the output.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace pipette {

/// One process row in the trace: a shard or a system under comparison.
struct ShardTrace {
  std::string label;
  std::vector<TraceSpan> spans;
};

/// Renders the full JSON document ({"traceEvents": [...]}).
std::string chrome_trace_json(const std::vector<ShardTrace>& shards);

/// chrome_trace_json + write to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ShardTrace>& shards);

}  // namespace pipette
