// Chrome trace-event JSON export (the format Perfetto and chrome://tracing
// load). Each shard/system becomes a process row (pid), each stage lane a
// thread row (tid), each TraceSpan a complete ("ph":"X") event with µs
// timestamps. See EXPERIMENTS.md for how to load the output.
#pragma once

#include <string>
#include <vector>

#include "obs/timeline.h"
#include "obs/trace.h"

namespace pipette {

/// One process row in the trace: a shard or a system under comparison.
/// When `timeline` is non-empty, its samples additionally render as
/// Perfetto counter tracks ("ph":"C"): per-interval throughput, hit
/// ratios, per-resource utilization, and instantaneous queue depths,
/// drawn alongside the per-read spans.
struct ShardTrace {
  std::string label;
  std::vector<TraceSpan> spans;
  std::vector<TimeSample> timeline;
};

/// Renders the full JSON document ({"traceEvents": [...]}).
std::string chrome_trace_json(const std::vector<ShardTrace>& shards);

/// chrome_trace_json + write to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ShardTrace>& shards);

}  // namespace pipette
