#include "pipette/fgrc.h"

#include <algorithm>

#include "common/assert.h"

namespace pipette {

FineGrainedReadCache::FineGrainedReadCache(Hmb& hmb, FgrcConfig config,
                                           const RatioCounter* page_cache_hits)
    : hmb_(hmb),
      config_(config),
      store_(hmb, config.slab),
      adaptive_(config.adaptive),
      ghosts_(config.adaptive.ghost_capacity),
      page_cache_hits_(page_cache_hits),
      evictions_at_epoch_(store_.classes(), 0) {
  stats_.class_promotions.resize(store_.classes(), 0);
}

std::optional<std::span<const std::uint8_t>> FineGrainedReadCache::lookup(
    const FgKey& key) {
  ++accesses_since_epoch_;
  if (config_.reassign.enabled &&
      accesses_since_epoch_ >= config_.reassign.epoch_accesses) {
    run_reassignment_epoch();
    accesses_since_epoch_ = 0;
  }

  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.lookups.record(true);
    adaptive_.on_access(/*repeated=*/true);
    store_.touch(it->second);
    return store_.data(it->second);
  }
  stats_.lookups.record(false);
  adaptive_.on_access(/*repeated=*/ghosts_.seen(key));
  return std::nullopt;
}

HmbAddr FineGrainedReadCache::tempbuf_addr(std::uint32_t len) {
  // With speculative staging enabled, demand staging is confined to the
  // lower half so an in-flight speculative DMA can never clobber bytes a
  // demand read is about to copy out.
  const auto total = static_cast<HmbAddr>(hmb_.tempbuf().size());
  const HmbAddr limit = spec_staging_ ? total / 2 : total;
  PIPETTE_ASSERT_MSG(len <= limit, "TempBuf smaller than one object");
  if (tempbuf_cursor_ + len > limit) tempbuf_cursor_ = 0;
  const HmbAddr addr = hmb_.tempbuf_offset() + tempbuf_cursor_;
  tempbuf_cursor_ += len;
  stats_.tempbuf_peak_bytes =
      std::max<std::uint64_t>(stats_.tempbuf_peak_bytes, tempbuf_cursor_);
  return addr;
}

HmbAddr FineGrainedReadCache::spec_tempbuf_addr(std::uint32_t len) {
  PIPETTE_ASSERT(spec_staging_);
  const auto total = static_cast<HmbAddr>(hmb_.tempbuf().size());
  const HmbAddr base = total / 2;
  const HmbAddr size = total - base;
  PIPETTE_ASSERT_MSG(len <= size, "TempBuf half smaller than one object");
  if (spec_cursor_ + len > size) spec_cursor_ = 0;
  const HmbAddr addr = hmb_.tempbuf_offset() + base + spec_cursor_;
  spec_cursor_ += len;
  return addr;
}

bool FineGrainedReadCache::relieve_pressure(std::uint32_t cls) {
  // Dynamic allocation strategy (§3.2.4): when the shared memory has no
  // spare space, compare the two caches' hit ratios. Page cache dominating
  // -> evict our LRU item (solution 1). FGRC dominating -> migrate a slab
  // out of the shared region (solution 2), freeing a whole slab.
  bool prefer_migrate = false;
  switch (config_.policy) {
    case PressurePolicy::kDynamic: {
      const double pc =
          page_cache_hits_ != nullptr ? page_cache_hits_->ratio() : 0.0;
      prefer_migrate = stats_.lookups.ratio() >= pc;
      break;
    }
    case PressurePolicy::kAlwaysEvict:
      prefer_migrate = false;
      break;
    case PressurePolicy::kAlwaysMigrate:
      prefer_migrate = true;
      break;
  }

  if (prefer_migrate && store_.externalize_slab(cls, rng_)) {
    ++stats_.pressure_migrations;
    return true;
  }
  // Evict the least recently used item within the requesting class.
  if (auto evicted = store_.evict_lru(cls)) {
    ++stats_.pressure_evictions;
    remove_index_entry(evicted->first, evicted->second);
    return true;
  }
  // Last resort: migrate even if eviction was preferred but impossible.
  if (store_.externalize_slab(cls, rng_)) {
    ++stats_.pressure_migrations;
    return true;
  }
  return false;
}

std::optional<ItemLoc> FineGrainedReadCache::allocate_with_relief(
    const FgKey& key) {
  const std::uint32_t cls = store_.class_for(key.len);
  std::optional<ItemLoc> loc = store_.allocate(key);
  while (!loc) {
    if (!relieve_pressure(cls)) break;
    loc = store_.allocate(key);
  }
  return loc;
}

MissPlan FineGrainedReadCache::install_promotion(const FgKey& key,
                                                 ItemLoc loc) {
  ghosts_.forget(key);
  ++stats_.promotions;
  const std::uint32_t cls = store_.class_for(key.len);
  if (cls < stats_.class_promotions.size()) ++stats_.class_promotions[cls];
  tables_[key.file].emplace(key.offset, loc);
  const bool inserted = index_.emplace(key, loc).second;
  PIPETTE_ASSERT_MSG(inserted, "promoting an already-cached key");
  MissPlan plan;
  plan.dest = store_.hmb_addr(loc);
  plan.promoted = true;
  plan.loc = loc;
  return plan;
}

MissPlan FineGrainedReadCache::plan_miss(const FgKey& key) {
  const std::uint32_t refs = ghosts_.record(key);
  MissPlan plan;
  if (refs < adaptive_.threshold()) {
    // Below the promotion threshold: low-reuse data stages through TempBuf
    // so it cannot pollute the cache.
    ++stats_.tempbuf_fills;
    plan.dest = tempbuf_addr(key.len);
    plan.promoted = false;
    return plan;
  }

  std::optional<ItemLoc> loc = allocate_with_relief(key);
  if (!loc) {
    // No space and no relief possible: serve through TempBuf.
    ++stats_.tempbuf_fills;
    plan.dest = tempbuf_addr(key.len);
    plan.promoted = false;
    return plan;
  }
  return install_promotion(key, *loc);
}

MissPlan FineGrainedReadCache::plan_speculative(const FgKey& key,
                                                std::uint32_t confidence) {
  // The classifier's confidence (stride run length / cluster density)
  // stands in for the ghost reference count: the same AdaptiveThreshold
  // that gates demand promotions gates speculative ones, so a workload the
  // adaptive machinery judges cache-hostile keeps speculation out of the
  // cache too. The ghost tracker is neither consulted nor recorded —
  // speculative traffic must not inflate demand reuse evidence.
  MissPlan plan;
  if (confidence >= adaptive_.threshold()) {
    if (std::optional<ItemLoc> loc = allocate_with_relief(key)) {
      return install_promotion(key, *loc);
    }
  }
  ++stats_.tempbuf_fills;
  plan.dest = spec_tempbuf_addr(key.len);
  plan.promoted = false;
  return plan;
}

void FineGrainedReadCache::abort_fill(const FgKey& key, const MissPlan& plan) {
  ++stats_.aborted_fills;
  if (!plan.promoted) return;  // TempBuf staging: nothing was reserved
  remove_index_entry(key, plan.loc);
  store_.free_item(plan.loc);
}

void FineGrainedReadCache::remove_index_entry(const FgKey& key, ItemLoc loc) {
  index_.erase(key);
  auto table_it = tables_.find(key.file);
  PIPETTE_ASSERT(table_it != tables_.end());
  auto [lo, hi] = table_it->second.equal_range(key.offset);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == loc) {
      table_it->second.erase(it);
      return;
    }
  }
  PIPETTE_ASSERT_MSG(false, "index entry missing for cached item");
}

std::uint32_t FineGrainedReadCache::invalidate_range(FileId file,
                                                     std::uint64_t offset,
                                                     std::uint64_t len,
                                                     const FgKey* keep) {
  auto table_it = tables_.find(file);
  if (table_it == tables_.end()) return 0;
  FileTable& table = table_it->second;
  std::uint32_t removed = 0;
  // Items are keyed by start offset; an overlapping item can start at most
  // (max item size - 1) bytes before the write.
  const std::uint64_t max_len = config_.slab.class_sizes.back();
  auto it = table.lower_bound(offset >= max_len ? offset - max_len : 0);
  while (it != table.end() && it->first < offset + len) {
    const FgKey k = store_.key(it->second);
    const bool overlaps = k.offset < offset + len && offset < k.offset + k.len;
    if (overlaps && !(keep != nullptr && k == *keep)) {
      store_.free_item(it->second);
      index_.erase(k);
      it = table.erase(it);
      ++removed;
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  // Stale reference counts must not fast-track re-promotion of overwritten
  // data.
  ghosts_.forget({file, offset, static_cast<std::uint32_t>(len)});
  return removed;
}

bool FineGrainedReadCache::update_in_place(
    const FgKey& key, std::span<const std::uint8_t> data) {
  PIPETTE_ASSERT(data.size() == key.len);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  auto dest = store_.mutable_data(it->second);
  std::copy(data.begin(), data.end(), dest.begin());
  store_.touch(it->second);
  return true;
}

bool FineGrainedReadCache::index_consistent() const {
  std::size_t table_entries = 0;
  for (const auto& [file, table] : tables_) {
    table_entries += table.size();
    for (const auto& [offset, loc] : table) {
      const FgKey k = store_.key(loc);
      if (k.file != file || k.offset != offset) return false;
      auto it = index_.find(k);
      if (it == index_.end() || !(it->second == loc)) return false;
    }
  }
  return table_entries == index_.size();
}

void FineGrainedReadCache::run_reassignment_epoch() {
  // Maintenance thread: find slab classes whose eviction counts did not
  // change over the epoch ("unchanged in stages") and hold more than one
  // slab; re-balance thread: migrate one of their slabs out, returning the
  // slab to the free pool.
  for (std::uint32_t cls = 0; cls < store_.classes(); ++cls) {
    const SlabClassStats st = store_.class_stats(cls);
    const bool stagnant = st.evictions == evictions_at_epoch_[cls];
    evictions_at_epoch_[cls] = st.evictions;
    if (stagnant && st.slabs > 1 && store_.free_slabs() == 0) {
      if (store_.externalize_slab_of(cls)) {
        ++stats_.reassigned_slabs;
        break;  // one slab per maintenance pass, like the prototype
      }
    }
  }
}

}  // namespace pipette
