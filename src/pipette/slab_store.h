// Slab-class storage for the fine-grained read cache's Data Area
// (paper §3.2.1, Fig. 3).
//
// The HMB Data Area is divided into uniformly sized slabs; each slab belongs
// to a slab class and is pre-divided into items of that class's capacity.
// Data is stored in the smallest class that fits. Each class tracks the
// start offset of the next free item in its last (open) slab, a cleanup
// array of recycled item slots, a per-class LRU list of live items, and an
// eviction count. When no free memory remains, the caller chooses between
// the paper's two pressure actions:
//   1. evict_lru()       — recycle the class's least recently used item;
//   2. externalize_slab()— migrate one slab of another class out of the
//                          shared region (its data moves to host memory
//                          "allocated out of the fine-grained read cache"),
//                          returning the freed slab to the free pool.
// Externalised items stay readable (hits still count) but their slots can
// no longer receive device DMA, so they are never re-allocated.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "pipette/fg_key.h"
#include "ssd/hmb.h"

namespace pipette {

struct SlabConfig {
  std::uint64_t slab_size = 256 * 1024;
  /// Item capacities, ascending. Default: memcached-style 1.5x growth
  /// covering 64 B .. 4 KiB (the fine-grained size range).
  std::vector<std::uint32_t> class_sizes = {64,   96,   144,  216,
                                            328,  496,  744,  1120,
                                            1680, 2520, 3784, 4096};
  /// Cap on memory migrated out of the shared region (paper solution 2).
  std::uint64_t max_external_bytes = 64ull * 1024 * 1024;
};

/// Stable handle of an item: (slab index, slot index).
struct ItemLoc {
  std::uint32_t slab = ~0u;
  std::uint32_t slot = ~0u;

  bool operator==(const ItemLoc&) const = default;
  bool valid() const { return slab != ~0u; }
};

struct SlabClassStats {
  std::uint32_t item_size = 0;
  std::uint32_t slabs = 0;       // resident slabs owned by the class
  std::uint64_t live_items = 0;
  std::uint64_t evictions = 0;
};

struct SlabStoreStats {
  std::uint64_t resident_slab_bytes = 0;  // slabs taken from the Data Area
  std::uint64_t external_bytes = 0;       // migrated out of the HMB
  std::uint64_t live_items = 0;
  std::uint64_t evictions = 0;
  std::uint64_t migrations = 0;  // slabs externalised
};

class SlabStore {
 public:
  SlabStore(Hmb& hmb, SlabConfig config);

  /// Smallest class whose items fit `len`. Asserts len <= largest class.
  std::uint32_t class_for(std::uint32_t len) const;

  /// Allocate an item for `key` (len = key.len). Returns nullopt when the
  /// class has no free slot and no free slab exists — the caller then
  /// applies a pressure action and retries.
  std::optional<ItemLoc> allocate(const FgKey& key);

  /// Evict the least recently used item of `cls`; its slot joins the
  /// class's cleanup array (if resident). Returns the evicted key and its
  /// (now dead) location, or nullopt if the class holds no items.
  std::optional<std::pair<FgKey, ItemLoc>> evict_lru(std::uint32_t cls);

  /// Migrate one slab of some class other than `requesting_cls` (chosen
  /// pseudo-randomly among classes with more than one slab) out of the
  /// shared region; the freed slab returns to the free pool. Returns false
  /// if no eligible slab exists or the external budget is exhausted.
  bool externalize_slab(std::uint32_t requesting_cls, Rng& rng);

  /// Targeted variant used by the adaptive reassignment strategy: migrate
  /// one slab of `cls` specifically. Same return semantics.
  bool externalize_slab_of(std::uint32_t cls);

  /// Promote an item to MRU within its class.
  void touch(ItemLoc loc);

  /// Remove an item (consistency invalidation).
  void free_item(ItemLoc loc);

  /// Bytes of a live item (HMB-resident or externalised).
  std::span<const std::uint8_t> data(ItemLoc loc) const;

  /// Mutable bytes of a live item (fine-grained write update-in-place).
  std::span<std::uint8_t> mutable_data(ItemLoc loc);

  /// HMB destination address for the device DMA filling this item.
  /// Only valid for resident items (allocate() only returns those).
  HmbAddr hmb_addr(ItemLoc loc) const;

  const FgKey& key(ItemLoc loc) const;
  bool resident(ItemLoc loc) const;

  std::uint32_t classes() const {
    return static_cast<std::uint32_t>(config_.class_sizes.size());
  }
  SlabClassStats class_stats(std::uint32_t cls) const;
  const SlabStoreStats& stats() const { return stats_; }
  std::uint32_t free_slabs() const {
    return static_cast<std::uint32_t>(free_pool_.size());
  }
  /// Total bytes of cache memory in use (resident slabs + external).
  std::uint64_t memory_bytes() const {
    return stats_.resident_slab_bytes + stats_.external_bytes;
  }
  const SlabConfig& config() const { return config_; }

 private:
  struct Slot {
    FgKey key;
    bool live = false;
    std::list<ItemLoc>::iterator lru_it;
  };
  struct Slab {
    std::uint32_t cls = ~0u;
    HmbAddr base = kInvalidHmbAddr;          // offset into the HMB
    std::unique_ptr<std::uint8_t[]> external;  // set once migrated
    std::vector<Slot> slots;
    std::uint32_t live_count = 0;
  };
  struct SlabClass {
    std::uint32_t item_size = 0;
    std::uint32_t items_per_slab = 0;
    std::vector<std::uint32_t> slab_ids;  // resident slabs owned
    std::uint32_t open_slab = ~0u;        // slab with fresh slots left
    std::uint32_t next_fresh = 0;         // next never-used slot in open slab
    std::vector<ItemLoc> cleanup;         // recycled (free) resident slots
    std::list<ItemLoc> lru;               // front = MRU
    std::uint64_t evictions = 0;
  };

  Slot& slot(ItemLoc loc);
  const Slot& slot(ItemLoc loc) const;
  bool take_free_slab(SlabClass& sc, std::uint32_t cls_idx);
  bool externalize(std::uint32_t cls_idx, std::uint32_t slab_id);

  Hmb& hmb_;
  SlabConfig config_;
  std::vector<Slab> slabs_;
  std::vector<SlabClass> classes_;
  std::vector<HmbAddr> free_pool_;  // bases of unassigned slabs
  SlabStoreStats stats_;
  Rng reassign_rng_{0xfeed};
};

}  // namespace pipette
