#include "pipette/slab_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.h"

namespace pipette {

SlabStore::SlabStore(Hmb& hmb, SlabConfig config)
    : hmb_(hmb), config_(std::move(config)) {
  PIPETTE_ASSERT(!config_.class_sizes.empty());
  PIPETTE_ASSERT(std::is_sorted(config_.class_sizes.begin(),
                                config_.class_sizes.end()));
  PIPETTE_ASSERT(config_.class_sizes.back() <= config_.slab_size);

  classes_.resize(config_.class_sizes.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].item_size = config_.class_sizes[i];
    classes_[i].items_per_slab = static_cast<std::uint32_t>(
        config_.slab_size / config_.class_sizes[i]);
  }

  // Carve the Data Area into slabs (alignment padding beyond the last whole
  // slab is unused, as in Fig. 3).
  const std::uint64_t area = hmb_.data_area().size();
  const std::uint64_t n_slabs = area / config_.slab_size;
  PIPETTE_ASSERT_MSG(n_slabs >= 1, "Data Area smaller than one slab");
  free_pool_.reserve(n_slabs);
  // Pool is popped from the back; push high addresses first so allocation
  // proceeds from the start of the area.
  for (std::uint64_t i = n_slabs; i-- > 0;) {
    free_pool_.push_back(hmb_.data_offset() + i * config_.slab_size);
  }
}

std::uint32_t SlabStore::class_for(std::uint32_t len) const {
  auto it = std::lower_bound(config_.class_sizes.begin(),
                             config_.class_sizes.end(), len);
  PIPETTE_ASSERT_MSG(it != config_.class_sizes.end(),
                     "object larger than the largest slab class");
  return static_cast<std::uint32_t>(it - config_.class_sizes.begin());
}

SlabStore::Slot& SlabStore::slot(ItemLoc loc) {
  PIPETTE_ASSERT(loc.slab < slabs_.size());
  PIPETTE_ASSERT(loc.slot < slabs_[loc.slab].slots.size());
  return slabs_[loc.slab].slots[loc.slot];
}

const SlabStore::Slot& SlabStore::slot(ItemLoc loc) const {
  PIPETTE_ASSERT(loc.slab < slabs_.size());
  PIPETTE_ASSERT(loc.slot < slabs_[loc.slab].slots.size());
  return slabs_[loc.slab].slots[loc.slot];
}

bool SlabStore::take_free_slab(SlabClass& sc, std::uint32_t cls_idx) {
  if (free_pool_.empty()) return false;
  const HmbAddr base = free_pool_.back();
  free_pool_.pop_back();
  Slab slab;
  slab.cls = cls_idx;
  slab.base = base;
  slab.slots.resize(sc.items_per_slab);
  slabs_.push_back(std::move(slab));
  const auto id = static_cast<std::uint32_t>(slabs_.size() - 1);
  sc.slab_ids.push_back(id);
  sc.open_slab = id;
  sc.next_fresh = 0;
  stats_.resident_slab_bytes += config_.slab_size;
  return true;
}

std::optional<ItemLoc> SlabStore::allocate(const FgKey& key) {
  const std::uint32_t cls_idx = class_for(key.len);
  SlabClass& sc = classes_[cls_idx];

  ItemLoc loc;
  if (!sc.cleanup.empty()) {
    // Recycled slot from the cleanup array.
    loc = sc.cleanup.back();
    sc.cleanup.pop_back();
  } else if (sc.open_slab != ~0u && sc.next_fresh < sc.items_per_slab) {
    loc = {sc.open_slab, sc.next_fresh++};
  } else if (take_free_slab(sc, cls_idx)) {
    loc = {sc.open_slab, sc.next_fresh++};
  } else {
    return std::nullopt;
  }

  Slot& s = slot(loc);
  PIPETTE_ASSERT(!s.live);
  s.key = key;
  s.live = true;
  sc.lru.push_front(loc);
  s.lru_it = sc.lru.begin();
  ++slabs_[loc.slab].live_count;
  ++stats_.live_items;
  return loc;
}

std::optional<std::pair<FgKey, ItemLoc>> SlabStore::evict_lru(
    std::uint32_t cls) {
  SlabClass& sc = classes_[cls];
  if (sc.lru.empty()) return std::nullopt;
  const ItemLoc victim = sc.lru.back();
  const FgKey key = slot(victim).key;
  ++sc.evictions;
  ++stats_.evictions;
  free_item(victim);
  return std::make_pair(key, victim);
}

void SlabStore::free_item(ItemLoc loc) {
  Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  Slab& slab = slabs_[loc.slab];
  SlabClass& sc = classes_[slab.cls];
  sc.lru.erase(s.lru_it);
  s.live = false;
  --slab.live_count;
  --stats_.live_items;
  if (slab.external == nullptr) {
    // Resident slot: recycle through the cleanup array.
    sc.cleanup.push_back(loc);
  } else if (slab.live_count == 0) {
    // Fully dead external slab: release its host memory.
    slab.external.reset();
    stats_.external_bytes -= config_.slab_size;
  }
}

bool SlabStore::externalize(std::uint32_t cls_idx, std::uint32_t slab_id) {
  if (stats_.external_bytes + config_.slab_size > config_.max_external_bytes)
    return false;
  Slab& slab = slabs_[slab_id];
  PIPETTE_ASSERT(slab.external == nullptr);
  SlabClass& sc = classes_[cls_idx];

  // Record the offsets before/after migration by copying the slab's bytes
  // into freshly allocated host memory.
  slab.external = std::make_unique<std::uint8_t[]>(config_.slab_size);
  hmb_.read(slab.base, {slab.external.get(), config_.slab_size});
  stats_.external_bytes += config_.slab_size;
  ++stats_.migrations;

  // Its resident free slots are no longer DMA-able destinations.
  std::erase_if(sc.cleanup,
                [slab_id](const ItemLoc& l) { return l.slab == slab_id; });
  if (sc.open_slab == slab_id) {
    sc.open_slab = ~0u;
    sc.next_fresh = 0;
  }
  std::erase(sc.slab_ids, slab_id);

  // The recycled slab returns to the free pool for subsequent requests.
  free_pool_.push_back(slab.base);
  slab.base = kInvalidHmbAddr;
  stats_.resident_slab_bytes -= config_.slab_size;

  if (slab.live_count == 0) {
    slab.external.reset();
    stats_.external_bytes -= config_.slab_size;
  }
  return true;
}

bool SlabStore::externalize_slab(std::uint32_t requesting_cls, Rng& rng) {
  // Candidate classes: more than one resident slab, not the requester.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    if (c != requesting_cls && classes_[c].slab_ids.size() > 1)
      candidates.push_back(c);
  }
  if (candidates.empty()) return false;
  const std::uint32_t cls_idx = candidates[static_cast<std::size_t>(
      rng.next_below(candidates.size()))];
  // Prefer a non-open slab so fresh slots are not stranded.
  SlabClass& sc = classes_[cls_idx];
  std::uint32_t victim = sc.slab_ids.front();
  for (std::uint32_t id : sc.slab_ids) {
    if (id != sc.open_slab) {
      victim = id;
      break;
    }
  }
  return externalize(cls_idx, victim);
}

bool SlabStore::externalize_slab_of(std::uint32_t cls) {
  SlabClass& sc = classes_[cls];
  if (sc.slab_ids.empty()) return false;
  std::uint32_t victim = ~0u;
  for (std::uint32_t id : sc.slab_ids) {
    if (id != sc.open_slab) {
      victim = id;
      break;
    }
  }
  if (victim == ~0u) {
    if (sc.slab_ids.size() != 1) return false;
    victim = sc.slab_ids.front();  // only the open slab exists
  }
  return externalize(cls, victim);
}

void SlabStore::touch(ItemLoc loc) {
  Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  SlabClass& sc = classes_[slabs_[loc.slab].cls];
  sc.lru.splice(sc.lru.begin(), sc.lru, s.lru_it);
}

std::span<const std::uint8_t> SlabStore::data(ItemLoc loc) const {
  const Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  const Slab& slab = slabs_[loc.slab];
  const SlabClass& sc = classes_[slab.cls];
  const std::uint64_t off =
      static_cast<std::uint64_t>(loc.slot) * sc.item_size;
  if (slab.external != nullptr) {
    return {slab.external.get() + off, s.key.len};
  }
  // Resident: view straight into the HMB.
  const auto raw = std::as_const(hmb_).raw();
  return {raw.data() + slab.base + off, s.key.len};
}

std::span<std::uint8_t> SlabStore::mutable_data(ItemLoc loc) {
  const Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  Slab& slab = slabs_[loc.slab];
  const SlabClass& sc = classes_[slab.cls];
  const std::uint64_t off =
      static_cast<std::uint64_t>(loc.slot) * sc.item_size;
  if (slab.external != nullptr) {
    return {slab.external.get() + off, s.key.len};
  }
  auto raw = hmb_.raw();
  return {raw.data() + slab.base + off, s.key.len};
}

HmbAddr SlabStore::hmb_addr(ItemLoc loc) const {
  const Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  const Slab& slab = slabs_[loc.slab];
  PIPETTE_ASSERT_MSG(slab.external == nullptr,
                     "externalised items are not DMA destinations");
  return slab.base +
         static_cast<std::uint64_t>(loc.slot) *
             classes_[slab.cls].item_size;
}

const FgKey& SlabStore::key(ItemLoc loc) const {
  const Slot& s = slot(loc);
  PIPETTE_ASSERT(s.live);
  return s.key;
}

bool SlabStore::resident(ItemLoc loc) const {
  return slabs_[loc.slab].external == nullptr;
}

SlabClassStats SlabStore::class_stats(std::uint32_t cls) const {
  PIPETTE_ASSERT(cls < classes_.size());
  const SlabClass& sc = classes_[cls];
  SlabClassStats st;
  st.item_size = sc.item_size;
  st.slabs = static_cast<std::uint32_t>(sc.slab_ids.size());
  st.live_items = sc.lru.size();
  st.evictions = sc.evictions;
  return st;
}

}  // namespace pipette
