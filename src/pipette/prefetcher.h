// Speculative readahead for the fine-grained read path (ROADMAP
// "alternative interconnect backends + smarter host-side prefetch";
// pattern taxonomy after arXiv 2109.05366).
//
// The detector's stream classifier labels each file's fine-grained access
// stream; on a sequential/strided/clustered-hot verdict the prefetcher
// generates grid-exact future keys (base + k*stride, or the ±k*len
// neighbourhood for clusters), filters out anything already cached, in
// flight, resident in the page cache, or beyond the file, and batches the
// survivors into speculative FG_READ commands: Info-ring records plus
// ranges, exactly like a demand miss, but with
//  * a budget of outstanding speculative commands (demand keeps priority),
//  * an Info-ring headroom reservation so demand pushes can never hit
//    backpressure because of speculation,
//  * placement via FineGrainedReadCache::plan_speculative — the adaptive
//    threshold decides FGRC item vs (split) TempBuf staging,
//  * a generation-stamped completion so timed-out commands are abandoned
//    without stuck ticketed waits (mirrors PipettePath's wait_ticket_).
//
// Demand integration: before its FGRC lookup, a fine read asks
// on_demand(key). A completed fill is claimed (promoted fills then hit in
// the FGRC; TempBuf fills warmed the device read buffer, so the re-fetch
// skips NAND); an in-flight fill is waited out under the same HMB timeout
// guard as demand commands.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/lru.h"
#include "des/simulator.h"
#include "fs/filesystem.h"
#include "pipette/detector.h"
#include "pipette/fgrc.h"
#include "ssd/controller.h"

namespace pipette {

struct PrefetchConfig {
  bool enabled = false;
  std::uint32_t degree = 32;          // speculative keys per trigger
  std::uint32_t max_batch = 16;       // keys per speculative FG_READ
  std::uint32_t max_outstanding = 8;  // speculative commands in flight
  std::uint32_t min_run = 3;          // classifier confidence gate
  /// Clustered-hot streams only: page-stride probes at base ± k pages, on
  /// top of the record-exact neighbourhood walk. One probe per page is
  /// enough to pull the whole page into the device read buffer, so the
  /// burst's later misses on that page skip NAND even when the exact
  /// record was never speculated. 32 pages ≈ the classifier's cluster
  /// radius (128 KiB) on 4 KiB pages.
  std::uint32_t cluster_probe_pages = 32;
  std::uint32_t info_headroom = 64;   // ring slots reserved for demand
  std::uint32_t track_capacity = 65536;  // filled-but-unclaimed keys kept
  SimDuration issue_cost = 400;       // host CPU per speculative command
  SimDuration per_range_cost = 120;   // host CPU per Info-ring record
};

struct PrefetchStats {
  std::uint64_t issued = 0;         // speculative keys issued
  std::uint64_t commands = 0;       // speculative FG_READ commands
  std::uint64_t hits = 0;           // demand claims of a completed fill
  std::uint64_t hits_promoted = 0;  // ... of those, FGRC-promoted fills
  std::uint64_t late = 0;           // demand arrived while fill in flight
  std::uint64_t wasted = 0;         // fills aged out unclaimed
  std::uint64_t lost = 0;           // commands abandoned on timeout
  std::uint64_t faulted = 0;        // fills lost to HMB/media faults
  std::uint64_t throttled = 0;      // budget / ring-headroom suppressions
  std::uint64_t filtered = 0;       // candidates already covered elsewhere
  std::uint64_t promoted = 0;       // fills planned into the FGRC
  std::uint64_t tempbuf = 0;        // fills staged through TempBuf
};

class Prefetcher {
 public:
  /// Answers "is (file, page) resident in the host page cache?" — supplied
  /// by PipettePath so this library needs no hostmem dependency.
  using PageResidentFn = std::function<bool(FileId, std::uint64_t)>;

  Prefetcher(Simulator& sim, SsdController& ssd, FileSystem& fs,
             FineGrainedReadCache& fgrc, PrefetchConfig config,
             PageResidentFn page_resident);

  /// Demand-side claim. True if `key`'s speculative fill has completed
  /// (after waiting out an in-flight one under the HMB timeout guard);
  /// false if nothing useful was speculated or the fill faulted/timed out.
  bool on_demand(const FgKey& key);

  /// Trigger: fold the classifier verdict of a just-served fine read into
  /// zero or more speculative commands. Host CPU cost is charged inline
  /// (after the demand request's latency was taken, like kernel readahead
  /// work riding the tail of a syscall).
  void maybe_issue(const StreamPrediction& pred);

  /// Cold restart: the FGRC was rebuilt; in-flight commands are abandoned
  /// (their late completions become stale) and claimable fills dropped.
  void on_cache_reset(FineGrainedReadCache& fresh);

  const PrefetchStats& stats() const { return stats_; }
  const PrefetchConfig& config() const { return config_; }
  /// Completed fills not (yet) claimed by demand — the live waste pool.
  std::uint64_t unclaimed() const { return filled_.size(); }
  std::uint32_t outstanding() const { return outstanding_; }

  /// Time-weighted occupancy of the speculative budget (outstanding
  /// commands; passive account, obs/util.h).
  OccupancyIntegrator& outstanding_occupancy() { return outstanding_occ_; }

 private:
  struct SpecJob {
    std::uint64_t gen = 0;  // bumped on abandon; stale completions no-op
    SimTime issued_at = 0;
    bool in_use = false;
    std::vector<std::pair<FgKey, MissPlan>> keys;
  };

  /// Abandon every job whose guard interval elapsed without completion
  /// (dropped CQ entries must not pin the speculative budget forever).
  void reap_stale();
  void abandon(std::uint32_t slot);
  void on_complete(std::uint64_t token, const CommandResult& result);
  bool claim_filled(const FgKey& key);

  Simulator& sim_;
  SsdController& ssd_;
  FileSystem& fs_;
  FineGrainedReadCache* fgrc_;
  PrefetchConfig config_;
  PageResidentFn page_resident_;
  PrefetchStats stats_;

  std::vector<SpecJob> jobs_;            // ≤ max_outstanding, slot-stable
  std::vector<std::uint32_t> free_jobs_;
  std::uint32_t outstanding_ = 0;
  OccupancyIntegrator outstanding_occ_;
  std::unordered_map<FgKey, std::uint32_t, FgKeyHash> inflight_;  // -> slot
  LruMap<FgKey, bool, FgKeyHash> filled_;  // value: promoted into FGRC
  std::vector<std::uint64_t> cand_scratch_;  // candidate offsets, reused
  std::vector<LbaRange> lba_scratch_;
};

}  // namespace pipette
