// Identity of a fine-grained cached object: an exact byte range of a file.
// The workloads the paper targets (embedding vectors, graph objects) re-read
// identical records, so exact-match keys give the same hit behaviour as the
// prototype's per-file range tables.
#pragma once

#include <cstdint>
#include <functional>

#include "fs/filesystem.h"

namespace pipette {

struct FgKey {
  FileId file = kInvalidFileId;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;

  bool operator==(const FgKey&) const = default;
};

struct FgKeyHash {
  std::size_t operator()(const FgKey& k) const {
    std::uint64_t h = k.offset * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(k.file) << 32) | k.len;
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

}  // namespace pipette
