// Fine-Grained Access Detector (paper §3.1.2): triggered on a page-cache
// miss, it verifies that the file was opened with the byte-granular
// datapath enabled (O_FINE_GRAINED) and maintains the access ranges per
// page so Pipette can determine which part of each page is demanded.
//
// The detector also hosts the per-file stream classifier feeding the
// speculative prefetcher (arXiv 2109.05366's access-pattern taxonomy):
// observe() folds each fine-grained access into a tiny per-file state —
// last offset, current stride run, a recency window of offsets — and
// labels the stream sequential / strided / clustered-hot / random. It is
// only called when prefetching is enabled, so the demand-only hot path is
// untouched.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pipette/fg_key.h"
#include "ssd/types.h"

namespace pipette {

struct PageAccessRange {
  std::uint32_t offset = 0;  // within the page
  std::uint32_t len = 0;
};

/// Stream label for one file's fine-grained access pattern.
enum class StreamClass : std::uint8_t {
  kRandom = 0,
  kSequential,   // constant stride equal to the access length
  kStrided,      // constant non-zero stride
  kClusteredHot, // most recent accesses fall inside a small byte radius
};

inline constexpr std::size_t kStreamClassCount = 4;

const char* to_string(StreamClass c);

/// One classifier verdict, consumed by the prefetcher to generate
/// speculative keys: `base + k*stride` for sequential/strided streams, the
/// `base ± k*len` neighbourhood grid for clustered-hot ones.
struct StreamPrediction {
  StreamClass cls = StreamClass::kRandom;
  FileId file = kInvalidFileId;
  std::uint64_t base = 0;    // offset of the access that produced the verdict
  std::int64_t stride = 0;   // signed predicted inter-access stride (bytes)
  std::uint32_t len = 0;     // access length (the fine-grained grid unit)
  std::uint32_t confidence = 0;  // stride run length / cluster density
};

class FineGrainedAccessDetector {
 public:
  /// Permission check: byte-granular path requires the open flag.
  static bool permitted(int open_flags);

  /// Record a demanded range of (file, page); overlapping/adjacent ranges
  /// are coalesced. Returns the number of distinct ranges now tracked for
  /// that page.
  std::size_t record(FileId file, std::uint64_t page, std::uint32_t offset,
                     std::uint32_t len);

  /// Ranges demanded so far within (file, page).
  const std::vector<PageAccessRange>& ranges(FileId file,
                                             std::uint64_t page) const;

  /// Fraction of the page's bytes ever demanded (diagnoses amplification).
  double demanded_fraction(FileId file, std::uint64_t page) const;

  /// Stream classifier: fold one whole-request access (file-absolute offset)
  /// into the per-file stream state and return the updated verdict. Called
  /// by the prefetcher's trigger path only — record() above stays the only
  /// cost on the demand path when prefetching is off.
  StreamPrediction observe(FileId file, std::uint64_t offset,
                           std::uint32_t len);

  std::uint64_t fine_accesses() const { return fine_accesses_; }
  std::uint64_t pages_tracked() const { return pages_.size(); }

  /// Times record() grew a per-page vector or inserted a new page — the
  /// steady-state allocation tripwire des_microbench asserts on (a warm
  /// detector replaying a seen pattern must not bump this).
  std::uint64_t allocation_events() const { return allocation_events_; }

  /// observe() verdict counts, indexed by StreamClass.
  const std::array<std::uint64_t, kStreamClassCount>& stream_class_counts()
      const {
    return stream_class_counts_;
  }

 private:
  // Classifier tuning. The cluster radius is a handful of pages: wide
  // enough to catch hot-key neighbourhoods, narrow enough that uniform
  // traffic over a big file almost never trips it.
  static constexpr std::uint32_t kClusterWindow = 8;
  // 4 near votes fire after ~5 accesses into a fresh neighbourhood — early
  // enough that a prefetcher can still cover most of a burst. False fires
  // on uniform traffic need 4 of 8 recent offsets within the radius of a
  // big file: P ~ (radius/file)^4, vanishingly rare.
  static constexpr std::uint32_t kClusterMin = 4;       // dense window votes
  static constexpr std::uint64_t kClusterRadius = 128 * 1024;
  static constexpr std::uint32_t kMinStrideRun = 2;

  struct FileStream {
    std::uint64_t last_offset = 0;
    std::uint32_t last_len = 0;
    std::int64_t stride = 0;
    std::uint32_t run = 0;  // consecutive accesses with this stride
    std::array<std::uint64_t, kClusterWindow> recent{};
    std::uint32_t recent_count = 0;
    std::uint32_t recent_pos = 0;
    bool valid = false;
  };

  struct PageId {
    FileId file;
    std::uint64_t page;
    bool operator==(const PageId&) const = default;
  };
  struct PageIdHash {
    std::size_t operator()(const PageId& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(p.file) << 44) ^ p.page);
    }
  };

  std::unordered_map<PageId, std::vector<PageAccessRange>, PageIdHash> pages_;
  std::unordered_map<FileId, FileStream> streams_;
  std::uint64_t fine_accesses_ = 0;
  std::uint64_t allocation_events_ = 0;
  std::array<std::uint64_t, kStreamClassCount> stream_class_counts_{};
};

/// Read Dispatcher (paper §3.1.2): sends each read down the byte-granular
/// or the block interface, "mainly based on the data size". Sub-page reads
/// take the fine path; page-sized-and-larger aligned reads take the block
/// path (where read-ahead and the page cache shine). A page-sized read at
/// an unaligned offset still spans two pages and is cheaper fine-grained.
struct DispatchConfig {
  std::uint32_t fine_max_len = kBlockSize;  // largest fine-grained request
};

enum class Route { kFine, kBlock };

inline Route dispatch_read(const DispatchConfig& config, int open_flags,
                           std::uint64_t offset, std::uint64_t len) {
  if (!FineGrainedAccessDetector::permitted(open_flags)) return Route::kBlock;
  if (len > config.fine_max_len) return Route::kBlock;
  if (len < kBlockSize) return Route::kFine;
  if (len == kBlockSize && (offset % kBlockSize) != 0) return Route::kFine;
  return Route::kBlock;
}

}  // namespace pipette
