// Fine-Grained Access Detector (paper §3.1.2): triggered on a page-cache
// miss, it verifies that the file was opened with the byte-granular
// datapath enabled (O_FINE_GRAINED) and maintains the access ranges per
// page so Pipette can determine which part of each page is demanded.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pipette/fg_key.h"
#include "ssd/types.h"

namespace pipette {

struct PageAccessRange {
  std::uint32_t offset = 0;  // within the page
  std::uint32_t len = 0;
};

class FineGrainedAccessDetector {
 public:
  /// Permission check: byte-granular path requires the open flag.
  static bool permitted(int open_flags);

  /// Record a demanded range of (file, page); overlapping/adjacent ranges
  /// are coalesced. Returns the number of distinct ranges now tracked for
  /// that page.
  std::size_t record(FileId file, std::uint64_t page, std::uint32_t offset,
                     std::uint32_t len);

  /// Ranges demanded so far within (file, page).
  const std::vector<PageAccessRange>& ranges(FileId file,
                                             std::uint64_t page) const;

  /// Fraction of the page's bytes ever demanded (diagnoses amplification).
  double demanded_fraction(FileId file, std::uint64_t page) const;

  std::uint64_t fine_accesses() const { return fine_accesses_; }
  std::uint64_t pages_tracked() const { return pages_.size(); }

 private:
  struct PageId {
    FileId file;
    std::uint64_t page;
    bool operator==(const PageId&) const = default;
  };
  struct PageIdHash {
    std::size_t operator()(const PageId& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(p.file) << 44) ^ p.page);
    }
  };

  std::unordered_map<PageId, std::vector<PageAccessRange>, PageIdHash> pages_;
  std::uint64_t fine_accesses_ = 0;
};

/// Read Dispatcher (paper §3.1.2): sends each read down the byte-granular
/// or the block interface, "mainly based on the data size". Sub-page reads
/// take the fine path; page-sized-and-larger aligned reads take the block
/// path (where read-ahead and the page cache shine). A page-sized read at
/// an unaligned offset still spans two pages and is cheaper fine-grained.
struct DispatchConfig {
  std::uint32_t fine_max_len = kBlockSize;  // largest fine-grained request
};

enum class Route { kFine, kBlock };

inline Route dispatch_read(const DispatchConfig& config, int open_flags,
                           std::uint64_t offset, std::uint64_t len) {
  if (!FineGrainedAccessDetector::permitted(open_flags)) return Route::kBlock;
  if (len > config.fine_max_len) return Route::kBlock;
  if (len < kBlockSize) return Route::kFine;
  if (len == kBlockSize && (offset % kBlockSize) != 0) return Route::kFine;
  return Route::kBlock;
}

}  // namespace pipette
