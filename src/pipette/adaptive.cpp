#include "pipette/adaptive.h"

#include "common/assert.h"

namespace pipette {

AdaptiveThreshold::AdaptiveThreshold(const AdaptiveConfig& config)
    : config_(config), threshold_(config.initial_threshold) {
  PIPETTE_ASSERT(config.min_threshold <= config.initial_threshold);
  PIPETTE_ASSERT(config.initial_threshold <= config.max_threshold);
  PIPETTE_ASSERT(config.min_ratio <= config.max_ratio);
  PIPETTE_ASSERT(config.adjust_period > 0);
}

double AdaptiveThreshold::window_ratio() const {
  return window_accesses_ == 0
             ? 0.0
             : static_cast<double>(window_reuses_) /
                   static_cast<double>(window_accesses_);
}

void AdaptiveThreshold::on_access(bool repeated) {
  ++access_count_;
  ++window_accesses_;
  if (repeated) {
    ++reuse_count_;
    ++window_reuses_;
  }
  if (!config_.enabled) return;
  if (window_accesses_ < config_.adjust_period) return;

  const double ratio = window_ratio();
  if (ratio < config_.min_ratio && threshold_ < config_.max_threshold) {
    // Low data reuse: cache infrequently.
    ++threshold_;
  } else if (ratio > config_.max_ratio &&
             threshold_ > config_.min_threshold) {
    // High data reuse: allow frequent promotion.
    --threshold_;
  }
  window_accesses_ = 0;
  window_reuses_ = 0;
}

std::uint32_t ReferenceTracker::record(const FgKey& key) {
  if (std::uint32_t* count = counts_.find(key)) {
    return ++*count;
  }
  counts_.insert(key, 1);
  return 1;
}

}  // namespace pipette
