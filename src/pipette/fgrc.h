// The Fine-Grained Read Cache (paper §3.2): per-file hash lookup tables in
// front of the slab store, the adaptive promotion policy, the dynamic
// allocation strategy (page cache vs FGRC hit-ratio arbitration under
// memory pressure), and the adaptive slab reassignment performed by the
// prototype's maintenance/re-balance threads.
//
// Threads vs simulation: the paper runs maintenance and re-balance as
// kernel threads. In this deterministic simulation their work is performed
// at epoch boundaries counted in fine-grained accesses, which preserves the
// mechanism (periodic inspection of per-class eviction counts, migration of
// stagnant slabs back to the free pool) without nondeterministic timing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/rng.h"
#include "common/stats.h"
#include "pipette/adaptive.h"
#include "pipette/slab_store.h"
#include "ssd/hmb.h"

namespace pipette {

enum class PressurePolicy {
  kDynamic,        // paper §3.2.4: compare hit ratios
  kAlwaysEvict,    // ablation: always solution 1
  kAlwaysMigrate,  // ablation: always solution 2
};

struct ReassignConfig {
  bool enabled = true;
  std::uint64_t epoch_accesses = 64 * 1024;  // maintenance period
};

struct FgrcConfig {
  SlabConfig slab;
  AdaptiveConfig adaptive;
  ReassignConfig reassign;
  PressurePolicy policy = PressurePolicy::kDynamic;
};

struct FgrcStats {
  RatioCounter lookups;
  std::uint64_t promotions = 0;       // misses admitted into the cache
  std::uint64_t tempbuf_fills = 0;    // misses served through TempBuf only
  std::uint64_t invalidations = 0;    // items deleted by writes
  std::uint64_t pressure_evictions = 0;
  std::uint64_t pressure_migrations = 0;
  std::uint64_t reassigned_slabs = 0;
  std::uint64_t aborted_fills = 0;  // reserved slots poisoned by failed fills
  std::uint64_t tempbuf_peak_bytes = 0;  // staging cursor high-water mark
  std::vector<std::uint64_t> class_promotions;  // promotions per slab class
};

/// Where a fine-grained miss's bytes should land.
struct MissPlan {
  HmbAddr dest = kInvalidHmbAddr;
  bool promoted = false;   // true: dest is a cache item; false: TempBuf
  ItemLoc loc;             // valid when promoted
};

class FineGrainedReadCache {
 public:
  /// `page_cache_hits` is the page cache's hit counter, consulted by the
  /// dynamic allocation strategy; may be null (treated as ratio 0).
  FineGrainedReadCache(Hmb& hmb, FgrcConfig config,
                       const RatioCounter* page_cache_hits);

  /// Hit path: bytes of the cached object, or nullopt. Records hit/miss
  /// statistics, reference counting, and adaptive-threshold accounting.
  std::optional<std::span<const std::uint8_t>> lookup(const FgKey& key);

  /// Miss path: decide placement for the incoming bytes and reserve it.
  /// Called after lookup() returned nullopt for this key.
  MissPlan plan_miss(const FgKey& key);

  /// Pure index probe — no hit/miss stats, no adaptive-threshold or epoch
  /// accounting. Used by the prefetcher to dedup speculative candidates
  /// without perturbing the demand path's statistics.
  bool contains(const FgKey& key) const {
    return index_.find(key) != index_.end();
  }

  /// Placement for a *speculative* fill (prefetcher). Promotion reuses the
  /// AdaptiveThreshold verdict — classifier confidence stands in for the
  /// ghost reference count — but the ghost tracker is NOT recorded into:
  /// speculation must not fast-track later demand promotions. Low-confidence
  /// fills stage through the speculative half of TempBuf (see
  /// enable_speculative_staging) so they cannot clobber in-flight demand
  /// staging.
  MissPlan plan_speculative(const FgKey& key, std::uint32_t confidence);

  /// Split the TempBuf in half: demand staging keeps the lower half,
  /// speculative fills rotate over the upper half. Called once by
  /// PipettePath when prefetching is enabled; without it the full TempBuf
  /// serves demand exactly as before.
  void enable_speculative_staging() { spec_staging_ = true; }

  /// The fill that plan_miss() reserved never delivered its bytes (device
  /// fault). Evict the poisoned reservation so a later lookup can never
  /// serve garbage; a plain TempBuf plan needs no cleanup.
  void abort_fill(const FgKey& key, const MissPlan& plan);

  /// Reinstall externally saved statistics (used by cold restarts, which
  /// rebuild the cache but must not reset cumulative counters).
  void restore_stats(const FgrcStats& stats) {
    stats_ = stats;
    stats_.class_promotions.resize(store_.classes(), 0);
  }

  /// Delete any cached items overlapping a write to [offset, offset+len)
  /// of `file` (§3.1.3 consistency rule), except an optional `keep` key
  /// (used by the fine-write path after an in-place update). Returns items
  /// removed.
  std::uint32_t invalidate_range(FileId file, std::uint64_t offset,
                                 std::uint64_t len,
                                 const FgKey* keep = nullptr);

  /// Fine-grained write extension: if exactly `key` is cached, overwrite
  /// its bytes in place (keeping the cache warm) and return true; callers
  /// still invalidate any *other* overlapping items.
  bool update_in_place(const FgKey& key, std::span<const std::uint8_t> data);

  /// Bytes of a (live) item.
  std::span<const std::uint8_t> item_data(ItemLoc loc) const {
    return store_.data(loc);
  }

  /// Invariant check (tests): the exact-match index and the offset-ordered
  /// per-file tables describe the same set of live items.
  bool index_consistent() const;

  const FgrcStats& stats() const { return stats_; }
  const SlabStore& store() const { return store_; }
  const AdaptiveThreshold& adaptive() const { return adaptive_; }
  std::uint64_t memory_bytes() const { return store_.memory_bytes(); }
  RatioCounter& hit_counter() { return stats_.lookups; }

  /// TempBuf staging address for `len` bytes (rotating bump pointer).
  HmbAddr tempbuf_addr(std::uint32_t len);

 private:
  // Per-file table: ordered by offset so write invalidation can find
  // overlapping ranges without scanning the whole file's items. The exact
  // read path (lookup/update_in_place) instead goes through `index_`, a
  // hash map over full keys, so the per-request cost is one hash probe
  // rather than an ordered-tree walk over equal_range.
  using FileTable = std::multimap<std::uint64_t, ItemLoc>;

  void remove_index_entry(const FgKey& key, ItemLoc loc);
  bool relieve_pressure(std::uint32_t cls);
  void run_reassignment_epoch();
  /// Reserve a cache item for `key`, relieving pressure as needed.
  std::optional<ItemLoc> allocate_with_relief(const FgKey& key);
  /// Install a freshly reserved item into the tables and build its plan.
  MissPlan install_promotion(const FgKey& key, ItemLoc loc);
  /// Staging address in the speculative half of the TempBuf.
  HmbAddr spec_tempbuf_addr(std::uint32_t len);

  Hmb& hmb_;
  FgrcConfig config_;
  SlabStore store_;
  AdaptiveThreshold adaptive_;
  ReferenceTracker ghosts_;
  const RatioCounter* page_cache_hits_;
  std::unordered_map<FileId, FileTable> tables_;
  std::unordered_map<FgKey, ItemLoc, FgKeyHash> index_;  // exact-match path
  FgrcStats stats_;
  Rng rng_{0xcafe};
  HmbAddr tempbuf_cursor_ = 0;
  bool spec_staging_ = false;   // TempBuf split for speculative fills
  HmbAddr spec_cursor_ = 0;     // rotates over the upper TempBuf half
  std::uint64_t accesses_since_epoch_ = 0;
  std::vector<std::uint64_t> evictions_at_epoch_;  // per class
};

}  // namespace pipette
