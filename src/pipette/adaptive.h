// Adaptive caching mechanism (paper §3.2.2).
//
// Pipette decides at every fine-grained miss whether the fetched data
// deserves a slot in the fine-grained read cache. The decision compares the
// object's reference count against a promotion threshold that tracks the
// workload's reusability: an access counter and a reuse counter measure the
// ratio of repeated fine-grained accesses; when the ratio sinks below
// min_ratio the threshold rises (cache less under low reuse, e.g. uniform
// scans), and when it exceeds max_ratio the threshold falls (promote
// aggressively under high reuse). Reference counts for objects not yet
// cached live in a bounded ghost table.
#pragma once

#include <cstdint>

#include "common/lru.h"
#include "pipette/fg_key.h"

namespace pipette {

struct AdaptiveConfig {
  std::uint32_t initial_threshold = 2;
  std::uint32_t min_threshold = 1;  // 1 = promote on first access
  std::uint32_t max_threshold = 4;
  // Ratio bounds calibrated so the filter targets genuinely cold streams:
  // a scan re-references <5% and gets throttled; steady-state uniform or
  // zipfian traffic re-references >25% and is promoted eagerly.
  double min_ratio = 0.05;  // below: raise the threshold
  double max_ratio = 0.25;  // above: lower the threshold
  std::uint64_t adjust_period = 4096;  // accesses between adjustments
  bool enabled = true;  // false = threshold frozen at initial (ablation)
  std::uint64_t ghost_capacity = 1 << 21;  // tracked-but-uncached objects
};

class AdaptiveThreshold {
 public:
  explicit AdaptiveThreshold(const AdaptiveConfig& config);

  /// Record one fine-grained access; `repeated` marks a re-access of data
  /// seen before (hit, or ghost re-reference). Periodically re-tunes.
  void on_access(bool repeated);

  std::uint32_t threshold() const { return threshold_; }
  std::uint64_t accesses() const { return access_count_; }
  std::uint64_t reuses() const { return reuse_count_; }
  /// Reuse ratio over the current adjustment window.
  double window_ratio() const;

 private:
  AdaptiveConfig config_;
  std::uint32_t threshold_;
  std::uint64_t access_count_ = 0;
  std::uint64_t reuse_count_ = 0;
  std::uint64_t window_accesses_ = 0;
  std::uint64_t window_reuses_ = 0;
};

/// Reference counts for fine-grained objects that are not (yet) cached.
/// Bounded LRU so cold keys age out instead of growing without limit.
class ReferenceTracker {
 public:
  explicit ReferenceTracker(std::uint64_t capacity) : counts_(capacity) {}

  /// Record an access to an uncached key; returns its updated count
  /// (including this access).
  std::uint32_t record(const FgKey& key);

  /// True if the key has been seen before (without recording).
  bool seen(const FgKey& key) const { return counts_.peek(key) != nullptr; }

  /// Forget a key (it was promoted into the cache or invalidated).
  void forget(const FgKey& key) { counts_.erase(key); }

  std::size_t tracked() const { return counts_.size(); }

 private:
  LruMap<FgKey, std::uint32_t, FgKeyHash> counts_;
};

}  // namespace pipette
