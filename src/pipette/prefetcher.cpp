#include "pipette/prefetcher.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/trace.h"

namespace pipette {

namespace {
// Completion token: job slot in the top byte, job generation below. A
// packed token keeps the completion capture at {this, u64} — inside the
// std::function small-buffer, so speculative submissions allocate nothing.
constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 56) - 1;

std::uint64_t pack_token(std::uint32_t slot, std::uint64_t gen) {
  return (static_cast<std::uint64_t>(slot) << 56) | (gen & kGenMask);
}
}  // namespace

Prefetcher::Prefetcher(Simulator& sim, SsdController& ssd, FileSystem& fs,
                       FineGrainedReadCache& fgrc, PrefetchConfig config,
                       PageResidentFn page_resident)
    : sim_(sim),
      ssd_(ssd),
      fs_(fs),
      fgrc_(&fgrc),
      config_(config),
      page_resident_(std::move(page_resident)),
      filled_(std::max<std::uint32_t>(1, config.track_capacity)) {
  PIPETTE_ASSERT(config_.max_outstanding >= 1 &&
                 config_.max_outstanding <= 255);  // token packs slot in 8b
  PIPETTE_ASSERT(config_.degree >= 1 && config_.max_batch >= 1);
}

bool Prefetcher::claim_filled(const FgKey& key) {
  bool* promoted = filled_.find(key);
  if (promoted == nullptr) return false;
  ++stats_.hits;
  if (*promoted) ++stats_.hits_promoted;
  filled_.erase(key);
  return true;
}

bool Prefetcher::on_demand(const FgKey& key) {
  if (claim_filled(key)) return true;
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return false;

  // The fill is in flight: wait for it rather than duplicating the device
  // work, under the same timeout guard as demand commands.
  ++stats_.late;
  const std::uint32_t slot = it->second;
  const auto done = [this, &key] {
    return inflight_.find(key) == inflight_.end();
  };
  const SimDuration guard = ssd_.config().faults.hmb.timeout;
  if (guard == 0) {
    const bool completed = sim_.run_until_condition(done);
    PIPETTE_ASSERT_MSG(completed,
                       "speculative command never completed (set the HMB "
                       "fault timeout to recover instead)");
  } else {
    const SimTime deadline = sim_.now() + guard;
    if (!sim_.run_until_condition_before(done, deadline)) {
      // Lost completion: charge the guard, abandon the whole command (its
      // late completion becomes stale) and let demand proceed as a miss.
      if (sim_.now() < deadline) sim_.advance(deadline - sim_.now());
      abandon(slot);
      return false;
    }
  }
  return claim_filled(key);  // false if the fill faulted
}

void Prefetcher::maybe_issue(const StreamPrediction& pred) {
  if (pred.cls == StreamClass::kRandom || pred.confidence < config_.min_run ||
      pred.len == 0) {
    return;
  }
  reap_stale();

  TraceScope scope(sim_, Stage::kSpecFill);

  // Candidate generation: grid-exact future keys. The FGRC is exact-match,
  // so speculative keys must land precisely on offsets demand will ask for
  // — multiples of the observed stride (or access-length grid for
  // clusters) from the triggering access.
  cand_scratch_.clear();
  const std::uint64_t file_size = fs_.inode(pred.file).size;
  const auto fits = [&](std::int64_t off) {
    return off >= 0 &&
           static_cast<std::uint64_t>(off) + pred.len <= file_size;
  };
  if (pred.cls == StreamClass::kClusteredHot) {
    // Outward neighbourhood walk: +1, -1, +2, -2, ... grid steps.
    for (std::uint32_t step = 1;
         step <= config_.degree && cand_scratch_.size() < config_.degree;
         ++step) {
      for (const int dir : {+1, -1}) {
        if (cand_scratch_.size() >= config_.degree) break;
        const std::int64_t off =
            static_cast<std::int64_t>(pred.base) +
            dir * static_cast<std::int64_t>(step) *
                static_cast<std::int64_t>(pred.len);
        if (fits(off))
          cand_scratch_.push_back(static_cast<std::uint64_t>(off));
      }
    }
    // Page-stride probes across the predicted neighbourhood. The cluster's
    // demand offsets are unpredictable, but its *pages* are not: one
    // speculative record per page stages the page into the device read
    // buffer, so the burst's later misses on it cost a buffer hit instead
    // of a NAND sense. The probes sit on the page grid (which a
    // record-grid workload also lands on), so a lucky exact match is
    // claimable like any other fill; the rest age out as waste, which is
    // why only structured streams pay for them.
    const std::int64_t page_base =
        static_cast<std::int64_t>(pred.base / kBlockSize * kBlockSize);
    for (std::uint32_t j = 1; j <= config_.cluster_probe_pages; ++j) {
      for (const int dir : {+1, -1}) {
        const std::int64_t off =
            page_base + dir * static_cast<std::int64_t>(j) *
                            static_cast<std::int64_t>(kBlockSize);
        if (fits(off))
          cand_scratch_.push_back(static_cast<std::uint64_t>(off));
      }
    }
  } else {
    if (pred.stride == 0) return;
    for (std::uint32_t k = 1; k <= config_.degree; ++k) {
      const std::int64_t off =
          static_cast<std::int64_t>(pred.base) +
          static_cast<std::int64_t>(k) * pred.stride;
      if (!fits(off)) break;  // the run is marching out of the file
      cand_scratch_.push_back(static_cast<std::uint64_t>(off));
    }
  }

  InfoArea& info = ssd_.hmb().info();
  std::size_t i = 0;
  while (i < cand_scratch_.size()) {
    if (outstanding_ >= config_.max_outstanding) {
      ++stats_.throttled;
      return;
    }
    std::uint32_t slot;
    if (!free_jobs_.empty()) {
      slot = free_jobs_.back();
      free_jobs_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(jobs_.size());
      jobs_.emplace_back();
    }
    SpecJob& job = jobs_[slot];
    job.keys.clear();

    Command cmd;
    cmd.op = Opcode::kFgRead;
    bool have_ranges = false;  // take the pooled vector only if needed
    std::uint32_t batched = 0;
    bool ring_full = false;
    for (; i < cand_scratch_.size() && batched < config_.max_batch; ++i) {
      const FgKey key{pred.file, cand_scratch_[i], pred.len};
      if (fgrc_->contains(key) || inflight_.count(key) != 0 ||
          filled_.peek(key) != nullptr) {
        ++stats_.filtered;
        continue;
      }
      const std::uint64_t first_page = key.offset / kBlockSize;
      const std::uint64_t last_page =
          (key.offset + key.len - 1) / kBlockSize;
      bool resident = false;
      for (std::uint64_t p = first_page; p <= last_page && !resident; ++p) {
        resident = page_resident_(key.file, p);
      }
      if (resident) {
        ++stats_.filtered;
        continue;
      }
      lba_scratch_.clear();
      fs_.extract_lbas(key.file, key.offset, key.len, lba_scratch_);
      // Demand priority: never take the ring within `info_headroom` slots
      // of full — demand pushes must not see backpressure from speculation.
      if (info.in_flight() + lba_scratch_.size() + config_.info_headroom >
          info.capacity()) {
        ring_full = true;
        break;
      }
      if (!have_ranges) {
        cmd.ranges = ssd_.take_fg_ranges();
        have_ranges = true;
      }
      MissPlan plan = fgrc_->plan_speculative(key, pred.confidence);
      if (plan.promoted) {
        ++stats_.promoted;
      } else {
        ++stats_.tempbuf;
      }
      HmbAddr dest = plan.dest;
      for (const LbaRange& r : lba_scratch_) {
        const std::uint64_t idx =
            info.push({dest, r.lba, r.offset, r.len}, sim_.now());
        cmd.ranges.push_back({r.lba, r.offset, r.len, idx});
        dest += r.len;
      }
      job.keys.emplace_back(key, plan);
      inflight_.emplace(key, slot);
      ++batched;
    }

    if (batched == 0) {
      free_jobs_.push_back(slot);
      if (ring_full) {
        ++stats_.throttled;
        return;
      }
      continue;  // candidates exhausted; the while condition ends the loop
    }

    sim_.advance(config_.issue_cost +
                 static_cast<SimDuration>(cmd.ranges.size()) *
                     config_.per_range_cost);
    ++stats_.commands;
    stats_.issued += batched;
    job.in_use = true;
    job.issued_at = sim_.now();
    outstanding_occ_.update(sim_.now(), ++outstanding_);
    const std::uint64_t token = pack_token(slot, job.gen);
    ssd_.submit(std::move(cmd), [this, token](const CommandResult& r) {
      on_complete(token, r);
    });
    if (ring_full) {
      ++stats_.throttled;
      return;
    }
  }
}

void Prefetcher::on_complete(std::uint64_t token,
                             const CommandResult& result) {
  const auto slot = static_cast<std::uint32_t>(token >> 56);
  const std::uint64_t gen = token & kGenMask;
  SpecJob& job = jobs_[slot];
  if (!job.in_use || (job.gen & kGenMask) != gen) return;  // abandoned
  for (const auto& [key, plan] : job.keys) {
    inflight_.erase(key);
    if (result.status == CmdStatus::kOk) {
      if (filled_.insert(key, plan.promoted)) {
        // The tracking window aged out an unclaimed fill. A promoted one
        // stays servable through the normal FGRC lookup; only the
        // prefetch credit is lost.
        ++stats_.wasted;
      }
    } else {
      // HMB fault or media error: the bytes never landed. Evict any FGRC
      // reservation; availability accounting is untouched — only demand
      // outcomes feed PipettePathStats.
      if (plan.promoted) fgrc_->abort_fill(key, plan);
      ++stats_.faulted;
    }
  }
  job.keys.clear();
  job.in_use = false;
  ++job.gen;
  outstanding_occ_.update(sim_.now(), --outstanding_);
  free_jobs_.push_back(slot);
}

void Prefetcher::abandon(std::uint32_t slot) {
  SpecJob& job = jobs_[slot];
  PIPETTE_ASSERT(job.in_use);
  for (const auto& [key, plan] : job.keys) {
    inflight_.erase(key);
    if (plan.promoted) fgrc_->abort_fill(key, plan);
  }
  job.keys.clear();
  job.in_use = false;
  ++job.gen;
  outstanding_occ_.update(sim_.now(), --outstanding_);
  free_jobs_.push_back(slot);
  ++stats_.lost;
}

void Prefetcher::reap_stale() {
  const SimDuration guard = ssd_.config().faults.hmb.timeout;
  if (guard == 0) return;  // completions are guaranteed in this config
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(jobs_.size()); ++slot) {
    SpecJob& job = jobs_[slot];
    if (job.in_use && job.issued_at + guard <= sim_.now()) abandon(slot);
  }
}

void Prefetcher::on_cache_reset(FineGrainedReadCache& fresh) {
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(jobs_.size()); ++slot) {
    SpecJob& job = jobs_[slot];
    if (!job.in_use) continue;
    // The old cache is already gone — no reservations left to abort; just
    // invalidate the completion and free the budget.
    for (const auto& [key, plan] : job.keys) inflight_.erase(key);
    job.keys.clear();
    job.in_use = false;
    ++job.gen;
    outstanding_occ_.update(sim_.now(), --outstanding_);
    free_jobs_.push_back(slot);
    ++stats_.lost;
  }
  stats_.wasted += filled_.size();
  filled_.clear();
  fgrc_ = &fresh;
}

}  // namespace pipette
