#include "pipette/detector.h"

#include <algorithm>

#include "common/assert.h"
#include "fs/vfs.h"

namespace pipette {

const char* to_string(StreamClass c) {
  switch (c) {
    case StreamClass::kRandom:
      return "random";
    case StreamClass::kSequential:
      return "sequential";
    case StreamClass::kStrided:
      return "strided";
    case StreamClass::kClusteredHot:
      return "clustered_hot";
  }
  return "?";
}

bool FineGrainedAccessDetector::permitted(int open_flags) {
  return (open_flags & kOpenFineGrained) != 0;
}

std::size_t FineGrainedAccessDetector::record(FileId file, std::uint64_t page,
                                              std::uint32_t offset,
                                              std::uint32_t len) {
  PIPETTE_ASSERT(len > 0 && offset + len <= kBlockSize);
  ++fine_accesses_;
  auto [page_it, inserted] = pages_.try_emplace(PageId{file, page});
  std::vector<PageAccessRange>& ranges = page_it->second;
  if (inserted) ++allocation_events_;
  const std::size_t cap_before = ranges.capacity();

  // In-place insertion-merge. Invariant on entry and exit: ranges are
  // sorted by offset and disjoint with no two adjacent (for consecutive
  // a, b: b.offset > a.offset + a.len). One lower_bound finds the insert
  // point, the new range merges into its predecessor if it touches it, and
  // then absorbs any following ranges it now reaches — no re-sort, no
  // fresh vector, allocation-free once the page's capacity has warmed up.
  auto it = std::lower_bound(
      ranges.begin(), ranges.end(), offset,
      [](const PageAccessRange& r, std::uint32_t o) { return r.offset < o; });
  if (it != ranges.begin() &&
      std::prev(it)->offset + std::prev(it)->len >= offset) {
    --it;
    const std::uint32_t end =
        std::max(it->offset + it->len, offset + len);
    it->len = end - it->offset;
  } else {
    it = ranges.insert(it, {offset, len});
  }
  const auto next = std::next(it);
  auto last = next;
  std::uint32_t end = it->offset + it->len;
  while (last != ranges.end() && last->offset <= end) {
    end = std::max(end, last->offset + last->len);
    ++last;
  }
  if (last != next) {
    it->len = end - it->offset;
    ranges.erase(next, last);
  }
  if (ranges.capacity() != cap_before) ++allocation_events_;
  return ranges.size();
}

StreamPrediction FineGrainedAccessDetector::observe(FileId file,
                                                    std::uint64_t offset,
                                                    std::uint32_t len) {
  FileStream& s = streams_[file];
  StreamPrediction p;
  p.file = file;
  p.base = offset;
  p.len = len;
  if (s.valid) {
    const std::int64_t delta = static_cast<std::int64_t>(offset) -
                               static_cast<std::int64_t>(s.last_offset);
    if (delta != 0 && delta == s.stride) {
      ++s.run;
    } else if (delta != 0) {
      s.stride = delta;
      s.run = 1;
    }
    // Cluster density: how many of the recent accesses fall within the
    // radius of this one.
    std::uint32_t near = 0;
    const std::uint32_t window = std::min(s.recent_count, kClusterWindow);
    for (std::uint32_t i = 0; i < window; ++i) {
      const std::uint64_t other = s.recent[i];
      const std::uint64_t dist = other > offset ? other - offset
                                                : offset - other;
      if (dist <= kClusterRadius) ++near;
    }
    if (s.run >= kMinStrideRun) {
      p.cls = (s.stride == static_cast<std::int64_t>(s.last_len))
                  ? StreamClass::kSequential
                  : StreamClass::kStrided;
      p.stride = s.stride;
      p.confidence = s.run;
    } else if (window >= kClusterWindow && near >= kClusterMin) {
      p.cls = StreamClass::kClusteredHot;
      p.stride = static_cast<std::int64_t>(len);
      p.confidence = near;
    }
  }
  s.recent[s.recent_pos] = offset;
  s.recent_pos = (s.recent_pos + 1) % kClusterWindow;
  s.recent_count = std::min(s.recent_count + 1, kClusterWindow);
  s.last_offset = offset;
  s.last_len = len;
  s.valid = true;
  ++stream_class_counts_[static_cast<std::size_t>(p.cls)];
  return p;
}

const std::vector<PageAccessRange>& FineGrainedAccessDetector::ranges(
    FileId file, std::uint64_t page) const {
  static const std::vector<PageAccessRange> kEmpty;
  auto it = pages_.find(PageId{file, page});
  return it == pages_.end() ? kEmpty : it->second;
}

double FineGrainedAccessDetector::demanded_fraction(FileId file,
                                                    std::uint64_t page) const {
  std::uint64_t bytes = 0;
  for (const PageAccessRange& r : ranges(file, page)) bytes += r.len;
  return static_cast<double>(bytes) / kBlockSize;
}

}  // namespace pipette
