#include "pipette/detector.h"

#include <algorithm>

#include "common/assert.h"
#include "fs/vfs.h"

namespace pipette {

bool FineGrainedAccessDetector::permitted(int open_flags) {
  return (open_flags & kOpenFineGrained) != 0;
}

std::size_t FineGrainedAccessDetector::record(FileId file, std::uint64_t page,
                                              std::uint32_t offset,
                                              std::uint32_t len) {
  PIPETTE_ASSERT(len > 0 && offset + len <= kBlockSize);
  ++fine_accesses_;
  auto& ranges = pages_[PageId{file, page}];
  ranges.push_back({offset, len});
  // Coalesce: sort by offset, merge overlapping or adjacent ranges.
  std::sort(ranges.begin(), ranges.end(),
            [](const PageAccessRange& a, const PageAccessRange& b) {
              return a.offset < b.offset;
            });
  std::vector<PageAccessRange> merged;
  for (const PageAccessRange& r : ranges) {
    if (!merged.empty() &&
        r.offset <= merged.back().offset + merged.back().len) {
      const std::uint32_t end =
          std::max(merged.back().offset + merged.back().len,
                   r.offset + r.len);
      merged.back().len = end - merged.back().offset;
    } else {
      merged.push_back(r);
    }
  }
  ranges = std::move(merged);
  return ranges.size();
}

const std::vector<PageAccessRange>& FineGrainedAccessDetector::ranges(
    FileId file, std::uint64_t page) const {
  static const std::vector<PageAccessRange> kEmpty;
  auto it = pages_.find(PageId{file, page});
  return it == pages_.end() ? kEmpty : it->second;
}

double FineGrainedAccessDetector::demanded_fraction(FileId file,
                                                    std::uint64_t page) const {
  std::uint64_t bytes = 0;
  for (const PageAccessRange& r : ranges(file, page)) bytes += r.len;
  return static_cast<double>(bytes) / kBlockSize;
}

}  // namespace pipette
