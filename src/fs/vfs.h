// Virtual file system layer: the POSIX-flavoured entry point applications
// use. Owns the open-file table (fd -> inode + open flags, including the
// paper's new O_FINE_GRAINED flag) and forwards data-path work to the
// configured IoBackend — one of the read-path implementations under
// src/iopath (conventional block I/O, 2B-SSD, or Pipette).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "fs/filesystem.h"

namespace pipette {

// Open flags (values mirror the spirit, not the ABI, of the kernel's).
constexpr int kOpenRead = 0x0;
constexpr int kOpenWrite = 0x2;
/// The paper's new flag: route this file's eligible reads down the
/// fine-grained path (§4.1).
constexpr int kOpenFineGrained = 0x10000;

/// Interface every read-path implementation provides. Calls are
/// CPU-synchronous from the application's viewpoint: they run the simulator
/// until the request completes and return the elapsed simulated time.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Read `out.size()` bytes at `offset` of `file`, honouring `open_flags`.
  virtual SimDuration read(FileId file, int open_flags, std::uint64_t offset,
                           std::span<std::uint8_t> out) = 0;

  /// Write bytes at `offset` of `file`.
  virtual SimDuration write(FileId file, int open_flags, std::uint64_t offset,
                            std::span<const std::uint8_t> data) = 0;
};

class Vfs {
 public:
  Vfs(FileSystem& fs, IoBackend& backend) : fs_(fs), backend_(backend) {}

  /// Open by name; returns an fd. Asserts if the file does not exist.
  int open(const std::string& name, int flags);
  void close(int fd);

  /// pread/pwrite-style positional I/O; returns simulated latency.
  SimDuration pread(int fd, std::uint64_t offset, std::span<std::uint8_t> out);
  SimDuration pwrite(int fd, std::uint64_t offset,
                     std::span<const std::uint8_t> data);

  FileId file_of(int fd) const;
  int flags_of(int fd) const;
  std::uint64_t size_of(int fd) const;

  FileSystem& fs() { return fs_; }

 private:
  struct OpenFile {
    FileId file = kInvalidFileId;
    int flags = 0;
    bool live = false;
  };

  const OpenFile& entry(int fd) const;

  FileSystem& fs_;
  IoBackend& backend_;
  std::vector<OpenFile> table_;
};

}  // namespace pipette
