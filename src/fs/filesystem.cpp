#include "fs/filesystem.h"

#include <algorithm>

#include "common/assert.h"

namespace pipette {

FileSystem::FileSystem(std::uint64_t lba_count, std::uint64_t reserved_lbas)
    : lba_count_(lba_count), reserved_(reserved_lbas), next_lba_(reserved_lbas) {
  PIPETTE_ASSERT(reserved_lbas < lba_count);
}

FileId FileSystem::create(const std::string& name, std::uint64_t size,
                          std::uint64_t max_extent_blocks,
                          std::uint64_t gap_blocks) {
  PIPETTE_ASSERT_MSG(names_.find(name) == names_.end(),
                     "file already exists");
  PIPETTE_ASSERT(size > 0);
  const std::uint64_t blocks = (size + kBlockSize - 1) / kBlockSize;
  if (max_extent_blocks == 0) max_extent_blocks = blocks;

  Inode inode;
  inode.id = static_cast<FileId>(inodes_.size());
  inode.name = name;
  inode.size = size;

  std::uint64_t done = 0;
  while (done < blocks) {
    const std::uint64_t take = std::min(max_extent_blocks, blocks - done);
    PIPETTE_ASSERT_MSG(next_lba_ + take <= lba_count_,
                       "file system out of space");
    inode.extents.append({done, next_lba_, take});
    next_lba_ += take;
    done += take;
    if (done < blocks) {
      PIPETTE_ASSERT_MSG(next_lba_ + gap_blocks <= lba_count_,
                         "file system out of space (gap)");
      next_lba_ += gap_blocks;
    }
  }

  names_.emplace(name, inode.id);
  inodes_.push_back(std::move(inode));
  return inodes_.back().id;
}

FileId FileSystem::find(const std::string& name) const {
  auto it = names_.find(name);
  return it == names_.end() ? kInvalidFileId : it->second;
}

const Inode& FileSystem::inode(FileId id) const {
  PIPETTE_ASSERT(id < inodes_.size());
  return inodes_[id];
}

void FileSystem::extract_lbas(FileId id, std::uint64_t offset,
                              std::uint64_t len,
                              std::vector<LbaRange>& out) const {
  const Inode& node = inode(id);
  // Page-granular callers (page cache fill, writeback) may touch the tail
  // block past EOF; the inode owns whole blocks, so allow up to the
  // block-rounded size. User-facing bounds are enforced at the VFS.
  PIPETTE_ASSERT_MSG(offset + len <= node.extents.blocks() * kBlockSize,
                     "read past end of file");
  node.extents.extract(offset, len, out);
}

}  // namespace pipette
