#include "fs/extent.h"

#include <algorithm>

#include "common/assert.h"

namespace pipette {

void ExtentTree::append(const Extent& extent) {
  PIPETTE_ASSERT(extent.count > 0);
  if (!extents_.empty()) {
    const Extent& last = extents_.back();
    PIPETTE_ASSERT_MSG(
        extent.logical_block >= last.logical_block + last.count,
        "extents must be appended in logical order without overlap");
  }
  extents_.push_back(extent);
  total_blocks_ =
      std::max(total_blocks_, extent.logical_block + extent.count);
}

Lba ExtentTree::map_block(std::uint64_t logical_block) const {
  // Find the last extent whose logical_block <= target.
  auto it = std::upper_bound(
      extents_.begin(), extents_.end(), logical_block,
      [](std::uint64_t lb, const Extent& e) { return lb < e.logical_block; });
  PIPETTE_ASSERT_MSG(it != extents_.begin(), "block before first extent");
  --it;
  PIPETTE_ASSERT_MSG(logical_block < it->logical_block + it->count,
                     "block falls in an extent gap");
  return it->start_lba + (logical_block - it->logical_block);
}

void ExtentTree::extract(std::uint64_t offset, std::uint64_t len,
                         std::vector<LbaRange>& out) const {
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    const std::uint64_t block = pos / kBlockSize;
    const std::uint32_t in_block = static_cast<std::uint32_t>(pos % kBlockSize);
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockSize - in_block, end - pos));
    out.push_back({map_block(block), in_block, take});
    pos += take;
  }
}

}  // namespace pipette
