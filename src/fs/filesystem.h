// A minimal ext4-like file system over the flat LBA space: a name -> inode
// namespace, extent-based allocation with a configurable maximum extent
// length (shorter maxima model on-disk fragmentation), and the LBA Extractor
// entry point used by Pipette's fine-grained constructor.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/extent.h"
#include "ssd/types.h"

namespace pipette {

using FileId = std::uint32_t;
constexpr FileId kInvalidFileId = ~FileId{0};

struct Inode {
  FileId id = kInvalidFileId;
  std::string name;
  std::uint64_t size = 0;  // bytes
  ExtentTree extents;
};

class FileSystem {
 public:
  /// Manages `lba_count` blocks of the device, reserving the first
  /// `reserved_lbas` for superblock/metadata (never allocated to files).
  explicit FileSystem(std::uint64_t lba_count, std::uint64_t reserved_lbas = 64);

  /// Create a file of `size` bytes. `max_extent_blocks` caps each extent
  /// (0 = a single extent if space allows); smaller caps create deliberate
  /// fragmentation, with `gap_blocks` unallocated blocks between extents.
  FileId create(const std::string& name, std::uint64_t size,
                std::uint64_t max_extent_blocks = 0,
                std::uint64_t gap_blocks = 0);

  /// Look up by name; kInvalidFileId if absent.
  FileId find(const std::string& name) const;

  const Inode& inode(FileId id) const;

  /// The LBA Extractor (paper Fig. 2): resolve a byte range of a file to
  /// the device blocks holding it, bypassing the generic block layer.
  void extract_lbas(FileId id, std::uint64_t offset, std::uint64_t len,
                    std::vector<LbaRange>& out) const;

  std::uint64_t allocated_blocks() const { return next_lba_ - reserved_; }
  std::uint64_t total_blocks() const { return lba_count_; }

 private:
  std::uint64_t lba_count_;
  std::uint64_t reserved_;
  std::uint64_t next_lba_;
  std::vector<Inode> inodes_;
  std::unordered_map<std::string, FileId> names_;
};

}  // namespace pipette
