#include "fs/vfs.h"

#include "common/assert.h"

namespace pipette {

int Vfs::open(const std::string& name, int flags) {
  const FileId id = fs_.find(name);
  PIPETTE_ASSERT_MSG(id != kInvalidFileId, "open: no such file");
  // Reuse the lowest closed slot, POSIX-style.
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (!table_[i].live) {
      table_[i] = {id, flags, true};
      return static_cast<int>(i);
    }
  }
  table_.push_back({id, flags, true});
  return static_cast<int>(table_.size() - 1);
}

void Vfs::close(int fd) {
  PIPETTE_ASSERT(fd >= 0 && static_cast<std::size_t>(fd) < table_.size());
  PIPETTE_ASSERT_MSG(table_[static_cast<std::size_t>(fd)].live,
                     "close of a closed fd");
  table_[static_cast<std::size_t>(fd)].live = false;
}

const Vfs::OpenFile& Vfs::entry(int fd) const {
  PIPETTE_ASSERT(fd >= 0 && static_cast<std::size_t>(fd) < table_.size());
  const OpenFile& of = table_[static_cast<std::size_t>(fd)];
  PIPETTE_ASSERT_MSG(of.live, "I/O on a closed fd");
  return of;
}

SimDuration Vfs::pread(int fd, std::uint64_t offset,
                       std::span<std::uint8_t> out) {
  const OpenFile& of = entry(fd);
  PIPETTE_ASSERT_MSG(offset + out.size() <= fs_.inode(of.file).size,
                     "pread past end of file");
  return backend_.read(of.file, of.flags, offset, out);
}

SimDuration Vfs::pwrite(int fd, std::uint64_t offset,
                        std::span<const std::uint8_t> data) {
  const OpenFile& of = entry(fd);
  PIPETTE_ASSERT_MSG((of.flags & kOpenWrite) != 0,
                     "pwrite on a read-only fd");
  PIPETTE_ASSERT_MSG(offset + data.size() <= fs_.inode(of.file).size,
                     "pwrite past end of file");
  return backend_.write(of.file, of.flags, offset, data);
}

FileId Vfs::file_of(int fd) const { return entry(fd).file; }
int Vfs::flags_of(int fd) const { return entry(fd).flags; }
std::uint64_t Vfs::size_of(int fd) const {
  return fs_.inode(entry(fd).file).size;
}

}  // namespace pipette
