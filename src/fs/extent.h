// Ext4-style extent mapping: each file's logical block space is covered by
// sorted, non-overlapping extents mapping runs of logical blocks to runs of
// LBAs. The LBA Extractor (paper §3.1.2) resolves byte ranges to the pages
// holding them so the fine-grained path can bypass the generic block layer.
#pragma once

#include <cstdint>
#include <vector>

#include "ssd/types.h"

namespace pipette {

struct Extent {
  std::uint64_t logical_block = 0;  // first logical 4 KiB block covered
  Lba start_lba = 0;                // first device block
  std::uint64_t count = 0;          // blocks covered

  bool operator==(const Extent&) const = default;
};

/// A resolved piece of a byte range: which LBA holds it and where inside.
struct LbaRange {
  Lba lba = kInvalidLba;
  std::uint32_t offset = 0;  // byte offset within the block
  std::uint32_t len = 0;
};

class ExtentTree {
 public:
  /// Extents must be appended in logical order, contiguous coverage is not
  /// required to be gap-free but lookups must land inside an extent.
  void append(const Extent& extent);

  /// LBA of a logical block (binary search over extents).
  Lba map_block(std::uint64_t logical_block) const;

  /// Resolve [offset, offset+len) in bytes into per-block LbaRanges.
  /// This is the LBA Extractor's core operation.
  void extract(std::uint64_t offset, std::uint64_t len,
               std::vector<LbaRange>& out) const;

  std::size_t extent_count() const { return extents_.size(); }
  std::uint64_t blocks() const { return total_blocks_; }
  const std::vector<Extent>& extents() const { return extents_; }

 private:
  std::vector<Extent> extents_;
  std::uint64_t total_blocks_ = 0;
};

}  // namespace pipette
