#include "hostmem/page_cache.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace pipette {

PageCache::PageCache(std::uint64_t capacity_bytes, ReadaheadConfig ra)
    : cache_(std::max<std::uint64_t>(1, capacity_bytes / kBlockSize)),
      ra_(ra) {}

CachedPage* PageCache::lookup(const PageKey& key) {
  CachedPage* page = cache_.find(key);
  stats_.lookups.record(page != nullptr);
  if (page != nullptr) page->demanded = true;
  return page;
}

CachedPage* PageCache::get(const PageKey& key) {
  CachedPage* page = cache_.find(key);
  if (page != nullptr) page->demanded = true;
  return page;
}

bool PageCache::contains(const PageKey& key) const {
  return cache_.peek(key) != nullptr;
}

void PageCache::on_evict(const PageKey& key, CachedPage& page) {
  ++stats_.evictions;
  if (!page.demanded) ++stats_.evicted_never_used;
  if (page.dirty) {
    PIPETTE_ASSERT_MSG(static_cast<bool>(writeback_),
                       "dirty page evicted with no writeback sink");
    writeback_(key, page.data.get());
  }
}

void PageCache::insert(const PageKey& key, const std::uint8_t* bytes,
                       bool demand) {
  CachedPage page;
  page.data = std::make_unique<std::uint8_t[]>(kBlockSize);
  std::memcpy(page.data.get(), bytes, kBlockSize);
  page.demanded = demand;
  ++stats_.fills;
  if (!demand) ++stats_.readahead_pages;
  auto evicted = cache_.insert(key, std::move(page));
  if (evicted) on_evict(evicted->first, evicted->second);
  stats_.peak_pages = std::max(stats_.peak_pages, cache_.size());
}

bool PageCache::invalidate(const PageKey& key) {
  CachedPage* page = cache_.find(key);
  if (page == nullptr) return false;
  if (page->dirty) {
    PIPETTE_ASSERT_MSG(static_cast<bool>(writeback_),
                       "dirty page invalidated with no writeback sink");
    writeback_(key, page->data.get());
  }
  return cache_.erase(key);
}

void PageCache::mark_dirty(const PageKey& key) {
  CachedPage* page = cache_.find(key);
  PIPETTE_ASSERT_MSG(page != nullptr, "mark_dirty on a non-resident page");
  page->dirty = true;
}

std::uint32_t PageCache::plan_readahead(const PageKey& key,
                                        std::uint32_t demand_pages) {
  if (!ra_.enabled) return 0;
  StreamState& st = streams_[key.file_id];
  if (key.page == st.next_expected) {
    // Sequential continuation: ramp the window up to the cap.
    st.window = std::min(ra_.max_window,
                         std::max(ra_.initial_window, st.window * 2));
  } else {
    // Random access: restart with the initial window.
    st.window = ra_.initial_window;
  }
  st.next_expected = key.page + demand_pages +
                     (st.window > demand_pages ? st.window - demand_pages : 0);
  return st.window > demand_pages ? st.window - demand_pages : 0;
}

void PageCache::flush(const WritebackFn& writeback) {
  cache_.for_each([&](const PageKey& key, CachedPage& page) {
    if (page.dirty) {
      writeback(key, page.data.get());
      page.dirty = false;
    }
  });
}

void PageCache::clear() {
  cache_.for_each([](const PageKey&, CachedPage& page) {
    PIPETTE_ASSERT_MSG(!page.dirty, "clear() with dirty pages: flush first");
  });
  cache_.clear();
  streams_.clear();
}

void PageCache::set_capacity_pages(std::uint64_t pages) {
  cache_.set_capacity(std::max<std::uint64_t>(1, pages),
                      [this](const PageKey& k, CachedPage& p) {
                        on_evict(k, p);
                      });
}

}  // namespace pipette
