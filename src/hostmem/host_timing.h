// Host CPU cost model for the kernel I/O stack.
//
// These constants represent the software work a real kernel does per layer;
// they were chosen to match the rough magnitudes of Linux 5.x on a desktop
// CPU (syscall entry ~0.5us, page-cache radix walk ~0.15us, ~20 GB/s
// kernel->user copy, block-layer plug/merge/dispatch ~1.5us per request).
#pragma once

#include "common/units.h"

namespace pipette {

struct HostTiming {
  SimDuration syscall = 500;             // user->kernel entry + exit
  SimDuration vfs_lookup = 200;          // fd table + inode + f_pos handling
  SimDuration page_cache_lookup = 150;   // xarray walk per page
  SimDuration page_alloc = 250;          // allocate + insert a page
  double copy_ns_per_byte = 0.05;        // ~20 GB/s memcpy to user space
  SimDuration fs_extent_lookup = 300;    // logical block -> LBA mapping
  SimDuration block_layer_per_request = 1500;  // plug, merge, tag, dispatch
  SimDuration detector_check = 120;      // Pipette: permission + range track
  SimDuration fgrc_lookup = 180;         // Pipette: per-file hash probe
  SimDuration fgrc_insert = 220;         // Pipette: slab alloc + hash insert

  SimDuration copy_cost(std::uint64_t bytes) const {
    return static_cast<SimDuration>(copy_ns_per_byte *
                                    static_cast<double>(bytes));
  }
};

}  // namespace pipette
