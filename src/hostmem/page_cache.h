// Host page cache with Linux-style read-ahead.
//
// Pages are keyed by (file, logical page index) and hold real bytes; the
// block read path fills them from the device and serves user copies out of
// them. Read-ahead mirrors the kernel's on-demand scheme in simplified
// form: every demand miss issues at least an initial window, a miss that
// continues a detected sequential stream doubles the window up to a
// maximum, and a random miss resets the stream. This is the mechanism
// behind the paper's observation that fine-grained reads "are not adaptive
// to the read-ahead strategy and the page cache mechanism" — random 128 B
// reads drag whole windows of pages into memory and pollute the cache.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/lru.h"
#include "common/stats.h"
#include "ssd/types.h"

namespace pipette {

struct PageKey {
  std::uint32_t file_id = 0;
  std::uint64_t page = 0;  // logical page index within the file

  bool operator==(const PageKey&) const = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.file_id) << 40) ^ k.page);
  }
};

struct CachedPage {
  std::unique_ptr<std::uint8_t[]> data;
  bool dirty = false;
  bool demanded = false;  // ever served a demand read (vs pure read-ahead)
};

struct ReadaheadConfig {
  std::uint32_t initial_window = 4;  // pages issued on any demand miss
  std::uint32_t max_window = 32;     // cap (128 KiB), like Linux default
  bool enabled = true;
};

struct PageCacheStats {
  RatioCounter lookups;              // demand lookups only
  std::uint64_t fills = 0;           // pages inserted (demand + read-ahead)
  std::uint64_t readahead_pages = 0; // pages brought in beyond the demand
  std::uint64_t evictions = 0;
  std::uint64_t evicted_never_used = 0;  // polluted: evicted w/o a demand hit
  std::uint64_t peak_pages = 0;
};

/// Eviction sink for dirty pages (writeback): called with the page's key and
/// bytes before the page is dropped.
using WritebackFn =
    std::function<void(const PageKey&, const std::uint8_t* data)>;

class PageCache {
 public:
  PageCache(std::uint64_t capacity_bytes, ReadaheadConfig ra = {});

  /// Demand lookup. Returns the page (promoting it) or nullptr on miss.
  CachedPage* lookup(const PageKey& key);

  /// Access without statistics (promotes recency). For the second touch
  /// within one request — copy-out after a counted lookup — so hit ratios
  /// count each request once.
  CachedPage* get(const PageKey& key);

  /// Non-demand lookup (used by read-ahead planning and tests): no stats,
  /// no promotion.
  bool contains(const PageKey& key) const;

  /// Insert a page with the given bytes (copied). `demand` marks whether a
  /// user read asked for it (false for read-ahead fills).
  void insert(const PageKey& key, const std::uint8_t* bytes, bool demand);

  /// Drop a page (consistency invalidation); flushes via `writeback` if
  /// dirty. Returns true if present.
  bool invalidate(const PageKey& key);

  /// Mark a cached page dirty (buffered write).
  void mark_dirty(const PageKey& key);

  /// Plan the read-ahead for a demand miss at `key`: returns how many pages
  /// beyond the demanded ones to fetch, updating the per-file stream state.
  /// `demand_pages` is the span of the user request in pages.
  std::uint32_t plan_readahead(const PageKey& key, std::uint32_t demand_pages);

  /// Flush all dirty pages through `writeback`.
  void flush(const WritebackFn& writeback);

  /// Drop every resident page and all read-ahead stream state (cold
  /// restart). Cumulative statistics are preserved; callers must flush
  /// dirty pages first — clearing asserts nothing dirty remains.
  void clear();

  /// Set the writeback sink used when dirty pages are evicted/invalidated.
  void set_writeback(WritebackFn writeback) { writeback_ = std::move(writeback); }

  /// Capacity control (dynamic allocation gives/takes pages).
  std::uint64_t capacity_pages() const { return cache_.capacity(); }
  void set_capacity_pages(std::uint64_t pages);

  std::uint64_t resident_pages() const { return cache_.size(); }
  std::uint64_t resident_bytes() const { return cache_.size() * kBlockSize; }
  const PageCacheStats& stats() const { return stats_; }
  RatioCounter& hit_counter() { return stats_.lookups; }

 private:
  struct StreamState {
    std::uint64_t next_expected = ~0ull;  // page after the last demand read
    std::uint32_t window = 0;             // current read-ahead window
  };

  void on_evict(const PageKey& key, CachedPage& page);

  LruMap<PageKey, CachedPage, PageKeyHash> cache_;
  ReadaheadConfig ra_;
  PageCacheStats stats_;
  WritebackFn writeback_;
  std::unordered_map<std::uint32_t, StreamState> streams_;  // per file
};

}  // namespace pipette
