// Deterministic fault-injection plans and the per-component injector.
//
// A FaultPlan describes every failure the simulation may inject — NAND read
// errors with retry/backoff, HMB/DMA engine faults and lost completions on
// the fine-grained path — plus, at the fleet layer, shard outage schedules
// with a policy for requests aimed at a down shard. All injection draws come
// from xoshiro sub-streams derived with Rng::split_seed(plan seed, domain),
// so components never perturb each other's randomness.
//
// Determinism contract (pinned by tests/fault_test.cpp and the golden
// fixture): a zero-rate plan draws NO random values and schedules NO extra
// events, so a run with faults disabled is bit-identical to a run built
// before this subsystem existed — whatever seed the plan carries. Nonzero
// rates are a pure function of (plan seed, domain, draw index), so the same
// seed reproduces the same retry/failure trace at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace pipette {

/// Sub-stream selector for FaultInjector: each fault-injecting component
/// owns one domain so its draw sequence is independent of every other's.
enum class FaultDomain : std::uint64_t {
  kNand = 1,    // per-attempt read sensing failures
  kHmbDma = 2,  // fine-grained engine HMB transfer faults / lost completions
};

/// NAND media read errors (paper-world: raw bit-error spikes the default
/// read threshold cannot correct). Each sensing pass fails independently
/// with `read_error_rate`; a failed pass waits an exponentially growing
/// backoff (the drive retuning its read voltages) and senses again, up to
/// `max_attempts` passes, after which the read is a terminal ECC failure
/// and no data is transferred.
struct NandFaultPlan {
  double read_error_rate = 0.0;
  std::uint32_t max_attempts = 4;
  SimDuration backoff_base = 10 * kUs;  // wait before retry k: base << (k-1)

  /// Wear-correlated media errors: each completed erase on a die adds
  /// `wear_error_per_erase` to that die's per-pass read error probability,
  /// so heavily-erased dies retry (and eventually fail) more. 0 disables
  /// the wear model entirely — including the burst window below — and the
  /// draw stream is bit-identical to a plan without these fields.
  double wear_error_per_erase = 0.0;
  /// Bursty post-erase window: the first `wear_burst_reads` reads on a die
  /// after one of its blocks is erased see the wear contribution multiplied
  /// by (1 + wear_burst_boost) — freshly-erased blocks disturb neighbouring
  /// cells, so errors cluster right after an erase rather than arriving
  /// flat. Inert while wear_error_per_erase == 0.
  double wear_burst_boost = 3.0;
  std::uint32_t wear_burst_reads = 64;
};

/// Faults of the fine-grained read engine's host-memory-buffer transfers.
struct HmbFaultPlan {
  /// P(a kFgRead command's HMB DMA engine faults): the command aborts after
  /// `fault_latency` without moving any bytes; the host degrades the
  /// request to the block path.
  double dma_fault_rate = 0.0;
  /// P(a kFgRead command's completion is lost): all device work runs but
  /// the CQ entry never arrives; only the host's timeout guard ends the
  /// wait.
  double drop_rate = 0.0;
  SimDuration fault_latency = 5 * kUs;
  /// Host-side guard on the closed-loop fine-read wait; 0 disables it.
  /// Must exceed any legitimate command latency (it is the hang detector,
  /// not a QoS deadline).
  SimDuration timeout = 100 * kMs;
};

/// Device-level fault plan, carried by ControllerConfig. `seed` is the root
/// of every injector sub-stream on this device.
struct FaultPlan {
  std::uint64_t seed = 0xfa17;
  NandFaultPlan nand;
  HmbFaultPlan hmb;

  bool any_device_faults() const {
    return nand.read_error_rate > 0.0 || nand.wear_error_per_erase > 0.0 ||
           hmb.dma_fault_rate > 0.0 || hmb.drop_rate > 0.0;
  }
};

/// What a client does with a request whose owning shard is down.
enum class DownShardPolicy {
  kFailFast,      // error immediately after fail_fast_latency
  kRetryBackoff,  // back off exponentially; replay against the recovered shard
  kReroute,       // serve on the partitioner's failover target (next up shard)
};

const char* to_string(DownShardPolicy policy);

/// One shard's outage window, in master-stream request indices (the fleet's
/// deterministic clock): the shard is down for requests with index in
/// [fail_at, recover_at) and comes back with cold host caches. Under a
/// replicated fleet `replica` selects which copy of the group dies (0 = the
/// primary); replica-free fleets require it to stay 0.
struct ShardOutage {
  std::size_t shard = 0;
  std::uint64_t fail_at = 0;
  std::uint64_t recover_at = 0;  // == fail_at: no outage
  std::size_t replica = 0;

  bool active() const { return recover_at > fail_at; }
  bool down_at(std::uint64_t master_index) const {
    return master_index >= fail_at && master_index < recover_at;
  }
};

/// Fleet-level fault schedule: shard outages plus the down-shard policy.
struct FleetFaultPlan {
  std::vector<ShardOutage> outages;
  DownShardPolicy policy = DownShardPolicy::kFailFast;
  /// Client-observed latency of a fail-fast rejection.
  SimDuration fail_fast_latency = 50 * kUs;
  /// First retry wait under kRetryBackoff; doubles per attempt.
  SimDuration retry_backoff_base = 1 * kMs;
  std::uint32_t retry_attempts = 3;

  bool any() const;
  /// First outage scheduled for `shard`, any replica (the replica-free
  /// fleet's lookup, where at most one copy of each shard exists).
  const ShardOutage* outage_for(std::size_t shard) const;
  /// Outage scheduled for one specific copy of a replicated group.
  const ShardOutage* outage_for(std::size_t shard, std::size_t replica) const;
  bool shard_down_at(std::size_t shard, std::uint64_t master_index) const;
  /// Whether replica `replica` of group `shard` is down at `master_index`.
  bool replica_down_at(std::size_t shard, std::size_t replica,
                       std::uint64_t master_index) const;
  /// Total wait of the full backoff ladder: sum of base << k over attempts.
  SimDuration total_retry_backoff() const;
};

/// The serving shard for master request `index` whose key-owner is `owner`:
/// the owner itself, unless it is down and the policy reroutes, in which
/// case the next up shard in ring order is the failover target. Pure
/// function — the counting pre-pass and every shard's stream filter call
/// it and must agree, which is what keeps jobs-1 == jobs-N under faults.
std::size_t effective_shard(const FleetFaultPlan& faults, std::size_t shards,
                            std::size_t owner, std::uint64_t master_index);

/// A component's private fault stream. fire(rate) returns true with
/// probability `rate` — and, crucially, consumes NO randomness when the
/// rate is zero, so disabled plans are bit-identical to no plan at all.
class FaultInjector {
 public:
  FaultInjector(std::uint64_t plan_seed, FaultDomain domain)
      : rng_(Rng::split_seed(plan_seed,
                             static_cast<std::uint64_t>(domain))) {}

  bool fire(double rate) {
    if (rate <= 0.0) return false;
    ++draws_;
    if (rng_.next_bool(rate)) {
      ++fired_;
      return true;
    }
    return false;
  }

  /// Random values consumed so far (diagnostics; zero iff all rates zero).
  std::uint64_t draws() const { return draws_; }
  /// Draws that came up positive (faults actually injected).
  std::uint64_t fired() const { return fired_; }

 private:
  Rng rng_;
  std::uint64_t draws_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace pipette
