#include "faults/faults.h"

#include "common/assert.h"

namespace pipette {

const char* to_string(DownShardPolicy policy) {
  switch (policy) {
    case DownShardPolicy::kFailFast:
      return "fail-fast";
    case DownShardPolicy::kRetryBackoff:
      return "retry-backoff";
    case DownShardPolicy::kReroute:
      return "reroute";
  }
  PIPETTE_ASSERT_MSG(false, "unknown DownShardPolicy");
  return "?";  // unreachable: the assert above aborts
}

bool FleetFaultPlan::any() const {
  for (const ShardOutage& o : outages)
    if (o.active()) return true;
  return false;
}

const ShardOutage* FleetFaultPlan::outage_for(std::size_t shard) const {
  for (const ShardOutage& o : outages)
    if (o.shard == shard) return &o;
  return nullptr;
}

const ShardOutage* FleetFaultPlan::outage_for(std::size_t shard,
                                              std::size_t replica) const {
  for (const ShardOutage& o : outages)
    if (o.shard == shard && o.replica == replica) return &o;
  return nullptr;
}

bool FleetFaultPlan::shard_down_at(std::size_t shard,
                                   std::uint64_t master_index) const {
  const ShardOutage* o = outage_for(shard);
  return o != nullptr && o->down_at(master_index);
}

bool FleetFaultPlan::replica_down_at(std::size_t shard, std::size_t replica,
                                     std::uint64_t master_index) const {
  const ShardOutage* o = outage_for(shard, replica);
  return o != nullptr && o->down_at(master_index);
}

SimDuration FleetFaultPlan::total_retry_backoff() const {
  SimDuration total = 0;
  for (std::uint32_t k = 0; k < retry_attempts; ++k)
    total += retry_backoff_base << k;
  return total;
}

std::size_t effective_shard(const FleetFaultPlan& faults, std::size_t shards,
                            std::size_t owner, std::uint64_t master_index) {
  if (faults.policy != DownShardPolicy::kReroute) return owner;
  if (!faults.shard_down_at(owner, master_index)) return owner;
  for (std::size_t d = 1; d < shards; ++d) {
    const std::size_t candidate = (owner + d) % shards;
    if (!faults.shard_down_at(candidate, master_index)) return candidate;
  }
  return owner;  // whole fleet down: nobody can take it off the owner
}

}  // namespace pipette
