// Fleet simulation layer: many machines serving one partitioned workload.
//
// The paper's evaluation (§4) runs one host against one SSD. Deployments of
// the applications it targets — recommendation inference, social-graph
// serving — shard the dataset across a fleet of such machines, and fleet
// behaviour (skewed shard load, divergent per-shard cache hit ratios, tail
// latency set by the hottest shard) is qualitatively different from any
// single-machine result. This layer simulates exactly that:
//
//  * Shard       — one Machine (and with it a private Simulator) plus the
//                  shard's index; runs its sub-stream to a RunResult.
//  * FleetConfig — shard count, key->shard partitioning scheme, the base
//                  MachineConfig and optional per-shard overrides.
//  * FleetRunner — fans the shards across a ThreadPool and aggregates a
//                  FleetResult.
//
// Determinism contract (what fleet_test pins):
//  * Same seed => bit-identical FleetResult, at any job count. Shards never
//    share mutable state; each one is a self-contained simulation.
//  * In kPartitioned mode every shard replays the same master stream
//    (splittable-RNG seeding keeps it a pure function of the fleet seed)
//    and serves only its keys, so a k-shard fleet serves exactly the
//    per-key request sequence of the 1-shard run — and a 1-shard fleet IS
//    the single-machine experiment, field for field.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "faults/faults.h"
#include "fleet/partition.h"
#include "fleet/replica.h"
#include "sim/experiment.h"

namespace pipette {

/// Constructs a workload from a seed. Called once per shard (plus once for
/// the partitioned-mode counting pre-pass); every call with the same seed
/// must yield an identical stream.
using SeededWorkloadFactory =
    std::function<std::unique_ptr<Workload>(std::uint64_t seed)>;

/// How shard sub-streams derive from the fleet workload seed.
enum class SubstreamMode {
  /// Every shard replays the master stream (same seed) and serves the
  /// requests its partitioner maps to it: one dataset partitioned across
  /// the fleet. Request counts per shard follow the key popularity.
  kPartitioned,
  /// Shard s runs its own full stream seeded with Rng::split_seed(seed, s):
  /// k independent replicas each facing private traffic (a replicated tier
  /// behind a random load balancer). The partitioner is not consulted.
  kIndependent,
};

const char* to_string(SubstreamMode mode);

struct FleetConfig {
  std::size_t shards = 1;
  PartitionScheme partition = PartitionScheme::kHash;
  SubstreamMode substream = SubstreamMode::kPartitioned;
  /// Base machine for every shard.
  MachineConfig machine;
  /// Optional per-shard overrides: empty, or exactly one entry per shard
  /// (heterogeneous fleets: a straggler shard, mixed path kinds, ...).
  std::vector<MachineConfig> shard_machines;
  /// Shard outage schedule + down-shard policy. Outages are indexed by
  /// master-stream position (the fleet's deterministic clock), so an active
  /// schedule requires kPartitioned mode. Device-level fault rates live in
  /// machine.ssd.faults; the runner splits that plan's seed per shard so
  /// each device draws a private error trace.
  FleetFaultPlan faults;
  /// Replica groups, read policy, shadow reads, and live resharding (see
  /// fleet/replica.h). The default — R=1, kPrimaryOnly, no shadow reads, no
  /// migration — is replication.any() == false and takes the legacy
  /// single-copy code path, bit-identical to the pre-replica fleet
  /// (golden-pinned). Anything else routes the run through the
  /// ReplicaRouter; with `shards` groups of `replication.replicas` copies,
  /// machine ids are group * R + replica and shard_results holds one entry
  /// per machine. Requires kPartitioned mode (the router is keyed on the
  /// master-stream clock).
  ReplicationConfig replication;
};

struct FleetResult {
  /// One per shard, in shard order — or, under replication, one per
  /// machine in machine-id order (group * R + replica).
  std::vector<RunResult> shard_results;

  // Fleet-wide totals over the measured phase (sums across shards). Under
  // replication the client-facing fields (requests, measured_reads,
  // bytes_requested, latency and its percentiles, failed_reads) describe
  // the *client's* view composed by the router — one value per master
  // request, quorum legs joined on the k-th fastest — while traffic_bytes,
  // events_executed and the load-imbalance block sum the device-level work
  // of every machine (replicated writes, shadow/warm reads included).
  std::uint64_t requests = 0;
  std::uint64_t measured_reads = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t traffic_bytes = 0;
  std::uint64_t events_executed = 0;  // warmup + measurement, all shards

  // Fault-model totals over the measured phase (sums across shards):
  // NAND retry passes + client retries, terminal read failures, reads that
  // fell back to the block path after an HMB fault, and requests that
  // arrived while their owning shard was down.
  std::uint64_t retries = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t down_requests = 0;

  /// Simulated makespan of the measured phase: the slowest shard's elapsed
  /// time. Shards run concurrently in a real deployment, so fleet
  /// throughput is total work over this, not over the sum.
  SimDuration makespan = 0;

  /// Cross-shard read-latency distribution: the per-shard measured-phase
  /// histograms merged bucket-wise. The percentiles below are percentiles
  /// of this merged distribution — averaging per-shard percentile readouts
  /// would understate the tail whenever one shard runs hot.
  LatencyHistogram latency;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// The failover headline number: bounded p999 under a replica loss is
  /// what bench/fleet_failover demonstrates.
  double p999_latency_us = 0.0;

  /// Fleet-wide component metrics: per-shard registries merged by key-wise
  /// sum. Always collected (see RunResult::metrics), so it participates in
  /// Deterministic().
  MetricsRegistry metrics;

  /// Cross-shard per-stage latency decomposition (merged bucket-wise like
  /// `latency`). Empty unless shards ran with tracing; excluded from
  /// Deterministic() for the same reason as RunResult::stage_latency.
  std::vector<LatencyHistogram> stage_latency;

  // Load imbalance over measured requests.
  std::uint64_t max_shard_requests = 0;
  std::uint64_t min_shard_requests = 0;
  double mean_shard_requests = 0.0;
  /// max/mean shard requests; 1.0 = perfectly balanced.
  double load_imbalance = 0.0;
  /// First shard with max_shard_requests, and its FGRC hit ratio — under
  /// skew the hottest shard's cache behaviour bounds fleet tail latency.
  std::size_t hottest_shard = 0;
  double hottest_shard_fgrc_hit_ratio = 0.0;

  /// Host wall-clock for the whole fleet run. Nondeterministic; excluded
  /// from Deterministic() and deterministic_equal().
  double host_seconds = 0.0;

  /// Fraction of measured reads the fleet served (possibly degraded);
  /// 1.0 when no read was attempted.
  double availability() const {
    const std::uint64_t attempted = measured_reads + failed_reads;
    return attempted == 0 ? 1.0
                          : static_cast<double>(measured_reads) /
                                static_cast<double>(attempted);
  }

  double requests_per_sec() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(requests) /
                               (static_cast<double>(makespan) / 1e9);
  }
  double throughput_mib_s() const {
    return makespan == 0
               ? 0.0
               : static_cast<double>(bytes_requested) / (1024.0 * 1024.0) /
                     (static_cast<double>(makespan) / 1e9);
  }

  /// Every deterministic aggregate as one comparable tuple (per-shard
  /// results are covered by deterministic_equal(), which also walks
  /// shard_results).
  auto Deterministic() const {
    return std::tie(requests, measured_reads, bytes_requested, traffic_bytes,
                    events_executed, retries, failed_reads, degraded_reads,
                    down_requests, makespan, latency, mean_latency_us,
                    p50_latency_us, p99_latency_us, p999_latency_us,
                    max_shard_requests, min_shard_requests,
                    mean_shard_requests, load_imbalance, hottest_shard,
                    hottest_shard_fgrc_hit_ratio, metrics);
  }
};

/// True iff every deterministic field of the two results matches — the
/// aggregates and each shard's RunResult::Deterministic().
bool deterministic_equal(const FleetResult& a, const FleetResult& b);

/// One machine of the fleet. Owns the Machine — and through it a private
/// Simulator — so shards can run concurrently without sharing any state.
class Shard {
 public:
  Shard(std::size_t index, const MachineConfig& config,
        std::span<const FileSpec> files);

  std::size_t index() const { return index_; }
  Machine& machine() { return machine_; }

  /// Drive `sub_stream` through this shard's machine: `plan.warmup` cache-
  /// warming requests, then `plan.requests` measured ones. The hooked
  /// variant intercepts every request (outage policies).
  RunResult run(Workload& sub_stream, const RunConfig& plan);
  RunResult run(Workload& sub_stream, const RunConfig& plan,
                const RunHooks& hooks);
  /// Arena variant: the pinned fleet workers pass their per-worker RunArena
  /// so scratch capacity is reused across the shards each worker runs.
  RunResult run(Workload& sub_stream, const RunConfig& plan,
                const RunHooks& hooks, RunArena* arena);

 private:
  std::size_t index_;
  Machine machine_;
};

class FleetRunner {
 public:
  /// `workload_seed` is the fleet-level seed; how per-shard streams derive
  /// from it is config.substream's choice.
  FleetRunner(FleetConfig config, SeededWorkloadFactory make_workload,
              std::uint64_t workload_seed);

  /// Run the fleet. `run` counts the fleet-wide stream: the first
  /// run.warmup master requests are warmup, the next run.requests are
  /// measured — each shard receives its share of both phases (exact counts
  /// come from a counting pre-pass over the master stream). `jobs` = worker
  /// threads for fanning shards (0 = hardware concurrency, 1 = serial);
  /// results are bit-identical at any job count.
  FleetResult run(const RunConfig& run, unsigned jobs = 0) const;

  const FleetConfig& config() const { return config_; }

 private:
  MachineConfig shard_machine(std::size_t shard) const;
  MachineConfig replica_machine(std::size_t group,
                                std::size_t machine_id) const;
  /// The replicated run path: groups * R machines driven by ReplicaWorkload
  /// filters, per-request client latencies captured through RunHooks and
  /// composed (quorum join, failover penalty) into the client-facing
  /// aggregates. Taken iff config.replication.any().
  FleetResult run_replicated(const RunConfig& run, unsigned jobs) const;

  FleetConfig config_;
  SeededWorkloadFactory make_workload_;
  std::uint64_t seed_;
};

}  // namespace pipette
