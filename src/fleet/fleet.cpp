#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fleet/shard_workload.h"

namespace pipette {

const char* to_string(SubstreamMode mode) {
  switch (mode) {
    case SubstreamMode::kPartitioned:
      return "partitioned";
    case SubstreamMode::kIndependent:
      return "independent";
  }
  return "?";
}

bool deterministic_equal(const FleetResult& a, const FleetResult& b) {
  if (a.Deterministic() != b.Deterministic()) return false;
  if (a.shard_results.size() != b.shard_results.size()) return false;
  for (std::size_t s = 0; s < a.shard_results.size(); ++s) {
    if (a.shard_results[s].Deterministic() !=
        b.shard_results[s].Deterministic())
      return false;
  }
  return true;
}

Shard::Shard(std::size_t index, const MachineConfig& config,
             std::span<const FileSpec> files)
    : index_(index), machine_(config, files) {}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan) {
  return run_experiment_on(machine_, sub_stream, plan);
}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan,
                     const RunHooks& hooks) {
  return run_experiment_on(machine_, sub_stream, plan, hooks);
}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan,
                     const RunHooks& hooks, RunArena* arena) {
  return run_experiment_on(machine_, sub_stream, plan, hooks, arena);
}

FleetRunner::FleetRunner(FleetConfig config,
                         SeededWorkloadFactory make_workload,
                         std::uint64_t workload_seed)
    : config_(std::move(config)),
      make_workload_(std::move(make_workload)),
      seed_(workload_seed) {
  PIPETTE_ASSERT(config_.shards > 0);
  PIPETTE_ASSERT_MSG(config_.shard_machines.empty() ||
                         config_.shard_machines.size() == config_.shards,
                     "shard_machines must be empty or one per shard");
  PIPETTE_ASSERT(make_workload_ != nullptr);
  PIPETTE_ASSERT_MSG(!config_.faults.any() ||
                         config_.substream == SubstreamMode::kPartitioned,
                     "outage schedules are keyed on master-stream indices, "
                     "which only exist in partitioned mode");
  for (const ShardOutage& o : config_.faults.outages) {
    PIPETTE_ASSERT_MSG(o.shard < config_.shards, "outage for unknown shard");
    PIPETTE_ASSERT_MSG(o.recover_at >= o.fail_at, "outage recovers in the past");
  }
}

MachineConfig FleetRunner::shard_machine(std::size_t shard) const {
  MachineConfig machine = config_.shard_machines.empty()
                              ? config_.machine
                              : config_.shard_machines[shard];
  // Every shard's device draws from a private fault sub-stream; without the
  // split each device would replay the identical error trace. A zero-rate
  // plan never draws, so reseeding keeps fault-free runs bit-identical.
  machine.ssd.faults.seed = Rng::split_seed(machine.ssd.faults.seed, shard);
  return machine;
}

FleetResult FleetRunner::run(const RunConfig& run, unsigned jobs) const {
  const auto host_t0 = std::chrono::steady_clock::now();
  const std::size_t shards = config_.shards;
  const bool partitioned = config_.substream == SubstreamMode::kPartitioned;
  const FleetFaultPlan& faults = config_.faults;

  // Per-shard phase sizes. Partitioned mode takes them from a counting
  // pre-pass over the master stream — pure RNG work, no simulation — so
  // every shard's warmup/measured boundary lands exactly on the fleet-wide
  // one. Independent mode gives every replica the full counts. Under a
  // fault plan the pre-pass routes by effective_shard(), so kReroute
  // traffic is counted against the failover target, and it tallies the
  // measured requests whose owner was down.
  // Pre-pass plans start from `run` with zeroed phase counts (not a braced
  // zero) so run-level options like the timeline config carry into every
  // shard's plan.
  RunConfig zero_plan = run;
  zero_plan.warmup = 0;
  zero_plan.requests = 0;
  std::vector<RunConfig> plans(shards, partitioned ? zero_plan : run);
  std::vector<std::uint64_t> down_measured(shards, 0);
  if (partitioned) {
    std::unique_ptr<Workload> master = make_workload_(seed_);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    const Partitioner part(config_.partition, shards, master->files());
    for (std::uint64_t i = 0; i < run.warmup; ++i) {
      const std::size_t owner = part.shard_of(master->next());
      ++plans[effective_shard(faults, shards, owner, i)].warmup;
    }
    for (std::uint64_t i = 0; i < run.requests; ++i) {
      const std::uint64_t index = run.warmup + i;
      const std::size_t owner = part.shard_of(master->next());
      if (faults.shard_down_at(owner, index)) ++down_measured[owner];
      ++plans[effective_shard(faults, shards, owner, index)].requests;
    }
  }

  std::vector<RunResult> shard_results(shards);
  auto run_shard = [&](std::size_t s, RunArena& arena) {
    const std::uint64_t shard_seed =
        partitioned ? seed_ : Rng::split_seed(seed_, s);
    std::unique_ptr<Workload> master = make_workload_(shard_seed);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    if (!partitioned) {
      Shard shard(s, shard_machine(s), master->files());
      shard_results[s] = shard.run(*master, plans[s], RunHooks{}, &arena);
      return;
    }
    const Partitioner part(config_.partition, shards, master->files());
    ShardWorkload sub(std::move(master), part, s,
                      faults.any() ? &faults : nullptr);
    Shard shard(s, shard_machine(s), sub.files());

    const ShardOutage* outage = faults.outage_for(s);
    const bool intercept = outage != nullptr && outage->active() &&
                           faults.policy != DownShardPolicy::kReroute;
    if (!intercept) {
      shard_results[s] = shard.run(sub, plans[s], RunHooks{}, &arena);
      return;
    }

    // Outage interceptor (fail-fast / retry-backoff): a request landing in
    // the outage window is rejected or deferred instead of issued; the
    // first request at or after recovery cold-restarts the machine (host
    // caches come back empty) and replays the deferrals, each charged its
    // client's full backoff ladder.
    struct Deferred {
      Request req;
      bool measured;
    };
    std::vector<Deferred> deferred;
    std::uint64_t client_retries = 0;
    bool recovered = false;
    RunHooks hooks;
    hooks.on_request = [&](const Request& req,
                           const RunHooks::IssueFn& issue) {
      const std::uint64_t index = sub.last_master_index();
      if (!recovered && index >= outage->recover_at) {
        recovered = true;
        shard.machine().cold_restart();
        for (const Deferred& d : deferred) {
          shard.machine().sim().advance(faults.total_retry_backoff());
          if (d.measured) client_retries += faults.retry_attempts;
          issue(d.req);
        }
        deferred.clear();
      }
      if (!outage->down_at(index)) return false;
      if (faults.policy == DownShardPolicy::kFailFast) {
        shard.machine().path().reject_request(req.is_write,
                                              faults.fail_fast_latency);
        return true;
      }
      deferred.push_back({req, index >= run.warmup});
      return true;
    };
    RunResult result = shard.run(sub, plans[s], hooks, &arena);
    // Deferrals still parked when the stream ends (recovery lies beyond the
    // run) exhausted their backoff ladder without an answer: failures.
    for (const Deferred& d : deferred) {
      if (!d.measured) continue;
      client_retries += faults.retry_attempts;
      if (!d.req.is_write) ++result.failed_reads;
    }
    result.retries += client_retries;
    shard_results[s] = result;
  };

  // Cache-local execution: shard s is pinned to worker s % workers, and
  // each worker runs its shards in ascending order against one RunArena, so
  // scratch pools stay warm in that worker's cache across shards. The
  // assignment is a pure function of (shards, workers) — never of timing —
  // so jobs-1 and jobs-N runs stay bit-identical (asserted by fleet_test).
  if (jobs == 0) jobs = ThreadPool::default_threads();
  const std::size_t workers = std::min<std::size_t>(jobs, shards);
  if (workers <= 1) {
    RunArena arena;
    for (std::size_t s = 0; s < shards; ++s) run_shard(s, arena);
  } else {
    ThreadPool pool(static_cast<unsigned>(workers));
    std::vector<RunArena> arenas(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pending.push_back(pool.submit([&run_shard, &arenas, w, workers, shards] {
        for (std::size_t s = w; s < shards; s += workers)
          run_shard(s, arenas[w]);
      }));
    }
    for (std::future<void>& f : pending) f.get();  // rethrows task failures
  }

  FleetResult out;
  out.shard_results = std::move(shard_results);
  // Guards below keep the merge total for degenerate fleets — zero-request
  // runs, shards that served nothing (down the whole stream, or an empty
  // partition slice) — instead of dividing by zero or indexing into an
  // empty result set.
  out.min_shard_requests = out.shard_results.empty() ? 0 : ~0ull;
  for (std::size_t s = 0; s < out.shard_results.size(); ++s) {
    RunResult& r = out.shard_results[s];
    r.down_requests += down_measured[s];
    out.requests += r.requests;
    out.measured_reads += r.measured_reads;
    out.bytes_requested += r.bytes_requested;
    out.traffic_bytes += r.traffic_bytes;
    out.events_executed += r.events_executed;
    out.retries += r.retries;
    out.failed_reads += r.failed_reads;
    out.degraded_reads += r.degraded_reads;
    out.down_requests += r.down_requests;
    out.makespan = std::max(out.makespan, r.elapsed);
    out.latency.merge(r.read_latency);
    out.metrics.merge_add(r.metrics);
    merge_stage_latency(out.stage_latency, r.stage_latency);
    if (r.requests > out.max_shard_requests) {
      out.max_shard_requests = r.requests;
      out.hottest_shard = s;
    }
    out.min_shard_requests = std::min(out.min_shard_requests, r.requests);
  }
  if (out.latency.count() > 0) {
    out.mean_latency_us = out.latency.mean_ns() / 1e3;
    out.p50_latency_us = to_us(out.latency.percentile(50));
    out.p99_latency_us = to_us(out.latency.percentile(99));
  }
  out.mean_shard_requests =
      shards == 0 ? 0.0
                  : static_cast<double>(out.requests) /
                        static_cast<double>(shards);
  out.load_imbalance =
      out.mean_shard_requests == 0.0
          ? 0.0
          : static_cast<double>(out.max_shard_requests) /
                out.mean_shard_requests;
  if (!out.shard_results.empty()) {
    out.hottest_shard_fgrc_hit_ratio =
        out.shard_results[out.hottest_shard].fgrc_hit_ratio;
  }
  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

}  // namespace pipette
