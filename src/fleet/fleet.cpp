#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fleet/shard_workload.h"

namespace pipette {

const char* to_string(SubstreamMode mode) {
  switch (mode) {
    case SubstreamMode::kPartitioned:
      return "partitioned";
    case SubstreamMode::kIndependent:
      return "independent";
  }
  return "?";
}

bool deterministic_equal(const FleetResult& a, const FleetResult& b) {
  if (a.Deterministic() != b.Deterministic()) return false;
  if (a.shard_results.size() != b.shard_results.size()) return false;
  for (std::size_t s = 0; s < a.shard_results.size(); ++s) {
    if (a.shard_results[s].Deterministic() !=
        b.shard_results[s].Deterministic())
      return false;
  }
  return true;
}

Shard::Shard(std::size_t index, const MachineConfig& config,
             std::span<const FileSpec> files)
    : index_(index), machine_(config, files) {}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan) {
  return run_experiment_on(machine_, sub_stream, plan);
}

FleetRunner::FleetRunner(FleetConfig config,
                         SeededWorkloadFactory make_workload,
                         std::uint64_t workload_seed)
    : config_(std::move(config)),
      make_workload_(std::move(make_workload)),
      seed_(workload_seed) {
  PIPETTE_ASSERT(config_.shards > 0);
  PIPETTE_ASSERT_MSG(config_.shard_machines.empty() ||
                         config_.shard_machines.size() == config_.shards,
                     "shard_machines must be empty or one per shard");
  PIPETTE_ASSERT(make_workload_ != nullptr);
}

MachineConfig FleetRunner::shard_machine(std::size_t shard) const {
  return config_.shard_machines.empty() ? config_.machine
                                        : config_.shard_machines[shard];
}

FleetResult FleetRunner::run(const RunConfig& run, unsigned jobs) const {
  const auto host_t0 = std::chrono::steady_clock::now();
  const std::size_t shards = config_.shards;
  const bool partitioned = config_.substream == SubstreamMode::kPartitioned;

  // Per-shard phase sizes. Partitioned mode takes them from a counting
  // pre-pass over the master stream — pure RNG work, no simulation — so
  // every shard's warmup/measured boundary lands exactly on the fleet-wide
  // one. Independent mode gives every replica the full counts.
  std::vector<RunConfig> plans(shards, partitioned ? RunConfig{0, 0} : run);
  if (partitioned) {
    std::unique_ptr<Workload> master = make_workload_(seed_);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    const Partitioner part(config_.partition, shards, master->files());
    for (std::uint64_t i = 0; i < run.warmup; ++i)
      ++plans[part.shard_of(master->next())].warmup;
    for (std::uint64_t i = 0; i < run.requests; ++i)
      ++plans[part.shard_of(master->next())].requests;
  }

  std::vector<RunResult> shard_results(shards);
  auto run_shard = [&](std::size_t s) {
    const std::uint64_t shard_seed =
        partitioned ? seed_ : Rng::split_seed(seed_, s);
    std::unique_ptr<Workload> master = make_workload_(shard_seed);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    if (partitioned) {
      const Partitioner part(config_.partition, shards, master->files());
      ShardWorkload sub(std::move(master), part, s);
      Shard shard(s, shard_machine(s), sub.files());
      shard_results[s] = shard.run(sub, plans[s]);
    } else {
      Shard shard(s, shard_machine(s), master->files());
      shard_results[s] = shard.run(*master, plans[s]);
    }
  };

  if (jobs == 0) jobs = ThreadPool::default_threads();
  if (jobs == 1 || shards <= 1) {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  } else {
    ThreadPool pool(
        static_cast<unsigned>(std::min<std::size_t>(jobs, shards)));
    std::vector<std::future<void>> pending;
    pending.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      pending.push_back(pool.submit([&run_shard, s] { run_shard(s); }));
    for (std::future<void>& f : pending) f.get();  // rethrows task failures
  }

  FleetResult out;
  out.shard_results = std::move(shard_results);
  out.min_shard_requests = ~0ull;
  for (std::size_t s = 0; s < shards; ++s) {
    const RunResult& r = out.shard_results[s];
    out.requests += r.requests;
    out.measured_reads += r.measured_reads;
    out.bytes_requested += r.bytes_requested;
    out.traffic_bytes += r.traffic_bytes;
    out.events_executed += r.events_executed;
    out.makespan = std::max(out.makespan, r.elapsed);
    out.latency.merge(r.read_latency);
    if (r.requests > out.max_shard_requests) {
      out.max_shard_requests = r.requests;
      out.hottest_shard = s;
    }
    out.min_shard_requests = std::min(out.min_shard_requests, r.requests);
  }
  if (out.latency.count() > 0) {
    out.mean_latency_us = out.latency.mean_ns() / 1e3;
    out.p50_latency_us = to_us(out.latency.percentile(50));
    out.p99_latency_us = to_us(out.latency.percentile(99));
  }
  out.mean_shard_requests =
      static_cast<double>(out.requests) / static_cast<double>(shards);
  out.load_imbalance =
      out.mean_shard_requests == 0.0
          ? 0.0
          : static_cast<double>(out.max_shard_requests) /
                out.mean_shard_requests;
  out.hottest_shard_fgrc_hit_ratio =
      out.shard_results[out.hottest_shard].fgrc_hit_ratio;
  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

}  // namespace pipette
