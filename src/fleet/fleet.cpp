#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fleet/shard_workload.h"

namespace pipette {

const char* to_string(SubstreamMode mode) {
  switch (mode) {
    case SubstreamMode::kPartitioned:
      return "partitioned";
    case SubstreamMode::kIndependent:
      return "independent";
  }
  PIPETTE_ASSERT_MSG(false, "unknown SubstreamMode");
  return "?";  // unreachable: the assert above aborts
}

bool deterministic_equal(const FleetResult& a, const FleetResult& b) {
  if (a.Deterministic() != b.Deterministic()) return false;
  if (a.shard_results.size() != b.shard_results.size()) return false;
  for (std::size_t s = 0; s < a.shard_results.size(); ++s) {
    if (a.shard_results[s].Deterministic() !=
        b.shard_results[s].Deterministic())
      return false;
  }
  return true;
}

Shard::Shard(std::size_t index, const MachineConfig& config,
             std::span<const FileSpec> files)
    : index_(index), machine_(config, files) {}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan) {
  return run_experiment_on(machine_, sub_stream, plan);
}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan,
                     const RunHooks& hooks) {
  return run_experiment_on(machine_, sub_stream, plan, hooks);
}

RunResult Shard::run(Workload& sub_stream, const RunConfig& plan,
                     const RunHooks& hooks, RunArena* arena) {
  return run_experiment_on(machine_, sub_stream, plan, hooks, arena);
}

FleetRunner::FleetRunner(FleetConfig config,
                         SeededWorkloadFactory make_workload,
                         std::uint64_t workload_seed)
    : config_(std::move(config)),
      make_workload_(std::move(make_workload)),
      seed_(workload_seed) {
  PIPETTE_ASSERT(config_.shards > 0);
  PIPETTE_ASSERT_MSG(config_.shard_machines.empty() ||
                         config_.shard_machines.size() == config_.shards,
                     "shard_machines must be empty or one per shard");
  PIPETTE_ASSERT(make_workload_ != nullptr);
  PIPETTE_ASSERT_MSG(!config_.faults.any() ||
                         config_.substream == SubstreamMode::kPartitioned,
                     "outage schedules are keyed on master-stream indices, "
                     "which only exist in partitioned mode");
  const ReplicationConfig& repl = config_.replication;
  PIPETTE_ASSERT_MSG(repl.replicas >= 1, "a group needs at least one copy");
  PIPETTE_ASSERT_MSG(!repl.any() ||
                         config_.substream == SubstreamMode::kPartitioned,
                     "replica groups are keyed on the master-stream clock, "
                     "which only exists in partitioned mode");
  PIPETTE_ASSERT_MSG(repl.shadow_read_fraction >= 0.0 &&
                         repl.shadow_read_fraction <= 1.0,
                     "shadow_read_fraction is a probability");
  if (repl.read_policy == ReadPolicy::kQuorum) {
    PIPETTE_ASSERT_MSG(repl.quorum_k >= 1 && repl.quorum_k <= repl.replicas,
                       "quorum_k must be in [1, replicas]");
  }
  if (repl.migration.active()) {
    PIPETTE_ASSERT_MSG(repl.migration.target < config_.shards,
                       "migration target is not a group");
  }
  for (const ShardOutage& o : config_.faults.outages) {
    PIPETTE_ASSERT_MSG(o.shard < config_.shards, "outage for unknown shard");
    PIPETTE_ASSERT_MSG(o.recover_at >= o.fail_at, "outage recovers in the past");
    PIPETTE_ASSERT_MSG(o.replica < repl.replicas,
                       "outage for a replica the fleet does not have");
  }
}

MachineConfig FleetRunner::shard_machine(std::size_t shard) const {
  MachineConfig machine = config_.shard_machines.empty()
                              ? config_.machine
                              : config_.shard_machines[shard];
  // Every shard's device draws from a private fault sub-stream; without the
  // split each device would replay the identical error trace. A zero-rate
  // plan never draws, so reseeding keeps fault-free runs bit-identical.
  machine.ssd.faults.seed = Rng::split_seed(machine.ssd.faults.seed, shard);
  return machine;
}

FleetResult FleetRunner::run(const RunConfig& run, unsigned jobs) const {
  if (config_.replication.any()) return run_replicated(run, jobs);
  const auto host_t0 = std::chrono::steady_clock::now();
  const std::size_t shards = config_.shards;
  const bool partitioned = config_.substream == SubstreamMode::kPartitioned;
  const FleetFaultPlan& faults = config_.faults;

  // Per-shard phase sizes. Partitioned mode takes them from a counting
  // pre-pass over the master stream — pure RNG work, no simulation — so
  // every shard's warmup/measured boundary lands exactly on the fleet-wide
  // one. Independent mode gives every replica the full counts. Under a
  // fault plan the pre-pass routes by effective_shard(), so kReroute
  // traffic is counted against the failover target, and it tallies the
  // measured requests whose owner was down.
  // Pre-pass plans start from `run` with zeroed phase counts (not a braced
  // zero) so run-level options like the timeline config carry into every
  // shard's plan.
  RunConfig zero_plan = run;
  zero_plan.warmup = 0;
  zero_plan.requests = 0;
  std::vector<RunConfig> plans(shards, partitioned ? zero_plan : run);
  std::vector<std::uint64_t> down_measured(shards, 0);
  if (partitioned) {
    std::unique_ptr<Workload> master = make_workload_(seed_);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    const Partitioner part(config_.partition, shards, master->files());
    for (std::uint64_t i = 0; i < run.warmup; ++i) {
      const std::size_t owner = part.shard_of(master->next());
      ++plans[effective_shard(faults, shards, owner, i)].warmup;
    }
    for (std::uint64_t i = 0; i < run.requests; ++i) {
      const std::uint64_t index = run.warmup + i;
      const std::size_t owner = part.shard_of(master->next());
      if (faults.shard_down_at(owner, index)) ++down_measured[owner];
      ++plans[effective_shard(faults, shards, owner, index)].requests;
    }
  }

  std::vector<RunResult> shard_results(shards);
  auto run_shard = [&](std::size_t s, RunArena& arena) {
    const std::uint64_t shard_seed =
        partitioned ? seed_ : Rng::split_seed(seed_, s);
    std::unique_ptr<Workload> master = make_workload_(shard_seed);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    if (!partitioned) {
      Shard shard(s, shard_machine(s), master->files());
      shard_results[s] = shard.run(*master, plans[s], RunHooks{}, &arena);
      return;
    }
    const Partitioner part(config_.partition, shards, master->files());
    ShardWorkload sub(std::move(master), part, s,
                      faults.any() ? &faults : nullptr);
    Shard shard(s, shard_machine(s), sub.files());

    const ShardOutage* outage = faults.outage_for(s);
    if (outage == nullptr || !outage->active()) {
      shard_results[s] = shard.run(sub, plans[s], RunHooks{}, &arena);
      return;
    }

    if (faults.policy == DownShardPolicy::kReroute) {
      // Normally a rerouted shard serves nothing during its own window (the
      // filter sends its traffic to the failover target), so this hook never
      // fires. The exception is a window where *every* shard is down:
      // effective_shard() has nowhere to send the request and returns the
      // owner, and without this guard the down shard would silently serve
      // it. Reject it fail-fast instead — the window must show up as failed
      // reads, not vanish into a healthy-looking histogram. No cold restart
      // at recovery: reroute models a routing drain, the machine never
      // stopped running (pinned by the golden fleet fixture).
      RunHooks hooks;
      hooks.on_request = [&](const Request& req, const RunHooks::IssueFn&) {
        if (!outage->down_at(sub.last_master_index())) return false;
        shard.machine().path().reject_request(req.is_write,
                                              faults.fail_fast_latency);
        return true;
      };
      shard_results[s] = shard.run(sub, plans[s], hooks, &arena);
      return;
    }

    // Outage interceptor (fail-fast / retry-backoff): a request landing in
    // the outage window is rejected or deferred instead of issued; the
    // first request at or after recovery cold-restarts the machine (host
    // caches come back empty) and replays the deferrals, each charged its
    // client's full backoff ladder.
    struct Deferred {
      Request req;
      bool measured;
    };
    std::vector<Deferred> deferred;
    std::uint64_t client_retries = 0;
    bool recovered = false;
    RunHooks hooks;
    hooks.on_request = [&](const Request& req,
                           const RunHooks::IssueFn& issue) {
      const std::uint64_t index = sub.last_master_index();
      if (!recovered && index >= outage->recover_at) {
        recovered = true;
        shard.machine().cold_restart();
        for (const Deferred& d : deferred) {
          shard.machine().sim().advance(faults.total_retry_backoff());
          if (d.measured) client_retries += faults.retry_attempts;
          issue(d.req);
        }
        deferred.clear();
      }
      if (!outage->down_at(index)) return false;
      if (faults.policy == DownShardPolicy::kFailFast) {
        shard.machine().path().reject_request(req.is_write,
                                              faults.fail_fast_latency);
        return true;
      }
      deferred.push_back({req, index >= run.warmup});
      return true;
    };
    RunResult result = shard.run(sub, plans[s], hooks, &arena);
    // Deferrals still parked when the stream ends (recovery lies beyond the
    // run) exhausted their backoff ladder without an answer: failures.
    for (const Deferred& d : deferred) {
      if (!d.measured) continue;
      client_retries += faults.retry_attempts;
      if (!d.req.is_write) ++result.failed_reads;
    }
    result.retries += client_retries;
    shard_results[s] = result;
  };

  // Cache-local execution: shard s is pinned to worker s % workers, and
  // each worker runs its shards in ascending order against one RunArena, so
  // scratch pools stay warm in that worker's cache across shards. The
  // assignment is a pure function of (shards, workers) — never of timing —
  // so jobs-1 and jobs-N runs stay bit-identical (asserted by fleet_test).
  if (jobs == 0) jobs = ThreadPool::default_threads();
  const std::size_t workers = std::min<std::size_t>(jobs, shards);
  if (workers <= 1) {
    RunArena arena;
    for (std::size_t s = 0; s < shards; ++s) run_shard(s, arena);
  } else {
    ThreadPool pool(static_cast<unsigned>(workers));
    std::vector<RunArena> arenas(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pending.push_back(pool.submit([&run_shard, &arenas, w, workers, shards] {
        for (std::size_t s = w; s < shards; s += workers)
          run_shard(s, arenas[w]);
      }));
    }
    for (std::future<void>& f : pending) f.get();  // rethrows task failures
  }

  FleetResult out;
  out.shard_results = std::move(shard_results);
  // Guards below keep the merge total for degenerate fleets — zero-request
  // runs, shards that served nothing (down the whole stream, or an empty
  // partition slice) — instead of dividing by zero or indexing into an
  // empty result set.
  out.min_shard_requests = out.shard_results.empty() ? 0 : ~0ull;
  for (std::size_t s = 0; s < out.shard_results.size(); ++s) {
    RunResult& r = out.shard_results[s];
    r.down_requests += down_measured[s];
    out.requests += r.requests;
    out.measured_reads += r.measured_reads;
    out.bytes_requested += r.bytes_requested;
    out.traffic_bytes += r.traffic_bytes;
    out.events_executed += r.events_executed;
    out.retries += r.retries;
    out.failed_reads += r.failed_reads;
    out.degraded_reads += r.degraded_reads;
    out.down_requests += r.down_requests;
    out.makespan = std::max(out.makespan, r.elapsed);
    out.latency.merge(r.read_latency);
    out.metrics.merge_add(r.metrics);
    merge_stage_latency(out.stage_latency, r.stage_latency);
    if (r.requests > out.max_shard_requests) {
      out.max_shard_requests = r.requests;
      out.hottest_shard = s;
    }
    out.min_shard_requests = std::min(out.min_shard_requests, r.requests);
  }
  // Percentile readouts only when the merged histogram has samples — a
  // window (or whole run) where every shard was down merges an empty
  // histogram, and the readouts must stay 0 rather than divide by zero.
  if (out.latency.count() > 0) {
    out.mean_latency_us = out.latency.mean_ns() / 1e3;
    out.p50_latency_us = to_us(out.latency.percentile(50));
    out.p99_latency_us = to_us(out.latency.percentile(99));
    out.p999_latency_us = to_us(out.latency.percentile(99.9));
  }
  out.mean_shard_requests =
      shards == 0 ? 0.0
                  : static_cast<double>(out.requests) /
                        static_cast<double>(shards);
  out.load_imbalance =
      out.mean_shard_requests == 0.0
          ? 0.0
          : static_cast<double>(out.max_shard_requests) /
                out.mean_shard_requests;
  if (!out.shard_results.empty()) {
    out.hottest_shard_fgrc_hit_ratio =
        out.shard_results[out.hottest_shard].fgrc_hit_ratio;
  }
  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

MachineConfig FleetRunner::replica_machine(std::size_t group,
                                           std::size_t machine_id) const {
  MachineConfig machine = config_.shard_machines.empty()
                              ? config_.machine
                              : config_.shard_machines[group];
  // Same per-device fault-seed split as shard_machine(), keyed by the
  // global machine id so every copy draws a private error trace. With R=1
  // machine_id == group, so a one-copy fleet splits identically to the
  // legacy path.
  machine.ssd.faults.seed =
      Rng::split_seed(machine.ssd.faults.seed, machine_id);
  return machine;
}

FleetResult FleetRunner::run_replicated(const RunConfig& run,
                                        unsigned jobs) const {
  const auto host_t0 = std::chrono::steady_clock::now();
  const ReplicationConfig& repl = config_.replication;
  const FleetFaultPlan& faults = config_.faults;
  const std::size_t groups = config_.shards;
  const std::size_t replicas = repl.replicas;
  const std::size_t machines = groups * replicas;

  // Counting pre-pass: replay the master stream through a private router to
  // size every machine's warmup/measured phases. The same router instance
  // also yields the client-side tallies (attempted reads, failovers, quorum
  // legs, migration progress) — pure RNG/arithmetic work, no simulation.
  RunConfig zero_plan = run;
  zero_plan.warmup = 0;
  zero_plan.requests = 0;
  std::vector<RunConfig> plans(machines, zero_plan);
  ReplicaCounters counters;
  std::uint64_t lost_writes = 0;
  {
    std::unique_ptr<Workload> master = make_workload_(seed_);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    const Partitioner part(config_.partition, groups, master->files());
    ReplicaRouter router(repl, faults, part, seed_, run.warmup);
    std::vector<ReplicaAssignment> scratch;
    for (std::uint64_t i = 0; i < run.warmup + run.requests; ++i) {
      scratch.clear();
      router.route(i, master->next(), scratch);
      for (const ReplicaAssignment& a : scratch) {
        if (a.index < run.warmup) {
          ++plans[a.machine].warmup;
        } else {
          ++plans[a.machine].requests;
        }
      }
    }
    counters = router.counters();
    lost_writes = router.pending_catchup_writes();
  }

  // Per-machine capture of client-relevant read latencies. A successful
  // read's path-recorded latency equals the sim-time delta across the
  // closed-loop issue, so composing from hook-captured deltas reproduces
  // path-recorded values bit-for-bit. A device-failed read records nothing
  // (detected via the failed_reads counter) and is charged to the client as
  // a failure by the composition below.
  struct ReadRecord {
    std::uint64_t index;
    SimDuration latency;
    ReplicaRole role;
  };
  std::vector<std::vector<ReadRecord>> records(machines);
  std::vector<RunResult> machine_results(machines);

  auto run_machine = [&](std::size_t m, RunArena& arena) {
    std::unique_ptr<Workload> master = make_workload_(seed_);
    PIPETTE_ASSERT_MSG(master != nullptr, "fleet workload factory failed");
    const Partitioner part(config_.partition, groups, master->files());
    ReplicaWorkload sub(std::move(master), repl, faults, part,
                        static_cast<std::uint32_t>(m), seed_, run.warmup);
    const std::size_t group = m / replicas;
    Shard shard(m, replica_machine(group, m), sub.files());
    const ShardOutage* outage = faults.outage_for(group, m % replicas);
    const bool has_outage = outage != nullptr && outage->active();
    bool restarted = false;
    std::vector<ReadRecord>& recs = records[m];
    RunHooks hooks;
    hooks.on_request = [&](const Request& req,
                           const RunHooks::IssueFn& issue) {
      const ReplicaAssignment& a = sub.last();
      if (has_outage && !restarted && a.index >= outage->recover_at) {
        // First assignment at or past recovery: the copy comes back with
        // cold host caches; its catch-up writes are the next assignments.
        restarted = true;
        shard.machine().cold_restart();
      }
      const bool client_read =
          !req.is_write && (a.role == ReplicaRole::kServe ||
                            a.role == ReplicaRole::kFailoverServe ||
                            a.role == ReplicaRole::kQuorumServe);
      if (!client_read) {
        issue(req);
        return true;
      }
      const SimTime t0 = shard.machine().sim().now();
      const std::uint64_t failed0 =
          shard.machine().path().stats().failed_reads;
      issue(req);
      if (shard.machine().path().stats().failed_reads == failed0) {
        recs.push_back({a.index, shard.machine().sim().now() - t0, a.role});
      }
      return true;
    };
    machine_results[m] = shard.run(sub, plans[m], hooks, &arena);
  };

  // Same pure pinning scheme as the legacy path — machine m runs on worker
  // m % workers, each worker ascending over its machines with one arena —
  // so jobs-1 and jobs-N replica runs stay bit-identical.
  if (jobs == 0) jobs = ThreadPool::default_threads();
  const std::size_t workers = std::min<std::size_t>(jobs, machines);
  if (workers <= 1) {
    RunArena arena;
    for (std::size_t m = 0; m < machines; ++m) run_machine(m, arena);
  } else {
    ThreadPool pool(static_cast<unsigned>(workers));
    std::vector<RunArena> arenas(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pending.push_back(
          pool.submit([&run_machine, &arenas, w, workers, machines] {
            for (std::size_t m = w; m < machines; m += workers)
              run_machine(m, arenas[w]);
          }));
    }
    for (std::future<void>& f : pending) f.get();  // rethrows task failures
  }

  // Client-side composition: serial, pure arithmetic over the captured
  // records. Singleton serves (kServe / kFailoverServe) record directly —
  // a failover serve additionally charges the fail-fast detection latency
  // the client burned before re-issuing. Quorum legs are pooled, grouped by
  // master index, and the client completes on the k'-th fastest where
  // k' = min(quorum_k, legs that answered).
  LatencyHistogram client;
  std::uint64_t served = 0;
  std::uint64_t failover_penalty_ns = 0;
  std::vector<std::pair<std::uint64_t, SimDuration>> quorum_legs;
  for (std::size_t m = 0; m < machines; ++m) {
    for (const ReadRecord& r : records[m]) {
      if (r.index < run.warmup) continue;
      if (r.role == ReplicaRole::kQuorumServe) {
        quorum_legs.push_back({r.index, r.latency});
        continue;
      }
      SimDuration latency = r.latency;
      if (r.role == ReplicaRole::kFailoverServe) {
        latency += faults.fail_fast_latency;
        failover_penalty_ns +=
            static_cast<std::uint64_t>(faults.fail_fast_latency);
      }
      client.record(latency);
      ++served;
    }
  }
  if (!quorum_legs.empty()) {
    std::sort(quorum_legs.begin(), quorum_legs.end());
    for (std::size_t i = 0; i < quorum_legs.size();) {
      std::size_t j = i;
      while (j < quorum_legs.size() &&
             quorum_legs[j].first == quorum_legs[i].first)
        ++j;
      const std::size_t kth =
          std::min<std::size_t>(repl.quorum_k, j - i);
      client.record(quorum_legs[i + kth - 1].second);
      ++served;
      i = j;
    }
  }

  FleetResult out;
  out.shard_results = std::move(machine_results);
  out.requests = run.requests;  // the client's measured request count
  out.measured_reads = served;
  out.bytes_requested = counters.client_read_bytes;
  out.failed_reads = counters.client_reads - served;
  out.down_requests = counters.down_requests;
  out.retries = counters.client_retries;
  // Normalize extremes to representative bucket values (diff against an
  // empty snapshot recomputes them from the buckets), matching the legacy
  // path whose measured histograms all pass through diff(). Without this
  // the R=1 parity would hold for every bucket yet fail on exact-vs-
  // representative min/max.
  out.latency = client.diff(LatencyHistogram{});

  // Device-level sums over every machine: replication fan-out, shadow and
  // warm reads all count here, which is exactly the point — availability
  // costs device work, and these fields price it.
  std::uint64_t device_requests = 0;
  out.min_shard_requests = out.shard_results.empty() ? 0 : ~0ull;
  for (std::size_t m = 0; m < out.shard_results.size(); ++m) {
    const RunResult& r = out.shard_results[m];
    device_requests += r.requests;
    out.traffic_bytes += r.traffic_bytes;
    out.events_executed += r.events_executed;
    out.retries += r.retries;
    out.degraded_reads += r.degraded_reads;
    out.makespan = std::max(out.makespan, r.elapsed);
    out.metrics.merge_add(r.metrics);
    merge_stage_latency(out.stage_latency, r.stage_latency);
    if (r.requests > out.max_shard_requests) {
      out.max_shard_requests = r.requests;
      out.hottest_shard = m;
    }
    out.min_shard_requests = std::min(out.min_shard_requests, r.requests);
  }
  if (out.latency.count() > 0) {
    out.mean_latency_us = out.latency.mean_ns() / 1e3;
    out.p50_latency_us = to_us(out.latency.percentile(50));
    out.p99_latency_us = to_us(out.latency.percentile(99));
    out.p999_latency_us = to_us(out.latency.percentile(99.9));
  }
  out.mean_shard_requests =
      machines == 0 ? 0.0
                    : static_cast<double>(device_requests) /
                          static_cast<double>(machines);
  out.load_imbalance =
      out.mean_shard_requests == 0.0
          ? 0.0
          : static_cast<double>(out.max_shard_requests) /
                out.mean_shard_requests;
  if (!out.shard_results.empty()) {
    out.hottest_shard_fgrc_hit_ratio =
        out.shard_results[out.hottest_shard].fgrc_hit_ratio;
  }

  // Router-level counters join the merged machine registries under fleet.*
  // so one MetricsRegistry tells the whole availability story.
  out.metrics.set("fleet.machines", machines);
  out.metrics.set("fleet.replica_groups", groups);
  out.metrics.set("fleet.replicas_per_group", replicas);
  out.metrics.set("fleet.replica_client_reads", counters.client_reads);
  out.metrics.set("fleet.replica_served_reads", served);
  out.metrics.set("fleet.replica_unserved_reads", counters.unserved_reads);
  out.metrics.set("fleet.replica_failover_reads", counters.failover_reads);
  out.metrics.set("fleet.replica_failover_penalty_ns", failover_penalty_ns);
  out.metrics.set("fleet.replica_shadow_reads", counters.shadow_reads);
  out.metrics.set("fleet.replica_stale_reads", counters.stale_reads);
  out.metrics.set("fleet.replica_catchup_writes", counters.catchup_writes);
  out.metrics.set("fleet.replica_lost_writes", lost_writes);
  if (repl.read_policy == ReadPolicy::kQuorum) {
    out.metrics.set("fleet.replica_quorum_reads", counters.quorum_reads);
    out.metrics.set("fleet.replica_quorum_fanout", counters.quorum_fanout);
    out.metrics.set("fleet.replica_quorum_shortfall",
                    counters.quorum_shortfall);
  }
  if (repl.migration.active()) {
    out.metrics.set("fleet.migration_dual_reads", counters.dual_reads);
    out.metrics.set("fleet.migration_warm_reads", counters.warm_reads_done);
    out.metrics.set("fleet.migration_dual_writes", counters.dual_writes);
    out.metrics.set("fleet.migration_cut_over", counters.cut_over ? 1 : 0);
    out.metrics.set("fleet.migration_cutover_index", counters.cutover_index);
    out.metrics.set("fleet.migration_migrated_reads",
                    counters.migrated_reads);
  }

  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

}  // namespace pipette
