#include "fleet/shard_workload.h"

#include <utility>

#include "common/assert.h"

namespace pipette {

ShardWorkload::ShardWorkload(std::unique_ptr<Workload> master,
                             Partitioner partitioner, std::size_t shard)
    : master_(std::move(master)),
      partitioner_(std::move(partitioner)),
      shard_(shard) {
  PIPETTE_ASSERT(master_ != nullptr);
  PIPETTE_ASSERT(shard_ < partitioner_.shards());
}

Request ShardWorkload::next() {
  for (;;) {
    Request req = master_->next();
    ++master_consumed_;
    if (partitioner_.shard_of(req) == shard_) return req;
  }
}

std::string ShardWorkload::name() const {
  return master_->name() + "/shard" + std::to_string(shard_) + "of" +
         std::to_string(partitioner_.shards());
}

}  // namespace pipette
