#include "fleet/shard_workload.h"

#include <utility>

#include "common/assert.h"

namespace pipette {

ShardWorkload::ShardWorkload(std::unique_ptr<Workload> master,
                             Partitioner partitioner, std::size_t shard,
                             const FleetFaultPlan* faults)
    : master_(std::move(master)),
      partitioner_(std::move(partitioner)),
      shard_(shard),
      faults_(faults) {
  PIPETTE_ASSERT(master_ != nullptr);
  PIPETTE_ASSERT(shard_ < partitioner_.shards());
}

Request ShardWorkload::next() {
  for (;;) {
    Request req = master_->next();
    const std::uint64_t index = master_consumed_++;
    const std::size_t owner = partitioner_.shard_of(req);
    const std::size_t serving =
        faults_ == nullptr
            ? owner
            : effective_shard(*faults_, partitioner_.shards(), owner, index);
    if (serving == shard_) return req;
  }
}

std::string ShardWorkload::name() const {
  return master_->name() + "/shard" + std::to_string(shard_) + "of" +
         std::to_string(partitioner_.shards());
}

}  // namespace pipette
