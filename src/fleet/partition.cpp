#include "fleet/partition.h"

#include "common/assert.h"
#include "common/rng.h"

namespace pipette {

const char* to_string(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRange:
      return "range";
  }
  PIPETTE_ASSERT_MSG(false, "unknown PartitionScheme");
  return "?";  // unreachable: the assert above aborts
}

Partitioner::Partitioner(PartitionScheme scheme, std::size_t shards,
                         std::span<const FileSpec> files)
    : scheme_(scheme), shards_(shards) {
  PIPETTE_ASSERT(shards_ > 0);
  PIPETTE_ASSERT(!files.empty());
  file_base_.reserve(files.size());
  std::uint64_t base = 0;
  for (const FileSpec& f : files) {
    file_base_.push_back(base);
    base += f.size;
  }
  keyspace_ = base;
  PIPETTE_ASSERT(keyspace_ > 0);
}

std::uint64_t Partitioner::key_of(const Request& req) const {
  PIPETTE_ASSERT(req.file_index < file_base_.size());
  return file_base_[req.file_index] + req.offset;
}

std::size_t Partitioner::shard_of_key(std::uint64_t key) const {
  PIPETTE_ASSERT(key < keyspace_);
  if (shards_ == 1) return 0;
  switch (scheme_) {
    case PartitionScheme::kHash:
      return static_cast<std::size_t>(mix64(key) % shards_);
    case PartitionScheme::kRange:
      // 128-bit intermediate: key * shards overflows 64 bits for large
      // keyspaces.
      return static_cast<std::size_t>(
          static_cast<__uint128_t>(key) * shards_ / keyspace_);
  }
  return 0;
}

}  // namespace pipette
