// ShardWorkload: the sub-stream of a master workload that belongs to one
// shard.
//
// Every shard replays the *same* master stream (the master workload is a
// pure function of its seed) and yields only the requests whose key the
// partitioner maps to this shard. Because all shards filter one identical
// stream, a k-shard fleet serves exactly the per-key request sequence of the
// 1-shard run — partitioning changes who serves a request, never which
// requests exist or their per-key order. This is the property every fleet
// determinism test leans on.
#pragma once

#include <memory>
#include <string>

#include "faults/faults.h"
#include "fleet/partition.h"
#include "workload/workload.h"

namespace pipette {

class ShardWorkload : public Workload {
 public:
  /// Takes its own master instance (each shard constructs one from the
  /// shared seed) and a copy of the fleet's partitioner. `faults` (optional,
  /// unowned, must outlive the workload) makes the filter route by
  /// effective_shard() instead of raw ownership, so under kReroute a shard
  /// also yields the requests it absorbs for down peers.
  ShardWorkload(std::unique_ptr<Workload> master, Partitioner partitioner,
                std::size_t shard, const FleetFaultPlan* faults = nullptr);

  const std::vector<FileSpec>& files() const override {
    return master_->files();
  }

  /// Draws from the master stream until a request for this shard appears.
  /// The caller must not draw more requests than the master stream contains
  /// for this shard (the fleet runner sizes each shard's RunConfig from a
  /// counting pre-pass, so this holds by construction).
  Request next() override;

  std::string name() const override;

  std::size_t shard() const { return shard_; }
  /// Master draws consumed so far (foreign-shard requests included).
  std::uint64_t master_consumed() const { return master_consumed_; }
  /// Master-stream index of the request the last next() returned — the
  /// fleet's deterministic clock, which outage schedules are keyed on.
  std::uint64_t last_master_index() const { return master_consumed_ - 1; }

 private:
  std::unique_ptr<Workload> master_;
  Partitioner partitioner_;
  std::size_t shard_;
  const FleetFaultPlan* faults_;
  std::uint64_t master_consumed_ = 0;
};

}  // namespace pipette
