// Replica groups, quorum reads, warm standbys, and live resharding for the
// fleet layer.
//
// A replicated fleet keeps R copies of every shard: group g's machines are
// ids [g*R, (g+1)*R), replica 0 is the primary. Every copy holds the full
// file set (replication here is a traffic/availability model layered on the
// partitioned master stream, not a data-placement simulator), so what
// distinguishes the copies is the history each one serves — which is exactly
// what the ReplicaRouter decides.
//
// The router is the replica-world analogue of effective_shard(): a pure
// deterministic state machine over the master stream. The counting pre-pass
// and every machine's stream filter (ReplicaWorkload) instantiate their own
// router from the same (config, faults, seed) and feed it the same master
// requests in the same order, so they agree on every assignment without
// sharing any state — that is what keeps jobs-1 == jobs-N bit-identical
// under failover, quorum fan-out, shadow reads, and mid-run migration.
//
// Read policies:
//  * kPrimaryOnly — the primary serves or nobody does; standbys only absorb
//    shadow reads and replicated writes. Primary loss is the availability
//    cliff the fleet_failover bench plots.
//  * kFailover   — primary serves; if it is down the first up standby does,
//    charged the fail-fast detection latency plus one client retry.
//  * kQuorum     — every up replica serves and the client completes on the
//    k-th fastest response (first-k-of-R), so a replica loss costs no
//    detection stall at all.
//
// Staleness: a down replica misses the writes replicated to its group. The
// router buffers them and replays each one as a catch-up write at the
// replica's first post-recovery master index (right after its cold restart),
// and never routes client reads to a replica holding unapplied writes — so
// the stale-read count is structurally zero, and the router *checks* it by
// tracking per-machine dirty key ranges (fleet.replica_stale_reads == 0 is
// the pinned invariant, not an assumption).
//
// Live resharding: MigrationPlan moves the keys in [key_lo, key_hi) from
// their partitioner owner to group `target` during the run. From start_at
// the old owner keeps serving in-range reads while every up target replica
// re-reads them (dual reads warming the target's caches, visible in the
// timeline sampler) and in-range writes land on both groups; after
// warm_reads dual reads the range cuts over and the target group owns it
// under the normal read policy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/faults.h"
#include "fleet/partition.h"
#include "workload/workload.h"

namespace pipette {

enum class ReadPolicy {
  kPrimaryOnly,  // primary serves or the read is unserved
  kFailover,     // first up standby takes over a down primary
  kQuorum,       // fan out to all up replicas, complete on the k-th fastest
};

const char* to_string(ReadPolicy policy);

/// Key-range migration schedule (one per run; inactive when key_hi ==
/// key_lo). Keys are global byte positions (Partitioner::key_of).
struct MigrationPlan {
  std::size_t target = 0;       // destination group
  std::uint64_t key_lo = 0;     // [key_lo, key_hi) moves
  std::uint64_t key_hi = 0;
  std::uint64_t start_at = 0;   // master index the dual window opens at
  std::uint64_t warm_reads = 0; // dual reads before the range cuts over

  bool active() const { return key_hi > key_lo; }
};

struct ReplicationConfig {
  /// Copies per group. 1 with kPrimaryOnly and no shadow/migration is the
  /// degenerate config: FleetRunner takes the legacy replica-free path,
  /// bit-identical to the pre-replica fleet (golden-pinned).
  std::size_t replicas = 1;
  ReadPolicy read_policy = ReadPolicy::kPrimaryOnly;
  /// kQuorum completion threshold (clamped to the up-replica count when the
  /// group is degraded; the clamp is counted as a quorum shortfall).
  std::uint32_t quorum_k = 2;
  /// Probability that a standby shadows any given client read of its group
  /// (a deterministic per-(machine, index) draw). Keeps standby FGRC/page
  /// caches warm so failover lands on a warm machine instead of a cold one.
  double shadow_read_fraction = 0.0;
  MigrationPlan migration;

  /// True iff any replica machinery is needed; false routes FleetRunner to
  /// the legacy single-copy path.
  bool any() const {
    return replicas > 1 || read_policy != ReadPolicy::kPrimaryOnly ||
           shadow_read_fraction > 0.0 || migration.active();
  }
};

/// Why a machine sees a request. Client-visible latency comes only from the
/// three serve roles; shadow/warm/catch-up work is device load, not client
/// traffic.
enum class ReplicaRole : std::uint8_t {
  kServe,          // authoritative read: its latency is the client's
  kFailoverServe,  // standby (or reroute target) serving for a down copy
  kQuorumServe,    // one leg of a quorum fan-out
  kShadowRead,     // standby cache-warming read (invisible to the client)
  kWarmRead,       // migration-target warming read during the dual window
  kWrite,          // replicated write
  kCatchupWrite,   // write missed during an outage, replayed at rejoin
};

const char* to_string(ReplicaRole role);

/// One unit of work the router hands a machine: master request `req` lands
/// on `machine` at master index `index` playing `role`.
struct ReplicaAssignment {
  std::uint32_t machine = 0;  // group * R + replica
  ReplicaRole role = ReplicaRole::kServe;
  std::uint64_t index = 0;    // master-stream index (the fleet clock)
  Request req;
};

/// Router counters, measured phase only unless noted. Migration progress
/// counters cover the whole run: the cutover watermark is part of the
/// routing state machine, not a phase metric, and must not depend on where
/// the warmup boundary falls.
struct ReplicaCounters {
  std::uint64_t client_reads = 0;     // measured client reads (attempted)
  std::uint64_t unserved_reads = 0;   // no up copy anywhere to serve them
  std::uint64_t client_retries = 0;   // failover re-issues + backoff ladders
  std::uint64_t down_requests = 0;    // reads whose preferred copy was down
  std::uint64_t failover_reads = 0;   // served by a standby/reroute target
  std::uint64_t shadow_reads = 0;
  std::uint64_t quorum_reads = 0;
  std::uint64_t quorum_fanout = 0;    // serve legs across all quorum reads
  std::uint64_t quorum_shortfall = 0; // quorum reads with fewer than k legs
  std::uint64_t stale_reads = 0;      // reads routed to a dirty replica (== 0)
  std::uint64_t catchup_writes = 0;   // whole run
  std::uint64_t client_write_bytes = 0;
  std::uint64_t client_read_bytes = 0;  // bytes of measured served reads
  // Migration progress (whole run).
  std::uint64_t dual_reads = 0;
  std::uint64_t warm_reads_done = 0;  // warm legs issued to target replicas
  std::uint64_t dual_writes = 0;
  std::uint64_t migrated_reads = 0;   // in-range reads served post-cutover
  bool cut_over = false;
  std::uint64_t cutover_index = 0;    // master index that passed the watermark
};

/// Pure deterministic assignment machine: see the file comment. Every
/// instance constructed from the same (repl, faults, partitioner, seed,
/// warmup) and fed the same master stream emits the same assignments.
class ReplicaRouter {
 public:
  ReplicaRouter(const ReplicationConfig& repl, const FleetFaultPlan& faults,
                Partitioner partitioner, std::uint64_t seed,
                std::uint64_t warmup);

  /// Route master request `req` at master index `index`, appending every
  /// resulting assignment (possibly none) to `out` in issue order. Must be
  /// called with strictly increasing indices starting at 0.
  void route(std::uint64_t index, const Request& req,
             std::vector<ReplicaAssignment>& out);

  const ReplicaCounters& counters() const { return counters_; }
  std::size_t groups() const { return partitioner_.shards(); }
  std::size_t replicas() const { return repl_.replicas; }
  std::size_t machines() const { return groups() * replicas(); }
  std::uint32_t machine_id(std::size_t group, std::size_t replica) const {
    return static_cast<std::uint32_t>(group * repl_.replicas + replica);
  }
  /// Writes still parked for replicas whose recovery never arrived (call
  /// after the full stream has been routed): lost writes.
  std::uint64_t pending_catchup_writes() const;

 private:
  struct MachineState {
    const ShardOutage* outage = nullptr;  // null or inactive: never down
    bool rejoined = false;
    std::vector<Request> missed_writes;   // buffered while down
    // Dirty key ranges (global byte key, len): written while this copy was
    // down and not yet caught up. Routing a read here would be stale.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> dirty;
  };

  bool down(std::uint32_t machine, std::uint64_t index) const;
  bool dirty_overlaps(const MachineState& ms, std::uint64_t key,
                      std::uint32_t len) const;
  /// Up replicas of `group` at `index`, in replica order, into scratch.
  void up_replicas(std::size_t group, std::uint64_t index);
  void emit_read(std::uint32_t machine, ReplicaRole role, std::uint64_t index,
                 const Request& req, std::vector<ReplicaAssignment>& out);
  void emit_group_write(std::size_t group, std::uint64_t index,
                        const Request& req,
                        std::vector<ReplicaAssignment>& out);
  void serve_read(std::size_t group, std::uint64_t index, const Request& req,
                  bool measured, std::vector<ReplicaAssignment>& out);
  void process_rejoins(std::uint64_t index,
                       std::vector<ReplicaAssignment>& out);
  bool shadow_draw(std::uint32_t machine, std::uint64_t index) const;

  ReplicationConfig repl_;
  FleetFaultPlan faults_;
  Partitioner partitioner_;
  std::uint64_t warmup_;
  std::uint64_t shadow_seed_;
  std::vector<MachineState> state_;       // one per machine
  std::vector<std::uint32_t> up_scratch_; // up_replicas() result
  ReplicaCounters counters_;
};

/// The sub-stream of the master workload that lands on one machine of a
/// replicated fleet: replays the master stream through a private
/// ReplicaRouter and yields this machine's assignments in order. The
/// replica-world ShardWorkload.
class ReplicaWorkload : public Workload {
 public:
  ReplicaWorkload(std::unique_ptr<Workload> master,
                  const ReplicationConfig& repl, const FleetFaultPlan& faults,
                  Partitioner partitioner, std::uint32_t machine,
                  std::uint64_t seed, std::uint64_t warmup);

  const std::vector<FileSpec>& files() const override {
    return master_->files();
  }

  /// Replays the master stream until an assignment for this machine appears.
  /// The caller must not draw more than the counting pre-pass counted for
  /// this machine (holds by construction in FleetRunner).
  Request next() override;

  std::string name() const override;

  /// The assignment behind the request the last next() returned: the fleet
  /// clock (index) plus why this machine saw it (role).
  const ReplicaAssignment& last() const { return last_; }

 private:
  std::unique_ptr<Workload> master_;
  ReplicaRouter router_;
  std::uint32_t machine_;
  std::uint64_t master_consumed_ = 0;
  std::vector<ReplicaAssignment> scratch_;  // route() output per master draw
  std::vector<ReplicaAssignment> queue_;    // this machine's pending slice
  std::size_t queue_head_ = 0;
  ReplicaAssignment last_;
};

}  // namespace pipette
