// Key -> shard partitioning for the fleet layer.
//
// A request's key is its global byte position: the byte offset within its
// file plus the cumulative size of every file before it, so one flat
// keyspace covers multi-file workloads. Two schemes mirror the standard
// deployment choices:
//
//  * kHash  — shard = mix64(key) mod shards. Spreads any access pattern
//    (including a zipfian head clustered at the start of the keyspace)
//    near-uniformly; destroys range locality.
//  * kRange — shard = key * shards / keyspace. Contiguous key ranges stay
//    together (each shard owns one slice of the address space), which
//    preserves spatial locality per shard but concentrates skewed traffic
//    on whichever shard owns the hot range.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/workload.h"

namespace pipette {

enum class PartitionScheme { kHash, kRange };

const char* to_string(PartitionScheme scheme);

class Partitioner {
 public:
  /// `files` fixes the keyspace layout; it must match the workload the
  /// partitioner will route (every shard holds the same file set).
  Partitioner(PartitionScheme scheme, std::size_t shards,
              std::span<const FileSpec> files);

  PartitionScheme scheme() const { return scheme_; }
  std::size_t shards() const { return shards_; }
  /// Total bytes across all files — the exclusive upper bound on keys.
  std::uint64_t keyspace() const { return keyspace_; }

  /// The request's global byte key (file base + offset).
  std::uint64_t key_of(const Request& req) const;

  std::size_t shard_of_key(std::uint64_t key) const;
  std::size_t shard_of(const Request& req) const {
    return shard_of_key(key_of(req));
  }

 private:
  PartitionScheme scheme_;
  std::size_t shards_;
  std::vector<std::uint64_t> file_base_;  // cumulative start of each file
  std::uint64_t keyspace_;
};

}  // namespace pipette
