#include "fleet/replica.h"

#include <utility>

#include "common/assert.h"
#include "common/rng.h"

namespace pipette {

const char* to_string(ReadPolicy policy) {
  switch (policy) {
    case ReadPolicy::kPrimaryOnly:
      return "primary-only";
    case ReadPolicy::kFailover:
      return "failover";
    case ReadPolicy::kQuorum:
      return "quorum";
  }
  PIPETTE_ASSERT_MSG(false, "unknown ReadPolicy");
  return "?";  // unreachable: the assert above aborts
}

const char* to_string(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kServe:
      return "serve";
    case ReplicaRole::kFailoverServe:
      return "failover-serve";
    case ReplicaRole::kQuorumServe:
      return "quorum-serve";
    case ReplicaRole::kShadowRead:
      return "shadow-read";
    case ReplicaRole::kWarmRead:
      return "warm-read";
    case ReplicaRole::kWrite:
      return "write";
    case ReplicaRole::kCatchupWrite:
      return "catchup-write";
  }
  PIPETTE_ASSERT_MSG(false, "unknown ReplicaRole");
  return "?";  // unreachable: the assert above aborts
}

ReplicaRouter::ReplicaRouter(const ReplicationConfig& repl,
                             const FleetFaultPlan& faults,
                             Partitioner partitioner, std::uint64_t seed,
                             std::uint64_t warmup)
    : repl_(repl),
      faults_(faults),
      partitioner_(std::move(partitioner)),
      warmup_(warmup),
      shadow_seed_(mix64(seed ^ 0x5ead0'5ead0ULL)) {
  PIPETTE_ASSERT(repl_.replicas >= 1);
  state_.resize(machines());
  for (std::size_t g = 0; g < groups(); ++g) {
    for (std::size_t r = 0; r < repl_.replicas; ++r) {
      const ShardOutage* o = faults_.outage_for(g, r);
      if (o != nullptr && o->active()) state_[machine_id(g, r)].outage = o;
    }
  }
  up_scratch_.reserve(repl_.replicas);
}

bool ReplicaRouter::down(std::uint32_t machine, std::uint64_t index) const {
  const ShardOutage* o = state_[machine].outage;
  return o != nullptr && o->down_at(index);
}

bool ReplicaRouter::dirty_overlaps(const MachineState& ms, std::uint64_t key,
                                   std::uint32_t len) const {
  for (const auto& [dkey, dlen] : ms.dirty) {
    if (key < dkey + dlen && dkey < key + len) return true;
  }
  return false;
}

void ReplicaRouter::up_replicas(std::size_t group, std::uint64_t index) {
  up_scratch_.clear();
  for (std::size_t r = 0; r < repl_.replicas; ++r) {
    const std::uint32_t m = machine_id(group, r);
    if (!down(m, index)) up_scratch_.push_back(m);
  }
}

bool ReplicaRouter::shadow_draw(std::uint32_t machine,
                                std::uint64_t index) const {
  if (repl_.shadow_read_fraction <= 0.0) return false;
  // Pure function of (seed, machine, index): pre-pass and filters replay
  // the same draw without sharing RNG state.
  const std::uint64_t u =
      mix64(Rng::split_seed(shadow_seed_, machine) ^ mix64(index + 1));
  const double p = static_cast<double>(u >> 11) * 0x1.0p-53;
  return p < repl_.shadow_read_fraction;
}

void ReplicaRouter::emit_read(std::uint32_t machine, ReplicaRole role,
                              std::uint64_t index, const Request& req,
                              std::vector<ReplicaAssignment>& out) {
  // Stale-read tripwire: the routing invariants (down replicas never serve,
  // rejoin replays missed writes before any new assignment) make this
  // impossible; count rather than assume.
  const MachineState& ms = state_[machine];
  if (!ms.dirty.empty() &&
      dirty_overlaps(ms, partitioner_.key_of(req), req.len)) {
    ++counters_.stale_reads;
  }
  out.push_back({machine, role, index, req});
}

void ReplicaRouter::emit_group_write(std::size_t group, std::uint64_t index,
                                     const Request& req,
                                     std::vector<ReplicaAssignment>& out) {
  for (std::size_t r = 0; r < repl_.replicas; ++r) {
    const std::uint32_t m = machine_id(group, r);
    if (down(m, index)) {
      // Missed while down: buffered for catch-up at rejoin, and the key
      // range is dirty on this copy until then.
      state_[m].missed_writes.push_back(req);
      state_[m].dirty.push_back({partitioner_.key_of(req), req.len});
    } else {
      out.push_back({m, ReplicaRole::kWrite, index, req});
    }
  }
}

void ReplicaRouter::process_rejoins(std::uint64_t index,
                                    std::vector<ReplicaAssignment>& out) {
  for (std::uint32_t m = 0; m < state_.size(); ++m) {
    MachineState& ms = state_[m];
    if (ms.outage == nullptr || ms.rejoined || index < ms.outage->recover_at)
      continue;
    ms.rejoined = true;
    // The recovered copy replays every write it missed (right after its
    // cold restart, before any client read can land on it), which is what
    // keeps the stale-read count structurally zero.
    for (const Request& w : ms.missed_writes) {
      ++counters_.catchup_writes;
      out.push_back({m, ReplicaRole::kCatchupWrite, index, w});
    }
    ms.missed_writes.clear();
    ms.dirty.clear();
  }
}

void ReplicaRouter::serve_read(std::size_t group, std::uint64_t index,
                               const Request& req, bool measured,
                               std::vector<ReplicaAssignment>& out) {
  const std::uint32_t primary = machine_id(group, 0);
  const bool primary_down = down(primary, index);
  if (measured && primary_down) ++counters_.down_requests;

  // Fallback when the policy finds no server in the owning group: the
  // fleet's DownShardPolicy decides, mirroring the replica-free semantics —
  // kReroute serves on the next group with an up copy (charged like a
  // failover), the other policies leave the read unserved (kRetryBackoff
  // additionally burning its client backoff ladder).
  auto fallback = [&] {
    if (faults_.policy == DownShardPolicy::kReroute) {
      for (std::size_t d = 1; d < groups(); ++d) {
        const std::size_t g2 = (group + d) % groups();
        up_replicas(g2, index);
        if (up_scratch_.empty()) continue;
        emit_read(up_scratch_.front(), ReplicaRole::kFailoverServe, index, req,
                  out);
        if (measured) {
          ++counters_.failover_reads;
          ++counters_.client_retries;
          counters_.client_read_bytes += req.len;
        }
        return;
      }
    }
    if (measured) {
      ++counters_.unserved_reads;
      if (faults_.policy == DownShardPolicy::kRetryBackoff)
        counters_.client_retries += faults_.retry_attempts;
    }
  };

  // Standby shadow reads: each up standby that is not serving this read
  // draws its private Bernoulli and, on success, re-reads the key to keep
  // its caches failover-warm. Quorum already reads on every up replica.
  auto shadow_standbys = [&](std::uint32_t serving) {
    for (std::size_t r = 1; r < repl_.replicas; ++r) {
      const std::uint32_t m = machine_id(group, r);
      if (m == serving || down(m, index) || !shadow_draw(m, index)) continue;
      emit_read(m, ReplicaRole::kShadowRead, index, req, out);
      if (measured) ++counters_.shadow_reads;
    }
  };

  switch (repl_.read_policy) {
    case ReadPolicy::kPrimaryOnly: {
      if (!primary_down) {
        emit_read(primary, ReplicaRole::kServe, index, req, out);
        if (measured) counters_.client_read_bytes += req.len;
      } else {
        fallback();  // standbys may be up, but primary-only never asks them
      }
      shadow_standbys(/*serving=*/primary);
      return;
    }
    case ReadPolicy::kFailover: {
      if (!primary_down) {
        emit_read(primary, ReplicaRole::kServe, index, req, out);
        if (measured) counters_.client_read_bytes += req.len;
        shadow_standbys(/*serving=*/primary);
        return;
      }
      up_replicas(group, index);
      if (up_scratch_.empty()) {
        fallback();
        return;
      }
      const std::uint32_t standby = up_scratch_.front();
      emit_read(standby, ReplicaRole::kFailoverServe, index, req, out);
      if (measured) {
        ++counters_.failover_reads;
        ++counters_.client_retries;  // the client re-issued after the error
        counters_.client_read_bytes += req.len;
      }
      shadow_standbys(/*serving=*/standby);
      return;
    }
    case ReadPolicy::kQuorum: {
      up_replicas(group, index);
      if (up_scratch_.empty()) {
        fallback();
        return;
      }
      for (const std::uint32_t m : up_scratch_)
        emit_read(m, ReplicaRole::kQuorumServe, index, req, out);
      if (measured) {
        ++counters_.quorum_reads;
        counters_.quorum_fanout += up_scratch_.size();
        if (up_scratch_.size() < repl_.quorum_k) ++counters_.quorum_shortfall;
        counters_.client_read_bytes += req.len;
      }
      return;
    }
  }
  PIPETTE_ASSERT_MSG(false, "unknown ReadPolicy");
}

void ReplicaRouter::route(std::uint64_t index, const Request& req,
                          std::vector<ReplicaAssignment>& out) {
  process_rejoins(index, out);
  const bool measured = index >= warmup_;
  const std::uint64_t key = partitioner_.key_of(req);
  const std::size_t base = partitioner_.shard_of_key(key);
  const MigrationPlan& mig = repl_.migration;
  const bool in_range =
      mig.active() && key >= mig.key_lo && key < mig.key_hi;
  const bool dual = in_range && !counters_.cut_over && index >= mig.start_at;
  const std::size_t owner =
      in_range && counters_.cut_over ? mig.target : base;

  if (req.is_write) {
    if (measured) counters_.client_write_bytes += req.len;
    emit_group_write(owner, index, req, out);
    if (dual && mig.target != base) {
      // Dual window: in-range writes land on both groups so the target is
      // already consistent at cutover.
      emit_group_write(mig.target, index, req, out);
      ++counters_.dual_writes;
    }
    return;
  }

  if (measured) ++counters_.client_reads;
  if (in_range && counters_.cut_over) ++counters_.migrated_reads;
  serve_read(owner, index, req, measured, out);
  if (dual) {
    ++counters_.dual_reads;
    if (mig.target != base) {
      // Every up target replica re-reads the key: the migration's bulk
      // warmup, visible as a read-rate ramp in the target's timeline.
      up_replicas(mig.target, index);
      for (const std::uint32_t m : up_scratch_) {
        emit_read(m, ReplicaRole::kWarmRead, index, req, out);
        ++counters_.warm_reads_done;
      }
    }
    if (counters_.dual_reads >= mig.warm_reads) {
      counters_.cut_over = true;
      counters_.cutover_index = index;
    }
  }
}

std::uint64_t ReplicaRouter::pending_catchup_writes() const {
  std::uint64_t pending = 0;
  for (const MachineState& ms : state_) pending += ms.missed_writes.size();
  return pending;
}

ReplicaWorkload::ReplicaWorkload(std::unique_ptr<Workload> master,
                                 const ReplicationConfig& repl,
                                 const FleetFaultPlan& faults,
                                 Partitioner partitioner, std::uint32_t machine,
                                 std::uint64_t seed, std::uint64_t warmup)
    : master_(std::move(master)),
      router_(repl, faults, std::move(partitioner), seed, warmup),
      machine_(machine) {
  PIPETTE_ASSERT(master_ != nullptr);
  PIPETTE_ASSERT(machine_ < router_.machines());
}

Request ReplicaWorkload::next() {
  while (queue_head_ == queue_.size()) {
    queue_.clear();
    queue_head_ = 0;
    scratch_.clear();
    const Request req = master_->next();
    router_.route(master_consumed_++, req, scratch_);
    for (const ReplicaAssignment& a : scratch_) {
      if (a.machine == machine_) queue_.push_back(a);
    }
  }
  last_ = queue_[queue_head_++];
  return last_.req;
}

std::string ReplicaWorkload::name() const {
  return master_->name() + "/machine-" + std::to_string(machine_);
}

}  // namespace pipette
