// NAND flash array model.
//
// Mirrors the paper's YS9203 prototype (Fig. 5): 8 channels x 8 ways, 2-core
// controller, SLC/MLC/TLC media. A page read occupies its die for the array
// read time (tR), then occupies its channel for the page transfer to the
// controller (ONFI bus). Dies on different channels proceed fully in
// parallel; dies sharing a channel serialise only on the bus — this is the
// "hardware limitation that cannot synchronously read data from parallel
// channels" the paper cites for block I/O's long multi-page latencies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "des/simulator.h"
#include "faults/faults.h"
#include "obs/util.h"

namespace pipette {

/// Who an array operation is working for. Host-attributed ops and GC
/// relocations share the same dies and channels, but the bottleneck report
/// accounts them as separate resources — a GC-bound cell is one where the
/// *gc* resource's busy time tops the ranking, which would be invisible if
/// its ops were folded into the die pool's account.
enum class NandOpClass : std::uint8_t { kHost, kGc };

enum class CellType { kSlc, kMlc, kTlc };

const char* to_string(CellType t);

struct NandGeometry {
  std::uint32_t channels = 8;
  std::uint32_t ways_per_channel = 8;  // dies per channel
  std::uint32_t planes_per_die = 2;
  std::uint32_t blocks_per_plane = 256;
  std::uint32_t pages_per_block = 256;
  std::uint32_t page_size = 4096;  // data bytes per NAND page

  std::uint32_t dies() const { return channels * ways_per_channel; }
  std::uint64_t pages_per_die() const {
    return static_cast<std::uint64_t>(planes_per_die) * blocks_per_plane *
           pages_per_block;
  }
  std::uint64_t total_pages() const { return pages_per_die() * dies(); }
  std::uint64_t capacity_bytes() const { return total_pages() * page_size; }
};

struct NandTiming {
  CellType cell = CellType::kTlc;
  // Array read time (tR). Typical datasheet values: SLC ~25us, MLC ~50us,
  // TLC ~70us (we default slightly lower to reflect the YS9203's read path).
  SimDuration t_read_slc = 25 * kUs;
  SimDuration t_read_mlc = 50 * kUs;
  SimDuration t_read_tlc = 65 * kUs;
  // Page program time (tPROG).
  SimDuration t_prog_slc = 200 * kUs;
  SimDuration t_prog_mlc = 600 * kUs;
  SimDuration t_prog_tlc = 900 * kUs;
  // ONFI channel bus: ~800 MB/s per channel => 1.25 ns/byte; a 4 KiB page
  // transfer is ~5.1us. Plus a fixed per-command channel overhead.
  double channel_ns_per_byte = 1.25;
  SimDuration command_overhead = 1 * kUs;

  SimDuration t_read() const;
  SimDuration t_prog() const;
};

/// Physical page address within the array.
struct PhysPageAddr {
  std::uint32_t channel = 0;
  std::uint32_t way = 0;
  std::uint64_t page = 0;  // page index within the die (plane/block folded in)

  bool operator==(const PhysPageAddr&) const = default;
};

struct NandStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_programs = 0;
  std::uint64_t read_retries = 0;   // extra sensing passes beyond the first
  std::uint64_t read_failures = 0;  // terminal ECC failures (no transfer)
  std::uint64_t bytes_transferred = 0;
};

/// Synchronous verdict of a read_page() call. The timing (die busy for
/// every sensing pass + backoff, then the channel transfer on success) is
/// still charged through the event queue; the outcome itself is decided at
/// submission so callers can park it next to their completion.
struct NandReadOutcome {
  std::uint32_t attempts = 1;  // sensing passes performed
  bool failed = false;         // all attempts failed: no data transferred
};

class NandArray {
 public:
  // Completion callbacks ride the simulator's event queue directly, so they
  // share its small-buffer-optimized type: keep captures <= the SBO limit
  // (Simulator::Callback::kInlineBytes) and they never heap-allocate.
  using DoneCallback = Simulator::Callback;

  /// `faults` + `fault_seed` configure the injected read-error stream (the
  /// injector draws from the kNand sub-stream of `fault_seed`); a zero-rate
  /// plan consumes no randomness regardless of the seed.
  NandArray(Simulator& sim, NandGeometry geometry, NandTiming timing,
            NandFaultPlan faults = {}, std::uint64_t fault_seed = 0xfa17);

  /// Read one full page: die busy for tR (+ injected retry passes and their
  /// backoff), then the channel bus transfers `transfer_bytes` (defaults to
  /// the full page) to the controller. `on_done` fires when the data is in
  /// the controller buffer — or, on a terminal ECC failure, at sense end
  /// with no transfer; the returned outcome says which. `cls` attributes
  /// the die/channel time to the host or to GC in the utilization accounts
  /// (timing is identical either way).
  NandReadOutcome read_page(const PhysPageAddr& addr, DoneCallback on_done,
                            std::uint32_t transfer_bytes = 0,
                            NandOpClass cls = NandOpClass::kHost);

  /// Program one full page; `on_done` fires at program completion.
  void program_page(const PhysPageAddr& addr, DoneCallback on_done,
                    NandOpClass cls = NandOpClass::kHost);

  /// Record a completed block erase on `die` (the FTL forwards its GC
  /// erases here). Pure bookkeeping — no time passes and no events are
  /// scheduled — but it advances the die's wear counter and, when the
  /// plan's wear model is active, opens the bursty post-erase error window.
  void note_erase(std::size_t die);

  const NandGeometry& geometry() const { return geometry_; }
  const NandTiming& timing() const { return timing_; }
  const NandStats& stats() const { return stats_; }
  const FaultInjector& injector() const { return injector_; }

  /// Per-die wear/fault telemetry (the wear-correlation tests key off the
  /// spread between the most- and least-erased die).
  std::uint64_t erase_count(std::size_t die) const { return die_erases_[die]; }
  std::uint64_t reads_on_die(std::size_t die) const { return die_reads_[die]; }
  std::uint64_t retries_on_die(std::size_t die) const {
    return die_retries_[die];
  }

  /// Earliest time the given die could start a new array operation.
  SimTime die_free_at(const PhysPageAddr& addr) const;

  // Utilization accounts (passive; see obs/util.h). Host-attributed die and
  // channel time are pooled per resource kind; GC relocations accumulate
  // into their own account covering both their die and channel legs.
  ResourceUsage& die_usage() { return die_usage_; }
  ResourceUsage& channel_usage() { return channel_usage_; }
  ResourceUsage& gc_usage() { return gc_usage_; }
  /// Host op time spent queued behind a GC-set die horizon — the
  /// foreground-blocked cost of background collection.
  std::uint64_t gc_blocked_host_ns() const { return gc_blocked_host_ns_; }

 private:
  std::size_t die_index(const PhysPageAddr& addr) const;
  void check_addr(const PhysPageAddr& addr) const;
  /// Per-pass read error probability for a read on `die` right now: the
  /// flat plan rate plus the die's erase-proportional wear contribution
  /// (boosted inside the post-erase burst window, which this call ticks).
  double effective_read_error_rate(std::size_t die);

  Simulator& sim_;
  NandGeometry geometry_;
  NandTiming timing_;
  NandFaultPlan faults_;
  FaultInjector injector_;
  NandStats stats_;
  std::vector<SimTime> die_busy_until_;
  std::vector<SimTime> channel_busy_until_;
  std::vector<std::uint64_t> die_erases_;
  std::vector<std::uint64_t> die_reads_;
  std::vector<std::uint64_t> die_retries_;
  std::vector<std::uint32_t> die_burst_left_;  // post-erase window countdown

  // Utilization layer (reads already-computed horizon times; never affects
  // them). gc_die_until_ remembers the latest GC-set horizon per die so a
  // host op's wait can be split into "behind GC" vs "behind other hosts".
  ResourceUsage die_usage_;
  ResourceUsage channel_usage_;
  ResourceUsage gc_usage_;
  std::vector<SimTime> gc_die_until_;
  std::uint64_t gc_blocked_host_ns_ = 0;
};

}  // namespace pipette
