#include "nand/nand.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/trace.h"

namespace pipette {

const char* to_string(CellType t) {
  switch (t) {
    case CellType::kSlc:
      return "SLC";
    case CellType::kMlc:
      return "MLC";
    case CellType::kTlc:
      return "TLC";
  }
  return "?";
}

SimDuration NandTiming::t_read() const {
  switch (cell) {
    case CellType::kSlc:
      return t_read_slc;
    case CellType::kMlc:
      return t_read_mlc;
    case CellType::kTlc:
      return t_read_tlc;
  }
  return t_read_tlc;
}

SimDuration NandTiming::t_prog() const {
  switch (cell) {
    case CellType::kSlc:
      return t_prog_slc;
    case CellType::kMlc:
      return t_prog_mlc;
    case CellType::kTlc:
      return t_prog_tlc;
  }
  return t_prog_tlc;
}

NandArray::NandArray(Simulator& sim, NandGeometry geometry, NandTiming timing,
                     NandFaultPlan faults, std::uint64_t fault_seed)
    : sim_(sim),
      geometry_(geometry),
      timing_(timing),
      faults_(faults),
      injector_(fault_seed, FaultDomain::kNand),
      die_busy_until_(geometry.dies(), 0),
      channel_busy_until_(geometry.channels, 0),
      die_erases_(geometry.dies(), 0),
      die_reads_(geometry.dies(), 0),
      die_retries_(geometry.dies(), 0),
      die_burst_left_(geometry.dies(), 0),
      gc_die_until_(geometry.dies(), 0) {
  PIPETTE_ASSERT(geometry_.channels > 0 && geometry_.ways_per_channel > 0);
  PIPETTE_ASSERT(geometry_.page_size > 0);
  PIPETTE_ASSERT(faults_.max_attempts > 0);
}

std::size_t NandArray::die_index(const PhysPageAddr& addr) const {
  return static_cast<std::size_t>(addr.channel) * geometry_.ways_per_channel +
         addr.way;
}

void NandArray::check_addr(const PhysPageAddr& addr) const {
  PIPETTE_ASSERT(addr.channel < geometry_.channels);
  PIPETTE_ASSERT(addr.way < geometry_.ways_per_channel);
  PIPETTE_ASSERT(addr.page < geometry_.pages_per_die());
}

SimTime NandArray::die_free_at(const PhysPageAddr& addr) const {
  return die_busy_until_[die_index(addr)];
}

NandReadOutcome NandArray::read_page(const PhysPageAddr& addr,
                                     DoneCallback on_done,
                                     std::uint32_t transfer_bytes,
                                     NandOpClass cls) {
  check_addr(addr);
  if (transfer_bytes == 0) transfer_bytes = geometry_.page_size;
  PIPETTE_ASSERT(transfer_bytes <= geometry_.page_size);

  const std::size_t die = die_index(addr);
  ++die_reads_[die];
  NandReadOutcome outcome;
  SimDuration sense = timing_.t_read();
  const double error_rate = effective_read_error_rate(die);
  if (error_rate > 0.0) {
    // Each failed sensing pass triggers a read-retry after an exponential
    // backoff (the controller re-tunes read reference voltages between
    // passes). After max_attempts failed passes the read is a terminal ECC
    // failure: the die time is still spent, but nothing crosses the bus.
    while (injector_.fire(error_rate)) {
      if (outcome.attempts == faults_.max_attempts) {
        outcome.failed = true;
        break;
      }
      sense += (faults_.backoff_base << (outcome.attempts - 1)) +
               timing_.t_read();
      ++outcome.attempts;
    }
    stats_.read_retries += outcome.attempts - 1;
    die_retries_[die] += outcome.attempts - 1;
  }

  // Array sensing occupies the die.
  const SimTime arrival = sim_.now() + timing_.command_overhead;
  const SimTime sense_start = std::max(arrival, die_busy_until_[die]);
  const SimTime sense_end = sense_start + sense;
  die_busy_until_[die] = sense_end;
  if (cls == NandOpClass::kHost) {
    die_usage_.record(sim_.now(), arrival, sense_start, sense_end);
    if (gc_die_until_[die] > arrival)
      gc_blocked_host_ns_ +=
          std::min(sense_start, gc_die_until_[die]) - arrival;
  } else {
    gc_usage_.record(sim_.now(), arrival, sense_start, sense_end);
    gc_die_until_[die] = std::max(gc_die_until_[die], sense_end);
  }

  // First sensing pass vs. the retry passes (extra sensing + backoff): the
  // breakdown table separates steady-state media time from fault recovery.
  PIPETTE_TRACE_SPAN(sim_, Stage::kNandSense, sense_start,
                     sense_start + timing_.t_read());
  if (sense > timing_.t_read())
    PIPETTE_TRACE_SPAN(sim_, Stage::kNandRetry,
                       sense_start + timing_.t_read(), sense_end);

  ++stats_.page_reads;
  if (outcome.failed) {
    // No data to transfer: complete at sense end without touching the bus.
    ++stats_.read_failures;
    sim_.schedule_at(sense_end, std::move(on_done));
    return outcome;
  }

  // Bus transfer occupies the channel after sensing completes.
  const SimTime xfer_start =
      std::max(sense_end, channel_busy_until_[addr.channel]);
  const SimTime xfer_end =
      xfer_start + static_cast<SimDuration>(
                       timing_.channel_ns_per_byte * transfer_bytes);
  channel_busy_until_[addr.channel] = xfer_end;
  (cls == NandOpClass::kHost ? channel_usage_ : gc_usage_)
      .record(sim_.now(), sense_end, xfer_start, xfer_end);

  PIPETTE_TRACE_SPAN(sim_, Stage::kNandBus, xfer_start, xfer_end);

  stats_.bytes_transferred += transfer_bytes;
  sim_.schedule_at(xfer_end, std::move(on_done));
  return outcome;
}

double NandArray::effective_read_error_rate(std::size_t die) {
  double rate = faults_.read_error_rate;
  // Wear contribution: gated on the plan so an all-zero wear model draws
  // and branches exactly like the flat injector did.
  if (faults_.wear_error_per_erase > 0.0 && die_erases_[die] > 0) {
    double wear = faults_.wear_error_per_erase *
                  static_cast<double>(die_erases_[die]);
    if (die_burst_left_[die] > 0) {
      wear *= 1.0 + faults_.wear_burst_boost;
      --die_burst_left_[die];
    }
    rate = std::min(1.0, rate + wear);
  }
  return rate;
}

void NandArray::note_erase(std::size_t die) {
  PIPETTE_ASSERT(die < die_erases_.size());
  ++die_erases_[die];
  if (faults_.wear_error_per_erase > 0.0)
    die_burst_left_[die] = faults_.wear_burst_reads;
}

void NandArray::program_page(const PhysPageAddr& addr, DoneCallback on_done,
                             NandOpClass cls) {
  check_addr(addr);
  const std::size_t die = die_index(addr);

  // Data moves over the channel first, then the die programs.
  const SimTime arrival = sim_.now() + timing_.command_overhead;
  const SimTime xfer_start =
      std::max(arrival, channel_busy_until_[addr.channel]);
  const SimTime xfer_end =
      xfer_start + static_cast<SimDuration>(
                       timing_.channel_ns_per_byte * geometry_.page_size);
  channel_busy_until_[addr.channel] = xfer_end;

  const SimTime prog_start = std::max(xfer_end, die_busy_until_[die]);
  const SimTime prog_end = prog_start + timing_.t_prog();
  die_busy_until_[die] = prog_end;
  if (cls == NandOpClass::kHost) {
    channel_usage_.record(sim_.now(), arrival, xfer_start, xfer_end);
    die_usage_.record(sim_.now(), xfer_end, prog_start, prog_end);
    if (gc_die_until_[die] > xfer_end)
      gc_blocked_host_ns_ +=
          std::min(prog_start, gc_die_until_[die]) - xfer_end;
  } else {
    gc_usage_.record(sim_.now(), arrival, xfer_start, xfer_end);
    gc_usage_.record(sim_.now(), xfer_end, prog_start, prog_end);
    gc_die_until_[die] = std::max(gc_die_until_[die], prog_end);
  }

  ++stats_.page_programs;
  stats_.bytes_transferred += geometry_.page_size;
  sim_.schedule_at(prog_end, std::move(on_done));
}

}  // namespace pipette
