// Discrete-event simulation core.
//
// The whole storage stack is simulated against one Simulator instance. Host
// code runs "inline" at the current simulated time and advances the clock
// with advance(); asynchronous device work (NAND array operations, DMA
// completions, maintenance threads) is scheduled as events. Ties are broken
// by insertion order, making every run fully deterministic.
//
// Hot-path design (see DESIGN.md "DES internals"): callbacks are
// InlineFunction<void()> — move-only with a 48-byte small-buffer so typical
// captures never heap-allocate — and the timer queue is a pluggable backend
// (4-ary pooled heap or hierarchical timing wheel, see event_queue.h)
// drained one same-timestamp *run* at a time: each run is extracted into a
// reusable buffer with a single queue restructure, then executed without
// touching the queue until the buffer empties. Extraction order — and
// therefore every run — is identical whichever backend is selected.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"
#include "des/event_queue.h"

namespace pipette {

class Tracer;  // obs/trace.h — the DES core only carries the pointer

class Simulator {
 public:
  using Callback = EventQueueInterface::Callback;

  explicit Simulator(QueueKind queue = QueueKind::kHeap);

  QueueKind queue_kind() const { return queue_kind_; }

  /// Observability hook: an installed tracer receives per-stage span
  /// timestamps from instrumented components. The tracer is passive (it
  /// never schedules events or advances time), so installing one cannot
  /// change the simulation. Null when tracing is off.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Move the clock forward by `d` without running events scheduled inside
  /// the skipped interval (used for pure host CPU time, during which no
  /// device event can affect the host's sequential execution). Events that
  /// come due are NOT lost; they run at the next run_until()/run_all().
  void advance(SimDuration d) { now_ += d; }

  /// Schedule `cb` to run at now() + delay.
  void schedule(SimDuration delay, Callback cb);

  /// Schedule `cb` at an absolute time (>= now()).
  void schedule_at(SimTime when, Callback cb);

  /// Run events until the queue is empty or the next event is after `t`;
  /// the clock ends at max(now, min(t, time of last event run)).
  void run_until(SimTime t);

  /// Run every scheduled event.
  void run_all();

  /// Run events until `done` returns true (checked after each event).
  /// Returns false if the queue drained first. Templated so call sites pay
  /// neither a std::function construction nor an indirect predicate call.
  /// A run interrupted mid-buffer stays buffered; the next run_* call (or a
  /// nested one from inside a callback) resumes it, preserving exact
  /// (when, seq) execution order.
  template <typename Pred>
  bool run_until_condition(Pred&& done) {
    if (done()) return true;
    for (;;) {
      if (!buffer_active()) {
        if (queue_->empty()) return false;
        refill_run();
      }
      while (buffer_active()) {
        run_one();
        if (done()) return true;
      }
    }
  }

  /// Deadline-bounded variant of run_until_condition: only events due at or
  /// before `deadline` run. Returns false on timeout (condition still false
  /// with no runnable event left), leaving the clock at the last executed
  /// event and any later events queued. Purely passive — it schedules no
  /// timer event of its own, so arming a guard does not perturb the event
  /// sequence of runs that never time out.
  template <typename Pred>
  bool run_until_condition_before(Pred&& done, SimTime deadline) {
    if (done()) return true;
    for (;;) {
      if (!buffer_active()) {
        if (queue_->empty() || queue_->min_when() > deadline) return false;
        refill_run();
      }
      while (buffer_active() && run_when_ <= deadline) {
        run_one();
        if (done()) return true;
      }
      if (buffer_active()) return false;  // remainder is beyond the deadline
    }
  }

  std::size_t pending_events() const {
    return queue_->size() + buffered_remaining();
  }
  std::uint64_t events_executed() const { return executed_; }

  /// High-water mark of pending events (backend-invariant; exported as the
  /// `des.slab_peak` metric — the callback slabs grow exactly with it).
  std::size_t queue_peak_size() const { return queue_->peak_size(); }

  /// Wheel-backend spills to the overflow heap; 0 on the heap backend.
  std::uint64_t queue_overflow_pushes() const {
    return queue_->overflow_pushes();
  }

  /// Hand back slab capacity above current occupancy (between experiment
  /// cells); never touches pending events or drain order.
  void trim_queue() { queue_->trim(); }

 private:
  bool buffer_active() const { return run_next_ < run_buf_.size(); }
  std::size_t buffered_remaining() const {
    return run_buf_.size() - run_next_;
  }
  /// Extract the next same-timestamp run into the buffer and advance the
  /// clock to it. Requires an exhausted buffer and a non-empty queue.
  void refill_run();
  /// Execute the next buffered callback. The slot is released before the
  /// call, so the callback may schedule, drain, or even refill freely.
  void run_one() {
    Callback cb = std::move(run_buf_[run_next_]);
    ++run_next_;
    ++executed_;
    cb();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  QueueKind queue_kind_;
  std::unique_ptr<EventQueueInterface> queue_;
  Tracer* tracer_ = nullptr;

  // Current same-timestamp run, drained front to back. Capacity is reused
  // across runs, so steady-state batch drains allocate nothing.
  std::vector<Callback> run_buf_;
  std::size_t run_next_ = 0;
  SimTime run_when_ = 0;
};

}  // namespace pipette
