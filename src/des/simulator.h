// Discrete-event simulation core.
//
// The whole storage stack is simulated against one Simulator instance. Host
// code runs "inline" at the current simulated time and advances the clock
// with advance(); asynchronous device work (NAND array operations, DMA
// completions, maintenance threads) is scheduled as events. Ties are broken
// by insertion order, making every run fully deterministic.
//
// Hot-path design (see DESIGN.md "DES internals"): callbacks are
// InlineFunction<void()> — move-only with a 48-byte small-buffer so typical
// captures never heap-allocate — and the timer queue is a 4-ary heap over
// pooled event nodes whose pop moves the callback out instead of copying it.
#pragma once

#include <cstdint>

#include "common/inline_function.h"
#include "common/units.h"
#include "des/event_queue.h"

namespace pipette {

class Tracer;  // obs/trace.h — the DES core only carries the pointer

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Observability hook: an installed tracer receives per-stage span
  /// timestamps from instrumented components. The tracer is passive (it
  /// never schedules events or advances time), so installing one cannot
  /// change the simulation. Null when tracing is off.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Move the clock forward by `d` without running events scheduled inside
  /// the skipped interval (used for pure host CPU time, during which no
  /// device event can affect the host's sequential execution). Events that
  /// come due are NOT lost; they run at the next run_until()/run_all().
  void advance(SimDuration d) { now_ += d; }

  /// Schedule `cb` to run at now() + delay.
  void schedule(SimDuration delay, Callback cb);

  /// Schedule `cb` at an absolute time (>= now()).
  void schedule_at(SimTime when, Callback cb);

  /// Run events until the queue is empty or the next event is after `t`;
  /// the clock ends at max(now, min(t, time of last event run)).
  void run_until(SimTime t);

  /// Run every scheduled event.
  void run_all();

  /// Run events until `done` returns true (checked after each event).
  /// Returns false if the queue drained first. Templated so call sites pay
  /// neither a std::function construction nor an indirect predicate call.
  template <typename Pred>
  bool run_until_condition(Pred&& done) {
    if (done()) return true;
    while (!queue_.empty()) {
      pop_and_run();
      if (done()) return true;
    }
    return false;
  }

  /// Deadline-bounded variant of run_until_condition: only events due at or
  /// before `deadline` run. Returns false on timeout (condition still false
  /// with no runnable event left), leaving the clock at the last executed
  /// event and any later events queued. Purely passive — it schedules no
  /// timer event of its own, so arming a guard does not perturb the event
  /// sequence of runs that never time out.
  template <typename Pred>
  bool run_until_condition_before(Pred&& done, SimTime deadline) {
    if (done()) return true;
    while (!queue_.empty() && queue_.min_when() <= deadline) {
      pop_and_run();
      if (done()) return true;
    }
    return false;
  }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  void pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  EventQueue queue_;
  Tracer* tracer_ = nullptr;
};

}  // namespace pipette
