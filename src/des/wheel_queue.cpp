#include "des/wheel_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/assert.h"

namespace pipette {

WheelQueue::WheelQueue() {
  l0_heads_.fill(kNil);
  l1_heads_.fill(kNil);
}

std::uint32_t WheelQueue::alloc_node(SimTime when, std::uint64_t seq,
                                     Callback cb) {
  if (!free_.empty()) {
    const std::uint32_t handle = free_.back();
    free_.pop_back();
    Node& n = nodes_[handle];
    n.when = when;
    n.seq = seq;
    n.next = kNil;
    n.cb = std::move(cb);
    return handle;
  }
  const std::uint32_t handle = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{when, seq, kNil, std::move(cb)});
  return handle;
}

void WheelQueue::free_node(std::uint32_t handle) { free_.push_back(handle); }

void WheelQueue::place(std::uint32_t handle) {
  Node& n = nodes_[handle];
  const std::uint64_t b0 = block0_of(n.when);
  if (b0 == cur_block0_) {
    const std::size_t slot = static_cast<std::size_t>(n.when) & kSlotMask;
    n.next = l0_heads_[slot];
    l0_heads_[slot] = handle;
    l0_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    return;
  }
  PIPETTE_ASSERT_MSG(b0 > cur_block0_ && block1_of(n.when) == cur_block1_,
                     "event placed behind the wheel cursor");
  const std::size_t slot = static_cast<std::size_t>(b0) & kSlotMask;
  n.next = l1_heads_[slot];
  l1_heads_[slot] = handle;
  l1_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
}

void WheelQueue::push(SimTime when, std::uint64_t seq, Callback cb) {
  if (block1_of(when) > cur_block1_) {
    // Beyond the ~16.8 ms level-1 horizon: spill to the overflow heap. The
    // due prefix migrates back into the wheel when the clock reaches its
    // level-1 window (settle_to).
    ++overflow_pushes_;
    overflow_.push(when, seq, std::move(cb));
  } else {
    place(alloc_node(when, seq, std::move(cb)));
    ++size_;
  }
  if (min_valid_ && when < cached_min_) cached_min_ = when;
  const std::size_t total = size_ + overflow_.size();
  if (total > peak_size_) peak_size_ = total;
}

SimTime WheelQueue::scan_min() const {
  // Aligned windows make slot order equal time order, so the earliest event
  // is behind the first set bit — level 0 first, then level 1, then the
  // overflow heap (each level strictly precedes the next in time).
  for (std::size_t w = 0; w < kWords; ++w) {
    if (l0_bits_[w] != 0) {
      const std::size_t slot = w * 64 + static_cast<std::size_t>(
                                            std::countr_zero(l0_bits_[w]));
      return (cur_block0_ << kLevelBits) | static_cast<SimTime>(slot);
    }
  }
  for (std::size_t w = 0; w < kWords; ++w) {
    if (l1_bits_[w] != 0) {
      const std::size_t slot = w * 64 + static_cast<std::size_t>(
                                            std::countr_zero(l1_bits_[w]));
      // A level-1 bucket holds one 4096 ns block's worth of timestamps;
      // walk its list for the earliest.
      SimTime best = 0;
      bool have = false;
      for (std::uint32_t h = l1_heads_[slot]; h != kNil; h = nodes_[h].next) {
        if (!have || nodes_[h].when < best) {
          best = nodes_[h].when;
          have = true;
        }
      }
      PIPETTE_ASSERT_MSG(have, "level-1 bit set over an empty bucket");
      return best;
    }
  }
  return overflow_.min_when();
}

SimTime WheelQueue::min_when() const {
  if (!min_valid_) {
    cached_min_ = scan_min();
    min_valid_ = true;
  }
  return cached_min_;
}

void WheelQueue::settle_to(SimTime m) {
  const std::uint64_t b0 = block0_of(m);
  const std::uint64_t b1 = block1_of(m);
  if (b1 > cur_block1_) {
    // m is the global minimum, so every block between the cursors and m is
    // empty and the whole wheel is drained; jump straight to m's window and
    // pull the newly due prefix out of the overflow heap.
    cur_block1_ = b1;
    cur_block0_ = b0;
    while (!overflow_.empty() &&
           block1_of(overflow_.min_when()) == cur_block1_) {
      SimTime when;
      std::uint64_t seq;
      Callback cb;
      overflow_.pop_min(when, seq, cb);
      place(alloc_node(when, seq, std::move(cb)));
      ++size_;
    }
  } else if (b0 > cur_block0_) {
    // Dump m's level-1 bucket into level 0. Buckets for the skipped blocks
    // are empty (m is the minimum), so only this one needs the move.
    cur_block0_ = b0;
    const std::size_t slot = static_cast<std::size_t>(b0) & kSlotMask;
    std::uint32_t h = l1_heads_[slot];
    l1_heads_[slot] = kNil;
    l1_bits_[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
    while (h != kNil) {
      const std::uint32_t next = nodes_[h].next;
      const std::size_t s0 = static_cast<std::size_t>(nodes_[h].when) &
                             kSlotMask;
      nodes_[h].next = l0_heads_[s0];
      l0_heads_[s0] = h;
      l0_bits_[s0 / 64] |= std::uint64_t{1} << (s0 % 64);
      h = next;
    }
  }
}

std::size_t WheelQueue::pop_run(SimTime& when, std::vector<Callback>& out) {
  const SimTime m = min_when();
  settle_to(m);
  const std::size_t slot = static_cast<std::size_t>(m) & kSlotMask;

  // The slot's list is exactly the same-timestamp run (one timestamp per
  // level-0 slot), linked in reverse push order; sort handles by seq so the
  // run drains in submission order.
  run_scratch_.clear();
  for (std::uint32_t h = l0_heads_[slot]; h != kNil; h = nodes_[h].next)
    run_scratch_.emplace_back(nodes_[h].seq, h);
  PIPETTE_ASSERT_MSG(!run_scratch_.empty(), "pop_run on an empty wheel");
  std::sort(run_scratch_.begin(), run_scratch_.end());

  l0_heads_[slot] = kNil;
  l0_bits_[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  for (const auto& [seq, h] : run_scratch_) {
    out.push_back(std::move(nodes_[h].cb));
    free_node(h);
  }
  size_ -= run_scratch_.size();
  min_valid_ = false;
  when = m;
  return run_scratch_.size();
}

void WheelQueue::pop_min(SimTime& when, std::uint64_t& seq, Callback& cb) {
  const SimTime m = min_when();
  settle_to(m);
  const std::size_t slot = static_cast<std::size_t>(m) & kSlotMask;

  // Unlink the minimum-seq node from the slot's (unsorted) list.
  std::uint32_t best = kNil, best_prev = kNil;
  std::uint32_t prev = kNil;
  for (std::uint32_t h = l0_heads_[slot]; h != kNil; h = nodes_[h].next) {
    if (best == kNil || nodes_[h].seq < nodes_[best].seq) {
      best = h;
      best_prev = prev;
    }
    prev = h;
  }
  PIPETTE_ASSERT_MSG(best != kNil, "pop_min on an empty wheel");
  if (best_prev == kNil) {
    l0_heads_[slot] = nodes_[best].next;
  } else {
    nodes_[best_prev].next = nodes_[best].next;
  }
  when = m;
  seq = nodes_[best].seq;
  cb = std::move(nodes_[best].cb);
  free_node(best);
  --size_;
  if (l0_heads_[slot] == kNil) {
    l0_bits_[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
    min_valid_ = false;
  } else {
    // Same-timestamp siblings remain: the minimum is unchanged.
    cached_min_ = m;
    min_valid_ = true;
  }
}

void WheelQueue::trim() {
  if (empty()) {
    nodes_.clear();
    nodes_.shrink_to_fit();
    free_.clear();
    free_.shrink_to_fit();
  } else {
    std::sort(free_.begin(), free_.end());
    while (!free_.empty() &&
           free_.back() == static_cast<std::uint32_t>(nodes_.size()) - 1) {
      free_.pop_back();
      nodes_.pop_back();
    }
    nodes_.shrink_to_fit();
    free_.shrink_to_fit();
  }
  run_scratch_.clear();
  run_scratch_.shrink_to_fit();
  overflow_.trim();
}

}  // namespace pipette
