#include "des/simulator.h"

#include <utility>

#include "common/assert.h"

namespace pipette {

void Simulator::schedule(SimDuration delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

void Simulator::schedule_at(SimTime when, Callback cb) {
  PIPETTE_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  queue_.push(when, next_seq_++, std::move(cb));
}

void Simulator::pop_and_run() {
  // Move the callback out of its node (never copied); the node is recycled
  // before the callback runs, so the event can schedule others freely.
  SimTime when;
  Callback cb;
  queue_.pop_min(when, cb);
  if (when > now_) now_ = when;
  ++executed_;
  cb();
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.min_when() <= t) pop_and_run();
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  while (!queue_.empty()) pop_and_run();
}

}  // namespace pipette
