#include "des/simulator.h"

#include <utility>

#include "common/assert.h"

namespace pipette {

void Simulator::schedule(SimDuration delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

void Simulator::schedule_at(SimTime when, Callback cb) {
  PIPETTE_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

void Simulator::pop_and_run() {
  // Move the callback out before popping so the event can schedule others.
  Event ev = queue_.top();
  queue_.pop();
  if (ev.when > now_) now_ = ev.when;
  ++executed_;
  ev.cb();
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().when <= t) pop_and_run();
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  while (!queue_.empty()) pop_and_run();
}

bool Simulator::run_until_condition(const std::function<bool()>& done) {
  if (done()) return true;
  while (!queue_.empty()) {
    pop_and_run();
    if (done()) return true;
  }
  return false;
}

}  // namespace pipette
