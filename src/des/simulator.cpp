#include "des/simulator.h"

#include <utility>

#include "common/assert.h"
#include "des/wheel_queue.h"

namespace pipette {

Simulator::Simulator(QueueKind queue) : queue_kind_(queue) {
  switch (queue) {
    case QueueKind::kWheel:
      queue_ = std::make_unique<WheelQueue>();
      break;
    case QueueKind::kHeap:
      queue_ = std::make_unique<EventQueue>();
      break;
  }
  PIPETTE_ASSERT(queue_ != nullptr);
}

void Simulator::schedule(SimDuration delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

void Simulator::schedule_at(SimTime when, Callback cb) {
  PIPETTE_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  queue_->push(when, next_seq_++, std::move(cb));
}

void Simulator::refill_run() {
  // One queue restructure per same-timestamp run: the whole run lands in
  // the buffer (ascending seq) and executes without touching the queue.
  // clear() destroys only moved-out shells, and capacity is retained.
  run_buf_.clear();
  run_next_ = 0;
  queue_->pop_run(run_when_, run_buf_);
  if (run_when_ > now_) now_ = run_when_;
}

void Simulator::run_until(SimTime t) {
  for (;;) {
    if (!buffer_active()) {
      if (queue_->empty() || queue_->min_when() > t) break;
      refill_run();
    }
    // Re-check run_when_ every iteration: a callback may nest another run_*
    // call that exhausts this buffer and refills it with a later run.
    while (buffer_active() && run_when_ <= t) run_one();
    if (buffer_active()) break;  // the buffered remainder is after t
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  for (;;) {
    if (!buffer_active()) {
      if (queue_->empty()) return;
      refill_run();
    }
    while (buffer_active()) run_one();
  }
}

}  // namespace pipette
