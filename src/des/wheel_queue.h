// Hierarchical timing-wheel event queue.
//
// SSD latencies cluster at a handful of fixed deltas (NAND read ~tens of
// microseconds, PCIe/DMA hops ~hundreds of nanoseconds, HMB round trips in
// between), so almost every event lands within a few milliseconds of the
// clock. A calendar queue exploits that: push classifies the event into a
// slot with shift-and-mask arithmetic, and extraction scans a bitmap instead
// of re-sifting a heap — O(1) per operation where the heap pays O(log n).
//
// Layout (all granularities in simulated nanoseconds, SimTime units):
//
//   level 0: 4096 one-nanosecond slots covering the current 4.1 us window
//            [cur_block0 * 4096, (cur_block0 + 1) * 4096). Each slot holds
//            at most one distinct timestamp, so a slot's list IS a
//            same-timestamp run (linked in push order = seq order is NOT
//            guaranteed; runs are sorted by seq on extraction).
//   level 1: 4096 slots of 4096 ns covering the current ~16.8 ms window
//            [cur_block1 * 2^24, (cur_block1 + 1) * 2^24). A slot holds all
//            events of one level-0 block and is dumped into level 0 when the
//            clock reaches that block.
//   overflow: events beyond the level-1 horizon spill into an embedded
//            EventQueue heap (counted by overflow_pushes()); whenever the
//            wheel advances into a fresh level-1 window it drains the heap's
//            due prefix back into the wheel. Rare by construction: only
//            multi-window timers (fault injection, end-of-run guards) land
//            here.
//
// Windows are aligned (cur_block0 * 4096 is a multiple of the window span),
// so ascending slot index == ascending time within a window and the min scan
// is a find-first-set over the occupancy bitmap. The wheel only ever
// advances inside pop_min/pop_run — and then only up to the block of the
// global minimum event, which the simulator is about to make "now" — so a
// later push can never need a slot behind the cursor (Simulator guarantees
// when >= now).
//
// Drain order is bit-identical to EventQueue's: (when, seq) ascending.
// queue_test pins that with a differential fuzz over adversarial streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "des/event_queue.h"

namespace pipette {

class WheelQueue final : public EventQueueInterface {
 public:
  WheelQueue();

  bool empty() const override { return size_ == 0 && overflow_.empty(); }
  std::size_t size() const override { return size_ + overflow_.size(); }

  SimTime min_when() const override;

  void push(SimTime when, std::uint64_t seq, Callback cb) override;
  void pop_min(SimTime& when, std::uint64_t& seq, Callback& cb) override;
  std::size_t pop_run(SimTime& when, std::vector<Callback>& out) override;

  void trim() override;
  std::size_t peak_size() const override { return peak_size_; }
  std::uint64_t overflow_pushes() const override { return overflow_pushes_; }

 private:
  static constexpr std::size_t kLevelBits = 12;
  static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;  // 4096
  static constexpr std::size_t kSlotMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Pooled list node. `next` links events within a slot (insertion order);
  /// slots are re-sorted by seq only when a run is extracted.
  struct Node {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t next;
    Callback cb;
  };

  static std::uint64_t block0_of(SimTime when) { return when >> kLevelBits; }
  static std::uint64_t block1_of(SimTime when) {
    return when >> (2 * kLevelBits);
  }

  std::uint32_t alloc_node(SimTime when, std::uint64_t seq, Callback cb);
  void free_node(std::uint32_t handle);
  /// Link an in-horizon event into level 0 or level 1 (never the overflow).
  void place(std::uint32_t handle);
  /// Advance the cursors to the block of the earliest event `m`, dumping the
  /// level-1 bucket / overflow prefix that becomes due. Every block skipped
  /// over is provably empty because `m` is the global minimum.
  void settle_to(SimTime m);
  SimTime scan_min() const;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;

  std::array<std::uint32_t, kSlots> l0_heads_;
  std::array<std::uint32_t, kSlots> l1_heads_;
  std::array<std::uint64_t, kWords> l0_bits_{};
  std::array<std::uint64_t, kWords> l1_bits_{};

  std::uint64_t cur_block0_ = 0;  // level-0 window = this 4096 ns block
  std::uint64_t cur_block1_ = 0;  // level-1 window = this 2^24 ns block
  std::size_t size_ = 0;          // wheel-resident events (excl. overflow)
  std::size_t peak_size_ = 0;
  std::uint64_t overflow_pushes_ = 0;

  EventQueue overflow_;

  // Lazily cached minimum: pushes keep it tight, structural changes
  // invalidate it, min_when() rescans only when dirty.
  mutable SimTime cached_min_ = 0;
  mutable bool min_valid_ = false;

  // pop scratch (seq, handle), reused so extraction never allocates in
  // steady state.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> run_scratch_;
};

}  // namespace pipette
