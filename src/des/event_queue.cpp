#include "des/event_queue.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

namespace pipette {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kWheel:
      return "wheel";
  }
  return "?";
}

void EventQueue::push(SimTime when, std::uint64_t seq, Callback cb) {
  std::uint32_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
    nodes_[handle] = std::move(cb);
  } else {
    handle = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(cb));
  }
  heap_.push_back(Entry{when, seq, handle});
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
}

void EventQueue::pop_min(SimTime& when, std::uint64_t& seq, Callback& cb) {
  const Entry root = heap_[0];
  when = root.when;
  seq = root.seq;
  cb = std::move(nodes_[root.node]);
  free_.push_back(root.node);
  const Entry displaced = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = displaced;
    sift_down(0);
  }
}

void EventQueue::pop_min(SimTime& when, Callback& cb) {
  std::uint64_t seq;
  pop_min(when, seq, cb);
}

void EventQueue::pop_root_into(std::vector<Callback>& out) {
  const Entry root = heap_[0];
  out.push_back(std::move(nodes_[root.node]));
  free_.push_back(root.node);
  const Entry displaced = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = displaced;
    sift_down(0);
  }
}

std::size_t EventQueue::pop_run(SimTime& when, std::vector<Callback>& out) {
  when = heap_[0].when;

  // Entries sharing the minimum timestamp form a connected subtree that
  // contains the root: a 4-ary min-heap orders parent <= child, so any
  // entry with when == min has a parent with when == min. Walk that subtree
  // to find the run without scanning the whole array.
  run_pos_.clear();
  run_pos_.push_back(0);
  for (std::size_t i = 0; i < run_pos_.size(); ++i) {
    const std::size_t first =
        static_cast<std::size_t>(run_pos_[i]) * kArity + 1;
    const std::size_t limit = std::min(first + kArity, heap_.size());
    for (std::size_t child = first; child < limit; ++child) {
      if (heap_[child].when == when)
        run_pos_.push_back(static_cast<std::uint32_t>(child));
    }
  }

  const std::size_t k = run_pos_.size();
  if (k == 1) {
    pop_root_into(out);
    return 1;
  }

  // Two extraction strategies. Repeated root pops cost ~k sift_downs of
  // depth log4(n); compact-and-heapify costs O(n) regardless of k. Pick the
  // cheaper one: heapify only when the run is large relative to the
  // survivors, so a 2-event tie in a 100k-entry heap never pays O(n).
  const std::size_t n = heap_.size();
  const std::size_t survivors = n - k;
  const std::size_t pop_cost =
      k * 2 * static_cast<std::size_t>(std::bit_width(n));
  if (pop_cost <= survivors) {
    // The next k pops are exactly the run, in ascending seq order.
    for (std::size_t i = 0; i < k; ++i) pop_root_into(out);
    return k;
  }

  // Batch path: stash the run's entries, delete their heap positions by
  // back-filling, then rebuild the heap bottom-up in one O(n) pass.
  run_entries_.clear();
  for (const std::uint32_t pos : run_pos_) run_entries_.push_back(heap_[pos]);
  std::sort(run_entries_.begin(), run_entries_.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  for (const Entry& e : run_entries_) {
    out.push_back(std::move(nodes_[e.node]));
    free_.push_back(e.node);
  }

  // Remove marked positions largest-first: the only marked position that can
  // sit at back() is the one currently being removed, so back-filling never
  // clobbers another member of the run.
  std::sort(run_pos_.begin(), run_pos_.end(), std::greater<>());
  for (const std::uint32_t pos : run_pos_) {
    if (pos != heap_.size() - 1) heap_[pos] = heap_.back();
    heap_.pop_back();
  }
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() + kArity - 2) / kArity; i-- > 0;)
      sift_down(i);
  }
  return k;
}

void EventQueue::trim() {
  if (heap_.empty()) {
    nodes_.clear();
    nodes_.shrink_to_fit();
    free_.clear();
    free_.shrink_to_fit();
    heap_.shrink_to_fit();
  } else {
    // Drop free handles at the slab's tail so its high-water mark recedes
    // even while events are pending; live handles never move (they are
    // referenced by heap entries).
    std::sort(free_.begin(), free_.end());
    while (!free_.empty() &&
           free_.back() == static_cast<std::uint32_t>(nodes_.size()) - 1) {
      free_.pop_back();
      nodes_.pop_back();
    }
    nodes_.shrink_to_fit();
    free_.shrink_to_fit();
  }
  run_pos_.clear();
  run_pos_.shrink_to_fit();
  run_entries_.clear();
  run_entries_.shrink_to_fit();
}

void EventQueue::sift_up(std::size_t pos) {
  const Entry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) {
  const Entry moving = heap_[pos];
  const std::size_t count = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= count) break;
    const std::size_t limit = std::min(first + kArity, count);
    std::size_t best = first;
    for (std::size_t child = first + 1; child < limit; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

}  // namespace pipette
