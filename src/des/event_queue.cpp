#include "des/event_queue.h"

#include <algorithm>
#include <utility>

namespace pipette {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void EventQueue::push(SimTime when, std::uint64_t seq, Callback cb) {
  std::uint32_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
    nodes_[handle] = std::move(cb);
  } else {
    handle = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(cb));
  }
  heap_.push_back(Entry{when, seq, handle});
  sift_up(heap_.size() - 1);
}

void EventQueue::pop_min(SimTime& when, Callback& cb) {
  const Entry root = heap_[0];
  when = root.when;
  cb = std::move(nodes_[root.node]);
  free_.push_back(root.node);
  const Entry displaced = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = displaced;
    sift_down(0);
  }
}

void EventQueue::sift_up(std::size_t pos) {
  const Entry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) {
  const Entry moving = heap_[pos];
  const std::size_t count = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= count) break;
    const std::size_t limit = std::min(first + kArity, count);
    std::size_t best = first;
    for (std::size_t child = first + 1; child < limit; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

}  // namespace pipette
