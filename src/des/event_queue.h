// 4-ary min-heap of timer events with out-of-line callback storage.
//
// The old core kept a binary std::priority_queue<Event> whose top() could
// only be *copied* out (std::function and all), and whose sift operations
// moved whole events. Here the heap orders compact 24-byte entries — the
// (when, seq) sort key plus a 32-bit handle — so every sift comparison and
// move touches only the contiguous heap array, never the callbacks. The
// callbacks themselves live in a slab indexed by handle and recycled
// through a free list; pop_min() moves the callback out of its slot exactly
// once. A 4-ary layout halves the tree depth of the binary heap, trading
// slightly wider sift-down comparisons (cheap: four entries span two cache
// lines) for fewer levels on the push path that dominates a DES.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"

namespace pipette {

class EventQueue {
 public:
  using Callback = InlineFunction<void()>;

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest event; requires !empty().
  SimTime min_when() const { return heap_[0].when; }

  /// Insert an event. Ordering is by (when, seq) ascending, so equal
  /// timestamps drain in submission order — the determinism contract.
  void push(SimTime when, std::uint64_t seq, Callback cb);

  /// Remove the earliest event, writing its timestamp to `when` and moving
  /// its callback into `cb` (no copy); requires !empty(). The slot is
  /// recycled immediately, so the callback may push new events freely.
  void pop_min(SimTime& when, Callback& cb);

 private:
  /// Heap entry: the full sort key inline plus the callback slot handle.
  /// Sifts compare and shuffle these 24-byte PODs without ever
  /// dereferencing into the callback slab.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t node;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  std::vector<Callback> nodes_;      // callback slab; index = stable handle
  std::vector<Entry> heap_;          // 4-ary heap of keyed entries
  std::vector<std::uint32_t> free_;  // recycled slab handles
};

}  // namespace pipette
