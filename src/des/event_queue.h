// Event-queue backends for the DES core.
//
// Two interchangeable priority-queue implementations sit behind
// EventQueueInterface, selected per machine (MachineConfig::queue):
//
//  * EventQueue  — a 4-ary min-heap of compact 24-byte (when, seq, handle)
//    entries with out-of-line callback storage (the PR 2 design). Sifts
//    compare and shuffle only the contiguous heap array, never the
//    callbacks; the callback slab is recycled through a free list.
//  * WheelQueue  — a hierarchical timing wheel (wheel_queue.h) that turns
//    the clustered fixed deltas of NAND/PCIe/HMB latencies into O(1)
//    schedule/extract operations, spilling far-future events to an
//    embedded EventQueue.
//
// Both back ends drain events in exactly (when, seq) ascending order — the
// determinism contract every golden trace pins — and both support pop_run():
// extracting an entire same-timestamp run at once so the simulator does not
// pay one re-sift per event on burst-heavy schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"

namespace pipette {

/// Which event-queue backend a Simulator uses. The two are bit-identical in
/// drain order; they differ only in host cost per operation.
enum class QueueKind {
  kHeap,   // 4-ary pooled min-heap (EventQueue)
  kWheel,  // hierarchical timing wheel + overflow heap (WheelQueue)
};

const char* to_string(QueueKind kind);

class EventQueueInterface {
 public:
  using Callback = InlineFunction<void()>;

  virtual ~EventQueueInterface() = default;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  /// Timestamp of the earliest event; requires !empty().
  virtual SimTime min_when() const = 0;

  /// Insert an event. Ordering is by (when, seq) ascending, so equal
  /// timestamps drain in submission order — the determinism contract.
  virtual void push(SimTime when, std::uint64_t seq, Callback cb) = 0;

  /// Remove the earliest event, writing its key to `when`/`seq` and moving
  /// its callback into `cb` (no copy); requires !empty(). The slot is
  /// recycled immediately, so the callback may push new events freely.
  virtual void pop_min(SimTime& when, std::uint64_t& seq, Callback& cb) = 0;

  /// Remove *every* event sharing the earliest timestamp in one operation,
  /// appending the callbacks to `out` in ascending seq order; requires
  /// !empty(). Returns the run length. Cheaper than run-length pop_min
  /// calls: the backend restructures once per run, not once per event.
  virtual std::size_t pop_run(SimTime& when, std::vector<Callback>& out) = 0;

  /// Release slab capacity retained above current occupancy. Callback slabs
  /// only ever grow with the high-water mark of pending events; trimming
  /// between experiment cells hands that memory back. Never changes drain
  /// order; pending events are untouched.
  virtual void trim() = 0;

  /// High-water mark of size() observed after any push. Identical across
  /// backends for identical schedules (exported as `des.slab_peak`).
  virtual std::size_t peak_size() const = 0;

  /// Pushes that spilled to an overflow structure because the primary one
  /// could not hold their horizon (wheel only; the heap never spills).
  virtual std::uint64_t overflow_pushes() const { return 0; }
};

class EventQueue final : public EventQueueInterface {
 public:
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }

  SimTime min_when() const override { return heap_[0].when; }

  void push(SimTime when, std::uint64_t seq, Callback cb) override;

  void pop_min(SimTime& when, std::uint64_t& seq, Callback& cb) override;
  /// Legacy two-argument form (tests and callers that don't need the seq).
  void pop_min(SimTime& when, Callback& cb);

  std::size_t pop_run(SimTime& when, std::vector<Callback>& out) override;

  void trim() override;
  std::size_t peak_size() const override { return peak_size_; }

 private:
  /// Heap entry: the full sort key inline plus the callback slot handle.
  /// Sifts compare and shuffle these 24-byte PODs without ever
  /// dereferencing into the callback slab.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t node;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Move the root's callback out (appending to `out`), recycle its node,
  /// and restore the heap with one sift.
  void pop_root_into(std::vector<Callback>& out);

  std::vector<Callback> nodes_;      // callback slab; index = stable handle
  std::vector<Entry> heap_;          // 4-ary heap of keyed entries
  std::vector<std::uint32_t> free_;  // recycled slab handles
  std::size_t peak_size_ = 0;

  // pop_run scratch, reused across calls so batch extraction allocates
  // nothing in steady state.
  std::vector<std::uint32_t> run_pos_;  // heap positions of the current run
  std::vector<Entry> run_entries_;      // the run's entries, sorted by seq
};

}  // namespace pipette
