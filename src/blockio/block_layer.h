// Generic block layer: request merging and dispatch to the NVMe device.
//
// The kernel's block layer takes the page-granular reads the page cache
// wants, merges physically contiguous ones into larger requests (plug/merge)
// and dispatches each merged request to the driver, paying per-request CPU
// cost. The simulation is closed-loop: read_pages() runs the simulator
// until every merged request completes, delivering each page's bytes to the
// caller's sink, and leaves the clock at completion time.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "des/simulator.h"
#include "hostmem/host_timing.h"
#include "ssd/controller.h"

namespace pipette {

struct BlockLayerStats {
  std::uint64_t page_requests = 0;    // pages callers asked for
  std::uint64_t merged_requests = 0;  // commands actually dispatched
};

class BlockLayer {
 public:
  BlockLayer(Simulator& sim, SsdController& ssd, HostTiming timing)
      : sim_(sim), ssd_(ssd), timing_(timing) {}

  /// Sort + merge `lbas` into contiguous runs (duplicates collapsed), issue
  /// one device read per run, and deliver each page to `sink` once all runs
  /// complete. Returns only after completion (clock advanced). Pages of a
  /// run that failed with a media error are not delivered; the return value
  /// is false if any run failed.
  bool read_pages(
      std::vector<Lba> lbas,
      const std::function<void(Lba, const std::uint8_t*)>& sink);

  /// Asynchronous variant (read-ahead): submits the merged runs and returns
  /// immediately; `sink` runs at each run's completion, while the caller is
  /// doing something else. The kernel's async read-ahead works this way —
  /// only the demanded pages block the reader. A failed run still reaches
  /// the sink — once per page, with null data — so callers can retire
  /// in-flight bookkeeping.
  void read_pages_async(std::vector<Lba> lbas,
                        std::function<void(Lba, const std::uint8_t*)> sink);

  /// Write one page synchronously (used by writeback and flush).
  void write_page(Lba lba, const std::uint8_t* data);

  /// Merge helper, exposed for unit tests: sorted unique runs of
  /// {start, count}.
  static std::vector<std::pair<Lba, std::uint32_t>> merge(
      std::vector<Lba> lbas);

  const BlockLayerStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  SsdController& ssd_;
  HostTiming timing_;
  BlockLayerStats stats_;
};

}  // namespace pipette
