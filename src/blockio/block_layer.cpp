#include "blockio/block_layer.h"

#include <algorithm>

#include "common/assert.h"

namespace pipette {

std::vector<std::pair<Lba, std::uint32_t>> BlockLayer::merge(
    std::vector<Lba> lbas) {
  std::vector<std::pair<Lba, std::uint32_t>> runs;
  if (lbas.empty()) return runs;
  std::sort(lbas.begin(), lbas.end());
  lbas.erase(std::unique(lbas.begin(), lbas.end()), lbas.end());
  runs.emplace_back(lbas[0], 1);
  for (std::size_t i = 1; i < lbas.size(); ++i) {
    auto& [start, count] = runs.back();
    if (lbas[i] == start + count) {
      ++count;
    } else {
      runs.emplace_back(lbas[i], 1);
    }
  }
  return runs;
}

bool BlockLayer::read_pages(
    std::vector<Lba> lbas,
    const std::function<void(Lba, const std::uint8_t*)>& sink) {
  if (lbas.empty()) return true;
  stats_.page_requests += lbas.size();
  const auto runs = merge(std::move(lbas));
  stats_.merged_requests += runs.size();

  // Per-request block-layer CPU cost is serial (one submitting thread).
  sim_.advance(timing_.block_layer_per_request * runs.size());

  // One scratch buffer per run; commands are in flight concurrently.
  struct Pending {
    Lba start;
    std::uint32_t count;
    bool ok = true;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Pending> pending(runs.size());
  std::size_t remaining = runs.size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    pending[i].start = runs[i].first;
    pending[i].count = runs[i].second;
    pending[i].buf.resize(static_cast<std::size_t>(runs[i].second) *
                          kBlockSize);
    Command cmd;
    cmd.op = Opcode::kRead;
    cmd.lba = runs[i].first;
    cmd.nlb = runs[i].second;
    cmd.host_dest = {pending[i].buf.data(), pending[i].buf.size()};
    // Two pointers: stays within std::function's 16-byte inline buffer.
    ssd_.submit(std::move(cmd),
                [p = &pending[i], &remaining](const CommandResult& r) {
                  p->ok = r.status == CmdStatus::kOk;
                  --remaining;
                });
  }
  const bool done =
      sim_.run_until_condition([&remaining] { return remaining == 0; });
  PIPETTE_ASSERT_MSG(done, "device never completed block reads");

  bool all_ok = true;
  for (const Pending& p : pending) {
    if (!p.ok) {
      all_ok = false;
      continue;  // media error: the run's payload never arrived
    }
    for (std::uint32_t b = 0; b < p.count; ++b)
      sink(p.start + b, p.buf.data() + static_cast<std::size_t>(b) * kBlockSize);
  }
  return all_ok;
}

void BlockLayer::read_pages_async(
    std::vector<Lba> lbas,
    std::function<void(Lba, const std::uint8_t*)> sink) {
  if (lbas.empty()) return;
  stats_.page_requests += lbas.size();
  const auto runs = merge(std::move(lbas));
  stats_.merged_requests += runs.size();
  sim_.advance(timing_.block_layer_per_request * runs.size());

  auto shared_sink =
      std::make_shared<std::function<void(Lba, const std::uint8_t*)>>(
          std::move(sink));
  for (const auto& [start, count] : runs) {
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(count) * kBlockSize);
    Command cmd;
    cmd.op = Opcode::kRead;
    cmd.lba = start;
    cmd.nlb = count;
    cmd.host_dest = {buf->data(), buf->size()};
    const Lba run_start = start;
    const std::uint32_t run_count = count;
    ssd_.submit(std::move(cmd), [shared_sink, buf, run_start,
                                 run_count](const CommandResult& r) {
      const bool ok = r.status == CmdStatus::kOk;
      for (std::uint32_t b = 0; b < run_count; ++b)
        (*shared_sink)(run_start + b,
                       ok ? buf->data() +
                                static_cast<std::size_t>(b) * kBlockSize
                          : nullptr);
    });
  }
}

void BlockLayer::write_page(Lba lba, const std::uint8_t* data) {
  ++stats_.merged_requests;
  sim_.advance(timing_.block_layer_per_request);
  Command cmd;
  cmd.op = Opcode::kWrite;
  cmd.lba = lba;
  cmd.nlb = 1;
  cmd.write_data.assign(data, data + kBlockSize);
  bool finished = false;
  ssd_.submit(std::move(cmd),
              [&finished](const CommandResult&) { finished = true; });
  const bool done =
      sim_.run_until_condition([&finished] { return finished; });
  PIPETTE_ASSERT_MSG(done, "device never completed the write");
}

}  // namespace pipette
