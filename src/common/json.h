// Minimal JSON emission and validation.
//
// Every bench used to hand-roll its --json output with fprintf, which meant
// escaping bugs waiting to happen and no way to share structure with the new
// observability exporters. JsonWriter is the one place JSON gets built:
// explicit begin/end nesting, automatic comma placement, correct string
// escaping. json_valid() is a strict syntax checker used by tests and the
// trace_smoke gate to prove exported documents actually parse.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pipette {

class JsonWriter {
 public:
  /// Structural tokens. begin_* may follow key() (object member) or appear
  /// as an array element; commas are inserted automatically.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Member key inside an object; must be followed by exactly one value or
  /// begin_* call.
  void key(std::string_view k);

  void value(std::string_view v);  // JSON string (escaped)
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  /// Fixed-precision double (JSON numbers; NaN/inf rendered as 0).
  void value(double v, int precision = 6);

  /// key + value in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }
  void kv(std::string_view k, double v, int precision) {
    key(k);
    value(v, precision);
  }

  /// The document so far. Valid JSON once every begin_* is closed.
  const std::string& str() const { return out_; }

  /// Write str() to `path`; false (with a stderr note) on I/O failure.
  bool write_file(const std::string& path) const;

  static std::string escape(std::string_view s);

 private:
  void separator();  // comma/nothing before the next value or key

  std::string out_;
  std::vector<bool> container_has_items_;  // one frame per open container
  bool after_key_ = false;
};

/// Strict JSON syntax check (objects, arrays, strings with escapes, numbers,
/// true/false/null). Accepts exactly one top-level value.
bool json_valid(std::string_view text);

}  // namespace pipette
