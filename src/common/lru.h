// Generic LRU map used by the host page cache, the device-side read buffer,
// and tests. Hash lookup + intrusive recency list; capacity is a count of
// entries (callers translate bytes to entries at their own granularity).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/assert.h"

namespace pipette {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {
    PIPETTE_ASSERT(capacity > 0);
  }

  /// Look up and promote to most-recently-used. nullptr if absent.
  V* find(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Look up without touching recency. nullptr if absent.
  const V* peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Insert or overwrite; promotes to MRU. If the insert grows the map past
  /// capacity, the LRU entry is evicted and returned.
  std::optional<std::pair<K, V>> insert(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return std::nullopt;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (order_.size() <= capacity_) return std::nullopt;
    auto victim = std::prev(order_.end());
    std::pair<K, V> evicted = std::move(*victim);
    index_.erase(evicted.first);
    order_.erase(victim);
    return evicted;
  }

  /// Drop every entry (capacity unchanged). No eviction callbacks fire;
  /// callers that care about dirty state flush first.
  void clear() {
    order_.clear();
    index_.clear();
  }

  bool erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// The least-recently-used entry, or nullptr when empty.
  const std::pair<K, V>* lru() const {
    return order_.empty() ? nullptr : &order_.back();
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return order_.empty(); }

  /// Visit every entry from MRU to LRU without changing recency.
  template <typename F>
  void for_each(F&& fn) {
    for (auto& [key, value] : order_) fn(key, value);
  }

  /// Shrink/grow capacity; shrinking evicts LRU entries, which are passed to
  /// `on_evict` (may be a no-op lambda).
  template <typename F>
  void set_capacity(std::size_t capacity, F&& on_evict) {
    PIPETTE_ASSERT(capacity > 0);
    capacity_ = capacity;
    while (order_.size() > capacity_) {
      auto victim = std::prev(order_.end());
      on_evict(victim->first, victim->second);
      index_.erase(victim->first);
      order_.erase(victim);
    }
  }

 private:
  using Order = std::list<std::pair<K, V>>;
  std::size_t capacity_;
  Order order_;  // front = MRU, back = LRU
  std::unordered_map<K, typename Order::iterator, Hash> index_;
};

}  // namespace pipette
