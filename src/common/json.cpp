#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pipette {

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (container_has_items_.empty()) return;
  if (container_has_items_.back()) out_.push_back(',');
  container_has_items_.back() = true;
}

void JsonWriter::begin_object() {
  separator();
  out_.push_back('{');
  container_has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (!container_has_items_.empty()) container_has_items_.pop_back();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  separator();
  out_.push_back('[');
  container_has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (!container_has_items_.empty()) container_has_items_.pop_back();
  out_.push_back(']');
}

void JsonWriter::key(std::string_view k) {
  separator();
  out_.push_back('"');
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separator();
  out_.push_back('"');
  out_ += escape(v);
  out_.push_back('"');
}

void JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(double v, int precision) {
  separator();
  if (!std::isfinite(v)) v = 0.0;  // JSON has no NaN/inf
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  out_ += buf;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pipette: cannot write JSON to %s\n", path.c_str());
    return false;
  }
  std::fwrite(out_.data(), 1, out_.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent JSON syntax checker. `pos` is advanced past the parsed
// construct; any violation returns false immediately.
struct JsonChecker {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 128;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || text[pos] != '"') return false;
    ++pos;
    while (!eof()) {
      char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos;
        if (eof()) return false;
        char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = pos;
    if (!eof() && text[pos] == '-') ++pos;
    if (eof() || !std::isdigit(static_cast<unsigned char>(text[pos])))
      return false;
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (!eof() && text[pos] == '.') {
      ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (!eof() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!eof() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    return pos > start;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || text[pos] != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  JsonChecker c{text};
  if (!c.value()) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace pipette
