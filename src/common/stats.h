// Measurement primitives used by every layer of the simulated stack:
// counters, ratio counters (hits/accesses), online mean/variance, and a
// logarithmic latency histogram with percentile queries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"

namespace pipette {

/// Hit/access ratio counter — the primitive behind the paper's adaptive
/// mechanisms (§3.2.2 reuse ratio, §3.2.4 cache hit ratios).
class RatioCounter {
 public:
  void record(bool hit) {
    ++accesses_;
    if (hit) ++hits_;
  }
  void reset() { hits_ = accesses_ = 0; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return accesses_ - hits_; }
  std::uint64_t accesses() const { return accesses_; }

  /// Ratio in [0,1]; 0 when nothing was recorded.
  double ratio() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(accesses_);
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t accesses_ = 0;
};

/// Streaming mean/variance (Welford). Used for latency summaries.
class OnlineStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over durations with logarithmic buckets (HdrHistogram-style:
/// power-of-two ranges, each split into 16 linear sub-buckets, <1.5% value
/// error). Supports percentile queries without storing samples.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(SimDuration d);
  void merge(const LatencyHistogram& other);

  /// Bucket-wise subtraction of an earlier snapshot of *this* histogram
  /// (every bucket of `other` must be <= the same bucket here). Used by the
  /// experiment runner to carve the measured phase out of a full-run
  /// histogram, so percentiles describe exactly the measured requests.
  /// min()/max() become representative bucket values (same <1.5% error as
  /// percentile()) since the exact extremes of the difference are not
  /// recoverable from buckets.
  LatencyHistogram& operator-=(const LatencyHistogram& other);

  /// `*this - other` without mutating either operand.
  LatencyHistogram diff(const LatencyHistogram& other) const;

  std::uint64_t count() const { return count_; }
  double mean_ns() const;
  /// Percentile in [0, 100]; returns a representative bucket value (ns).
  SimDuration percentile(double p) const;
  SimDuration min() const { return count_ ? min_ : 0; }
  SimDuration max() const { return count_ ? max_ : 0; }

  /// Human-readable one-line summary (count/mean/p50/p99/p999/max in µs).
  std::string summary() const;

  /// Exact bucket-level equality — two histograms that recorded the same
  /// multiset of durations compare equal. This is what lets determinism
  /// tests assert bit-identical latency distributions, not just matching
  /// percentile readouts.
  bool operator==(const LatencyHistogram& other) const;
  bool operator!=(const LatencyHistogram& other) const {
    return !(*this == other);
  }

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static int bucket_index(SimDuration d);
  static SimDuration bucket_value(int idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

/// Prints summary(); gives gtest failures a readable rendering.
std::ostream& operator<<(std::ostream& os, const LatencyHistogram& h);

}  // namespace pipette
