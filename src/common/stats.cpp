#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/assert.h"

namespace pipette {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::bucket_index(SimDuration d) {
  if (d < kSubBuckets) return static_cast<int>(d);
  const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(d));
  const int octave = msb - kSubBucketBits;
  const int sub = static_cast<int>(d >> octave) & (kSubBuckets - 1);
  return kSubBuckets + octave * kSubBuckets + sub;
}

SimDuration LatencyHistogram::bucket_value(int idx) {
  if (idx < kSubBuckets) return static_cast<SimDuration>(idx);
  idx -= kSubBuckets;
  const int octave = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  // Midpoint of the bucket's value range.
  const SimDuration base =
      (static_cast<SimDuration>(kSubBuckets + sub)) << octave;
  const SimDuration width = SimDuration{1} << octave;
  return base + width / 2;
}

void LatencyHistogram::record(SimDuration d) {
  const int idx = bucket_index(d);
  PIPETTE_ASSERT(idx >= 0 && idx < kBuckets);
  ++buckets_[static_cast<std::size_t>(idx)];
  if (count_ == 0) {
    min_ = max_ = d;
  } else {
    min_ = std::min(min_, d);
    max_ = std::max(max_, d);
  }
  ++count_;
  total_ns_ += d;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  total_ns_ += other.total_ns_;
}

LatencyHistogram& LatencyHistogram::operator-=(const LatencyHistogram& other) {
  PIPETTE_ASSERT_MSG(count_ >= other.count_ && total_ns_ >= other.total_ns_,
                     "subtrahend is not a prefix snapshot");
  for (int i = 0; i < kBuckets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    PIPETTE_ASSERT_MSG(buckets_[idx] >= other.buckets_[idx],
                       "subtrahend is not a prefix snapshot");
    buckets_[idx] -= other.buckets_[idx];
  }
  count_ -= other.count_;
  total_ns_ -= other.total_ns_;
  // Recover representative extremes from the surviving buckets.
  min_ = max_ = 0;
  bool seen_any = false;
  for (int i = 0; count_ > 0 && i < kBuckets; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] == 0) continue;
    if (!seen_any) min_ = bucket_value(i);
    seen_any = true;
    max_ = bucket_value(i);
  }
  return *this;
}

LatencyHistogram LatencyHistogram::diff(const LatencyHistogram& other) const {
  LatencyHistogram out = *this;
  out -= other;
  return out;
}

double LatencyHistogram::mean_ns() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(total_ns_) / static_cast<double>(count_);
}

SimDuration LatencyHistogram::percentile(double p) const {
  PIPETTE_ASSERT(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target && seen > 0) return bucket_value(i);
  }
  return max_;
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  return count_ == other.count_ && total_ns_ == other.total_ns_ &&
         min_ == other.min_ && max_ == other.max_ &&
         buckets_ == other.buckets_;
}

std::ostream& operator<<(std::ostream& os, const LatencyHistogram& h) {
  return os << h.summary();
}

std::string LatencyHistogram::summary() const {
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus p999=%.2fus max=%.2fus",
      static_cast<unsigned long long>(count_), mean_ns() / 1e3,
      to_us(percentile(50)), to_us(percentile(99)), to_us(percentile(99.9)),
      to_us(max()));
  return buf;
}

}  // namespace pipette
