// Zipfian distribution sampling.
//
// The paper's synthetic workloads draw file offsets from a zipfian
// distribution with exponent alpha = 0.8 (Table 1, note 2). Sampling must be
// O(1) per draw for populations in the millions, so we use Hörmann's
// rejection-inversion method ("Rejection-inversion to generate variates from
// monotone discrete distributions", ACM TOMACS 1996), the same algorithm
// used by e.g. Apache Commons and YCSB-class generators.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace pipette {

/// Samples ranks in [0, n) with P(rank k) proportional to 1 / (k+1)^alpha.
/// Rank 0 is the most popular element. Callers that want the popularity
/// ordering scattered over a key space should compose with a permutation
/// (see ScatteredZipf below).
class ZipfGenerator {
 public:
  /// n >= 1, alpha > 0 (alpha == 1 is handled by the standard limit form).
  ZipfGenerator(std::uint64_t n, double alpha);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t population() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

/// Zipfian sampler whose popularity ranks are scattered pseudo-randomly
/// across [0, n): the hot elements are spread over the whole key space, the
/// way hot objects are spread across a real file. Uses a Feistel-style
/// permutation so no O(n) table is needed.
class ScatteredZipf {
 public:
  ScatteredZipf(std::uint64_t n, double alpha, std::uint64_t permutation_seed);

  std::uint64_t sample(Rng& rng) const;
  std::uint64_t population() const { return zipf_.population(); }

  /// The permutation itself (rank -> key), exposed for tests.
  std::uint64_t permute(std::uint64_t rank) const;

 private:
  ZipfGenerator zipf_;
  std::uint64_t n_;
  std::uint64_t seed_;
  std::uint64_t half_bits_;
  std::uint64_t half_mask_;
};

}  // namespace pipette
