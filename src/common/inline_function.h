// Small-buffer-optimized, move-only callable — the event-core replacement
// for std::function.
//
// The discrete-event simulator executes one callback per event, millions of
// times per experiment cell, so the container holding those callbacks must
// not touch the heap for ordinary captures. InlineFunction stores any
// nothrow-move-constructible callable of up to kInlineBytes directly in the
// object; larger (or over-aligned) callables fall back to a single heap
// allocation, and every fallback is counted so tests can assert the hot
// path stayed allocation-free.
//
// Differences from std::function, on purpose:
//  * move-only (copying a captured closure per event was the old core's
//    main cost — the type now forbids it outright);
//  * no target_type()/target() introspection;
//  * invoking an empty InlineFunction is undefined (asserted in debug).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.h"

namespace pipette {

namespace detail {
/// Number of InlineFunction constructions that had to heap-allocate because
/// the callable exceeded the inline buffer. Monotonic, process-wide.
inline std::atomic<std::uint64_t> inline_function_heap_allocs{0};
}  // namespace detail

/// Total heap-fallback constructions across all InlineFunction
/// instantiations (any signature, any buffer size) in this process.
inline std::uint64_t inline_function_heap_allocations() {
  return detail::inline_function_heap_allocs.load(std::memory_order_relaxed);
}

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* obj, Args... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      };
      manage_ = &manage_inline<D>;
    } else {
      detail::inline_function_heap_allocs.fetch_add(1,
                                                    std::memory_order_relaxed);
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* obj, Args... args) -> R {
        return (**static_cast<D**>(obj))(std::forward<Args>(args)...);
      };
      manage_ = &manage_heap<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    PIPETTE_ASSERT_MSG(invoke_ != nullptr, "invoking empty InlineFunction");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  /// Whether a callable of type D would be stored inline (no heap).
  template <typename D>
  static constexpr bool stores_inline() {
    using T = std::decay_t<D>;
    return sizeof(T) <= InlineBytes &&
           alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

 private:
  enum class Op { kMoveDestroy, kDestroy };
  using ManageFn = void (*)(Op, void* self, void* dest);

  template <typename D>
  static void manage_inline(Op op, void* self, void* dest) {
    D* obj = static_cast<D*>(self);
    if (op == Op::kMoveDestroy) ::new (dest) D(std::move(*obj));
    obj->~D();
  }

  template <typename D>
  static void manage_heap(Op op, void* self, void* dest) {
    D** slot = static_cast<D**>(self);
    if (op == Op::kMoveDestroy) {
      ::new (dest) D*(*slot);  // ownership transfers with the pointer
    } else {
      delete *slot;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMoveDestroy, other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  R (*invoke_)(void*, Args...) = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace pipette
