#include "common/zipf.h"

#include <cmath>

#include "common/assert.h"

namespace pipette {

namespace {

// helper1(x) = log1p(x) / x, continuous at 0 (value 1); series near 0 for
// numerical stability. Used by Hörmann's inverse integral.
double helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

// helper2(x) = expm1(x) / x, continuous at 0 (value 1).
double helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  PIPETTE_ASSERT(n >= 1);
  PIPETTE_ASSERT(alpha > 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfGenerator::h(double x) const {
  return std::exp(-alpha_ * std::log(x));
}

double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - alpha_) * log_x) * log_x;
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.next_double() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = h_integral_inverse(u);
    std::uint64_t k1;  // 1-based rank
    if (x < 1.0) {
      k1 = 1;
    } else if (x >= static_cast<double>(n_)) {
      k1 = n_;
    } else {
      k1 = static_cast<std::uint64_t>(x + 0.5);
      if (k1 < 1) k1 = 1;
      if (k1 > n_) k1 = n_;
    }
    const double dk = static_cast<double>(k1);
    if (dk - x <= s_ || u >= h_integral(dk + 0.5) - h(dk)) {
      return k1 - 1;
    }
  }
}

ScatteredZipf::ScatteredZipf(std::uint64_t n, double alpha,
                             std::uint64_t permutation_seed)
    : zipf_(n, alpha), n_(n), seed_(permutation_seed) {
  // Feistel network over the smallest even-width bit domain covering n;
  // out-of-range outputs are cycle-walked back into range.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < n_) ++half_bits_;
  half_mask_ = (1ULL << half_bits_) - 1;
}

std::uint64_t ScatteredZipf::permute(std::uint64_t rank) const {
  PIPETTE_ASSERT(rank < n_);
  std::uint64_t v = rank;
  do {
    std::uint64_t left = (v >> half_bits_) & half_mask_;
    std::uint64_t right = v & half_mask_;
    for (int round = 0; round < 4; ++round) {
      const std::uint64_t f =
          mix64(right ^ seed_ ^ (static_cast<std::uint64_t>(round) << 32)) &
          half_mask_;
      const std::uint64_t next_left = right;
      right = left ^ f;
      left = next_left;
    }
    v = (left << half_bits_) | right;
  } while (v >= n_);  // cycle-walk: permutation of the domain stays closed
  return v;
}

std::uint64_t ScatteredZipf::sample(Rng& rng) const {
  return permute(zipf_.sample(rng));
}

}  // namespace pipette
