// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible across runs and platforms, so we avoid
// std::mt19937/std::uniform_int_distribution (whose outputs are unspecified
// across standard library implementations) in favour of a fixed xoshiro256**
// implementation seeded through SplitMix64.
#pragma once

#include <cstdint>

namespace pipette {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state, and
/// as a cheap stateless hash for deterministic synthetic data content.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mixing function (one SplitMix64 round on `x`).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// The seed of sub-stream `stream` of the generator seeded with `seed`.
  /// Pure function of (seed, stream): the fleet layer uses it to hand every
  /// shard an independent, replayable workload stream derived from one
  /// fleet-level seed.
  static std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream);

  /// Splittable-RNG child: an independent generator for sub-stream `stream`,
  /// derived from this generator's *seed* (not its current position), so the
  /// same parent always yields the same children no matter how much either
  /// has drawn.
  Rng split(std::uint64_t stream) const { return Rng(split_seed(seed_, stream)); }

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound) with unbiased rejection (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p);

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

}  // namespace pipette
