#include "common/bytes.h"

#include <cstring>

#include "common/rng.h"

namespace pipette {

namespace {
// One 64-bit word of pattern content; word index is offset / 8.
inline std::uint64_t pattern_word(std::uint64_t key, std::uint64_t word_idx) {
  return mix64(key * 0x9e3779b97f4a7c15ULL + word_idx + 1);
}
}  // namespace

std::uint8_t pattern_byte(std::uint64_t key, std::uint64_t offset) {
  const std::uint64_t w = pattern_word(key, offset >> 3);
  return static_cast<std::uint8_t>(w >> ((offset & 7) * 8));
}

void fill_pattern(std::span<std::uint8_t> out, std::uint64_t key,
                  std::uint64_t start_offset) {
  std::size_t i = 0;
  std::uint64_t off = start_offset;
  // Head: unaligned leading bytes.
  while (i < out.size() && (off & 7) != 0) {
    out[i++] = pattern_byte(key, off++);
  }
  // Body: whole words.
  while (i + 8 <= out.size()) {
    const std::uint64_t w = pattern_word(key, off >> 3);
    std::memcpy(out.data() + i, &w, 8);
    i += 8;
    off += 8;
  }
  // Tail.
  while (i < out.size()) {
    out[i++] = pattern_byte(key, off++);
  }
}

bool check_pattern(std::span<const std::uint8_t> data, std::uint64_t key,
                   std::uint64_t start_offset) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(key, start_offset + i)) return false;
  }
  return true;
}

}  // namespace pipette
