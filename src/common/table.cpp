#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/assert.h"

namespace pipette {

Table::Table(std::vector<std::string> column_headers)
    : headers_(std::move(column_headers)) {
  PIPETTE_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PIPETTE_ASSERT_MSG(cells.size() <= headers_.size(),
                     "row has more cells than the table has columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_times(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(width[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) out += "  ";
    }
    out += '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c], '-');
    if (c + 1 < headers_.size()) out += "  ";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += csv_escape(cells[c]);
      if (c + 1 < cells.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "pipette: cannot write CSV to %s\n", path.c_str());
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

BenchArgs BenchArgs::parse(int argc, char** argv) {
  return parse(argc, argv, nullptr, nullptr);
}

BenchArgs BenchArgs::parse(int argc, char** argv, const ExtraFlagFn& extra,
                           const char* extra_help) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pipette: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv_path = need_value("--csv");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      args.requests = std::strtoull(need_value("--requests"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      args.jobs = static_cast<unsigned>(
          std::strtoul(need_value("--jobs"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      args.queue = need_value("--queue");
      if (args.queue != "heap" && args.queue != "wheel" &&
          args.queue != "both") {
        std::fprintf(stderr,
                     "pipette: --queue must be heap, wheel or both (got %s)\n",
                     args.queue.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--interconnect") == 0) {
      args.interconnect = need_value("--interconnect");
      if (args.interconnect != "hmb" && args.interconnect != "lmb") {
        std::fprintf(stderr,
                     "pipette: --interconnect must be hmb or lmb (got %s)\n",
                     args.interconnect.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--prefetch") == 0) {
      args.prefetch = true;
    } else if (std::strcmp(argv[i], "--mu") == 0) {
      args.mapping_unit = static_cast<std::uint32_t>(
          std::strtoul(need_value("--mu"), nullptr, 10));
      if (args.mapping_unit < 512 || args.mapping_unit > 4096 ||
          4096 % args.mapping_unit != 0) {
        std::fprintf(stderr,
                     "pipette: --mu must divide 4096 and be in [512, 4096] "
                     "(got %u)\n",
                     args.mapping_unit);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--requests N] [--seed S] [--quick] [--jobs N] "
          "[--queue heap|wheel|both] [--interconnect hmb|lmb] [--prefetch] "
          "[--mu BYTES] [--csv PATH] [--json PATH]\n"
          "  --jobs N     run independent experiment cells on N threads\n"
          "               (0 = hardware concurrency, 1 = serial; results\n"
          "               are bit-identical at any job count)\n"
          "  --queue Q    event-queue backend (drain order is identical;\n"
          "               this is a host-speed knob; 'both' only where a\n"
          "               bench compares backends)\n"
          "  --interconnect L  link carrying fine-grained fills: hmb (PCIe\n"
          "               DMA into host DRAM, default) or lmb (CXL-linked\n"
          "               memory buffer with its own timing)\n"
          "  --prefetch   enable speculative readahead on the Pipette path\n"
          "  --mu BYTES   FTL mapping unit (512|1024|2048|4096; default:\n"
          "               page-granular mapping, bit-identical to history)\n"
          "  --json PATH  write a machine-readable summary (host_seconds,\n"
          "               events_executed per cell) for perf tracking\n",
          argv[0]);
      if (extra_help != nullptr) std::fputs(extra_help, stdout);
      std::exit(0);
    } else if (extra != nullptr &&
               extra(argv[i], [&] { return need_value(argv[i]); })) {
      // bench-specific flag, consumed by the caller's handler
    } else {
      std::fprintf(stderr, "pipette: unknown flag %s (see --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace pipette
