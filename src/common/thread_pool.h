// Fixed-size worker pool used to fan independent simulation cells across
// cores. Each submitted task must be self-contained: the simulator and every
// layer below it are single-threaded by design, so parallelism lives one
// level up — whole machines (one per experiment cell) run concurrently and
// never share mutable state.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pipette {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains already-submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `fn`; the future becomes ready when it finishes (holding any
  /// exception the task threw).
  std::future<void> submit(std::function<void()> fn);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Hardware concurrency, at least 1 (the standard allows 0 = unknown).
  static unsigned default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pipette
