// Core unit types shared across the whole library.
//
// All simulated time is kept in integral nanoseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible. All sizes are bytes.
#pragma once

#include <cstdint>

namespace pipette {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, also in nanoseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kNs = 1;
constexpr SimDuration kUs = 1000 * kNs;
constexpr SimDuration kMs = 1000 * kUs;
constexpr SimDuration kSec = 1000 * kMs;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Convert a nanosecond duration to (floating) microseconds for reporting.
constexpr double to_us(SimDuration d) { return static_cast<double>(d) / 1e3; }

/// Convert a byte count to (floating) MiB, matching the paper's "MB" tables
/// (the paper's numbers are in fact MiB: 2.5e6 * 128 B = 305.2 "MB").
constexpr double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

}  // namespace pipette
