// Result-table rendering for the benchmark harness.
//
// Each bench binary reproduces one table or figure from the paper and prints
// it as an aligned text table (plus optional CSV), so TablePrinter is the
// single place that controls that formatting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pipette {

class Table {
 public:
  explicit Table(std::vector<std::string> column_headers);

  /// Appends a row; cells beyond the header count are rejected.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatting.
  static std::string fmt(double v, int precision = 1);
  static std::string fmt_times(double v, int precision = 2);  // "12.3x"

  /// Render as an aligned text table with a separator under the header.
  std::string to_text() const;

  /// Render as CSV (RFC-4180 quoting for cells containing , " or newline).
  std::string to_csv() const;

  /// Write CSV to `path`; returns false (and prints to stderr) on failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses the common bench CLI: --csv <path>, --json <path>, --requests N,
/// --quick, --seed S, --jobs N, --queue heap|wheel|both,
/// --interconnect hmb|lmb, --prefetch, --mu BYTES.
struct BenchArgs {
  std::string csv_path;         // empty = no CSV
  std::string json_path;        // empty = no JSON summary
  std::uint64_t requests = 0;   // 0 = bench default
  std::uint64_t seed = 42;
  bool quick = false;           // reduced request count for smoke runs
  unsigned jobs = 0;            // experiment cells run in parallel;
                                // 0 = hardware concurrency, 1 = serial
  std::string queue;            // event-queue backend: "heap", "wheel",
                                // "both" (comparative benches only), or
                                // "" = the bench's default
  std::string interconnect;     // fine-grained fill link: "hmb", "lmb", or
                                // "" = the bench's default (hmb)
  bool prefetch = false;        // speculative readahead on the Pipette path
  std::uint32_t mapping_unit = 0;  // FTL mapping unit in bytes; 0 = page
                                   // (--mu 512|1024|2048|4096)

  /// Called for any flag the common parser does not recognise. Invoke
  /// `value()` to consume the flag's argument; return true if the flag was
  /// handled (false falls through to the unknown-flag error). This is the
  /// one extension point for bench-specific flags — benches must not
  /// hand-peel argv around the common parser.
  using ValueFn = std::function<const char*()>;
  using ExtraFlagFn = std::function<bool(const char* flag, const ValueFn&)>;

  static BenchArgs parse(int argc, char** argv);
  /// `extra_help` lines (if any) are appended to the --help output.
  static BenchArgs parse(int argc, char** argv, const ExtraFlagFn& extra,
                         const char* extra_help = nullptr);
};

}  // namespace pipette
