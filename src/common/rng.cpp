#include "common/rng.h"

#include "common/assert.h"

namespace pipette {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::split_seed(std::uint64_t seed, std::uint64_t stream) {
  // Two SplitMix64 rounds over a (seed, stream) combination keep child seeds
  // well separated even for adjacent stream ids and correlated parent seeds.
  return mix64(seed ^ mix64(stream ^ 0x5851f42d4c957f2dULL));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PIPETTE_ASSERT(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  PIPETTE_ASSERT(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace pipette
