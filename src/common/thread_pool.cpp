#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pipette {

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(threads, 1u);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace pipette
