// Lightweight invariant checking for the Pipette simulation library.
//
// PIPETTE_ASSERT is active in all build types: the simulator's correctness
// depends on structural invariants (ring indices, slab bookkeeping, FTL
// mappings) and silently corrupt state would invalidate every measurement.
// The cost is a predictable branch, which is negligible next to the
// event-queue work done per simulated request.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pipette {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pipette: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace pipette

#define PIPETTE_ASSERT(expr)                                          \
  do {                                                                \
    if (!(expr)) ::pipette::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PIPETTE_ASSERT_MSG(expr, msg)                                 \
  do {                                                                \
    if (!(expr)) ::pipette::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
