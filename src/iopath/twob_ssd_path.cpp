#include "iopath/twob_ssd_path.h"

#include <vector>

#include "common/assert.h"
#include "obs/trace.h"

namespace pipette {

SimDuration TwoBSsdPath::read(FileId file, int /*open_flags*/,
                              std::uint64_t offset,
                              std::span<std::uint8_t> out) {
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  // User-level library entry: no kernel crossing, just the mapping lookup
  // of the file's byte-addressable window.
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.vfs_lookup);
  }

  // Resolve which device blocks hold the range (premapped extent walk).
  std::vector<LbaRange> ranges;
  {
    TraceScope extent_scope(sim_, Stage::kExtentLookup);
    sim_.advance(timing_.fs_extent_lookup);
    fs_.extract_lbas(file, offset, out.size(), ranges);
  }

  std::size_t copied = 0;
  for (const LbaRange& r : ranges) {
    // Ask the device to stage the page in the CMB.
    Command cmd;
    cmd.op = Opcode::kReadToCmb;
    cmd.lba = r.lba;
    // One pointer capture keeps the completion inside std::function's
    // inline buffer.
    struct WaitState {
      bool done = false;
      std::uint32_t slot = 0;
      CmdStatus status = CmdStatus::kOk;
    } st;
    ssd_.submit(std::move(cmd), [&st](const CommandResult& res) {
      st.done = true;
      st.slot = res.cmb_slot;
      st.status = res.status;
    });
    PIPETTE_ASSERT(sim_.run_until_condition([&st] { return st.done; }));
    if (st.status != CmdStatus::kOk) {
      // Media error: the page never reached the CMB; fail the read.
      ++stats_.failed_reads;
      return sim_.now() - t0;
    }

    // Pull the demanded bytes out of the CMB window (MMIO transactions or
    // mapped DMA — host-synchronous either way, so it lands in host_copy).
    auto dest = out.subspan(copied, r.len);
    TraceScope pull_scope(sim_, Stage::kHostCopy);
    const SimDuration pull =
        ssd_.read_from_cmb(st.slot, r.offset, dest, mode_ == TwoBMode::kDma);
    sim_.advance(pull);
    copied += r.len;
  }
  PIPETTE_ASSERT(copied == out.size());

  const SimDuration latency = sim_.now() - t0;
  note_read(out.size(), latency);
  return latency;
}

SimDuration TwoBSsdPath::write(FileId file, int /*open_flags*/,
                               std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  // 2B-SSD's evaluation here is read-only (fine-grained writes are
  // CoinPurse's domain); writes go straight down the block interface with
  // read-modify-write of partial pages.
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.syscall + timing_.vfs_lookup +
                 timing_.fs_extent_lookup);
  }
  std::vector<LbaRange> ranges;
  fs_.extract_lbas(file, offset, data.size(), ranges);
  std::size_t consumed = 0;
  for (const LbaRange& r : ranges) {
    std::vector<std::uint8_t> page(kBlockSize);
    ssd_.content().read(r.lba, 0, {page.data(), page.size()});
    std::copy_n(data.data() + consumed, r.len, page.data() + r.offset);
    consumed += r.len;
    Command cmd;
    cmd.op = Opcode::kWrite;
    cmd.lba = r.lba;
    cmd.nlb = 1;
    cmd.write_data = std::move(page);
    bool done = false;
    ssd_.submit(std::move(cmd), [&](const CommandResult&) { done = true; });
    PIPETTE_ASSERT(sim_.run_until_condition([&] { return done; }));
  }
  ++stats_.writes;
  return sim_.now() - t0;
}

}  // namespace pipette
