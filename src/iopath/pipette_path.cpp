#include "iopath/pipette_path.h"

#include <cstring>
#include <vector>

#include "common/assert.h"
#include "obs/trace.h"

namespace pipette {

PipettePath::PipettePath(Simulator& sim, SsdController& ssd, FileSystem& fs,
                         HostTiming timing, PipettePathConfig config)
    : ReadPathBase(sim, ssd, fs, timing),
      config_(std::move(config)),
      block_(sim, ssd, fs, timing, config_.page_cache_bytes,
             config_.readahead) {
  // Config contract: anything the dispatcher sends down the fine path must
  // fit the TempBuf (the non-promoted staging area).
  PIPETTE_ASSERT_MSG(
      config_.dispatch.fine_max_len <= ssd_.hmb().tempbuf().size(),
      "dispatcher fine_max_len exceeds the HMB TempBuf");
  fgrc_ = std::make_unique<FineGrainedReadCache>(
      ssd_.hmb(), config_.fgrc, &block_.page_cache().hit_counter());
  if (config_.prefetch.enabled && config_.use_cache) {
    // Speculation splits the TempBuf in half; demand staging must still fit
    // its (lower) half.
    PIPETTE_ASSERT_MSG(
        config_.dispatch.fine_max_len <= ssd_.hmb().tempbuf().size() / 2,
        "dispatcher fine_max_len exceeds the demand half of the TempBuf");
    fgrc_->enable_speculative_staging();
    prefetcher_ = std::make_unique<Prefetcher>(
        sim_, ssd_, fs_, *fgrc_, config_.prefetch,
        [this](FileId f, std::uint64_t page) {
          return block_.page_cache().contains({f, page});
        });
  }
}

void PipettePath::reset_fgrc() {
  const FgrcStats saved = fgrc_->stats();
  fgrc_ = std::make_unique<FineGrainedReadCache>(
      ssd_.hmb(), config_.fgrc, &block_.page_cache().hit_counter());
  fgrc_->restore_stats(saved);
  if (prefetcher_ != nullptr) {
    fgrc_->enable_speculative_staging();
    prefetcher_->on_cache_reset(*fgrc_);
  }
}

void PipettePath::adopt_lba_scratch(std::vector<LbaRange>&& scratch) {
  if (scratch.capacity() > lba_scratch_.capacity())
    lba_scratch_ = std::move(scratch);
  lba_scratch_.clear();
}

std::vector<LbaRange> PipettePath::release_lba_scratch() {
  std::vector<LbaRange> out = std::move(lba_scratch_);
  lba_scratch_.clear();
  return out;
}

bool PipettePath::await_completion() {
  const SimDuration guard = ssd_.config().faults.hmb.timeout;
  if (guard == 0) {
    const bool completed =
        sim_.run_until_condition([this] { return wait_done_; });
    PIPETTE_ASSERT_MSG(completed,
                       "fine-grained command never completed (set the HMB "
                       "fault timeout to fail the request instead)");
    return true;
  }
  const SimTime deadline = sim_.now() + guard;
  if (sim_.run_until_condition_before([this] { return wait_done_; },
                                      deadline)) {
    return true;
  }
  // Lost completion: charge the full guard interval, then invalidate the
  // outstanding ticket so a late completion cannot touch this wait's state.
  if (sim_.now() < deadline) sim_.advance(deadline - sim_.now());
  ++wait_ticket_;
  ++pstats_.lost_completions;
  return false;
}

SimDuration PipettePath::buffer_read_cost(std::uint64_t bytes) const {
  if (ssd_.config().interconnect == InterconnectKind::kLmb) {
    return ssd_.config().lmb.host_read_cost(bytes);
  }
  return timing_.copy_cost(bytes);
}

PipettePath::FineOutcome PipettePath::fine_read(FileId file,
                                                std::uint64_t offset,
                                                std::span<std::uint8_t> out) {
  ++pstats_.fine_reads;
  pending_pred_ = StreamPrediction{};  // kRandom: no speculation by default
  const std::uint64_t first_page = offset / kBlockSize;
  const std::uint64_t last_page = (offset + out.size() - 1) / kBlockSize;

  // §3.1.2: the request "goes through the VFS layer and is first performed
  // by the page cache". If any spanned page is resident (possibly dirty
  // from a recent write), serve through the block route, which guarantees
  // the freshest bytes. Probes use contains() so the page cache hit ratio
  // keeps describing the block-routed traffic only.
  bool any_resident = false;
  {
    TraceScope probe(sim_, Stage::kPageCache);
    for (std::uint64_t p = first_page; p <= last_page; ++p) {
      sim_.advance(timing_.page_cache_lookup);
      if (block_.page_cache().contains({file, p})) {
        any_resident = true;
        break;
      }
    }
  }
  if (any_resident) {
    ++pstats_.page_cache_served_fine;
    return block_.buffered_read(file, offset, out) ? FineOutcome::kOk
                                                   : FineOutcome::kFailed;
  }

  // Page-cache miss: the Detector verifies permission (already routed) and
  // tracks which part of each page is demanded.
  {
    TraceScope detector_scope(sim_, Stage::kDetector);
    sim_.advance(timing_.detector_check);
    std::uint64_t pos = offset;
    std::size_t left = out.size();
    while (left > 0) {
      const std::uint64_t page = pos / kBlockSize;
      const std::uint32_t in_page =
          static_cast<std::uint32_t>(pos % kBlockSize);
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockSize - in_page, left));
      detector_.record(file, page, in_page, take);
      pos += take;
      left -= take;
    }
    if (prefetcher_ != nullptr) {
      pending_pred_ = detector_.observe(
          file, offset, static_cast<std::uint32_t>(out.size()));
    }
  }

  const FgKey key{file, offset, static_cast<std::uint32_t>(out.size())};

  // Claim any speculative fill for this key (waiting out an in-flight one
  // under the timeout guard). A promoted fill then hits in the FGRC below;
  // a TempBuf fill warmed the device read buffer, so the re-fetch skips
  // NAND. Claiming before the lookup keeps hit attribution exact.
  if (prefetcher_ != nullptr) prefetcher_->on_demand(key);

  if (config_.use_cache) {
    // Dispatch to the per-file hash lookup table.
    std::optional<std::span<const std::uint8_t>> hit;
    {
      TraceScope lookup_scope(sim_, Stage::kFgrcLookup);
      sim_.advance(timing_.fgrc_lookup);
      hit = fgrc_->lookup(key);
    }
    if (hit) {
      PIPETTE_ASSERT(hit->size() == out.size());
      TraceScope copy_scope(sim_, Stage::kHostCopy);
      std::memcpy(out.data(), hit->data(), out.size());
      sim_.advance(buffer_read_cost(out.size()));
      return FineOutcome::kOk;
    }
  }

  // Miss: decide placement. Without the cache everything stages through
  // the TempBuf region.
  MissPlan plan;
  if (config_.use_cache) {
    plan = fgrc_->plan_miss(key);
    if (plan.promoted) {
      TraceScope fill_scope(sim_, Stage::kFgrcFill);
      sim_.advance(timing_.fgrc_insert);
    }
  } else {
    plan.dest = fgrc_->tempbuf_addr(key.len);
    plan.promoted = false;
  }

  // Constructor: the LBA Extractor resolves the range, bypassing the
  // generic block layer; the Requester pushes Info Area records (one per
  // page-range, each carrying its destination address) and submits the
  // reconstructed FG_READ.
  {
    TraceScope extent_scope(sim_, Stage::kExtentLookup);
    sim_.advance(timing_.fs_extent_lookup);
    lba_scratch_.clear();
    fs_.extract_lbas(file, offset, out.size(), lba_scratch_);
  }

  InfoArea& info = ssd_.hmb().info();
  Command cmd;
  cmd.op = Opcode::kFgRead;
  cmd.ranges = ssd_.take_fg_ranges();
  HmbAddr dest = plan.dest;
  for (const LbaRange& r : lba_scratch_) {
    PIPETTE_ASSERT_MSG(!info.full(), "Info Area backpressure");
    const std::uint64_t idx =
        info.push({dest, r.lba, r.offset, r.len}, sim_.now());
    cmd.ranges.push_back({r.lba, r.offset, r.len, idx});
    dest += r.len;
  }
  // Ring enqueue costs no modelled time; the zero-length span still counts
  // pushes in the info_ring histogram row.
  PIPETTE_TRACE_SPAN(sim_, Stage::kInfoRing, sim_.now(), sim_.now());
  wait_done_ = false;
  const std::uint64_t ticket = ++wait_ticket_;
  ssd_.submit(std::move(cmd), [this, ticket](const CommandResult& r) {
    if (ticket != wait_ticket_) return;  // stale: that wait timed out
    wait_result_ = r;
    wait_done_ = true;
  });
  if (!await_completion()) {
    // Dropped completion: the reserved FGRC slot never got its bytes.
    fgrc_->abort_fill(key, plan);
    return FineOutcome::kFailed;
  }
  if (wait_result_.status == CmdStatus::kHmbFault) {
    // The engine could not reach its HMB destinations. Degrade gracefully:
    // evict the poisoned reservation and serve through the block path.
    ++pstats_.hmb_fault_fallbacks;
    fgrc_->abort_fill(key, plan);
    return block_.buffered_read(file, offset, out) ? FineOutcome::kDegraded
                                                   : FineOutcome::kFailed;
  }
  if (wait_result_.status == CmdStatus::kMediaError) {
    fgrc_->abort_fill(key, plan);
    return FineOutcome::kFailed;
  }

  // The demanded bytes are in the HMB (cache item or TempBuf); hand them
  // to the user.
  TraceScope copy_scope(sim_, Stage::kHostCopy);
  ssd_.hmb().read(plan.dest, out);
  sim_.advance(buffer_read_cost(out.size()));
  return FineOutcome::kOk;
}

SimDuration PipettePath::read(FileId file, int open_flags,
                              std::uint64_t offset,
                              std::span<std::uint8_t> out) {
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.syscall + timing_.vfs_lookup);
  }

  // Pipette w/o cache routes everything down the byte path (its I/O
  // traffic is exactly the requested bytes at every size, Table 2/3) —
  // bounded by the TempBuf staging capacity, beyond which only the block
  // interface can carry the request.
  Route route = Route::kFine;
  if (config_.use_cache) {
    route = dispatch_read(config_.dispatch, open_flags, offset, out.size());
  } else if (!FineGrainedAccessDetector::permitted(open_flags) ||
             out.size() > ssd_.hmb().tempbuf().size()) {
    route = Route::kBlock;
  }

  FineOutcome outcome;
  if (route == Route::kBlock) {
    ++pstats_.block_reads;
    outcome = block_.buffered_read(file, offset, out) ? FineOutcome::kOk
                                                      : FineOutcome::kFailed;
  } else {
    outcome = fine_read(file, offset, out);
  }
  const SimDuration latency = sim_.now() - t0;
  if (outcome == FineOutcome::kFailed) {
    ++stats_.failed_reads;
    return latency;
  }
  if (outcome == FineOutcome::kDegraded) ++stats_.degraded_reads;
  note_read(out.size(), latency);
  // Speculation rides the tail of the syscall, after the demand latency was
  // captured — like kernel readahead kicked off on the way out of read().
  if (prefetcher_ != nullptr && route == Route::kFine &&
      outcome == FineOutcome::kOk) {
    prefetcher_->maybe_issue(pending_pred_);
  }
  return latency;
}

PipettePath::FineWriteOutcome PipettePath::try_fine_write(
    FileId file, int open_flags, std::uint64_t offset,
    std::span<const std::uint8_t> data) {
  using Out = FineWriteOutcome;
  if (!config_.fine_writes || !config_.use_cache) return Out::kNotTaken;
  if (!FineGrainedAccessDetector::permitted(open_flags)) return Out::kNotTaken;
  if (data.size() >= kBlockSize) return Out::kNotTaken;
  if (data.size() > ssd_.hmb().tempbuf().size()) return Out::kNotTaken;

  // Any spanned page that is dirty in the page cache holds newer bytes than
  // flash; a device-side RMW would resurrect stale data. Fall back to the
  // buffered block write, which merges correctly.
  const std::uint64_t first_page = offset / kBlockSize;
  const std::uint64_t last_page = (offset + data.size() - 1) / kBlockSize;
  for (std::uint64_t p = first_page; p <= last_page; ++p) {
    sim_.advance(timing_.page_cache_lookup);
    const CachedPage* cp = block_.page_cache().get({file, p});
    if (cp != nullptr && cp->dirty) return Out::kNotTaken;
  }
  // Clean resident copies become stale the moment the device writes; drop
  // them.
  for (std::uint64_t p = first_page; p <= last_page; ++p) {
    block_.page_cache().invalidate({file, p});
  }

  // FGRC: update an exact-match item in place (cache stays warm); any other
  // overlapping item is deleted, as in the read path's consistency rule.
  const FgKey key{file, offset, static_cast<std::uint32_t>(data.size())};
  sim_.advance(timing_.fgrc_lookup);
  if (fgrc_->update_in_place(key, data)) {
    ++pstats_.fgrc_inplace_updates;
    // Items overlapping but not equal must still go.
    fgrc_->invalidate_range(file, offset, data.size(), &key);
  } else {
    fgrc_->invalidate_range(file, offset, data.size());
  }

  // Constructor + Requester, write flavour: resolve the pages, ship only
  // the new bytes, let the device RMW internally.
  sim_.advance(timing_.fs_extent_lookup);
  lba_scratch_.clear();
  fs_.extract_lbas(file, offset, data.size(), lba_scratch_);
  Command cmd;
  cmd.op = Opcode::kFgWrite;
  cmd.write_data.assign(data.begin(), data.end());
  cmd.ranges = ssd_.take_fg_ranges();
  for (const LbaRange& r : lba_scratch_) {
    cmd.ranges.push_back({r.lba, r.offset, r.len, 0});
  }
  wait_done_ = false;
  const std::uint64_t ticket = ++wait_ticket_;
  ssd_.submit(std::move(cmd), [this, ticket](const CommandResult& r) {
    if (ticket != wait_ticket_) return;
    wait_result_ = r;
    wait_done_ = true;
  });
  if (!await_completion() || wait_result_.status != CmdStatus::kOk) {
    // The device-side RMW did not (fully) persist. Drop anything the cache
    // holds for this range — including the in-place update above — so later
    // reads cannot see bytes that never reached flash.
    fgrc_->invalidate_range(file, offset, data.size());
    return Out::kFailed;
  }
  ++pstats_.fine_writes;
  return Out::kOk;
}

SimDuration PipettePath::write(FileId file, int open_flags,
                               std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.syscall + timing_.vfs_lookup);
  }

  switch (try_fine_write(file, open_flags, offset, data)) {
    case FineWriteOutcome::kOk:
      ++stats_.writes;
      return sim_.now() - t0;
    case FineWriteOutcome::kFailed:
      ++stats_.failed_writes;
      return sim_.now() - t0;
    case FineWriteOutcome::kNotTaken:
      break;
  }

  // §3.1.3: every write checks the fine-grained read cache and deletes the
  // found items, so later fine reads see either the page cache's fresh
  // copy or the post-flush flash state — never the stale cached bytes.
  sim_.advance(timing_.fgrc_lookup);
  fgrc_->invalidate_range(file, offset, data.size());
  if (block_.buffered_write(file, offset, data)) {
    ++pstats_.block_writes;
    ++stats_.writes;
  } else {
    ++stats_.failed_writes;
  }
  return sim_.now() - t0;
}

}  // namespace pipette
