// Shared base for the read-path implementations under comparison.
//
// Each path is an IoBackend: a read()/write() call executes the whole
// simulated kernel + device flow for one request, advancing the simulation
// clock, and returns the request's latency. Subclasses: BlockIoPath
// (conventional stack), TwoBSsdPath (CMB byte interface, MMIO or DMA mode),
// PipettePath (the paper's framework; optionally with the fine-grained
// read cache disabled).
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "des/simulator.h"
#include "fs/vfs.h"
#include "hostmem/host_timing.h"
#include "ssd/controller.h"

namespace pipette {

struct PathStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t failed_reads = 0;    // device fault the path couldn't mask
  std::uint64_t degraded_reads = 0;  // served, but via a fallback route
  std::uint64_t failed_writes = 0;
  LatencyHistogram read_latency;
};

class ReadPathBase : public IoBackend {
 public:
  ReadPathBase(Simulator& sim, SsdController& ssd, FileSystem& fs,
               HostTiming timing)
      : sim_(sim), ssd_(ssd), fs_(fs), timing_(timing) {}

  const PathStats& stats() const { return stats_; }

  /// Mean read latency so far, in nanoseconds.
  double mean_read_latency_ns() const {
    return stats_.read_latency.mean_ns();
  }

  /// Refuse a request without touching the device (fleet fail-fast when the
  /// owning shard is down): charges `latency` of host time and counts a
  /// failed read/write. Successful-read statistics are untouched.
  void reject_request(bool is_write, SimDuration latency) {
    sim_.advance(latency);
    if (is_write) {
      ++stats_.failed_writes;
    } else {
      ++stats_.failed_reads;
    }
  }

 protected:
  void note_read(std::uint64_t bytes, SimDuration latency) {
    ++stats_.reads;
    stats_.bytes_requested += bytes;
    stats_.read_latency.record(latency);
  }

  Simulator& sim_;
  SsdController& ssd_;
  FileSystem& fs_;
  HostTiming timing_;
  PathStats stats_;
};

}  // namespace pipette
