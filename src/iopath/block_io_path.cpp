#include "iopath/block_io_path.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/assert.h"
#include "obs/trace.h"

namespace pipette {

BlockIoPath::BlockIoPath(Simulator& sim, SsdController& ssd, FileSystem& fs,
                         HostTiming timing, std::uint64_t page_cache_bytes,
                         ReadaheadConfig ra)
    : ReadPathBase(sim, ssd, fs, timing),
      cache_(page_cache_bytes, ra),
      block_layer_(sim, ssd, timing) {
  // Dirty evictions write back through the block layer (reclaim stall is
  // charged to whoever triggered the eviction, as in the kernel).
  cache_.set_writeback([this](const PageKey& key, const std::uint8_t* data) {
    std::vector<LbaRange> ranges;
    fs_.extract_lbas(key.file_id, key.page * kBlockSize, kBlockSize, ranges);
    PIPETTE_ASSERT(ranges.size() == 1);
    block_layer_.write_page(ranges[0].lba, data);
  });
}

bool BlockIoPath::fetch_pages(FileId file,
                              const std::vector<std::uint64_t>& pages,
                              std::uint64_t last_demand_page) {
  if (pages.empty()) return true;
  // LBA extraction for the fetch set (one mapping pass, ext4 extent walk).
  {
    TraceScope extent_scope(sim_, Stage::kExtentLookup);
    sim_.advance(timing_.fs_extent_lookup);
  }
  std::vector<Lba> lbas;
  std::unordered_map<Lba, std::uint64_t> lba_to_page;
  lbas.reserve(pages.size());
  for (std::uint64_t page : pages) {
    std::vector<LbaRange> ranges;
    fs_.extract_lbas(file, page * kBlockSize, kBlockSize, ranges);
    PIPETTE_ASSERT(ranges.size() == 1);
    lbas.push_back(ranges[0].lba);
    lba_to_page.emplace(ranges[0].lba, page);
  }
  // Page allocation for everything about to enter the cache.
  sim_.advance(timing_.page_alloc * pages.size());
  return block_layer_.read_pages(
      std::move(lbas), [&](Lba lba, const std::uint8_t* data) {
        auto it = lba_to_page.find(lba);
        PIPETTE_ASSERT(it != lba_to_page.end());
        const std::uint64_t page = it->second;
        cache_.insert({file, page}, data, /*demand=*/page <= last_demand_page);
      });
}

void BlockIoPath::fetch_pages_async(FileId file,
                                    const std::vector<std::uint64_t>& pages) {
  // The kernel allocates read-ahead pages and builds the requests in the
  // reader's context (synchronous CPU cost), but does not wait for the I/O.
  {
    TraceScope extent_scope(sim_, Stage::kExtentLookup);
    sim_.advance(timing_.fs_extent_lookup);
  }
  std::vector<Lba> lbas;
  auto lba_to_page = std::make_shared<std::unordered_map<Lba, std::uint64_t>>();
  lbas.reserve(pages.size());
  for (std::uint64_t page : pages) {
    std::vector<LbaRange> ranges;
    fs_.extract_lbas(file, page * kBlockSize, kBlockSize, ranges);
    PIPETTE_ASSERT(ranges.size() == 1);
    lbas.push_back(ranges[0].lba);
    lba_to_page->emplace(ranges[0].lba, page);
  }
  sim_.advance(timing_.page_alloc * pages.size());
  for (std::uint64_t page : pages) inflight_.insert({file, page});
  block_layer_.read_pages_async(
      std::move(lbas), [this, file, lba_to_page](Lba lba,
                                                 const std::uint8_t* data) {
        auto it = lba_to_page->find(lba);
        PIPETTE_ASSERT(it != lba_to_page->end());
        // A page written or demand-fetched while this read-ahead was in
        // flight must not be clobbered with stale bytes. Null data marks a
        // failed run: retire the in-flight entry without inserting, so a
        // later demand read re-issues the I/O instead of hanging.
        if (data != nullptr && !cache_.contains({file, it->second})) {
          cache_.insert({file, it->second}, data, /*demand=*/false);
        }
        inflight_.erase({file, it->second});
      });
}

bool BlockIoPath::buffered_read(FileId file, std::uint64_t offset,
                                std::span<std::uint8_t> out) {
  const std::uint64_t first_page = offset / kBlockSize;
  const std::uint64_t last_page = (offset + out.size() - 1) / kBlockSize;
  const auto demand_pages =
      static_cast<std::uint32_t>(last_page - first_page + 1);

  // Consult the page cache for every page the request spans. Pages with a
  // read-ahead already in flight are waited on (lock_page), not re-read.
  std::vector<std::uint64_t> missing;
  std::vector<std::uint64_t> wait_for;
  {
    TraceScope probe(sim_, Stage::kPageCache);
    for (std::uint64_t p = first_page; p <= last_page; ++p) {
      sim_.advance(timing_.page_cache_lookup);
      if (cache_.lookup({file, p}) != nullptr) continue;
      if (inflight_.contains({file, p})) {
        wait_for.push_back(p);
      } else {
        missing.push_back(p);
      }
    }
  }
  for (std::uint64_t p : wait_for) {
    const PageKey key{file, p};
    const bool landed = sim_.run_until_condition(
        [&] { return !inflight_.contains(key); });
    PIPETTE_ASSERT_MSG(landed, "in-flight read-ahead never completed");
    // Rare: completed but instantly evicted (tiny cache) — fetch normally.
    if (!cache_.contains(key)) missing.push_back(p);
  }

  bool fetched_ok = true;
  if (!missing.empty()) {
    // Read-ahead planning keys off the first missing page. The demanded
    // pages block this read; the read-ahead window is fetched
    // asynchronously, like the kernel's async readahead.
    const std::uint32_t extra =
        cache_.plan_readahead({file, missing.front()}, demand_pages);
    const std::uint64_t file_pages =
        (fs_.inode(file).size + kBlockSize - 1) / kBlockSize;
    std::vector<std::uint64_t> ra;
    for (std::uint32_t i = 1; i <= extra; ++i) {
      const std::uint64_t p = last_page + i;
      if (p >= file_pages) break;
      if (!cache_.contains({file, p})) ra.push_back(p);
    }
    fetched_ok = fetch_pages(file, missing, last_page);
    if (!ra.empty()) fetch_pages_async(file, ra);
  }

  // Copy out of the page cache. Pages were just inserted, so they are
  // resident (MRU) unless capacity is smaller than the request span — or a
  // media error kept one from ever arriving.
  // Destructor records the partial span even on the unreadable-page return.
  TraceScope copy_scope(sim_, Stage::kHostCopy);
  std::uint64_t pos = offset;
  std::size_t copied = 0;
  while (copied < out.size()) {
    const std::uint64_t page = pos / kBlockSize;
    const std::uint32_t in_page = static_cast<std::uint32_t>(pos % kBlockSize);
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockSize - in_page, out.size() - copied));
    const CachedPage* cp = cache_.get({file, page});
    if (cp == nullptr && !fetched_ok) return false;  // unreadable page
    PIPETTE_ASSERT_MSG(cp != nullptr,
                       "page evicted before copy-out; page cache smaller "
                       "than a single request span");
    std::memcpy(out.data() + copied, cp->data.get() + in_page, take);
    sim_.advance(timing_.copy_cost(take));
    copied += take;
    pos += take;
  }
  return true;
}

SimDuration BlockIoPath::read(FileId file, int /*open_flags*/,
                              std::uint64_t offset,
                              std::span<std::uint8_t> out) {
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.syscall + timing_.vfs_lookup);
  }
  const bool ok = buffered_read(file, offset, out);
  const SimDuration latency = sim_.now() - t0;
  if (!ok) {
    ++stats_.failed_reads;
    return latency;
  }
  note_read(out.size(), latency);
  return latency;
}

bool BlockIoPath::buffered_write(FileId file, std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  // Buffered write: read-modify-write partial pages, overwrite full ones,
  // mark everything dirty. Writeback happens on eviction or sync().
  std::uint64_t pos = offset;
  std::size_t written = 0;
  while (written < data.size()) {
    const std::uint64_t page = pos / kBlockSize;
    const std::uint32_t in_page = static_cast<std::uint32_t>(pos % kBlockSize);
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockSize - in_page, data.size() - written));
    sim_.advance(timing_.page_cache_lookup);
    CachedPage* cp = cache_.lookup({file, page});
    if (cp == nullptr) {
      if (take == kBlockSize) {
        // Full overwrite: no need to read the old contents.
        std::vector<std::uint8_t> fresh(kBlockSize, 0);
        sim_.advance(timing_.page_alloc);
        cache_.insert({file, page}, fresh.data(), /*demand=*/true);
      } else {
        // Read-modify-write: an unreadable source page fails the write.
        if (!fetch_pages(file, {page}, page)) return false;
      }
      cp = cache_.get({file, page});
      PIPETTE_ASSERT(cp != nullptr);
    }
    std::memcpy(cp->data.get() + in_page, data.data() + written, take);
    sim_.advance(timing_.copy_cost(take));
    cache_.mark_dirty({file, page});
    written += take;
    pos += take;
  }
  return true;
}

SimDuration BlockIoPath::write(FileId file, int /*open_flags*/,
                               std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  const SimTime t0 = sim_.now();
  PIPETTE_TRACE_REQUEST(sim_);
  {
    TraceScope submit_scope(sim_, Stage::kHostSubmit);
    sim_.advance(timing_.syscall + timing_.vfs_lookup);
  }
  if (buffered_write(file, offset, data)) {
    ++stats_.writes;
  } else {
    ++stats_.failed_writes;
  }
  return sim_.now() - t0;
}

void BlockIoPath::sync() {
  cache_.flush([this](const PageKey& key, const std::uint8_t* data) {
    std::vector<LbaRange> ranges;
    fs_.extract_lbas(key.file_id, key.page * kBlockSize, kBlockSize, ranges);
    PIPETTE_ASSERT(ranges.size() == 1);
    block_layer_.write_page(ranges[0].lba, data);
  });
}

}  // namespace pipette
