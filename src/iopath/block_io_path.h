// The conventional block-based read path (paper §2.1, the dotted box of
// Fig. 2): VFS -> page cache (with read-ahead) -> generic block layer ->
// NVMe driver -> device. Serves as the baseline every figure normalises to,
// and as the block route inside PipettePath.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "blockio/block_layer.h"
#include "hostmem/page_cache.h"
#include "iopath/read_path.h"

namespace pipette {

class BlockIoPath : public ReadPathBase {
 public:
  BlockIoPath(Simulator& sim, SsdController& ssd, FileSystem& fs,
              HostTiming timing, std::uint64_t page_cache_bytes,
              ReadaheadConfig ra = {});

  SimDuration read(FileId file, int open_flags, std::uint64_t offset,
                   std::span<std::uint8_t> out) override;
  SimDuration write(FileId file, int open_flags, std::uint64_t offset,
                    std::span<const std::uint8_t> data) override;

  /// Write all dirty pages back to the device (fsync-like).
  void sync();

  PageCache& page_cache() { return cache_; }
  BlockLayer& block_layer() { return block_layer_; }

  /// The data-path work shared with PipettePath's block route: page-cache
  /// consult, read-ahead, fetch, and copy-out. Excludes syscall/VFS entry
  /// costs (the caller charges those). Returns false when a device media
  /// error left part of the request unreadable (`out` is then incomplete).
  bool buffered_read(FileId file, std::uint64_t offset,
                     std::span<std::uint8_t> out);
  bool buffered_write(FileId file, std::uint64_t offset,
                      std::span<const std::uint8_t> data);

 private:
  /// Fetch the given logical pages of `file` (plus nothing else) into the
  /// page cache; pages already resident are skipped. `demand_until` marks
  /// pages <= that index as demand-fetched (the rest are read-ahead).
  /// Returns false if any page failed with a media error (it stays absent).
  bool fetch_pages(FileId file, const std::vector<std::uint64_t>& pages,
                   std::uint64_t last_demand_page);

  /// Asynchronous read-ahead fetch: submits and returns; pages land in the
  /// cache when the device completes (unless superseded meanwhile).
  void fetch_pages_async(FileId file, const std::vector<std::uint64_t>& pages);

  PageCache cache_;
  BlockLayer block_layer_;
  /// Pages with an async read in flight. A demand read of such a page
  /// waits for the in-flight I/O (the kernel's lock_page) instead of
  /// issuing a duplicate device read.
  std::unordered_set<PageKey, PageKeyHash> inflight_;
};

}  // namespace pipette
