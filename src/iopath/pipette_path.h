// The Pipette read framework (paper §3, Fig. 2): the traditional block path
// kept unchanged next to a fine-grained path made of the Detector, the Read
// Dispatcher, the Fine-Grained Read Cache, the Constructor + LBA Extractor
// + Requester on the host, and the Fine-Grained Read Engine on the device.
//
// Request flow for a fine-grained read:
//   VFS -> page cache probe -> Detector (permission + access ranges)
//       -> FGRC lookup  --hit--> copy to user
//       -> miss: adaptive plan (cache item or TempBuf), Constructor asks the
//          LBA Extractor for the pages holding the range (bypassing the
//          generic block layer), pushes Info Area records with destination
//          addresses, and the Requester submits one FG_READ command; the
//          device engine loads the NAND pages, consumes the records, and
//          DMAs only the demanded bytes into the HMB.
//
// With `use_cache == false` this models the paper's "Pipette w/o cache"
// baseline: every read (any size) takes the byte path and nothing is ever
// promoted, so I/O traffic equals exactly the requested bytes.
#pragma once

#include <memory>
#include <vector>

#include "iopath/block_io_path.h"
#include "pipette/detector.h"
#include "pipette/fgrc.h"
#include "pipette/prefetcher.h"

namespace pipette {

struct PipettePathConfig {
  FgrcConfig fgrc;
  DispatchConfig dispatch;
  std::uint64_t page_cache_bytes = 64ull * 1024 * 1024;
  ReadaheadConfig readahead;
  bool use_cache = true;  // false = "Pipette w/o cache" baseline
  // Speculative readahead on the fine path. Effective only with use_cache
  // (speculation places through the FGRC's adaptive machinery).
  PrefetchConfig prefetch;
  // Extension beyond the DAC'22 paper (CoinPurse-style, cited as the
  // complementary fine-grained *write* design): route small writes down
  // the byte path too. The device performs the read-modify-write
  // internally and the host sends only the new bytes; an exact-match FGRC
  // item is updated in place instead of invalidated.
  bool fine_writes = false;
};

struct PipettePathStats {
  std::uint64_t fine_reads = 0;
  std::uint64_t block_reads = 0;
  std::uint64_t page_cache_served_fine = 0;  // fine reads served by dirty/
                                             // resident page-cache pages
  std::uint64_t fine_writes = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t fgrc_inplace_updates = 0;
  std::uint64_t hmb_fault_fallbacks = 0;  // FG_READ hit an HMB fault and the
                                          // request degraded to the block path
  std::uint64_t lost_completions = 0;     // timeout guard fired on a dropped
                                          // FG_READ completion
};

class PipettePath : public ReadPathBase {
 public:
  PipettePath(Simulator& sim, SsdController& ssd, FileSystem& fs,
              HostTiming timing, PipettePathConfig config);

  SimDuration read(FileId file, int open_flags, std::uint64_t offset,
                   std::span<std::uint8_t> out) override;
  SimDuration write(FileId file, int open_flags, std::uint64_t offset,
                    std::span<const std::uint8_t> data) override;

  FineGrainedReadCache& fgrc() { return *fgrc_; }
  const FineGrainedAccessDetector& detector() const { return detector_; }
  /// Null when prefetching is disabled (or use_cache is off).
  const Prefetcher* prefetcher() const { return prefetcher_.get(); }
  Prefetcher* prefetcher() { return prefetcher_.get(); }
  BlockIoPath& block_route() { return block_; }
  const PipettePathStats& pipette_stats() const { return pstats_; }
  bool cache_enabled() const { return config_.use_cache; }

  /// Cold-restart support: rebuild the FGRC, dropping every cached item
  /// (the slab store re-carves the HMB Data Area from scratch) while
  /// preserving cumulative statistics.
  void reset_fgrc();

  /// Worker-arena support (cache-local fleet execution): a worker donates
  /// its warm LBA scratch before a shard run and takes it back afterwards,
  /// so capacity is reused across every shard the worker runs instead of
  /// re-grown per machine. Scratch is content-free between requests; only
  /// capacity moves, so behaviour is bit-identical with or without a donor.
  void adopt_lba_scratch(std::vector<LbaRange>&& scratch);
  std::vector<LbaRange> release_lba_scratch();

 private:
  enum class FineOutcome {
    kOk,        // request served through the intended route
    kDegraded,  // served, but only via the block-path fallback
    kFailed,    // device fault no route could mask
  };

  FineOutcome fine_read(FileId file, std::uint64_t offset,
                        std::span<std::uint8_t> out);

  enum class FineWriteOutcome { kNotTaken, kOk, kFailed };
  /// kNotTaken if the fine write path cannot take this request (routing +
  /// page cache dirtiness checks); otherwise performs it.
  FineWriteOutcome try_fine_write(FileId file, int open_flags,
                                  std::uint64_t offset,
                                  std::span<const std::uint8_t> data);

  /// Closed-loop wait for the submitted command, honouring the HMB timeout
  /// guard. Returns false if the guard expired with no completion (the
  /// completion's ticket is then stale and will be ignored on arrival).
  bool await_completion();

  /// Host cost of reading `bytes` out of the fine-grained buffer region: a
  /// plain memcpy when it lives in host DRAM (HMB), a far-memory load over
  /// the dedicated link when it lives on a CXL device (LMB).
  SimDuration buffer_read_cost(std::uint64_t bytes) const;

  PipettePathConfig config_;
  BlockIoPath block_;  // the unchanged traditional path
  FineGrainedAccessDetector detector_;
  std::unique_ptr<FineGrainedReadCache> fgrc_;
  std::unique_ptr<Prefetcher> prefetcher_;
  // Classifier verdict of the current request, issued (as speculative
  // commands) only after the demand latency has been captured.
  StreamPrediction pending_pred_;
  PipettePathStats pstats_;
  // Scratch for the LBA Extractor, reused across requests so the per-read
  // hot path performs no heap allocation in steady state (Command::ranges
  // is likewise recycled through the controller's FgRange pool).
  std::vector<LbaRange> lba_scratch_;
  // Submit-and-wait state for closed-loop commands. The ticket
  // distinguishes the current wait from one that timed out: a completion
  // arriving after its wait was abandoned carries a stale ticket and is
  // dropped instead of scribbling on long-gone state.
  std::uint64_t wait_ticket_ = 0;
  bool wait_done_ = false;
  CommandResult wait_result_{};
};

}  // namespace pipette
