// The 2B-SSD baseline (Bae et al., ISCA'18; paper §2.2 and §4.1): a dual
// byte/block interface SSD whose byte path stages flash pages in the CMB
// and lets the host pull bytes over the PCIe BAR. Two modes:
//   * MMIO — the CPU issues uncached reads against the BAR window; each
//     transaction moves at most 8 bytes and is a full non-posted round
//     trip, so latency grows linearly with request size.
//   * DMA  — the device masters a transfer into host memory, but a DMA
//     mapping must be set up (and torn down) around every access, which
//     sits on the critical path.
// 2B-SSD "simply bypasses the I/O stack, without supporting data locality":
// there is no host-side cache of any kind, and every read — regardless of
// size — travels the byte interface, so I/O traffic equals exactly the
// bytes requested.
#pragma once

#include "iopath/read_path.h"

namespace pipette {

enum class TwoBMode { kMmio, kDma };

class TwoBSsdPath : public ReadPathBase {
 public:
  TwoBSsdPath(Simulator& sim, SsdController& ssd, FileSystem& fs,
              HostTiming timing, TwoBMode mode)
      : ReadPathBase(sim, ssd, fs, timing), mode_(mode) {}

  SimDuration read(FileId file, int open_flags, std::uint64_t offset,
                   std::span<std::uint8_t> out) override;
  SimDuration write(FileId file, int open_flags, std::uint64_t offset,
                    std::span<const std::uint8_t> data) override;

  TwoBMode mode() const { return mode_; }

 private:
  TwoBMode mode_;
};

}  // namespace pipette
