#include "ssd/disk_content.h"

#include <cstring>

#include "common/assert.h"
#include "common/bytes.h"

namespace pipette {

void DiskContent::read(Lba lba, std::uint32_t offset,
                       std::span<std::uint8_t> out) const {
  PIPETTE_ASSERT(offset + out.size() <= kBlockSize);
  auto it = overlay_.find(lba);
  if (it != overlay_.end()) {
    std::memcpy(out.data(), it->second->data() + offset, out.size());
    return;
  }
  fill_pattern(out, seed_ ^ lba, offset);
}

void DiskContent::write(Lba lba, std::uint32_t offset,
                        std::span<const std::uint8_t> in) {
  PIPETTE_ASSERT(offset + in.size() <= kBlockSize);
  auto it = overlay_.find(lba);
  if (it == overlay_.end()) {
    auto block = std::make_unique<Block>();
    fill_pattern(std::span<std::uint8_t>(block->data(), kBlockSize),
                 seed_ ^ lba, 0);
    it = overlay_.emplace(lba, std::move(block)).first;
  }
  std::memcpy(it->second->data() + offset, in.data(), in.size());
}

std::uint8_t DiskContent::pristine_byte(Lba lba, std::uint32_t offset) const {
  PIPETTE_ASSERT(offset < kBlockSize);
  return pattern_byte(seed_ ^ lba, offset);
}

}  // namespace pipette
