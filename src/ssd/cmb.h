// Controller Memory Buffer — the device-side staging window used by the
// 2B-SSD baseline (§2.2): the controller reads flash pages into the CMB, and
// the host then pulls bytes out over the PCIe BAR via MMIO or DMA. The CMB
// is a pool of page slots recycled round-robin (the paper's 64 MB "mapping
// region"); we model a smaller pool because the host copies data out
// synchronously before the slot can be reused.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ssd/types.h"

namespace pipette {

class Cmb {
 public:
  explicit Cmb(std::uint32_t page_slots = 64);

  /// Claim the next slot (round-robin) for an incoming page; returns slot id.
  std::uint32_t claim_slot();

  /// Device-side fill of a slot.
  void fill(std::uint32_t slot, std::span<const std::uint8_t> page);

  /// Host-visible bytes of a slot (MMIO window view).
  std::span<const std::uint8_t> slot(std::uint32_t slot) const;

  std::uint32_t slots() const { return slots_; }

 private:
  std::uint32_t slots_;
  std::uint32_t next_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace pipette
