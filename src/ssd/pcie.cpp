#include "ssd/pcie.h"

#include <algorithm>

namespace pipette {

const char* to_string(InterconnectKind k) {
  switch (k) {
    case InterconnectKind::kHmb:
      return "hmb";
    case InterconnectKind::kLmb:
      return "lmb";
  }
  return "?";
}

void PcieLink::dma(std::uint64_t bytes, Simulator::Callback on_done,
                   Stage stage) {
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime end =
      start + timing_.dma_overhead +
      static_cast<SimDuration>(timing_.dma_ns_per_byte *
                               static_cast<double>(bytes));
  busy_until_ = end;
  ++dma_transfers_;
  dma_bytes_ += bytes;
  pcie_usage_.record(sim_.now(), sim_.now(), start, end);
  // Span includes time queued behind in-flight transfers on the shared
  // link, not just the wire time — link contention is the point.
  PIPETTE_TRACE_SPAN(sim_, stage, sim_.now(), end);
  sim_.schedule_at(end, std::move(on_done));
}

void PcieLink::dma_lmb(std::uint64_t bytes, Simulator::Callback on_done) {
  const SimTime start = std::max(sim_.now(), lmb_busy_until_);
  const SimTime end =
      start + lmb_.dma_overhead +
      static_cast<SimDuration>(lmb_.dma_ns_per_byte *
                               static_cast<double>(bytes));
  lmb_busy_until_ = end;
  ++lmb_transfers_;
  lmb_bytes_ += bytes;
  lmb_usage_.record(sim_.now(), sim_.now(), start, end);
  PIPETTE_TRACE_SPAN(sim_, Stage::kLmbDma, sim_.now(), end);
  sim_.schedule_at(end, std::move(on_done));
}

SimDuration PcieLink::mmio_read_cost(std::uint64_t bytes) const {
  const std::uint64_t txs =
      (bytes + timing_.mmio_tx_bytes - 1) / timing_.mmio_tx_bytes;
  return txs * timing_.mmio_read_per_tx;
}

SimDuration PcieLink::dma_cost(std::uint64_t bytes) const {
  return timing_.dma_overhead +
         static_cast<SimDuration>(timing_.dma_ns_per_byte *
                                  static_cast<double>(bytes));
}

}  // namespace pipette
