// SSD controller: NVMe command processing, device DRAM read buffer, and the
// device-side Fine-Grained Read Engine (paper §3.1.2, Fig. 4).
//
// Commands arrive through submit(): a submission cost models the driver/SQ
// doorbell/fetch path, a firmware cost models the controller's 2-core FTL
// work, then the opcode-specific flow runs on the discrete-event simulator:
//
//  kRead       block read of nlb pages -> NAND (parallel across dies) ->
//              one DMA of nlb*4KiB to the host buffer.
//  kWrite      block write -> content overlay update -> NAND programs.
//  kFgRead     the Fine-Grained Read Engine: (1) load each distinct NAND
//              page into the read buffer, (2) consume the matching Info Area
//              records to learn destination addresses, (3) extract the
//              demanded ranges and DMA each to its HMB destination, then
//              bump the Info Area head.
//  kReadToCmb  2B-SSD support: load one page into a CMB slot; the host then
//              pulls bytes out via MMIO or DMA (host-side cost).
//
// The device DRAM read buffer is an LRU page cache in controller memory
// (Fig. 5's "Max DDR size 4GB"); all read flows consult it, which is what
// lets repeated fine-grained reads skip the NAND tR.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/inline_function.h"
#include "common/lru.h"
#include "common/stats.h"
#include "des/simulator.h"
#include "faults/faults.h"
#include "nand/nand.h"
#include "ssd/cmb.h"
#include "ssd/disk_content.h"
#include "ssd/ftl.h"
#include "ssd/hmb.h"
#include "ssd/pcie.h"
#include "ssd/types.h"

namespace pipette {

enum class Opcode { kRead, kWrite, kFgRead, kFgWrite, kReadToCmb };

/// One fine-grained range of a kFgRead command. `info_index` is the
/// monotonic Info Area index the host pushed for this range.
struct FgRange {
  Lba lba = kInvalidLba;
  std::uint32_t offset = 0;  // byte offset within the 4 KiB block
  std::uint32_t len = 0;
  std::uint64_t info_index = 0;
};

struct Command {
  Opcode op = Opcode::kRead;
  Lba lba = 0;
  std::uint32_t nlb = 1;
  std::span<std::uint8_t> host_dest;       // kRead: where data lands
  std::vector<std::uint8_t> write_data;    // kWrite/kFgWrite: payload
  std::vector<FgRange> ranges;             // kFgRead/kFgWrite: byte ranges;
                                           // for kFgWrite the payload bytes
                                           // of range i are consecutive in
                                           // write_data (info_index unused)
};

/// Terminal status of a command. kMediaError: a NAND page exhausted its
/// read-retry budget (the payload never materialised). kHmbFault: the
/// fine-grained engine could not reach its HMB destinations; the host should
/// fall back to the block path.
enum class CmdStatus : std::uint8_t { kOk, kMediaError, kHmbFault };

const char* to_string(CmdStatus s);

struct CommandResult {
  SimTime completed_at = 0;
  std::uint32_t cmb_slot = 0;  // kReadToCmb: slot holding the page
  CmdStatus status = CmdStatus::kOk;  // fits the existing padding: still 16B
};

struct ControllerTiming {
  SimDuration submission = 700;        // driver + doorbell + fetch
  SimDuration completion = 500;        // CQ entry + interrupt/poll
  SimDuration firmware_per_cmd = 1200; // FTL lookup + scheduling
  SimDuration firmware_per_range = 250;  // range extraction in the engine
};

struct ControllerConfig {
  NandGeometry geometry;
  NandTiming nand_timing;
  FaultPlan faults;
  PcieTiming pcie;
  ControllerTiming timing;
  std::uint64_t lba_count = 0;             // 0 = max addressable
  /// FTL mapping unit in bytes (512 <= MU <= page, must divide the page);
  /// 0 = page-granular mapping (the legacy, golden-pinned behaviour).
  std::uint32_t mapping_unit = 0;
  std::uint64_t read_buffer_bytes = 1 * kGiB;  // device DRAM page buffer
  // Whether the block-read flow consults the device DRAM buffer. A standard
  // NVMe data path does not cache payload in controller DRAM (it holds FTL
  // state), while the fine-grained firmware keeps its mapping region of
  // recently loaded pages resident — the asymmetry 2B-SSD and Pipette rely
  // on. Enable to ablate.
  bool block_reads_use_buffer = false;
  std::uint32_t cmb_slots = 64;
  Hmb::Layout hmb;
  // Which link carries fine-grained fills. kHmb: PCIe DMA into host DRAM
  // (the paper's baseline). kLmb: a CXL-linked memory buffer with its own
  // timing (`lmb`) and a dedicated link — the Hmb object then models the
  // LMB's Info/TempBuf/Data layout, living on the CXL device instead of in
  // host DRAM. Block reads/writes stay on PCIe either way.
  InterconnectKind interconnect = InterconnectKind::kHmb;
  LmbTiming lmb;
  std::uint64_t content_seed = 0xd15c;
};

struct ControllerStats {
  std::uint64_t commands = 0;
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t fg_reads = 0;
  std::uint64_t fg_ranges = 0;
  std::uint64_t fg_writes = 0;
  std::uint64_t cmb_reads = 0;
  std::uint64_t bytes_to_host = 0;    // read I/O traffic, the paper's metric
  std::uint64_t bytes_from_host = 0;  // write payload traffic
  std::uint64_t media_errors = 0;     // terminal NAND ECC failures
  std::uint64_t hmb_dma_faults = 0;   // injected HMB/DMA engine faults
  std::uint64_t dropped_completions = 0;  // injected lost CQ entries
  RatioCounter read_buffer;         // device DRAM buffer hit ratio
};

class SsdController {
 public:
  using Completion = std::function<void(const CommandResult&)>;

  SsdController(Simulator& sim, const ControllerConfig& config);
  ~SsdController();  // out-of-line: job pool types are private/incomplete

  /// Submit a command; `done` runs at completion time on the simulator.
  void submit(Command cmd, Completion done);

  /// Host-side pull of `out.size()` bytes from a CMB slot starting at
  /// `offset` (2B-SSD). Copies the bytes and returns the host-synchronous
  /// cost (MMIO transactions, or DMA setup+transfer when `via_dma`).
  SimDuration read_from_cmb(std::uint32_t slot, std::uint32_t offset,
                            std::span<std::uint8_t> out, bool via_dma);

  Hmb& hmb() { return hmb_; }
  DiskContent& content() { return content_; }
  const NandArray& nand() const { return nand_; }
  /// Mutable access for the utilization exporters (depth sweeps drain
  /// lazily, so reading the accounts advances observer-only state).
  NandArray& nand() { return nand_; }
  const Ftl& ftl() const { return ftl_; }
  PcieLink& pcie() { return pcie_; }
  const ControllerStats& stats() const { return stats_; }
  const ControllerConfig& config() const { return config_; }
  const FaultInjector& hmb_fault_injector() const { return hmb_faults_; }

  /// Account device->host bytes moved outside submit() flows (CMB pulls).
  void add_host_traffic(std::uint64_t bytes) { stats_.bytes_to_host += bytes; }

  /// Recycled FgRange buffer (empty, capacity retained): hosts building
  /// fine-grained commands take one here instead of allocating per request;
  /// the controller reclaims the vector when the command retires.
  std::vector<FgRange> take_fg_ranges();

  /// Time-weighted occupancy of the GC page buffer: victim-page reads GC
  /// has issued whose data has not yet landed in controller DRAM (passive
  /// account; obs/util.h).
  OccupancyIntegrator& gc_buffer_occupancy() { return gc_buffer_occ_; }

  /// Worker-arena support (cache-local fleet execution): donate a warm
  /// FgRange pool before a shard run / reclaim it afterwards, so one
  /// worker's pool capacity serves every shard it runs. Pools hold only
  /// empty spare vectors, so adoption cannot change simulated behaviour.
  void adopt_fg_range_pool(std::vector<std::vector<FgRange>>&& pool);
  std::vector<std::vector<FgRange>> release_fg_range_pool();

 private:
  // Every lambda the controller schedules on the simulator must stay under
  // the Simulator::Callback small-buffer limit, or each event heap-allocates
  // again. Per-command state (the Command itself, the host completion,
  // fan-in counters, the by-page range grouping) therefore lives in pooled
  // job records, and the scheduled closures capture only {this, job pointer}
  // or {this, small index} — a few machine words. Note Completion stays a
  // std::function on purpose: at 32 bytes it nests inside a Callback capture
  // together with a CommandResult (48 bytes total, exactly the SBO limit),
  // which an SBO'd completion type could not.
  struct FgJob;
  struct BlockJob;

  /// Staging continuation: receives whether the page actually landed in the
  /// buffer (false after a terminal NAND media error). Same SBO budget as
  /// the simulator's event callbacks.
  using StageCallback = InlineFunction<void(bool), 48>;

  /// Ensure the page of `lba` is in the device read buffer; `ready` runs
  /// (possibly immediately) once it is. When `use_buffer` is false the page
  /// is always sensed from NAND and not retained.
  void stage_page(Lba lba, StageCallback ready, bool use_buffer = true);

  /// Execute any relocations the FTL's GC queued (background NAND work)
  /// and forward its erases to the NAND wear model. With MU < page the
  /// relocations arrive decoupled: per-page buffer reads (live MUs only)
  /// fan into a batch that then issues the merged GC programs.
  void perform_gc_moves();

  /// Drain the FTL's sealed host pages into NAND programs. `on_program`
  /// runs at each program's completion (fire-and-forget paths pass {}).
  template <typename Fn>
  void issue_host_programs(Fn&& on_program);

  /// Fine-grained fill transfer on the configured interconnect: PCIe DMA
  /// into the HMB, or the dedicated CXL link into the LMB.
  void fine_dma(std::uint64_t bytes, Simulator::Callback on_done);

  void do_block_read(Command cmd, Completion done);
  void do_block_write(Command cmd, Completion done);
  void do_fg_read(Command cmd, Completion done);
  void do_fg_write(Command cmd, Completion done);
  void do_read_to_cmb(Command cmd, Completion done);

  void complete(Completion& done, CommandResult result);

  /// Group job->cmd.ranges by page into job->by_page (sorted by Lba, ranges
  /// in submission order within a page — the legacy std::map iteration
  /// order). With `with_offsets`, each entry also records the byte offset
  /// of its payload within cmd.write_data (kFgWrite).
  void group_ranges_by_page(FgJob& job, bool with_offsets);

  FgJob* acquire_fg_job(Command cmd, Completion done);
  void release_fg_job(FgJob* job);
  void fg_range_done(FgJob* job);

  BlockJob* acquire_block_job(Command cmd, Completion done);
  void finish_block_job(BlockJob* job, CmdStatus status);

  std::uint32_t acquire_stage_slot(StageCallback ready);

  Simulator& sim_;
  ControllerConfig config_;
  DiskContent content_;
  NandArray nand_;
  Ftl ftl_;
  PcieLink pcie_;
  Hmb hmb_;
  Cmb cmb_;
  FaultInjector hmb_faults_;  // kHmbDma sub-stream of config.faults.seed
  void recycle_fg_ranges(std::vector<FgRange>&& ranges);

  LruMap<Lba, char> read_buffer_;  // presence set over device DRAM pages
  ControllerStats stats_;
  std::vector<std::vector<FgRange>> fg_range_pool_;

  // Command submissions parked between submit() and the firmware event.
  struct PendingCmd {
    Command cmd;
    Completion done;
  };
  std::vector<PendingCmd> pending_cmds_;
  std::vector<std::uint32_t> pending_free_;

  // In-flight job pools (unique_ptr slabs keep job pointers stable while
  // the free lists make the steady state allocation-free).
  std::vector<std::unique_ptr<FgJob>> fg_job_pool_;
  std::vector<FgJob*> fg_job_free_;
  std::vector<std::unique_ptr<BlockJob>> block_job_pool_;
  std::vector<BlockJob*> block_job_free_;

  // Parked `ready` continuations of stage_page() NAND reads. The slot also
  // carries the read's verdict: read_page() decides success at submission,
  // the parked continuation observes it at completion. With MU < page an
  // LBA's mapping units may sit on several physical pages, so the slot
  // fans in `pending` NAND reads before running `ready`.
  struct StageSlot {
    StageCallback ready;
    bool ok = true;
    std::uint32_t pending = 1;
  };
  std::vector<StageSlot> stage_slots_;
  std::vector<std::uint32_t> stage_free_;

  // One in-flight decoupled GC episode (MU < page): the page-buffer reads
  // fan in, then the merged programs issue. Pooled like the job records.
  struct GcBatch {
    std::uint32_t reads_pending = 0;
    std::vector<PageProgram> programs;
  };
  std::vector<GcBatch> gc_batches_;
  std::vector<std::uint32_t> gc_batch_free_;
  OccupancyIntegrator gc_buffer_occ_;
  std::uint32_t gc_buffer_level_ = 0;

  // Drain scratch (capacity retained across calls; never held across a
  // re-entrant controller call).
  std::vector<PageProgram> program_scratch_;
  std::vector<MuPageRead> gc_read_scratch_;
  std::vector<std::uint32_t> erase_scratch_;
  std::vector<MuPageRead> stage_pages_scratch_;
};

template <typename Fn>
void SsdController::issue_host_programs(Fn&& on_program) {
  ftl_.drain_host_programs(program_scratch_);
  for (const PageProgram& p : program_scratch_) on_program(p);
}

}  // namespace pipette
