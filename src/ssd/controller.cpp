#include "ssd/controller.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace pipette {

namespace {
std::uint64_t resolve_lba_count(const ControllerConfig& config) {
  if (config.lba_count != 0) return config.lba_count;
  const std::uint64_t total = config.geometry.total_pages();
  return total - total / 8;
}
}  // namespace

const char* to_string(CmdStatus s) {
  switch (s) {
    case CmdStatus::kOk:
      return "ok";
    case CmdStatus::kMediaError:
      return "media-error";
    case CmdStatus::kHmbFault:
      return "hmb-fault";
  }
  return "?";
}

// Shared state of one in-flight fine-grained command. Pooled: the record is
// reused across commands, so the by-page grouping keeps its vector
// capacities and the steady state allocates nothing.
struct SsdController::FgJob {
  Command cmd;
  Completion done;
  std::uint32_t pages_pending = 0;
  std::uint32_t ranges_pending = 0;
  bool media_failed = false;      // some page exhausted its retry budget
  bool drop_completion = false;   // injected lost CQ entry for this command

  struct PageGroup {
    Lba lba = kInvalidLba;
    // Range pointer into cmd.ranges (stable: the vector is not resized
    // after grouping) + byte offset of its payload within cmd.write_data
    // (kFgWrite only; 0 for reads).
    std::vector<std::pair<const FgRange*, std::uint64_t>> ranges;
  };
  std::vector<PageGroup> by_page;
  std::size_t pages_used = 0;  // by_page[0..pages_used) are this command's
};

// Shared state of one in-flight block read/write: the command, the host
// completion and the pages-outstanding fan-in counter.
struct SsdController::BlockJob {
  Command cmd;
  Completion done;
  std::uint32_t remaining = 0;
  bool failed = false;  // some page exhausted its retry budget
};

SsdController::SsdController(Simulator& sim, const ControllerConfig& config)
    : sim_(sim),
      config_(config),
      content_(config.content_seed),
      nand_(sim, config.geometry, config.nand_timing, config.faults.nand,
            config.faults.seed),
      ftl_(config.geometry, resolve_lba_count(config), config.mapping_unit),
      pcie_(sim, config.pcie, config.lmb),
      hmb_(config.hmb),
      cmb_(config.cmb_slots),
      hmb_faults_(config.faults.seed, FaultDomain::kHmbDma),
      read_buffer_(std::max<std::uint64_t>(
          1, config.read_buffer_bytes / kBlockSize)) {}

SsdController::~SsdController() = default;

void SsdController::submit(Command cmd, Completion done) {
  ++stats_.commands;
  // Submission path: host driver builds the SQE, rings the doorbell, the
  // controller fetches the command; firmware then begins processing. The
  // command parks in a pooled slot so the scheduled closure captures only
  // {this, slot} and stays within the callback's inline buffer.
  const SimDuration entry =
      config_.timing.submission + config_.timing.firmware_per_cmd;
  PIPETTE_TRACE_SPAN(sim_, Stage::kQueue, sim_.now(),
                     sim_.now() + config_.timing.submission);
  PIPETTE_TRACE_SPAN(sim_, Stage::kFtl,
                     sim_.now() + config_.timing.submission,
                     sim_.now() + entry);
  std::uint32_t slot;
  if (!pending_free_.empty()) {
    slot = pending_free_.back();
    pending_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pending_cmds_.size());
    pending_cmds_.emplace_back();
  }
  pending_cmds_[slot].cmd = std::move(cmd);
  pending_cmds_[slot].done = std::move(done);
  sim_.schedule(entry, [this, slot]() {
    PendingCmd& parked = pending_cmds_[slot];
    Command cmd = std::move(parked.cmd);
    Completion done = std::move(parked.done);
    pending_free_.push_back(slot);
    switch (cmd.op) {
      case Opcode::kRead:
        do_block_read(std::move(cmd), std::move(done));
        break;
      case Opcode::kWrite:
        do_block_write(std::move(cmd), std::move(done));
        break;
      case Opcode::kFgRead:
        do_fg_read(std::move(cmd), std::move(done));
        break;
      case Opcode::kFgWrite:
        do_fg_write(std::move(cmd), std::move(done));
        break;
      case Opcode::kReadToCmb:
        do_read_to_cmb(std::move(cmd), std::move(done));
        break;
    }
  });
}

std::vector<FgRange> SsdController::take_fg_ranges() {
  if (fg_range_pool_.empty()) return {};
  std::vector<FgRange> out = std::move(fg_range_pool_.back());
  fg_range_pool_.pop_back();
  return out;
}

void SsdController::adopt_fg_range_pool(
    std::vector<std::vector<FgRange>>&& pool) {
  // Keep whichever pool is warmer; spares are empty either way.
  if (pool.size() > fg_range_pool_.size()) fg_range_pool_ = std::move(pool);
}

std::vector<std::vector<FgRange>> SsdController::release_fg_range_pool() {
  std::vector<std::vector<FgRange>> out = std::move(fg_range_pool_);
  fg_range_pool_.clear();
  return out;
}

void SsdController::recycle_fg_ranges(std::vector<FgRange>&& ranges) {
  if (ranges.capacity() == 0) return;
  ranges.clear();
  // A handful of buffers covers every in-flight fine-grained command; the
  // cap only guards against a pathological burst pinning memory.
  if (fg_range_pool_.size() < 64) fg_range_pool_.push_back(std::move(ranges));
}

void SsdController::fine_dma(std::uint64_t bytes,
                             Simulator::Callback on_done) {
  if (config_.interconnect == InterconnectKind::kLmb) {
    pcie_.dma_lmb(bytes, std::move(on_done));
  } else {
    pcie_.dma(bytes, std::move(on_done), Stage::kHmbDma);
  }
}

void SsdController::complete(Completion& done, CommandResult result) {
  PIPETTE_TRACE_SPAN(sim_, Stage::kComplete, sim_.now(),
                     sim_.now() + config_.timing.completion);
  sim_.schedule(config_.timing.completion,
                [done = std::move(done), result]() { done(result); });
}

std::uint32_t SsdController::acquire_stage_slot(StageCallback ready) {
  std::uint32_t slot;
  if (!stage_free_.empty()) {
    slot = stage_free_.back();
    stage_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(stage_slots_.size());
    stage_slots_.emplace_back();
  }
  stage_slots_[slot].ready = std::move(ready);
  stage_slots_[slot].ok = true;
  stage_slots_[slot].pending = 1;
  return slot;
}

void SsdController::stage_page(Lba lba, StageCallback ready,
                               bool use_buffer) {
  PIPETTE_ASSERT(lba < ftl_.lba_count());
  if (use_buffer) {
    if (read_buffer_.find(lba) != nullptr) {
      stats_.read_buffer.record(true);
      ready(true);
      return;
    }
    stats_.read_buffer.record(false);
  }
  ftl_.note_read();
  if (ftl_.slots_per_page() == 1) {
    const PhysPageAddr addr = ftl_.lookup(lba);
    // Park `ready` (itself a full-size callback) in a pooled slot so the
    // NAND completion closure does not nest one callback inside another.
    const std::uint32_t slot = acquire_stage_slot(std::move(ready));
    const NandReadOutcome outcome =
        nand_.read_page(addr, [this, lba, slot, use_buffer]() {
          StageSlot& parked = stage_slots_[slot];
          const bool ok = parked.ok;
          if (ok && use_buffer) read_buffer_.insert(lba, 0);
          StageCallback ready = std::move(parked.ready);
          stage_free_.push_back(slot);
          ready(ok);
        });
    if (outcome.failed) {
      stage_slots_[slot].ok = false;
      ++stats_.media_errors;
    }
    return;
  }
  // MU-mapped device: partial writes may have scattered the LBA's MUs over
  // several physical pages. Sense every holder (each transferring only its
  // MUs' bytes) and fan the reads into the parked slot; the page counts as
  // staged when the last one lands.
  ftl_.lookup_pages(lba, stage_pages_scratch_);
  const std::uint32_t slot = acquire_stage_slot(std::move(ready));
  stage_slots_[slot].pending =
      static_cast<std::uint32_t>(stage_pages_scratch_.size());
  for (const MuPageRead& r : stage_pages_scratch_) {
    const NandReadOutcome outcome =
        nand_.read_page(r.addr, [this, lba, slot, use_buffer]() {
          StageSlot& parked = stage_slots_[slot];
          if (--parked.pending > 0) return;
          const bool ok = parked.ok;
          if (ok && use_buffer) read_buffer_.insert(lba, 0);
          StageCallback ready = std::move(parked.ready);
          stage_free_.push_back(slot);
          ready(ok);
        }, r.bytes);
    if (outcome.failed) {
      stage_slots_[slot].ok = false;
      ++stats_.media_errors;
    }
  }
}

SsdController::BlockJob* SsdController::acquire_block_job(Command cmd,
                                                          Completion done) {
  BlockJob* job;
  if (!block_job_free_.empty()) {
    job = block_job_free_.back();
    block_job_free_.pop_back();
  } else {
    block_job_pool_.push_back(std::make_unique<BlockJob>());
    job = block_job_pool_.back().get();
  }
  job->cmd = std::move(cmd);
  job->done = std::move(done);
  job->remaining = 0;
  job->failed = false;
  return job;
}

void SsdController::finish_block_job(BlockJob* job, CmdStatus status) {
  Completion done = std::move(job->done);
  job->cmd = Command{};
  block_job_free_.push_back(job);
  complete(done, CommandResult{sim_.now(), 0, status});
}

void SsdController::do_block_read(Command cmd, Completion done) {
  ++stats_.block_reads;
  PIPETTE_ASSERT(cmd.nlb >= 1);
  PIPETTE_ASSERT(cmd.host_dest.size() >=
                 static_cast<std::size_t>(cmd.nlb) * kBlockSize);

  // Stage every page into the device buffer (NAND reads run in parallel
  // across dies), then move the whole payload to the host in one DMA.
  BlockJob* job = acquire_block_job(std::move(cmd), std::move(done));
  job->remaining = job->cmd.nlb;
  for (std::uint32_t i = 0; i < job->cmd.nlb; ++i) {
    stage_page(
        job->cmd.lba + i,
        [this, job](bool ok) {
          if (!ok) job->failed = true;
          if (--job->remaining > 0) return;
          if (job->failed) {
            // A page never materialised: fail the whole command without
            // moving any payload to the host.
            finish_block_job(job, CmdStatus::kMediaError);
            return;
          }
          const std::uint64_t bytes =
              static_cast<std::uint64_t>(job->cmd.nlb) * kBlockSize;
          pcie_.dma(bytes, [this, job, bytes]() {
            for (std::uint32_t p = 0; p < job->cmd.nlb; ++p) {
              content_.read(job->cmd.lba + p, 0,
                            job->cmd.host_dest.subspan(
                                static_cast<std::size_t>(p) * kBlockSize,
                                kBlockSize));
            }
            stats_.bytes_to_host += bytes;
            finish_block_job(job, CmdStatus::kOk);
          });
        },
        config_.block_reads_use_buffer);
  }
}

void SsdController::do_block_write(Command cmd, Completion done) {
  ++stats_.block_writes;
  PIPETTE_ASSERT(cmd.write_data.size() ==
                 static_cast<std::size_t>(cmd.nlb) * kBlockSize);
  // Content lands in the overlay at firmware time; programs then persist it.
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    content_.write(cmd.lba + i, 0,
                   std::span<const std::uint8_t>(
                       cmd.write_data.data() +
                           static_cast<std::size_t>(i) * kBlockSize,
                       kBlockSize));
    // The freshly written page supersedes any stale copy in device DRAM;
    // keep the buffer coherent by dropping it (next read re-stages).
    read_buffer_.erase(cmd.lba + i);
  }
  BlockJob* job = acquire_block_job(std::move(cmd), std::move(done));
  // With MU < page a write seals 0..2 pages (the rest of its MUs wait in
  // the controller write cache for later merges), so the fan-in counts
  // issued programs plus an issuance guard; the command completes when the
  // last program lands — or immediately at the write-cache ack if nothing
  // sealed. With MU = page every write seals exactly one page and this is
  // the classic one-program-per-LBA flow.
  job->remaining = 1;
  for (std::uint32_t i = 0; i < job->cmd.nlb; ++i) {
    ftl_.update(job->cmd.lba + i);
    perform_gc_moves();
    issue_host_programs([this, job](const PageProgram& p) {
      ++job->remaining;
      nand_.program_page(p.addr, [this, job]() {
        if (--job->remaining == 0) finish_block_job(job, CmdStatus::kOk);
      });
    });
  }
  if (--job->remaining == 0) finish_block_job(job, CmdStatus::kOk);
}

void SsdController::perform_gc_moves() {
  // GC relocations occupy dies and channels in the background; the host
  // command does not wait for them, but subsequent operations queue behind
  // the busy hardware — write amplification becomes visible as time.
  for (const GcMove& move : ftl_.take_gc_moves()) {
    gc_buffer_occ_.update(sim_.now(), ++gc_buffer_level_);
    nand_.read_page(
        move.from,
        [this, move]() {
          nand_.program_page(move.to, [] {}, NandOpClass::kGc);
          gc_buffer_occ_.update(sim_.now(), --gc_buffer_level_);
        },
        0, NandOpClass::kGc);
  }
  if (!ftl_.has_pending_gc_work()) return;
  // Erases take no simulated time, but they advance the per-die wear
  // counters that drive the erase-correlated NAND fault window.
  ftl_.drain_erased_dies(erase_scratch_);
  for (const std::uint32_t die : erase_scratch_) nand_.note_erase(die);
  // Decoupled GC episode (MU < page): fill the GC page buffer with each
  // victim page's live MUs (only those bytes cross the channel), and once
  // every read has landed issue the merged re-pack programs. Sealed GC
  // pages can only exist alongside at least one buffer read, so programs
  // never wait here with an empty read set.
  ftl_.drain_gc_page_reads(gc_read_scratch_);
  if (gc_read_scratch_.empty()) return;
  std::uint32_t bi;
  if (!gc_batch_free_.empty()) {
    bi = gc_batch_free_.back();
    gc_batch_free_.pop_back();
  } else {
    bi = static_cast<std::uint32_t>(gc_batches_.size());
    gc_batches_.emplace_back();
  }
  GcBatch& batch = gc_batches_[bi];
  ftl_.drain_gc_page_programs(batch.programs);
  batch.reads_pending = static_cast<std::uint32_t>(gc_read_scratch_.size());
  gc_buffer_occ_.update(sim_.now(), gc_buffer_level_ += batch.reads_pending);
  for (const MuPageRead& r : gc_read_scratch_) {
    nand_.read_page(r.addr, [this, bi]() {
      gc_buffer_occ_.update(sim_.now(), --gc_buffer_level_);
      GcBatch& b = gc_batches_[bi];
      if (--b.reads_pending > 0) return;
      for (const PageProgram& p : b.programs)
        nand_.program_page(p.addr, [] {}, NandOpClass::kGc);
      b.programs.clear();
      gc_batch_free_.push_back(bi);
    }, r.bytes, NandOpClass::kGc);
  }
}

SsdController::FgJob* SsdController::acquire_fg_job(Command cmd,
                                                    Completion done) {
  FgJob* job;
  if (!fg_job_free_.empty()) {
    job = fg_job_free_.back();
    fg_job_free_.pop_back();
  } else {
    fg_job_pool_.push_back(std::make_unique<FgJob>());
    job = fg_job_pool_.back().get();
  }
  job->cmd = std::move(cmd);
  job->done = std::move(done);
  job->pages_pending = 0;
  job->ranges_pending = 0;
  job->media_failed = false;
  job->drop_completion = false;
  job->pages_used = 0;
  return job;
}

void SsdController::release_fg_job(FgJob* job) {
  job->cmd = Command{};
  fg_job_free_.push_back(job);
}

void SsdController::group_ranges_by_page(FgJob& job, bool with_offsets) {
  job.pages_used = 0;
  std::uint64_t consumed = 0;
  for (const FgRange& r : job.cmd.ranges) {
    PIPETTE_ASSERT(r.len > 0 && r.offset + r.len <= kBlockSize);
    FgJob::PageGroup* group = nullptr;
    // Linear scan: fine-grained commands span a handful of pages at most.
    for (std::size_t i = 0; i < job.pages_used; ++i) {
      if (job.by_page[i].lba == r.lba) {
        group = &job.by_page[i];
        break;
      }
    }
    if (group == nullptr) {
      if (job.pages_used == job.by_page.size()) job.by_page.emplace_back();
      group = &job.by_page[job.pages_used++];
      group->lba = r.lba;
      group->ranges.clear();
    }
    group->ranges.emplace_back(&r, with_offsets ? consumed : 0);
    consumed += r.len;
  }
  // Ascending-Lba page order (unique keys, so the sort is deterministic).
  std::sort(job.by_page.begin(),
            job.by_page.begin() + static_cast<std::ptrdiff_t>(job.pages_used),
            [](const FgJob::PageGroup& a, const FgJob::PageGroup& b) {
              return a.lba < b.lba;
            });
}

// Once every range of every page has been DMAed, retire the command and
// advance the Info Area head past all of this command's records.
void SsdController::fg_range_done(FgJob* job) {
  if (--job->ranges_pending > 0) return;
  // Device "digests items in Info Area and increases the head's value":
  // retire this command's records — even for failed commands, so the ring
  // never leaks. release() keeps the head correct when concurrent commands
  // (demand + speculative prefetch) retire out of push order.
  for (const FgRange& r : job->cmd.ranges)
    hmb_.info().release(r.info_index, sim_.now());
  recycle_fg_ranges(std::move(job->cmd.ranges));
  const CmdStatus status =
      job->media_failed ? CmdStatus::kMediaError : CmdStatus::kOk;
  const bool drop = job->drop_completion;
  Completion done = std::move(job->done);
  release_fg_job(job);
  if (drop) {
    // Injected lost completion: the work happened but the CQ entry never
    // arrives. The host's timeout guard is responsible for recovery.
    ++stats_.dropped_completions;
    return;
  }
  complete(done, CommandResult{sim_.now(), 0, status});
}

void SsdController::do_fg_read(Command cmd, Completion done) {
  ++stats_.fg_reads;
  stats_.fg_ranges += cmd.ranges.size();
  PIPETTE_ASSERT(!cmd.ranges.empty());

  FgJob* job = acquire_fg_job(std::move(cmd), std::move(done));
  job->ranges_pending = static_cast<std::uint32_t>(job->cmd.ranges.size());

  // Injected HMB/DMA faults are decided up front — one fixed-order pair of
  // draws per command — so the fault stream replays identically regardless
  // of completion interleaving.
  const HmbFaultPlan& hf = config_.faults.hmb;
  const bool hmb_fault = hmb_faults_.fire(hf.dma_fault_rate);
  job->drop_completion = hmb_faults_.fire(hf.drop_rate);

  if (hmb_fault) {
    // The engine cannot reach its HMB destinations (mapping/translation
    // fault). Abort before touching NAND, but still consume this command's
    // Info Area records so the ring stays in sync; kHmbFault tells the host
    // to fall back to the block path.
    ++stats_.hmb_dma_faults;
    sim_.schedule(hf.fault_latency, [this, job]() {
      for (const FgRange& r : job->cmd.ranges)
        hmb_.info().release(r.info_index, sim_.now());
      recycle_fg_ranges(std::move(job->cmd.ranges));
      const bool drop = job->drop_completion;
      Completion done = std::move(job->done);
      release_fg_job(job);
      if (drop) {
        ++stats_.dropped_completions;
        return;
      }
      complete(done, CommandResult{sim_.now(), 0, CmdStatus::kHmbFault});
    });
    return;
  }

  // Phase 1: group ranges by page and load each distinct page once.
  group_ranges_by_page(*job, /*with_offsets=*/false);
  job->pages_pending = static_cast<std::uint32_t>(job->pages_used);

  // Snapshot the page count: a buffer hit runs the staging callback
  // synchronously, and the last one may retire (and recycle) the job.
  const std::size_t pages = job->pages_used;
  for (std::size_t gi = 0; gi < pages; ++gi) {
    stage_page(job->by_page[gi].lba, [this, job, gi](bool ok) {
      if (!ok) {
        // The page never reached the buffer; its ranges cannot be
        // extracted. Retire them anyway so the fan-in completes (with
        // kMediaError) and the Info Area head still advances.
        job->media_failed = true;
        const std::size_t n = job->by_page[gi].ranges.size();
        for (std::size_t i = 0; i < n; ++i) fg_range_done(job);
        return;
      }
      // Phase 2+3: consume Info records for destination addresses, extract
      // each range from the buffered page, DMA it home.
      for (const auto& [r, unused] : job->by_page[gi].ranges) {
        const InfoRecord& rec = hmb_.info().at(r->info_index);
        PIPETTE_ASSERT(rec.lba == r->lba);
        PIPETTE_ASSERT(rec.byte_offset == r->offset);
        PIPETTE_ASSERT(rec.byte_len == r->len);
        PIPETTE_TRACE_SPAN(sim_, Stage::kFtl, sim_.now(),
                           sim_.now() + config_.timing.firmware_per_range);
        sim_.schedule(config_.timing.firmware_per_range, [this, job, rec]() {
          fine_dma(rec.byte_len, [this, job, rec]() {
            std::vector<std::uint8_t> tmp(rec.byte_len);
            content_.read(rec.lba, rec.byte_offset, {tmp.data(), tmp.size()});
            hmb_.dma_write(rec.dest, {tmp.data(), tmp.size()});
            stats_.bytes_to_host += rec.byte_len;
            fg_range_done(job);
          });
        });
      }
    });
  }
}

// Fine-grained write engine (CoinPurse-style extension, not in the DAC'22
// evaluation): the host DMAs only the new bytes; the device performs the
// read-modify-write internally — load the page into the read buffer, patch
// the ranges, allocate a fresh physical page and program it. The host never
// moves the untouched remainder of the page.
void SsdController::do_fg_write(Command cmd, Completion done) {
  ++stats_.fg_writes;
  stats_.fg_ranges += cmd.ranges.size();
  PIPETTE_ASSERT(!cmd.ranges.empty());
  std::uint64_t payload = 0;
  for (const FgRange& r : cmd.ranges) payload += r.len;
  PIPETTE_ASSERT(cmd.write_data.size() == payload);
  stats_.bytes_from_host += payload;

  FgJob* job = acquire_fg_job(std::move(cmd), std::move(done));

  // Host -> device payload DMA first, then per-page RMW.
  pcie_.dma(payload, [this, job]() {
    // Group ranges by page, remembering where each range's payload bytes
    // sit within write_data.
    group_ranges_by_page(*job, /*with_offsets=*/true);
    job->pages_pending = static_cast<std::uint32_t>(job->pages_used);

    // Snapshot as in do_fg_read: the last synchronous buffer hit may
    // retire the job before this loop finishes.
    const std::size_t pages = job->pages_used;
    for (std::size_t gi = 0; gi < pages; ++gi) {
      stage_page(job->by_page[gi].lba, [this, job, gi](bool ok) {
        if (!ok) {
          // RMW source page unreadable: skip the patch/program; the write
          // fails as a whole once the fan-in drains.
          job->media_failed = true;
        } else {
          // Patch the buffered page and persist to a fresh physical page.
          for (const auto& [r, data_off] : job->by_page[gi].ranges) {
            sim_.advance(0);  // patching happens in controller SRAM
            content_.write(r->lba, r->offset,
                           std::span<const std::uint8_t>(
                               job->cmd.write_data.data() + data_off,
                               r->len));
          }
          // Only the MU slots the ranges touch are rewritten; the LBA's
          // other MUs keep their current locations (with MU = page the
          // mask is always the full page).
          const std::uint32_t mu = ftl_.mapping_unit();
          std::uint32_t slot_mask = 0;
          for (const auto& [r, unused] : job->by_page[gi].ranges) {
            const std::uint32_t first = r->offset / mu;
            const std::uint32_t last = (r->offset + r->len - 1) / mu;
            for (std::uint32_t s = first; s <= last; ++s)
              slot_mask |= 1u << s;
          }
          ftl_.write_slots(job->by_page[gi].lba, slot_mask);
          perform_gc_moves();
          // Modern SSDs acknowledge writes once the data sits in the
          // capacitor-backed controller write cache; sealed pages program
          // in the background (they still occupy the die/channel).
          issue_host_programs([this](const PageProgram& p) {
            nand_.program_page(p.addr, [] {});
          });
        }
        if (--job->pages_pending == 0) {
          recycle_fg_ranges(std::move(job->cmd.ranges));
          const CmdStatus status = job->media_failed
                                       ? CmdStatus::kMediaError
                                       : CmdStatus::kOk;
          Completion done = std::move(job->done);
          release_fg_job(job);
          complete(done, CommandResult{sim_.now(), 0, status});
        }
      });
    }
  });
}

void SsdController::do_read_to_cmb(Command cmd, Completion done) {
  ++stats_.cmb_reads;
  PIPETTE_ASSERT(cmd.nlb == 1);
  const Lba lba = cmd.lba;
  stage_page(lba, [this, lba, done = std::move(done)](bool ok) mutable {
    if (!ok) {
      complete(done, CommandResult{sim_.now(), 0, CmdStatus::kMediaError});
      return;
    }
    const std::uint32_t slot = cmb_.claim_slot();
    std::vector<std::uint8_t> page(kBlockSize);
    content_.read(lba, 0, {page.data(), page.size()});
    cmb_.fill(slot, {page.data(), page.size()});
    complete(done, CommandResult{sim_.now(), slot});
  });
}

SimDuration SsdController::read_from_cmb(std::uint32_t slot,
                                         std::uint32_t offset,
                                         std::span<std::uint8_t> out,
                                         bool via_dma) {
  PIPETTE_ASSERT(offset + out.size() <= kBlockSize);
  auto src = cmb_.slot(slot).subspan(offset, out.size());
  std::copy(src.begin(), src.end(), out.begin());
  stats_.bytes_to_host += out.size();
  if (via_dma) {
    // 2B-SSD DMA mode: per-access mapping on the critical path + transfer.
    return pcie_.timing().dma_map_cost + pcie_.dma_cost(out.size());
  }
  return pcie_.mmio_read_cost(out.size());
}

}  // namespace pipette
