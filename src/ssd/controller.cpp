#include "ssd/controller.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.h"

namespace pipette {

namespace {
std::uint64_t resolve_lba_count(const ControllerConfig& config) {
  if (config.lba_count != 0) return config.lba_count;
  const std::uint64_t total = config.geometry.total_pages();
  return total - total / 8;
}
}  // namespace

SsdController::SsdController(Simulator& sim, const ControllerConfig& config)
    : sim_(sim),
      config_(config),
      content_(config.content_seed),
      nand_(sim, config.geometry, config.nand_timing, config.faults),
      ftl_(config.geometry, resolve_lba_count(config)),
      pcie_(sim, config.pcie),
      hmb_(config.hmb),
      cmb_(config.cmb_slots),
      read_buffer_(std::max<std::uint64_t>(
          1, config.read_buffer_bytes / kBlockSize)) {}

void SsdController::submit(Command cmd, Completion done) {
  ++stats_.commands;
  // Submission path: host driver builds the SQE, rings the doorbell, the
  // controller fetches the command; firmware then begins processing.
  const SimDuration entry =
      config_.timing.submission + config_.timing.firmware_per_cmd;
  auto run = [this, cmd = std::move(cmd), done = std::move(done)]() mutable {
    switch (cmd.op) {
      case Opcode::kRead:
        do_block_read(std::move(cmd), std::move(done));
        break;
      case Opcode::kWrite:
        do_block_write(std::move(cmd), std::move(done));
        break;
      case Opcode::kFgRead:
        do_fg_read(std::move(cmd), std::move(done));
        break;
      case Opcode::kFgWrite:
        do_fg_write(std::move(cmd), std::move(done));
        break;
      case Opcode::kReadToCmb:
        do_read_to_cmb(std::move(cmd), std::move(done));
        break;
    }
  };
  sim_.schedule(entry, std::move(run));
}

std::vector<FgRange> SsdController::take_fg_ranges() {
  if (fg_range_pool_.empty()) return {};
  std::vector<FgRange> out = std::move(fg_range_pool_.back());
  fg_range_pool_.pop_back();
  return out;
}

void SsdController::recycle_fg_ranges(std::vector<FgRange>&& ranges) {
  if (ranges.capacity() == 0) return;
  ranges.clear();
  // A handful of buffers covers every in-flight fine-grained command; the
  // cap only guards against a pathological burst pinning memory.
  if (fg_range_pool_.size() < 64) fg_range_pool_.push_back(std::move(ranges));
}

void SsdController::complete(Completion& done, CommandResult result) {
  sim_.schedule(config_.timing.completion,
                [done = std::move(done), result]() { done(result); });
}

void SsdController::stage_page(Lba lba, Simulator::Callback ready,
                               bool use_buffer) {
  PIPETTE_ASSERT(lba < ftl_.lba_count());
  if (!use_buffer) {
    ftl_.note_read();
    nand_.read_page(ftl_.lookup(lba), std::move(ready));
    return;
  }
  if (read_buffer_.find(lba) != nullptr) {
    stats_.read_buffer.record(true);
    ready();
    return;
  }
  stats_.read_buffer.record(false);
  ftl_.note_read();
  const PhysPageAddr addr = ftl_.lookup(lba);
  nand_.read_page(addr, [this, lba, ready = std::move(ready)]() {
    read_buffer_.insert(lba, 0);
    ready();
  });
}

void SsdController::do_block_read(Command cmd, Completion done) {
  ++stats_.block_reads;
  PIPETTE_ASSERT(cmd.nlb >= 1);
  PIPETTE_ASSERT(cmd.host_dest.size() >=
                 static_cast<std::size_t>(cmd.nlb) * kBlockSize);

  // Stage every page into the device buffer (NAND reads run in parallel
  // across dies), then move the whole payload to the host in one DMA.
  auto state = std::make_shared<std::uint32_t>(cmd.nlb);
  auto finish = [this, cmd, done = std::move(done)]() mutable {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(cmd.nlb) * kBlockSize;
    pcie_.dma(bytes, [this, cmd, done = std::move(done), bytes]() mutable {
      for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
        content_.read(cmd.lba + i, 0,
                      cmd.host_dest.subspan(
                          static_cast<std::size_t>(i) * kBlockSize,
                          kBlockSize));
      }
      stats_.bytes_to_host += bytes;
      complete(done, CommandResult{sim_.now(), 0});
    });
  };
  auto shared_finish =
      std::make_shared<decltype(finish)>(std::move(finish));
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    stage_page(
        cmd.lba + i,
        [state, shared_finish]() {
          if (--*state == 0) (*shared_finish)();
        },
        config_.block_reads_use_buffer);
  }
}

void SsdController::do_block_write(Command cmd, Completion done) {
  ++stats_.block_writes;
  PIPETTE_ASSERT(cmd.write_data.size() ==
                 static_cast<std::size_t>(cmd.nlb) * kBlockSize);
  // Content lands in the overlay at firmware time; programs then persist it.
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    content_.write(cmd.lba + i, 0,
                   std::span<const std::uint8_t>(
                       cmd.write_data.data() +
                           static_cast<std::size_t>(i) * kBlockSize,
                       kBlockSize));
    // The freshly written page supersedes any stale copy in device DRAM;
    // keep the buffer coherent by dropping it (next read re-stages).
    read_buffer_.erase(cmd.lba + i);
  }
  auto state = std::make_shared<std::uint32_t>(cmd.nlb);
  auto fin = [this, done = std::move(done)]() mutable {
    complete(done, CommandResult{sim_.now(), 0});
  };
  auto shared_fin = std::make_shared<decltype(fin)>(std::move(fin));
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    const PhysPageAddr addr = ftl_.update(cmd.lba + i);
    perform_gc_moves();
    nand_.program_page(addr, [state, shared_fin]() {
      if (--*state == 0) (*shared_fin)();
    });
  }
}

void SsdController::perform_gc_moves() {
  // GC relocations occupy dies and channels in the background; the host
  // command does not wait for them, but subsequent operations queue behind
  // the busy hardware — write amplification becomes visible as time.
  for (const GcMove& move : ftl_.take_gc_moves()) {
    nand_.read_page(move.from, [this, move]() {
      nand_.program_page(move.to, [] {});
    });
  }
}

// Shared state of one in-flight fine-grained read command.
struct SsdController::FgJob {
  Command cmd;
  Completion done;
  std::uint32_t pages_pending = 0;
  std::uint32_t ranges_pending = 0;
};

void SsdController::do_fg_read(Command cmd, Completion done) {
  ++stats_.fg_reads;
  stats_.fg_ranges += cmd.ranges.size();
  PIPETTE_ASSERT(!cmd.ranges.empty());

  auto job = std::make_shared<FgJob>();
  job->cmd = std::move(cmd);
  job->done = std::move(done);
  job->ranges_pending = static_cast<std::uint32_t>(job->cmd.ranges.size());

  // Phase 1: group ranges by page and load each distinct page once.
  std::map<Lba, std::vector<const FgRange*>> by_page;
  for (const FgRange& r : job->cmd.ranges) {
    PIPETTE_ASSERT(r.len > 0 && r.offset + r.len <= kBlockSize);
    by_page[r.lba].push_back(&r);
  }
  job->pages_pending = static_cast<std::uint32_t>(by_page.size());

  // Once every range of every page has been DMAed, retire the command and
  // advance the Info Area head past all of this command's records.
  auto range_done = [this, job]() {
    if (--job->ranges_pending > 0) return;
    // Device "digests items in Info Area and increases the head's value":
    // retire records in ring order.
    for (std::size_t i = 0; i < job->cmd.ranges.size(); ++i)
      hmb_.info().consume();
    recycle_fg_ranges(std::move(job->cmd.ranges));
    complete(job->done, CommandResult{sim_.now(), 0});
  };

  for (auto& [lba, ranges] : by_page) {
    // Copy the per-page range list; `job` keeps the FgRanges alive.
    stage_page(lba, [this, job, ranges, range_done]() {
      // Phase 2+3: consume Info records for destination addresses, extract
      // each range from the buffered page, DMA it home.
      for (const FgRange* r : ranges) {
        const InfoRecord& rec = hmb_.info().at(r->info_index);
        PIPETTE_ASSERT(rec.lba == r->lba);
        PIPETTE_ASSERT(rec.byte_offset == r->offset);
        PIPETTE_ASSERT(rec.byte_len == r->len);
        sim_.schedule(config_.timing.firmware_per_range, [this, job,
                                                          rec, range_done]() {
          pcie_.dma(rec.byte_len, [this, rec, range_done]() {
            std::vector<std::uint8_t> tmp(rec.byte_len);
            content_.read(rec.lba, rec.byte_offset,
                          {tmp.data(), tmp.size()});
            hmb_.dma_write(rec.dest, {tmp.data(), tmp.size()});
            stats_.bytes_to_host += rec.byte_len;
            range_done();
          });
        });
      }
    });
  }
}

// Fine-grained write engine (CoinPurse-style extension, not in the DAC'22
// evaluation): the host DMAs only the new bytes; the device performs the
// read-modify-write internally — load the page into the read buffer, patch
// the ranges, allocate a fresh physical page and program it. The host never
// moves the untouched remainder of the page.
void SsdController::do_fg_write(Command cmd, Completion done) {
  ++stats_.fg_writes;
  stats_.fg_ranges += cmd.ranges.size();
  PIPETTE_ASSERT(!cmd.ranges.empty());
  std::uint64_t payload = 0;
  for (const FgRange& r : cmd.ranges) payload += r.len;
  PIPETTE_ASSERT(cmd.write_data.size() == payload);
  stats_.bytes_from_host += payload;

  auto job = std::make_shared<FgJob>();
  job->cmd = std::move(cmd);
  job->done = std::move(done);

  // Host -> device payload DMA first, then per-page RMW.
  pcie_.dma(payload, [this, job]() {
    // Group ranges by page.
    std::map<Lba, std::vector<std::pair<const FgRange*, std::uint64_t>>>
        by_page;  // range + offset of its bytes within write_data
    std::uint64_t consumed = 0;
    for (const FgRange& r : job->cmd.ranges) {
      PIPETTE_ASSERT(r.len > 0 && r.offset + r.len <= kBlockSize);
      by_page[r.lba].emplace_back(&r, consumed);
      consumed += r.len;
    }
    job->pages_pending = static_cast<std::uint32_t>(by_page.size());

    for (auto& [lba, ranges] : by_page) {
      stage_page(lba, [this, job, lba, ranges]() {
        // Patch the buffered page and persist to a fresh physical page.
        for (const auto& [r, data_off] : ranges) {
          sim_.advance(0);  // patching happens in controller SRAM
          content_.write(
              r->lba, r->offset,
              std::span<const std::uint8_t>(
                  job->cmd.write_data.data() + data_off, r->len));
        }
        const PhysPageAddr addr = ftl_.update(lba);
        perform_gc_moves();
        // Modern SSDs acknowledge writes once the data sits in the
        // capacitor-backed controller write cache; the program itself
        // proceeds in the background (it still occupies the die/channel).
        nand_.program_page(addr, [] {});
        if (--job->pages_pending == 0) {
          recycle_fg_ranges(std::move(job->cmd.ranges));
          complete(job->done, CommandResult{sim_.now(), 0});
        }
      });
    }
  });
}

void SsdController::do_read_to_cmb(Command cmd, Completion done) {
  ++stats_.cmb_reads;
  PIPETTE_ASSERT(cmd.nlb == 1);
  const Lba lba = cmd.lba;
  stage_page(lba, [this, lba, done = std::move(done)]() mutable {
    const std::uint32_t slot = cmb_.claim_slot();
    std::vector<std::uint8_t> page(kBlockSize);
    content_.read(lba, 0, {page.data(), page.size()});
    cmb_.fill(slot, {page.data(), page.size()});
    complete(done, CommandResult{sim_.now(), slot});
  });
}

SimDuration SsdController::read_from_cmb(std::uint32_t slot,
                                         std::uint32_t offset,
                                         std::span<std::uint8_t> out,
                                         bool via_dma) {
  PIPETTE_ASSERT(offset + out.size() <= kBlockSize);
  auto src = cmb_.slot(slot).subspan(offset, out.size());
  std::copy(src.begin(), src.end(), out.begin());
  stats_.bytes_to_host += out.size();
  if (via_dma) {
    // 2B-SSD DMA mode: per-access mapping on the critical path + transfer.
    return pcie_.timing().dma_map_cost + pcie_.dma_cost(out.size());
  }
  return pcie_.mmio_read_cost(out.size());
}

}  // namespace pipette
