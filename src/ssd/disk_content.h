// Logical content of the drive.
//
// Rather than storing hundreds of gigabytes, the content of every logical
// block is a deterministic pattern keyed by its LBA, with a sparse overlay
// holding blocks that have been written. Every read path in the stack copies
// real bytes sourced from here, so end-to-end data correctness is testable
// without materialising the drive.
//
// Note the simplification this implies: payload identity is keyed by LBA
// (logical), while timing is keyed by the FTL's physical mapping. Remapping
// a block on write changes where time is spent, never what data means.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "ssd/types.h"

namespace pipette {

class DiskContent {
 public:
  explicit DiskContent(std::uint64_t seed = 0xd15c) : seed_(seed) {}

  /// Copy `out.size()` content bytes of block `lba` starting at `offset`.
  void read(Lba lba, std::uint32_t offset, std::span<std::uint8_t> out) const;

  /// Overwrite content bytes of block `lba` starting at `offset`.
  void write(Lba lba, std::uint32_t offset, std::span<const std::uint8_t> in);

  /// The pristine (never-written) content byte — what tests compare against.
  std::uint8_t pristine_byte(Lba lba, std::uint32_t offset) const;

  /// Number of blocks materialised by writes.
  std::size_t dirty_blocks() const { return overlay_.size(); }

  std::uint64_t seed() const { return seed_; }

 private:
  using Block = std::array<std::uint8_t, kBlockSize>;

  std::uint64_t seed_;
  std::unordered_map<Lba, std::unique_ptr<Block>> overlay_;
};

}  // namespace pipette
