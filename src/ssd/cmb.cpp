#include "ssd/cmb.h"

#include <cstring>

#include "common/assert.h"

namespace pipette {

Cmb::Cmb(std::uint32_t page_slots)
    : slots_(page_slots),
      bytes_(static_cast<std::size_t>(page_slots) * kBlockSize, 0) {
  PIPETTE_ASSERT(page_slots > 0);
}

std::uint32_t Cmb::claim_slot() {
  const std::uint32_t s = next_;
  next_ = (next_ + 1) % slots_;
  return s;
}

void Cmb::fill(std::uint32_t slot, std::span<const std::uint8_t> page) {
  PIPETTE_ASSERT(slot < slots_);
  PIPETTE_ASSERT(page.size() <= kBlockSize);
  std::memcpy(bytes_.data() + static_cast<std::size_t>(slot) * kBlockSize,
              page.data(), page.size());
}

std::span<const std::uint8_t> Cmb::slot(std::uint32_t slot) const {
  PIPETTE_ASSERT(slot < slots_);
  return {bytes_.data() + static_cast<std::size_t>(slot) * kBlockSize,
          kBlockSize};
}

}  // namespace pipette
