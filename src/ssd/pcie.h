// PCIe interconnect cost model (Gen3 x4, per the paper's Fig. 5).
//
// Two transfer modes matter for the paper's comparison:
//  * DMA: the device masters the bus; a transfer pays a fixed descriptor/
//    doorbell overhead plus a per-byte cost, and transfers serialise on the
//    link (modelled with a busy-until horizon). 2B-SSD's DMA mode pays an
//    additional per-access IOMMU map/unmap (dma_map_cost) on the critical
//    path; Pipette's HMB mapping is established once at initialisation, so
//    its fine-grained reads skip it (§3.1.1).
//  * MMIO: the CPU issues non-posted read transactions of at most 8 bytes
//    (x86 uncached MMIO semantics), each a full link round trip; latency is
//    therefore linear in size — the effect behind 2B-SSD MMIO's Fig. 8 curve.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "des/simulator.h"
#include "obs/trace.h"
#include "obs/util.h"

namespace pipette {

struct PcieTiming {
  double dma_ns_per_byte = 0.3125;    // ~3.2 GB/s effective on Gen3 x4
  SimDuration dma_overhead = 600;     // descriptor + doorbell per transfer
  SimDuration dma_map_cost = 23 * kUs;  // per-access map/unmap (2B-SSD DMA)
  SimDuration mmio_read_per_tx = 300;   // one non-posted 8 B read round trip
  std::uint32_t mmio_tx_bytes = 8;
};

/// Which interconnect carries fine-grained fills and where the host buffer
/// lives: kHmb is the paper's baseline (PCIe DMA into host DRAM the OS
/// surrendered via NVMe Set Features), kLmb is a CXL-linked memory buffer
/// (arXiv 2406.02039) — a memory device hanging off a CXL.mem port that
/// both the SSD and the host address directly, so fills ride a dedicated
/// link and the buffer steals no host DRAM from the page cache.
enum class InterconnectKind : std::uint8_t { kHmb, kLmb };

const char* to_string(InterconnectKind k);

/// CXL-linked-buffer cost model. Calibration rationale in DESIGN.md: the
/// link is CXL 2.0 x8 (~6.4 GB/s effective after 68 B flit overhead), device
/// writes skip the PCIe root complex/IOMMU hop (smaller fixed overhead than
/// the NVMe DMA descriptor path), and host loads from CXL.mem pay a fixed
/// ~250 ns round trip plus a streaming per-byte cost slower than local DRAM.
struct LmbTiming {
  double dma_ns_per_byte = 0.15625;      // ~6.4 GB/s device -> LMB
  SimDuration dma_overhead = 400;        // flit header + no RC/IOMMU hop
  SimDuration host_access_latency = 250;  // CXL.mem load round trip
  double host_copy_ns_per_byte = 0.0875;  // ~11.4 GB/s host pull from LMB

  /// Host-synchronous cost of copying `bytes` out of the linked buffer
  /// (replaces HostTiming::copy_cost on the LMB backend).
  SimDuration host_read_cost(std::uint64_t bytes) const {
    return host_access_latency +
           static_cast<SimDuration>(host_copy_ns_per_byte *
                                    static_cast<double>(bytes));
  }
};

class PcieLink {
 public:
  PcieLink(Simulator& sim, PcieTiming timing, LmbTiming lmb = {})
      : sim_(sim), timing_(timing), lmb_(lmb) {}

  /// Schedule a DMA of `bytes`; `on_done` runs when the last TLP lands.
  /// Transfers queue behind any in-flight DMA (shared link). `stage` labels
  /// the transfer for the tracer: kPcieDma for block/CMB data, kHmbDma for
  /// fine-grained writes into the host memory buffer.
  void dma(std::uint64_t bytes, Simulator::Callback on_done,
           Stage stage = Stage::kPcieDma);

  /// Schedule a transfer of `bytes` over the CXL link into the linked
  /// memory buffer. The LMB link is dedicated — transfers serialise on
  /// their own busy horizon and never queue behind PCIe block traffic.
  void dma_lmb(std::uint64_t bytes, Simulator::Callback on_done);

  /// Pure cost of an MMIO read of `bytes` (CPU-synchronous; the caller adds
  /// it to host time).
  SimDuration mmio_read_cost(std::uint64_t bytes) const;

  /// Pure cost of a DMA of `bytes`, without queueing (for host-side
  /// reasoning/tests).
  SimDuration dma_cost(std::uint64_t bytes) const;

  const PcieTiming& timing() const { return timing_; }
  const LmbTiming& lmb_timing() const { return lmb_; }
  std::uint64_t dma_transfers() const { return dma_transfers_; }
  std::uint64_t dma_bytes() const { return dma_bytes_; }
  std::uint64_t lmb_transfers() const { return lmb_transfers_; }
  std::uint64_t lmb_bytes() const { return lmb_bytes_; }

  // Utilization accounts for the two DMA engines (passive; obs/util.h).
  ResourceUsage& pcie_usage() { return pcie_usage_; }
  ResourceUsage& lmb_usage() { return lmb_usage_; }

 private:
  Simulator& sim_;
  PcieTiming timing_;
  LmbTiming lmb_;
  SimTime busy_until_ = 0;
  SimTime lmb_busy_until_ = 0;
  std::uint64_t dma_transfers_ = 0;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t lmb_transfers_ = 0;
  std::uint64_t lmb_bytes_ = 0;
  ResourceUsage pcie_usage_;
  ResourceUsage lmb_usage_;
};

}  // namespace pipette
