#include "ssd/hmb.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace pipette {

InfoArea::InfoArea(std::uint32_t capacity)
    : capacity_(capacity), slots_(capacity), digested_(capacity, false) {
  PIPETTE_ASSERT(capacity > 0);
}

std::uint64_t InfoArea::push(const InfoRecord& rec) {
  PIPETTE_ASSERT_MSG(!full(), "Info Area ring overflow");
  const std::uint64_t idx = tail_++;
  slots_[idx % capacity_] = rec;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight());
  return idx;
}

const InfoRecord& InfoArea::at(std::uint64_t idx) const {
  PIPETTE_ASSERT_MSG(idx >= head_ && idx < tail_,
                     "Info Area index outside live window");
  return slots_[idx % capacity_];
}

void InfoArea::release(std::uint64_t idx) {
  PIPETTE_ASSERT_MSG(idx >= head_ && idx < tail_,
                     "Info Area release outside live window");
  PIPETTE_ASSERT_MSG(!digested_[idx % capacity_],
                     "Info Area record released twice");
  digested_[idx % capacity_] = true;
  while (head_ < tail_ && digested_[head_ % capacity_]) {
    digested_[head_ % capacity_] = false;
    ++head_;
  }
}

Hmb::Hmb(const Layout& layout)
    : layout_(layout),
      tempbuf_offset_(static_cast<HmbAddr>(layout.info_slots) *
                      sizeof(InfoRecord)),
      data_offset_(tempbuf_offset_ + layout.tempbuf_bytes),
      info_(layout.info_slots),
      bytes_(data_offset_ + layout.data_bytes, 0) {}

void Hmb::dma_write(HmbAddr dest, std::span<const std::uint8_t> src) {
  PIPETTE_ASSERT(dest + src.size() <= bytes_.size());
  std::memcpy(bytes_.data() + dest, src.data(), src.size());
}

void Hmb::read(HmbAddr src, std::span<std::uint8_t> out) const {
  PIPETTE_ASSERT(src + out.size() <= bytes_.size());
  std::memcpy(out.data(), bytes_.data() + src, out.size());
}

}  // namespace pipette
