// Shared storage-address types.
#pragma once

#include <cstdint>

namespace pipette {

/// Logical block address, in units of one 4 KiB block (the device's minimal
/// block-interface granularity, matching the paper's setup).
using Lba = std::uint64_t;

constexpr std::uint32_t kBlockSize = 4096;
constexpr Lba kInvalidLba = ~Lba{0};

/// Byte offset within the HMB region (device-visible host memory).
using HmbAddr = std::uint64_t;
constexpr HmbAddr kInvalidHmbAddr = ~HmbAddr{0};

}  // namespace pipette
