// Host Memory Buffer and the Info Area ring.
//
// The HMB is host DRAM handed to the SSD controller at initialisation; the
// device holds a standing DMA mapping onto it (NVMe Set Features / HMB), so
// fine-grained transfers pay no per-access mapping cost. Pipette lays the
// region out as three partitions (paper Fig. 3):
//
//   [ Info Area | TempBuf Area | Data Area ]
//
// The Info Area is a ring of records jointly managed by host and device:
// the host appends a record per in-flight fine-grained read (bumping tail)
// carrying the destination address inside the HMB; the device consumes
// records as it serves ranges (bumping head). TempBuf is a small staging
// region for data the adaptive policy declines to cache; Data Area holds
// the fine-grained read cache's slabs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/util.h"
#include "ssd/types.h"

namespace pipette {

/// One Info Area record: where in the HMB the device must land the bytes of
/// one fine-grained range.
struct InfoRecord {
  HmbAddr dest = kInvalidHmbAddr;  // destination offset within the HMB
  Lba lba = kInvalidLba;           // page holding the data
  std::uint32_t byte_offset = 0;   // offset of the range within the page
  std::uint32_t byte_len = 0;
};

/// Fixed-capacity single-producer (host) / single-consumer (device) ring of
/// InfoRecords. Indices grow monotonically; slot = index % capacity.
class InfoArea {
 public:
  explicit InfoArea(std::uint32_t capacity);

  bool full() const { return tail_ - head_ == capacity_; }
  bool empty() const { return tail_ == head_; }
  std::uint32_t in_flight() const {
    return static_cast<std::uint32_t>(tail_ - head_);
  }
  std::uint32_t capacity() const { return capacity_; }
  /// Occupancy high-water mark (max in_flight() ever observed after a push).
  std::uint32_t peak_in_flight() const { return peak_in_flight_; }

  /// Host side: append a record; returns its monotonic index. Ring must not
  /// be full (callers back-pressure on full()).
  std::uint64_t push(const InfoRecord& rec);

  /// Timed variant: also advances the ring's occupancy integral to `now`
  /// (obs/util.h; pure accounting — behaviour is identical to push()).
  /// Simulation call sites use this; untimed push() remains for unit tests.
  std::uint64_t push(const InfoRecord& rec, SimTime now) {
    const std::uint64_t idx = push(rec);
    occupancy_.update(now, in_flight());
    return idx;
  }

  /// Record at monotonic index `idx` (must be in [head, tail)).
  const InfoRecord& at(std::uint64_t idx) const;

  /// Device side: retire the oldest record (bump head). The paper's engine
  /// "digests items in Info Area and increases the head's value".
  void consume() { release(head_); }

  /// Device side: mark record `idx` digested. The head advances past the
  /// longest contiguous digested prefix — identical to consume() when
  /// commands retire in push order, but safe when concurrent fine-grained
  /// commands (demand + speculative prefetch) complete out of order: a
  /// later command's retirement just leaves a gap until the earlier one
  /// digests its records too.
  void release(std::uint64_t idx);

  /// Timed variant of release() (see the timed push()).
  void release(std::uint64_t idx, SimTime now) {
    release(idx);
    occupancy_.update(now, in_flight());
  }

  std::uint64_t head() const { return head_; }
  std::uint64_t tail() const { return tail_; }

  /// Time-weighted occupancy of the ring (depth integral, busy time, peak).
  OccupancyIntegrator& occupancy() { return occupancy_; }

 private:
  std::uint32_t capacity_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::uint32_t peak_in_flight_ = 0;
  std::vector<InfoRecord> slots_;
  std::vector<bool> digested_;  // out-of-order release marks, slot-indexed
  OccupancyIntegrator occupancy_;
};

/// The HMB region: backing bytes plus the three-partition layout.
class Hmb {
 public:
  struct Layout {
    std::uint32_t info_slots = 4096;
    std::uint64_t tempbuf_bytes = 64 * 1024;
    std::uint64_t data_bytes = 64ull * 1024 * 1024;
  };

  explicit Hmb(const Layout& layout);

  InfoArea& info() { return info_; }
  const InfoArea& info() const { return info_; }

  /// Byte views of the partitions. Data-area addresses (HmbAddr) used in
  /// InfoRecords are offsets into the *whole* HMB, so device writes use
  /// raw().
  std::span<std::uint8_t> raw() { return {bytes_.data(), bytes_.size()}; }
  std::span<const std::uint8_t> raw() const {
    return {bytes_.data(), bytes_.size()};
  }
  std::span<std::uint8_t> tempbuf() {
    return raw().subspan(tempbuf_offset_, layout_.tempbuf_bytes);
  }
  std::span<std::uint8_t> data_area() {
    return raw().subspan(data_offset_, layout_.data_bytes);
  }

  HmbAddr tempbuf_offset() const { return tempbuf_offset_; }
  HmbAddr data_offset() const { return data_offset_; }
  std::uint64_t size() const { return bytes_.size(); }

  /// Device-side write into the HMB (the landing of a DMA).
  void dma_write(HmbAddr dest, std::span<const std::uint8_t> src);

  /// Host-side read out of the HMB (plain memory load).
  void read(HmbAddr src, std::span<std::uint8_t> out) const;

 private:
  Layout layout_;
  HmbAddr tempbuf_offset_;
  HmbAddr data_offset_;
  InfoArea info_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace pipette
