#include "ssd/ftl.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace pipette {

namespace {

constexpr std::uint64_t kInvalidMu = ~0ull;

template <typename T>
void drain_into(std::vector<T>& pending, std::vector<T>& out) {
  out.clear();
  out.insert(out.end(), pending.begin(), pending.end());
  pending.clear();
}

}  // namespace

Ftl::Ftl(const NandGeometry& geometry, std::uint64_t lba_count,
         std::uint32_t mapping_unit)
    : geometry_(geometry),
      lba_count_(lba_count),
      mu_size_(mapping_unit == 0 ? geometry.page_size : mapping_unit),
      spp_(geometry.page_size / mu_size_),
      pages_per_die_(geometry.pages_per_die()),
      pages_per_block_(geometry.pages_per_block),
      blocks_per_die_(pages_per_die_ / geometry.pages_per_block),
      mus_per_block_(pages_per_block_ * spp_) {
  PIPETTE_ASSERT(geometry_.page_size == kBlockSize);
  PIPETTE_ASSERT(pages_per_die_ % pages_per_block_ == 0);
  PIPETTE_ASSERT_MSG(mu_size_ >= 512 && mu_size_ <= geometry_.page_size &&
                         geometry_.page_size % mu_size_ == 0,
                     "mapping unit must be in [512, page] and divide the page");
  const std::uint64_t total_pages = geometry.total_pages();
  PIPETTE_ASSERT_MSG(lba_count <= total_pages - total_pages / 8,
                     "need >= 12.5% spare pages for write allocation");

  map_.resize(lba_count * spp_);
  reverse_.assign(total_pages * spp_, kInvalidMu);
  blocks_.resize(geometry.dies() * blocks_per_die_);
  free_blocks_.resize(geometry.dies());
  active_block_.assign(geometry.dies(), ~0ull);
  die_erases_.assign(geometry.dies(), 0);

  // Initial striping: LBA i lives on channel (i % C), way ((i / C) % W),
  // die-local page (i / (C*W)); all of its MUs start in that page's slots.
  // Linear page index is die-major.
  const std::uint64_t c = geometry_.channels;
  const std::uint64_t w = geometry_.ways_per_channel;
  for (std::uint64_t i = 0; i < lba_count; ++i) {
    const std::uint64_t channel = i % c;
    const std::uint64_t way = (i / c) % w;
    const std::uint64_t page = i / (c * w);
    const std::uint64_t die = channel * w + way;
    const std::uint64_t linear = die * pages_per_die_ + page;
    for (std::uint32_t k = 0; k < spp_; ++k) {
      map_[i * spp_ + k] = linear * spp_ + k;
      reverse_[linear * spp_ + k] = i * spp_ + k;
    }
  }
  // Block bookkeeping for the initially-used region; everything beyond is
  // free.
  for (std::uint64_t die = 0; die < geometry.dies(); ++die) {
    std::uint64_t used_this_die = 0;
    {
      // lba residing on this die: those with (lba % (c*w)) ==
      // channel-major die index mapping; count = ceil((lba_count - idx)/cw)
      const std::uint64_t channel = die / w;
      const std::uint64_t way = die % w;
      const std::uint64_t idx = way * c + channel;  // first lba on this die
      if (idx < lba_count)
        used_this_die = (lba_count - idx + c * w - 1) / (c * w);
    }
    const std::uint64_t full_blocks = used_this_die / pages_per_block_;
    const std::uint32_t partial =
        static_cast<std::uint32_t>(used_this_die % pages_per_block_);
    for (std::uint64_t b = 0; b < blocks_per_die_; ++b) {
      Block& block = blocks_[die * blocks_per_die_ + b];
      if (b < full_blocks) {
        block.next_slot = mus_per_block_;
        block.valid = mus_per_block_;
      } else if (b == full_blocks && partial > 0) {
        // Partially-filled boundary block: the remaining slots are treated
        // as unusable until GC erases the block (flash pages must be
        // programmed in order and the block is no longer the active one).
        block.next_slot = mus_per_block_;
        block.valid = partial * spp_;
      } else {
        free_blocks_[die].push_back(die * blocks_per_die_ + b);
      }
    }
    // LIFO pool: reverse so low block ids are popped first.
    std::reverse(free_blocks_[die].begin(), free_blocks_[die].end());
  }
}

PhysPageAddr Ftl::decode(std::uint64_t linear) const {
  const std::uint64_t die = linear / pages_per_die_;
  PhysPageAddr addr;
  addr.channel = static_cast<std::uint32_t>(die / geometry_.ways_per_channel);
  addr.way = static_cast<std::uint32_t>(die % geometry_.ways_per_channel);
  addr.page = linear % pages_per_die_;
  return addr;
}

std::uint64_t Ftl::encode(const PhysPageAddr& addr) const {
  const std::uint64_t die =
      static_cast<std::uint64_t>(addr.channel) * geometry_.ways_per_channel +
      addr.way;
  return die * pages_per_die_ + addr.page;
}

std::uint64_t Ftl::die_of_linear(std::uint64_t linear) const {
  return linear / pages_per_die_;
}

PhysPageAddr Ftl::lookup(Lba lba) const {
  PIPETTE_ASSERT(lba < lba_count_);
  return decode(map_[lba * spp_] / spp_);
}

void Ftl::lookup_pages(Lba lba, std::vector<MuPageRead>& out) const {
  PIPETTE_ASSERT(lba < lba_count_);
  out.clear();
  // spp_ <= page/512 = 8, so a fixed scratch suffices for the dedup.
  std::uint64_t pages[8];
  std::uint32_t counts[8];
  std::uint32_t n = 0;
  for (std::uint32_t s = 0; s < spp_; ++s) {
    const std::uint64_t page = map_[lba * spp_ + s] / spp_;
    bool dup = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (pages[i] == page) {
        ++counts[i];
        dup = true;
        break;
      }
    }
    if (!dup) {
      pages[n] = page;
      counts[n] = 1;
      ++n;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back({decode(pages[i]), counts[i] * mu_size_});
}

std::uint64_t Ftl::free_blocks(std::uint32_t die) const {
  PIPETTE_ASSERT(die < free_blocks_.size());
  return free_blocks_[die].size();
}

std::uint64_t Ftl::erase_count(std::uint32_t die) const {
  PIPETTE_ASSERT(die < die_erases_.size());
  return die_erases_[die];
}

std::uint32_t Ftl::block_valid_mus(std::uint64_t block_id) const {
  PIPETTE_ASSERT(block_id < blocks_.size());
  return blocks_[block_id].valid;
}

std::uint64_t Ftl::mu_linear(Lba lba, std::uint32_t slot) const {
  PIPETTE_ASSERT(lba < lba_count_ && slot < spp_);
  return map_[lba * spp_ + slot];
}

std::uint64_t Ftl::block_of_linear_mu(std::uint64_t linear_mu) const {
  const std::uint64_t page = linear_mu / spp_;
  const std::uint64_t die = page / pages_per_die_;
  return die * blocks_per_die_ + (page % pages_per_die_) / pages_per_block_;
}

std::uint64_t Ftl::alloc_mu(std::uint64_t die, bool allow_gc,
                            std::vector<PageProgram>* seal_out) {
  auto active_has_room = [&]() {
    const std::uint64_t id = active_block_[die];
    return id != ~0ull && blocks_[id].next_slot < mus_per_block_;
  };
  if (!active_has_room()) {
    if (allow_gc && free_blocks_[die].size() <= kGcLowWater) collect(die);
    // GC's own relocations may have installed a fresh active block with
    // room left; popping another would orphan it half-filled.
    if (!active_has_room()) {
      PIPETTE_ASSERT_MSG(!free_blocks_[die].empty(),
                         "die out of free blocks even after GC");
      const std::uint64_t block_id = free_blocks_[die].back();
      free_blocks_[die].pop_back();
      active_block_[die] = block_id;
      PIPETTE_ASSERT(blocks_[block_id].next_slot == 0);
    }
  }
  const std::uint64_t block_id = active_block_[die];
  Block& block = blocks_[block_id];
  const std::uint64_t page_in_die =
      (block_id % blocks_per_die_) * pages_per_block_ + block.next_slot / spp_;
  const std::uint32_t slot = block.next_slot % spp_;
  ++block.next_slot;
  ++block.valid;
  const std::uint64_t linear_page = die * pages_per_die_ + page_in_die;
  if (block.next_slot % spp_ == 0) {
    // This MU filled the page: the merged write transaction seals and the
    // page is due for programming. Until then freshly-appended MUs sit in
    // the capacitor-backed controller write cache.
    ++stats_.pages_programmed;
    if (seal_out != nullptr) seal_out->push_back({decode(linear_page), spp_});
  }
  return linear_page * spp_ + slot;
}

void Ftl::invalidate_mu(std::uint64_t linear_mu) {
  const std::uint64_t page = linear_mu / spp_;
  const std::uint64_t die = page / pages_per_die_;
  const std::uint64_t block =
      die * blocks_per_die_ + (page % pages_per_die_) / pages_per_block_;
  PIPETTE_ASSERT(blocks_[block].valid > 0);
  --blocks_[block].valid;
  reverse_[linear_mu] = kInvalidMu;
  ++stats_.invalidated_mus;
  // A page stays live while any of its MUs is live; it died with this one
  // if no sibling survives.
  bool any_live = false;
  for (std::uint32_t s = 0; s < spp_ && !any_live; ++s)
    any_live = reverse_[page * spp_ + s] != kInvalidMu;
  if (!any_live) ++stats_.invalidated_pages;
}

void Ftl::collect(std::uint64_t die) {
  // Greedy victim: the fully-written, non-active block with the fewest
  // valid MUs on this die. A fully valid block yields no net space
  // (erase gain == relocation cost), so it is never worth collecting.
  std::uint64_t victim = ~0ull;
  std::uint32_t best_valid = mus_per_block_;  // must strictly improve
  for (std::uint64_t b = 0; b < blocks_per_die_; ++b) {
    const std::uint64_t id = die * blocks_per_die_ + b;
    const Block& block = blocks_[id];
    if (id == active_block_[die]) continue;
    if (block.next_slot != mus_per_block_) continue;  // not sealed
    if (block.valid < best_valid) {
      best_valid = block.valid;
      victim = id;
    }
  }
  if (victim == ~0ull) return;  // nothing collectable yet
  ++stats_.gc_collections;

  // Relocate the victim's live MUs page by page. Each page with any live
  // MU is read once into the GC page buffer — only the live MUs' bytes
  // cross the channel — and the MUs are re-packed through the merged-write
  // allocator, decoupling the per-MU reads from the full-page GC programs.
  // With MU = page the read and the (immediately sealed) program pair up
  // into a classic GcMove.
  const std::uint64_t first_page =
      die * pages_per_die_ + (victim % blocks_per_die_) * pages_per_block_;
  for (std::uint32_t p = 0; p < pages_per_block_; ++p) {
    const std::uint64_t page_linear = first_page + p;
    std::uint32_t live = 0;
    for (std::uint32_t s = 0; s < spp_; ++s)
      if (reverse_[page_linear * spp_ + s] != kInvalidMu) ++live;
    if (live == 0) continue;
    ++stats_.gc_relocated_pages;
    if (spp_ > 1)
      gc_page_reads_.push_back({decode(page_linear), live * mu_size_});
    for (std::uint32_t s = 0; s < spp_; ++s) {
      const std::uint64_t src = page_linear * spp_ + s;
      const std::uint64_t owner = reverse_[src];
      if (owner == kInvalidMu) continue;
      const std::uint64_t target = alloc_mu(
          die, /*allow_gc=*/false, spp_ == 1 ? nullptr : &gc_page_programs_);
      map_[owner] = target;
      reverse_[target] = owner;
      reverse_[src] = kInvalidMu;
      if (spp_ == 1)
        pending_moves_.push_back({decode(page_linear), decode(target / spp_)});
      ++stats_.gc_relocated_mus;
    }
  }
  // Erase the victim; wear is per-die and forwarded to the NAND model.
  blocks_[victim] = Block{};
  free_blocks_[die].push_back(victim);
  ++stats_.blocks_erased;
  ++die_erases_[die];
  pending_erases_.push_back(static_cast<std::uint32_t>(die));
  stats_.max_die_erases = std::max(stats_.max_die_erases, die_erases_[die]);
  stats_.min_die_erases =
      *std::min_element(die_erases_.begin(), die_erases_.end());
}

void Ftl::write_slots(Lba lba, std::uint32_t slot_mask) {
  PIPETTE_ASSERT(lba < lba_count_);
  PIPETTE_ASSERT(slot_mask != 0 && (slot_mask >> spp_) == 0);
  ++stats_.writes_mapped;

  // Invalidate the superseded MUs first: their pages may become GC fodder
  // for the allocations below.
  for (std::uint32_t s = 0; s < spp_; ++s)
    if (slot_mask & (1u << s)) invalidate_mu(map_[lba * spp_ + s]);

  // Round-robin die selection spreads write bursts across the array; all
  // MUs of one write append to the same die's merged-write stream.
  const std::uint64_t die = next_die_;
  next_die_ = (next_die_ + 1) % geometry_.dies();
  for (std::uint32_t s = 0; s < spp_; ++s) {
    if (!(slot_mask & (1u << s))) continue;
    const std::uint64_t target =
        alloc_mu(die, /*allow_gc=*/true, &host_programs_);
    map_[lba * spp_ + s] = target;
    reverse_[target] = lba * spp_ + s;
    ++stats_.mus_written;
  }
}

PhysPageAddr Ftl::update(Lba lba) {
  write_slots(lba, spp_ >= 32 ? ~0u : ((1u << spp_) - 1u));
  return decode(map_[lba * spp_] / spp_);
}

std::vector<GcMove> Ftl::take_gc_moves() {
  return std::exchange(pending_moves_, {});
}

void Ftl::drain_host_programs(std::vector<PageProgram>& out) {
  drain_into(host_programs_, out);
}

void Ftl::drain_gc_page_reads(std::vector<MuPageRead>& out) {
  drain_into(gc_page_reads_, out);
}

void Ftl::drain_gc_page_programs(std::vector<PageProgram>& out) {
  drain_into(gc_page_programs_, out);
}

void Ftl::drain_erased_dies(std::vector<std::uint32_t>& out) {
  drain_into(pending_erases_, out);
}

}  // namespace pipette
