#include "ssd/ftl.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace pipette {

Ftl::Ftl(const NandGeometry& geometry, std::uint64_t lba_count)
    : geometry_(geometry),
      lba_count_(lba_count),
      pages_per_die_(geometry.pages_per_die()),
      pages_per_block_(geometry.pages_per_block),
      blocks_per_die_(pages_per_die_ / geometry.pages_per_block) {
  PIPETTE_ASSERT(geometry_.page_size == kBlockSize);
  PIPETTE_ASSERT(pages_per_die_ % pages_per_block_ == 0);
  const std::uint64_t total_pages = geometry.total_pages();
  PIPETTE_ASSERT_MSG(lba_count <= total_pages - total_pages / 8,
                     "need >= 12.5% spare pages for write allocation");

  map_.resize(lba_count);
  reverse_.assign(total_pages, kInvalidLba);
  blocks_.resize(geometry.dies() * blocks_per_die_);
  free_blocks_.resize(geometry.dies());
  active_block_.assign(geometry.dies(), ~0ull);

  // Initial striping: LBA i lives on channel (i % C), way ((i / C) % W),
  // die-local page (i / (C*W)). Linear index is die-major.
  const std::uint64_t c = geometry_.channels;
  const std::uint64_t w = geometry_.ways_per_channel;
  for (std::uint64_t i = 0; i < lba_count; ++i) {
    const std::uint64_t channel = i % c;
    const std::uint64_t way = (i / c) % w;
    const std::uint64_t page = i / (c * w);
    const std::uint64_t die = channel * w + way;
    const std::uint64_t linear = die * pages_per_die_ + page;
    map_[i] = linear;
    reverse_[linear] = i;
  }
  // Block bookkeeping for the initially-used region; everything beyond is
  // free.
  const std::uint64_t used_per_die = (lba_count + c * w - 1) / (c * w);
  for (std::uint64_t die = 0; die < geometry.dies(); ++die) {
    std::uint64_t used_this_die = used_per_die;
    // The last dies may hold one page fewer; recompute exactly.
    {
      std::uint64_t count = 0;
      // lba residing on this die: those with (lba % (c*w)) ==
      // channel-major die index mapping; count = ceil((lba_count - idx)/cw)
      const std::uint64_t channel = die / w;
      const std::uint64_t way = die % w;
      const std::uint64_t idx = way * c + channel;  // first lba on this die
      if (idx < lba_count) count = (lba_count - idx + c * w - 1) / (c * w);
      used_this_die = count;
    }
    const std::uint64_t full_blocks = used_this_die / pages_per_block_;
    const std::uint32_t partial =
        static_cast<std::uint32_t>(used_this_die % pages_per_block_);
    for (std::uint64_t b = 0; b < blocks_per_die_; ++b) {
      Block& block = blocks_[die * blocks_per_die_ + b];
      if (b < full_blocks) {
        block.next_slot = pages_per_block_;
        block.valid = pages_per_block_;
      } else if (b == full_blocks && partial > 0) {
        // Partially-filled boundary block: the remaining slots are treated
        // as unusable until GC erases the block (flash pages must be
        // programmed in order and the block is no longer the active one).
        block.next_slot = pages_per_block_;
        block.valid = partial;
      } else {
        free_blocks_[die].push_back(die * blocks_per_die_ + b);
      }
    }
    // LIFO pool: reverse so low block ids are popped first.
    std::reverse(free_blocks_[die].begin(), free_blocks_[die].end());
  }
}

PhysPageAddr Ftl::decode(std::uint64_t linear) const {
  const std::uint64_t die = linear / pages_per_die_;
  PhysPageAddr addr;
  addr.channel = static_cast<std::uint32_t>(die / geometry_.ways_per_channel);
  addr.way = static_cast<std::uint32_t>(die % geometry_.ways_per_channel);
  addr.page = linear % pages_per_die_;
  return addr;
}

std::uint64_t Ftl::encode(const PhysPageAddr& addr) const {
  const std::uint64_t die =
      static_cast<std::uint64_t>(addr.channel) * geometry_.ways_per_channel +
      addr.way;
  return die * pages_per_die_ + addr.page;
}

std::uint64_t Ftl::die_of_linear(std::uint64_t linear) const {
  return linear / pages_per_die_;
}

PhysPageAddr Ftl::lookup(Lba lba) const {
  PIPETTE_ASSERT(lba < lba_count_);
  return decode(map_[lba]);
}

std::uint64_t Ftl::free_blocks(std::uint32_t die) const {
  PIPETTE_ASSERT(die < free_blocks_.size());
  return free_blocks_[die].size();
}

std::uint64_t Ftl::alloc_page(std::uint64_t die, bool allow_gc) {
  auto active_has_room = [&]() {
    const std::uint64_t id = active_block_[die];
    return id != ~0ull && blocks_[id].next_slot < pages_per_block_;
  };
  if (!active_has_room()) {
    if (allow_gc && free_blocks_[die].size() <= kGcLowWater) collect(die);
    // GC's own relocations may have installed a fresh active block with
    // room left; popping another would orphan it half-filled.
    if (!active_has_room()) {
      PIPETTE_ASSERT_MSG(!free_blocks_[die].empty(),
                         "die out of free blocks even after GC");
      const std::uint64_t block_id = free_blocks_[die].back();
      free_blocks_[die].pop_back();
      active_block_[die] = block_id;
      PIPETTE_ASSERT(blocks_[block_id].next_slot == 0);
    }
  }
  const std::uint64_t block_id = active_block_[die];
  Block& block = blocks_[block_id];
  const std::uint64_t page_in_die =
      (block_id % blocks_per_die_) * pages_per_block_ + block.next_slot;
  ++block.next_slot;
  ++block.valid;
  return die * pages_per_die_ + page_in_die;
}

void Ftl::collect(std::uint64_t die) {
  // Greedy victim: the fully-written, non-active block with the fewest
  // valid pages on this die. A fully valid block yields no net space
  // (erase gain == relocation cost), so it is never worth collecting.
  std::uint64_t victim = ~0ull;
  std::uint32_t best_valid = pages_per_block_;  // must strictly improve
  for (std::uint64_t b = 0; b < blocks_per_die_; ++b) {
    const std::uint64_t id = die * blocks_per_die_ + b;
    const Block& block = blocks_[id];
    if (id == active_block_[die]) continue;
    if (block.next_slot != pages_per_block_) continue;  // not sealed
    if (block.valid < best_valid) {
      best_valid = block.valid;
      victim = id;
    }
  }
  if (victim == ~0ull) return;  // nothing collectable yet
  ++stats_.gc_collections;

  // Relocate the victim's valid pages. Targets come from this die's
  // remaining pool (the victim is erased afterwards, so net free space
  // grows whenever best_valid < pages_per_block).
  const std::uint64_t first_linear =
      die * pages_per_die_ + (victim % blocks_per_die_) * pages_per_block_;
  for (std::uint32_t s = 0; s < pages_per_block_; ++s) {
    const std::uint64_t linear = first_linear + s;
    const Lba lba = reverse_[linear];
    if (lba == kInvalidLba) continue;
    const std::uint64_t target = alloc_page(die, /*allow_gc=*/false);
    map_[lba] = target;
    reverse_[target] = lba;
    reverse_[linear] = kInvalidLba;
    pending_moves_.push_back({decode(linear), decode(target)});
    ++stats_.gc_relocated_pages;
  }
  // Erase the victim.
  blocks_[victim] = Block{};
  free_blocks_[die].push_back(victim);
  ++stats_.blocks_erased;
}

PhysPageAddr Ftl::update(Lba lba) {
  PIPETTE_ASSERT(lba < lba_count_);
  ++stats_.writes_mapped;

  // Invalidate the superseded page.
  const std::uint64_t old_linear = map_[lba];
  const std::uint64_t old_block =
      die_of_linear(old_linear) * blocks_per_die_ +
      (old_linear % pages_per_die_) / pages_per_block_;
  PIPETTE_ASSERT(blocks_[old_block].valid > 0);
  --blocks_[old_block].valid;
  reverse_[old_linear] = kInvalidLba;
  ++stats_.invalidated_pages;

  // Round-robin die selection spreads write bursts across the array.
  const std::uint64_t die = next_die_;
  next_die_ = (next_die_ + 1) % geometry_.dies();
  const std::uint64_t target = alloc_page(die);
  map_[lba] = target;
  reverse_[target] = lba;
  return decode(target);
}

std::vector<GcMove> Ftl::take_gc_moves() {
  return std::exchange(pending_moves_, {});
}

}  // namespace pipette
