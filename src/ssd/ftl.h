// Page-mapped flash translation layer with garbage collection.
//
// The initial map stripes consecutive LBAs across channels then ways
// (maximising read parallelism). Writes allocate from a per-die active
// block, with dies chosen round-robin so bursts of writes spread across
// the array; the superseded page is invalidated in its block's bookkeeping.
// When a die's free-block pool runs low, greedy GC picks the fully-written
// block with the fewest valid pages, relocates those pages into fresh
// locations and erases the block. Relocations are exposed through
// take_gc_moves() so the controller can charge their NAND work to the
// simulation clock.
#pragma once

#include <cstdint>
#include <vector>

#include "nand/nand.h"
#include "ssd/types.h"

namespace pipette {

struct FtlStats {
  std::uint64_t reads_mapped = 0;
  std::uint64_t writes_mapped = 0;
  std::uint64_t invalidated_pages = 0;
  std::uint64_t gc_collections = 0;
  std::uint64_t gc_relocated_pages = 0;
  std::uint64_t blocks_erased = 0;

  /// Physical pages programmed per host page written (>= 1.0).
  double write_amplification() const {
    return writes_mapped == 0
               ? 1.0
               : static_cast<double>(writes_mapped + gc_relocated_pages) /
                     static_cast<double>(writes_mapped);
  }
};

/// One GC relocation the device must perform (read `from`, program `to`).
struct GcMove {
  PhysPageAddr from;
  PhysPageAddr to;
};

class Ftl {
 public:
  /// Creates a mapping for `lba_count` logical blocks over `geometry`.
  /// Requires lba_count <= 87.5% of total pages (overprovisioning headroom
  /// for write allocation and GC).
  Ftl(const NandGeometry& geometry, std::uint64_t lba_count);

  /// Physical location currently holding `lba`.
  PhysPageAddr lookup(Lba lba) const;

  /// Allocate a new physical page for a write of `lba`, invalidating the
  /// old mapping; may trigger GC (drain take_gc_moves() afterwards).
  PhysPageAddr update(Lba lba);

  /// Relocations performed since the last call (cleared on return).
  std::vector<GcMove> take_gc_moves();

  std::uint64_t lba_count() const { return lba_count_; }
  const FtlStats& stats() const { return stats_; }
  std::uint64_t free_blocks(std::uint32_t die) const;

  /// Record a read for statistics (kept out of lookup(), which is const).
  void note_read() { ++stats_.reads_mapped; }

 private:
  static constexpr std::uint64_t kGcLowWater = 2;  // free blocks per die

  struct Block {
    std::uint32_t next_slot = 0;   // pages written so far
    std::uint32_t valid = 0;       // still-mapped pages
  };

  PhysPageAddr decode(std::uint64_t linear) const;
  std::uint64_t encode(const PhysPageAddr& addr) const;
  std::uint64_t die_of_linear(std::uint64_t linear) const;
  /// Allocate the next page on `die`, running GC beforehand if the pool is
  /// low (GC-internal relocation allocates with allow_gc = false to avoid
  /// re-entrance). Updates bookkeeping for the containing block.
  std::uint64_t alloc_page(std::uint64_t die, bool allow_gc = true);
  void collect(std::uint64_t die);

  NandGeometry geometry_;
  std::uint64_t lba_count_;
  std::uint64_t pages_per_die_;
  std::uint32_t pages_per_block_;
  std::uint64_t blocks_per_die_;

  std::vector<std::uint64_t> map_;       // lba -> linear physical page
  std::vector<Lba> reverse_;             // linear physical page -> lba
  std::vector<Block> blocks_;            // global block id = die-major
  std::vector<std::vector<std::uint64_t>> free_blocks_;  // per die (LIFO)
  std::vector<std::uint64_t> active_block_;              // per die, global id
  std::uint64_t next_die_ = 0;
  std::vector<GcMove> pending_moves_;
  FtlStats stats_;
};

}  // namespace pipette
