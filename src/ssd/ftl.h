// Flash translation layer with a configurable mapping unit (MU) and
// garbage collection.
//
// The FTL maps at MU granularity (512 B <= MU <= page, default MU = page,
// MQSim-style fine-grained mapping): each logical block splits into
// `page_size / MU` mapping units, and each MU maps independently to a
// (physical page, slot) pair. Writes append MUs to a per-die active block —
// merged write transactions pack MUs of *different* LBAs into one physical
// page, which is programmed when its last slot fills (until then the page
// sits in the capacitor-backed controller write cache). Invalidation is
// MU-granular: a physical page is live while any of its MUs is live, and GC
// victim selection scores blocks by valid-MU count. GC reads each victim
// page once into a page buffer, transferring only the valid MUs' bytes, and
// re-packs those MUs through the same merged-write allocator — relocation
// cost is charged per-MU, not per-page.
//
// The initial map stripes consecutive LBAs across channels then ways
// (maximising read parallelism); all MUs of an LBA start in that LBA's
// striped page. With MU = page every page holds exactly one MU, each write
// seals (and thus programs) exactly one page, and GC relocations degrade to
// the read->program pairs of take_gc_moves() — the behaviour is bit-for-bit
// the page-mapped FTL this generalises (golden-pinned).
//
// Per-die wear: every erase bumps that die's erase counter (surfaced via
// erase_count() and the FtlStats wear fields) and is queued for the
// controller to forward to NandArray::note_erase(), which drives the
// erase-correlated fault model in src/faults.
#pragma once

#include <cstdint>
#include <vector>

#include "nand/nand.h"
#include "ssd/types.h"

namespace pipette {

struct FtlStats {
  std::uint64_t reads_mapped = 0;
  std::uint64_t writes_mapped = 0;      // host write ops (per-LBA calls)
  std::uint64_t mus_written = 0;        // host mapping units written
  std::uint64_t invalidated_pages = 0;  // pages whose last valid MU died
  std::uint64_t invalidated_mus = 0;    // superseded mapping units
  std::uint64_t pages_programmed = 0;   // sealed page programs (host + GC)
  std::uint64_t gc_collections = 0;
  std::uint64_t gc_relocated_pages = 0;  // victim pages GC read (>=1 live MU)
  std::uint64_t gc_relocated_mus = 0;    // live MUs GC re-packed
  std::uint64_t blocks_erased = 0;
  std::uint64_t max_die_erases = 0;  // wear spread across dies
  std::uint64_t min_die_erases = 0;

  /// Flash MUs programmed (host + GC relocation) per host MU written
  /// (>= 1.0). Counting MUs, not pages, keeps the ratio honest for
  /// partial-page merged programs; with MU = page it is the classic
  /// pages-programmed-per-page-written ratio.
  double write_amplification() const {
    return mus_written == 0
               ? 1.0
               : static_cast<double>(mus_written + gc_relocated_mus) /
                     static_cast<double>(mus_written);
  }
};

/// One GC relocation the device must perform (read `from`, program `to`).
/// Only emitted with MU = page, where relocations are naturally paired.
struct GcMove {
  PhysPageAddr from;
  PhysPageAddr to;
};

/// A physical page sealed by the merged-write allocator: the controller owes
/// the array one program of `addr` carrying `mus` mapping-unit slots.
struct PageProgram {
  PhysPageAddr addr;
  std::uint32_t mus = 0;
};

/// A page read that only needs `bytes` (= some MU subset * MU size) moved
/// over the channel: GC page-buffer fills and MU-granular staging reads.
struct MuPageRead {
  PhysPageAddr addr;
  std::uint32_t bytes = 0;
};

class Ftl {
 public:
  /// Creates a mapping for `lba_count` logical blocks over `geometry`,
  /// mapped at `mapping_unit` bytes (0 = page-granular). `mapping_unit`
  /// must divide the page size and be >= 512. Requires lba_count <= 87.5%
  /// of total pages (overprovisioning headroom for write allocation and
  /// GC).
  Ftl(const NandGeometry& geometry, std::uint64_t lba_count,
      std::uint32_t mapping_unit = 0);

  /// Physical page currently holding `lba`'s first mapping unit.
  PhysPageAddr lookup(Lba lba) const;

  /// All distinct physical pages currently holding `lba`'s MUs, in slot
  /// order, each with the bytes of `lba`'s MUs it holds (a page appears
  /// once even if it holds several of the MUs; the bytes sum to the page
  /// size). With MU = page this is exactly {lookup(lba), page_size}.
  void lookup_pages(Lba lba, std::vector<MuPageRead>& out) const;

  /// Full-LBA write: invalidates every old MU, appends fresh ones; may
  /// trigger GC. Returns the page now holding slot 0. Drain take_gc_moves()
  /// / drain_*() afterwards.
  PhysPageAddr update(Lba lba);

  /// Host write covering the MU slots set in `slot_mask` (bit k = slot k)
  /// of `lba`. With MU = page the only valid mask is 0x1.
  void write_slots(Lba lba, std::uint32_t slot_mask);

  /// Paired relocations (MU = page only) since the last call (cleared on
  /// return).
  std::vector<GcMove> take_gc_moves();

  /// Pages sealed by host writes since the last drain; `out` is replaced.
  void drain_host_programs(std::vector<PageProgram>& out);
  /// GC page-buffer reads / merged GC programs since the last drain
  /// (MU < page only); `out` is replaced.
  void drain_gc_page_reads(std::vector<MuPageRead>& out);
  void drain_gc_page_programs(std::vector<PageProgram>& out);
  /// Dies erased since the last drain (wear forwarding); `out` is replaced.
  void drain_erased_dies(std::vector<std::uint32_t>& out);
  /// True if any GC/erase drain above would return work (cheap guard).
  bool has_pending_gc_work() const {
    return !gc_page_reads_.empty() || !gc_page_programs_.empty() ||
           !pending_erases_.empty();
  }

  std::uint64_t lba_count() const { return lba_count_; }
  std::uint32_t mapping_unit() const { return mu_size_; }
  std::uint32_t slots_per_page() const { return spp_; }
  const FtlStats& stats() const { return stats_; }
  std::uint64_t free_blocks(std::uint32_t die) const;
  std::uint32_t dies() const { return geometry_.dies(); }
  std::uint64_t erase_count(std::uint32_t die) const;

  /// Record a read for statistics (kept out of lookup(), which is const).
  void note_read() { ++stats_.reads_mapped; }

  // Introspection for the property tests (tests/ftl_test.cpp).
  std::uint64_t block_count() const { return blocks_.size(); }
  std::uint32_t block_valid_mus(std::uint64_t block_id) const;
  /// Linear MU address currently mapped for (lba, slot).
  std::uint64_t mu_linear(Lba lba, std::uint32_t slot) const;
  /// Global block id containing linear MU address `linear_mu`.
  std::uint64_t block_of_linear_mu(std::uint64_t linear_mu) const;

 private:
  static constexpr std::uint64_t kGcLowWater = 2;  // free blocks per die

  struct Block {
    std::uint32_t next_slot = 0;   // MUs written so far
    std::uint32_t valid = 0;       // still-mapped MUs
  };

  PhysPageAddr decode(std::uint64_t linear) const;
  std::uint64_t encode(const PhysPageAddr& addr) const;
  std::uint64_t die_of_linear(std::uint64_t linear) const;
  /// Allocate the next MU on `die`, running GC beforehand if the pool is
  /// low (GC-internal relocation allocates with allow_gc = false to avoid
  /// re-entrance). Updates bookkeeping for the containing block; when the
  /// allocation seals a page, a PageProgram is appended to `seal_out`
  /// (nullptr: the caller accounts for the program itself). Returns the
  /// linear MU address.
  std::uint64_t alloc_mu(std::uint64_t die, bool allow_gc,
                         std::vector<PageProgram>* seal_out);
  void invalidate_mu(std::uint64_t linear_mu);
  void collect(std::uint64_t die);

  NandGeometry geometry_;
  std::uint64_t lba_count_;
  std::uint32_t mu_size_;
  std::uint32_t spp_;  // MU slots per physical page
  std::uint64_t pages_per_die_;
  std::uint32_t pages_per_block_;
  std::uint64_t blocks_per_die_;
  std::uint32_t mus_per_block_;

  // Linear MU address = linear page * spp + slot; logical MU id =
  // lba * spp + slot.
  std::vector<std::uint64_t> map_;       // logical MU -> linear MU address
  std::vector<std::uint64_t> reverse_;   // linear MU address -> logical MU
  std::vector<Block> blocks_;            // global block id = die-major
  std::vector<std::vector<std::uint64_t>> free_blocks_;  // per die (LIFO)
  std::vector<std::uint64_t> active_block_;              // per die, global id
  std::uint64_t next_die_ = 0;
  std::vector<GcMove> pending_moves_;
  std::vector<PageProgram> host_programs_;
  std::vector<MuPageRead> gc_page_reads_;
  std::vector<PageProgram> gc_page_programs_;
  std::vector<std::uint32_t> pending_erases_;
  std::vector<std::uint64_t> die_erases_;
  FtlStats stats_;
};

}  // namespace pipette
