// Experiment runner: drives a workload through a machine (warmup phase +
// measured phase) and collects the metrics every table/figure in the paper
// reports — throughput, I/O traffic, latency, cache hit ratios, memory use.
//
// Every cell (one machine + one workload + one run length) is fully
// self-contained and deterministically seeded, so a matrix of cells is
// embarrassingly parallel: run_experiments_parallel() fans cells across a
// thread pool and returns results bit-identical to running them serially.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "workload/workload.h"

namespace pipette {

struct RunConfig {
  std::uint64_t requests = 500'000;  // measured requests
  std::uint64_t warmup = 250'000;    // cache-warming requests (not measured)
};

struct RunResult {
  std::string path_name;
  std::uint64_t requests = 0;
  std::uint64_t measured_reads = 0;  // read ops in the measured phase
  std::uint64_t bytes_requested = 0;
  SimDuration elapsed = 0;          // simulated time of the measured phase
  std::uint64_t traffic_bytes = 0;  // device->host bytes, measured phase

  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;

  double page_cache_hit_ratio = 0.0;   // over the measured phase
  double fgrc_hit_ratio = 0.0;         // Pipette kinds only
  std::uint64_t page_cache_bytes = 0;  // resident at end of run
  std::uint64_t fgrc_bytes = 0;        // FGRC memory at end of run

  /// Simulator events executed over the whole cell (warmup + measurement).
  /// Deterministic; together with host_seconds it tracks the DES core's
  /// events/sec across PRs (see bench/des_microbench).
  std::uint64_t events_executed = 0;

  /// Host wall-clock spent simulating this cell (warmup + measurement).
  /// The only nondeterministic field: excluded from serial/parallel
  /// equivalence comparisons.
  double host_seconds = 0.0;

  double requests_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(requests) /
                              (static_cast<double>(elapsed) / 1e9);
  }
  double throughput_mib_s() const {
    return elapsed == 0
               ? 0.0
               : static_cast<double>(bytes_requested) / (1024.0 * 1024.0) /
                     (static_cast<double>(elapsed) / 1e9);
  }
};

/// Build the machine for `kind`, create the workload's files, run warmup +
/// measurement, and return the measured metrics.
RunResult run_experiment(const MachineConfig& config, Workload& workload,
                         const RunConfig& run);

/// One independent cell of an experiment matrix. The workload is constructed
/// *inside* the task (each cell gets a fresh, deterministically seeded
/// stream), which is what makes parallel and serial execution bit-identical.
struct ExperimentCell {
  MachineConfig config;
  std::function<std::unique_ptr<Workload>()> make_workload;
  RunConfig run;
};

/// Called (serialised) as each cell finishes: (cell index, its result).
/// Completion order is nondeterministic with jobs > 1; results are not.
using CellDoneFn = std::function<void(std::size_t, const RunResult&)>;

/// Run every cell and return results in cell order. `jobs` = worker threads
/// (0 = hardware concurrency, 1 = legacy serial path with no pool). Results
/// are bit-identical to the serial runner at any job count, except
/// RunResult::host_seconds.
std::vector<RunResult> run_experiments_parallel(
    std::vector<ExperimentCell> cells, unsigned jobs = 0,
    const CellDoneFn& on_cell_done = nullptr);

/// Normalised throughput: each result's requests/sec over the baseline's.
double normalized_throughput(const RunResult& result,
                             const RunResult& baseline);

}  // namespace pipette
