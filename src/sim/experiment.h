// Experiment runner: drives a workload through a machine (warmup phase +
// measured phase) and collects the metrics every table/figure in the paper
// reports — throughput, I/O traffic, latency, cache hit ratios, memory use.
//
// Every cell (one machine + one workload + one run length) is fully
// self-contained and deterministically seeded, so a matrix of cells is
// embarrassingly parallel: run_experiments_parallel() fans cells across a
// thread pool and returns results bit-identical to running them serially.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "workload/workload.h"

namespace pipette {

struct RunConfig {
  std::uint64_t requests = 500'000;  // measured requests
  std::uint64_t warmup = 250'000;    // cache-warming requests (not measured)
  TimelineConfig timeline;           // sim-time series sampling (off = {})
};

struct RunResult {
  std::string path_name;
  std::uint64_t requests = 0;
  std::uint64_t measured_reads = 0;  // read ops in the measured phase
  std::uint64_t bytes_requested = 0;
  SimDuration elapsed = 0;          // simulated time of the measured phase
  std::uint64_t traffic_bytes = 0;  // device->host bytes, measured phase

  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;

  double page_cache_hit_ratio = 0.0;   // over the measured phase
  double fgrc_hit_ratio = 0.0;         // Pipette kinds only
  std::uint64_t page_cache_bytes = 0;  // resident at end of run
  std::uint64_t fgrc_bytes = 0;        // FGRC memory at end of run

  // Fault-model counters, all over the measured phase. `retries` counts
  // extra NAND sensing passes plus any fleet-level client retries;
  // `down_requests` counts requests that arrived while the owning shard was
  // down (fleet runs only).
  std::uint64_t retries = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t down_requests = 0;

  /// Full measured-phase read-latency distribution (the histogram behind
  /// mean/p50/p99 above). Kept so a fleet of runs can merge distributions
  /// bucket-wise and report true cross-shard percentiles instead of
  /// averaging per-shard percentile readouts.
  LatencyHistogram read_latency;

  /// Simulator events executed over the whole cell (warmup + measurement).
  /// Deterministic; together with host_seconds it tracks the DES core's
  /// events/sec across PRs (see bench/des_microbench).
  std::uint64_t events_executed = 0;

  /// End-of-run component counters/gauges under dotted names (ssd.*,
  /// nand.*, page_cache.*, fgrc.*, ...). Always collected — the registry
  /// reads counters the simulation maintains anyway — so it participates in
  /// Deterministic() and the serial/parallel and tracing-on/off equivalence
  /// guarantees.
  MetricsRegistry metrics;

  /// Measured-phase latency decomposition: one histogram per Stage (indexed
  /// by static_cast<size_t>(Stage)). Empty unless the machine was built with
  /// trace.enabled — tracing changes which histograms are populated but not
  /// the simulation itself, so this is *excluded* from Deterministic().
  std::vector<LatencyHistogram> stage_latency;

  /// Measured-phase sim-time series (empty unless run.timeline.interval > 0).
  /// Excluded from Deterministic(): sampling is a run-level option, not part
  /// of the simulated system.
  std::vector<TimeSample> timeline;

  /// Raw spans drained from the tracer (empty unless tracing was enabled);
  /// feed to chrome_trace_json(). Excluded from Deterministic().
  std::vector<TraceSpan> trace_spans;

  /// Host wall-clock spent simulating this cell (warmup + measurement).
  /// The only nondeterministic field: excluded from serial/parallel
  /// equivalence comparisons.
  double host_seconds = 0.0;

  /// Every deterministic field as one comparable (and gtest-printable)
  /// tuple — host_seconds is wall-clock and deliberately absent.
  /// Equivalence tests assert
  ///   EXPECT_EQ(a.Deterministic(), b.Deterministic())
  /// instead of repeating field-by-field boilerplate that silently rots
  /// when a field is added.
  auto Deterministic() const {
    return std::tie(path_name, requests, measured_reads, bytes_requested,
                    elapsed, traffic_bytes, mean_latency_us, p50_latency_us,
                    p99_latency_us, page_cache_hit_ratio, fgrc_hit_ratio,
                    page_cache_bytes, fgrc_bytes, retries, failed_reads,
                    degraded_reads, down_requests, read_latency,
                    events_executed, metrics);
  }

  /// Fraction of measured reads that returned data (possibly degraded).
  /// 1.0 when no read was attempted.
  double availability() const {
    const std::uint64_t attempted = measured_reads + failed_reads;
    return attempted == 0
               ? 1.0
               : static_cast<double>(measured_reads) /
                     static_cast<double>(attempted);
  }

  double requests_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(requests) /
                              (static_cast<double>(elapsed) / 1e9);
  }
  double throughput_mib_s() const {
    return elapsed == 0
               ? 0.0
               : static_cast<double>(bytes_requested) / (1024.0 * 1024.0) /
                     (static_cast<double>(elapsed) / 1e9);
  }
};

/// Build the machine for `kind`, create the workload's files, run warmup +
/// measurement, and return the measured metrics.
RunResult run_experiment(const MachineConfig& config, Workload& workload,
                         const RunConfig& run);

/// Per-request interception for fault-aware drivers (the fleet's shard
/// outage policies). `on_request` sees every request before it is issued,
/// together with the issuing closure; returning true means the hook consumed
/// (or rejected) the request and the runner must not issue it itself.
struct RunHooks {
  using IssueFn = std::function<void(const Request&)>;
  std::function<bool(const Request&, const IssueFn&)> on_request;
};

/// The same warmup + measurement flow on a caller-owned machine. This is
/// what the fleet layer drives: each Shard owns its Machine (and with it a
/// private Simulator) and pushes its sub-stream through it. The machine is
/// expected to be freshly built for `workload.files()`; reusing a machine
/// across runs measures the second run against pre-warmed caches.
RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run);

/// Hooked variant; `hooks.on_request` (when set) wraps every issued request.
RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run, const RunHooks& hooks);

/// Reusable per-worker scratch for back-to-back runs on one thread (the
/// fleet's pinned workers hand the same arena to every shard they run).
/// Everything in here is capacity, not simulated state: the run clears each
/// buffer before use and machines only ever see empty pools, so passing an
/// arena changes allocation behaviour — one warm-up per worker instead of
/// one per shard — and nothing else.
struct RunArena {
  std::vector<std::uint8_t> io_buf;             // request bounce buffer
  std::vector<int> fds;                         // per-run fd table
  LatencyHistogram warmup_latency;              // warmup snapshot scratch
  std::vector<LatencyHistogram> warmup_stages;  // traced warmup snapshot
  std::vector<LbaRange> lba_scratch;            // LBA-extractor scratch
  std::vector<std::vector<FgRange>> fg_ranges;  // controller FgRange pool
};

/// Arena variant: identical results to the plain overloads (bit-for-bit,
/// asserted by fleet_test), reusing `arena`'s capacity when non-null.
RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run, const RunHooks& hooks,
                            RunArena* arena);

/// One independent cell of an experiment matrix. The workload is constructed
/// *inside* the task (each cell gets a fresh, deterministically seeded
/// stream), which is what makes parallel and serial execution bit-identical.
struct ExperimentCell {
  MachineConfig config;
  std::function<std::unique_ptr<Workload>()> make_workload;
  RunConfig run;
};

/// Called (serialised) as each cell finishes: (cell index, its result).
/// Completion order is nondeterministic with jobs > 1; results are not.
using CellDoneFn = std::function<void(std::size_t, const RunResult&)>;

/// Run every cell and return results in cell order. `jobs` = worker threads
/// (0 = hardware concurrency, 1 = legacy serial path with no pool). Results
/// are bit-identical to the serial runner at any job count, except
/// RunResult::host_seconds.
std::vector<RunResult> run_experiments_parallel(
    std::vector<ExperimentCell> cells, unsigned jobs = 0,
    const CellDoneFn& on_cell_done = nullptr);

/// Normalised throughput: each result's requests/sec over the baseline's.
double normalized_throughput(const RunResult& result,
                             const RunResult& baseline);

}  // namespace pipette
