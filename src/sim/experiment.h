// Experiment runner: drives a workload through a machine (warmup phase +
// measured phase) and collects the metrics every table/figure in the paper
// reports — throughput, I/O traffic, latency, cache hit ratios, memory use.
#pragma once

#include <cstdint>
#include <string>

#include "sim/machine.h"
#include "workload/workload.h"

namespace pipette {

struct RunConfig {
  std::uint64_t requests = 500'000;  // measured requests
  std::uint64_t warmup = 250'000;    // cache-warming requests (not measured)
};

struct RunResult {
  std::string path_name;
  std::uint64_t requests = 0;
  std::uint64_t bytes_requested = 0;
  SimDuration elapsed = 0;          // simulated time of the measured phase
  std::uint64_t traffic_bytes = 0;  // device->host bytes, measured phase

  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;

  double page_cache_hit_ratio = 0.0;   // over the measured phase
  double fgrc_hit_ratio = 0.0;         // Pipette kinds only
  std::uint64_t page_cache_bytes = 0;  // resident at end of run
  std::uint64_t fgrc_bytes = 0;        // FGRC memory at end of run

  double requests_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(requests) /
                              (static_cast<double>(elapsed) / 1e9);
  }
  double throughput_mib_s() const {
    return elapsed == 0
               ? 0.0
               : static_cast<double>(bytes_requested) / (1024.0 * 1024.0) /
                     (static_cast<double>(elapsed) / 1e9);
  }
};

/// Build the machine for `kind`, create the workload's files, run warmup +
/// measurement, and return the measured metrics.
RunResult run_experiment(const MachineConfig& config, Workload& workload,
                         const RunConfig& run);

/// Normalised throughput: each result's requests/sec over the baseline's.
double normalized_throughput(const RunResult& result,
                             const RunResult& baseline);

}  // namespace pipette
