// Machine: one simulated host + SSD + file system with one read-path
// implementation installed — the unit every experiment instantiates once
// per system under comparison.
#pragma once

#include <memory>
#include <span>

#include "fs/vfs.h"
#include "iopath/block_io_path.h"
#include "iopath/pipette_path.h"
#include "iopath/twob_ssd_path.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/machine_config.h"
#include "workload/workload.h"

namespace pipette {

/// Point-in-time view of the machine's utilization accounts, cheap enough
/// for the timeline sampler to take per interval. Cumulative fields (the
/// *_busy_ns) are differenced by the caller; depth fields are instantaneous
/// levels at the snapshot instant. Reading the accounts only advances
/// observer-only sweep state — never the simulation.
struct UtilSnapshot {
  std::uint64_t nand_busy_ns = 0;          // die sensing + programming
  std::uint64_t interconnect_busy_ns = 0;  // PCIe DMA + LMB link combined
  std::uint64_t gc_busy_ns = 0;            // GC-attributed NAND time
  std::uint64_t gc_moves = 0;              // pages GC has relocated
  std::uint32_t info_ring_depth = 0;       // records in flight right now
  std::uint32_t nand_queue_depth = 0;      // host ops queued/active on dies
};

class Machine {
 public:
  Machine(const MachineConfig& config, std::span<const FileSpec> files);

  Simulator& sim() { return sim_; }
  Vfs& vfs() { return *vfs_; }
  SsdController& ssd() { return *ssd_; }
  FileSystem& fs() { return *fs_; }
  PathKind kind() const { return config_.kind; }

  /// The installed path, and typed accessors (nullptr if another kind).
  ReadPathBase& path() { return *path_; }
  BlockIoPath* block_path();    // kBlockIo only
  PipettePath* pipette_path();  // kPipette / kPipetteNoCache only
  TwoBSsdPath* twob_path();     // kTwoBMmio / kTwoBDma only

  /// The page cache of whichever path has one (block or pipette kinds).
  PageCache* page_cache();

  /// Device -> host bytes moved so far (the paper's I/O traffic metric).
  std::uint64_t io_traffic_bytes() const { return ssd_->stats().bytes_to_host; }

  /// Open flags appropriate for this machine's path (fine-grained kinds add
  /// O_FINE_GRAINED).
  int open_flags(bool writable) const;

  /// Shard-recovery support: flush dirty pages, then drop all host cache
  /// state (page cache + FGRC) as a machine restart would. Device state
  /// (flash contents, FTL, device DRAM buffer) survives; cumulative
  /// statistics are preserved.
  void cold_restart();

  /// Worker-arena support (cache-local fleet execution): donate warm
  /// per-request scratch (LBA-extractor scratch, controller FgRange pool)
  /// before a run and reclaim it after, so a worker running several shards
  /// back-to-back grows these pools once instead of once per machine.
  /// Scratch holds no simulated state; adoption never changes results.
  void adopt_scratch(std::vector<LbaRange>&& lba,
                     std::vector<std::vector<FgRange>>&& fg_pool);
  void release_scratch(std::vector<LbaRange>& lba,
                       std::vector<std::vector<FgRange>>& fg_pool);

  /// The machine's tracer, or nullptr when config.trace.enabled is false.
  Tracer* tracer() { return tracer_.get(); }

  /// Snapshot every component's counters/gauges into `out` under dotted
  /// names (ssd.*, nand.*, page_cache.*, fgrc.*, ...). Always available —
  /// collection does not depend on tracing.
  void collect_metrics(MetricsRegistry& out);

  /// Utilization accounts at sim().now() (see UtilSnapshot).
  UtilSnapshot util_snapshot();

 private:
  MachineConfig config_;
  Simulator sim_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<SsdController> ssd_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<ReadPathBase> path_;
  std::unique_ptr<Vfs> vfs_;
};

const char* to_string(PathKind kind);

}  // namespace pipette
