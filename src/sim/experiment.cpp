#include "sim/experiment.h"

#include <vector>

#include "common/assert.h"

namespace pipette {

RunResult run_experiment(const MachineConfig& config, Workload& workload,
                         const RunConfig& run) {
  Machine machine(config, workload.files());
  Vfs& vfs = machine.vfs();

  std::vector<int> fds;
  for (const FileSpec& spec : workload.files()) {
    fds.push_back(vfs.open(spec.name, machine.open_flags(/*writable=*/true)));
  }

  std::vector<std::uint8_t> buf(64 * 1024);
  auto issue = [&](const Request& req) {
    PIPETTE_ASSERT(req.len <= buf.size());
    PIPETTE_ASSERT(req.file_index < fds.size());
    const int fd = fds[req.file_index];
    if (req.is_write) {
      vfs.pwrite(fd, req.offset, {buf.data(), req.len});
    } else {
      vfs.pread(fd, req.offset, {buf.data(), req.len});
    }
  };

  for (std::uint64_t i = 0; i < run.warmup; ++i) issue(workload.next());

  // Snapshot counters so the result reflects only the measured phase.
  const std::uint64_t traffic0 = machine.io_traffic_bytes();
  const SimTime t0 = machine.sim().now();
  const std::uint64_t reads0 = machine.path().stats().reads;
  const std::uint64_t bytes0 = machine.path().stats().bytes_requested;
  RatioCounter pc0, fgrc0;
  if (PageCache* pc = machine.page_cache()) pc0 = pc->stats().lookups;
  if (PipettePath* p = machine.pipette_path())
    fgrc0 = p->fgrc().stats().lookups;
  LatencyHistogram lat0 = machine.path().stats().read_latency;

  for (std::uint64_t i = 0; i < run.requests; ++i) issue(workload.next());

  RunResult result;
  result.path_name = to_string(machine.kind());
  result.requests = run.requests;
  result.bytes_requested = machine.path().stats().bytes_requested - bytes0;
  result.elapsed = machine.sim().now() - t0;
  result.traffic_bytes = machine.io_traffic_bytes() - traffic0;
  (void)reads0;

  // Measured-phase latency distribution = total minus warmup snapshot.
  // LatencyHistogram has no subtraction; approximate percentiles with the
  // full-run histogram (warmup shifts them only marginally) but compute the
  // mean exactly from the measured phase.
  const LatencyHistogram& lat = machine.path().stats().read_latency;
  const std::uint64_t measured_reads = lat.count() - lat0.count();
  if (measured_reads > 0) {
    const double total_ns = lat.mean_ns() * static_cast<double>(lat.count()) -
                            lat0.mean_ns() * static_cast<double>(lat0.count());
    result.mean_latency_us =
        total_ns / static_cast<double>(measured_reads) / 1e3;
  }
  result.p50_latency_us = to_us(lat.percentile(50));
  result.p99_latency_us = to_us(lat.percentile(99));

  if (PageCache* pc = machine.page_cache()) {
    const auto& now = pc->stats().lookups;
    result.page_cache_hit_ratio =
        (now.accesses() - pc0.accesses()) == 0
            ? 0.0
            : static_cast<double>(now.hits() - pc0.hits()) /
                  static_cast<double>(now.accesses() - pc0.accesses());
    result.page_cache_bytes = pc->resident_bytes();
  }
  if (PipettePath* p = machine.pipette_path()) {
    const auto& now = p->fgrc().stats().lookups;
    result.fgrc_hit_ratio =
        (now.accesses() - fgrc0.accesses()) == 0
            ? 0.0
            : static_cast<double>(now.hits() - fgrc0.hits()) /
                  static_cast<double>(now.accesses() - fgrc0.accesses());
    result.fgrc_bytes = p->fgrc().memory_bytes();
  }
  return result;
}

double normalized_throughput(const RunResult& result,
                             const RunResult& baseline) {
  PIPETTE_ASSERT(baseline.elapsed > 0 && result.elapsed > 0);
  return result.requests_per_sec() / baseline.requests_per_sec();
}

}  // namespace pipette
