#include "sim/experiment.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <vector>

#include "common/assert.h"
#include "common/thread_pool.h"

namespace pipette {

RunResult run_experiment(const MachineConfig& config, Workload& workload,
                         const RunConfig& run) {
  Machine machine(config, workload.files());
  return run_experiment_on(machine, workload, run);
}

RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run) {
  return run_experiment_on(machine, workload, run, RunHooks{}, nullptr);
}

RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run, const RunHooks& hooks) {
  return run_experiment_on(machine, workload, run, hooks, nullptr);
}

RunResult run_experiment_on(Machine& machine, Workload& workload,
                            const RunConfig& run, const RunHooks& hooks,
                            RunArena* arena) {
  const auto host_t0 = std::chrono::steady_clock::now();
  Vfs& vfs = machine.vfs();

  // All per-run scratch lives in the arena; with a caller-provided one,
  // capacity carries over from the previous run on this thread. Machines
  // additionally adopt the arena's LBA/FgRange pools for the duration of
  // the run (donated empty, returned empty — never simulated state).
  RunArena local;
  RunArena& a = arena != nullptr ? *arena : local;
  if (arena != nullptr) {
    machine.adopt_scratch(std::move(a.lba_scratch), std::move(a.fg_ranges));
  }

  std::vector<int>& fds = a.fds;
  fds.clear();
  for (const FileSpec& spec : workload.files()) {
    fds.push_back(vfs.open(spec.name, machine.open_flags(/*writable=*/true)));
  }

  std::vector<std::uint8_t>& buf = a.io_buf;
  buf.resize(64 * 1024);
  auto issue_direct = [&](const Request& req) {
    PIPETTE_ASSERT(req.len <= buf.size());
    PIPETTE_ASSERT(req.file_index < fds.size());
    const int fd = fds[req.file_index];
    if (req.is_write) {
      vfs.pwrite(fd, req.offset, {buf.data(), req.len});
    } else {
      vfs.pread(fd, req.offset, {buf.data(), req.len});
    }
  };
  RunHooks::IssueFn issue_fn;
  if (hooks.on_request) issue_fn = issue_direct;
  auto issue = [&](const Request& req) {
    if (hooks.on_request && hooks.on_request(req, issue_fn)) return;
    issue_direct(req);
  };

  for (std::uint64_t i = 0; i < run.warmup; ++i) issue(workload.next());

  // Snapshot counters so the result reflects only the measured phase.
  const std::uint64_t traffic0 = machine.io_traffic_bytes();
  const SimTime t0 = machine.sim().now();
  const std::uint64_t reads0 = machine.path().stats().reads;
  const std::uint64_t writes0 = machine.path().stats().writes;
  const std::uint64_t bytes0 = machine.path().stats().bytes_requested;
  const std::uint64_t failed0 = machine.path().stats().failed_reads;
  const std::uint64_t degraded0 = machine.path().stats().degraded_reads;
  const std::uint64_t retries0 = machine.ssd().nand().stats().read_retries;
  RatioCounter pc0, fgrc0;
  if (PageCache* pc = machine.page_cache()) pc0 = pc->stats().lookups;
  if (PipettePath* p = machine.pipette_path())
    fgrc0 = p->fgrc().stats().lookups;
  // Copy-assignment into arena-held histogram buffers reuses their bucket
  // storage, so a pinned worker snapshots warmup state without reallocating.
  LatencyHistogram& lat0 = a.warmup_latency;
  lat0 = machine.path().stats().read_latency;
  std::vector<LatencyHistogram>& stage0 = a.warmup_stages;
  if (Tracer* tracer = machine.tracer()) {
    stage0 = tracer->stage_latency();
  } else {
    stage0.clear();
  }

  // Sim-time series: sampled between requests, so the sampler only reads
  // counters the simulation maintains anyway and never perturbs it.
  TimelineSampler sampler(run.timeline, machine.sim().now());
  const UtilSnapshot u0 = machine.util_snapshot();
  const std::uint64_t gc_moves0 = u0.gc_moves;
  auto hit_ratio_since = [](const RatioCounter& now, const RatioCounter& at) {
    const std::uint64_t accesses = now.accesses() - at.accesses();
    return accesses == 0 ? 0.0
                         : static_cast<double>(now.hits() - at.hits()) /
                               static_cast<double>(accesses);
  };

  for (std::uint64_t i = 0; i < run.requests; ++i) {
    issue(workload.next());
    if (sampler.due(machine.sim().now())) {
      TimeSample sample;
      sample.reads = machine.path().stats().reads - reads0;
      sample.writes = machine.path().stats().writes - writes0;
      sample.traffic_bytes = machine.io_traffic_bytes() - traffic0;
      if (PageCache* pc = machine.page_cache())
        sample.page_cache_hit_ratio = hit_ratio_since(pc->stats().lookups, pc0);
      if (PipettePath* p = machine.pipette_path()) {
        sample.fgrc_hit_ratio = hit_ratio_since(p->fgrc().stats().lookups, fgrc0);
        sample.fgrc_bytes = p->fgrc().memory_bytes();
      }
      // GC/fault activity and utilization accounts, measured-phase deltas
      // (depth fields are instantaneous — no baseline to subtract).
      sample.read_retries =
          machine.ssd().nand().stats().read_retries - retries0;
      sample.degraded_reads =
          machine.path().stats().degraded_reads - degraded0;
      const UtilSnapshot u = machine.util_snapshot();
      sample.gc_moves = u.gc_moves - gc_moves0;
      sample.nand_busy_ns = u.nand_busy_ns - u0.nand_busy_ns;
      sample.interconnect_busy_ns =
          u.interconnect_busy_ns - u0.interconnect_busy_ns;
      sample.gc_busy_ns = u.gc_busy_ns - u0.gc_busy_ns;
      sample.info_ring_depth = u.info_ring_depth;
      sample.nand_queue_depth = u.nand_queue_depth;
      sampler.record(machine.sim().now(), sample);
    }
  }

  RunResult result;
  result.path_name = to_string(machine.kind());
  result.requests = run.requests;
  result.measured_reads = machine.path().stats().reads - reads0;
  result.bytes_requested = machine.path().stats().bytes_requested - bytes0;
  result.elapsed = machine.sim().now() - t0;
  result.traffic_bytes = machine.io_traffic_bytes() - traffic0;
  result.failed_reads = machine.path().stats().failed_reads - failed0;
  result.degraded_reads = machine.path().stats().degraded_reads - degraded0;
  result.retries = machine.ssd().nand().stats().read_retries - retries0;

  // Measured-phase latency distribution: subtract the warmup snapshot
  // bucket-wise, so mean and percentiles all describe exactly the measured
  // requests.
  LatencyHistogram measured = machine.path().stats().read_latency.diff(lat0);
  if (measured.count() > 0) {
    result.mean_latency_us = measured.mean_ns() / 1e3;
    result.p50_latency_us = to_us(measured.percentile(50));
    result.p99_latency_us = to_us(measured.percentile(99));
  }
  result.read_latency = std::move(measured);

  if (PageCache* pc = machine.page_cache()) {
    const auto& now = pc->stats().lookups;
    result.page_cache_hit_ratio =
        (now.accesses() - pc0.accesses()) == 0
            ? 0.0
            : static_cast<double>(now.hits() - pc0.hits()) /
                  static_cast<double>(now.accesses() - pc0.accesses());
    result.page_cache_bytes = pc->resident_bytes();
  }
  if (PipettePath* p = machine.pipette_path()) {
    const auto& now = p->fgrc().stats().lookups;
    result.fgrc_hit_ratio =
        (now.accesses() - fgrc0.accesses()) == 0
            ? 0.0
            : static_cast<double>(now.hits() - fgrc0.hits()) /
                  static_cast<double>(now.accesses() - fgrc0.accesses());
    result.fgrc_bytes = p->fgrc().memory_bytes();
  }
  result.events_executed = machine.sim().events_executed();
  machine.collect_metrics(result.metrics);
  result.timeline = sampler.take();
  if (Tracer* tracer = machine.tracer()) {
    // Measured-phase stage decomposition: subtract the warmup snapshot
    // bucket-wise, mirroring the read_latency treatment above.
    const std::vector<LatencyHistogram>& now = tracer->stage_latency();
    result.stage_latency.resize(now.size());
    for (std::size_t s = 0; s < now.size(); ++s) {
      result.stage_latency[s] =
          s < stage0.size() ? now[s].diff(stage0[s]) : now[s];
    }
    result.trace_spans = tracer->take_spans();
  }
  if (arena != nullptr) machine.release_scratch(a.lba_scratch, a.fg_ranges);
  // Between cells the queue is (near-)empty; hand back whatever slab
  // capacity the run's burstiest moment grew (high-water trimming — the
  // peak itself is already recorded as des.slab_peak above).
  machine.sim().trim_queue();
  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return result;
}

std::vector<RunResult> run_experiments_parallel(
    std::vector<ExperimentCell> cells, unsigned jobs,
    const CellDoneFn& on_cell_done) {
  std::vector<RunResult> results(cells.size());
  if (jobs == 0) jobs = ThreadPool::default_threads();

  auto run_cell = [&](std::size_t i) {
    const ExperimentCell& cell = cells[i];
    std::unique_ptr<Workload> workload = cell.make_workload();
    PIPETTE_ASSERT_MSG(workload != nullptr, "cell workload factory failed");
    results[i] = run_experiment(cell.config, *workload, cell.run);
  };

  if (jobs == 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      run_cell(i);
      if (on_cell_done) on_cell_done(i, results[i]);
    }
    return results;
  }

  ThreadPool pool(
      static_cast<unsigned>(std::min<std::size_t>(jobs, cells.size())));
  std::mutex done_mu;
  std::vector<std::future<void>> pending;
  pending.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    pending.push_back(pool.submit([&, i] {
      run_cell(i);
      if (on_cell_done) {
        std::lock_guard<std::mutex> lock(done_mu);
        on_cell_done(i, results[i]);
      }
    }));
  }
  for (std::future<void>& f : pending) f.get();  // rethrows task failures
  return results;
}

double normalized_throughput(const RunResult& result,
                             const RunResult& baseline) {
  PIPETTE_ASSERT(baseline.elapsed > 0 && result.elapsed > 0);
  return result.requests_per_sec() / baseline.requests_per_sec();
}

}  // namespace pipette
