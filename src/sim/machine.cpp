#include "sim/machine.h"

#include "common/assert.h"

namespace pipette {

const char* to_string(PathKind kind) {
  switch (kind) {
    case PathKind::kBlockIo:
      return "Block I/O";
    case PathKind::kTwoBMmio:
      return "2B-SSD MMIO";
    case PathKind::kTwoBDma:
      return "2B-SSD DMA";
    case PathKind::kPipetteNoCache:
      return "Pipette w/o cache";
    case PathKind::kPipette:
      return "Pipette";
  }
  return "?";
}

namespace {

MachineConfig shaped(const MachineConfig& in) {
  MachineConfig config = in;
  // Non-Pipette machines need no FGRC space in the HMB; shrink it so the
  // host-memory footprint comparison stays honest.
  if (config.kind != PathKind::kPipette &&
      config.kind != PathKind::kPipetteNoCache) {
    config.ssd.hmb.data_bytes = 1 * kMiB;
  } else {
    PIPETTE_ASSERT_MSG(
        config.ssd.hmb.data_bytes >= config.pipette.fgrc.slab.slab_size,
        "HMB data area smaller than one slab");
    config.pipette.page_cache_bytes = config.page_cache_bytes;
    config.pipette.readahead = config.readahead;
    config.pipette.use_cache = config.kind == PathKind::kPipette;
  }
  return config;
}

}  // namespace

Machine::Machine(const MachineConfig& config, std::span<const FileSpec> files)
    : config_(shaped(config)) {
  ssd_ = std::make_unique<SsdController>(sim_, config_.ssd);
  fs_ = std::make_unique<FileSystem>(ssd_->ftl().lba_count());
  for (const FileSpec& spec : files) {
    fs_->create(spec.name, spec.size, spec.max_extent_blocks,
                spec.gap_blocks);
  }
  switch (config_.kind) {
    case PathKind::kBlockIo:
      path_ = std::make_unique<BlockIoPath>(sim_, *ssd_, *fs_, config_.host,
                                            config_.page_cache_bytes,
                                            config_.readahead);
      break;
    case PathKind::kTwoBMmio:
      path_ = std::make_unique<TwoBSsdPath>(sim_, *ssd_, *fs_, config_.host,
                                            TwoBMode::kMmio);
      break;
    case PathKind::kTwoBDma:
      path_ = std::make_unique<TwoBSsdPath>(sim_, *ssd_, *fs_, config_.host,
                                            TwoBMode::kDma);
      break;
    case PathKind::kPipette:
    case PathKind::kPipetteNoCache:
      path_ = std::make_unique<PipettePath>(sim_, *ssd_, *fs_, config_.host,
                                            config_.pipette);
      break;
  }
  vfs_ = std::make_unique<Vfs>(*fs_, *path_);
}

BlockIoPath* Machine::block_path() {
  return config_.kind == PathKind::kBlockIo
             ? static_cast<BlockIoPath*>(path_.get())
             : nullptr;
}

PipettePath* Machine::pipette_path() {
  return (config_.kind == PathKind::kPipette ||
          config_.kind == PathKind::kPipetteNoCache)
             ? static_cast<PipettePath*>(path_.get())
             : nullptr;
}

TwoBSsdPath* Machine::twob_path() {
  return (config_.kind == PathKind::kTwoBMmio ||
          config_.kind == PathKind::kTwoBDma)
             ? static_cast<TwoBSsdPath*>(path_.get())
             : nullptr;
}

PageCache* Machine::page_cache() {
  if (BlockIoPath* b = block_path()) return &b->page_cache();
  if (PipettePath* p = pipette_path()) return &p->block_route().page_cache();
  return nullptr;
}

void Machine::cold_restart() {
  // Persist dirty pages first — a page cache clear must not lose writes the
  // workload already considers durable after recovery.
  if (BlockIoPath* b = block_path()) {
    b->sync();
  } else if (PipettePath* p = pipette_path()) {
    p->block_route().sync();
  }
  if (PageCache* pc = page_cache()) pc->clear();
  if (PipettePath* p = pipette_path()) p->reset_fgrc();
}

MachineConfig default_machine(PathKind kind) {
  MachineConfig config;
  config.kind = kind;
  // SSD: the YS9203's architecture (Fig. 5) — 8 channels x 8 ways, TLC.
  config.ssd.geometry = NandGeometry{};  // 8x8, 4 KiB pages, 32 GiB
  config.ssd.nand_timing.cell = CellType::kTlc;
  config.ssd.read_buffer_bytes = 512ull * kMiB;
  config.ssd.block_reads_use_buffer = false;
  config.ssd.cmb_slots = 64;
  config.ssd.hmb.info_slots = 4096;
  config.ssd.hmb.tempbuf_bytes = 64 * kKiB;
  config.ssd.hmb.data_bytes = 160ull * kMiB;
  // Host caches: equal byte budgets for the two competing caches.
  config.page_cache_bytes = 160ull * kMiB;
  config.readahead = ReadaheadConfig{1, 32, true};
  config.pipette.fgrc.slab.slab_size = 256 * kKiB;
  config.pipette.fgrc.slab.max_external_bytes = 32ull * kMiB;
  return config;
}

MachineConfig realapp_machine(PathKind kind) {
  MachineConfig config = default_machine(kind);
  // Real applications (§4.3): the datasets (~1 GiB here, 4.1 GB in the
  // paper) dwarf the device's staging region (the prototype's 64 MB
  // mapping region), so byte-path misses usually pay the NAND read — the
  // regime where the no-cache approaches fall *below* block I/O and only
  // the fine-grained read cache recovers the locality.
  config.ssd.read_buffer_bytes = 64ull * kMiB;
  // The block baseline's page cache is large but still well under the
  // dataset (the paper's 2.3 GB against 4.1 GB tables); Pipette's FGRC
  // stores the demanded bytes compactly in half that budget.
  config.page_cache_bytes = 192ull * kMiB;
  config.ssd.hmb.data_bytes = 96ull * kMiB;
  return config;
}

int Machine::open_flags(bool writable) const {
  int flags = writable ? kOpenWrite : kOpenRead;
  if (config_.kind == PathKind::kPipette ||
      config_.kind == PathKind::kPipetteNoCache) {
    flags |= kOpenFineGrained;
  }
  return flags;
}

}  // namespace pipette
