#include "sim/machine.h"

#include "common/assert.h"

namespace pipette {

const char* to_string(PathKind kind) {
  switch (kind) {
    case PathKind::kBlockIo:
      return "Block I/O";
    case PathKind::kTwoBMmio:
      return "2B-SSD MMIO";
    case PathKind::kTwoBDma:
      return "2B-SSD DMA";
    case PathKind::kPipetteNoCache:
      return "Pipette w/o cache";
    case PathKind::kPipette:
      return "Pipette";
  }
  return "?";
}

namespace {

MachineConfig shaped(const MachineConfig& in) {
  MachineConfig config = in;
  config.ssd.interconnect = config.interconnect;
  if (config.mapping_unit != 0)
    config.ssd.mapping_unit = config.mapping_unit;
  // Non-Pipette machines need no FGRC space in the HMB; shrink it so the
  // host-memory footprint comparison stays honest.
  if (config.kind != PathKind::kPipette &&
      config.kind != PathKind::kPipetteNoCache) {
    config.ssd.hmb.data_bytes = 1 * kMiB;
  } else {
    PIPETTE_ASSERT_MSG(
        config.ssd.hmb.data_bytes >= config.pipette.fgrc.slab.slab_size,
        "HMB data area smaller than one slab");
    config.pipette.page_cache_bytes = config.page_cache_bytes;
    config.pipette.readahead = config.readahead;
    config.pipette.use_cache = config.kind == PathKind::kPipette;
    config.pipette.prefetch = config.prefetch;
    config.pipette.prefetch.enabled =
        config.prefetch.enabled && config.kind == PathKind::kPipette;
    if (config.interconnect == InterconnectKind::kLmb) {
      // The buffer region lives on the CXL device: the host DRAM it used
      // to occupy goes back to the page cache (the memory-footprint story
      // of CXL-resident buffers — see DESIGN.md on LMB calibration).
      config.pipette.page_cache_bytes += config.ssd.hmb.data_bytes;
    }
  }
  return config;
}

}  // namespace

Machine::Machine(const MachineConfig& config, std::span<const FileSpec> files)
    : config_(shaped(config)), sim_(config_.queue) {
  if (config_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(config_.trace);
    sim_.set_tracer(tracer_.get());
  }
  ssd_ = std::make_unique<SsdController>(sim_, config_.ssd);
  fs_ = std::make_unique<FileSystem>(ssd_->ftl().lba_count());
  for (const FileSpec& spec : files) {
    fs_->create(spec.name, spec.size, spec.max_extent_blocks,
                spec.gap_blocks);
  }
  switch (config_.kind) {
    case PathKind::kBlockIo:
      path_ = std::make_unique<BlockIoPath>(sim_, *ssd_, *fs_, config_.host,
                                            config_.page_cache_bytes,
                                            config_.readahead);
      break;
    case PathKind::kTwoBMmio:
      path_ = std::make_unique<TwoBSsdPath>(sim_, *ssd_, *fs_, config_.host,
                                            TwoBMode::kMmio);
      break;
    case PathKind::kTwoBDma:
      path_ = std::make_unique<TwoBSsdPath>(sim_, *ssd_, *fs_, config_.host,
                                            TwoBMode::kDma);
      break;
    case PathKind::kPipette:
    case PathKind::kPipetteNoCache:
      path_ = std::make_unique<PipettePath>(sim_, *ssd_, *fs_, config_.host,
                                            config_.pipette);
      break;
  }
  vfs_ = std::make_unique<Vfs>(*fs_, *path_);
}

BlockIoPath* Machine::block_path() {
  return config_.kind == PathKind::kBlockIo
             ? static_cast<BlockIoPath*>(path_.get())
             : nullptr;
}

PipettePath* Machine::pipette_path() {
  return (config_.kind == PathKind::kPipette ||
          config_.kind == PathKind::kPipetteNoCache)
             ? static_cast<PipettePath*>(path_.get())
             : nullptr;
}

TwoBSsdPath* Machine::twob_path() {
  return (config_.kind == PathKind::kTwoBMmio ||
          config_.kind == PathKind::kTwoBDma)
             ? static_cast<TwoBSsdPath*>(path_.get())
             : nullptr;
}

void Machine::adopt_scratch(std::vector<LbaRange>&& lba,
                            std::vector<std::vector<FgRange>>&& fg_pool) {
  if (PipettePath* p = pipette_path()) p->adopt_lba_scratch(std::move(lba));
  ssd_->adopt_fg_range_pool(std::move(fg_pool));
}

void Machine::release_scratch(std::vector<LbaRange>& lba,
                              std::vector<std::vector<FgRange>>& fg_pool) {
  if (PipettePath* p = pipette_path()) {
    std::vector<LbaRange> got = p->release_lba_scratch();
    if (got.capacity() > lba.capacity()) lba = std::move(got);
  }
  fg_pool = ssd_->release_fg_range_pool();
}

PageCache* Machine::page_cache() {
  if (BlockIoPath* b = block_path()) return &b->page_cache();
  if (PipettePath* p = pipette_path()) return &p->block_route().page_cache();
  return nullptr;
}

void Machine::collect_metrics(MetricsRegistry& out) {
  out.set("sim.events_executed", sim_.events_executed());
  // High-water mark of pending events == the event-queue slab footprint.
  // Backend-invariant, so heap and wheel runs stay Deterministic()-equal.
  out.set("des.slab_peak", sim_.queue_peak_size());

  const ControllerStats& cs = ssd_->stats();
  out.set("ssd.commands", cs.commands);
  out.set("ssd.block_reads", cs.block_reads);
  out.set("ssd.block_writes", cs.block_writes);
  out.set("ssd.fg_reads", cs.fg_reads);
  out.set("ssd.fg_ranges", cs.fg_ranges);
  out.set("ssd.fg_writes", cs.fg_writes);
  out.set("ssd.cmb_reads", cs.cmb_reads);
  out.set("ssd.bytes_to_host", cs.bytes_to_host);
  out.set("ssd.bytes_from_host", cs.bytes_from_host);
  out.set("ssd.media_errors", cs.media_errors);
  out.set("ssd.hmb_dma_faults", cs.hmb_dma_faults);
  out.set("ssd.dropped_completions", cs.dropped_completions);
  out.set("ssd.read_buffer_hits", cs.read_buffer.hits());
  out.set("ssd.read_buffer_misses", cs.read_buffer.misses());

  const NandStats& ns = ssd_->nand().stats();
  out.set("nand.page_reads", ns.page_reads);
  out.set("nand.page_programs", ns.page_programs);
  out.set("nand.read_retries", ns.read_retries);
  out.set("nand.read_failures", ns.read_failures);
  out.set("nand.bytes_transferred", ns.bytes_transferred);

  // FTL write/GC/wear family. Gated on write activity so the registries of
  // read-only runs (the golden cells among them) stay bit-identical to
  // history — same pattern as the lmb.* gating below.
  const FtlStats& ftls = ssd_->ftl().stats();
  if (ftls.writes_mapped > 0 || ftls.gc_collections > 0) {
    out.set("ftl.mapping_unit", ssd_->ftl().mapping_unit());
    out.set("ftl.writes_mapped", ftls.writes_mapped);
    out.set("ftl.mus_written", ftls.mus_written);
    out.set("ftl.invalidated_mus", ftls.invalidated_mus);
    out.set("ftl.invalidated_pages", ftls.invalidated_pages);
    out.set("ftl.pages_programmed", ftls.pages_programmed);
    out.set("ftl.gc_collections", ftls.gc_collections);
    out.set("ftl.gc_page_reads", ftls.gc_relocated_pages);
    out.set("ftl.gc_relocated_mus", ftls.gc_relocated_mus);
    out.set("ftl.wear_blocks_erased", ftls.blocks_erased);
    out.set("ftl.wear_max_die_erases", ftls.max_die_erases);
    out.set("ftl.wear_min_die_erases", ftls.min_die_erases);
    // Fixed-point so the registry stays integral and exactly comparable.
    out.set("ftl.write_amp_x1000",
            static_cast<std::uint64_t>(ftls.write_amplification() * 1000.0));
  }

  out.set("pcie.dma_transfers", ssd_->pcie().dma_transfers());
  out.set("pcie.dma_bytes", ssd_->pcie().dma_bytes());
  // Gated so default (HMB) registries stay bit-identical to history.
  if (config_.ssd.interconnect == InterconnectKind::kLmb) {
    out.set("lmb.dma_transfers", ssd_->pcie().lmb_transfers());
    out.set("lmb.dma_bytes", ssd_->pcie().lmb_bytes());
  }

  const InfoArea& info = ssd_->hmb().info();
  out.set("hmb.info_peak_in_flight", info.peak_in_flight());
  out.set("hmb.info_capacity", info.capacity());

  out.set("faults.nand_draws", ssd_->nand().injector().draws());
  out.set("faults.nand_fired", ssd_->nand().injector().fired());
  out.set("faults.hmb_draws", ssd_->hmb_fault_injector().draws());
  out.set("faults.hmb_fired", ssd_->hmb_fault_injector().fired());

  const PathStats& ps = path_->stats();
  out.set("path.reads", ps.reads);
  out.set("path.writes", ps.writes);
  out.set("path.bytes_requested", ps.bytes_requested);
  out.set("path.failed_reads", ps.failed_reads);
  out.set("path.degraded_reads", ps.degraded_reads);
  out.set("path.failed_writes", ps.failed_writes);

  if (PageCache* pc = page_cache()) {
    const PageCacheStats& pcs = pc->stats();
    out.set("page_cache.hits", pcs.lookups.hits());
    out.set("page_cache.misses", pcs.lookups.misses());
    out.set("page_cache.fills", pcs.fills);
    out.set("page_cache.readahead_pages", pcs.readahead_pages);
    out.set("page_cache.evictions", pcs.evictions);
    out.set("page_cache.evicted_never_used", pcs.evicted_never_used);
    out.set("page_cache.peak_pages", pcs.peak_pages);
    out.set("page_cache.resident_bytes", pc->resident_bytes());
  }

  if (PipettePath* p = pipette_path()) {
    const PipettePathStats& pps = p->pipette_stats();
    out.set("pipette.fine_reads", pps.fine_reads);
    out.set("pipette.block_reads", pps.block_reads);
    out.set("pipette.page_cache_served_fine", pps.page_cache_served_fine);
    out.set("pipette.fine_writes", pps.fine_writes);
    out.set("pipette.block_writes", pps.block_writes);
    out.set("pipette.fgrc_inplace_updates", pps.fgrc_inplace_updates);
    out.set("pipette.hmb_fault_fallbacks", pps.hmb_fault_fallbacks);
    out.set("pipette.lost_completions", pps.lost_completions);

    const FineGrainedReadCache& fgrc = p->fgrc();
    const FgrcStats& fs = fgrc.stats();
    out.set("fgrc.hits", fs.lookups.hits());
    out.set("fgrc.misses", fs.lookups.misses());
    out.set("fgrc.promotions", fs.promotions);
    out.set("fgrc.tempbuf_fills", fs.tempbuf_fills);
    out.set("fgrc.invalidations", fs.invalidations);
    out.set("fgrc.pressure_evictions", fs.pressure_evictions);
    out.set("fgrc.pressure_migrations", fs.pressure_migrations);
    out.set("fgrc.reassigned_slabs", fs.reassigned_slabs);
    out.set("fgrc.aborted_fills", fs.aborted_fills);
    out.set("fgrc.tempbuf_peak_bytes", fs.tempbuf_peak_bytes);
    out.set("fgrc.memory_bytes", fgrc.memory_bytes());
    out.set("fgrc.adaptive_threshold", fgrc.adaptive().threshold());
    out.set("fgrc.adaptive_accesses", fgrc.adaptive().accesses());
    out.set("fgrc.adaptive_reuses", fgrc.adaptive().reuses());

    // Prefetch counters exist only when the prefetcher does, so
    // prefetch-off registries stay bit-identical to history.
    if (const Prefetcher* pf = p->prefetcher()) {
      const PrefetchStats& pfs = pf->stats();
      out.set("prefetch.issued", pfs.issued);
      out.set("prefetch.commands", pfs.commands);
      out.set("prefetch.hits", pfs.hits);
      out.set("prefetch.hits_promoted", pfs.hits_promoted);
      out.set("prefetch.late", pfs.late);
      // Aged-out fills plus fills still unclaimed at collection time.
      out.set("prefetch.wasted", pfs.wasted + pf->unclaimed());
      out.set("prefetch.lost", pfs.lost);
      out.set("prefetch.faulted", pfs.faulted);
      out.set("prefetch.throttled", pfs.throttled);
      out.set("prefetch.filtered", pfs.filtered);
      out.set("prefetch.promoted", pfs.promoted);
      out.set("prefetch.tempbuf", pfs.tempbuf);
      const auto& classes = p->detector().stream_class_counts();
      for (std::size_t i = 0; i < classes.size(); ++i) {
        out.set(std::string("detector.stream_") +
                    to_string(static_cast<StreamClass>(i)),
                classes[i]);
      }
    }

    const SlabStore& store = fgrc.store();
    const SlabStoreStats& ss = store.stats();
    out.set("fgrc.slab_resident_bytes", ss.resident_slab_bytes);
    out.set("fgrc.slab_external_bytes", ss.external_bytes);
    out.set("fgrc.slab_live_items", ss.live_items);
    out.set("fgrc.slab_evictions", ss.evictions);
    out.set("fgrc.slab_migrations", ss.migrations);
    for (std::uint32_t cls = 0; cls < store.classes(); ++cls) {
      const SlabClassStats scs = store.class_stats(cls);
      const std::string prefix =
          "fgrc.class." + std::to_string(scs.item_size) + ".";
      out.set(prefix + "slabs", scs.slabs);
      out.set(prefix + "live_items", scs.live_items);
      out.set(prefix + "evictions", scs.evictions);
      out.set(prefix + "promotions",
              cls < fs.class_promotions.size() ? fs.class_promotions[cls]
                                               : 0);
    }
  }

  // Utilization & queueing accounts (obs/util.h). Strictly passive: the
  // exporters only drain observer-side depth sweeps up to now(). Resources
  // that exist conditionally are gated the same way as their counter
  // families above, so differential registries stay bit-identical.
  const SimTime now = sim_.now();
  out.set("util.sim_time_ns", now);
  NandArray& nand = ssd_->nand();
  export_usage(out, "nand_die", nand.die_usage(),
               config_.ssd.geometry.dies(), now);
  export_usage(out, "nand_channel", nand.channel_usage(),
               config_.ssd.geometry.channels, now);
  if (nand.gc_usage().ops() > 0) {
    // Die + channel legs of GC relocations, folded into one account so the
    // bottleneck table can rank "gc" against the host-attributed resources.
    export_usage(out, "gc", nand.gc_usage(), config_.ssd.geometry.dies(),
                 now);
    out.set("util.gc.foreground_blocked_ns", nand.gc_blocked_host_ns());
    export_occupancy(out, "gc_buffer", ssd_->gc_buffer_occupancy(), 1, now);
  }
  export_usage(out, "pcie_link", ssd_->pcie().pcie_usage(), 1, now);
  if (config_.ssd.interconnect == InterconnectKind::kLmb)
    export_usage(out, "lmb_link", ssd_->pcie().lmb_usage(), 1, now);
  export_occupancy(out, "info_ring", ssd_->hmb().info().occupancy(), 1, now);
  if (PipettePath* p = pipette_path()) {
    if (Prefetcher* pf = p->prefetcher())
      export_occupancy(out, "prefetch_outstanding",
                       pf->outstanding_occupancy(), 1, now);
  }
}

UtilSnapshot Machine::util_snapshot() {
  UtilSnapshot snap;
  const SimTime now = sim_.now();
  NandArray& nand = ssd_->nand();
  snap.nand_busy_ns = nand.die_usage().busy_ns();
  snap.interconnect_busy_ns = ssd_->pcie().pcie_usage().busy_ns() +
                              ssd_->pcie().lmb_usage().busy_ns();
  snap.gc_busy_ns = nand.gc_usage().busy_ns();
  snap.gc_moves = ssd_->ftl().stats().gc_relocated_pages;
  snap.info_ring_depth = ssd_->hmb().info().in_flight();
  snap.nand_queue_depth =
      static_cast<std::uint32_t>(nand.die_usage().depth(now));
  return snap;
}

void Machine::cold_restart() {
  // Persist dirty pages first — a page cache clear must not lose writes the
  // workload already considers durable after recovery.
  if (BlockIoPath* b = block_path()) {
    b->sync();
  } else if (PipettePath* p = pipette_path()) {
    p->block_route().sync();
  }
  if (PageCache* pc = page_cache()) pc->clear();
  if (PipettePath* p = pipette_path()) p->reset_fgrc();
}

MachineConfig default_machine(PathKind kind) {
  MachineConfig config;
  config.kind = kind;
  // SSD: the YS9203's architecture (Fig. 5) — 8 channels x 8 ways, TLC.
  config.ssd.geometry = NandGeometry{};  // 8x8, 4 KiB pages, 32 GiB
  config.ssd.nand_timing.cell = CellType::kTlc;
  config.ssd.read_buffer_bytes = 512ull * kMiB;
  config.ssd.block_reads_use_buffer = false;
  config.ssd.cmb_slots = 64;
  config.ssd.hmb.info_slots = 4096;
  config.ssd.hmb.tempbuf_bytes = 64 * kKiB;
  config.ssd.hmb.data_bytes = 160ull * kMiB;
  // Host caches: equal byte budgets for the two competing caches.
  config.page_cache_bytes = 160ull * kMiB;
  config.readahead = ReadaheadConfig{1, 32, true};
  config.pipette.fgrc.slab.slab_size = 256 * kKiB;
  config.pipette.fgrc.slab.max_external_bytes = 32ull * kMiB;
  return config;
}

MachineConfig realapp_machine(PathKind kind) {
  MachineConfig config = default_machine(kind);
  // Real applications (§4.3): the datasets (~1 GiB here, 4.1 GB in the
  // paper) dwarf the device's staging region (the prototype's 64 MB
  // mapping region), so byte-path misses usually pay the NAND read — the
  // regime where the no-cache approaches fall *below* block I/O and only
  // the fine-grained read cache recovers the locality.
  config.ssd.read_buffer_bytes = 64ull * kMiB;
  // The block baseline's page cache is large but still well under the
  // dataset (the paper's 2.3 GB against 4.1 GB tables); Pipette's FGRC
  // stores the demanded bytes compactly in half that budget.
  config.page_cache_bytes = 192ull * kMiB;
  config.ssd.hmb.data_bytes = 96ull * kMiB;
  return config;
}

int Machine::open_flags(bool writable) const {
  int flags = writable ? kOpenWrite : kOpenRead;
  if (config_.kind == PathKind::kPipette ||
      config_.kind == PathKind::kPipetteNoCache) {
    flags |= kOpenFineGrained;
  }
  return flags;
}

}  // namespace pipette
