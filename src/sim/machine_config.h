// Machine configuration and the calibrated defaults used by the benchmark
// harness.
//
// Calibration philosophy (see DESIGN.md §6 and EXPERIMENTS.md): the paper's
// absolute numbers come from a YS9203 hardware prototype; this simulation
// reproduces the *relative* behaviour. The constants below were chosen so
// that the single-component costs match datasheet/kernel magnitudes (TLC tR
// ~65us, PCIe Gen3 x4 ~3.2 GB/s, syscall ~0.5us, MMIO round trip ~0.3us)
// and the emergent end-to-end shapes match the paper's figures.
//
// Key sizing decisions for the synthetic experiments:
//  * 256 MiB file, 160 MiB page cache, 160 MiB FGRC data area: the two
//    host caches get comparable byte budgets, so Pipette's advantage comes
//    from its mechanisms (byte-granular misses, compact items, adaptive
//    promotion), not from extra memory.
//  * 512 MiB device read buffer for the fine-grained firmware: the staging
//    region covers the working set, mirroring the prototype's device DRAM
//    ("Max DDR size 4GB") against its 4.1 GB dataset. The block interface
//    does not data-cache in controller DRAM (standard NVMe behaviour).
#pragma once

#include <cstdint>

#include "des/event_queue.h"
#include "hostmem/host_timing.h"
#include "hostmem/page_cache.h"
#include "iopath/pipette_path.h"
#include "obs/trace.h"
#include "ssd/controller.h"

namespace pipette {

enum class PathKind {
  kBlockIo,
  kTwoBMmio,
  kTwoBDma,
  kPipetteNoCache,
  kPipette,
};

/// All five systems, in the paper's legend order.
inline constexpr PathKind kAllPaths[] = {
    PathKind::kTwoBMmio, PathKind::kTwoBDma, PathKind::kPipetteNoCache,
    PathKind::kPipette, PathKind::kBlockIo};

struct MachineConfig {
  PathKind kind = PathKind::kBlockIo;
  ControllerConfig ssd;
  HostTiming host;
  /// FTL mapping unit in bytes (512 <= MU <= page, must divide the page).
  /// 0 keeps the device's page-granular mapping — the golden-pinned
  /// default; shaped() forwards a nonzero value to ControllerConfig.
  std::uint32_t mapping_unit = 0;
  /// Link carrying fine-grained fills: PCIe DMA into host DRAM (kHmb, the
  /// paper's baseline) or a CXL-linked memory buffer (kLmb). With kLmb the
  /// buffer lives on the CXL device, so its data-area bytes stop stealing
  /// host DRAM — shaped() returns that budget to the page cache.
  InterconnectKind interconnect = InterconnectKind::kHmb;
  /// Speculative readahead on the fine path (Pipette-with-cache only).
  PrefetchConfig prefetch;
  std::uint64_t page_cache_bytes = 160ull * 1024 * 1024;
  ReadaheadConfig readahead{/*initial_window=*/1, /*max_window=*/32,
                            /*enabled=*/true};
  PipettePathConfig pipette;  // used by the Pipette kinds
  TraceConfig trace;          // per-stage tracing (off by default)
  /// Event-queue backend for this machine's Simulator. Both backends drain
  /// in bit-identical (when, seq) order (pinned by queue_test), so this is
  /// purely a host-speed knob; kWheel wins on clustered device latencies.
  QueueKind queue = QueueKind::kHeap;
};

/// Defaults matching the synthetic-workload experiments (§4.2).
MachineConfig default_machine(PathKind kind);

/// Defaults for the real-application experiments (§4.3): bigger dataset,
/// host caches sized so the block baseline lands near the paper's reported
/// 64.5% page-cache hit ratio.
MachineConfig realapp_machine(PathKind kind);

}  // namespace pipette
